# Empty dependencies file for example_order_book.
# This may be replaced when dependencies are built.
