file(REMOVE_RECURSE
  "CMakeFiles/example_order_book.dir/order_book.cpp.o"
  "CMakeFiles/example_order_book.dir/order_book.cpp.o.d"
  "example_order_book"
  "example_order_book.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_order_book.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
