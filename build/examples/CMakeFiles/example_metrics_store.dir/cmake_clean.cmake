file(REMOVE_RECURSE
  "CMakeFiles/example_metrics_store.dir/metrics_store.cpp.o"
  "CMakeFiles/example_metrics_store.dir/metrics_store.cpp.o.d"
  "example_metrics_store"
  "example_metrics_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_metrics_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
