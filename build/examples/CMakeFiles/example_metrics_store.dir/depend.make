# Empty dependencies file for example_metrics_store.
# This may be replaced when dependencies are built.
