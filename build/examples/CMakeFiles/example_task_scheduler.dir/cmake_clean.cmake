file(REMOVE_RECURSE
  "CMakeFiles/example_task_scheduler.dir/task_scheduler.cpp.o"
  "CMakeFiles/example_task_scheduler.dir/task_scheduler.cpp.o.d"
  "example_task_scheduler"
  "example_task_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_task_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
