# Empty dependencies file for example_task_scheduler.
# This may be replaced when dependencies are built.
