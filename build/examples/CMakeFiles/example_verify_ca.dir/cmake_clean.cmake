file(REMOVE_RECURSE
  "CMakeFiles/example_verify_ca.dir/verify_ca.cpp.o"
  "CMakeFiles/example_verify_ca.dir/verify_ca.cpp.o.d"
  "example_verify_ca"
  "example_verify_ca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_verify_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
