# Empty compiler generated dependencies file for example_verify_ca.
# This may be replaced when dependencies are built.
