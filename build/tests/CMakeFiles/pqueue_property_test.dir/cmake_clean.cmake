file(REMOVE_RECURSE
  "CMakeFiles/pqueue_property_test.dir/pqueue_property_test.cpp.o"
  "CMakeFiles/pqueue_property_test.dir/pqueue_property_test.cpp.o.d"
  "pqueue_property_test"
  "pqueue_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqueue_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
