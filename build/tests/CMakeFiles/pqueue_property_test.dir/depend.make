# Empty dependencies file for pqueue_property_test.
# This may be replaced when dependencies are built.
