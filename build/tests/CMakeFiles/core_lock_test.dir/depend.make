# Empty dependencies file for core_lock_test.
# This may be replaced when dependencies are built.
