# Empty compiler generated dependencies file for core_deque_test.
# This may be replaced when dependencies are built.
