file(REMOVE_RECURSE
  "CMakeFiles/core_deque_test.dir/core_deque_test.cpp.o"
  "CMakeFiles/core_deque_test.dir/core_deque_test.cpp.o.d"
  "core_deque_test"
  "core_deque_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_deque_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
