# Empty dependencies file for stm_options_test.
# This may be replaced when dependencies are built.
