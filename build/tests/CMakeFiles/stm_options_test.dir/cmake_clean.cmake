file(REMOVE_RECURSE
  "CMakeFiles/stm_options_test.dir/stm_options_test.cpp.o"
  "CMakeFiles/stm_options_test.dir/stm_options_test.cpp.o.d"
  "stm_options_test"
  "stm_options_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
