file(REMOVE_RECURSE
  "CMakeFiles/abort_injection_test.dir/abort_injection_test.cpp.o"
  "CMakeFiles/abort_injection_test.dir/abort_injection_test.cpp.o.d"
  "abort_injection_test"
  "abort_injection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abort_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
