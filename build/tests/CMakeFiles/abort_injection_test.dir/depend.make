# Empty dependencies file for abort_injection_test.
# This may be replaced when dependencies are built.
