# Empty dependencies file for containers_hamt_test.
# This may be replaced when dependencies are built.
