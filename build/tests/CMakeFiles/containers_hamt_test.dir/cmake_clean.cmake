file(REMOVE_RECURSE
  "CMakeFiles/containers_hamt_test.dir/containers_hamt_test.cpp.o"
  "CMakeFiles/containers_hamt_test.dir/containers_hamt_test.cpp.o.d"
  "containers_hamt_test"
  "containers_hamt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containers_hamt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
