file(REMOVE_RECURSE
  "CMakeFiles/core_counter_test.dir/core_counter_test.cpp.o"
  "CMakeFiles/core_counter_test.dir/core_counter_test.cpp.o.d"
  "core_counter_test"
  "core_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
