file(REMOVE_RECURSE
  "CMakeFiles/core_pqueue_test.dir/core_pqueue_test.cpp.o"
  "CMakeFiles/core_pqueue_test.dir/core_pqueue_test.cpp.o.d"
  "core_pqueue_test"
  "core_pqueue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
