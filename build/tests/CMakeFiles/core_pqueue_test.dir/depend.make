# Empty dependencies file for core_pqueue_test.
# This may be replaced when dependencies are built.
