# Empty compiler generated dependencies file for core_ordered_map_test.
# This may be replaced when dependencies are built.
