file(REMOVE_RECURSE
  "CMakeFiles/stm_edge_test.dir/stm_edge_test.cpp.o"
  "CMakeFiles/stm_edge_test.dir/stm_edge_test.cpp.o.d"
  "stm_edge_test"
  "stm_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
