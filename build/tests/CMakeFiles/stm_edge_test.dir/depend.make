# Empty dependencies file for stm_edge_test.
# This may be replaced when dependencies are built.
