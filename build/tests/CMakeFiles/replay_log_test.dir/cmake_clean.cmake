file(REMOVE_RECURSE
  "CMakeFiles/replay_log_test.dir/replay_log_test.cpp.o"
  "CMakeFiles/replay_log_test.dir/replay_log_test.cpp.o.d"
  "replay_log_test"
  "replay_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
