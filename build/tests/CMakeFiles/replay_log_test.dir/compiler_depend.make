# Empty compiler generated dependencies file for replay_log_test.
# This may be replaced when dependencies are built.
