# Empty dependencies file for core_queue_test.
# This may be replaced when dependencies are built.
