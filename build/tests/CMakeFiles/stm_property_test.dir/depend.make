# Empty dependencies file for stm_property_test.
# This may be replaced when dependencies are built.
