file(REMOVE_RECURSE
  "CMakeFiles/stm_property_test.dir/stm_property_test.cpp.o"
  "CMakeFiles/stm_property_test.dir/stm_property_test.cpp.o.d"
  "stm_property_test"
  "stm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
