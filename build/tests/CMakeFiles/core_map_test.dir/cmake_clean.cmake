file(REMOVE_RECURSE
  "CMakeFiles/core_map_test.dir/core_map_test.cpp.o"
  "CMakeFiles/core_map_test.dir/core_map_test.cpp.o.d"
  "core_map_test"
  "core_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
