# Empty compiler generated dependencies file for containers_hash_map_test.
# This may be replaced when dependencies are built.
