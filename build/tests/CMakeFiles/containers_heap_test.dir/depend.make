# Empty dependencies file for containers_heap_test.
# This may be replaced when dependencies are built.
