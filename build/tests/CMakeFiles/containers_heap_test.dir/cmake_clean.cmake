file(REMOVE_RECURSE
  "CMakeFiles/containers_heap_test.dir/containers_heap_test.cpp.o"
  "CMakeFiles/containers_heap_test.dir/containers_heap_test.cpp.o.d"
  "containers_heap_test"
  "containers_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containers_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
