# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pure_stm_tree_test.
