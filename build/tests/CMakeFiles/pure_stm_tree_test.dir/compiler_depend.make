# Empty compiler generated dependencies file for pure_stm_tree_test.
# This may be replaced when dependencies are built.
