file(REMOVE_RECURSE
  "CMakeFiles/pure_stm_tree_test.dir/pure_stm_tree_test.cpp.o"
  "CMakeFiles/pure_stm_tree_test.dir/pure_stm_tree_test.cpp.o.d"
  "pure_stm_tree_test"
  "pure_stm_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pure_stm_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
