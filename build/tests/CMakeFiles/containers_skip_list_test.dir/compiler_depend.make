# Empty compiler generated dependencies file for containers_skip_list_test.
# This may be replaced when dependencies are built.
