file(REMOVE_RECURSE
  "CMakeFiles/containers_skip_list_test.dir/containers_skip_list_test.cpp.o"
  "CMakeFiles/containers_skip_list_test.dir/containers_skip_list_test.cpp.o.d"
  "containers_skip_list_test"
  "containers_skip_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containers_skip_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
