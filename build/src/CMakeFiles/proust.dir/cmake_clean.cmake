file(REMOVE_RECURSE
  "CMakeFiles/proust.dir/stm/stats.cpp.o"
  "CMakeFiles/proust.dir/stm/stats.cpp.o.d"
  "CMakeFiles/proust.dir/stm/thread_registry.cpp.o"
  "CMakeFiles/proust.dir/stm/thread_registry.cpp.o.d"
  "CMakeFiles/proust.dir/stm/txn.cpp.o"
  "CMakeFiles/proust.dir/stm/txn.cpp.o.d"
  "CMakeFiles/proust.dir/sync/reentrant_rw_lock.cpp.o"
  "CMakeFiles/proust.dir/sync/reentrant_rw_lock.cpp.o.d"
  "CMakeFiles/proust.dir/verify/checker.cpp.o"
  "CMakeFiles/proust.dir/verify/checker.cpp.o.d"
  "CMakeFiles/proust.dir/verify/models/counter_model.cpp.o"
  "CMakeFiles/proust.dir/verify/models/counter_model.cpp.o.d"
  "CMakeFiles/proust.dir/verify/models/deque_model.cpp.o"
  "CMakeFiles/proust.dir/verify/models/deque_model.cpp.o.d"
  "CMakeFiles/proust.dir/verify/models/map_model.cpp.o"
  "CMakeFiles/proust.dir/verify/models/map_model.cpp.o.d"
  "CMakeFiles/proust.dir/verify/models/ordered_map_model.cpp.o"
  "CMakeFiles/proust.dir/verify/models/ordered_map_model.cpp.o.d"
  "CMakeFiles/proust.dir/verify/models/pqueue_model.cpp.o"
  "CMakeFiles/proust.dir/verify/models/pqueue_model.cpp.o.d"
  "CMakeFiles/proust.dir/verify/models/queue_model.cpp.o"
  "CMakeFiles/proust.dir/verify/models/queue_model.cpp.o.d"
  "CMakeFiles/proust.dir/verify/synth.cpp.o"
  "CMakeFiles/proust.dir/verify/synth.cpp.o.d"
  "libproust.a"
  "libproust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
