
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stm/stats.cpp" "src/CMakeFiles/proust.dir/stm/stats.cpp.o" "gcc" "src/CMakeFiles/proust.dir/stm/stats.cpp.o.d"
  "/root/repo/src/stm/thread_registry.cpp" "src/CMakeFiles/proust.dir/stm/thread_registry.cpp.o" "gcc" "src/CMakeFiles/proust.dir/stm/thread_registry.cpp.o.d"
  "/root/repo/src/stm/txn.cpp" "src/CMakeFiles/proust.dir/stm/txn.cpp.o" "gcc" "src/CMakeFiles/proust.dir/stm/txn.cpp.o.d"
  "/root/repo/src/sync/reentrant_rw_lock.cpp" "src/CMakeFiles/proust.dir/sync/reentrant_rw_lock.cpp.o" "gcc" "src/CMakeFiles/proust.dir/sync/reentrant_rw_lock.cpp.o.d"
  "/root/repo/src/verify/checker.cpp" "src/CMakeFiles/proust.dir/verify/checker.cpp.o" "gcc" "src/CMakeFiles/proust.dir/verify/checker.cpp.o.d"
  "/root/repo/src/verify/models/counter_model.cpp" "src/CMakeFiles/proust.dir/verify/models/counter_model.cpp.o" "gcc" "src/CMakeFiles/proust.dir/verify/models/counter_model.cpp.o.d"
  "/root/repo/src/verify/models/deque_model.cpp" "src/CMakeFiles/proust.dir/verify/models/deque_model.cpp.o" "gcc" "src/CMakeFiles/proust.dir/verify/models/deque_model.cpp.o.d"
  "/root/repo/src/verify/models/map_model.cpp" "src/CMakeFiles/proust.dir/verify/models/map_model.cpp.o" "gcc" "src/CMakeFiles/proust.dir/verify/models/map_model.cpp.o.d"
  "/root/repo/src/verify/models/ordered_map_model.cpp" "src/CMakeFiles/proust.dir/verify/models/ordered_map_model.cpp.o" "gcc" "src/CMakeFiles/proust.dir/verify/models/ordered_map_model.cpp.o.d"
  "/root/repo/src/verify/models/pqueue_model.cpp" "src/CMakeFiles/proust.dir/verify/models/pqueue_model.cpp.o" "gcc" "src/CMakeFiles/proust.dir/verify/models/pqueue_model.cpp.o.d"
  "/root/repo/src/verify/models/queue_model.cpp" "src/CMakeFiles/proust.dir/verify/models/queue_model.cpp.o" "gcc" "src/CMakeFiles/proust.dir/verify/models/queue_model.cpp.o.d"
  "/root/repo/src/verify/synth.cpp" "src/CMakeFiles/proust.dir/verify/synth.cpp.o" "gcc" "src/CMakeFiles/proust.dir/verify/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
