file(REMOVE_RECURSE
  "libproust.a"
)
