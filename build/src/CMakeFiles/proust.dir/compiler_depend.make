# Empty compiler generated dependencies file for proust.
# This may be replaced when dependencies are built.
