# Empty dependencies file for bench_pqueue.
# This may be replaced when dependencies are built.
