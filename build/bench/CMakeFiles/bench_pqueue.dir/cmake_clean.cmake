file(REMOVE_RECURSE
  "CMakeFiles/bench_pqueue.dir/bench_pqueue.cpp.o"
  "CMakeFiles/bench_pqueue.dir/bench_pqueue.cpp.o.d"
  "bench_pqueue"
  "bench_pqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
