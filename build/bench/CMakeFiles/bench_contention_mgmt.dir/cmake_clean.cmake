file(REMOVE_RECURSE
  "CMakeFiles/bench_contention_mgmt.dir/bench_contention_mgmt.cpp.o"
  "CMakeFiles/bench_contention_mgmt.dir/bench_contention_mgmt.cpp.o.d"
  "bench_contention_mgmt"
  "bench_contention_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contention_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
