# Empty compiler generated dependencies file for bench_contention_mgmt.
# This may be replaced when dependencies are built.
