# Empty dependencies file for bench_ablation_combining.
# This may be replaced when dependencies are built.
