file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_combining.dir/bench_ablation_combining.cpp.o"
  "CMakeFiles/bench_ablation_combining.dir/bench_ablation_combining.cpp.o.d"
  "bench_ablation_combining"
  "bench_ablation_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
