# Empty compiler generated dependencies file for bench_micro_containers.
# This may be replaced when dependencies are built.
