file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_containers.dir/bench_micro_containers.cpp.o"
  "CMakeFiles/bench_micro_containers.dir/bench_micro_containers.cpp.o.d"
  "bench_micro_containers"
  "bench_micro_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
