file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_memoizing.dir/bench_fig4_memoizing.cpp.o"
  "CMakeFiles/bench_fig4_memoizing.dir/bench_fig4_memoizing.cpp.o.d"
  "bench_fig4_memoizing"
  "bench_fig4_memoizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_memoizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
