file(REMOVE_RECURSE
  "CMakeFiles/bench_range_map.dir/bench_range_map.cpp.o"
  "CMakeFiles/bench_range_map.dir/bench_range_map.cpp.o.d"
  "bench_range_map"
  "bench_range_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
