# Empty dependencies file for bench_range_map.
# This may be replaced when dependencies are built.
