file(REMOVE_RECURSE
  "CMakeFiles/bench_false_conflicts.dir/bench_false_conflicts.cpp.o"
  "CMakeFiles/bench_false_conflicts.dir/bench_false_conflicts.cpp.o.d"
  "bench_false_conflicts"
  "bench_false_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_false_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
