# Empty dependencies file for bench_false_conflicts.
# This may be replaced when dependencies are built.
