# Empty dependencies file for bench_fig4_map_throughput.
# This may be replaced when dependencies are built.
