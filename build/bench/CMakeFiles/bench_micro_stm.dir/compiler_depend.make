# Empty compiler generated dependencies file for bench_micro_stm.
# This may be replaced when dependencies are built.
