file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_stm.dir/bench_micro_stm.cpp.o"
  "CMakeFiles/bench_micro_stm.dir/bench_micro_stm.cpp.o.d"
  "bench_micro_stm"
  "bench_micro_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
