# Empty compiler generated dependencies file for bench_pessimistic_livelock.
# This may be replaced when dependencies are built.
