file(REMOVE_RECURSE
  "CMakeFiles/bench_pessimistic_livelock.dir/bench_pessimistic_livelock.cpp.o"
  "CMakeFiles/bench_pessimistic_livelock.dir/bench_pessimistic_livelock.cpp.o.d"
  "bench_pessimistic_livelock"
  "bench_pessimistic_livelock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pessimistic_livelock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
