// §3's running example measured: the non-negative counter with the
// single-location conflict abstraction vs. a pure-STM counter (one Var
// holding the value). Away from zero, Proustian incr/decr touch no STM
// location at all and therefore never conflict; the pure-STM counter
// serializes every operation pair.
#include <barrier>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/txn_counter.hpp"
#include "stm/stm.hpp"

using namespace proust;
using core::CounterState;
using core::CounterStateHasher;

namespace {

struct Result {
  double ms;
  std::uint64_t aborts;
};

template <class Body>
Result timed_threads(stm::Stm& stm, int threads, long iters, Body&& body) {
  stm.stats().reset();
  std::barrier sync(threads + 1);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      body(t, iters);
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  const auto stop = std::chrono::steady_clock::now();
  for (auto& th : ts) th.join();
  return {std::chrono::duration<double, std::milli>(stop - start).count(),
          stm.stats().snapshot().total_aborts()};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const long iters = cli.get_long("iters", 20000);
  const auto thread_counts =
      cli.get_longs("threads", std::vector<long>{1, 2, 4, 8});
  const double decr_frac = cli.get_double("decr", 0.5);

  std::printf("# Counter example (§3): Proust CA vs pure STM, %ld ops/thread, "
              "decr fraction %.2f\n",
              iters, decr_frac);
  bench::Table table(
      {"impl", "regime", "threads", "ms", "aborts", "stm-accesses"});

  for (long t : thread_counts) {
    // Regime "high": counter starts far above the threshold — the Proust CA
    // performs no STM access at all (paper case 1).
    // Regime "low": counter hovers near 0 — decrs write ℓ0 (case 3).
    for (const char* regime : {"high", "low"}) {
      const long initial = regime[0] == 'h' ? 100000 : 1;
      {
        stm::Stm stm(stm::Mode::EagerAll);
        core::OptimisticLap<CounterState, CounterStateHasher> lap(stm, 1);
        core::TxnCounter<decltype(lap)> counter(lap, initial);
        const Result r = timed_threads(
            stm, static_cast<int>(t), iters, [&](int tid, long n) {
              Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 1);
              for (long i = 0; i < n; ++i) {
                if (rng.uniform() < decr_frac) {
                  stm.atomically(
                      [&](stm::Txn& tx) { (void)counter.decr(tx); });
                } else {
                  stm.atomically([&](stm::Txn& tx) { counter.incr(tx); });
                }
              }
            });
        const auto s = stm.stats().snapshot();
        table.row({"proust-counter", regime, std::to_string(t),
                   bench::Table::fmt(r.ms, 1), std::to_string(r.aborts),
                   std::to_string(s.reads + s.writes)});
      }
      {
        stm::Stm stm(stm::Mode::EagerAll);
        stm::Var<long> value(initial);
        const Result r = timed_threads(
            stm, static_cast<int>(t), iters, [&](int tid, long n) {
              Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 1);
              for (long i = 0; i < n; ++i) {
                if (rng.uniform() < decr_frac) {
                  stm.atomically([&](stm::Txn& tx) {
                    const long v = tx.read(value);
                    if (v > 0) tx.write(value, v - 1);
                  });
                } else {
                  stm.atomically(
                      [&](stm::Txn& tx) { tx.write(value, tx.read(value) + 1); });
                }
              }
            });
        const auto s = stm.stats().snapshot();
        table.row({"pure-stm-counter", regime, std::to_string(t),
                   bench::Table::fmt(r.ms, 1), std::to_string(r.aborts),
                   std::to_string(s.reads + s.writes)});
      }
    }
  }
  return 0;
}
