// Ablation: contention-management policy × fallback threshold under a
// high-contention map workload. §7 attributes the pessimistic livelock to
// the weak CM coupling; this bench quantifies how much the CM policy alone
// moves throughput and abort rates for the optimistic configurations.
#include <cstdio>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"

using namespace proust;
using namespace proust::bench;

namespace {

/// Standalone runner (no adapter-base) so options reach the Stm.
struct OptionedMap {
  stm::Stm stm;
  core::OptimisticLap<long> lap;
  core::TxnHashMap<long, long, core::OptimisticLap<long>> map;

  OptionedMap(stm::Mode mode, stm::StmOptions opts, std::size_t ca)
      : stm(mode, opts), lap(stm, ca), map(lap) {}

  template <class Body>
  void txn(Body&& body) {
    stm.atomically([&](stm::Txn& tx) {
      TxView<decltype(map)> view{map, tx};
      body(view);
    });
  }
  void prefill(long k, long v) { map.unsafe_put(k, v); }
  stm::StatsSnapshot stats() { return stm.stats().snapshot(); }
  void reset_stats() { stm.stats().reset(); }
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  RunConfig cfg;
  cfg.total_ops = cli.get_long("ops", 40000);
  cfg.key_range = cli.get_long("key-range", 32);  // hot keys
  cfg.write_fraction = cli.get_double("u", 0.75);
  cfg.threads = static_cast<int>(cli.get_long("threads", 8));
  cfg.ops_per_txn = static_cast<int>(cli.get_long("o", 8));
  cfg.warmup_runs = 1;
  cfg.timed_runs = 2;

  std::printf("# Contention-management ablation: policy x fallback "
              "(u=%.2f, o=%d, t=%d, keys=%ld)\n",
              cfg.write_fraction, cfg.ops_per_txn, cfg.threads, cfg.key_range);
  Table table({"cm-policy", "fallback", "stm-mode", "ms", "abort%",
               "gate-aborts"});

  const stm::CmPolicy policies[] = {stm::CmPolicy::ExponentialBackoff,
                                    stm::CmPolicy::Yield, stm::CmPolicy::None};
  const unsigned fallbacks[] = {0, 8};
  const stm::Mode modes[] = {stm::Mode::Lazy, stm::Mode::EagerAll};

  for (stm::Mode mode : modes) {
    for (stm::CmPolicy policy : policies) {
      for (unsigned fb : fallbacks) {
        stm::StmOptions opts;
        opts.cm_policy = policy;
        opts.fallback_after = fb;
        OptionedMap m(mode, opts, 1024);
        prefill_half(m, cfg.key_range);
        const RunResult r = run_map_throughput(m, cfg);
        const auto s = m.stats();
        const double abort_pct =
            r.starts ? 100.0 * static_cast<double>(r.aborts) /
                           static_cast<double>(r.starts)
                     : 0;
        table.row({stm::to_string(policy), std::to_string(fb),
                   stm::to_string(mode), Table::fmt(r.mean_ms, 1),
                   Table::fmt(abort_pct, 1),
                   std::to_string(s.aborts[static_cast<std::size_t>(
                       stm::AbortReason::FallbackGate)])});
      }
    }
    std::printf("\n");
  }
  return 0;
}
