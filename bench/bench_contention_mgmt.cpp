// Contention-management sweep: CM policy (trivial backoff/yield/none vs. the
// priority policies Karma and TimestampAging, each ± adaptive admission
// control) × thread count, on a deliberately vicious workload — every
// transaction writes, all keys hot. §7 attributes the design space's
// livelock pathologies to the missing CM coupling; this bench quantifies
// what the coupling buys: the throughput column shows the cost/benefit at
// each concurrency level, and the attempts{p50,p99,max} columns show the
// starvation story (the priority policies bound the tail; the trivial ones
// only bound it if the irrevocable fallback gate is armed).
//
// --json=<path> emits machine-readable records (bench_util/json.hpp) with
// the full abort-reason breakdown, the attempt-histogram percentiles and
// the backoff/cm/throttle wait totals; BENCH_STM.json tracks a merged
// "pr5-contention" entry produced by this driver.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/json.hpp"
#include "bench_util/table.hpp"

using namespace proust;
using namespace proust::bench;

namespace {

/// Standalone runner (no adapter-base) so options reach the Stm.
struct OptionedMap {
  stm::Stm stm;
  core::OptimisticLap<long> lap;
  core::TxnHashMap<long, long, core::OptimisticLap<long>> map;

  OptionedMap(stm::Mode mode, stm::StmOptions opts, std::size_t ca)
      : stm(mode, opts), lap(stm, ca), map(lap) {}

  template <class Body>
  void txn(Body&& body) {
    stm.atomically([&](stm::Txn& tx) {
      TxView<decltype(map)> view{map, tx};
      body(view);
    });
  }
  void prefill(long k, long v) { map.unsafe_put(k, v); }
  stm::StatsSnapshot stats() { return stm.stats().snapshot(); }
  void reset_stats() { stm.stats().reset(); }
};

struct PolicyVariant {
  const char* tag;  // table/json name
  stm::CmPolicy policy;
  bool admission;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  RunConfig cfg;
  cfg.total_ops = cli.get_long("ops", 40000);
  cfg.key_range = cli.get_long("key-range", 32);  // hot keys
  cfg.write_fraction = cli.get_double("u", 1.0);  // every op mutates
  cfg.ops_per_txn = static_cast<int>(cli.get_long("o", 8));
  cfg.warmup_runs = static_cast<int>(cli.get_long("warmup", 1));
  cfg.timed_runs = static_cast<int>(cli.get_long("runs", 2));
  cfg.pin_plan = topo::Topology::system().pin_plan(
      cli.get_pin_policy("pin", topo::PinPolicy::None));
  const bool use_min = cli.get("stat", "mean") == "min";
  const auto threads = cli.get_longs("threads", {1, 2, 4, 8, 16});
  // 0 keeps the gate out of the comparison: the CM is then the only
  // mechanism bounding the retry tail. Set e.g. --fallback=8 to measure the
  // gate's serialization cost instead.
  const auto fallback = static_cast<unsigned>(cli.get_long("fallback", 0));

  const PolicyVariant variants[] = {
      {"backoff", stm::CmPolicy::ExponentialBackoff, false},
      {"yield", stm::CmPolicy::Yield, false},
      {"none", stm::CmPolicy::None, false},
      {"karma", stm::CmPolicy::Karma, false},
      {"aging", stm::CmPolicy::TimestampAging, false},
      {"karma+adm", stm::CmPolicy::Karma, true},
      {"aging+adm", stm::CmPolicy::TimestampAging, true},
  };

  std::printf("# Contention management under saturation: policy x threads "
              "(u=%.2f, o=%d, keys=%ld, fallback=%u)\n",
              cfg.write_fraction, cfg.ops_per_txn, cfg.key_range, fallback);
  Table table({"cm-policy", "t", "ms", "Kops/s", "abort%", "p50", "p99",
               "max", "cm-killed", "throttled"});
  JsonWriter json(cli.get("label", "pr5-contention"));

  for (long t : threads) {
    for (const PolicyVariant& v : variants) {
      stm::StmOptions opts;
      opts.cm_policy = v.policy;
      opts.fallback_after = fallback;
      opts.admission_control = v.admission;
      OptionedMap m(stm::Mode::Lazy, opts, 1024);
      prefill_half(m, cfg.key_range);
      cfg.threads = static_cast<int>(t);
      const RunResult r = run_map_throughput(m, cfg);
      const stm::StatsSnapshot& s = r.stats;

      const double shown_ops_s = use_min ? r.ops_per_sec_min(cfg.total_ops)
                                         : r.ops_per_sec(cfg.total_ops);
      table.row(
          {std::string(v.tag), std::to_string(t),
           Table::fmt(use_min ? r.min_ms : r.mean_ms, 1),
           Table::fmt(shown_ops_s / 1e3, 0),
           Table::fmt(100.0 * r.abort_ratio(), 1),
           std::to_string(s.attempts_percentile(0.50)),
           std::to_string(s.attempts_percentile(0.99)),
           std::to_string(s.max_attempts),
           std::to_string(
               s.aborts[static_cast<std::size_t>(stm::AbortReason::CmKilled)]),
           std::to_string(s.throttle_waits)});

      JsonRecord rec;
      rec.bench = "contention_mgmt";
      rec.workload = v.tag;
      rec.mode = stm::to_string(stm::Mode::Lazy);
      rec.threads = static_cast<int>(t);
      rec.ops_per_txn = cfg.ops_per_txn;
      rec.write_fraction = cfg.write_fraction;
      rec.ops_per_sec = shown_ops_s;
      rec.abort_ratio = r.abort_ratio();
      rec.with_stats(s);
      json.add(std::move(rec));
    }
    std::printf("\n");
  }

  if (cli.has("json")) {
    const std::string path = cli.get("json", "BENCH_CM.json");
    if (!json.write(path)) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
