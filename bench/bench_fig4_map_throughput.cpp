// Figure 4 (top block): time to process N randomly selected operations on a
// shared transactional map as the thread count grows, for each (write
// fraction u, ops-per-transaction o) cell, across the implementations §7
// compares:
//   pure-stm           — traditional STM map (read/write-set conflicts)
//   predication        — Bronson et al. per-key predicates
//   proust-eager       — eager/optimistic Proustian map (inverses)
//   proust-lazy-snap   — lazy/optimistic, snapshot shadow copies
//   proust-lazy-memo   — lazy/optimistic, memoizing shadow copies
//   proust-pess        — pessimistic (Boosting-style), shown only at o=1,
//                        matching the paper's note about livelock with
//                        longer transactions (see bench_pessimistic_livelock)
//   global-lock        — whole-txn global mutex (reference floor/ceiling)
//
// Defaults are scaled for a small machine; pass --full for the paper's grid
// (t∈{1..32}, o∈{1,2,16,256}, u∈{0,.25,.5,.75,1}, --ops=1000000).
#include <cstdio>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/json.hpp"
#include "bench_util/table.hpp"

using namespace proust;
using namespace proust::bench;

namespace {

template <class Adapter>
void bench_one(Table& table, JsonWriter* json, const std::string& name,
               Adapter& adapter, RunConfig cfg, const char* scheme,
               const char* bench_name = "fig4_map_throughput",
               bool use_min = false) {
  prefill_half(adapter, cfg.key_range);
  const RunResult r = run_map_throughput(adapter, cfg);
  const double abort_pct = 100.0 * r.abort_ratio();
  table.row({name, Table::fmt(cfg.write_fraction, 2),
             std::to_string(cfg.ops_per_txn), std::to_string(cfg.threads),
             Table::fmt(use_min ? r.min_ms : r.mean_ms, 1),
             Table::fmt(r.sd_ms, 1), Table::fmt(abort_pct, 1)});
  if (json != nullptr) {
    JsonRecord rec{bench_name, name, "", cfg.threads,
                   cfg.ops_per_txn, cfg.write_fraction,
                   use_min ? r.ops_per_sec_min(cfg.total_ops)
                           : r.ops_per_sec(cfg.total_ops),
                   r.abort_ratio()};
    rec.scheme = scheme;
    rec.with_stats(r.stats);
    json->add(std::move(rec));
  }
}

/// Pessimistic-LAP thread sweep (--pess-sweep): eager (Boosting-style
/// inverses) and lazy (memo replay log) strategies over the abstract-lock
/// fast path, 1..16 threads. This is the trajectory workload recorded as
/// "pr3-abstract-locks" in BENCH_STM.json — it isolates the cost of the
/// abstract locks themselves (o=1 keeps livelock out of the picture, as §7
/// does for the pessimistic rows of Figure 4).
int run_pess_sweep(const Cli& cli) {
  RunConfig base;
  base.total_ops = cli.get_long("ops", 30000);
  base.key_range = cli.get_long("key-range", 1024);
  base.warmup_runs = static_cast<int>(cli.get_long("warmup", 1));
  base.timed_runs = static_cast<int>(cli.get_long("runs", 3));
  base.ops_per_txn = static_cast<int>(cli.get_long("o", 1));
  const stm::Mode mode = cli.get_mode("mode", stm::Mode::Lazy);
  stm::StmOptions opts;
  opts.clock_scheme = cli.get_scheme("scheme", stm::ClockScheme::IncOnCommit);
  opts.optimistic_reads = cli.get("read-path", "locked") == "optimistic";
  const std::size_t stripes =
      static_cast<std::size_t>(cli.get_long("ca-slots", 1024));

  const auto thread_counts =
      cli.get_longs("threads", std::vector<long>{1, 2, 4, 8, 16});
  const auto write_fracs =
      cli.get_doubles("u", std::vector<double>{0.5, 1});

  std::printf("# Pessimistic-LAP sweep: %ld ops, o=%d, %zu stripes, mode %s\n",
              base.total_ops, base.ops_per_txn, stripes, stm::to_string(mode));
  Table table({"impl", "u", "o", "threads", "ms", "sd", "abort%"});

  const std::string json_path = cli.get("json", "");
  JsonWriter json_writer(cli.get("label", "pess-sweep"));
  JsonWriter* json = json_path.empty() ? nullptr : &json_writer;

  for (double u : write_fracs) {
    for (long t : thread_counts) {
      RunConfig cfg = base;
      cfg.write_fraction = u;
      cfg.threads = static_cast<int>(t);
      {
        PessimisticAdapter a(mode, stripes, opts);
        bench_one(table, json, a.name(), a, cfg, "", "pess_sweep");
      }
      {
        LazyMemoPessAdapter a(mode, stripes, opts);
        bench_one(table, json, a.name(), a, cfg, "", "pess_sweep");
      }
    }
    std::printf("\n");
  }
  if (json != nullptr) {
    if (!json->write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}

/// Read-path sweep (--read-sweep): the pessimistic boosted map with the
/// locked read path vs the optimistic unlocked fast path (DESIGN.md §12),
/// over read-mostly mixes. This is the trajectory workload recorded as
/// "pr7-read-fast-path" in BENCH_STM.json; the acceptance bar is >=1.5x
/// single-thread lookup throughput at u <= 0.2. Defaults to o=8: the
/// fixed per-transaction cost (begin/commit, ~55 ns) is identical on both
/// paths, so multi-lookup transactions are what isolate the per-read
/// delta this ablation is about. --stat=min reports each cell's fastest
/// timed run instead of the mean: on a shared vCPU, steal time inflates a
/// subset of runs by multiples of the true cost, and the minimum is the
/// standard estimator under one-sided noise.
int run_read_sweep(const Cli& cli) {
  RunConfig base;
  base.total_ops = cli.get_long("ops", 30000);
  base.key_range = cli.get_long("key-range", 1024);
  base.warmup_runs = static_cast<int>(cli.get_long("warmup", 1));
  base.timed_runs = static_cast<int>(cli.get_long("runs", 3));
  base.ops_per_txn = static_cast<int>(cli.get_long("o", 8));
  base.zipf_theta = cli.get_double("zipf", 0.0);
  const stm::Mode mode = cli.get_mode("mode", stm::Mode::Lazy);
  stm::StmOptions opts;
  opts.clock_scheme = cli.get_scheme("scheme", stm::ClockScheme::IncOnCommit);
  const std::size_t stripes =
      static_cast<std::size_t>(cli.get_long("ca-slots", 1024));

  const auto thread_counts =
      cli.get_longs("threads", std::vector<long>{1, 2, 4});
  const auto write_fracs =
      cli.get_doubles("u", std::vector<double>{0, 0.1, 0.2});
  // --prefill=full populates every key so lookups always hit (the YCSB-C
  // shape: reads of records that exist). The default half-populated table
  // models put/remove churn steady state, but at u=0 it just makes half
  // the reads fail — a coin-flip found/not-found branch per lookup.
  const bool prefill_full = cli.get("prefill", "half") == "full";

  std::printf("# Read-path sweep: %ld ops, o=%d, %zu stripes, mode %s\n",
              base.total_ops, base.ops_per_txn, stripes, stm::to_string(mode));
  Table table({"impl", "u", "o", "threads", "ms", "sd", "abort%"});

  const std::string json_path = cli.get("json", "");
  JsonWriter json_writer(cli.get("label", "read-sweep"));
  JsonWriter* json = json_path.empty() ? nullptr : &json_writer;
  const bool use_min = cli.get("stat", "mean") == "min";

  const auto emit = [&](const std::string& name, const RunConfig& cfg,
                        const RunResult& r) {
    table.row({name, Table::fmt(cfg.write_fraction, 2),
               std::to_string(cfg.ops_per_txn), std::to_string(cfg.threads),
               Table::fmt(use_min ? r.min_ms : r.mean_ms, 1),
               Table::fmt(r.sd_ms, 1), Table::fmt(100.0 * r.abort_ratio(), 1)});
    if (json != nullptr) {
      JsonRecord rec{"read_sweep", name, "", cfg.threads,
                     cfg.ops_per_txn, cfg.write_fraction,
                     use_min ? r.ops_per_sec_min(cfg.total_ops)
                             : r.ops_per_sec(cfg.total_ops),
                     r.abort_ratio()};
      rec.with_stats(r.stats);
      json->add(std::move(rec));
    }
  };

  for (double u : write_fracs) {
    for (long t : thread_counts) {
      RunConfig cfg = base;
      cfg.write_fraction = u;
      cfg.threads = static_cast<int>(t);
      stm::StmOptions locked = opts;
      locked.optimistic_reads = false;
      stm::StmOptions fast = opts;
      fast.optimistic_reads = true;
      PessimisticAdapter la(mode, stripes, locked);
      PessimisticAdapter fa(mode, stripes, fast);
      if (prefill_full) {
        for (long k = 0; k < cfg.key_range; ++k) {
          la.prefill(k, k);
          fa.prefill(k, k);
        }
      } else {
        prefill_half(la, cfg.key_range);
        prefill_half(fa, cfg.key_range);
      }
      // Interleaved A/B runs: the locked:optimistic ratio is the point of
      // this ablation, so both must sample the same noise phases.
      const auto [lr, fr] = run_map_throughput_paired(la, fa, cfg);
      emit(la.name() + std::string("[locked]"), cfg, lr);
      emit(fa.name() + std::string("[optimistic]"), cfg, fr);
    }
    std::printf("\n");
  }
  if (json != nullptr) {
    if (!json->write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.has("pess-sweep")) return run_pess_sweep(cli);
  if (cli.has("read-sweep")) return run_read_sweep(cli);
  const bool full = cli.has("full");

  RunConfig base;
  base.total_ops = cli.get_long("ops", full ? 1000000 : 30000);
  base.key_range = cli.get_long("key-range", 1024);
  base.warmup_runs = static_cast<int>(cli.get_long("warmup", full ? 10 : 1));
  base.timed_runs = static_cast<int>(cli.get_long("runs", full ? 10 : 2));
  base.zipf_theta = cli.get_double("zipf", 0.0);
  const stm::Mode mode = cli.get_mode("mode", stm::Mode::Lazy);
  const stm::ClockScheme scheme =
      cli.get_scheme("scheme", stm::ClockScheme::IncOnCommit);
  stm::StmOptions opts;
  opts.clock_scheme = scheme;
  // --read-path={locked,optimistic}: route wrapper reads through the
  // abstract lock (default) or the sequence-validated unlocked fast path.
  opts.optimistic_reads = cli.get("read-path", "locked") == "optimistic";
  const std::size_t ca_slots =
      static_cast<std::size_t>(cli.get_long("ca-slots", 1024));

  const auto thread_counts = cli.get_longs(
      "threads", full ? std::vector<long>{1, 2, 4, 8, 16, 32}
                      : std::vector<long>{1, 2, 4, 8, 16});
  const auto txn_sizes =
      cli.get_longs("o", full ? std::vector<long>{1, 2, 16, 256}
                              : std::vector<long>{1, 16, 256});
  const auto write_fracs = cli.get_doubles(
      "u", full ? std::vector<double>{0, 0.25, 0.5, 0.75, 1}
                : std::vector<double>{0, 0.5, 1});

  std::printf("# Figure 4 (top): map throughput, %ld ops, key range %ld, "
              "STM mode %s, clock scheme %s\n",
              base.total_ops, base.key_range, stm::to_string(mode),
              stm::to_string(scheme));
  Table table({"impl", "u", "o", "threads", "ms", "sd", "abort%"});

  const std::string json_path = cli.get("json", "");
  JsonWriter json_writer(cli.get("label", "current"));
  JsonWriter* json = json_path.empty() ? nullptr : &json_writer;

  for (double u : write_fracs) {
    for (long o : txn_sizes) {
      for (long t : thread_counts) {
        RunConfig cfg = base;
        cfg.write_fraction = u;
        cfg.ops_per_txn = static_cast<int>(o);
        cfg.threads = static_cast<int>(t);

        const char* sch = stm::to_string(scheme);
        {
          PureStmAdapter a(mode, cfg.key_range, opts);
          bench_one(table, json, a.name(), a, cfg, sch);
        }
        {
          PredicationAdapter a(mode, opts);
          bench_one(table, json, a.name(), a, cfg, sch);
        }
        {
          EagerOptAdapter a(mode, ca_slots, opts);
          bench_one(table, json, a.name(), a, cfg, sch);
        }
        {
          LazySnapshotAdapter a(mode, ca_slots, opts);
          bench_one(table, json, a.name(), a, cfg, sch);
        }
        {
          LazyMemoAdapter a(mode, ca_slots, /*combine=*/false, opts);
          bench_one(table, json, a.name(), a, cfg, sch);
        }
        if (o == 1) {
          // Pessimistic results only at o = 1, as in the paper (§7: longer
          // transactions livelocked under the weak CM coupling).
          PessimisticAdapter a(mode, ca_slots, opts);
          bench_one(table, json, a.name(), a, cfg, sch);
        }
        {
          GlobalLockAdapter a;
          bench_one(table, json, a.name(), a, cfg, "");
        }
      }
      std::printf("\n");
    }
  }
  if (json != nullptr) {
    if (!json->write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}
