// Ablation: the full log-combining family — §7's memoized-replay combining
// (Figure 4 bottom) plus §9's future-work extensions to snapshot replays and
// undo logs, all implemented and measured here. Replay/undo cost is
// proportional to operations without combining and to distinct touched keys
// with it, so the win grows with o and shrinks with key range.
#include <cstdio>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"
#include "core/lazy_trie_map.hpp"
#include "core/txn_hash_map.hpp"

using namespace proust;
using namespace proust::bench;

namespace {

/// Adapter for the snapshot map with the combining switch.
class LazySnapCombiningAdapter
    : public StmAdapterBase<
          LazySnapCombiningAdapter,
          core::LazyTrieMap<long, long, core::OptimisticLap<long>>> {
  using Lap = core::OptimisticLap<long>;
  using Map = core::LazyTrieMap<long, long, Lap>;

 public:
  LazySnapCombiningAdapter(stm::Mode mode, std::size_t ca, bool combine)
      : StmAdapterBase(mode), lap_(stm_, ca), map_(lap_, combine),
        combine_(combine) {}
  std::string name() const {
    return combine_ ? "lazy-snap+c" : "lazy-snap";
  }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Lap lap_;
  Map map_;
  bool combine_;
};

/// Adapter for the eager map with undo-log combining.
class EagerUndoCombiningAdapter
    : public StmAdapterBase<
          EagerUndoCombiningAdapter,
          core::TxnHashMap<long, long, core::OptimisticLap<long>>> {
  using Lap = core::OptimisticLap<long>;
  using Map = core::TxnHashMap<long, long, Lap>;

 public:
  EagerUndoCombiningAdapter(stm::Mode mode, std::size_t ca, bool combine)
      : StmAdapterBase(mode), lap_(stm_, ca), map_(lap_, 64, combine),
        combine_(combine) {}
  std::string name() const {
    return combine_ ? "eager-undo+c" : "eager-undo";
  }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Lap lap_;
  Map map_;
  bool combine_;
};

template <class A>
void run_row(Table& table, A& a, RunConfig cfg) {
  prefill_half(a, cfg.key_range);
  const RunResult r = run_map_throughput(a, cfg);
  const double abort_pct =
      r.starts ? 100.0 * static_cast<double>(r.aborts) /
                     static_cast<double>(r.starts)
               : 0;
  table.row({a.name(), std::to_string(cfg.ops_per_txn),
             std::to_string(cfg.key_range), Table::fmt(r.mean_ms, 1),
             Table::fmt(r.sd_ms, 1), Table::fmt(abort_pct, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  RunConfig base;
  base.total_ops = cli.get_long("ops", 30000);
  base.write_fraction = cli.get_double("u", 1.0);  // updates stress the logs
  base.threads = static_cast<int>(cli.get_long("threads", 2));
  base.warmup_runs = 1;
  base.timed_runs = 2;
  const std::size_t ca = 1024;

  const auto txn_sizes = cli.get_longs("o", std::vector<long>{16, 64, 256});
  const auto key_ranges =
      cli.get_longs("key-range", std::vector<long>{32, 1024});

  std::printf("# Log-combining ablation (Fig. 4 bottom + Sec. 9 extensions): "
              "u=%.2f, t=%d, %ld ops\n",
              base.write_fraction, base.threads, base.total_ops);
  Table table({"impl", "o", "key-range", "ms", "sd", "abort%"});

  for (long o : txn_sizes) {
    for (long kr : key_ranges) {
      RunConfig cfg = base;
      cfg.ops_per_txn = static_cast<int>(o);
      cfg.key_range = kr;
      for (bool combine : {false, true}) {
        LazyMemoAdapter memo(stm::Mode::Lazy, ca, combine);
        run_row(table, memo, cfg);
      }
      for (bool combine : {false, true}) {
        LazySnapCombiningAdapter snap(stm::Mode::Lazy, ca, combine);
        run_row(table, snap, cfg);
      }
      for (bool combine : {false, true}) {
        EagerUndoCombiningAdapter undo(stm::Mode::EagerAll, ca, combine);
        run_row(table, undo, cfg);
      }
      std::printf("\n");
    }
  }
  return 0;
}
