// Ablation: the conflict-abstraction region size M (§3: "allocate only M
// locations ... and have operations with key k read and write location
// k mod M. This practice is similar to lock striping"). Small M saves
// memory but manufactures false conflicts; the sweep shows the
// abort-rate/throughput trade-off, and the verify module independently
// counts false conflicts on the bounded model for the same M values.
#include <cstdio>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/json.hpp"
#include "bench_util/table.hpp"
#include "verify/checker.hpp"

using namespace proust;
using namespace proust::bench;

namespace {

template <class Adapter>
void run_row(Table& table, JsonWriter* json, const char* bench,
             const std::string& name, Adapter& a, const RunConfig& cfg,
             long m) {
  prefill_half(a, cfg.key_range);
  const RunResult r = run_map_throughput(a, cfg);
  const double abort_pct = 100.0 * r.abort_ratio();
  table.row({name, std::to_string(m), std::to_string(cfg.threads),
             Table::fmt(r.mean_ms, 1), Table::fmt(abort_pct, 2)});
  if (json != nullptr) {
    JsonRecord rec{bench,          name,
                   "",             cfg.threads,
                   cfg.ops_per_txn, cfg.write_fraction,
                   r.ops_per_sec(cfg.total_ops), r.abort_ratio()};
    rec.extra = m;  // the striping size under ablation
    rec.with_stats(r.stats);
    json->add(std::move(rec));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  RunConfig cfg;
  cfg.total_ops = cli.get_long("ops", 20000);
  cfg.key_range = cli.get_long("key-range", 1024);
  cfg.write_fraction = cli.get_double("u", 0.5);
  cfg.threads = static_cast<int>(cli.get_long("threads", 4));
  cfg.ops_per_txn = static_cast<int>(cli.get_long("o", 4));
  cfg.warmup_runs = 1;
  cfg.timed_runs = 2;

  const auto slot_counts = cli.get_longs(
      "m", std::vector<long>{4, 16, 64, 256, 1024, 4096});

  const std::string json_path = cli.get("json", "");
  JsonWriter json_writer(cli.get("label", "ablation-striping"));
  JsonWriter* json = json_path.empty() ? nullptr : &json_writer;

  std::printf("# Ablation: CA striping size M (u=%.2f, o=%d, t=%d, keys=%ld)\n",
              cfg.write_fraction, cfg.ops_per_txn, cfg.threads, cfg.key_range);
  Table table({"impl", "M", "threads", "ms", "abort%"});
  for (long m : slot_counts) {
    EagerOptAdapter a(stm::Mode::Lazy, static_cast<std::size_t>(m));
    run_row(table, json, "ablation_striping", a.name(), a, cfg, m);
  }

  // The same M axis for the pessimistic LAP, where M is the abstract-lock
  // stripe count, across a thread sweep (the stripes are contended state
  // even when the keys don't conflict — exactly what the atomic-word lock
  // fast path is supposed to make cheap).
  const auto pess_threads =
      cli.get_longs("pess-threads", std::vector<long>{1, 2, 4, 8, 16});
  const auto pess_slots =
      cli.get_longs("pess-m", std::vector<long>{64, 1024});
  std::printf("\n# Pessimistic LAP: stripes x threads (u=%.2f, o=%d)\n",
              cfg.write_fraction, cfg.ops_per_txn);
  Table table_p({"impl", "M", "threads", "ms", "abort%"});
  for (long m : pess_slots) {
    for (long t : pess_threads) {
      RunConfig pcfg = cfg;
      pcfg.threads = static_cast<int>(t);
      {
        PessimisticAdapter a(stm::Mode::Lazy, static_cast<std::size_t>(m));
        run_row(table_p, json, "ablation_striping_pess", a.name(), a, pcfg, m);
      }
      {
        LazyMemoPessAdapter a(stm::Mode::Lazy, static_cast<std::size_t>(m));
        run_row(table_p, json, "ablation_striping_pess", a.name(), a, pcfg, m);
      }
    }
  }
  if (json != nullptr) {
    if (!json->write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json_path.c_str());
  }

  // The same trade-off, decided analytically on the bounded model.
  std::printf("\n# False conflicts on the bounded map model (4 keys), by M\n");
  Table table2({"M", "false-conflicts", "pairs"});
  const verify::ModelSpec model = verify::make_map_model(4, 2);
  for (int m : {1, 2, 3, 4}) {
    table2.row({std::to_string(m),
                std::to_string(
                    verify::count_false_conflicts(model, verify::map_ca_striped(m))),
                std::to_string(verify::count_pairs(model))});
  }
  return 0;
}
