// Ablation: the conflict-abstraction region size M (§3: "allocate only M
// locations ... and have operations with key k read and write location
// k mod M. This practice is similar to lock striping"). Small M saves
// memory but manufactures false conflicts; the sweep shows the
// abort-rate/throughput trade-off, and the verify module independently
// counts false conflicts on the bounded model for the same M values.
#include <cstdio>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"
#include "verify/checker.hpp"

using namespace proust;
using namespace proust::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  RunConfig cfg;
  cfg.total_ops = cli.get_long("ops", 20000);
  cfg.key_range = cli.get_long("key-range", 1024);
  cfg.write_fraction = cli.get_double("u", 0.5);
  cfg.threads = static_cast<int>(cli.get_long("threads", 4));
  cfg.ops_per_txn = static_cast<int>(cli.get_long("o", 4));
  cfg.warmup_runs = 1;
  cfg.timed_runs = 2;

  const auto slot_counts = cli.get_longs(
      "m", std::vector<long>{4, 16, 64, 256, 1024, 4096});

  std::printf("# Ablation: CA striping size M (u=%.2f, o=%d, t=%d, keys=%ld)\n",
              cfg.write_fraction, cfg.ops_per_txn, cfg.threads, cfg.key_range);
  Table table({"impl", "M", "ms", "abort%"});
  for (long m : slot_counts) {
    EagerOptAdapter a(stm::Mode::Lazy, static_cast<std::size_t>(m));
    prefill_half(a, cfg.key_range);
    const RunResult r = run_map_throughput(a, cfg);
    const double abort_pct =
        r.starts ? 100.0 * static_cast<double>(r.aborts) /
                       static_cast<double>(r.starts)
                 : 0;
    table.row({"proust-eager", std::to_string(m), Table::fmt(r.mean_ms, 1),
               Table::fmt(abort_pct, 2)});
  }

  // The same trade-off, decided analytically on the bounded model.
  std::printf("\n# False conflicts on the bounded map model (4 keys), by M\n");
  Table table2({"M", "false-conflicts", "pairs"});
  const verify::ModelSpec model = verify::make_map_model(4, 2);
  for (int m : {1, 2, 3, 4}) {
    table2.row({std::to_string(m),
                std::to_string(
                    verify::count_false_conflicts(model, verify::map_ca_striped(m))),
                std::to_string(verify::count_pairs(model))});
  }
  return 0;
}
