// Microbenchmarks of the base thread-safe containers vs. their Proustian
// wrappers: the per-operation price of transactionality (CA access + hook
// bookkeeping + shadow copies) over the raw structures the paper re-uses.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "containers/blocking_pqueue.hpp"
#include "containers/cow_heap.hpp"
#include "containers/snapshot_hamt.hpp"
#include "containers/striped_hash_map.hpp"
#include "core/lap.hpp"
#include "core/lazy_trie_map.hpp"
#include "core/txn_hash_map.hpp"

using namespace proust;

namespace {
// --read-path={locked,optimistic}: which read path the flag-driven wrapper
// benchmarks use (the _Locked/_Optimistic pairs below always run both).
bool g_optimistic_reads = false;

stm::StmOptions read_path_opts() {
  stm::StmOptions o;
  o.optimistic_reads = g_optimistic_reads;
  return o;
}
}  // namespace

static void BM_StripedMapPut(benchmark::State& state) {
  containers::StripedHashMap<long, long> m;
  long k = 0;
  for (auto _ : state) {
    ++k;
    benchmark::DoNotOptimize(m.put(k & 1023, k));
  }
}
BENCHMARK(BM_StripedMapPut);

static void BM_StripedMapGet(benchmark::State& state) {
  containers::StripedHashMap<long, long> m;
  for (long i = 0; i < 1024; ++i) m.put(i, i);
  long k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.get(++k & 1023));
  }
}
BENCHMARK(BM_StripedMapGet);

static void BM_HamtPut(benchmark::State& state) {
  containers::SnapshotHamt<long, long> m;
  long k = 0;
  for (auto _ : state) {
    ++k;
    benchmark::DoNotOptimize(m.put(k & 1023, k));
  }
}
BENCHMARK(BM_HamtPut);

static void BM_HamtGet(benchmark::State& state) {
  containers::SnapshotHamt<long, long> m;
  for (long i = 0; i < 1024; ++i) m.put(i, i);
  long k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.get(++k & 1023));
  }
}
BENCHMARK(BM_HamtGet);

static void BM_HamtSnapshot(benchmark::State& state) {
  containers::SnapshotHamt<long, long> m;
  for (long i = 0; i < static_cast<long>(state.range(0)); ++i) m.put(i, i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.snapshot());
  }
}
BENCHMARK(BM_HamtSnapshot)->Arg(16)->Arg(1024)->Arg(65536);

static void BM_CowHeapInsertRemove(benchmark::State& state) {
  containers::CowHeap<long> h;
  for (long i = 0; i < 1024; ++i) h.insert(i);
  long k = 0;
  for (auto _ : state) {
    h.insert(++k & 4095);
    benchmark::DoNotOptimize(h.remove_min());
  }
}
BENCHMARK(BM_CowHeapInsertRemove);

static void BM_BlockingPQueueAddPoll(benchmark::State& state) {
  containers::BlockingPriorityQueue<long> q;
  for (long i = 0; i < 1024; ++i) q.add(i);
  long k = 0;
  for (auto _ : state) {
    q.add(++k & 4095);
    benchmark::DoNotOptimize(q.poll());
  }
}
BENCHMARK(BM_BlockingPQueueAddPoll);

// Wrapper overhead: the same put through the eager Proustian map.
static void BM_TxnHashMapPut(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 1024);
  core::TxnHashMap<long, long, core::OptimisticLap<long>> m(lap);
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      benchmark::DoNotOptimize(m.put(tx, ++k & 1023, k));
    });
  }
}
BENCHMARK(BM_TxnHashMapPut);

static void BM_LazyTrieMapPut(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 1024);
  core::LazyTrieMap<long, long, core::OptimisticLap<long>> m(lap);
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      benchmark::DoNotOptimize(m.put(tx, ++k & 1023, k));
    });
  }
}
BENCHMARK(BM_LazyTrieMapPut);

// Transactional lookups through the selected read path (--read-path).
static void BM_TxnHashMapGet(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy, read_path_opts());
  core::OptimisticLap<long> lap(stm, 1024);
  core::TxnHashMap<long, long, core::OptimisticLap<long>> m(lap);
  for (long i = 0; i < 1024; ++i) {
    stm.atomically([&](stm::Txn& tx) { m.put(tx, i, i); });
  }
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      benchmark::DoNotOptimize(m.get(tx, ++k & 1023));
    });
  }
}
BENCHMARK(BM_TxnHashMapGet);

// The DESIGN.md §12 acceptance pair: pessimistic boosted map lookups with
// the abstract lock vs the sequence-validated unlocked fast path.
template <bool Optimistic>
static void BM_TxnHashMapGetReadPath(benchmark::State& state) {
  stm::StmOptions o;
  o.optimistic_reads = Optimistic;
  stm::Stm stm(stm::Mode::Lazy, o);
  core::PessimisticLap<long> lap(stm, 1024);
  core::TxnHashMap<long, long, core::PessimisticLap<long>> m(lap);
  for (long i = 0; i < 1024; ++i) {
    stm.atomically([&](stm::Txn& tx) { m.put(tx, i, i); });
  }
  // Arg = lookups per transaction: o>1 amortizes the fixed begin/commit
  // cost and exercises the per-admission revalidation scan (fast path) /
  // multi-stripe hold list (locked path) the --read-sweep cells hit.
  const long per_txn = state.range(0);
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      for (long i = 0; i < per_txn; ++i) {
        benchmark::DoNotOptimize(m.get(tx, ++k & 1023));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * per_txn);
}
BENCHMARK_TEMPLATE(BM_TxnHashMapGetReadPath, false)
    ->Name("BM_TxnHashMapGet_Locked")->Arg(1)->Arg(8);
BENCHMARK_TEMPLATE(BM_TxnHashMapGetReadPath, true)
    ->Name("BM_TxnHashMapGet_Optimistic")->Arg(1)->Arg(8);

int main(int argc, char** argv) {
  // Consume --read-path before google-benchmark sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--read-path=optimistic") {
      g_optimistic_reads = true;
    } else if (arg == "--read-path=locked") {
      g_optimistic_reads = false;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
