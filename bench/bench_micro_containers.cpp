// Microbenchmarks of the base thread-safe containers vs. their Proustian
// wrappers: the per-operation price of transactionality (CA access + hook
// bookkeeping + shadow copies) over the raw structures the paper re-uses.
#include <benchmark/benchmark.h>

#include "containers/blocking_pqueue.hpp"
#include "containers/cow_heap.hpp"
#include "containers/snapshot_hamt.hpp"
#include "containers/striped_hash_map.hpp"
#include "core/lap.hpp"
#include "core/lazy_trie_map.hpp"
#include "core/txn_hash_map.hpp"

using namespace proust;

static void BM_StripedMapPut(benchmark::State& state) {
  containers::StripedHashMap<long, long> m;
  long k = 0;
  for (auto _ : state) {
    ++k;
    benchmark::DoNotOptimize(m.put(k & 1023, k));
  }
}
BENCHMARK(BM_StripedMapPut);

static void BM_StripedMapGet(benchmark::State& state) {
  containers::StripedHashMap<long, long> m;
  for (long i = 0; i < 1024; ++i) m.put(i, i);
  long k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.get(++k & 1023));
  }
}
BENCHMARK(BM_StripedMapGet);

static void BM_HamtPut(benchmark::State& state) {
  containers::SnapshotHamt<long, long> m;
  long k = 0;
  for (auto _ : state) {
    ++k;
    benchmark::DoNotOptimize(m.put(k & 1023, k));
  }
}
BENCHMARK(BM_HamtPut);

static void BM_HamtGet(benchmark::State& state) {
  containers::SnapshotHamt<long, long> m;
  for (long i = 0; i < 1024; ++i) m.put(i, i);
  long k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.get(++k & 1023));
  }
}
BENCHMARK(BM_HamtGet);

static void BM_HamtSnapshot(benchmark::State& state) {
  containers::SnapshotHamt<long, long> m;
  for (long i = 0; i < static_cast<long>(state.range(0)); ++i) m.put(i, i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.snapshot());
  }
}
BENCHMARK(BM_HamtSnapshot)->Arg(16)->Arg(1024)->Arg(65536);

static void BM_CowHeapInsertRemove(benchmark::State& state) {
  containers::CowHeap<long> h;
  for (long i = 0; i < 1024; ++i) h.insert(i);
  long k = 0;
  for (auto _ : state) {
    h.insert(++k & 4095);
    benchmark::DoNotOptimize(h.remove_min());
  }
}
BENCHMARK(BM_CowHeapInsertRemove);

static void BM_BlockingPQueueAddPoll(benchmark::State& state) {
  containers::BlockingPriorityQueue<long> q;
  for (long i = 0; i < 1024; ++i) q.add(i);
  long k = 0;
  for (auto _ : state) {
    q.add(++k & 4095);
    benchmark::DoNotOptimize(q.poll());
  }
}
BENCHMARK(BM_BlockingPQueueAddPoll);

// Wrapper overhead: the same put through the eager Proustian map.
static void BM_TxnHashMapPut(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 1024);
  core::TxnHashMap<long, long, core::OptimisticLap<long>> m(lap);
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      benchmark::DoNotOptimize(m.put(tx, ++k & 1023, k));
    });
  }
}
BENCHMARK(BM_TxnHashMapPut);

static void BM_LazyTrieMapPut(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 1024);
  core::LazyTrieMap<long, long, core::OptimisticLap<long>> m(lap);
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      benchmark::DoNotOptimize(m.put(tx, ++k & 1023, k));
    });
  }
}
BENCHMARK(BM_LazyTrieMapPut);
