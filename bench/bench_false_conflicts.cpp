// The paper's core claim measured directly: read/write-set conflict
// detection "often leads to false conflicts, when operations that could
// have correctly executed concurrently are deemed to conflict" (§1).
//
// On a single-vCPU host transactions rarely overlap in time, so wall-clock
// runs under-report conflict behaviour (see EXPERIMENTS.md). This harness
// forces overlap deterministically: two threads run lock-step trials — each
// starts a transaction, performs its operations, meets the other at a
// barrier *inside* the transaction, and only then commits. With DISJOINT
// key sets the operations commute, so every abort is a false conflict:
//   pure-stm     — aborts via the transactional size variable and probe
//                  overlap (representational conflicts);
//   predication  — per-key predicates: no false conflicts;
//   proust-*     — conflict abstraction: no false conflicts (with enough
//                  CA slots; sweep --ca-slots to reintroduce striping
//                  collisions).
// With IDENTICAL key sets everything must conflict (sanity row).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "baselines/pure_stm_tree_map.hpp"
#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"

using namespace proust;
using namespace proust::bench;

namespace {

/// Adapter for the pure-STM treap (structural false conflicts: rotations
/// and the root pointer put logically-disjoint keys into shared locations).
class PureStmTreeAdapter
    : public StmAdapterBase<PureStmTreeAdapter,
                            baselines::PureStmTreeMap<long, long>> {
  using Map = baselines::PureStmTreeMap<long, long>;

 public:
  explicit PureStmTreeAdapter(stm::Mode mode)
      : StmAdapterBase(mode), map_(stm_, 8192) {}
  static std::string name() { return "pure-stm-tree"; }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Map map_;
};

struct TrialResult {
  std::uint64_t aborts = 0;
  std::uint64_t commits = 0;
};

/// Two threads; `trials` lock-step rounds; thread t's keys start at
/// t*stride (stride=ops → disjoint; stride=0 → identical).
///
/// Overlap protocol: on its first attempt each thread performs its
/// operations, announces readiness, then spin-waits (bounded) for the peer
/// before returning from the transaction body. The bound makes the
/// handshake abort-tolerant — if the peer's first attempt aborted before
/// announcing, we proceed after the deadline instead of deadlocking, and
/// retries skip the handshake entirely (the overlap already happened).
template <class Adapter>
TrialResult lock_step(Adapter& adapter, int trials, int ops, long stride) {
  adapter.reset_stats();
  for (int trial = 0; trial < trials; ++trial) {
    std::atomic<int> ready{0};
    std::thread peers[2];
    for (int t = 0; t < 2; ++t) {
      peers[t] = std::thread([&, t] {
        bool first_attempt = true;
        adapter.txn([&](auto& view) {
          const long base = t * stride;
          for (int i = 0; i < ops; ++i) {
            const long k = base + i;
            // Alternate insert/remove so the trial flips presence (size
            // changes every committed op — the representational stressor).
            if (trial % 2 == 0) {
              view.put(k, trial);
            } else {
              view.remove(k);
            }
          }
          if (first_attempt) {
            first_attempt = false;
            ready.fetch_add(1, std::memory_order_acq_rel);
            const auto deadline =
                std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
            while (ready.load(std::memory_order_acquire) < 2 &&
                   std::chrono::steady_clock::now() < deadline) {
              std::this_thread::yield();
            }
          }
        });
      });
    }
    peers[0].join();
    peers[1].join();
  }
  const stm::StatsSnapshot s = adapter.stats();
  return {s.total_aborts(), s.commits};
}

template <class Adapter>
void run_rows(Table& table, Adapter& adapter, const std::string& name,
              int trials, int ops) {
  for (long stride : {static_cast<long>(ops), 0L}) {
    const TrialResult r = lock_step(adapter, trials, ops, stride);
    const double aborts_per_trial =
        static_cast<double>(r.aborts) / static_cast<double>(trials);
    table.row({name, stride == 0 ? "identical" : "disjoint",
               std::to_string(ops), Table::fmt(aborts_per_trial, 2),
               std::to_string(r.aborts)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_long("trials", 300));
  const int ops = static_cast<int>(cli.get_long("o", 8));
  const std::size_t ca = static_cast<std::size_t>(cli.get_long("ca-slots", 1024));
  const stm::Mode mode = cli.get_mode("mode", stm::Mode::EagerAll);

  std::printf("# False conflicts under forced overlap (%d lock-step trials, "
              "o=%d, STM mode %s)\n",
              trials, ops, stm::to_string(mode));
  std::printf("# disjoint key sets commute: every abort there is a FALSE "
              "conflict\n");
  Table table({"impl", "key-sets", "o", "aborts/trial", "total-aborts"});

  {
    PureStmAdapter a(mode, 1024);
    run_rows(table, a, a.name(), trials, ops);
  }
  {
    PureStmTreeAdapter a(mode);
    // Seed enough structure that rotations happen away from the leaves.
    for (long k = 100; k < 400; ++k) a.prefill(k, k);
    run_rows(table, a, a.name(), trials, ops);
  }
  {
    PredicationAdapter a(mode);
    run_rows(table, a, a.name(), trials, ops);
  }
  {
    EagerOptAdapter a(mode, ca);
    run_rows(table, a, a.name(), trials, ops);
  }
  {
    LazyMemoAdapter a(mode, ca, false);
    run_rows(table, a, a.name(), trials, ops);
  }
  {
    LazySnapshotAdapter a(mode, ca);
    run_rows(table, a, a.name(), trials, ops);
  }
  // Striping collision sweep: small CA regions reintroduce false conflicts
  // at the Proust layer (the §3 striping trade-off, live).
  std::printf("\n# Proust eager/optimistic with shrinking CA regions M\n");
  Table table2({"impl", "M", "key-sets", "aborts/trial"});
  for (long m : {1024L, 64L, 8L, 1L}) {
    EagerOptAdapter a(mode, static_cast<std::size_t>(m));
    const TrialResult r =
        lock_step(a, trials, ops, /*stride=*/static_cast<long>(ops));
    table2.row({"proust-eager", std::to_string(m), "disjoint",
                Table::fmt(static_cast<double>(r.aborts) / trials, 2)});
  }
  return 0;
}
