// Figure 4 (bottom block): the log-combining optimization for memoizing
// shadow copies — replay one synthetic update per touched abstract-state
// element instead of the whole operation sequence. The win grows with o
// (more repeated writes per key) exactly as §7 predicts.
#include <cstdio>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"

using namespace proust;
using namespace proust::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.has("full");

  RunConfig base;
  base.total_ops = cli.get_long("ops", full ? 1000000 : 30000);
  base.key_range = cli.get_long("key-range", 1024);
  base.warmup_runs = static_cast<int>(cli.get_long("warmup", full ? 10 : 1));
  base.timed_runs = static_cast<int>(cli.get_long("runs", full ? 10 : 2));
  const stm::Mode mode = cli.get_mode("mode", stm::Mode::Lazy);
  const std::size_t ca_slots =
      static_cast<std::size_t>(cli.get_long("ca-slots", 1024));

  const auto thread_counts = cli.get_longs(
      "threads",
      full ? std::vector<long>{1, 2, 4, 8, 16, 32} : std::vector<long>{1, 2, 4});
  // Combining matters for long transactions; small key ranges concentrate
  // repeated writes per key.
  const auto txn_sizes = cli.get_longs(
      "o", full ? std::vector<long>{16, 64, 256} : std::vector<long>{16, 256});
  const auto write_fracs =
      cli.get_doubles("u", full ? std::vector<double>{0.25, 0.5, 0.75, 1}
                                : std::vector<double>{0.5, 1});
  const long key_range_small = cli.get_long("combine-key-range", 64);

  std::printf("# Figure 4 (bottom): memoizing shadow copies, log combining "
              "on/off, %ld ops, STM mode %s\n",
              base.total_ops, stm::to_string(mode));
  Table table({"impl", "u", "o", "threads", "key-range", "ms", "sd",
               "abort%"});

  for (double u : write_fracs) {
    for (long o : txn_sizes) {
      for (long t : thread_counts) {
        for (long kr : {base.key_range, key_range_small}) {
          RunConfig cfg = base;
          cfg.write_fraction = u;
          cfg.ops_per_txn = static_cast<int>(o);
          cfg.threads = static_cast<int>(t);
          cfg.key_range = kr;
          for (bool combine : {false, true}) {
            LazyMemoAdapter a(mode, ca_slots, combine);
            prefill_half(a, cfg.key_range);
            const RunResult r = run_map_throughput(a, cfg);
            const double abort_pct =
                r.starts == 0 ? 0.0
                              : 100.0 * static_cast<double>(r.aborts) /
                                    static_cast<double>(r.starts);
            table.row({a.name(), Table::fmt(u, 2), std::to_string(o),
                       std::to_string(t), std::to_string(kr),
                       Table::fmt(r.mean_ms, 1), Table::fmt(r.sd_ms, 1),
                       Table::fmt(abort_pct, 1)});
          }
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
