// Ablation over the full Figure 1 design space: every (wrapper strategy ×
// LAP × STM conflict-detection mode) combination that makes sense, on one
// fixed workload. This is the "mix and match" capability the paper claims
// over Boosting/Predication/OTB, measured.
#include <cstdio>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"

using namespace proust;
using namespace proust::bench;

namespace {
template <class Adapter>
void run_row(Table& table, const std::string& impl, stm::Mode mode,
             Adapter& a, RunConfig cfg) {
  prefill_half(a, cfg.key_range);
  const RunResult r = run_map_throughput(a, cfg);
  const double abort_pct =
      r.starts ? 100.0 * static_cast<double>(r.aborts) /
                     static_cast<double>(r.starts)
               : 0;
  table.row({impl, stm::to_string(mode), Table::fmt(r.mean_ms, 1),
             Table::fmt(r.sd_ms, 1), Table::fmt(abort_pct, 1)});
}
}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  RunConfig cfg;
  cfg.total_ops = cli.get_long("ops", 20000);
  cfg.key_range = cli.get_long("key-range", 1024);
  cfg.write_fraction = cli.get_double("u", 0.5);
  cfg.threads = static_cast<int>(cli.get_long("threads", 4));
  cfg.ops_per_txn = static_cast<int>(cli.get_long("o", 8));
  cfg.warmup_runs = 1;
  cfg.timed_runs = 2;
  const std::size_t ca = 1024;

  std::printf("# Design-space ablation (Fig. 1): strategy x LAP x STM mode "
              "(u=%.2f, o=%d, t=%d)\n",
              cfg.write_fraction, cfg.ops_per_txn, cfg.threads);
  std::printf("# note: eager/optimistic rows on Lazy/EagerWrite are the "
              "non-opaque combination (footnote 3) — shown for the same "
              "reason the paper benchmarked them anyway\n");
  Table table({"impl", "stm-mode", "ms", "sd", "abort%"});

  const stm::Mode modes[] = {stm::Mode::Lazy, stm::Mode::EagerWrite,
                             stm::Mode::EagerAll};

  for (stm::Mode mode : modes) {
    {
      EagerOptAdapter a(mode, ca);
      run_row(table, "eager/optimistic", mode, a, cfg);
    }
    {
      LazySnapshotAdapter a(mode, ca);
      run_row(table, "lazy-snap/optimistic", mode, a, cfg);
    }
    {
      LazyMemoAdapter a(mode, ca, false);
      run_row(table, "lazy-memo/optimistic", mode, a, cfg);
    }
    {
      LazyMemoAdapter a(mode, ca, true);
      run_row(table, "lazy-memo+c/optimistic", mode, a, cfg);
    }
    {
      PureStmAdapter a(mode, cfg.key_range);
      run_row(table, "pure-stm", mode, a, cfg);
    }
    {
      PredicationAdapter a(mode);
      run_row(table, "predication", mode, a, cfg);
    }
    std::printf("\n");
  }
  // Pessimistic rows (the STM mode only affects the reified size ref, so one
  // row suffices; o is kept small to avoid the livelock regime).
  {
    RunConfig pess_cfg = cfg;
    pess_cfg.ops_per_txn = 1;
    PessimisticAdapter a(stm::Mode::Lazy, ca);
    run_row(table, "eager/pessimistic(o=1)", stm::Mode::Lazy, a, pess_cfg);
  }
  return 0;
}
