// §6's priority-queue case study: the two-element abstract state
// (PQueueMin / PQueueMultiSet) vs. Boosting's conservative single
// reader-writer lock approximation. Insert-heavy workloads let commuting
// inserts run concurrently under the abstract-state CA (group discipline /
// MultiSet-only writes) where the single-lock approximation serializes them.
#include <barrier>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/lazy_pqueue.hpp"
#include "core/txn_pqueue.hpp"
#include "stm/stm.hpp"
#include "sync/reentrant_rw_lock.hpp"

using namespace proust;
using core::PQueueState;
using core::PQueueStateHasher;

namespace {

struct Mix {
  const char* name;
  double insert, remove_min, min;  // fractions; rest = contains
};

template <class RunOp>
double timed(int threads, long iters, RunOp&& op) {
  std::barrier sync(threads + 1);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 1297 + 11);
      for (long i = 0; i < iters; ++i) op(rng);
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  const auto stop = std::chrono::steady_clock::now();
  for (auto& th : ts) th.join();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

template <class PQ, class Stm>
auto make_op(Stm& stm, PQ& pq, const Mix& mix) {
  return [&stm, &pq, mix](Xoshiro256& rng) {
    const double r = rng.uniform();
    const long v = static_cast<long>(rng.below(100000));
    if (r < mix.insert) {
      stm.atomically([&](stm::Txn& tx) { pq.insert(tx, v); });
    } else if (r < mix.insert + mix.remove_min) {
      stm.atomically([&](stm::Txn& tx) { (void)pq.remove_min(tx); });
    } else if (r < mix.insert + mix.remove_min + mix.min) {
      stm.atomically([&](stm::Txn& tx) { (void)pq.min(tx); });
    } else {
      stm.atomically([&](stm::Txn& tx) { (void)pq.contains(tx, v); });
    }
  };
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const long iters = cli.get_long("iters", 4000);
  const auto thread_counts =
      cli.get_longs("threads", std::vector<long>{1, 2, 4, 8});
  const long prefill = cli.get_long("prefill", 10000);

  const Mix mixes[] = {
      {"insert-heavy", 0.80, 0.10, 0.05},
      {"balanced", 0.40, 0.40, 0.10},
      {"observer-heavy", 0.20, 0.10, 0.60},
  };

  std::printf("# PQueue (§6): abstract-state CA vs single-RW-lock boosting "
              "approximation, %ld ops/thread, prefill %ld\n",
              iters, prefill);
  bench::Table table({"impl", "mix", "threads", "ms", "abort%"});

  for (const Mix& mix : mixes) {
    for (long t : thread_counts) {
      {  // Eager Proust, optimistic CA on the two abstract-state elements.
        stm::Stm stm(stm::Mode::EagerAll);
        core::OptimisticLap<PQueueState, PQueueStateHasher> lap(stm, 2);
        core::TxnPriorityQueue<long, decltype(lap)> pq(lap);
        for (long i = 0; i < prefill; ++i) {
          pq.unsafe_insert(static_cast<long>(i * 37 % 100000));
        }
        const double ms = timed(static_cast<int>(t), iters,
                                make_op(stm, pq, mix));
        const auto s = stm.stats().snapshot();
        const double abort_pct =
            s.starts ? 100.0 * s.total_aborts() / s.starts : 0;
        table.row({"eager-opt", mix.name, std::to_string(t),
                   bench::Table::fmt(ms, 1), bench::Table::fmt(abort_pct, 1)});
      }
      {  // Eager Proust, pessimistic LAP with the per-element disciplines
         // (MultiSet = group lock: commuting inserts don't serialize).
        stm::Stm stm(stm::Mode::Lazy);
        core::PessimisticLap<PQueueState, PQueueStateHasher> lap(
            stm, 2, core::pqueue_lock_kind, std::chrono::milliseconds(2));
        core::TxnPriorityQueue<long, decltype(lap)> pq(lap);
        for (long i = 0; i < prefill; ++i) {
          pq.unsafe_insert(static_cast<long>(i * 37 % 100000));
        }
        const double ms = timed(static_cast<int>(t), iters,
                                make_op(stm, pq, mix));
        const auto s = stm.stats().snapshot();
        const double abort_pct =
            s.starts ? 100.0 * s.total_aborts() / s.starts : 0;
        table.row({"pess-group", mix.name, std::to_string(t),
                   bench::Table::fmt(ms, 1), bench::Table::fmt(abort_pct, 1)});
      }
      {  // Boosting's published approximation: ONE reader-writer stripe for
         // the whole queue (every insert/removeMin takes the write lock).
        stm::Stm stm(stm::Mode::Lazy);
        core::PessimisticLap<PQueueState, PQueueStateHasher> lap(
            stm, 1, [](std::size_t) { return sync::LockKind::kReaderWriter; },
            std::chrono::milliseconds(2));
        core::TxnPriorityQueue<long, decltype(lap)> pq(lap);
        for (long i = 0; i < prefill; ++i) {
          pq.unsafe_insert(static_cast<long>(i * 37 % 100000));
        }
        const double ms = timed(static_cast<int>(t), iters,
                                make_op(stm, pq, mix));
        const auto s = stm.stats().snapshot();
        const double abort_pct =
            s.starts ? 100.0 * s.total_aborts() / s.starts : 0;
        table.row({"boosting-1rw", mix.name, std::to_string(t),
                   bench::Table::fmt(ms, 1), bench::Table::fmt(abort_pct, 1)});
      }
      {  // Lazy Proust over the COW heap (snapshot shadow copies).
        stm::Stm stm(stm::Mode::Lazy);
        core::OptimisticLap<PQueueState, PQueueStateHasher> lap(stm, 2);
        core::LazyPriorityQueue<long, decltype(lap)> pq(lap);
        for (long i = 0; i < prefill; ++i) {
          pq.unsafe_insert(static_cast<long>(i * 37 % 100000));
        }
        const double ms = timed(static_cast<int>(t), iters,
                                make_op(stm, pq, mix));
        const auto s = stm.stats().snapshot();
        const double abort_pct =
            s.starts ? 100.0 * s.total_aborts() / s.starts : 0;
        table.row({"lazy-snap", mix.name, std::to_string(t),
                   bench::Table::fmt(ms, 1), bench::Table::fmt(abort_pct, 1)});
      }
    }
    std::printf("\n");
  }
  return 0;
}
