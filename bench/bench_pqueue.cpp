// §6's priority-queue case study: the two-element abstract state
// (PQueueMin / PQueueMultiSet) vs. Boosting's conservative single
// reader-writer lock approximation. Insert-heavy workloads let commuting
// inserts run concurrently under the abstract-state CA (group discipline /
// MultiSet-only writes) where the single-lock approximation serializes them.
//
// Timing goes through the shared per-worker-clocked harness
// (bench::run_ops_timed): several timed runs, mean/sd/min reported, with
// `--stat=min` selecting the steal-robust minimum and `--pin` applying a
// worker pin plan.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "common/topology.hpp"
#include "core/lap.hpp"
#include "core/lazy_pqueue.hpp"
#include "core/txn_pqueue.hpp"
#include "stm/stm.hpp"
#include "sync/reentrant_rw_lock.hpp"

using namespace proust;
using core::PQueueState;
using core::PQueueStateHasher;

namespace {

struct Mix {
  const char* name;
  double insert, remove_min, min;  // fractions; rest = contains
};

struct Knobs {
  long iters;
  int warmup;
  int runs;
  bool use_min;
  std::vector<int> pin_plan;
};

template <class PQ, class Stm>
auto make_op(Stm& stm, PQ& pq, const Mix& mix) {
  return [&stm, &pq, mix](int, Xoshiro256& rng) {
    const double r = rng.uniform();
    const long v = static_cast<long>(rng.below(100000));
    if (r < mix.insert) {
      stm.atomically([&](stm::Txn& tx) { pq.insert(tx, v); });
    } else if (r < mix.insert + mix.remove_min) {
      stm.atomically([&](stm::Txn& tx) { (void)pq.remove_min(tx); });
    } else if (r < mix.insert + mix.remove_min + mix.min) {
      stm.atomically([&](stm::Txn& tx) { (void)pq.min(tx); });
    } else {
      stm.atomically([&](stm::Txn& tx) { (void)pq.contains(tx, v); });
    }
  };
}

template <class PQ, class Stm>
void run_config(bench::Table& table, const char* impl, const Mix& mix,
                int threads, const Knobs& k, Stm& stm, PQ& pq, long prefill) {
  for (long i = 0; i < prefill; ++i) {
    pq.unsafe_insert(static_cast<long>(i * 37 % 100000));
  }
  const bench::TimedRuns t = bench::run_ops_timed(
      threads, k.iters, k.warmup, k.runs, /*seed=*/11, k.pin_plan,
      make_op(stm, pq, mix), [&stm] { stm.stats().reset(); });
  const auto s = stm.stats().snapshot();
  const double abort_pct = s.starts ? 100.0 * s.total_aborts() / s.starts : 0;
  table.row({impl, mix.name, std::to_string(threads),
             bench::Table::fmt(k.use_min ? t.min_ms : t.mean_ms, 1),
             bench::Table::fmt(t.sd_ms, 1), bench::Table::fmt(abort_pct, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  Knobs k;
  k.iters = cli.get_long("iters", 4000);
  k.warmup = static_cast<int>(cli.get_long("warmup", 1));
  k.runs = static_cast<int>(cli.get_long("runs", 3));
  k.use_min = cli.get("stat", "mean") == "min";
  k.pin_plan = topo::Topology::system().pin_plan(
      cli.get_pin_policy("pin", topo::PinPolicy::None));
  const auto thread_counts =
      cli.get_longs("threads", std::vector<long>{1, 2, 4, 8});
  const long prefill = cli.get_long("prefill", 10000);

  const Mix mixes[] = {
      {"insert-heavy", 0.80, 0.10, 0.05},
      {"balanced", 0.40, 0.40, 0.10},
      {"observer-heavy", 0.20, 0.10, 0.60},
  };

  std::printf("# PQueue (§6): abstract-state CA vs single-RW-lock boosting "
              "approximation, %ld ops/thread, prefill %ld, %d runs (%s)\n",
              k.iters, prefill, k.runs, k.use_min ? "min" : "mean");
  bench::Table table({"impl", "mix", "threads", "ms", "sd", "abort%"});

  for (const Mix& mix : mixes) {
    for (long t : thread_counts) {
      const int threads = static_cast<int>(t);
      {  // Eager Proust, optimistic CA on the two abstract-state elements.
        stm::Stm stm(stm::Mode::EagerAll);
        core::OptimisticLap<PQueueState, PQueueStateHasher> lap(stm, 2);
        core::TxnPriorityQueue<long, decltype(lap)> pq(lap);
        run_config(table, "eager-opt", mix, threads, k, stm, pq, prefill);
      }
      {  // Eager Proust, pessimistic LAP with the per-element disciplines
         // (MultiSet = group lock: commuting inserts don't serialize).
        stm::Stm stm(stm::Mode::Lazy);
        core::PessimisticLap<PQueueState, PQueueStateHasher> lap(
            stm, 2, core::pqueue_lock_kind, std::chrono::milliseconds(2));
        core::TxnPriorityQueue<long, decltype(lap)> pq(lap);
        run_config(table, "pess-group", mix, threads, k, stm, pq, prefill);
      }
      {  // Boosting's published approximation: ONE reader-writer stripe for
         // the whole queue (every insert/removeMin takes the write lock).
        stm::Stm stm(stm::Mode::Lazy);
        core::PessimisticLap<PQueueState, PQueueStateHasher> lap(
            stm, 1, [](std::size_t) { return sync::LockKind::kReaderWriter; },
            std::chrono::milliseconds(2));
        core::TxnPriorityQueue<long, decltype(lap)> pq(lap);
        run_config(table, "boosting-1rw", mix, threads, k, stm, pq, prefill);
      }
      {  // Lazy Proust over the COW heap (snapshot shadow copies).
        stm::Stm stm(stm::Mode::Lazy);
        core::OptimisticLap<PQueueState, PQueueStateHasher> lap(stm, 2);
        core::LazyPriorityQueue<long, decltype(lap)> pq(lap);
        run_config(table, "lazy-snap", mix, threads, k, stm, pq, prefill);
      }
    }
    std::printf("\n");
  }
  return 0;
}
