// §7's methodological note, reproduced: with only a weak coupling between
// abstract locks and the STM's contention manager, pessimistic Proust is
// prone to livelock as transactions grow (o > 1) under high contention —
// the reason the paper shows pessimistic results only at o = 1. Our runtime
// breaks cycles by timeout-abort, so instead of hanging we measure the
// timeout-abort rate exploding with o.
#include <cstdio>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"

using namespace proust;
using namespace proust::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  RunConfig base;
  base.total_ops = cli.get_long("ops", 60000);
  base.key_range = cli.get_long("key-range", 16);  // high contention
  base.write_fraction = cli.get_double("u", 0.75);
  base.warmup_runs = 0;
  base.timed_runs = 1;

  const auto thread_counts =
      cli.get_longs("threads", std::vector<long>{2, 4, 8});
  const auto txn_sizes = cli.get_longs("o", std::vector<long>{1, 4, 16, 64});

  std::printf("# Pessimistic livelock study (§7 note): timeout-aborts vs o, "
              "u=%.2f, key range %ld\n",
              base.write_fraction, base.key_range);
  Table table({"impl", "o", "threads", "ms", "timeout-aborts", "per-txn"});

  for (long o : txn_sizes) {
    for (long t : thread_counts) {
      RunConfig cfg = base;
      cfg.ops_per_txn = static_cast<int>(o);
      cfg.threads = static_cast<int>(t);
      PessimisticAdapter a(stm::Mode::Lazy, 1024);
      prefill_half(a, cfg.key_range);
      const RunResult r = run_map_throughput(a, cfg);
      const double per_txn =
          r.commits ? static_cast<double>(r.aborts) /
                          static_cast<double>(r.commits)
                    : 0;
      table.row({"proust-pess", std::to_string(o), std::to_string(t),
                 Table::fmt(r.mean_ms, 1), std::to_string(r.aborts),
                 Table::fmt(per_txn, 2)});
    }
    std::printf("\n");
  }

  std::printf("# For contrast: the optimistic LAP at the same settings\n");
  Table table2({"impl", "o", "threads", "ms", "aborts", "per-txn"});
  for (long o : txn_sizes) {
    for (long t : thread_counts) {
      RunConfig cfg = base;
      cfg.ops_per_txn = static_cast<int>(o);
      cfg.threads = static_cast<int>(t);
      EagerOptAdapter a(stm::Mode::Lazy, 1024);
      prefill_half(a, cfg.key_range);
      const RunResult r = run_map_throughput(a, cfg);
      const double per_txn =
          r.commits ? static_cast<double>(r.aborts) /
                          static_cast<double>(r.commits)
                    : 0;
      table2.row({"proust-eager", std::to_string(o), std::to_string(t),
                  Table::fmt(r.mean_ms, 1), std::to_string(r.aborts),
                  Table::fmt(per_txn, 2)});
    }
  }
  return 0;
}
