// The unified Synchrobench-style scenario matrix: one driver sweeping
// update-ratio × key-range × Zipfian skew × transaction length ×
// range-scan mix × thread count × pinning policy across every map, ordered-
// map and priority-queue configuration plus the non-transactional
// baselines, emitting one flat CSV (bench_util/csv.hpp) that
// scripts/plot_results.py consumes. Three families share the schema:
//
//   map     — the §7 hash-map comparison (all adapters.hpp configs) driven
//             by the per-worker-timed map harness;
//   ordered — TxnOrderedMap interval-CA vs coarse (M=1) vs pure-STM treap
//             vs global-lock std::map, with range scans in the mix;
//   pqueue  — the §6 priority-queue case study (abstract-state CA,
//             group-lock pessimistic, boosting's 1-RW-lock approximation,
//             lazy snapshot COW heap).
//
// `--smoke` shrinks durations to CI scale while still visiting every
// (config × workload-cell) combination, so every cell of the matrix at
// least executes and emits parseable CSV on each push. Pinning cells set
// both StmOptions::pinning (registry-slot binding, the runtime knob under
// test) and the harness-level worker plan, so non-STM baselines pin too.
#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/pure_stm_tree_map.hpp"
#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/csv.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/json.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "common/topology.hpp"
#include "core/lap.hpp"
#include "core/lazy_pqueue.hpp"
#include "core/txn_ordered_map.hpp"
#include "core/txn_pqueue.hpp"
#include "stm/stm.hpp"
#include "sync/reentrant_rw_lock.hpp"

using namespace proust;
using bench::Cli;
using bench::CsvWriter;
using bench::JsonRecord;
using bench::JsonWriter;
using bench::RunConfig;
using bench::RunResult;
using bench::Table;
using bench::TimedRuns;
using core::PQueueState;
using core::PQueueStateHasher;

namespace {

struct Cell {
  std::string family;
  std::string impl;
  std::string mode;  // "" for non-STM baselines
  int threads = 1;
  int ops_per_txn = 1;
  double u = 0;          // update fraction
  long key_range = 0;    // 0 = n/a (pqueue uses value range instead)
  double zipf = 0;       // 0 = uniform
  double scan_frac = 0;  // ordered family only
  long scan_width = 0;   // ordered family only
  std::string pin;
};

struct Ctx {
  Table* table = nullptr;
  CsvWriter* csv = nullptr;
  JsonWriter* json = nullptr;
  bool use_min = false;
  long ops = 0;
  int warmup = 0;
  int runs = 1;
};

std::vector<std::string> csv_columns() {
  std::vector<std::string> cols = {
      "family", "impl",      "mode",       "threads",    "ops_per_txn",
      "u",      "key_range", "zipf",       "scan_frac",  "scan_width",
      "pin",    "stat",      "total_ops",  "mean_ms",    "sd_ms",
      "min_ms", "ops_per_sec", "abort_ratio"};
  for (const std::string& c : CsvWriter::host_columns()) cols.push_back(c);
  return cols;
}

void emit(Ctx& ctx, const Cell& c, const TimedRuns& t, double abort_ratio) {
  const double ms = ctx.use_min ? t.min_ms : t.mean_ms;
  const double ops_s = t.ops_per_sec(ctx.ops, ctx.use_min);
  ctx.table->row({c.family, c.impl, std::to_string(c.threads),
                  CsvWriter::fmt(c.u, 2), c.pin, CsvWriter::fmt(ms, 1),
                  CsvWriter::fmt(100 * abort_ratio, 1)});
  std::vector<std::string> row = {
      c.family,
      c.impl,
      c.mode,
      std::to_string(c.threads),
      std::to_string(c.ops_per_txn),
      CsvWriter::fmt(c.u, 3),
      std::to_string(c.key_range),
      CsvWriter::fmt(c.zipf, 2),
      CsvWriter::fmt(c.scan_frac, 3),
      std::to_string(c.scan_width),
      c.pin,
      ctx.use_min ? "min" : "mean",
      std::to_string(ctx.ops),
      CsvWriter::fmt(t.mean_ms, 3),
      CsvWriter::fmt(t.sd_ms, 3),
      CsvWriter::fmt(t.min_ms, 3),
      CsvWriter::fmt(ops_s, 1),
      CsvWriter::fmt(abort_ratio, 5)};
  for (const std::string& f : CsvWriter::host_fields()) row.push_back(f);
  ctx.csv->row(row);
  if (ctx.json != nullptr) {
    JsonRecord r;
    r.bench = "scenario_matrix";
    r.workload = c.family + "/" + c.impl;
    r.mode = c.mode;
    r.threads = c.threads;
    r.ops_per_txn = c.ops_per_txn;
    r.write_fraction = c.u;
    r.ops_per_sec = ops_s;
    r.abort_ratio = abort_ratio;
    r.extra = c.key_range > 0 ? c.key_range : -1;
    r.pin = c.pin;
    ctx.json->add(r);
  }
}

TimedRuns from_run_result(const RunResult& r) {
  return TimedRuns{r.mean_ms, r.sd_ms, r.min_ms};
}

// ---------------------------------------------------------------------------
// map family — every adapters.hpp config over the shared map harness.
// ---------------------------------------------------------------------------

template <class Adapter>
void map_cell(Ctx& ctx, Adapter& a, const std::string& impl, Cell cell,
              const RunConfig& cfg) {
  bench::prefill_half(a, cfg.key_range);
  const RunResult r = bench::run_map_throughput(a, cfg);
  cell.impl = impl;
  emit(ctx, cell, from_run_result(r), r.abort_ratio());
}

void run_map_family(Ctx& ctx, stm::Mode mode, const Cell& proto,
                    const RunConfig& cfg, const stm::StmOptions& opts,
                    std::size_t ca_slots) {
  Cell cell = proto;
  cell.mode = stm::to_string(mode);
  {
    bench::PureStmAdapter a(mode, cfg.key_range, opts);
    map_cell(ctx, a, a.name(), cell, cfg);
  }
  {
    bench::PredicationAdapter a(mode, opts);
    map_cell(ctx, a, a.name(), cell, cfg);
  }
  {
    bench::EagerOptAdapter a(mode, ca_slots, opts);
    map_cell(ctx, a, a.name(), cell, cfg);
  }
  {
    bench::PessimisticAdapter a(mode, ca_slots, opts);
    map_cell(ctx, a, a.name(), cell, cfg);
  }
  {
    bench::LazyMemoPessAdapter a(mode, ca_slots, opts);
    map_cell(ctx, a, a.name(), cell, cfg);
  }
  {
    bench::LazySnapshotAdapter a(mode, ca_slots, opts);
    map_cell(ctx, a, a.name(), cell, cfg);
  }
  {
    bench::LazyMemoAdapter a(mode, ca_slots, /*combine=*/false, opts);
    map_cell(ctx, a, a.name(), cell, cfg);
  }
  {
    bench::LazyMemoAdapter a(mode, ca_slots, /*combine=*/true, opts);
    map_cell(ctx, a, a.name(), cell, cfg);
  }
  {
    Cell lk = cell;
    lk.mode = "";
    bench::GlobalLockAdapter a;
    map_cell(ctx, a, a.name(), lk, cfg);
  }
}

// ---------------------------------------------------------------------------
// --ab: the default-neutrality check. A = stock StmOptions (pinning=none,
// numa_placement=off — the configuration every pre-topology bench ran), B =
// the topology-enabled options under test. Runs are interleaved pairwise
// (run_map_throughput_paired) so both sides sample the same noise phases;
// on the 1-vCPU reference box the acceptance bar is a ratio within noise of
// 1.0, proving the opt-in machinery costs nothing when off.
// ---------------------------------------------------------------------------

int run_neutrality_ab(const Cli& cli, stm::Mode mode) {
  RunConfig cfg;
  cfg.total_ops = cli.get_long("ops", 200000);
  cfg.key_range = cli.get_long("key-range", 1024);
  cfg.ops_per_txn = static_cast<int>(cli.get_long("o", 4));
  cfg.warmup_runs = static_cast<int>(cli.get_long("warmup", 2));
  cfg.timed_runs = static_cast<int>(cli.get_long("runs", 7));

  stm::StmOptions on;
  topo::parse_pin_policy(cli.get("pin", "compact"), on.pinning);
  on.numa_placement = cli.get_placement("placement",
                                        topo::NumaPlacement::Interleave);

  std::printf("# neutrality A/B: defaults (pin=none, numa=off) vs pin=%s "
              "numa=%s, paired-interleaved, %d runs (min)\n",
              topo::to_string(on.pinning),
              topo::to_string(on.numa_placement), cfg.timed_runs);
  Table table({"u", "threads", "off-ms", "on-ms", "on/off", "off-ab%",
               "on-ab%"});
  for (double u : cli.get_doubles("u", std::vector<double>{0, 0.5})) {
    for (long t : cli.get_longs("threads", std::vector<long>{1, 2})) {
      cfg.write_fraction = u;
      cfg.threads = static_cast<int>(t);
      bench::PureStmAdapter off(mode, cfg.key_range, stm::StmOptions{});
      bench::PureStmAdapter with(mode, cfg.key_range, on);
      bench::prefill_half(off, cfg.key_range);
      bench::prefill_half(with, cfg.key_range);
      const auto [ro, rw] = bench::run_map_throughput_paired(off, with, cfg);
      table.row({Table::fmt(u, 2), std::to_string(t),
                 Table::fmt(ro.min_ms, 2), Table::fmt(rw.min_ms, 2),
                 Table::fmt(rw.min_ms / ro.min_ms, 3),
                 Table::fmt(100.0 * ro.abort_ratio(), 1),
                 Table::fmt(100.0 * rw.abort_ratio(), 1)});
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// ordered family — interval CA vs coarse vs pure-STM treap vs global lock.
// ---------------------------------------------------------------------------

using OrderedLap = core::OptimisticLap<std::size_t, core::StripeHasher>;

template <class ScanOp, class PointOp>
TimedRuns ordered_runs(Ctx& ctx, const Cell& c,
                       const std::vector<int>& pin_plan, ScanOp&& scan,
                       PointOp&& point, stm::Stm* stm) {
  const long iters =
      (ctx.ops + c.threads - 1) / c.threads;  // per-thread ops
  const long window = c.key_range / c.threads;
  return bench::run_ops_timed(
      c.threads, iters, ctx.warmup, ctx.runs, /*seed=*/97, pin_plan,
      [&](int t, Xoshiro256& rng) {
        if (rng.uniform() < c.scan_frac) {
          const long lo = static_cast<long>(
              rng.below(c.key_range - c.scan_width + 1));
          scan(lo, lo + c.scan_width - 1);
        } else {
          // Per-thread update windows (the range-commutativity shape):
          // updates commute across windows, scans roam everywhere.
          const long k =
              t * window + static_cast<long>(rng.below(window > 0 ? window : 1));
          point(k, rng.uniform() < c.u);
        }
      },
      [stm] {
        if (stm != nullptr) stm->stats().reset();
      });
}

void run_ordered_family(Ctx& ctx, const Cell& proto, const stm::StmOptions& opts,
                        const std::vector<int>& pin_plan,
                        std::size_t stripes) {
  for (const char* impl : {"proust-interval", "proust-coarse"}) {
    Cell cell = proto;
    cell.impl = impl;
    cell.mode = "lazy";
    const std::size_t m =
        std::string(impl) == "proust-coarse" ? std::size_t{1} : stripes;
    stm::Stm stm(stm::Mode::Lazy, opts);
    OrderedLap lap(stm, m);
    core::TxnOrderedMap<long, OrderedLap> map(lap, 0, cell.key_range - 1, m);
    for (long k = 0; k < cell.key_range; k += 2) map.unsafe_put(k, 1);
    const TimedRuns t = ordered_runs(
        ctx, cell, pin_plan,
        [&](long lo, long hi) {
          stm.atomically([&](stm::Txn& tx) { (void)map.range_sum(tx, lo, hi); });
        },
        [&](long k, bool write) {
          stm.atomically([&](stm::Txn& tx) {
            if (write) {
              map.put(tx, k, 1);
            } else {
              (void)map.get(tx, k);
            }
          });
        },
        &stm);
    const auto s = stm.stats().snapshot();
    emit(ctx, cell, t,
         s.starts ? static_cast<double>(s.total_aborts()) / s.starts : 0.0);
  }
  {
    Cell cell = proto;
    cell.impl = "pure-stm-tree";
    cell.mode = "lazy";
    stm::Stm stm(stm::Mode::Lazy, opts);
    baselines::PureStmTreeMap<long, long> map(stm, 8192);
    for (long k = 0; k < cell.key_range; k += 2) map.unsafe_put(k, 1);
    const TimedRuns t = ordered_runs(
        ctx, cell, pin_plan,
        [&](long lo, long hi) {
          stm.atomically([&](stm::Txn& tx) { (void)map.range_sum(tx, lo, hi); });
        },
        [&](long k, bool write) {
          stm.atomically([&](stm::Txn& tx) {
            if (write) {
              map.put(tx, k, 1);
            } else {
              (void)map.get(tx, k);
            }
          });
        },
        &stm);
    const auto s = stm.stats().snapshot();
    emit(ctx, cell, t,
         s.starts ? static_cast<double>(s.total_aborts()) / s.starts : 0.0);
  }
  {
    Cell cell = proto;
    cell.impl = "global-lock";
    std::mutex mu;
    std::map<long, long> map;
    for (long k = 0; k < cell.key_range; k += 2) map[k] = 1;
    const TimedRuns t = ordered_runs(
        ctx, cell, pin_plan,
        [&](long lo, long hi) {
          std::lock_guard<std::mutex> g(mu);
          long sum = 0;
          for (auto it = map.lower_bound(lo); it != map.end() && it->first <= hi;
               ++it) {
            sum += it->second;
          }
          (void)sum;
        },
        [&](long k, bool write) {
          std::lock_guard<std::mutex> g(mu);
          if (write) {
            map[k] = 1;
          } else {
            (void)map.count(k);
          }
        },
        nullptr);
    emit(ctx, cell, t, 0.0);
  }
}

// ---------------------------------------------------------------------------
// pqueue family — the §6 configurations. u is the mutation fraction, split
// evenly between insert and remove_min; the remainder is 80% contains /
// 20% min.
// ---------------------------------------------------------------------------

template <class PQ>
TimedRuns pqueue_runs(Ctx& ctx, const Cell& c, const std::vector<int>& pin_plan,
                      stm::Stm& stm, PQ& pq) {
  const long iters = (ctx.ops + c.threads - 1) / c.threads;
  return bench::run_ops_timed(
      c.threads, iters, ctx.warmup, ctx.runs, /*seed=*/53, pin_plan,
      [&](int, Xoshiro256& rng) {
        const double r = rng.uniform();
        const long v = static_cast<long>(rng.below(100000));
        if (r < c.u / 2) {
          stm.atomically([&](stm::Txn& tx) { pq.insert(tx, v); });
        } else if (r < c.u) {
          stm.atomically([&](stm::Txn& tx) { (void)pq.remove_min(tx); });
        } else if (r < c.u + 0.2 * (1 - c.u)) {
          stm.atomically([&](stm::Txn& tx) { (void)pq.min(tx); });
        } else {
          stm.atomically([&](stm::Txn& tx) { (void)pq.contains(tx, v); });
        }
      },
      [&stm] { stm.stats().reset(); });
}

template <class PQ>
void pqueue_cell(Ctx& ctx, Cell cell, const char* impl, const char* mode,
                 const std::vector<int>& pin_plan, stm::Stm& stm, PQ& pq,
                 long prefill) {
  for (long i = 0; i < prefill; ++i) {
    pq.unsafe_insert(static_cast<long>(i * 37 % 100000));
  }
  cell.impl = impl;
  cell.mode = mode;
  const TimedRuns t = pqueue_runs(ctx, cell, pin_plan, stm, pq);
  const auto s = stm.stats().snapshot();
  emit(ctx, cell, t,
       s.starts ? static_cast<double>(s.total_aborts()) / s.starts : 0.0);
}

void run_pqueue_family(Ctx& ctx, const Cell& proto, const stm::StmOptions& opts,
                       const std::vector<int>& pin_plan, long prefill) {
  {
    stm::Stm stm(stm::Mode::EagerAll, opts);
    core::OptimisticLap<PQueueState, PQueueStateHasher> lap(stm, 2);
    core::TxnPriorityQueue<long, decltype(lap)> pq(lap);
    pqueue_cell(ctx, proto, "eager-opt", "eagerall", pin_plan, stm, pq,
                prefill);
  }
  {
    stm::Stm stm(stm::Mode::Lazy, opts);
    core::PessimisticLap<PQueueState, PQueueStateHasher> lap(
        stm, 2, core::pqueue_lock_kind, std::chrono::milliseconds(2));
    core::TxnPriorityQueue<long, decltype(lap)> pq(lap);
    pqueue_cell(ctx, proto, "pess-group", "lazy", pin_plan, stm, pq, prefill);
  }
  {
    stm::Stm stm(stm::Mode::Lazy, opts);
    core::PessimisticLap<PQueueState, PQueueStateHasher> lap(
        stm, 1, [](std::size_t) { return sync::LockKind::kReaderWriter; },
        std::chrono::milliseconds(2));
    core::TxnPriorityQueue<long, decltype(lap)> pq(lap);
    pqueue_cell(ctx, proto, "boosting-1rw", "lazy", pin_plan, stm, pq,
                prefill);
  }
  {
    stm::Stm stm(stm::Mode::Lazy, opts);
    core::OptimisticLap<PQueueState, PQueueStateHasher> lap(stm, 2);
    core::LazyPriorityQueue<long, decltype(lap)> pq(lap);
    pqueue_cell(ctx, proto, "lazy-snap", "lazy", pin_plan, stm, pq, prefill);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.has("ab")) {
    return run_neutrality_ab(cli, cli.get_mode("mode", stm::Mode::Lazy));
  }
  const bool smoke = cli.has("smoke");

  Ctx ctx;
  ctx.ops = cli.get_long("ops", smoke ? 2000 : 100000);
  ctx.warmup = static_cast<int>(cli.get_long("warmup", smoke ? 0 : 2));
  ctx.runs = static_cast<int>(cli.get_long("runs", smoke ? 1 : 5));
  ctx.use_min = cli.get("stat", smoke ? "mean" : "min") == "min";

  const auto families = cli.get_strings(
      "families", std::vector<std::string>{"map", "ordered", "pqueue"});
  const auto us = cli.get_doubles(
      "u", smoke ? std::vector<double>{0, 0.5, 1}
                 : std::vector<double>{0, 0.25, 0.5, 0.75, 1});
  const auto key_ranges = cli.get_longs(
      "key-range", smoke ? std::vector<long>{128} : std::vector<long>{256, 4096});
  const auto zipfs = cli.get_doubles(
      "zipf", smoke ? std::vector<double>{0, 0.9} : std::vector<double>{0, 0.9});
  const auto txn_lens = cli.get_longs(
      "o", smoke ? std::vector<long>{1, 4} : std::vector<long>{1, 4, 64});
  const auto scan_fracs = cli.get_doubles(
      "scan-frac", smoke ? std::vector<double>{0.2}
                         : std::vector<double>{0.1, 0.3});
  const auto scan_widths = cli.get_longs(
      "scan-width", smoke ? std::vector<long>{32} : std::vector<long>{64, 512});
  const auto thread_counts = cli.get_longs(
      "threads", smoke ? std::vector<long>{1, 2} : std::vector<long>{1, 2, 4, 8});
  const auto pins = cli.get_strings(
      "pin", smoke ? std::vector<std::string>{"none", "compact"}
                   : std::vector<std::string>{"none", "compact", "scatter"});
  const stm::Mode mode = cli.get_mode("mode", stm::Mode::Lazy);
  const auto placement =
      cli.get_placement("placement", topo::NumaPlacement::Off);
  const std::size_t ca_slots =
      static_cast<std::size_t>(cli.get_long("ca-slots", 1024));
  const std::size_t stripes =
      static_cast<std::size_t>(cli.get_long("stripes", 64));

  const topo::Topology& host = topo::Topology::system();
  std::printf("# scenario matrix: host cpus=%u nodes=%u smt=%d | ops=%ld "
              "runs=%d stat=%s%s\n",
              host.cpu_count(), host.node_count, host.smt ? 1 : 0, ctx.ops,
              ctx.runs, ctx.use_min ? "min" : "mean", smoke ? " (smoke)" : "");

  Table table({"family", "impl", "threads", "u", "pin", "ms", "abort%"});
  CsvWriter csv(csv_columns());
  const std::string json_path = cli.get("json", "");
  JsonWriter json_writer(cli.get("label", "scenario-matrix"));
  ctx.table = &table;
  ctx.csv = &csv;
  ctx.json = json_path.empty() ? nullptr : &json_writer;

  for (const std::string& pin_name : pins) {
    topo::PinPolicy policy = topo::PinPolicy::None;
    if (!topo::parse_pin_policy(pin_name, policy)) {
      std::fprintf(stderr, "unknown pin policy '%s'\n", pin_name.c_str());
      return 1;
    }
    const std::vector<int> pin_plan = host.pin_plan(policy);
    stm::StmOptions opts;
    opts.pinning = policy;
    opts.numa_placement = placement;

    for (long t : thread_counts) {
      if (std::find(families.begin(), families.end(), "map") !=
          families.end()) {
        for (double u : us) {
          for (long keys : key_ranges) {
            for (double z : zipfs) {
              for (long o : txn_lens) {
                Cell cell;
                cell.family = "map";
                cell.threads = static_cast<int>(t);
                cell.ops_per_txn = static_cast<int>(o);
                cell.u = u;
                cell.key_range = keys;
                cell.zipf = z;
                cell.pin = pin_name;
                RunConfig cfg;
                cfg.threads = cell.threads;
                cfg.ops_per_txn = cell.ops_per_txn;
                cfg.write_fraction = u;
                cfg.key_range = keys;
                cfg.total_ops = ctx.ops;
                cfg.warmup_runs = ctx.warmup;
                cfg.timed_runs = ctx.runs;
                cfg.zipf_theta = z;
                cfg.pin_plan = pin_plan;
                run_map_family(ctx, mode, cell, cfg, opts, ca_slots);
              }
            }
          }
        }
      }
      if (std::find(families.begin(), families.end(), "ordered") !=
          families.end()) {
        for (double u : us) {
          for (long keys : key_ranges) {
            for (double sf : scan_fracs) {
              for (long w : scan_widths) {
                if (w >= keys) continue;  // scan must fit the key space
                Cell cell;
                cell.family = "ordered";
                cell.threads = static_cast<int>(t);
                cell.u = u;
                cell.key_range = keys;
                cell.scan_frac = sf;
                cell.scan_width = w;
                cell.pin = pin_name;
                run_ordered_family(ctx, cell, opts, pin_plan, stripes);
              }
            }
          }
        }
      }
      if (std::find(families.begin(), families.end(), "pqueue") !=
          families.end()) {
        for (double u : us) {
          Cell cell;
          cell.family = "pqueue";
          cell.threads = static_cast<int>(t);
          cell.u = u;
          cell.pin = pin_name;
          run_pqueue_family(ctx, cell, opts, pin_plan,
                            cli.get_long("prefill", smoke ? 1000 : 10000));
        }
      }
    }
  }

  const std::string csv_path = cli.get("csv", "");
  if (!csv_path.empty()) {
    if (!csv.write(csv_path)) {
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("# wrote %s (%zu rows)\n", csv_path.c_str(), csv.row_count());
  }
  if (ctx.json != nullptr) {
    if (!json_writer.write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}
