// Extension bench: the §1 range-commutativity claim measured. Workload:
// point updates confined to per-thread key windows plus range queries of
// varying width. Compared:
//   proust-interval — TxnOrderedMap with the interval CA (range ops read
//                     only their covering stripes),
//   proust-coarse   — the same map with M=1 (every op conflicts: the
//                     "wrap it in one lock" strawman, ≈ boosting's
//                     conservative approximation),
//   pure-stm-tree   — ordered treap entirely in STM (the traditional
//                     transactional ordered map: structural false conflicts),
//   global-lock     — whole-transaction mutex over a std::map.
// Sweeping the scan width shows where the interval CA's concurrency win
// erodes (wider scans cover more stripes → conflict with more updates).
//
// Timing goes through the shared per-worker-clocked harness
// (bench::run_ops_timed): several timed runs with mean/sd/min, `--stat=min`
// for the steal-robust minimum, `--pin` for a worker pin plan.
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "baselines/pure_stm_tree_map.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "common/topology.hpp"
#include "core/lap.hpp"
#include "core/txn_ordered_map.hpp"
#include "stm/stm.hpp"

using namespace proust;
using OptLap = core::OptimisticLap<std::size_t, core::StripeHasher>;

namespace {

struct Shape {
  long key_range;
  long scan_width;
  double scan_fraction;
  int threads;
  long iters;
  int warmup;
  int runs;
  bool use_min;
  std::vector<int> pin_plan;
};

/// One timed config: `scan(lo, hi)` runs a range query, `point(k)` a
/// windowed update; stats reset between warm-up and the timed runs when a
/// Stm is supplied.
template <class ScanOp, class PointOp>
bench::TimedRuns run_shape(const Shape& sh, ScanOp&& scan, PointOp&& point,
                           stm::Stm* stm) {
  const long window = sh.key_range / sh.threads;
  return bench::run_ops_timed(
      sh.threads, sh.iters, sh.warmup, sh.runs, /*seed=*/5, sh.pin_plan,
      [&](int t, Xoshiro256& rng) {
        if (rng.uniform() < sh.scan_fraction) {
          const long lo = static_cast<long>(
              rng.below(sh.key_range - sh.scan_width + 1));
          scan(lo, lo + sh.scan_width - 1);
        } else {
          point(t * window + static_cast<long>(rng.below(window)));
        }
      },
      [stm] {
        if (stm != nullptr) stm->stats().reset();
      });
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  Shape shape;
  shape.key_range = cli.get_long("key-range", 4096);
  shape.threads = static_cast<int>(cli.get_long("threads", 4));
  shape.iters = cli.get_long("iters", 3000);
  shape.scan_fraction = cli.get_double("scan-frac", 0.2);
  shape.warmup = static_cast<int>(cli.get_long("warmup", 1));
  shape.runs = static_cast<int>(cli.get_long("runs", 3));
  shape.use_min = cli.get("stat", "mean") == "min";
  shape.pin_plan = topo::Topology::system().pin_plan(
      cli.get_pin_policy("pin", topo::PinPolicy::None));
  const auto widths =
      cli.get_longs("widths", std::vector<long>{64, 512, 4096});
  const std::size_t stripes =
      static_cast<std::size_t>(cli.get_long("stripes", 64));

  std::printf("# Range-commutativity bench (§1): interval CA vs coarse, "
              "keys=%ld, t=%d, scans=%.0f%%, %d runs (%s)\n",
              shape.key_range, shape.threads, shape.scan_fraction * 100,
              shape.runs, shape.use_min ? "min" : "mean");
  bench::Table table({"impl", "scan-width", "ms", "sd", "abort%"});

  for (long width : widths) {
    shape.scan_width = width;

    for (std::size_t m : {stripes, std::size_t{1}}) {
      stm::Stm stm(stm::Mode::Lazy);
      OptLap lap(stm, m);
      core::TxnOrderedMap<long, OptLap> map(lap, 0, shape.key_range - 1, m);
      for (long k = 0; k < shape.key_range; k += 2) map.unsafe_put(k, 1);
      const bench::TimedRuns t = run_shape(
          shape,
          [&](long lo, long hi) {
            stm.atomically(
                [&](stm::Txn& tx) { (void)map.range_sum(tx, lo, hi); });
          },
          [&](long key) {
            stm.atomically([&](stm::Txn& tx) { map.put(tx, key, 1); });
          },
          &stm);
      const auto s = stm.stats().snapshot();
      const double abort_pct =
          s.starts ? 100.0 * s.total_aborts() / s.starts : 0;
      table.row({m == 1 ? "proust-coarse(M=1)" : "proust-interval",
                 std::to_string(width),
                 bench::Table::fmt(shape.use_min ? t.min_ms : t.mean_ms, 1),
                 bench::Table::fmt(t.sd_ms, 1),
                 bench::Table::fmt(abort_pct, 2)});
    }

    {
      stm::Stm stm(stm::Mode::Lazy);
      baselines::PureStmTreeMap<long, long> map(stm, 8192);
      for (long k = 0; k < shape.key_range; k += 2) map.unsafe_put(k, 1);
      const bench::TimedRuns t = run_shape(
          shape,
          [&](long lo, long hi) {
            stm.atomically(
                [&](stm::Txn& tx) { (void)map.range_sum(tx, lo, hi); });
          },
          [&](long key) {
            stm.atomically([&](stm::Txn& tx) { map.put(tx, key, 1); });
          },
          &stm);
      const auto s = stm.stats().snapshot();
      const double abort_pct =
          s.starts ? 100.0 * s.total_aborts() / s.starts : 0;
      table.row({"pure-stm-tree", std::to_string(width),
                 bench::Table::fmt(shape.use_min ? t.min_ms : t.mean_ms, 1),
                 bench::Table::fmt(t.sd_ms, 1),
                 bench::Table::fmt(abort_pct, 2)});
    }

    {
      std::mutex mu;
      std::map<long, long> map;
      for (long k = 0; k < shape.key_range; k += 2) map[k] = 1;
      const bench::TimedRuns t = run_shape(
          shape,
          [&](long lo, long hi) {
            std::lock_guard<std::mutex> g(mu);
            long sum = 0;
            for (auto it = map.lower_bound(lo);
                 it != map.end() && it->first <= hi; ++it) {
              sum += it->second;
            }
            (void)sum;
          },
          [&](long key) {
            std::lock_guard<std::mutex> g(mu);
            map[key] = 1;
          },
          nullptr);
      table.row({"global-lock", std::to_string(width),
                 bench::Table::fmt(shape.use_min ? t.min_ms : t.mean_ms, 1),
                 bench::Table::fmt(t.sd_ms, 1), "0.00"});
    }
    std::printf("\n");
  }
  return 0;
}
