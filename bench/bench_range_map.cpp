// Extension bench: the §1 range-commutativity claim measured. Workload:
// point updates confined to per-thread key windows plus range queries of
// varying width. Compared:
//   proust-interval — TxnOrderedMap with the interval CA (range ops read
//                     only their covering stripes),
//   proust-coarse   — the same map with M=1 (every op conflicts: the
//                     "wrap it in one lock" strawman, ≈ boosting's
//                     conservative approximation),
//   pure-stm-tree   — ordered treap entirely in STM (the traditional
//                     transactional ordered map: structural false conflicts),
//   global-lock     — whole-transaction mutex over a std::map.
// Sweeping the scan width shows where the interval CA's concurrency win
// erodes (wider scans cover more stripes → conflict with more updates).
#include <barrier>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "core/lap.hpp"
#include "baselines/pure_stm_tree_map.hpp"
#include "core/txn_ordered_map.hpp"
#include "stm/stm.hpp"

using namespace proust;
using OptLap = core::OptimisticLap<std::size_t, core::StripeHasher>;

namespace {

struct Shape {
  long key_range;
  long scan_width;
  double scan_fraction;
  int threads;
  long iters;
};

template <class RunOp>
double timed(int threads, long iters, RunOp&& op) {
  std::barrier sync(threads + 1);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 733 + 5);
      for (long i = 0; i < iters; ++i) op(t, rng);
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  const auto stop = std::chrono::steady_clock::now();
  for (auto& th : ts) th.join();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  Shape shape;
  shape.key_range = cli.get_long("key-range", 4096);
  shape.threads = static_cast<int>(cli.get_long("threads", 4));
  shape.iters = cli.get_long("iters", 3000);
  shape.scan_fraction = cli.get_double("scan-frac", 0.2);
  const auto widths =
      cli.get_longs("widths", std::vector<long>{64, 512, 4096});
  const std::size_t stripes =
      static_cast<std::size_t>(cli.get_long("stripes", 64));

  std::printf("# Range-commutativity bench (§1): interval CA vs coarse, "
              "keys=%ld, t=%d, scans=%.0f%%\n",
              shape.key_range, shape.threads, shape.scan_fraction * 100);
  bench::Table table({"impl", "scan-width", "ms", "abort%"});

  for (long width : widths) {
    shape.scan_width = width;
    // Each thread updates its own window; scans roam everywhere.
    const long window = shape.key_range / shape.threads;

    for (std::size_t m : {stripes, std::size_t{1}}) {
      stm::Stm stm(stm::Mode::Lazy);
      OptLap lap(stm, m);
      core::TxnOrderedMap<long, OptLap> map(lap, 0, shape.key_range - 1, m);
      for (long k = 0; k < shape.key_range; k += 2) map.unsafe_put(k, 1);
      const double ms = timed(shape.threads, shape.iters, [&](int t,
                                                              Xoshiro256& rng) {
        if (rng.uniform() < shape.scan_fraction) {
          const long lo = static_cast<long>(
              rng.below(shape.key_range - shape.scan_width + 1));
          stm.atomically([&](stm::Txn& tx) {
            (void)map.range_sum(tx, lo, lo + shape.scan_width - 1);
          });
        } else {
          const long k = t * window + static_cast<long>(rng.below(window));
          stm.atomically([&](stm::Txn& tx) { map.put(tx, k, 1); });
        }
      });
      const auto s = stm.stats().snapshot();
      const double abort_pct =
          s.starts ? 100.0 * s.total_aborts() / s.starts : 0;
      table.row({m == 1 ? "proust-coarse(M=1)" : "proust-interval",
                 std::to_string(width), bench::Table::fmt(ms, 1),
                 bench::Table::fmt(abort_pct, 2)});
    }

    {
      stm::Stm stm(stm::Mode::Lazy);
      baselines::PureStmTreeMap<long, long> map(stm, 8192);
      for (long k = 0; k < shape.key_range; k += 2) map.unsafe_put(k, 1);
      const double ms = timed(shape.threads, shape.iters, [&](int t,
                                                              Xoshiro256& rng) {
        if (rng.uniform() < shape.scan_fraction) {
          const long lo = static_cast<long>(
              rng.below(shape.key_range - shape.scan_width + 1));
          stm.atomically([&](stm::Txn& tx) {
            (void)map.range_sum(tx, lo, lo + shape.scan_width - 1);
          });
        } else {
          const long k = t * window + static_cast<long>(rng.below(window));
          stm.atomically([&](stm::Txn& tx) { map.put(tx, k, 1); });
        }
      });
      const auto s = stm.stats().snapshot();
      const double abort_pct =
          s.starts ? 100.0 * s.total_aborts() / s.starts : 0;
      table.row({"pure-stm-tree", std::to_string(width),
                 bench::Table::fmt(ms, 1), bench::Table::fmt(abort_pct, 2)});
    }

    {
      std::mutex mu;
      std::map<long, long> map;
      for (long k = 0; k < shape.key_range; k += 2) map[k] = 1;
      const double ms = timed(shape.threads, shape.iters, [&](int t,
                                                              Xoshiro256& rng) {
        if (rng.uniform() < shape.scan_fraction) {
          const long lo = static_cast<long>(
              rng.below(shape.key_range - shape.scan_width + 1));
          std::lock_guard<std::mutex> g(mu);
          long sum = 0;
          for (auto it = map.lower_bound(lo);
               it != map.end() && it->first < lo + shape.scan_width; ++it) {
            sum += it->second;
          }
          (void)sum;
        } else {
          const long k = t * window + static_cast<long>(rng.below(window));
          std::lock_guard<std::mutex> g(mu);
          map[k] = 1;
        }
      });
      table.row({"global-lock", std::to_string(width),
                 bench::Table::fmt(ms, 1), "0.00"});
    }
    std::printf("\n");
  }
  return 0;
}
