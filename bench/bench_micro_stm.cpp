// Microbenchmarks of the raw STM engine (google-benchmark): per-operation
// costs of reads, writes, commits and conflict-abstraction accesses in each
// mode. These quantify the constant factors under the Figure 4 curves.
#include <benchmark/benchmark.h>

#include "core/lap.hpp"
#include "stm/stm.hpp"

using namespace proust;

static void BM_ReadOnlyTxn(benchmark::State& state) {
  stm::Stm stm(static_cast<stm::Mode>(state.range(0)));
  stm::Var<long> v(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stm.atomically([&](stm::Txn& tx) { return tx.read(v); }));
  }
}
BENCHMARK(BM_ReadOnlyTxn)->Arg(0)->Arg(1)->Arg(2);

static void BM_WriteTxn(benchmark::State& state) {
  stm::Stm stm(static_cast<stm::Mode>(state.range(0)));
  stm::Var<long> v(0);
  long i = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) { tx.write(v, ++i); });
  }
}
BENCHMARK(BM_WriteTxn)->Arg(0)->Arg(1)->Arg(2);

static void BM_ReadModifyWriteTxn(benchmark::State& state) {
  stm::Stm stm(static_cast<stm::Mode>(state.range(0)));
  stm::Var<long> v(0);
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) { tx.write(v, tx.read(v) + 1); });
  }
}
BENCHMARK(BM_ReadModifyWriteTxn)->Arg(0)->Arg(1)->Arg(2);

static void BM_TxnWithNVars(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  std::vector<stm::Var<long>> vars(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      for (auto& v : vars) tx.write(v, tx.read(v) + 1);
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TxnWithNVars)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

static void BM_ConflictAbstractionAcquire(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 1024);
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      lap.acquire(tx, ++k & 1023, /*write=*/true);
    });
  }
}
BENCHMARK(BM_ConflictAbstractionAcquire);

static void BM_PessimisticAbstractLockAcquire(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  core::PessimisticLap<long> lap(stm, 1024);
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      lap.acquire(tx, ++k & 1023, /*write=*/true);
    });
  }
}
BENCHMARK(BM_PessimisticAbstractLockAcquire);

static void BM_TxnLocalCreation(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  int key = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      benchmark::DoNotOptimize(tx.local<long>(&key, [] { return 1L; }));
    });
  }
}
BENCHMARK(BM_TxnLocalCreation);
