// Microbenchmarks of the raw STM engine: per-operation costs of reads,
// writes, commits and conflict-abstraction accesses in each mode. These
// quantify the constant factors under the Figure 4 curves.
//
// Two entry points:
//   default          — the google-benchmark suite below.
//   --json=<path>    — a deterministic fixed-iteration "trajectory" run with
//                      machine-readable output; BENCH_STM.json at the repo
//                      top level records these across PRs. --label=<str>
//                      tags the run (defaults to "current"). Two sections:
//                      the canonical single-thread workloads (read_only,
//                      write_heavy, read_modify_write, write_large) in every
//                      mode, and a multi-thread sweep (1/2/4/8/16 threads,
//                      override with --mt-threads=) of write workloads under
//                      every global-clock scheme, which is what captures
//                      commit-path scaling rather than just constant factors.
#include <benchmark/benchmark.h>

#include <barrier>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util/cli.hpp"
#include "bench_util/json.hpp"
#include "bench_util/table.hpp"
#include "core/lap.hpp"
#include "stm/chaos.hpp"
#include "stm/stm.hpp"

using namespace proust;

static void BM_ReadOnlyTxn(benchmark::State& state) {
  stm::Stm stm(static_cast<stm::Mode>(state.range(0)));
  stm::Var<long> v(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stm.atomically([&](stm::Txn& tx) { return tx.read(v); }));
  }
}
BENCHMARK(BM_ReadOnlyTxn)->Arg(0)->Arg(1)->Arg(2);

static void BM_WriteTxn(benchmark::State& state) {
  stm::Stm stm(static_cast<stm::Mode>(state.range(0)));
  stm::Var<long> v(0);
  long i = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) { tx.write(v, ++i); });
  }
}
BENCHMARK(BM_WriteTxn)->Arg(0)->Arg(1)->Arg(2);

static void BM_ReadModifyWriteTxn(benchmark::State& state) {
  stm::Stm stm(static_cast<stm::Mode>(state.range(0)));
  stm::Var<long> v(0);
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) { tx.write(v, tx.read(v) + 1); });
  }
}
BENCHMARK(BM_ReadModifyWriteTxn)->Arg(0)->Arg(1)->Arg(2);

static void BM_TxnWithNVars(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  std::vector<stm::Var<long>> vars(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      for (auto& v : vars) tx.write(v, tx.read(v) + 1);
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TxnWithNVars)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

static void BM_ConflictAbstractionAcquire(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 1024);
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      lap.acquire(tx, ++k & 1023, /*write=*/true);
    });
  }
}
BENCHMARK(BM_ConflictAbstractionAcquire);

static void BM_PessimisticAbstractLockAcquire(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  core::PessimisticLap<long> lap(stm, 1024);
  long k = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      lap.acquire(tx, ++k & 1023, /*write=*/true);
    });
  }
}
BENCHMARK(BM_PessimisticAbstractLockAcquire);

static void BM_TxnLocalCreation(benchmark::State& state) {
  stm::Stm stm(stm::Mode::Lazy);
  int key = 0;
  for (auto _ : state) {
    stm.atomically([&](stm::Txn& tx) {
      benchmark::DoNotOptimize(tx.local<long>(&key, [] { return 1L; }));
    });
  }
}
BENCHMARK(BM_TxnLocalCreation);

// --- Deterministic trajectory run (--json) ---------------------------------

namespace {

/// Run `txns` transactions of `body`, each counting as `ops_per_txn`
/// accesses, and return accesses per second.
template <class Body>
double timed_txns(long txns, int ops_per_txn, Body&& body) {
  const auto start = std::chrono::steady_clock::now();
  for (long i = 0; i < txns; ++i) body(i);
  const auto stop = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(stop - start).count();
  return sec <= 0 ? 0.0
                  : static_cast<double>(txns) * ops_per_txn / sec;
}

struct Cell {
  const char* workload;
  int ops_per_txn;
  double write_fraction;
  double ops_per_sec;
  double abort_ratio;
};

Cell run_cell(stm::Stm& stm, const char* workload, long txns) {
  using stm::Txn;
  Cell cell{workload, 1, 0, 0, 0};
  const long warmup = txns / 10 + 1;

  auto measure = [&](int ops_per_txn, double u, auto&& body) {
    for (long i = 0; i < warmup; ++i) body(i);
    stm.stats().reset();
    cell.ops_per_txn = ops_per_txn;
    cell.write_fraction = u;
    cell.ops_per_sec = timed_txns(txns, ops_per_txn, body);
    cell.abort_ratio = stm.stats().snapshot().abort_ratio();
  };

  if (std::string_view(workload) == "read_only") {
    stm::Var<long> v(7);
    long sink = 0;
    measure(1, 0.0, [&](long) {
      sink += stm.atomically([&](Txn& tx) { return tx.read(v); });
    });
    if (sink == 42) std::printf("#");  // defeat dead-code elimination
  } else if (std::string_view(workload) == "write_heavy") {
    std::vector<stm::Var<long>> vars(8);
    measure(8, 1.0, [&](long i) {
      stm.atomically([&](Txn& tx) {
        for (auto& v : vars) tx.write(v, i);
      });
    });
  } else if (std::string_view(workload) == "read_modify_write") {
    stm::Var<long> v(0);
    measure(2, 0.5, [&](long) {
      stm.atomically([&](Txn& tx) { tx.write(v, tx.read(v) + 1); });
    });
  } else {  // write_large: 64 distinct vars, exercising the flat-table tier
    std::vector<stm::Var<long>> vars(64);
    measure(64, 1.0, [&](long i) {
      stm.atomically([&](Txn& tx) {
        for (auto& v : vars) tx.write(v, i);
      });
    });
  }
  return cell;
}

// --- Multi-thread sweep ------------------------------------------------------

/// Split `total_txns` across `threads` workers, release them through a
/// barrier, and time the whole batch. `per_thread(t, my_txns)` runs on its
/// own thread. Returns elapsed seconds.
template <class PerThread>
double timed_mt(int threads, long total_txns, PerThread&& per_thread) {
  std::barrier sync(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    const long my_txns =
        total_txns / threads + (t < total_txns % threads ? 1 : 0);
    workers.emplace_back([&, t, my_txns] {
      sync.arrive_and_wait();
      per_thread(t, my_txns);
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  const auto stop = std::chrono::steady_clock::now();
  for (auto& w : workers) w.join();
  return std::chrono::duration<double>(stop - start).count();
}

struct MtSpec {
  const char* workload;
  stm::Mode mode;
  int ops_per_txn;
  long total_txns;
};

/// One (workload, mode, scheme, threads) cell of the multi-thread sweep.
/// Workloads are write-shaped on purpose: writing commits are the only
/// transactions that touch the global clock, so they are where the scheme
/// shows up.
///   mt_write_heavy    — every txn writes the same 8 shared vars (w/w
///                       contention plus clock traffic)
///   mt_disjoint_write — each thread writes its own 8 vars (the clock is the
///                       only shared word: isolates commit-path overhead)
///   mt_counter        — single shared read-modify-write counter (maximum
///                       data contention; scheme effects are second-order)
bench::JsonRecord run_mt_cell(const MtSpec& spec, stm::ClockScheme scheme,
                              int threads, stm::ChaosPolicy* chaos) {
  stm::StmOptions opts;
  opts.clock_scheme = scheme;
  opts.chaos = chaos;
  stm::Stm stm(spec.mode, opts);

  std::vector<stm::Var<long>> shared(8);
  std::vector<std::vector<stm::Var<long>>> mine(threads);
  for (auto& v : mine) v = std::vector<stm::Var<long>>(8);
  stm::Var<long> counter(0);

  auto body = [&](int t, long i) {
    if (std::string_view(spec.workload) == "mt_write_heavy") {
      stm.atomically([&](stm::Txn& tx) {
        for (auto& v : shared) tx.write(v, i);
      });
    } else if (std::string_view(spec.workload) == "mt_disjoint_write") {
      stm.atomically([&](stm::Txn& tx) {
        for (auto& v : mine[t]) tx.write(v, i);
      });
    } else {  // mt_counter
      stm.atomically(
          [&](stm::Txn& tx) { tx.write(counter, tx.read(counter) + 1); });
    }
  };

  const long warmup = spec.total_txns / 10 + 1;
  timed_mt(threads, warmup, [&](int t, long n) {
    for (long i = 0; i < n; ++i) body(t, i);
  });
  stm.stats().reset();
  const double sec = timed_mt(threads, spec.total_txns, [&](int t, long n) {
    for (long i = 0; i < n; ++i) body(t, i);
  });
  const stm::StatsSnapshot s = stm.stats().snapshot();

  bench::JsonRecord rec{
      "micro_stm_mt",
      spec.workload,
      stm::to_string(spec.mode),
      threads,
      spec.ops_per_txn,
      std::string_view(spec.workload) == "mt_counter" ? 0.5 : 1.0,
      sec <= 0 ? 0.0
               : static_cast<double>(spec.total_txns) * spec.ops_per_txn / sec,
      s.abort_ratio()};
  rec.scheme = stm::to_string(scheme);
  rec.with_stats(s);
  return rec;
}

// --- Read-mostly sweep (MVCC snapshot reads vs. base) -----------------------

/// One (config, update-ratio, threads) cell of the read-mostly sweep. Each
/// transaction touches 8 of 64 shared vars; an `update_pct`% fraction are
/// read-modify-write transactions, the rest are pure reads. Under mvcc the
/// readers go through atomically_ro (snapshot reads: no read set, no
/// validation, no aborts); the base config runs the same workload through
/// plain TL2 reads. Stats are always attached so the abort-reason breakdown
/// (and the mvcc ro_commits/pushed/reclaimed counters) land in the JSON.
bench::JsonRecord run_ro_cell(const char* cfg_name, bool mvcc,
                              stm::ClockScheme scheme, int update_pct,
                              int threads, long total_txns,
                              stm::ChaosPolicy* chaos) {
  stm::StmOptions opts;
  opts.clock_scheme = scheme;
  opts.chaos = chaos;
  opts.mvcc = mvcc;
  stm::Stm stm(stm::Mode::Lazy, opts);

  constexpr int kVars = 64;
  constexpr int kTouched = 8;
  std::vector<stm::Var<long>> vars(kVars);
  std::vector<Xoshiro256> rngs;
  rngs.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    rngs.emplace_back(0x9E3779B9 + static_cast<std::uint64_t>(t) * 1771875 +
                      static_cast<std::uint64_t>(update_pct));
  }
  std::vector<long> sinks(static_cast<std::size_t>(threads), 0);

  auto body = [&](int t, long) {
    auto& rng = rngs[static_cast<std::size_t>(t)];
    if (static_cast<int>(rng.below(100)) < update_pct) {
      stm.atomically([&](stm::Txn& tx) {
        for (int j = 0; j < kTouched; ++j) {
          auto& v = vars[rng.below(kVars)];
          tx.write(v, tx.read(v) + 1);
        }
      });
      return;
    }
    auto reader = [&](stm::Txn& tx) {
      long s = 0;
      for (int j = 0; j < kTouched; ++j) s += tx.read(vars[rng.below(kVars)]);
      return s;
    };
    sinks[static_cast<std::size_t>(t)] +=
        mvcc ? stm.atomically_ro(reader) : stm.atomically(reader);
  };

  const long warmup = total_txns / 10 + 1;
  timed_mt(threads, warmup, [&](int t, long n) {
    for (long i = 0; i < n; ++i) body(t, i);
  });
  stm.stats().reset();
  const double sec = timed_mt(threads, total_txns, [&](int t, long n) {
    for (long i = 0; i < n; ++i) body(t, i);
  });
  if (sinks[0] == 0x5EED) std::printf("#");  // defeat dead-code elimination
  const stm::StatsSnapshot s = stm.stats().snapshot();

  bench::JsonRecord rec{std::string("micro_stm_ro"),
                        std::string("mt_read_mostly_") + cfg_name,
                        stm::to_string(stm::Mode::Lazy),
                        threads,
                        kTouched,
                        static_cast<double>(update_pct) / 100.0,
                        sec <= 0 ? 0.0
                                 : static_cast<double>(total_txns) * kTouched /
                                       sec,
                        s.abort_ratio()};
  rec.scheme = stm::to_string(scheme);
  rec.extra = update_pct;
  rec.with_stats(s);
  return rec;
}

int run_trajectory(const bench::Cli& cli) {
  const std::string path = cli.get("json", "BENCH_STM.json");
  const std::string label = cli.get("label", "current");
  const long scale = cli.get_long("scale", 1);

  // --chaos-seed=N runs the whole trajectory under deterministic fault
  // injection (stm/chaos.hpp) and attaches the per-point injected counters
  // to every record ("injected": {...}). Not for the tracked BENCH_STM.json
  // numbers — for measuring the overhead envelope of a chaos config and for
  // sanity-checking that injection counts reproduce for a given seed.
  std::unique_ptr<stm::ChaosPolicy> chaos;
  if (cli.has("chaos-seed")) {
    chaos = std::make_unique<stm::ChaosPolicy>(stm::ChaosConfig::standard(
        static_cast<std::uint64_t>(cli.get_long("chaos-seed", 1))));
    chaos->install_lock_hook();
  }
  stm::StmOptions base_opts;
  base_opts.chaos = chaos.get();

  struct Spec {
    const char* workload;
    long txns;
  };
  const Spec specs[] = {
      {"read_only", 2000000 * scale},
      {"write_heavy", 400000 * scale},
      {"read_modify_write", 1000000 * scale},
      {"write_large", 50000 * scale},
  };
  const stm::Mode modes[] = {stm::Mode::Lazy, stm::Mode::EagerWrite,
                             stm::Mode::EagerAll};

  bench::JsonWriter json(label);
  bench::Table table({"workload", "mode", "ops/txn", "Mops/s", "abort"});
  for (const Spec& spec : specs) {
    for (stm::Mode mode : modes) {
      stm::Stm stm(mode, base_opts);
      const Cell cell = run_cell(stm, spec.workload, spec.txns);
      bench::JsonRecord rec{"micro_stm", cell.workload, stm::to_string(mode),
                            1, cell.ops_per_txn, cell.write_fraction,
                            cell.ops_per_sec, cell.abort_ratio};
      rec.scheme = stm::to_string(stm::ClockScheme::IncOnCommit);
      if (chaos) rec.with_stats(stm.stats().snapshot());
      json.add(std::move(rec));
      table.row({cell.workload, stm::to_string(mode),
                 std::to_string(cell.ops_per_txn),
                 bench::Table::fmt(cell.ops_per_sec / 1e6, 2),
                 bench::Table::fmt(cell.abort_ratio, 4)});
    }
  }

  // Thread sweep: every clock scheme over write-shaped workloads.
  const auto mt_threads =
      cli.get_longs("mt-threads", std::vector<long>{1, 2, 4, 8, 16});
  const stm::ClockScheme schemes[] = {stm::ClockScheme::IncOnCommit,
                                      stm::ClockScheme::PassOnFailure,
                                      stm::ClockScheme::LazyBump};
  const MtSpec mt_specs[] = {
      {"mt_write_heavy", stm::Mode::Lazy, 8, 120000 * scale},
      {"mt_write_heavy", stm::Mode::EagerWrite, 8, 120000 * scale},
      {"mt_disjoint_write", stm::Mode::Lazy, 8, 120000 * scale},
      {"mt_disjoint_write", stm::Mode::EagerWrite, 8, 120000 * scale},
      {"mt_counter", stm::Mode::Lazy, 2, 120000 * scale},
  };
  bench::Table mt_table(
      {"workload", "mode", "scheme", "threads", "Mops/s", "abort"});
  for (const MtSpec& spec : mt_specs) {
    for (stm::ClockScheme scheme : schemes) {
      for (long t : mt_threads) {
        bench::JsonRecord rec =
            run_mt_cell(spec, scheme, static_cast<int>(t), chaos.get());
        mt_table.row({rec.workload, rec.mode, rec.scheme,
                      std::to_string(rec.threads),
                      bench::Table::fmt(rec.ops_per_sec / 1e6, 2),
                      bench::Table::fmt(rec.abort_ratio, 4)});
        json.add(std::move(rec));
      }
    }
  }

  // Read-mostly sweep: update ratio x threads x {base TL2, mvcc snapshot
  // reads (IncOnCommit and LazyBump)}. This is the headline MVCC cell: at low
  // update ratios the snapshot configs should show a near-zero abort ratio
  // with writers still running.
  struct RoCfg {
    const char* name;
    bool mvcc;
    stm::ClockScheme scheme;
  };
  const RoCfg ro_cfgs[] = {
      {"base", false, stm::ClockScheme::IncOnCommit},
      {"mvcc", true, stm::ClockScheme::IncOnCommit},
      {"mvcc_lazybump", true, stm::ClockScheme::LazyBump},
  };
  const int update_pcts[] = {0, 2, 10, 50};
  bench::Table ro_table(
      {"config", "update%", "threads", "Mops/s", "abort", "ro_commits"});
  for (const RoCfg& cfg : ro_cfgs) {
    for (int u : update_pcts) {
      for (long t : mt_threads) {
        bench::JsonRecord rec =
            run_ro_cell(cfg.name, cfg.mvcc, cfg.scheme, u,
                        static_cast<int>(t), 120000 * scale, chaos.get());
        ro_table.row({cfg.name, std::to_string(u), std::to_string(t),
                      bench::Table::fmt(rec.ops_per_sec / 1e6, 2),
                      bench::Table::fmt(rec.abort_ratio, 4),
                      std::to_string(rec.stats.ro_commits)});
        json.add(std::move(rec));
      }
    }
  }

  if (!json.write(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (label: %s)\n", path.c_str(), label.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  if (cli.has("json")) return run_trajectory(cli);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
