// Group-commit latency/throughput sweep for the durability axis (DESIGN.md
// §14): threads × durability {off, relaxed, strict} × fsync_every_n
// {1, 8, 64}, each cell timing transactions that write one var and log a
// 64-byte redo record. `off` cells run the identical workload with no Wal
// attached, so the sweep shows the cost of the subsystem itself, the cost
// of relaxed appends, and the fsync-bounded strict ack (whose mean wait is
// reported from the wal_wait_ns stats counter).
//
// --ab: the default-neutrality check (same discipline as the scenario
// matrix's pinning A/B). A = stock StmOptions. B = a live Wal *attached but
// never logged to* — every commit takes the compiled-in durability
// branches, nothing is staged or published. Paired-interleaved runs; the
// acceptance bar is min-time ratio >= 0.97, which subsumes the weaker
// "compiled in but disabled (nullptr)" claim since B exercises strictly
// more of the new code than a nullptr configuration does.
//
// Segments land in a scratch directory under the working directory and are
// removed on exit.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/json.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "stm/stm.hpp"
#include "stm/wal.hpp"

using namespace proust;
using bench::Cli;
using bench::JsonRecord;
using bench::JsonWriter;
using bench::RunConfig;
using bench::Table;
using bench::TimedRuns;

namespace {

struct Scratch {
  std::string path;
  explicit Scratch(const std::string& tag)
      : path("bench_wal_" + tag + "_" + std::to_string(::getpid())) {
    std::error_code ec;
    std::filesystem::create_directory(path, ec);
  }
  ~Scratch() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string sub(const std::string& name) const { return path + "/" + name; }
};

struct SweepCtx {
  long ops = 0;
  int warmup = 0;
  int runs = 1;
  Table* table = nullptr;
  JsonWriter* json = nullptr;
};

/// One sweep cell: `threads` workers, each transaction writes its thread's
/// var and (when `wal` is attached) logs a 64-byte record. Returns txn/s.
void run_cell(SweepCtx& ctx, const std::string& durability, long fsync_n,
              int threads, stm::Wal* wal) {
  stm::StmOptions opts;
  opts.durability = wal;
  stm::Stm s(stm::Mode::Lazy, opts);
  std::vector<stm::Var<long>> vars(static_cast<std::size_t>(threads));
  std::uint8_t payload[64] = {};
  const long iters = (ctx.ops + threads - 1) / threads;
  const TimedRuns t = bench::run_ops_timed(
      threads, iters, ctx.warmup, ctx.runs, /*seed=*/131, /*pin_plan=*/{},
      [&](int w, Xoshiro256& rng) {
        const long v = static_cast<long>(rng());
        s.atomically([&](stm::Txn& tx) {
          vars[static_cast<std::size_t>(w)].write(tx, v);
          if (wal != nullptr) {
            std::memcpy(payload, &v, sizeof v);
            tx.wal_log(/*stream=*/1, payload, sizeof payload);
          }
        });
      },
      [&] { s.stats().reset(); });
  if (wal != nullptr) wal->flush();

  const stm::StatsSnapshot st = s.stats().snapshot();
  const long total = iters * threads;
  const double txn_s = t.ops_per_sec(total, /*use_min=*/true);
  const double ack_us =
      st.wal_strict_waits > 0
          ? static_cast<double>(st.wal_wait_ns) /
                static_cast<double>(st.wal_strict_waits) / 1000.0
          : 0.0;
  ctx.table->row({durability, fsync_n > 0 ? std::to_string(fsync_n) : "-",
                  std::to_string(threads), Table::fmt(t.min_ms, 2),
                  Table::fmt(txn_s / 1000.0, 1), Table::fmt(ack_us, 1)});
  if (ctx.json != nullptr) {
    JsonRecord r;
    r.bench = "wal";
    r.workload = "group_commit";
    r.mode = durability;
    r.threads = threads;
    r.ops_per_txn = 1;
    r.ops_per_sec = txn_s;
    r.extra = fsync_n;
    ctx.json->add(r);
  }
}

int run_sweep(const Cli& cli, JsonWriter* json) {
  const bool smoke = cli.has("smoke");
  Scratch scratch("sweep");
  SweepCtx ctx;
  ctx.ops = cli.get_long("ops", smoke ? 2000 : 40000);
  ctx.warmup = static_cast<int>(cli.get_long("warmup", smoke ? 0 : 1));
  ctx.runs = static_cast<int>(cli.get_long("runs", smoke ? 1 : 5));
  ctx.json = json;
  const auto thread_counts = cli.get_longs(
      "threads", smoke ? std::vector<long>{1, 2} : std::vector<long>{1, 2, 4});
  const auto fsync_ns = cli.get_longs("fsync-n", std::vector<long>{1, 8, 64});

  std::printf("# wal sweep: ops=%ld runs=%d (min) %s\n", ctx.ops, ctx.runs,
              smoke ? "(smoke)" : "");
  Table table({"durability", "fsync_n", "threads", "ms", "ktxn/s", "ack-us"});
  ctx.table = &table;
  int cell = 0;
  for (long t : thread_counts) {
    run_cell(ctx, "off", 0, static_cast<int>(t), nullptr);
    for (const char* dur : {"relaxed", "strict"}) {
      for (long n : fsync_ns) {
        stm::WalOptions wopts;
        wopts.dir = scratch.sub("c" + std::to_string(cell++));
        wopts.fsync_every_n = static_cast<std::uint32_t>(n);
        wopts.durability = std::string(dur) == "strict"
                               ? stm::WalDurability::Strict
                               : stm::WalDurability::Relaxed;
        stm::Wal wal(wopts);
        run_cell(ctx, dur, n, static_cast<int>(t), &wal);
      }
    }
  }
  return 0;
}

int run_neutrality_ab(const Cli& cli, JsonWriter* json) {
  RunConfig cfg;
  cfg.total_ops = cli.get_long("ops", 200000);
  cfg.key_range = cli.get_long("key-range", 1024);
  cfg.ops_per_txn = static_cast<int>(cli.get_long("o", 4));
  cfg.warmup_runs = static_cast<int>(cli.get_long("warmup", 2));
  cfg.timed_runs = static_cast<int>(cli.get_long("runs", 7));
  const stm::Mode mode = cli.get_mode("mode", stm::Mode::Lazy);

  Scratch scratch("ab");
  stm::WalOptions wopts;
  wopts.dir = scratch.sub("idle");
  stm::Wal wal(wopts);
  stm::StmOptions with;
  with.durability = &wal;  // attached, never logged to

  std::printf("# neutrality A/B: defaults vs wal-attached-idle, "
              "paired-interleaved, %d runs (min)\n", cfg.timed_runs);
  Table table({"u", "threads", "off-ms", "wal-ms", "wal/off", "off-ab%",
               "wal-ab%"});
  for (double u : cli.get_doubles("u", std::vector<double>{0, 0.5})) {
    for (long t : cli.get_longs("threads", std::vector<long>{1, 2})) {
      cfg.write_fraction = u;
      cfg.threads = static_cast<int>(t);
      bench::PureStmAdapter off(mode, cfg.key_range, stm::StmOptions{});
      bench::PureStmAdapter on(mode, cfg.key_range, with);
      bench::prefill_half(off, cfg.key_range);
      bench::prefill_half(on, cfg.key_range);
      const auto [ro, rw] = bench::run_map_throughput_paired(off, on, cfg);
      table.row({Table::fmt(u, 2), std::to_string(t),
                 Table::fmt(ro.min_ms, 2), Table::fmt(rw.min_ms, 2),
                 Table::fmt(rw.min_ms / ro.min_ms, 3),
                 Table::fmt(100.0 * ro.abort_ratio(), 1),
                 Table::fmt(100.0 * rw.abort_ratio(), 1)});
      if (json != nullptr) {
        for (const auto* side : {"ab-defaults", "ab-wal-idle"}) {
          JsonRecord r;
          r.bench = "wal";
          r.workload = side;
          r.mode = stm::to_string(mode);
          r.threads = static_cast<int>(t);
          r.ops_per_txn = cfg.ops_per_txn;
          r.write_fraction = u;
          r.ops_per_sec = (side == std::string("ab-defaults") ? ro : rw)
                              .ops_per_sec_min(cfg.total_ops);
          json->add(r);
        }
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string json_path = cli.get("json", "");
  JsonWriter json(cli.get("label", "wal"));
  JsonWriter* jp = json_path.empty() ? nullptr : &json;

  const int rc = cli.has("ab") ? run_neutrality_ab(cli, jp)
                               : run_sweep(cli, jp);
  if (rc == 0 && jp != nullptr) {
    if (!json.write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return rc;
}
