// Group-commit latency/throughput sweep for the durability axis (DESIGN.md
// §14): threads × durability {off, relaxed, strict} × fsync_every_n
// {1, 8, 64}, each cell timing transactions that write one var and log a
// 64-byte redo record. `off` cells run the identical workload with no Wal
// attached, so the sweep shows the cost of the subsystem itself, the cost
// of relaxed appends, and the fsync-bounded strict ack (whose mean wait is
// reported from the wal_wait_ns stats counter).
//
// --recovery: the bounded-restart sweep for the checkpoint layer (DESIGN.md
// §15). History length is swept as a multiplier over a fixed live-state
// size, with the checkpointer off vs taking periodic cuts; the measured
// quantity is cold recovery time of the resulting directory. Without
// checkpoints recovery cost grows with the multiplier; with them it tracks
// live state + the unretired tail, which is the layer's contract.
//
// --ab: the default-neutrality check (same discipline as the scenario
// matrix's pinning A/B). A = stock StmOptions. B = a live Wal *attached but
// never logged to* — every commit takes the compiled-in durability
// branches, nothing is staged or published. With --ckpt, B additionally
// runs a live background Checkpointer parked on the log, so the cell
// prices the checkpoint layer's whole non-participant surface: the
// wal_fenced predicate every commit now evaluates plus the idle
// checkpointer thread. Paired-interleaved runs; the acceptance bar is
// min-time ratio >= 0.97.
//
// All modes share one flat CSV schema (--csv <path>); rows carry the same
// host-topology block as the scenario matrix, and --json records embed it
// per record, so output from different machines stays comparable.
//
// Segments land in a scratch directory under the working directory and are
// removed on exit.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util/adapters.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/csv.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/json.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "stm/checkpoint.hpp"
#include "stm/stm.hpp"
#include "stm/wal.hpp"

using namespace proust;
using bench::Cli;
using bench::CsvWriter;
using bench::JsonRecord;
using bench::JsonWriter;
using bench::RunConfig;
using bench::Table;
using bench::TimedRuns;

namespace {

struct Scratch {
  std::string path;
  explicit Scratch(const std::string& tag)
      : path("bench_wal_" + tag + "_" + std::to_string(::getpid())) {
    std::error_code ec;
    std::filesystem::create_directory(path, ec);
  }
  ~Scratch() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string sub(const std::string& name) const { return path + "/" + name; }
};

/// One schema for all three run modes so one plot script consumes any
/// bench_wal CSV: inapplicable fields carry "-". `extra` is the mode's
/// auxiliary knob (history multiplier for --recovery, unused elsewhere).
std::vector<std::string> csv_columns() {
  std::vector<std::string> cols = {"workload", "mode",        "fsync_n",
                                   "threads",  "u",           "extra",
                                   "ms",       "ops_per_sec", "ack_us"};
  for (const std::string& c : CsvWriter::host_columns()) cols.push_back(c);
  return cols;
}

void csv_row(CsvWriter* csv, const std::string& workload,
             const std::string& mode, const std::string& fsync_n, int threads,
             const std::string& u, const std::string& extra, double ms,
             double ops_s, const std::string& ack_us) {
  if (csv == nullptr) return;
  std::vector<std::string> row = {workload,
                                  mode,
                                  fsync_n,
                                  std::to_string(threads),
                                  u,
                                  extra,
                                  CsvWriter::fmt(ms, 3),
                                  CsvWriter::fmt(ops_s, 1),
                                  ack_us};
  for (const std::string& f : CsvWriter::host_fields()) row.push_back(f);
  csv->row(row);
}

struct SweepCtx {
  long ops = 0;
  int warmup = 0;
  int runs = 1;
  Table* table = nullptr;
  CsvWriter* csv = nullptr;
  JsonWriter* json = nullptr;
};

/// One sweep cell: `threads` workers, each transaction writes its thread's
/// var and (when `wal` is attached) logs a 64-byte record. Returns txn/s.
void run_cell(SweepCtx& ctx, const std::string& durability, long fsync_n,
              int threads, stm::Wal* wal) {
  stm::StmOptions opts;
  opts.durability = wal;
  stm::Stm s(stm::Mode::Lazy, opts);
  std::vector<stm::Var<long>> vars(static_cast<std::size_t>(threads));
  std::uint8_t payload[64] = {};
  const long iters = (ctx.ops + threads - 1) / threads;
  const TimedRuns t = bench::run_ops_timed(
      threads, iters, ctx.warmup, ctx.runs, /*seed=*/131, /*pin_plan=*/{},
      [&](int w, Xoshiro256& rng) {
        const long v = static_cast<long>(rng());
        s.atomically([&](stm::Txn& tx) {
          vars[static_cast<std::size_t>(w)].write(tx, v);
          if (wal != nullptr) {
            std::memcpy(payload, &v, sizeof v);
            tx.wal_log(/*stream=*/1, payload, sizeof payload);
          }
        });
      },
      [&] { s.stats().reset(); });
  if (wal != nullptr) wal->flush();

  const stm::StatsSnapshot st = s.stats().snapshot();
  const long total = iters * threads;
  const double txn_s = t.ops_per_sec(total, /*use_min=*/true);
  const double ack_us =
      st.wal_strict_waits > 0
          ? static_cast<double>(st.wal_wait_ns) /
                static_cast<double>(st.wal_strict_waits) / 1000.0
          : 0.0;
  ctx.table->row({durability, fsync_n > 0 ? std::to_string(fsync_n) : "-",
                  std::to_string(threads), Table::fmt(t.min_ms, 2),
                  Table::fmt(txn_s / 1000.0, 1), Table::fmt(ack_us, 1)});
  csv_row(ctx.csv, "group_commit", durability,
          fsync_n > 0 ? std::to_string(fsync_n) : "-", threads, "-", "-",
          t.min_ms, txn_s, CsvWriter::fmt(ack_us, 2));
  if (ctx.json != nullptr) {
    JsonRecord r;
    r.bench = "wal";
    r.workload = "group_commit";
    r.mode = durability;
    r.threads = threads;
    r.ops_per_txn = 1;
    r.ops_per_sec = txn_s;
    r.extra = fsync_n;
    ctx.json->add(r);
  }
}

int run_sweep(const Cli& cli, CsvWriter* csv, JsonWriter* json) {
  const bool smoke = cli.has("smoke");
  Scratch scratch("sweep");
  SweepCtx ctx;
  ctx.ops = cli.get_long("ops", smoke ? 2000 : 40000);
  ctx.warmup = static_cast<int>(cli.get_long("warmup", smoke ? 0 : 1));
  ctx.runs = static_cast<int>(cli.get_long("runs", smoke ? 1 : 5));
  ctx.csv = csv;
  ctx.json = json;
  const auto thread_counts = cli.get_longs(
      "threads", smoke ? std::vector<long>{1, 2} : std::vector<long>{1, 2, 4});
  const auto fsync_ns = cli.get_longs("fsync-n", std::vector<long>{1, 8, 64});

  std::printf("# wal sweep: ops=%ld runs=%d (min) %s\n", ctx.ops, ctx.runs,
              smoke ? "(smoke)" : "");
  Table table({"durability", "fsync_n", "threads", "ms", "ktxn/s", "ack-us"});
  ctx.table = &table;
  int cell = 0;
  for (long t : thread_counts) {
    run_cell(ctx, "off", 0, static_cast<int>(t), nullptr);
    for (const char* dur : {"relaxed", "strict"}) {
      for (long n : fsync_ns) {
        stm::WalOptions wopts;
        wopts.dir = scratch.sub("c" + std::to_string(cell++));
        wopts.fsync_every_n = static_cast<std::uint32_t>(n);
        wopts.durability = std::string(dur) == "strict"
                               ? stm::WalDurability::Strict
                               : stm::WalDurability::Relaxed;
        stm::Wal wal(wopts);
        run_cell(ctx, dur, n, static_cast<int>(t), &wal);
      }
    }
  }
  return 0;
}

/// Cold recovery time vs history length, checkpointer off vs periodic cuts.
/// Live state is fixed (kVars registered vars); history is `mult × base`
/// updates over them. With cuts every `base` records the replayed tail is
/// bounded by `base` however long the history grows.
int run_recovery(const Cli& cli, CsvWriter* csv, JsonWriter* json) {
  const bool smoke = cli.has("smoke");
  constexpr int kVars = 32;
  const long base = cli.get_long("ops", smoke ? 1500 : 6000);
  const int runs = static_cast<int>(cli.get_long("runs", smoke ? 2 : 5));
  const auto mults = cli.get_longs(
      "mult", smoke ? std::vector<long>{1, 4} : std::vector<long>{1, 4, 16});

  Scratch scratch("recovery");
  std::printf("# wal recovery: base=%ld ops, %d timed recoveries (min) %s\n",
              base, runs, smoke ? "(smoke)" : "");
  Table table({"ckpt", "mult", "history", "segs", "tail-recs", "recover-ms",
               "Mops/s"});
  int cell = 0;
  for (const bool ckpt_on : {false, true}) {
    for (long mult : mults) {
      const std::string dir = scratch.sub("r" + std::to_string(cell++));
      const long history = base * mult;
      {
        std::vector<stm::Var<long>> vars(kVars);
        stm::WalOptions wopts;
        wopts.dir = dir;
        wopts.segment_bytes = 16 * 1024;  // rotations every few hundred recs
        wopts.fsync_every_n = 64;
        stm::Wal wal(wopts);
        for (int i = 0; i < kVars; ++i) {
          wal.register_var(static_cast<std::uint64_t>(i + 1),
                           vars[static_cast<std::size_t>(i)]);
        }
        stm::StmOptions opts;
        opts.durability = &wal;
        stm::Stm s(stm::Mode::Lazy, opts);
        stm::CheckpointOptions copts;  // both triggers 0: manual cuts only,
        stm::Checkpointer cp(wal, copts);  // so the tail is deterministic
        for (long j = 1; j <= history; ++j) {
          s.atomically([&](stm::Txn& tx) {
            vars[static_cast<std::size_t>(j % kVars)].write(tx, j);
          });
          // Periodic cuts, but never right at the end — recovery always
          // has a non-empty tail to replay atop the newest checkpoint. The
          // flush first drains the committer so the covered history sits in
          // *sealed* segments, which is what retirement can unlink.
          if (ckpt_on && j % base == 0 && j != history) {
            wal.flush();
            (void)cp.checkpoint_now();
          }
        }
        wal.flush();
      }
      // Cold restart: recover the directory into a fold, timed.
      double min_ms = 0;
      long sink = 0;
      stm::WalRecoveryInfo info;
      for (int r = 0; r < runs; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        info = stm::Wal::recover(dir, [&](const stm::WalRecordView& v) {
          sink += static_cast<long>(v.epoch) + static_cast<long>(v.size);
        });
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (r == 0 || ms < min_ms) min_ms = ms;
      }
      if (sink == 42) std::printf("#");  // keep the fold from being elided
      const double hist_per_s =
          static_cast<double>(history) / min_ms * 1000.0;
      table.row({ckpt_on ? "on" : "off", std::to_string(mult),
                 std::to_string(history), std::to_string(info.segments),
                 std::to_string(info.records), Table::fmt(min_ms, 3),
                 Table::fmt(hist_per_s / 1e6, 2)});
      csv_row(csv, "recovery", ckpt_on ? "ckpt" : "no-ckpt", "-", 1, "-",
              std::to_string(mult), min_ms, hist_per_s, "-");
      if (json != nullptr) {
        JsonRecord r;
        r.bench = "wal";
        r.workload = "recovery";
        r.mode = ckpt_on ? "ckpt" : "no-ckpt";
        r.threads = 1;
        r.ops_per_txn = 1;
        // History ops covered per second of restart: with cuts this grows
        // with the multiplier (bounded replay), without it stays flat.
        r.ops_per_sec = hist_per_s;
        r.extra = mult;
        json->add(r);
      }
    }
  }
  return 0;
}

int run_neutrality_ab(const Cli& cli, CsvWriter* csv, JsonWriter* json) {
  RunConfig cfg;
  cfg.total_ops = cli.get_long("ops", 200000);
  cfg.key_range = cli.get_long("key-range", 1024);
  cfg.ops_per_txn = static_cast<int>(cli.get_long("o", 4));
  cfg.warmup_runs = static_cast<int>(cli.get_long("warmup", 2));
  cfg.timed_runs = static_cast<int>(cli.get_long("runs", 7));
  const stm::Mode mode = cli.get_mode("mode", stm::Mode::Lazy);
  const bool with_ckpt = cli.has("ckpt");
  const char* b_name = with_ckpt ? "ab-ckpt-idle" : "ab-wal-idle";

  Scratch scratch("ab");
  stm::WalOptions wopts;
  wopts.dir = scratch.sub("idle");
  stm::Wal wal(wopts);
  // --ckpt: park a live background Checkpointer on the attached log (no
  // triggers; its thread sleeps between polls). No var is registered and
  // nothing is ever logged, so B prices exactly what PR 10 added for
  // commits that do not log: the wal_fenced predicate on the commit path
  // plus the checkpointer's existence. The fence bracket itself is only
  // taken by logging commits — its cost is part of the durability feature
  // and shows up in the group-commit sweep, not here.
  std::unique_ptr<stm::Checkpointer> cp;
  if (with_ckpt) {
    cp = std::make_unique<stm::Checkpointer>(wal, stm::CheckpointOptions{});
  }
  stm::StmOptions with;
  with.durability = &wal;  // attached, never logged to

  std::printf("# neutrality A/B: defaults vs %s, "
              "paired-interleaved, %d runs (min)\n", b_name, cfg.timed_runs);
  Table table({"u", "threads", "off-ms", "wal-ms", "wal/off", "off-ab%",
               "wal-ab%"});
  for (double u : cli.get_doubles("u", std::vector<double>{0, 0.5})) {
    for (long t : cli.get_longs("threads", std::vector<long>{1, 2})) {
      cfg.write_fraction = u;
      cfg.threads = static_cast<int>(t);
      bench::PureStmAdapter off(mode, cfg.key_range, stm::StmOptions{});
      bench::PureStmAdapter on(mode, cfg.key_range, with);
      bench::prefill_half(off, cfg.key_range);
      bench::prefill_half(on, cfg.key_range);
      const auto [ro, rw] = bench::run_map_throughput_paired(off, on, cfg);
      table.row({Table::fmt(u, 2), std::to_string(t),
                 Table::fmt(ro.min_ms, 2), Table::fmt(rw.min_ms, 2),
                 Table::fmt(rw.min_ms / ro.min_ms, 3),
                 Table::fmt(100.0 * ro.abort_ratio(), 1),
                 Table::fmt(100.0 * rw.abort_ratio(), 1)});
      for (const bool b_side : {false, true}) {
        const bench::RunResult& tr = b_side ? rw : ro;
        const char* name = b_side ? b_name : "ab-defaults";
        csv_row(csv, name, stm::to_string(mode), "-", static_cast<int>(t),
                CsvWriter::fmt(u, 2), "-", tr.min_ms,
                tr.ops_per_sec_min(cfg.total_ops), "-");
        if (json != nullptr) {
          JsonRecord r;
          r.bench = "wal";
          r.workload = name;
          r.mode = stm::to_string(mode);
          r.threads = static_cast<int>(t);
          r.ops_per_txn = cfg.ops_per_txn;
          r.write_fraction = u;
          r.ops_per_sec = tr.ops_per_sec_min(cfg.total_ops);
          json->add(r);
        }
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string json_path = cli.get("json", "");
  JsonWriter json(cli.get("label", "wal"));
  JsonWriter* jp = json_path.empty() ? nullptr : &json;
  const std::string csv_path = cli.get("csv", "");
  CsvWriter csv(csv_columns());
  CsvWriter* cvp = csv_path.empty() ? nullptr : &csv;

  const int rc = cli.has("ab")         ? run_neutrality_ab(cli, cvp, jp)
                 : cli.has("recovery") ? run_recovery(cli, cvp, jp)
                                       : run_sweep(cli, cvp, jp);
  if (rc == 0 && cvp != nullptr) {
    if (!csv.write(csv_path)) {
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("# wrote %s (%zu rows)\n", csv_path.c_str(), csv.row_count());
  }
  if (rc == 0 && jp != nullptr) {
    if (!json.write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return rc;
}
