// Quickstart: wrap-and-go. Shows the three steps of using Proust:
//   1. pick an STM runtime (conflict-detection mode),
//   2. pick a lock-allocator policy (optimistic conflict abstraction here),
//   3. use the wrapped transactional data structures inside atomically().
//
// Build & run:  ./build/examples/example_quickstart
#include <cstdio>

#include "core/lap.hpp"
#include "core/txn_hash_map.hpp"
#include "stm/stm.hpp"

using namespace proust;

int main() {
  // 1. The STM. EagerAll detects all conflicts at encounter time, which is
  //    the mode under which every Proust configuration is opaque (Thm 5.2).
  stm::Stm stm(stm::Mode::EagerAll);

  // 2. The LAP: a conflict abstraction with 256 STM locations; keys map to
  //    locations by hash (lock striping, §3).
  core::OptimisticLap<std::string> lap(stm, 256);

  // 3. A transactional map wrapping a plain thread-safe striped hash map.
  core::TxnHashMap<std::string, long, core::OptimisticLap<std::string>>
      inventory(lap);

  // Transactions compose multiple operations atomically.
  stm.atomically([&](stm::Txn& tx) {
    inventory.put(tx, "apples", 10);
    inventory.put(tx, "oranges", 5);
  });

  // Move stock between keys — all-or-nothing.
  stm.atomically([&](stm::Txn& tx) {
    const long apples = inventory.get(tx, "apples").value_or(0);
    if (apples >= 3) {
      inventory.put(tx, "apples", apples - 3);
      inventory.put(tx, "baskets",
                    inventory.get(tx, "baskets").value_or(0) + 1);
    }
  });

  stm.atomically([&](stm::Txn& tx) {
    std::printf("apples=%ld oranges=%ld baskets=%ld (size=%ld)\n",
                inventory.get(tx, "apples").value_or(0),
                inventory.get(tx, "oranges").value_or(0),
                inventory.get(tx, "baskets").value_or(0), inventory.size());
  });

  const auto stats = stm.stats().snapshot();
  std::printf("stm: %s\n", stats.to_string().c_str());
  return 0;
}
