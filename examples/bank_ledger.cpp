// Bank ledger: the classic STM motivating workload, run on Proustian
// structures. Concurrent tellers transfer money between accounts (a
// TxnHashMap) while appending an audit trail (a TxnQueue) in the SAME
// transaction — cross-structure atomicity that stand-alone boosting cannot
// give you. A background auditor keeps verifying the conservation-of-money
// invariant.
#include <atomic>
#include <barrier>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/txn_hash_map.hpp"
#include "core/txn_queue.hpp"
#include "stm/stm.hpp"

using namespace proust;

namespace {
constexpr long kAccounts = 64;
constexpr long kInitialBalance = 1000;
constexpr int kTellers = 4;
constexpr int kTransfersPerTeller = 5000;
}  // namespace

int main() {
  stm::Stm stm(stm::Mode::EagerAll);
  core::OptimisticLap<long> accounts_lap(stm, 256);
  core::OptimisticLap<core::QueueState, core::QueueStateHasher> audit_lap(stm, 2);

  core::TxnHashMap<long, long, core::OptimisticLap<long>> accounts(
      accounts_lap);
  core::TxnQueue<long, decltype(audit_lap)> audit(audit_lap);

  for (long a = 0; a < kAccounts; ++a) accounts.unsafe_put(a, kInitialBalance);

  std::atomic<bool> done{false};
  std::atomic<long> violations{0};

  std::thread auditor([&] {
    while (!done.load(std::memory_order_acquire)) {
      long total = 0;
      stm.atomically([&](stm::Txn& tx) {
        total = 0;
        for (long a = 0; a < kAccounts; ++a) {
          total += accounts.get(tx, a).value_or(0);
        }
      });
      if (total != kAccounts * kInitialBalance) violations.fetch_add(1);
    }
  });

  std::barrier start(kTellers);
  std::vector<std::thread> tellers;
  std::atomic<long> committed_transfers{0};
  for (int t = 0; t < kTellers; ++t) {
    tellers.emplace_back([&, t] {
      start.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < kTransfersPerTeller; ++i) {
        const long from = static_cast<long>(rng.below(kAccounts));
        const long to = static_cast<long>(rng.below(kAccounts));
        const long amount = 1 + static_cast<long>(rng.below(20));
        if (from == to) continue;
        const bool ok = stm.atomically([&](stm::Txn& tx) {
          const long balance = accounts.get(tx, from).value();
          if (balance < amount) return false;
          accounts.put(tx, from, balance - amount);
          accounts.put(tx, to, accounts.get(tx, to).value() + amount);
          audit.enq(tx, from * 1000000 + to * 100 + amount % 100);
          return true;
        });
        if (ok) committed_transfers.fetch_add(1);
      }
    });
  }
  for (auto& th : tellers) th.join();
  done.store(true, std::memory_order_release);
  auditor.join();

  long total = 0;
  stm.atomically([&](stm::Txn& tx) {
    total = 0;
    for (long a = 0; a < kAccounts; ++a) total += accounts.get(tx, a).value();
  });

  std::printf("transfers committed: %ld\n", committed_transfers.load());
  std::printf("audit trail length:  %ld\n", audit.size());
  std::printf("total money:         %ld (expected %ld)\n", total,
              kAccounts * kInitialBalance);
  std::printf("auditor violations:  %ld\n", violations.load());
  std::printf("stm: %s\n", stm.stats().snapshot().to_string().c_str());

  const bool pass = total == kAccounts * kInitialBalance &&
                    violations.load() == 0 &&
                    audit.size() == committed_transfers.load();
  std::printf("%s\n", pass ? "OK" : "FAILED");
  return pass ? 0 : 1;
}
