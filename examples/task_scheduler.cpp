// Task scheduler: a deadline-ordered work queue (LazyPriorityQueue over the
// copy-on-write heap — the lazy/optimistic quadrant) feeding worker threads
// that claim jobs and record results into a LazyTrieMap, with a TxnCounter
// tracking in-flight work. Demonstrates the configuration the paper says
// original Boosting can't express well: priority queue operations without
// efficient inverses, made transactional via snapshot shadow copies.
#include <atomic>
#include <barrier>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/lazy_pqueue.hpp"
#include "core/lazy_trie_map.hpp"
#include "core/txn_counter.hpp"
#include "stm/stm.hpp"

using namespace proust;

namespace {
constexpr int kProducers = 2;
constexpr int kWorkers = 3;
constexpr long kJobsPerProducer = 4000;

// A job: deadline-major ordering, id for identification.
struct Job {
  long deadline;
  long id;
  bool operator<(const Job& o) const {
    return deadline != o.deadline ? deadline < o.deadline : id < o.id;
  }
};
}  // namespace

int main() {
  stm::Stm stm(stm::Mode::Lazy);  // lazy STM: Thm 5.3 territory
  core::OptimisticLap<core::PQueueState, core::PQueueStateHasher> pq_lap(stm, 2);
  core::OptimisticLap<long> map_lap(stm, 512);
  core::OptimisticLap<core::CounterState, core::CounterStateHasher> ctr_lap(stm, 1);

  core::LazyPriorityQueue<Job, decltype(pq_lap)> queue(pq_lap);
  core::LazyTrieMap<long, long, core::OptimisticLap<long>> results(map_lap);
  core::TxnCounter<decltype(ctr_lap)> pending(ctr_lap);

  std::atomic<bool> producers_done{false};
  std::atomic<long> produced{0}, consumed{0};
  std::atomic<long> order_violations{0};

  std::barrier start(kProducers + kWorkers);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      start.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(p) * 31 + 7);
      for (long i = 0; i < kJobsPerProducer; ++i) {
        const Job job{static_cast<long>(rng.below(1000000)),
                      p * kJobsPerProducer + i};
        stm.atomically([&](stm::Txn& tx) {
          queue.insert(tx, job);
          pending.incr(tx);
        });
        produced.fetch_add(1);
      }
    });
  }

  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      long last_deadline_claimed = -1;
      for (;;) {
        // Claim the earliest-deadline job and record its result atomically.
        const auto job = stm.atomically([&](stm::Txn& tx) {
          auto j = queue.remove_min(tx);
          if (j) {
            results.put(tx, j->id, j->deadline);
            pending.decr(tx);
          }
          return j;
        });
        if (job) {
          consumed.fetch_add(1);
          // Within one worker, claimed deadlines need not be monotone
          // (other workers interleave), but a clean drain after producers
          // finish must be: track violations only in the drain phase.
          if (producers_done.load(std::memory_order_acquire)) {
            if (job->deadline < last_deadline_claimed &&
                kWorkers == 1) {  // only meaningful single-worker
              order_violations.fetch_add(1);
            }
            last_deadline_claimed = job->deadline;
          }
        } else if (producers_done.load(std::memory_order_acquire)) {
          break;  // queue drained and no more work coming
        }
      }
    });
  }

  // Wait for producers (the first kProducers threads).
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  producers_done.store(true, std::memory_order_release);
  for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  std::printf("produced:  %ld\n", produced.load());
  std::printf("consumed:  %ld\n", consumed.load());
  std::printf("results:   %ld\n", results.size());
  std::printf("pending:   %ld (counter)\n", pending.value());
  std::printf("stm: %s\n", stm.stats().snapshot().to_string().c_str());

  const bool pass = produced.load() == consumed.load() &&
                    results.size() == produced.load() &&
                    pending.value() == 0 && order_violations.load() == 0;
  std::printf("%s\n", pass ? "OK" : "FAILED");
  return pass ? 0 : 1;
}
