// Conflict-abstraction verification walkthrough (§3 "Correctness" +
// Appendix E): check the paper's counter CA, refute a broken variant with a
// counterexample, verify the striped map CA for several M, and exhibit the
// Figure 3 empty-queue subtlety on the priority-queue model.
#include <cstdio>

#include "verify/checker.hpp"
#include "verify/synth.hpp"

using namespace proust::verify;

namespace {
void report(const char* label, const ModelSpec& model,
            const ConflictAbstractionFn& ca) {
  const auto cex = check_conflict_abstraction(model, ca);
  if (cex) {
    std::printf("%-28s REFUTED\n    %s\n", label, cex->detail.c_str());
  } else {
    std::printf("%-28s OK  (false conflicts: %zu of %zu pairs)\n", label,
                count_false_conflicts(model, ca), count_pairs(model));
  }
}
}  // namespace

int main() {
  std::printf("== Counter (§3) ==\n");
  const ModelSpec counter = make_counter_model(6);
  report("paper CA (threshold 2)", counter, counter_ca_paper());
  report("broken CA (threshold 1)", counter, counter_ca_threshold1());

  std::printf("\n== Map with striped CA (k mod M) ==\n");
  const ModelSpec map = make_map_model(3, 2);
  for (int m : {1, 2, 4, 8}) {
    char label[64];
    std::snprintf(label, sizeof(label), "striped CA, M=%d", m);
    report(label, map, map_ca_striped(m));
  }
  report("broken CA (readless gets)", map, map_ca_readless());

  std::printf("\n== Priority queue (Listing 3 / Figure 3) ==\n");
  const ModelSpec pq = make_pqueue_model(3, 4);
  report("our CA (empty ins -> W(Min))", pq, pqueue_ca_ours(3, 4));
  report("Figure 3 literal", pq, pqueue_ca_figure3_literal(3, 4));
  std::printf(
      "\nThe literal Figure 3 CA reads (not writes) PQueueMin when inserting\n"
      "into an empty queue; the checker exhibits the missed conflict with\n"
      "min()/removeMin(). Our wrappers use the corrected CA (DESIGN.md).\n");

  std::printf("\n== FIFO queue (Head/Tail decomposition, TxnQueue) ==\n");
  const ModelSpec q = make_queue_model(2, 4);
  report("our CA (empty deq -> R(Tail))", q, queue_ca_ours(2, 4));
  report("broken (no empty read)", q, queue_ca_no_empty_read(2, 4));

  std::printf("\n== Ordered map with range queries (TxnOrderedMap) ==\n");
  const ModelSpec om = make_ordered_map_model(4, 2);
  report("interval CA, M=4", om, ordered_map_ca_interval(4));
  report("interval CA, M=2", om, ordered_map_ca_interval(2));
  report("broken (lower bound only)", om, ordered_map_ca_lower_only(4));

  std::printf("\n== CEGIS synthesis (Sec. 9 future work, implemented) ==\n");
  {
    const SynthesisResult r =
        synthesize(make_counter_synthesis_problem(counter));
    std::printf("counter: %s\n", r.found ? "SYNTHESIZED" : "no CA in space");
    if (r.found) {
      std::printf("  choice: %s\n", r.summary.c_str());
      std::printf("  verified: %zu candidates model-checked, %zu pruned by "
                  "%zu counterexamples\n",
                  r.candidates_proposed, r.candidates_pruned,
                  r.counterexamples.size());
      std::printf("  false conflicts: synthesized=%zu vs paper CA=%zu\n",
                  count_false_conflicts(counter, r.ca),
                  count_false_conflicts(counter, counter_ca_paper()));
    }
  }
  {
    const SynthesisResult r = synthesize(make_queue_synthesis_problem(q));
    std::printf("queue:   %s\n", r.found ? "SYNTHESIZED" : "no CA in space");
    if (r.found) std::printf("  choice: %s\n", r.summary.c_str());
  }
  return 0;
}
