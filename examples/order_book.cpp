// Order book: a tiny matching engine built from TWO Proustian priority
// queues (bids max-ordered, asks min-ordered) plus an eager TxnHashMap of
// open orders. Matching pops the best bid and best ask and trades when they
// cross — one transaction touching three transactional structures, using
// the eager wrapper (Figure 3's lazy-deletion trick) under the pessimistic
// LAP with the PQueueMultiSet group discipline.
#include <atomic>
#include <barrier>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/txn_hash_map.hpp"
#include "core/txn_pqueue.hpp"
#include "stm/stm.hpp"

using namespace proust;
using core::PQueueState;
using core::PQueueStateHasher;

namespace {
struct Order {
  long price;
  long id;
  bool operator<(const Order& o) const {
    return price != o.price ? price < o.price : id < o.id;
  }
};
struct BidOrder {  // max-heap: invert the price comparison
  long price;
  long id;
  bool operator<(const BidOrder& o) const {
    return price != o.price ? price > o.price : id < o.id;
  }
};

constexpr int kTraders = 3;
constexpr long kOrdersPerTrader = 3000;
}  // namespace

int main() {
  stm::Stm stm(stm::Mode::Lazy);
  using PQLap = core::PessimisticLap<PQueueState, PQueueStateHasher>;
  PQLap bids_lap(stm, 2, core::pqueue_lock_kind, std::chrono::milliseconds(2));
  PQLap asks_lap(stm, 2, core::pqueue_lock_kind, std::chrono::milliseconds(2));
  core::PessimisticLap<long> book_lap(stm, 512);

  core::TxnPriorityQueue<BidOrder, PQLap> bids(bids_lap);
  core::TxnPriorityQueue<Order, PQLap> asks(asks_lap);
  core::TxnHashMap<long, long, core::PessimisticLap<long>> open_orders(
      book_lap);

  std::atomic<long> trades{0}, placed{0};
  std::atomic<long> crossed_violations{0};
  std::atomic<long> next_id{1};

  std::barrier start(kTraders);
  std::vector<std::thread> traders;
  for (int t = 0; t < kTraders; ++t) {
    traders.emplace_back([&, t] {
      start.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 101 + 13);
      for (long i = 0; i < kOrdersPerTrader; ++i) {
        const long price = 90 + static_cast<long>(rng.below(21));  // 90..110
        const long id = next_id.fetch_add(1);
        const bool is_bid = rng.uniform() < 0.5;

        // Place the order.
        stm.atomically([&](stm::Txn& tx) {
          if (is_bid) {
            bids.insert(tx, BidOrder{price, id});
          } else {
            asks.insert(tx, Order{price, id});
          }
          open_orders.put(tx, id, price);
        });
        placed.fetch_add(1);

        // Try to match: best bid vs best ask, atomically.
        stm.atomically([&](stm::Txn& tx) {
          const auto best_bid = bids.min(tx);   // max price (inverted cmp)
          const auto best_ask = asks.min(tx);   // min price
          if (!best_bid || !best_ask) return;
          if (best_bid->price < best_ask->price) return;  // no cross
          const auto b = bids.remove_min(tx);
          const auto a = asks.remove_min(tx);
          if (!b || !a) return;  // raced within txn — cannot happen
          if (b->price < a->price) crossed_violations.fetch_add(1);
          open_orders.remove(tx, b->id);
          open_orders.remove(tx, a->id);
          trades.fetch_add(1);
        });
      }
    });
  }
  for (auto& th : traders) th.join();

  std::printf("orders placed:   %ld\n", placed.load());
  std::printf("trades matched:  %ld\n", trades.load());
  std::printf("open orders:     %ld\n", open_orders.size());
  std::printf("book sizes:      bids=%ld asks=%ld\n", bids.size(), asks.size());
  std::printf("stm: %s\n", stm.stats().snapshot().to_string().c_str());

  // Conservation: every order is open or traded; every trade closed 2.
  const bool conserved =
      placed.load() == open_orders.size() + 2 * trades.load() &&
      bids.size() + asks.size() == open_orders.size() &&
      crossed_violations.load() == 0;
  std::printf("%s\n", conserved ? "OK" : "FAILED");
  return conserved ? 0 : 1;
}
