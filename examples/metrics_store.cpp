// Metrics store: a time-series-style workload over the Proustian ordered
// map. Ingest threads append samples at "now" (point writes at the high end
// of the key space); dashboard threads run windowed aggregations (range
// sums) over older data; a retention thread trims the oldest window. The
// interval conflict abstraction keeps the three roles from conflicting as
// long as their key windows don't intersect — the §1 range-commutativity
// claim in an application shape.
#include <atomic>
#include <barrier>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/txn_ordered_map.hpp"
#include "stm/stm.hpp"

using namespace proust;
using OptLap = core::OptimisticLap<std::size_t, core::StripeHasher>;

namespace {
constexpr long kTimeSpan = 1 << 16;  // key space: timestamps
constexpr std::size_t kStripes = 256;
constexpr int kIngesters = 2;
constexpr int kDashboards = 2;
constexpr long kSamplesPerIngester = 6000;
}  // namespace

int main() {
  stm::Stm stm(stm::Mode::Lazy);
  OptLap lap(stm, kStripes);
  core::TxnOrderedMap<long, OptLap> series(lap, 0, kTimeSpan - 1, kStripes);

  // Seed history: one sample of weight 1 per even timestamp in the past.
  for (long t = 0; t < kTimeSpan / 2; t += 2) series.unsafe_put(t, 1);

  std::atomic<long> clock_now{kTimeSpan / 2};
  std::atomic<bool> done{false};
  std::atomic<long> ingested{0}, aggregations{0}, trimmed{0}, torn_reads{0};

  std::barrier start(kIngesters + kDashboards + 1);
  std::vector<std::thread> threads;

  for (int i = 0; i < kIngesters; ++i) {
    threads.emplace_back([&, i] {
      start.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(i) + 100);
      for (long n = 0; n < kSamplesPerIngester; ++n) {
        const long t = clock_now.fetch_add(1);
        if (t >= kTimeSpan) break;
        stm.atomically([&](stm::Txn& tx) { series.put(tx, t, 1); });
        ingested.fetch_add(1);
      }
    });
  }

  constexpr long kQueriesPerDashboard = 400;
  for (int d = 0; d < kDashboards; ++d) {
    threads.emplace_back([&, d] {
      start.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(d) + 200);
      for (long q = 0; q < kQueriesPerDashboard; ++q) {
        // Aggregate a window in stable history (old enough that neither
        // ingest nor retention touches it during this run).
        const long lo =
            kTimeSpan / 8 + static_cast<long>(rng.below(kTimeSpan / 8));
        const long window = 512;
        long sum = 0, count = 0;
        stm.atomically([&](stm::Txn& tx) {
          sum = series.range_sum(tx, lo, lo + window - 1);
          count = series.range_count(tx, lo, lo + window - 1);
        });
        // Seeded density: every even timestamp → count == window/2 and each
        // sample weighs 1, so sum must equal count.
        if (sum != count || count != window / 2) torn_reads.fetch_add(1);
        aggregations.fetch_add(1);
      }
    });
  }

  // Retention: trim the oldest sliver while everyone else runs.
  std::thread retention([&] {
    start.arrive_and_wait();
    for (long t = 0; t < kTimeSpan / 16; ++t) {
      const bool removed = stm.atomically(
          [&](stm::Txn& tx) { return series.remove(tx, t).has_value(); });
      if (removed) trimmed.fetch_add(1);
    }
  });

  retention.join();
  for (auto& th : threads) th.join();
  done.store(true, std::memory_order_release);

  std::printf("ingested:      %ld samples\n", ingested.load());
  std::printf("aggregations:  %ld windowed range queries\n",
              aggregations.load());
  std::printf("trimmed:       %ld old samples\n", trimmed.load());
  std::printf("torn reads:    %ld (must be 0)\n", torn_reads.load());
  std::printf("series size:   %ld\n", series.size());
  std::printf("stm: %s\n", stm.stats().snapshot().to_string().c_str());

  const long expected_size =
      kTimeSpan / 4 /* seeded */ + ingested.load() - trimmed.load();
  const bool pass =
      torn_reads.load() == 0 && series.size() == expected_size;
  std::printf("%s\n", pass ? "OK" : "FAILED");
  return pass ? 0 : 1;
}
