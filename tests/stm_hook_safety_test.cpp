// Exception safety of the hook vectors (run-all-then-rethrow): a throwing
// on_commit / on_finish / on_abort hook must never starve the hooks after it
// — a pessimistic LAP's stripe-release finish hook can sit anywhere in the
// list, so stopping at the first exception would leak abstract locks. The
// first exception still propagates to the caller on the commit path and is
// swallowed on the (noexcept) abort path.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <vector>

#include "core/lap.hpp"
#include "stm/stm.hpp"
#include "stm/var.hpp"

using namespace proust;

namespace {

struct HookError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
struct BodyError {};

}  // namespace

TEST(StmHookSafetyTest, ThrowingCommitHookRunsRemainingHooks) {
  stm::Stm stm(stm::Mode::Lazy);
  stm::Var<long> var(0);
  std::vector<int> ran;

  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 tx.write(var, 42L);
                 tx.on_commit([&] { ran.push_back(1); });
                 tx.on_commit([&]() -> void { throw HookError("commit hook"); });
                 tx.on_commit([&] { ran.push_back(3); });
                 tx.on_finish([&](stm::Outcome o) {
                   EXPECT_EQ(o, stm::Outcome::Committed);
                   ran.push_back(4);
                 });
               }),
               HookError);

  // All surviving hooks ran, in order, and the commit itself stood.
  EXPECT_EQ(ran, (std::vector<int>{1, 3, 4}));
  long v = -1;
  stm.atomically([&](stm::Txn& tx) { v = tx.read(var); });
  EXPECT_EQ(v, 42);
}

TEST(StmHookSafetyTest, ThrowingFinishHookRunsRemainingFinishHooks) {
  stm::Stm stm(stm::Mode::Lazy);
  stm::Var<long> var(0);
  std::vector<int> ran;

  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 tx.write(var, 7L);
                 tx.on_finish([&](stm::Outcome) { ran.push_back(1); });
                 tx.on_finish(
                     [&](stm::Outcome) -> void { throw HookError("finish"); });
                 tx.on_finish([&](stm::Outcome) { ran.push_back(3); });
               }),
               HookError);

  EXPECT_EQ(ran, (std::vector<int>{1, 3}));
  long v = -1;
  stm.atomically([&](stm::Txn& tx) { v = tx.read(var); });
  EXPECT_EQ(v, 7);
}

TEST(StmHookSafetyTest, ThrowingAbortHookRunsRemainingInverses) {
  // Inverses run in reverse registration order; the middle one throwing must
  // not skip the earlier ones (the abstract state would stay half rolled
  // back), and the user's own exception — not the hook's — propagates.
  stm::Stm stm(stm::Mode::Lazy);
  stm::Var<long> var(5);
  std::vector<int> ran;

  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 tx.write(var, 99L);
                 tx.on_abort([&] { ran.push_back(1); });
                 tx.on_abort([&]() -> void { throw HookError("inverse"); });
                 tx.on_abort([&] { ran.push_back(3); });
                 tx.on_finish([&](stm::Outcome o) {
                   EXPECT_EQ(o, stm::Outcome::Aborted);
                   ran.push_back(4);
                 });
                 throw BodyError{};
               }),
               BodyError);

  EXPECT_EQ(ran, (std::vector<int>{3, 1, 4}));
  long v = -1;
  stm.atomically([&](stm::Txn& tx) { v = tx.read(var); });
  EXPECT_EQ(v, 5) << "aborted write leaked";
}

TEST(StmHookSafetyTest, ThrowingFinishHookOnAbortDoesNotEscape) {
  // The abort unwind is noexcept: a throwing finish hook there is swallowed
  // (propagating would terminate), and the body's exception is what the
  // caller sees.
  stm::Stm stm(stm::Mode::Lazy);
  bool later_ran = false;

  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 tx.on_finish(
                     [&](stm::Outcome) -> void { throw HookError("finish"); });
                 tx.on_finish([&](stm::Outcome) { later_ran = true; });
                 throw BodyError{};
               }),
               BodyError);
  EXPECT_TRUE(later_ran);
}

TEST(StmHookSafetyTest, ThrowingFinishHookDoesNotLeakAbstractLocks) {
  // Regression for the pre-fix leak: a user finish hook registered before
  // the LAP's first acquire sits before the LAP's stripe-release hook in the
  // vector; if its exception stopped the walk, the stripe would stay held
  // and the probe below would time out.
  stm::Stm stm(stm::Mode::Lazy);
  core::PessimisticLap<long> lap(stm, 4, std::chrono::milliseconds(5));
  stm::Var<long> var(0);

  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 tx.on_finish(
                     [&](stm::Outcome) -> void { throw HookError("finish"); });
                 lap.acquire(tx, 1L, /*write=*/true);
                 tx.write(var, 1L);
               }),
               HookError);

  bool acquired = false;
  stm.atomically([&](stm::Txn& tx) {
    if (tx.attempt() > 5) return;  // leaked stripe: fail instead of hanging
    lap.acquire(tx, 1L, /*write=*/true);
    acquired = true;
  });
  EXPECT_TRUE(acquired);
}
