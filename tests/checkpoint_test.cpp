// Checkpoint/compaction layer (stm/checkpoint.hpp, ctest label
// "durability"): consistent-cut correctness under concurrent committers,
// checkpoint-anchored recovery and warm restart, the bounded-recovery-cost
// contract (replay cost tracks live state + unretired tail, not history
// length), wrapper-stream snapshotters and the coverage refusal, corrupt-
// checkpoint fallback, and fail-degrade on persistent checkpoint I/O
// errors. Crash-gate interleavings live in
// tests/wal_checkpoint_crash_test.cpp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/chaos_fs.hpp"
#include "stm/checkpoint.hpp"
#include "stm/stm.hpp"
#include "stm/wal.hpp"
#include "stm/wal_format.hpp"

namespace stm = proust::stm;
namespace common = proust::common;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const char* tag) {
    path = std::string("checkpoint_test_") + tag + "_" +
           std::to_string(static_cast<unsigned long long>(::getpid()));
    fs::remove_all(path);
    fs::create_directory(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// CheckpointOptions with the background triggers off: every checkpoint in
/// these tests is an explicit checkpoint_now(), so runs are deterministic.
stm::CheckpointOptions manual_opts() {
  stm::CheckpointOptions copts;
  copts.every_records = 0;
  copts.interval = std::chrono::milliseconds(0);
  return copts;
}

}  // namespace

TEST(CheckpointTest, CheckpointSubsumesHistoryAndRecoveryLoadsIt) {
  TempDir dir("roundtrip");
  stm::Var<long> a(0), b(0);
  long fa = 0, fb = 0;
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    wopts.fsync_every_n = 4;
    stm::Wal wal(wopts);
    wal.register_var(1, a);
    wal.register_var(2, b);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    stm::Checkpointer ckpt(wal, manual_opts());

    for (long i = 1; i <= 40; ++i) {
      s.atomically([&](stm::Txn& tx) {
        a.write(tx, i);
        b.write(tx, a.read(tx) * 3);
      });
    }
    wal.flush();
    ASSERT_TRUE(ckpt.checkpoint_now());
    EXPECT_EQ(ckpt.stats().checkpoints, 1u);
    EXPECT_EQ(ckpt.stats().last_epoch, wal.published_epoch());

    // Re-triggering with nothing new is a skip, not a new file.
    ASSERT_TRUE(ckpt.checkpoint_now());
    EXPECT_EQ(ckpt.stats().checkpoints, 1u);
    EXPECT_GE(ckpt.stats().skipped, 1u);

    // Post-checkpoint tail.
    for (long i = 1; i <= 10; ++i) {
      s.atomically([&](stm::Txn& tx) { a.write(tx, a.read(tx) + 1); });
    }
    fa = a.unsafe_ref();
    fb = b.unsafe_ref();
  }

  // Cold recovery: checkpoint records stream first (absolute state at the
  // covering epoch), then only the unsubsumed tail.
  long ra = 0, rb = 0;
  stm::WalRecoveryInfo info =
      stm::Wal::recover(dir.path, [&](const stm::WalRecordView& r) {
        std::uint64_t id;
        const std::uint8_t* value;
        std::uint32_t size;
        ASSERT_TRUE(stm::Wal::decode_var_record(r, id, value, size));
        ASSERT_EQ(size, sizeof(long));
        long v;
        std::memcpy(&v, value, sizeof v);
        (id == 1 ? ra : rb) = v;
      });
  EXPECT_EQ(info.checkpoint_epoch, 40u);
  EXPECT_EQ(info.checkpoint_records, 2u);
  EXPECT_EQ(info.records, 10u) << "only the tail replays";
  EXPECT_EQ(info.last_epoch, 50u);
  EXPECT_FALSE(info.torn_tail);
  EXPECT_EQ(ra, fa);
  EXPECT_EQ(rb, fb);
}

TEST(CheckpointTest, WarmRestartReplaysIntoLiveVars) {
  TempDir dir("warm");
  {
    stm::Var<long> a(0);
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    wal.register_var(1, a);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    stm::Checkpointer ckpt(wal, manual_opts());
    for (long i = 1; i <= 25; ++i) {
      s.atomically([&](stm::Txn& tx) { a.write(tx, i * 2); });
    }
    wal.flush();
    ASSERT_TRUE(ckpt.checkpoint_now());
    for (long i = 0; i < 5; ++i) {
      s.atomically([&](stm::Txn& tx) { a.write(tx, a.read(tx) + 1); });
    }
  }
  // Warm restart: a fresh process constructs its vars, re-registers them,
  // and replay_into restores checkpoint + tail directly into them.
  stm::Var<long> a2(0);
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  stm::Wal wal(wopts);
  wal.register_var(1, a2);
  const stm::WalRecoveryInfo info = wal.replay_into();
  EXPECT_EQ(a2.unsafe_ref(), 55);
  EXPECT_GT(info.checkpoint_epoch, 0u);

  // And the log keeps going: epochs resume after the recovered history.
  stm::StmOptions opts;
  opts.durability = &wal;
  stm::Stm s(stm::Mode::Lazy, opts);
  s.atomically([&](stm::Txn& tx) { a2.write(tx, a2.read(tx) + 1); });
  EXPECT_EQ(wal.published_epoch(), info.last_epoch + 1);
  EXPECT_EQ(a2.unsafe_ref(), 56);
}

TEST(CheckpointTest, RecoveryCostIsBoundedByLiveStateNotHistory) {
  TempDir dir("bounded");
  constexpr int kVars = 16;
  constexpr int kUpdates = 50 * kVars;  // 50x state size of history
  constexpr std::uint64_t kTrigger = 64;
  {
    std::vector<stm::Var<long>> vars(kVars);
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    wopts.segment_bytes = 2048;  // many small segments
    wopts.fsync_every_n = 8;
    stm::Wal wal(wopts);
    for (int i = 0; i < kVars; ++i) {
      wal.register_var(static_cast<std::uint64_t>(i + 1), vars[i]);
    }
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    stm::Checkpointer ckpt(wal, manual_opts());
    for (int i = 0; i < kUpdates; ++i) {
      s.atomically([&](stm::Txn& tx) {
        vars[i % kVars].write(tx, static_cast<long>(i));
      });
      if ((i + 1) % kTrigger == 0) {
        wal.flush();
        ASSERT_TRUE(ckpt.checkpoint_now());
      }
    }
    wal.flush();
    EXPECT_GT(ckpt.stats().segments_retired, 0u)
        << "subsumed segments must actually be unlinked";
    EXPECT_GT(wal.stats().rotations, 5u) << "history must span many segments";
  }
  std::uint64_t tail_records = 0;
  const stm::WalRecoveryInfo info = stm::Wal::recover(
      dir.path, [&](const stm::WalRecordView& r) {
        if (!r.from_checkpoint) ++tail_records;
      });
  // The recovery-cost bound: after 50x state-size of updates, replay
  // touches at most the configured segment budget (the live segment plus
  // what the last checkpoint could not yet subsume), and the streamed tail
  // is bounded by the checkpoint trigger — not by the 800-update history.
  EXPECT_LE(info.segments, 3u);
  EXPECT_LE(tail_records, 2 * kTrigger);
  EXPECT_EQ(info.checkpoint_records, static_cast<std::uint64_t>(kVars));
  EXPECT_EQ(info.last_epoch, static_cast<std::uint64_t>(kUpdates));
}

namespace {

/// Shared body for the concurrent-invariant test: bank transfers between
/// registered vars while a background checkpointer runs; the recovered
/// state must preserve the total.
void run_transfer_invariant(stm::Mode mode) {
  TempDir dir(mode == stm::Mode::Lazy ? "xfer_lazy" : "xfer_eager");
  constexpr int kAccounts = 8;
  constexpr long kInitial = 1000;
  constexpr int kThreads = 4;
  constexpr int kTxns = 800;
  {
    // deque, not vector: Var is pinned in place (orec identity), so the
    // element type is neither copyable nor movable.
    std::deque<stm::Var<long>> acct;
    for (int i = 0; i < kAccounts; ++i) acct.emplace_back(kInitial);
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    wopts.segment_bytes = 4096;
    stm::Wal wal(wopts);
    for (int i = 0; i < kAccounts; ++i) {
      wal.register_var(static_cast<std::uint64_t>(i + 1), acct[i]);
    }
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(mode, opts);
    stm::CheckpointOptions copts;
    copts.every_records = 32;  // background cuts race the committers
    stm::Checkpointer ckpt(wal, copts);

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kTxns; ++i) {
          const int from = (t + i) % kAccounts;
          const int to = (t + i * 7 + 1) % kAccounts;
          if (from == to) continue;
          s.atomically([&](stm::Txn& tx) {
            const long amt = (i % 5) + 1;
            acct[from].write(tx, acct[from].read(tx) - amt);
            acct[to].write(tx, acct[to].read(tx) + amt);
          });
        }
      });
    }
    for (auto& w : workers) w.join();
    wal.flush();
    ASSERT_TRUE(ckpt.checkpoint_now());  // at least one cut, deterministically
    EXPECT_GE(ckpt.stats().checkpoints, 1u);
    EXPECT_FALSE(ckpt.degraded());
  }
  // Recover into fresh vars: every account restored, total preserved.
  std::vector<stm::Var<long>> fresh(kAccounts);
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  stm::Wal wal(wopts);
  for (int i = 0; i < kAccounts; ++i) {
    wal.register_var(static_cast<std::uint64_t>(i + 1), fresh[i]);
  }
  const stm::WalRecoveryInfo info = wal.replay_into();
  EXPECT_FALSE(info.torn_tail);
  EXPECT_GT(info.checkpoint_epoch, 0u);
  long total = 0;
  for (int i = 0; i < kAccounts; ++i) total += fresh[i].unsafe_ref();
  EXPECT_EQ(total, static_cast<long>(kAccounts) * kInitial)
      << "a consistent cut must never capture a half-applied transfer";
}

}  // namespace

TEST(CheckpointTest, ConcurrentTransfersRecoverConsistentlyLazy) {
  run_transfer_invariant(stm::Mode::Lazy);
}

TEST(CheckpointTest, ConcurrentTransfersRecoverConsistentlyEager) {
  run_transfer_invariant(stm::Mode::EagerWrite);
}

TEST(CheckpointTest, WrapperStreamsNeedASnapshotterAndRoundtrip) {
  TempDir dir("streams");
  constexpr std::uint32_t kCounterStream = 5;
  std::uint64_t base = 0;  // wrapper base state, mutated in replay hooks
  stm::CommitFence fence;
  std::uint64_t final_base = 0;
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    stm::Checkpointer ckpt(wal, manual_opts());

    auto add = [&](std::uint64_t delta) {
      s.atomically([&](stm::Txn& tx) {
        tx.wal_log(kCounterStream, &delta, sizeof delta);
        tx.on_commit_locked([&base, delta] { base += delta; }, fence);
      });
    };

    for (std::uint64_t i = 1; i <= 20; ++i) add(i);
    wal.flush();

    // No snapshotter covers stream 5: subsuming its history would lose it,
    // so the checkpoint is refused — and the log is untouched.
    EXPECT_FALSE(ckpt.checkpoint_now());
    EXPECT_GE(ckpt.stats().refused, 1u);
    EXPECT_EQ(ckpt.stats().checkpoints, 0u);

    // Register the snapshotter (emits *absolute* state, not a delta) and
    // the same trigger now succeeds.
    ckpt.register_stream(kCounterStream,
                         [&](const stm::Checkpointer::StreamEmit& emit) {
                           emit(&base, sizeof base);
                         });
    ASSERT_TRUE(ckpt.checkpoint_now());
    EXPECT_EQ(ckpt.stats().checkpoints, 1u);

    for (std::uint64_t i = 1; i <= 5; ++i) add(100 * i);
    final_base = 210 + 1500;
    wal.flush();
  }
  // Recovery folds: a from_checkpoint record *loads* the base, tail
  // records are deltas to re-apply.
  std::uint64_t recovered = 0;
  std::uint64_t ckpt_records = 0, tail_records = 0;
  const stm::WalRecoveryInfo info =
      stm::Wal::recover(dir.path, [&](const stm::WalRecordView& r) {
        ASSERT_EQ(r.stream, kCounterStream);
        ASSERT_EQ(r.size, sizeof(std::uint64_t));
        std::uint64_t v;
        std::memcpy(&v, r.data, sizeof v);
        if (r.from_checkpoint) {
          recovered = v;
          ++ckpt_records;
        } else {
          recovered += v;
          ++tail_records;
        }
      });
  EXPECT_EQ(ckpt_records, 1u);
  EXPECT_EQ(tail_records, 5u);
  EXPECT_EQ(recovered, final_base);
  EXPECT_NE(info.stream_mask & stm::Wal::stream_bit(kCounterStream), 0u);
}

TEST(CheckpointTest, CorruptNewestCheckpointFallsBackToOlder) {
  TempDir dir("fallback");
  stm::Var<long> a(0);
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    wal.register_var(1, a);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    stm::CheckpointOptions copts = manual_opts();
    copts.retire = false;  // keep full history: the fallback needs it
    copts.retain_checkpoints = 2;
    stm::Checkpointer ckpt(wal, copts);
    for (long i = 1; i <= 10; ++i) {
      s.atomically([&](stm::Txn& tx) { a.write(tx, i); });
    }
    wal.flush();
    ASSERT_TRUE(ckpt.checkpoint_now());  // covers epoch 10
    for (long i = 11; i <= 30; ++i) {
      s.atomically([&](stm::Txn& tx) { a.write(tx, i); });
    }
    wal.flush();
    ASSERT_TRUE(ckpt.checkpoint_now());  // covers epoch 30
    EXPECT_EQ(ckpt.stats().checkpoints, 2u);
  }
  // Bit-rot the newest checkpoint's payload: both CRCs exist to catch this.
  const std::string newest =
      dir.path + "/" + stm::walfmt::ckpt_name(30);
  ASSERT_TRUE(fs::exists(newest));
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(fs::file_size(newest) - 1));
    const char x = '\xFF';
    f.write(&x, 1);
  }
  long recovered = -1;
  const stm::WalRecoveryInfo info =
      stm::Wal::recover(dir.path, [&](const stm::WalRecordView& r) {
        std::uint64_t id;
        const std::uint8_t* value;
        std::uint32_t size;
        ASSERT_TRUE(stm::Wal::decode_var_record(r, id, value, size));
        long v;
        std::memcpy(&v, value, sizeof v);
        recovered = v;
      });
  EXPECT_EQ(info.corrupt_checkpoints, 1u);
  EXPECT_EQ(info.checkpoint_epoch, 10u) << "must fall back to the older one";
  // retire=false kept every segment, so the tail replay still reaches the
  // exact final state.
  EXPECT_EQ(info.last_epoch, 30u);
  EXPECT_EQ(recovered, 30);
  EXPECT_FALSE(info.torn_tail);
}

TEST(CheckpointTest, PersistentCheckpointIoFailuresDegradeNotTheLog) {
  TempDir dir("degrade");
  stm::Var<long> a(0);
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  stm::Wal wal(wopts);
  wal.register_var(1, a);
  stm::StmOptions opts;
  opts.durability = &wal;
  stm::Stm s(stm::Mode::Lazy, opts);

  // Checkpoint writes go through a filesystem where every write fails with
  // EIO; the Wal keeps its own (healthy) filesystem.
  common::ChaosFsConfig cfg;
  cfg.err_prob[static_cast<std::size_t>(common::FsOp::Write)] = 1.0;
  common::ChaosFs bad_fs(cfg);
  int reports = 0;
  stm::CheckpointOptions copts = manual_opts();
  copts.fs = &bad_fs;
  copts.max_failures = 3;
  copts.on_error = [&](const stm::WalError&) { ++reports; };
  stm::Checkpointer ckpt(wal, copts);

  for (long i = 1; i <= 10; ++i) {
    s.atomically([&](stm::Txn& tx) { a.write(tx, i); });
  }
  wal.flush();

  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(ckpt.checkpoint_now());
  }
  EXPECT_TRUE(ckpt.degraded());
  EXPECT_EQ(ckpt.stats().failures, 3u);
  EXPECT_GE(reports, 3);
  // Degraded means "stops trying", cheaply.
  EXPECT_FALSE(ckpt.checkpoint_now());
  EXPECT_EQ(ckpt.stats().failures, 3u);

  // The log itself is untouched: commits keep landing durably, and
  // recovery (with no checkpoint) replays the full history.
  EXPECT_FALSE(wal.failed());
  s.atomically([&](stm::Txn& tx) { a.write(tx, 99); });
  wal.flush();
  std::uint64_t n = 0;
  const stm::WalRecoveryInfo info = stm::Wal::recover(
      dir.path, [&](const stm::WalRecordView&) { ++n; });
  EXPECT_EQ(info.checkpoint_epoch, 0u);
  EXPECT_EQ(n, 11u);
  // No stray .tmp survives the failed attempts either: each one unlinked
  // its partial tmp on the way out.
  for (const auto& ent : fs::directory_iterator(dir.path)) {
    EXPECT_EQ(ent.path().extension(), ".wal");
  }
}
