// Tests for the §3 non-negative counter and its single-location conflict
// abstraction.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/lap.hpp"
#include "core/txn_counter.hpp"
#include "stm/stm.hpp"

using namespace proust;
using core::CounterState;
using core::CounterStateHasher;
using OptLap = core::OptimisticLap<CounterState, CounterStateHasher>;
using PessLap = core::PessimisticLap<CounterState, CounterStateHasher>;

namespace {
struct OptFixture {
  stm::Stm stm{stm::Mode::EagerAll};
  OptLap lap{stm, 1};
  core::TxnCounter<OptLap> counter{lap};
};
}  // namespace

TEST(TxnCounter, IncrDecrBasics) {
  OptFixture f;
  f.stm.atomically([&](stm::Txn& tx) { f.counter.incr(tx); });
  f.stm.atomically([&](stm::Txn& tx) { f.counter.incr(tx); });
  EXPECT_EQ(f.counter.value(), 2);
  EXPECT_TRUE(f.stm.atomically([&](stm::Txn& tx) { return f.counter.decr(tx); }));
  EXPECT_EQ(f.counter.value(), 1);
}

TEST(TxnCounter, DecrAtZeroReportsError) {
  OptFixture f;
  EXPECT_FALSE(
      f.stm.atomically([&](stm::Txn& tx) { return f.counter.decr(tx); }));
  EXPECT_EQ(f.counter.value(), 0);
}

TEST(TxnCounter, AbortRollsBackIncrements) {
  OptFixture f;
  EXPECT_THROW(f.stm.atomically([&](stm::Txn& tx) {
                 f.counter.incr(tx);
                 f.counter.incr(tx);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(f.counter.value(), 0);
}

TEST(TxnCounter, AbortRollsBackOnlySuccessfulDecrs) {
  OptFixture f;
  f.stm.atomically([&](stm::Txn& tx) { f.counter.incr(tx); });
  EXPECT_THROW(f.stm.atomically([&](stm::Txn& tx) {
                 EXPECT_TRUE(f.counter.decr(tx));   // succeeds: 1 -> 0
                 EXPECT_FALSE(f.counter.decr(tx));  // fails at 0
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(f.counter.value(), 1) << "only the successful decr is inverted";
}

TEST(TxnCounter, HighValueOpsTouchNoStmLocations) {
  // §3 case (1): at values >= 2, concurrent incr/decr touch ℓ0 not at all.
  OptFixture f;
  for (int i = 0; i < 10; ++i) {
    f.stm.atomically([&](stm::Txn& tx) { f.counter.incr(tx); });
  }
  f.stm.stats().reset();
  f.stm.atomically([&](stm::Txn& tx) { f.counter.incr(tx); });
  f.stm.atomically([&](stm::Txn& tx) { f.counter.decr(tx); });
  const auto s = f.stm.stats().snapshot();
  EXPECT_EQ(s.reads, 0u);
  EXPECT_EQ(s.writes, 0u);
}

TEST(TxnCounter, LowValueDecrWritesL0) {
  // §3 case (3): near zero, decr must write ℓ0 (and incr read it).
  OptFixture f;
  f.stm.atomically([&](stm::Txn& tx) { f.counter.incr(tx); });
  f.stm.stats().reset();
  f.stm.atomically([&](stm::Txn& tx) { f.counter.decr(tx); });
  EXPECT_GE(f.stm.stats().snapshot().writes, 1u);
  f.stm.stats().reset();
  f.stm.atomically([&](stm::Txn& tx) { f.counter.incr(tx); });
  EXPECT_GE(f.stm.stats().snapshot().reads, 1u);
}

TEST(TxnCounter, NeverGoesNegativeUnderConcurrency) {
  OptFixture f;
  constexpr int kThreads = 4, kIters = 1500;
  std::atomic<long> successful_decrs{0};
  std::atomic<long> incrs{0};
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        if ((t + i) % 3 == 0) {
          f.stm.atomically([&](stm::Txn& tx) { f.counter.incr(tx); });
          incrs.fetch_add(1);
        } else {
          const bool ok = f.stm.atomically(
              [&](stm::Txn& tx) { return f.counter.decr(tx); });
          if (ok) successful_decrs.fetch_add(1);
        }
        EXPECT_GE(f.counter.value(), 0);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(f.counter.value(), incrs.load() - successful_decrs.load());
  EXPECT_GE(f.counter.value(), 0);
}

TEST(TxnCounter, PessimisticLapVariantWorks) {
  stm::Stm stm(stm::Mode::Lazy);
  PessLap lap(stm, 1);
  core::TxnCounter<PessLap> counter(lap);
  constexpr int kThreads = 4, kIters = 800;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  std::atomic<long> net{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        if ((t + i) % 2 == 0) {
          stm.atomically([&](stm::Txn& tx) { counter.incr(tx); });
          net.fetch_add(1);
        } else if (stm.atomically(
                       [&](stm::Txn& tx) { return counter.decr(tx); })) {
          net.fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(counter.value(), net.load());
  EXPECT_GE(counter.value(), 0);
}
