// Unit tests for the durability subsystem (stm/wal.hpp, ctest label
// "durability"): record staging and recovery roundtrips, epoch density,
// abort discard, strict/relaxed acknowledgement, segment rotation,
// torn-tail truncation, half-rotated .tmp discard, and fail-stop behavior
// on injected I/O errors. The crash-point matrix lives in
// tests/wal_crash_test.cpp; this file only exercises the live-process
// paths.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "stm/stm.hpp"
#include "stm/wal.hpp"
#include "stm/wal_format.hpp"

namespace stm = proust::stm;
namespace fs = std::filesystem;

namespace {

/// Unique scratch directory under the test's working directory, removed on
/// scope exit (recovery tests re-open it several times in between).
struct TempDir {
  std::string path;
  explicit TempDir(const char* tag) {
    path = std::string("wal_test_") + tag + "_" +
           std::to_string(static_cast<unsigned long long>(::getpid()));
    fs::remove_all(path);
    fs::create_directory(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

struct Rec {
  std::uint64_t epoch;
  std::uint32_t stream;
  std::vector<std::uint8_t> data;
};

std::vector<Rec> recover_all(const std::string& dir,
                             stm::WalRecoveryInfo* info_out = nullptr) {
  std::vector<Rec> out;
  const stm::WalRecoveryInfo info =
      stm::Wal::recover(dir, [&](const stm::WalRecordView& r) {
        out.push_back(Rec{r.epoch, r.stream,
                          std::vector<std::uint8_t>(r.data, r.data + r.size)});
      });
  if (info_out != nullptr) *info_out = info;
  return out;
}

}  // namespace

TEST(WalTest, LoggedCommitsRoundtripInEpochOrder) {
  TempDir dir("roundtrip");
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    for (std::uint32_t i = 0; i < 100; ++i) {
      s.atomically([&](stm::Txn& tx) {
        ASSERT_TRUE(tx.wal_enabled());
        tx.wal_log(1, &i, sizeof i);
      });
    }
    const stm::StatsSnapshot st = s.stats().snapshot();
    EXPECT_EQ(st.wal_publishes, 100u);
    EXPECT_EQ(st.wal_records, 100u);
  }  // Wal dtor drains and fsyncs everything published.

  stm::WalRecoveryInfo info;
  const std::vector<Rec> recs = recover_all(dir.path, &info);
  ASSERT_EQ(recs.size(), 100u);
  EXPECT_FALSE(info.torn_tail);
  EXPECT_EQ(info.last_epoch, 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(recs[i].epoch, i + 1) << "epochs must be dense from 1";
    EXPECT_EQ(recs[i].stream, 1u);
    std::uint32_t v;
    ASSERT_EQ(recs[i].data.size(), sizeof v);
    std::memcpy(&v, recs[i].data.data(), sizeof v);
    EXPECT_EQ(v, i);
  }
}

TEST(WalTest, MultiRecordTransactionsShareOneEpoch) {
  TempDir dir("multirec");
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    for (std::uint32_t i = 0; i < 10; ++i) {
      s.atomically([&](stm::Txn& tx) {
        for (std::uint32_t j = 0; j < 3; ++j) {
          const std::uint32_t payload = i * 10 + j;
          tx.wal_log(2, &payload, sizeof payload);
        }
      });
    }
  }
  const std::vector<Rec> recs = recover_all(dir.path);
  ASSERT_EQ(recs.size(), 30u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].epoch, i / 3 + 1)
        << "records of one transaction must carry its epoch";
  }
}

TEST(WalTest, AbortedAttemptsNeverReachTheLog) {
  TempDir dir("abort");
  struct Poison {};
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    for (std::uint32_t i = 0; i < 20; ++i) {
      if (i % 2 == 0) {
        s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &i, sizeof i); });
      } else {
        // Stage a distinctive record, then abort via a user exception: the
        // arena (and the staged bytes with it) is discarded on rollback.
        EXPECT_THROW(s.atomically([&](stm::Txn& tx) {
          const std::uint32_t poison = 0xDEADBEEFu;
          tx.wal_log(1, &poison, sizeof poison);
          throw Poison{};
        }),
                     Poison);
      }
    }
  }
  const std::vector<Rec> recs = recover_all(dir.path);
  ASSERT_EQ(recs.size(), 10u);
  for (const Rec& r : recs) {
    std::uint32_t v;
    std::memcpy(&v, r.data.data(), sizeof v);
    EXPECT_NE(v, 0xDEADBEEFu) << "aborted attempt's record resurrected";
    EXPECT_EQ(v % 2, 0u);
  }
}

TEST(WalTest, RegisteredVarsAreLoggedAndReplayable) {
  TempDir dir("vars");
  stm::Var<long> a(0), b(0);
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    wal.register_var(7, a);
    wal.register_var(8, b);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    for (long i = 1; i <= 50; ++i) {
      s.atomically([&](stm::Txn& tx) {
        a.write(tx, i);
        if (i % 5 == 0) b.write(tx, a.read(tx) * 2);
      });
    }
  }
  // Replay: last write per var id wins (records arrive in epoch order).
  std::map<std::uint64_t, long> replayed;
  std::uint64_t n = 0;
  stm::Wal::recover(dir.path, [&](const stm::WalRecordView& r) {
    std::uint64_t id;
    const std::uint8_t* value;
    std::uint32_t size;
    ASSERT_TRUE(stm::Wal::decode_var_record(r, id, value, size));
    ASSERT_EQ(size, sizeof(long));
    long v;
    std::memcpy(&v, value, sizeof v);
    replayed[id] = v;
    ++n;
  });
  EXPECT_EQ(n, 60u);  // 50 writes of a + 10 of b
  EXPECT_EQ(replayed[7], 50);
  EXPECT_EQ(replayed[8], 100);
}

TEST(WalTest, StrictAckImpliesDurable) {
  TempDir dir("strict");
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  wopts.durability = stm::WalDurability::Strict;
  wopts.fsync_every_n = 4;
  stm::Wal wal(wopts);
  stm::StmOptions opts;
  opts.durability = &wal;
  stm::Stm s(stm::Mode::Lazy, opts);
  for (std::uint32_t i = 0; i < 16; ++i) {
    s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &i, sizeof i); });
    // Single-threaded: this thread's commit is the newest published epoch,
    // and a strict ack means it is already fsync-covered.
    EXPECT_GE(wal.durable_epoch(), wal.published_epoch());
  }
  const stm::StatsSnapshot st = s.stats().snapshot();
  EXPECT_EQ(st.wal_strict_waits, 16u);
}

TEST(WalTest, RelaxedFlushCoversEverythingPublished) {
  TempDir dir("flush");
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  wopts.fsync_every_n = 1000;  // batching alone would sit on the interval
  stm::Wal wal(wopts);
  stm::StmOptions opts;
  opts.durability = &wal;
  stm::Stm s(stm::Mode::Lazy, opts);
  for (std::uint32_t i = 0; i < 10; ++i) {
    s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &i, sizeof i); });
  }
  wal.flush();
  EXPECT_EQ(wal.durable_epoch(), 10u);
  EXPECT_GE(wal.stats().fsyncs, 1u);
}

TEST(WalTest, SegmentsRotateAndRecoverAcrossFiles) {
  TempDir dir("rotate");
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    wopts.segment_bytes = 2048;  // force several rotations
    wopts.fsync_every_n = 8;
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    std::uint8_t blob[64] = {};
    for (std::uint32_t i = 0; i < 200; ++i) {
      std::memcpy(blob, &i, sizeof i);
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, blob, sizeof blob); });
    }
    wal.flush();
    EXPECT_GT(wal.stats().rotations, 0u);
  }
  stm::WalRecoveryInfo info;
  const std::vector<Rec> recs = recover_all(dir.path, &info);
  ASSERT_EQ(recs.size(), 200u);
  EXPECT_GT(info.segments, 1u);
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(recs[i].epoch, i + 1);
  }
}

TEST(WalTest, ReopenResumesEpochsAfterExistingHistory) {
  TempDir dir("reopen");
  for (int round = 0; round < 3; ++round) {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    for (std::uint32_t i = 0; i < 10; ++i) {
      const std::uint32_t v = round * 10 + i;
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &v, sizeof v); });
    }
  }
  const std::vector<Rec> recs = recover_all(dir.path);
  ASSERT_EQ(recs.size(), 30u);
  for (std::uint32_t i = 0; i < 30; ++i) {
    EXPECT_EQ(recs[i].epoch, i + 1)
        << "epochs must stay dense across Wal restarts";
    std::uint32_t v;
    std::memcpy(&v, recs[i].data.data(), sizeof v);
    EXPECT_EQ(v, i);
  }
}

TEST(WalTest, TornTailIsDetectedAndTruncated) {
  TempDir dir("torn");
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    for (std::uint32_t i = 0; i < 20; ++i) {
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &i, sizeof i); });
    }
  }
  // Append garbage to the newest segment — a torn batch header.
  std::string last;
  for (const auto& ent : fs::directory_iterator(dir.path)) {
    const std::string p = ent.path().string();
    if (last.empty() || p > last) last = p;
  }
  ASSERT_FALSE(last.empty());
  const auto before = fs::file_size(last);
  {
    std::ofstream f(last, std::ios::binary | std::ios::app);
    const char garbage[] = "PBATnope-this-is-not-a-sealed-batch";
    f.write(garbage, sizeof garbage);
  }

  stm::WalRecoveryInfo info;
  std::vector<Rec> recs = recover_all(dir.path, &info);
  EXPECT_TRUE(info.torn_tail);
  EXPECT_GT(info.truncated_bytes, 0u);
  ASSERT_EQ(recs.size(), 20u) << "the committed prefix must survive intact";
  EXPECT_EQ(fs::file_size(last), before) << "torn bytes must be truncated";

  // Second recovery: the tail is already clean.
  recs = recover_all(dir.path, &info);
  EXPECT_FALSE(info.torn_tail);
  EXPECT_EQ(recs.size(), 20u);
}

TEST(WalTest, CorruptMidFileBatchDropsTheSuffix) {
  TempDir dir("midflip");
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    wopts.fsync_every_n = 1;  // one batch per transaction
    wopts.durability = stm::WalDurability::Strict;
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    for (std::uint32_t i = 0; i < 8; ++i) {
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &i, sizeof i); });
    }
  }
  std::string seg;
  for (const auto& ent : fs::directory_iterator(dir.path)) {
    if (seg.empty()) seg = ent.path().string();
  }
  // Flip one payload byte roughly in the middle of the file: the batch CRC
  // must reject that batch, and everything after it is untrusted.
  std::fstream f(seg, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(fs::file_size(seg) / 2));
  const char x = '\xFF';
  f.write(&x, 1);
  f.close();

  stm::WalRecoveryInfo info;
  const std::vector<Rec> recs = recover_all(dir.path, &info);
  EXPECT_TRUE(info.torn_tail);
  EXPECT_LT(recs.size(), 8u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].epoch, i + 1) << "surviving prefix must stay dense";
  }
}

TEST(WalTest, HalfRotatedTmpSegmentsAreDiscarded) {
  TempDir dir("tmpseg");
  {
    stm::WalOptions wopts;
    wopts.dir = dir.path;
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    for (std::uint32_t i = 0; i < 5; ++i) {
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &i, sizeof i); });
    }
  }
  {
    std::ofstream f(dir.path + "/seg-000099.wal.tmp", std::ios::binary);
    f << "half-rotated orphan";
  }
  stm::WalRecoveryInfo info;
  const std::vector<Rec> recs = recover_all(dir.path, &info);
  EXPECT_EQ(info.skipped_tmp, 1u);
  EXPECT_EQ(recs.size(), 5u);
  EXPECT_FALSE(fs::exists(dir.path + "/seg-000099.wal.tmp"));
}

TEST(WalTest, RecoverOnMissingOrEmptyDirectoryIsEmpty) {
  const stm::WalRecoveryInfo missing =
      stm::Wal::recover("wal_test_no_such_dir_anywhere", {});
  EXPECT_EQ(missing.records, 0u);
  EXPECT_EQ(missing.last_epoch, 0u);

  TempDir dir("empty");
  const stm::WalRecoveryInfo empty = stm::Wal::recover(dir.path, {});
  EXPECT_EQ(empty.records, 0u);
  EXPECT_FALSE(empty.torn_tail);
}

TEST(WalTest, IoFailureFailsStopAndRefusesDurableCommits) {
  TempDir dir("failstop");
  stm::WalError seen{};
  int seen_count = 0;
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  wopts.fsync_every_n = 1;
  wopts.durability = stm::WalDurability::Strict;
  wopts.on_error = [&](const stm::WalError& e) {
    seen = e;
    ++seen_count;
  };
  // Inject at the append gate: it fires before any byte of the batch is
  // written, so the on-disk prefix is exactly the pre-failure history. (A
  // failure injected at the fsync gate would leave the already-written
  // batch visible to a live-process recover via the page cache.)
  bool arm = false;
  wopts.io_failure = [&](stm::ChaosPoint p) {
    return (arm && p == stm::ChaosPoint::WalAppend) ? ENOSPC : 0;
  };
  stm::Wal wal(wopts);
  stm::StmOptions opts;
  opts.durability = &wal;
  stm::Stm s(stm::Mode::Lazy, opts);
  stm::Var<long> v(0);

  // Healthy first: a strict commit lands.
  std::uint32_t x = 1;
  s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &x, sizeof x); });
  EXPECT_FALSE(wal.failed());

  // Arm the injected ENOSPC: the strict waiter must observe the failure.
  arm = true;
  x = 2;
  EXPECT_THROW(
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &x, sizeof x); }),
      stm::WalUnavailable);
  EXPECT_TRUE(wal.failed());
  ASSERT_EQ(seen_count, 1) << "fail-stop: exactly one error report";
  EXPECT_STREQ(seen.op, "write");
  EXPECT_EQ(seen.err, ENOSPC);

  // Read-only durability mode: logging commits are refused up front...
  x = 3;
  EXPECT_THROW(
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &x, sizeof x); }),
      stm::WalUnavailable);
  // ...but non-logging transactions (including plain Var writes — no vars
  // are registered here) keep running.
  s.atomically([&](stm::Txn& tx) { v.write(tx, 42); });
  EXPECT_EQ(s.atomically([&](stm::Txn& tx) { return v.read(tx); }), 42);
  EXPECT_GE(wal.stats().errors, 1u);

  // The durable prefix on disk is exactly the pre-failure history.
  // (Recovery runs on the live directory: the failed Wal stopped writing.)
  const std::vector<Rec> recs = recover_all(dir.path);
  ASSERT_EQ(recs.size(), 1u);
  std::uint32_t got;
  std::memcpy(&got, recs[0].data.data(), sizeof got);
  EXPECT_EQ(got, 1u);
}

namespace {

// --- Hand-crafted segment bytes (stm/wal_format.hpp) for the recovery
// edge-input tests: each shape must yield a clean prefix — never a crash,
// never a double-applied record.

/// One single-record batch per epoch in [first, last]; payload = the epoch
/// as u32, stream 1.
void append_batches(std::vector<std::uint8_t>& seg, std::uint64_t first,
                    std::uint64_t last) {
  namespace wf = stm::walfmt;
  for (std::uint64_t e = first; e <= last; ++e) {
    std::vector<std::uint8_t> payload;
    const std::uint32_t v = static_cast<std::uint32_t>(e);
    wf::put_u64(payload, e);
    wf::put_u32(payload, 1);  // stream
    wf::put_u32(payload, sizeof v);
    wf::put_u32(payload, proust::crc32(&v, sizeof v));
    wf::put_u32(payload, v);
    std::vector<std::uint8_t> hdr;
    wf::put_u32(hdr, wf::kBatchMagic);
    wf::put_u32(hdr, 1);  // n_records
    wf::put_u64(hdr, payload.size());
    wf::put_u64(hdr, e);  // first_epoch
    wf::put_u64(hdr, e);  // last_epoch
    wf::put_u32(hdr, proust::crc32(payload.data(), payload.size()));
    wf::put_u32(hdr, proust::crc32(hdr.data(), 36));
    seg.insert(seg.end(), hdr.begin(), hdr.end());
    seg.insert(seg.end(), payload.begin(), payload.end());
  }
}

std::vector<std::uint8_t> make_segment(std::uint32_t index,
                                       std::uint64_t first,
                                       std::uint64_t last) {
  std::vector<std::uint8_t> seg;
  stm::walfmt::seg_header_bytes(seg, index);
  if (last >= first) append_batches(seg, first, last);
  return seg;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(WalTest, ZeroLengthSegmentStopsTheScanCleanly) {
  TempDir dir("zerolen");
  write_bytes(dir.path + "/" + stm::walfmt::seg_name(0),
              make_segment(0, 1, 6));
  write_bytes(dir.path + "/" + stm::walfmt::seg_name(1), {});  // 0 bytes

  stm::WalRecoveryInfo info;
  const std::vector<Rec> recs = recover_all(dir.path, &info);
  ASSERT_EQ(recs.size(), 6u) << "the prefix before the empty file survives";
  EXPECT_EQ(info.last_epoch, 6u);
  EXPECT_TRUE(info.torn_tail) << "an empty segment is a torn rotation";

  // A *lone* zero-length segment is an empty log, not a crash.
  TempDir dir2("zerolen2");
  write_bytes(dir2.path + "/" + stm::walfmt::seg_name(0), {});
  const std::vector<Rec> none = recover_all(dir2.path, &info);
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(info.last_epoch, 0u);
}

TEST(WalTest, DuplicateEpochBatchIsTruncatedNeverDoubleApplied) {
  TempDir dir("dupepoch");
  // Epochs 1..4, then a rogue batch re-carrying epochs 3..4 (e.g. a
  // misdirected write replayed by a confused disk): the chain expects 5
  // next, so the duplicate must be cut — recovering it would apply epochs
  // 3 and 4 twice.
  std::vector<std::uint8_t> seg = make_segment(0, 1, 4);
  append_batches(seg, 3, 4);
  write_bytes(dir.path + "/" + stm::walfmt::seg_name(0), seg);

  stm::WalRecoveryInfo info;
  const std::vector<Rec> recs = recover_all(dir.path, &info);
  ASSERT_EQ(recs.size(), 4u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].epoch, i + 1) << "each epoch delivered exactly once";
  }
  EXPECT_TRUE(info.torn_tail);
  EXPECT_GT(info.truncated_bytes, 0u);

  // Idempotent: a second recovery sees the already-truncated clean log.
  const std::vector<Rec> again = recover_all(dir.path, &info);
  EXPECT_EQ(again.size(), 4u);
  EXPECT_FALSE(info.torn_tail);
}

TEST(WalTest, ValidHeaderWithBodyTruncatedMidFrameRecoversPrefix) {
  TempDir dir("midframe");
  // Segment with epochs 1..5, then chop the file mid-way through the last
  // batch's payload: its header (including CRCs over the *sealed* content)
  // is intact on disk, but the bytes it promises are not all there.
  std::vector<std::uint8_t> full = make_segment(0, 1, 5);
  const std::vector<std::uint8_t> last_batch = make_segment(0, 5, 5);
  const std::size_t last_len =
      last_batch.size() - stm::walfmt::kSegHeaderSize;
  std::vector<std::uint8_t> cut(full.begin(),
                                full.end() - static_cast<long>(last_len) + 50);
  write_bytes(dir.path + "/" + stm::walfmt::seg_name(0), cut);

  stm::WalRecoveryInfo info;
  const std::vector<Rec> recs = recover_all(dir.path, &info);
  ASSERT_EQ(recs.size(), 4u) << "everything before the torn frame survives";
  EXPECT_EQ(info.last_epoch, 4u);
  EXPECT_TRUE(info.torn_tail);

  const std::vector<Rec> again = recover_all(dir.path, &info);
  EXPECT_EQ(again.size(), 4u);
  EXPECT_FALSE(info.torn_tail) << "truncation must leave a clean log";
}

TEST(WalTest, DurabilityOffLeavesTransactionsUntouched) {
  stm::Stm s(stm::Mode::Lazy, {});
  stm::Var<long> v(0);
  s.atomically([&](stm::Txn& tx) {
    EXPECT_FALSE(tx.wal_enabled());
    // wal_log without a Wal is a no-op, not an error — wrapper layers call
    // it unconditionally.
    const std::uint32_t x = 5;
    tx.wal_log(1, &x, sizeof x);
    v.write(tx, 9);
  });
  EXPECT_EQ(s.atomically([&](stm::Txn& tx) { return v.read(tx); }), 9);
}
