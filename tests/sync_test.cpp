// Tests for the re-entrant reader-writer abstract locks, including the
// group discipline used by PQueueMultiSet.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "sync/reentrant_rw_lock.hpp"

using namespace proust::sync;
using namespace std::chrono_literals;

namespace {
constexpr auto kShort = 5ms;
constexpr auto kLong = 2s;
int owner_a, owner_b, owner_c;  // opaque owner tokens
}  // namespace

TEST(ReentrantRwLock, ReadersShare) {
  ReentrantRwLock l;
  EXPECT_TRUE(l.try_acquire(&owner_a, false, kShort));
  EXPECT_TRUE(l.try_acquire(&owner_b, false, kShort));
  l.release_all(&owner_a);
  l.release_all(&owner_b);
}

TEST(ReentrantRwLock, WriterExcludesReader) {
  ReentrantRwLock l;
  ASSERT_TRUE(l.try_acquire(&owner_a, true, kShort));
  EXPECT_FALSE(l.try_acquire(&owner_b, false, kShort));
  l.release_all(&owner_a);
  EXPECT_TRUE(l.try_acquire(&owner_b, false, kShort));
  l.release_all(&owner_b);
}

TEST(ReentrantRwLock, WriterExcludesWriter) {
  ReentrantRwLock l;
  ASSERT_TRUE(l.try_acquire(&owner_a, true, kShort));
  EXPECT_FALSE(l.try_acquire(&owner_b, true, kShort));
  l.release_all(&owner_a);
}

TEST(ReentrantRwLock, ReaderExcludesWriter) {
  ReentrantRwLock l;
  ASSERT_TRUE(l.try_acquire(&owner_a, false, kShort));
  EXPECT_FALSE(l.try_acquire(&owner_b, true, kShort));
  l.release_all(&owner_a);
}

TEST(ReentrantRwLock, ReentrantInBothModes) {
  ReentrantRwLock l;
  EXPECT_TRUE(l.try_acquire(&owner_a, false, kShort));
  EXPECT_TRUE(l.try_acquire(&owner_a, false, kShort));
  EXPECT_TRUE(l.try_acquire(&owner_a, true, kShort));  // upgrade, sole holder
  EXPECT_TRUE(l.try_acquire(&owner_a, true, kShort));
  EXPECT_TRUE(l.holds(&owner_a, true));
  l.release_all(&owner_a);
  EXPECT_FALSE(l.holds(&owner_a, false));
}

TEST(ReentrantRwLock, UpgradeBlockedByOtherReader) {
  ReentrantRwLock l;
  ASSERT_TRUE(l.try_acquire(&owner_a, false, kShort));
  ASSERT_TRUE(l.try_acquire(&owner_b, false, kShort));
  EXPECT_FALSE(l.try_acquire(&owner_a, true, kShort));  // b still reading
  l.release_all(&owner_b);
  EXPECT_TRUE(l.try_acquire(&owner_a, true, kShort));
  l.release_all(&owner_a);
}

TEST(ReentrantRwLock, ReleaseAllWithoutHoldsIsNoop) {
  ReentrantRwLock l;
  l.release_all(&owner_a);  // must not crash or corrupt counts
  EXPECT_TRUE(l.try_acquire(&owner_b, true, kShort));
  l.release_all(&owner_b);
}

TEST(ReentrantRwLock, GroupModeWritersShare) {
  ReentrantRwLock l(LockKind::kGroup);
  EXPECT_TRUE(l.try_acquire(&owner_a, true, kShort));
  EXPECT_TRUE(l.try_acquire(&owner_b, true, kShort));  // writers share
  EXPECT_FALSE(l.try_acquire(&owner_c, false, kShort));  // readers excluded
  l.release_all(&owner_a);
  EXPECT_FALSE(l.try_acquire(&owner_c, false, kShort));  // b still writing
  l.release_all(&owner_b);
  EXPECT_TRUE(l.try_acquire(&owner_c, false, kShort));
  l.release_all(&owner_c);
}

TEST(ReentrantRwLock, GroupModeReadersExcludeWriters) {
  ReentrantRwLock l(LockKind::kGroup);
  ASSERT_TRUE(l.try_acquire(&owner_a, false, kShort));
  EXPECT_FALSE(l.try_acquire(&owner_b, true, kShort));
  l.release_all(&owner_a);
  EXPECT_TRUE(l.try_acquire(&owner_b, true, kShort));
  l.release_all(&owner_b);
}

TEST(ReentrantRwLock, WaiterWakesOnRelease) {
  ReentrantRwLock l;
  ASSERT_TRUE(l.try_acquire(&owner_a, true, kShort));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    acquired.store(l.try_acquire(&owner_b, true, kLong));
  });
  std::this_thread::sleep_for(20ms);
  l.release_all(&owner_a);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  l.release_all(&owner_b);
}

TEST(ReentrantRwLock, WriteExclusionStress) {
  ReentrantRwLock l;
  long counter = 0;  // protected by l (write mode)
  constexpr int kThreads = 4, kIters = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      const void* me = reinterpret_cast<const void*>(
          static_cast<std::uintptr_t>(t + 1));
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(l.try_acquire(me, true, kLong));
        ++counter;
        l.release_all(me);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(counter, long{kThreads} * kIters);
}
