// Tests for the re-entrant reader-writer abstract locks, including the
// group discipline used by PQueueMultiSet. Owners carry their own membership
// counters (ReentrantRwLock::Hold) — the lock itself keeps no per-owner
// state — so each logical owner here is simply a distinct Hold record.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "sync/reentrant_rw_lock.hpp"

using namespace proust::sync;
using namespace std::chrono_literals;

namespace {
constexpr auto kShort = 5ms;
constexpr auto kLong = 2s;
using Hold = ReentrantRwLock::Hold;
}  // namespace

TEST(ReentrantRwLock, ReadersShare) {
  ReentrantRwLock l;
  Hold a, b;
  EXPECT_TRUE(l.try_acquire(a, false, kShort));
  EXPECT_TRUE(l.try_acquire(b, false, kShort));
  l.release_all(a);
  l.release_all(b);
  EXPECT_EQ(l.reader_owners(), 0u);
}

TEST(ReentrantRwLock, WriterExcludesReader) {
  ReentrantRwLock l;
  Hold a, b;
  ASSERT_TRUE(l.try_acquire(a, true, kShort));
  EXPECT_FALSE(l.try_acquire(b, false, kShort));
  l.release_all(a);
  EXPECT_TRUE(l.try_acquire(b, false, kShort));
  l.release_all(b);
}

TEST(ReentrantRwLock, WriterExcludesWriter) {
  ReentrantRwLock l;
  Hold a, b;
  ASSERT_TRUE(l.try_acquire(a, true, kShort));
  EXPECT_FALSE(l.try_acquire(b, true, kShort));
  l.release_all(a);
}

TEST(ReentrantRwLock, ReaderExcludesWriter) {
  ReentrantRwLock l;
  Hold a, b;
  ASSERT_TRUE(l.try_acquire(a, false, kShort));
  EXPECT_FALSE(l.try_acquire(b, true, kShort));
  l.release_all(a);
}

TEST(ReentrantRwLock, ReentrantInBothModes) {
  ReentrantRwLock l;
  Hold a;
  EXPECT_TRUE(l.try_acquire(a, false, kShort));
  EXPECT_TRUE(l.try_acquire(a, false, kShort));
  EXPECT_TRUE(l.try_acquire(a, true, kShort));  // upgrade, sole holder
  EXPECT_TRUE(l.try_acquire(a, true, kShort));
  EXPECT_TRUE(ReentrantRwLock::holds(a, true));
  EXPECT_EQ(a.readers, 2u);
  EXPECT_EQ(a.writers, 2u);
  // One owner in each group, regardless of how many holds it stacked.
  EXPECT_EQ(l.reader_owners(), 1u);
  EXPECT_EQ(l.writer_owners(), 1u);
  l.release_all(a);
  EXPECT_FALSE(ReentrantRwLock::holds(a, false));
  EXPECT_EQ(l.reader_owners(), 0u);
  EXPECT_EQ(l.writer_owners(), 0u);
}

TEST(ReentrantRwLock, UpgradeBlockedByOtherReader) {
  ReentrantRwLock l;
  Hold a, b;
  ASSERT_TRUE(l.try_acquire(a, false, kShort));
  ASSERT_TRUE(l.try_acquire(b, false, kShort));
  EXPECT_FALSE(l.try_acquire(a, true, kShort));  // b still reading
  EXPECT_EQ(a.writers, 0u);  // failed acquire left the hold untouched
  l.release_all(b);
  EXPECT_TRUE(l.try_acquire(a, true, kShort));
  l.release_all(a);
}

TEST(ReentrantRwLock, ReleaseAllWithoutHoldsIsNoop) {
  ReentrantRwLock l;
  Hold a, b;
  l.release_all(a);  // must not crash or corrupt counts
  EXPECT_TRUE(l.try_acquire(b, true, kShort));
  l.release_all(b);
}

TEST(ReentrantRwLock, GroupModeWritersShare) {
  ReentrantRwLock l(LockKind::kGroup);
  Hold a, b, c;
  EXPECT_TRUE(l.try_acquire(a, true, kShort));
  EXPECT_TRUE(l.try_acquire(b, true, kShort));    // writers share
  EXPECT_FALSE(l.try_acquire(c, false, kShort));  // readers excluded
  l.release_all(a);
  EXPECT_FALSE(l.try_acquire(c, false, kShort));  // b still writing
  l.release_all(b);
  EXPECT_TRUE(l.try_acquire(c, false, kShort));
  l.release_all(c);
}

TEST(ReentrantRwLock, GroupModeReadersExcludeWriters) {
  ReentrantRwLock l(LockKind::kGroup);
  Hold a, b;
  ASSERT_TRUE(l.try_acquire(a, false, kShort));
  EXPECT_FALSE(l.try_acquire(b, true, kShort));
  l.release_all(a);
  EXPECT_TRUE(l.try_acquire(b, true, kShort));
  l.release_all(b);
}

TEST(ReentrantRwLock, WaiterWakesOnRelease) {
  ReentrantRwLock l;
  Hold a;
  ASSERT_TRUE(l.try_acquire(a, true, kShort));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Hold b;
    if (l.try_acquire(b, true, kLong)) {
      acquired.store(true);
      l.release_all(b);
    }
  });
  std::this_thread::sleep_for(20ms);
  l.release_all(a);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(ReentrantRwLock, WriteExclusionStress) {
  ReentrantRwLock l;
  long counter = 0;  // protected by l (write mode)
  constexpr int kThreads = 4, kIters = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      Hold me;
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(l.try_acquire(me, true, kLong));
        ++counter;
        l.release_all(me);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(counter, long{kThreads} * kIters);
}

// --- kGroup discipline under real concurrency ------------------------------

// Commuting writers must genuinely overlap: both threads enter the write
// group and rendezvous *inside* their critical sections. If the group
// discipline serialized them, the second entrant would block until the
// first released and the rendezvous would time out.
TEST(ReentrantRwLock, GroupWritersOverlapConcurrently) {
  ReentrantRwLock l(LockKind::kGroup);
  std::atomic<int> inside{0};
  std::atomic<bool> both_seen{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&] {
      Hold me;
      ASSERT_TRUE(l.try_acquire(me, true, kLong));
      inside.fetch_add(1);
      const auto deadline = std::chrono::steady_clock::now() + kLong;
      while (inside.load() < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      if (inside.load() == 2) both_seen.store(true);
      l.release_all(me);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_TRUE(both_seen.load());
}

// Group exclusion under load: every thread repeatedly joins a randomly
// chosen group and asserts, while inside, that no member of the opposite
// group is present. Counts are tracked in separate atomics so a discipline
// violation is caught deterministically rather than as a data race.
TEST(ReentrantRwLock, GroupExclusionStress) {
  ReentrantRwLock l(LockKind::kGroup);
  std::atomic<int> reading{0}, writing{0};
  std::atomic<bool> violation{false};
  constexpr int kThreads = 4, kIters = 1500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Hold me;
      unsigned rng = 0x9E3779B9u * static_cast<unsigned>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        rng = rng * 1664525u + 1013904223u;
        const bool write = (rng >> 16) & 1;
        ASSERT_TRUE(l.try_acquire(me, write, kLong));
        std::atomic<int>& mine = write ? writing : reading;
        std::atomic<int>& theirs = write ? reading : writing;
        mine.fetch_add(1);
        if (theirs.load() != 0) violation.store(true);
        mine.fetch_sub(1);
        l.release_all(me);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(violation.load());
}

// Read→write upgrade under contention: every thread takes a read hold, then
// attempts the upgrade with a short timeout. Concurrent upgraders deadlock
// against each other's read holds by design — the assertion is that each
// attempt either succeeds (and really is exclusive) or times out *cleanly*:
// the hold record is unchanged, the read hold remains valid, and the lock is
// undamaged for the next round.
TEST(ReentrantRwLock, UpgradeSucceedsOrTimesOutCleanly) {
  ReentrantRwLock l;
  std::atomic<int> writers_inside{0};
  std::atomic<int> upgrades{0}, timeouts{0};
  std::atomic<bool> violation{false};
  constexpr int kThreads = 4, kIters = 400;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      Hold me;
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(l.try_acquire(me, false, kLong));
        if (l.try_acquire(me, true, 1ms)) {
          if (writers_inside.fetch_add(1) != 0) violation.store(true);
          writers_inside.fetch_sub(1);
          upgrades.fetch_add(1);
        } else {
          if (me.writers != 0 || me.readers != 1) violation.store(true);
          timeouts.fetch_add(1);
        }
        l.release_all(me);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(upgrades.load() + timeouts.load(), kThreads * kIters);
  // The lock must be fully released: a fresh writer acquires immediately.
  Hold w;
  EXPECT_TRUE(l.try_acquire(w, true, kShort));
  l.release_all(w);
}
