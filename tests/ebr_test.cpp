// Epoch-based reclamation: grace-period semantics of common/ebr.hpp and the
// skip list's migration onto it (nodes removed under churn are actually
// freed, not hoarded until destruction).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "common/ebr.hpp"
#include "common/rng.hpp"
#include "containers/concurrent_skip_list.hpp"
#include "stm/thread_registry.hpp"

using proust::ebr::EbrDomain;
using proust::ebr::Retired;
using proust::stm::ThreadRegistry;

namespace {

struct TestObj {
  Retired hook;  // first member: Retired* == TestObj*
  std::atomic<int>* freed;
};

void reclaim_obj(Retired* r, void* /*ctx*/) {
  auto* o = reinterpret_cast<TestObj*>(r);
  o->freed->fetch_add(1, std::memory_order_relaxed);
  delete o;
}

void retire_n(EbrDomain& d, unsigned slot, int n, std::atomic<int>* freed) {
  for (int i = 0; i < n; ++i) {
    auto* o = new TestObj{{}, freed};
    d.retire(slot, &o->hook, &reclaim_obj, nullptr);
  }
}

}  // namespace

TEST(EbrTest, QuiesceFreesEverythingRetired) {
  EbrDomain d(ThreadRegistry::kMaxSlots);
  std::atomic<int> freed{0};
  const unsigned slot = ThreadRegistry::slot();

  d.enter(slot);
  retire_n(d, slot, 100, &freed);
  d.exit(slot);

  d.quiesce();
  EXPECT_EQ(freed.load(), 100);
  EXPECT_EQ(d.pending(), 0u);
  EXPECT_EQ(d.retired_count(), 100u);
  EXPECT_EQ(d.reclaimed_count(), 100u);
}

TEST(EbrTest, AmortizedAdvanceReclaimsDuringChurn) {
  // No explicit quiesce: the every-kAdvanceEvery advance inside retire()
  // must reclaim on its own under sustained single-threaded churn.
  EbrDomain d(ThreadRegistry::kMaxSlots);
  std::atomic<int> freed{0};
  const unsigned slot = ThreadRegistry::slot();
  for (int i = 0; i < 4096; ++i) {
    d.enter(slot);
    retire_n(d, slot, 1, &freed);
    d.exit(slot);
  }
  EXPECT_GT(freed.load(), 0);
  EXPECT_GT(d.reclaimed_count(), 0u);
}

TEST(EbrTest, PinnedReaderBlocksReclamation) {
  EbrDomain d(ThreadRegistry::kMaxSlots);
  std::atomic<int> freed{0};
  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    const unsigned slot = ThreadRegistry::slot();
    d.enter(slot);
    reader_pinned.store(true, std::memory_order_release);
    while (!release_reader.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    d.exit(slot);
  });
  while (!reader_pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  const unsigned slot = ThreadRegistry::slot();
  d.enter(slot);
  retire_n(d, slot, 50, &freed);
  d.exit(slot);

  // However hard we push, nothing retired while the reader is pinned may be
  // freed: the epoch cannot advance far enough past the reader's pin.
  for (int i = 0; i < 32; ++i) d.advance(slot);
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(d.pending(), 50u);

  release_reader.store(true, std::memory_order_release);
  reader.join();

  d.quiesce();
  EXPECT_EQ(freed.load(), 50);
  EXPECT_EQ(d.pending(), 0u);
}

TEST(EbrTest, DestructorDrainsPendingNodes) {
  std::atomic<int> freed{0};
  {
    EbrDomain d(ThreadRegistry::kMaxSlots);
    const unsigned slot = ThreadRegistry::slot();
    d.enter(slot);
    retire_n(d, slot, 17, &freed);
    d.exit(slot);
    // No quiesce: destruction itself must not leak.
  }
  EXPECT_EQ(freed.load(), 17);
}

TEST(EbrTest, ConcurrentChurnIsRaceFreeAndReclaims) {
  // Several threads pinning, retiring and advancing at once — the TSan CI
  // job runs this to vet the epoch protocol's memory ordering.
  EbrDomain d(ThreadRegistry::kMaxSlots);
  std::atomic<int> freed{0};
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;

  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      const unsigned slot = ThreadRegistry::slot();
      sync.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        d.enter(slot);
        retire_n(d, slot, 1, &freed);
        d.exit(slot);
      }
    });
  }
  for (auto& th : ts) th.join();

  EXPECT_GT(freed.load(), 0);
  d.quiesce();
  EXPECT_EQ(freed.load(), kThreads * kIters);
  EXPECT_EQ(d.pending(), 0u);
}

// --- Skip-list migration ----------------------------------------------------

TEST(SkipListEbrTest, ChurnReclaimsRemovedNodes) {
  // The old scheme freed removed nodes only at destruction; under EBR a
  // sustained insert/remove workload must reclaim them while running.
  proust::containers::ConcurrentSkipList<long, long> list;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  constexpr long kKeys = 64;

  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      proust::Xoshiro256 rng(0xC0FFEE + static_cast<std::uint64_t>(t));
      sync.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        const long k = static_cast<long>(rng.below(kKeys));
        if ((rng() & 1) == 0) {
          list.put(k, k * 10);
        } else {
          list.remove(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();

  EXPECT_GT(list.reclaim_retired(), 0u) << "workload removed nothing";
  EXPECT_GT(list.reclaim_freed(), 0u)
      << "nodes were retired but none reclaimed during churn";

  // At quiescence every deferred free drains; memory use is bounded by
  // churn-in-flight, not by the total number of removals.
  list.quiesce();
  EXPECT_EQ(list.reclaim_pending(), 0u);

  // Sanity: the list still answers queries consistently after all that.
  std::size_t present = 0;
  for (long k = 0; k < kKeys; ++k) {
    if (list.contains(k)) {
      EXPECT_EQ(list.get(k), std::make_optional(k * 10));
      ++present;
    }
  }
  EXPECT_EQ(list.size(), present);
}

TEST(SkipListEbrTest, RemoveWhileReadersTraverse) {
  // Readers iterate the full range while writers remove from under them;
  // EBR must keep every node a reader can still reach alive.
  proust::containers::ConcurrentSkipList<long, long> list;
  constexpr long kKeys = 256;
  for (long k = 0; k < kKeys; ++k) list.put(k, k);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      long last = -1;
      list.range_for_each(0, kKeys, [&](long k, long v) {
        EXPECT_GT(k, last) << "out-of-order visit";
        EXPECT_EQ(v, k);
        last = k;
      });
    }
  });

  proust::Xoshiro256 rng(0xDECADE);
  for (int round = 0; round < 200; ++round) {
    const long k = static_cast<long>(rng.below(kKeys));
    list.remove(k);
    list.put(k, k);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  list.quiesce();
  EXPECT_EQ(list.reclaim_pending(), 0u);
}
