// Tests for the pure-STM treap baseline (ordered map in STM memory).
#include <gtest/gtest.h>

#include <barrier>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "baselines/pure_stm_tree_map.hpp"
#include "common/rng.hpp"
#include "stm/stm.hpp"

using namespace proust;

class PureStmTreeTest : public ::testing::TestWithParam<stm::Mode> {
 protected:
  stm::Stm stm{GetParam()};
  baselines::PureStmTreeMap<long, long> map{stm, 8192};
};

TEST_P(PureStmTreeTest, PutGetRemoveRoundTrip) {
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.put(tx, 5, 50), std::nullopt);
    EXPECT_EQ(map.get(tx, 5), 50);
    EXPECT_EQ(map.put(tx, 5, 51), 50);
    EXPECT_EQ(map.remove(tx, 5), 51);
    EXPECT_EQ(map.get(tx, 5), std::nullopt);
    EXPECT_EQ(map.remove(tx, 5), std::nullopt);
  });
}

TEST_P(PureStmTreeTest, InOrderTraversalSorted) {
  Xoshiro256 rng(7);
  std::map<long, long> reference;
  stm.atomically([&](stm::Txn& tx) {
    for (int i = 0; i < 500; ++i) {
      const long k = static_cast<long>(rng.below(2000));
      reference[k] = i;
      map.put(tx, k, i);
    }
  });
  std::vector<long> keys;
  stm.atomically([&](stm::Txn& tx) {
    keys.clear();
    map.range_for_each(tx, 0, 1999, [&](long k, long v) {
      keys.push_back(k);
      EXPECT_EQ(reference.at(k), v);
    });
  });
  EXPECT_EQ(keys.size(), reference.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_P(PureStmTreeTest, RangeSumRespectsBounds) {
  stm.atomically([&](stm::Txn& tx) {
    for (long k = 0; k < 100; ++k) map.put(tx, k, 1);
  });
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.range_sum(tx, 0, 99), 100);
    EXPECT_EQ(map.range_sum(tx, 25, 34), 10);
    EXPECT_EQ(map.range_sum(tx, 200, 300), 0);
  });
}

TEST_P(PureStmTreeTest, AbortRollsBackStructureAndFreeList) {
  stm.atomically([&](stm::Txn& tx) { map.put(tx, 1, 10); });
  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 for (long k = 100; k < 140; ++k) map.put(tx, k, k);
                 map.remove(tx, 1);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.get(tx, 1), 10);
    EXPECT_EQ(map.range_sum(tx, 100, 139), 0);
  });
  // Free-list rollback: the 40 aborted allocations must be reusable.
  stm.atomically([&](stm::Txn& tx) {
    for (long k = 0; k < 1000; ++k) map.put(tx, k, k);
  });
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.range_sum(tx, 2, 4), 2 + 3 + 4);
  });
}

TEST_P(PureStmTreeTest, ReleaseRecyclesNodes) {
  // Insert/remove churn beyond the pool capacity only works if release()
  // returns nodes to the free list.
  for (int round = 0; round < 4; ++round) {
    stm.atomically([&](stm::Txn& tx) {
      for (long k = 0; k < 4000; ++k) map.put(tx, k, k);
    });
    stm.atomically([&](stm::Txn& tx) {
      for (long k = 0; k < 4000; ++k) map.remove(tx, k);
    });
  }
  stm.atomically([&](stm::Txn& tx) { EXPECT_EQ(map.range_sum(tx, 0, 4000), 0); });
}

TEST_P(PureStmTreeTest, ConcurrentTransfersPreserveTotal) {
  constexpr long kAccounts = 8;
  for (long k = 0; k < kAccounts; ++k) map.unsafe_put(k, 100);
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 31);
      for (int i = 0; i < 400; ++i) {
        const long a = static_cast<long>(rng.below(kAccounts));
        const long b = static_cast<long>(rng.below(kAccounts));
        if (a == b) continue;
        stm.atomically([&](stm::Txn& tx) {
          const long va = map.get(tx, a).value();
          if (va > 0) {
            map.put(tx, a, va - 1);
            map.put(tx, b, map.get(tx, b).value() + 1);
          }
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  const long total = stm.atomically(
      [&](stm::Txn& tx) { return map.range_sum(tx, 0, kAccounts - 1); });
  EXPECT_EQ(total, kAccounts * 100);
}

TEST_P(PureStmTreeTest, SequentialDifferentialAgainstStdMap) {
  std::map<long, long> reference;
  Xoshiro256 rng(13);
  for (int i = 0; i < 2000; ++i) {
    const long k = static_cast<long>(rng.below(128));
    const double r = rng.uniform();
    if (r < 0.5) {
      auto it = reference.find(k);
      std::optional<long> expected =
          it == reference.end() ? std::nullopt : std::make_optional(it->second);
      const auto got = stm.atomically(
          [&](stm::Txn& tx) { return map.put(tx, k, i); });
      ASSERT_EQ(got, expected) << "op " << i;
      reference[k] = i;
    } else if (r < 0.75) {
      auto it = reference.find(k);
      std::optional<long> expected =
          it == reference.end() ? std::nullopt : std::make_optional(it->second);
      const auto got =
          stm.atomically([&](stm::Txn& tx) { return map.remove(tx, k); });
      ASSERT_EQ(got, expected) << "op " << i;
      if (it != reference.end()) reference.erase(it);
    } else {
      auto it = reference.find(k);
      std::optional<long> expected =
          it == reference.end() ? std::nullopt : std::make_optional(it->second);
      const auto got =
          stm.atomically([&](stm::Txn& tx) { return map.get(tx, k); });
      ASSERT_EQ(got, expected) << "op " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, PureStmTreeTest,
                         ::testing::Values(stm::Mode::Lazy,
                                           stm::Mode::EagerWrite,
                                           stm::Mode::EagerAll),
                         [](const auto& info) {
                           return std::string(stm::to_string(info.param));
                         });
