// Differential tests for the optimistic read fast path (DESIGN.md §12):
// sequence-validated unlocked reads racing mutators across the map-config
// matrix, read-your-writes through the admission layer, stats accounting,
// and a chaos column that forces fallbacks at the FastPathRead injection
// point. The invariant under test is always the same: a transaction that
// reads a pair of keys the writers only ever update *together* must see
// equal values — a torn fast-path read is exactly what would break it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/lap.hpp"
#include "core/txn_ordered_map.hpp"
#include "core/txn_pqueue.hpp"
#include "map_configs.hpp"
#include "stm/chaos.hpp"
#include "stm/stm.hpp"

using namespace proust;
using namespace proust::testing;

namespace {

stm::StmOptions optimistic_opts() {
  stm::StmOptions o;
  o.optimistic_reads = true;
  return o;
}

constexpr long kHalf = 32;

/// Writers update (k, k+kHalf) to the same value in one transaction;
/// readers read both in one transaction and report any inequality.
/// Returns the number of violations observed.
long run_pair_race(MapUnderTest& map, int writer_rounds,
                   int reader_threads) {
  for (long k = 0; k < kHalf; ++k) {
    map.atomically([&](MapView& m) {
      m.put(k, 0);
      m.put(k + kHalf, 0);
    });
  }
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::thread writer([&] {
    for (long round = 1; round <= writer_rounds; ++round) {
      const long k = round % kHalf;
      map.atomically([&](MapView& m) {
        m.put(k, round);
        m.put(k + kHalf, round);
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&] {
      // Floor of 128 iterations: on a single-core box the writer can finish
      // before a reader is ever scheduled, and a zero-read race tests nothing.
      std::uint64_t i = 0;
      while (i < 128 || !stop.load(std::memory_order_acquire)) {
        const long k = static_cast<long>(i++ % kHalf);
        long a = -1, b = -1;
        map.atomically([&](MapView& m) {
          a = m.get(k).value_or(-1);
          b = m.get(k + kHalf).value_or(-1);
        });
        if (a != b) violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  return violations.load();
}

}  // namespace

TEST(ReadFastPath, PairConsistencyAcrossConfigs) {
  for (const auto& cfg : opaque_map_configs()) {
    auto map = cfg.make_with(optimistic_opts());
    EXPECT_EQ(run_pair_race(*map, /*writer_rounds=*/300, /*reader_threads=*/2),
              0)
        << cfg.name;
  }
}

TEST(ReadFastPath, PairConsistencyUnderMvcc) {
  // PR6 interaction: version publishing and snapshot GC run alongside
  // fast-path readers (ordinary transactions; snapshot readers themselves
  // are fast-path ineligible, which Txn::commit asserts).
  stm::StmOptions o = optimistic_opts();
  o.mvcc = true;
  for (const auto& cfg : opaque_map_configs()) {
    if (cfg.name != "eager_pess" && cfg.name != "lazy_memo_lazystm") continue;
    auto map = cfg.make_with(o);
    EXPECT_EQ(run_pair_race(*map, /*writer_rounds=*/200, /*reader_threads=*/2),
              0)
        << cfg.name;
  }
}

TEST(ReadFastPath, ReadYourWritesThroughAdmission) {
  // The fast path must never serve a read that has a pending transactional
  // write behind it: eager wrappers have already mutated the base (and hold
  // the self-pinned sequence word); lazy wrappers route engaged-log reads
  // down the locked path. Either way the transaction sees its own effects.
  for (const auto& cfg : all_map_configs()) {
    auto map = cfg.make_with(optimistic_opts());
    map->atomically([&](MapView& m) {
      EXPECT_EQ(m.put(7, 70), std::nullopt) << cfg.name;
      EXPECT_EQ(m.get(7), 70) << cfg.name;
      EXPECT_TRUE(m.contains(7)) << cfg.name;
      EXPECT_EQ(m.remove(7), 70) << cfg.name;
      EXPECT_EQ(m.get(7), std::nullopt) << cfg.name;
      EXPECT_EQ(m.put(7, 71), std::nullopt) << cfg.name;
      EXPECT_EQ(m.get(7), 71) << cfg.name;
    });
    EXPECT_EQ(map->get1(7), 71) << cfg.name;
  }
}

TEST(ReadFastPath, StatsRecordHitsWhenEnabled) {
  for (const auto& cfg : opaque_map_configs()) {
    if (cfg.name.rfind("baseline_", 0) == 0) continue;  // no wrapper layer
    auto map = cfg.make_with(optimistic_opts());
    map->put1(1, 10);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(map->get1(1), 10) << cfg.name;
    const auto s = map->stats();
    EXPECT_GT(s.fastpath_hits, 0u) << cfg.name;
  }
}

TEST(ReadFastPath, StatsSilentWhenDisabled) {
  for (const auto& cfg : opaque_map_configs()) {
    auto map = cfg.make();  // default options: optimistic_reads = false
    map->put1(1, 10);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(map->get1(1), 10) << cfg.name;
    const auto s = map->stats();
    EXPECT_EQ(s.fastpath_hits, 0u) << cfg.name;
    EXPECT_EQ(s.fastpath_fallbacks, 0u) << cfg.name;
  }
}

TEST(ReadFastPath, ChaosForcesEveryAdmissionToFallBack) {
  // A FastPathRead abort-probability of 1 coerces every admission attempt
  // into the locked slow path — results must be unchanged and every forced
  // fallback must be visible in the stats.
  stm::ChaosConfig cc;
  cc.seed = 42;
  cc.at(stm::ChaosPoint::FastPathRead) = {.abort = 1.0, .timeout = 0,
                                          .delay = 0};
  stm::ChaosPolicy chaos(cc);
  stm::StmOptions o = optimistic_opts();
  o.chaos = &chaos;
  for (const auto& cfg : opaque_map_configs()) {
    if (cfg.name.rfind("baseline_", 0) == 0) continue;
    auto map = cfg.make_with(o);
    map->put1(1, 10);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(map->get1(1), 10) << cfg.name;
    const auto s = map->stats();
    EXPECT_EQ(s.fastpath_hits, 0u) << cfg.name;
    EXPECT_GT(s.fastpath_fallbacks, 0u) << cfg.name;
  }
  EXPECT_EQ(chaos.leaks(), 0u) << "seed=" << chaos.seed();
}

TEST(ReadFastPath, PairConsistencyUnderAggressiveChaos) {
  // The full chaos column: spurious aborts, forced LAP timeouts, injected
  // delays at every point including FastPathRead, racing the pair invariant.
  for (const auto& cfg : opaque_map_configs()) {
    if (cfg.name.rfind("baseline_", 0) == 0) continue;
    stm::ChaosPolicy chaos(stm::ChaosConfig::aggressive(7));
    chaos.install_lock_hook();
    stm::StmOptions o = optimistic_opts();
    o.chaos = &chaos;
    {
      auto map = cfg.make_with(o);
      EXPECT_EQ(
          run_pair_race(*map, /*writer_rounds=*/150, /*reader_threads=*/2), 0)
          << cfg.name << " seed=" << chaos.seed();
    }
    chaos.remove_lock_hook();
    EXPECT_EQ(chaos.leaks(), 0u) << cfg.name << " seed=" << chaos.seed();
  }
}

TEST(ReadFastPath, OrderedMapPairConsistency) {
  using OptLap = core::OptimisticLap<std::size_t, core::StripeHasher>;
  stm::Stm stm(stm::Mode::Lazy, optimistic_opts());
  OptLap lap(stm, 64);
  core::TxnOrderedMap<long, OptLap> map(lap, 0, 1023, 64);
  for (long k = 0; k < kHalf; ++k) {
    stm.atomically([&](stm::Txn& tx) {
      map.put(tx, k, 0);
      map.put(tx, k + kHalf, 0);
    });
  }
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::thread writer([&] {
    for (long round = 1; round <= 300; ++round) {
      const long k = round % kHalf;
      stm.atomically([&](stm::Txn& tx) {
        map.put(tx, k, round);
        map.put(tx, k + kHalf, round);
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    // Iteration floor as in run_pair_race: guarantee reads happen even when
    // the writer wins every scheduling race on a small machine.
    std::uint64_t i = 0;
    while (i < 128 || !stop.load(std::memory_order_acquire)) {
      const long k = static_cast<long>(i++ % kHalf);
      long a = -1, b = -1;
      stm.atomically([&](stm::Txn& tx) {
        a = map.get(tx, k).value_or(-1);
        b = map.get(tx, k + kHalf).value_or(-1);
      });
      if (a != b) violations.fetch_add(1, std::memory_order_relaxed);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(stm.stats().snapshot().fastpath_hits, 0u);
}

TEST(ReadFastPath, PQueueMinRacesChurn) {
  // Churn keeps values inside [1, 1000] with 1000 permanently present; a
  // fast-path min() must always see something in that window.
  using PessLap = core::PessimisticLap<core::PQueueState>;
  stm::Stm stm(stm::Mode::Lazy, optimistic_opts());
  PessLap lap(stm, 8);
  core::TxnPriorityQueue<long, PessLap> pq(lap);
  pq.unsafe_insert(1000);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::thread writer([&] {
    for (long round = 0; round < 300; ++round) {
      const long v = 1 + (round * 13) % 999;
      stm.atomically([&](stm::Txn& tx) { pq.insert(tx, v); });
      stm.atomically([&](stm::Txn& tx) { (void)pq.remove_min(tx); });
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    std::uint64_t i = 0;
    while (i < 128 || !stop.load(std::memory_order_acquire)) {
      ++i;
      std::optional<long> m;
      stm.atomically([&](stm::Txn& tx) { m = pq.min(tx); });
      if (!m || *m < 1 || *m > 1000) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0);
}
