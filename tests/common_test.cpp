// Unit tests for the common utilities (rng, backoff, hashing) and the
// thread registry / benchmark workload generator — the foundations the
// measurements rest on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "common/backoff.hpp"
#include "common/hashing.hpp"
#include "common/rng.hpp"
#include "stm/thread_registry.hpp"

using namespace proust;

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  Xoshiro256 a2(7), c2(8);
  EXPECT_NE(a2(), c2());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Xoshiro256, UniformIsInHalfOpenUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(21);
  constexpr int kBuckets = 8, kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) counts[rng.below(kBuckets)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Backoff, LimitGrowsAndResets) {
  Backoff b(1, 16, 256);
  const auto initial = b.current_limit();
  b.pause();
  b.pause();
  EXPECT_GT(b.current_limit(), initial);
  for (int i = 0; i < 20; ++i) b.pause();
  EXPECT_LE(b.current_limit(), 512u);  // capped (one doubling past max)
  b.reset();
  EXPECT_EQ(b.current_limit(), initial);
}

TEST(Hashing, Mix64Avalanches) {
  // Neighbouring integers must land in different low bits most of the time
  // (the identity hash would fail striping).
  int same_low6 = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if ((mix64(i) & 63) == (mix64(i + 1) & 63)) ++same_low6;
  }
  EXPECT_LT(same_low6, 100);  // ~1/64 expected, allow slack
}

TEST(Hashing, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
}

TEST(Hashing, HashIsStableAndSpreads) {
  Hash<long> h;
  EXPECT_EQ(h(42), h(42));
  std::set<std::size_t> buckets;
  for (long k = 0; k < 64; ++k) buckets.insert(h(k) & 63);
  EXPECT_GT(buckets.size(), 32u);  // sequential keys spread over stripes
}

TEST(ThreadRegistry, SlotsAreStablePerThreadAndDistinct) {
  const unsigned mine = stm::ThreadRegistry::slot();
  EXPECT_EQ(stm::ThreadRegistry::slot(), mine);
  unsigned other = mine;
  std::thread t([&] { other = stm::ThreadRegistry::slot(); });
  t.join();
  EXPECT_NE(other, mine);
}

TEST(ThreadRegistry, SlotsAreRecycledAfterThreadExit) {
  unsigned first = 0;
  std::thread t1([&] { first = stm::ThreadRegistry::slot(); });
  t1.join();
  unsigned second = 1;
  std::thread t2([&] { second = stm::ThreadRegistry::slot(); });
  t2.join();
  EXPECT_EQ(first, second);
}

TEST(MapWorkload, WriteFractionIsRespected) {
  bench::MapWorkload wl(0.5, 1024, 11);
  int writes = 0, gets = 0, puts = 0, removes = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const bench::Op op = wl.next();
    EXPECT_GE(op.key, 0);
    EXPECT_LT(op.key, 1024);
    switch (op.kind) {
      case bench::OpKind::Put: ++puts; ++writes; break;
      case bench::OpKind::Remove: ++removes; ++writes; break;
      case bench::OpKind::Get: ++gets; break;
    }
  }
  EXPECT_NEAR(writes, kN / 2, kN * 0.02);
  // "evenly split between put and remove" (§7)
  EXPECT_NEAR(puts, removes, kN * 0.02);
}

TEST(MapWorkload, ReadOnlyAndWriteOnlyExtremes) {
  bench::MapWorkload ro(0.0, 64, 1);
  bench::MapWorkload wo(1.0, 64, 1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(ro.next().kind, bench::OpKind::Get);
    EXPECT_NE(wo.next().kind, bench::OpKind::Get);
  }
}

TEST(ZipfSampler, ThetaZeroIsUniform) {
  bench::ZipfSampler z(100, 0.0);
  EXPECT_TRUE(z.uniform());
}

TEST(ZipfSampler, SkewConcentratesOnSmallKeys) {
  bench::ZipfSampler z(1024, 0.99);
  Xoshiro256 rng(5);
  constexpr int kN = 50000;
  int head = 0;  // samples in the top-16 hottest keys
  for (int i = 0; i < kN; ++i) {
    const long k = z.sample(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 1024);
    if (k < 16) ++head;
  }
  // Under uniform, 16/1024 ≈ 1.6% of samples; Zipf(0.99) puts >30% there.
  EXPECT_GT(head, kN * 3 / 10);
}

TEST(ZipfSampler, RankFrequenciesDecrease) {
  bench::ZipfSampler z(64, 1.0);
  Xoshiro256 rng(17);
  std::vector<int> counts(64, 0);
  for (int i = 0; i < 100000; ++i) counts[z.sample(rng)]++;
  EXPECT_GT(counts[0], counts[7]);
  EXPECT_GT(counts[7], counts[63]);
}
