// Priority-queue conservation under deterministic fault injection (ctest
// label "chaos"): concurrent insert/remove_min transactions with injected
// aborts, delays and forced lock timeouts must conserve the multiset of
// elements — every inserted value is eventually removed exactly once or
// still present at the end. Exercises the pqueue wrappers' inverse logs and
// replay logs (and, for eager_pess, the group-mode abstract locks) on their
// failure paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/lazy_pqueue.hpp"
#include "core/txn_pqueue.hpp"
#include "stm/chaos.hpp"
#include "stm/stm.hpp"

using namespace proust;
using core::PQueueState;
using core::PQueueStateHasher;

namespace {

std::uint64_t base_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = 0xC45EEDu;
    if (const char* env = std::getenv("PROUST_CHAOS_SEED")) {
      s = std::strtoull(env, nullptr, 0);
    }
    std::fprintf(stderr,
                 "[chaos] base seed %llu (override: PROUST_CHAOS_SEED)\n",
                 static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

class PQueueUnderTest {
 public:
  virtual ~PQueueUnderTest() = default;
  virtual void insert1(long v) = 0;
  virtual std::optional<long> remove_min1() = 0;
  virtual long size() const = 0;
};

template <class Lap, class PQ>
class Handle final : public PQueueUnderTest {
 public:
  template <class MakeLap>
  Handle(stm::Mode mode, const stm::StmOptions& opts, MakeLap&& make_lap)
      : stm_(mode, opts), lap_(make_lap(stm_)), pq_(*lap_) {}

  void insert1(long v) override {
    stm_.atomically([&](stm::Txn& tx) { pq_.insert(tx, v); });
  }
  std::optional<long> remove_min1() override {
    std::optional<long> r;
    stm_.atomically([&](stm::Txn& tx) { r = pq_.remove_min(tx); });
    return r;
  }
  long size() const override { return pq_.size(); }

 private:
  stm::Stm stm_;
  std::unique_ptr<Lap> lap_;
  PQ pq_;
};

struct PQConfig {
  std::string name;
  std::function<std::unique_ptr<PQueueUnderTest>(const stm::StmOptions&)>
      make_with;
};

std::vector<PQConfig> pqueue_configs() {
  using OptLap = core::OptimisticLap<PQueueState, PQueueStateHasher>;
  using PessLap = core::PessimisticLap<PQueueState, PQueueStateHasher>;
  const auto opt = [](stm::Stm& s) { return std::make_unique<OptLap>(s, 2); };
  const auto pess = [](stm::Stm& s) {
    // Default timeout: taken from s.options().lap_timeout, with jitter.
    return std::make_unique<PessLap>(s, 2, core::pqueue_lock_kind);
  };
  return {
      {"eager_opt_eagerall",
       [opt](const stm::StmOptions& o) {
         return std::make_unique<
             Handle<OptLap, core::TxnPriorityQueue<long, OptLap>>>(
             stm::Mode::EagerAll, o, opt);
       }},
      {"eager_pess",
       [pess](const stm::StmOptions& o) {
         return std::make_unique<
             Handle<PessLap, core::TxnPriorityQueue<long, PessLap>>>(
             stm::Mode::Lazy, o, pess);
       }},
      {"lazy_opt_lazystm",
       [opt](const stm::StmOptions& o) {
         return std::make_unique<
             Handle<OptLap, core::LazyPriorityQueue<long, OptLap>>>(
             stm::Mode::Lazy, o, opt);
       }},
      {"lazy_opt_eagerall",
       [opt](const stm::StmOptions& o) {
         return std::make_unique<
             Handle<OptLap, core::LazyPriorityQueue<long, OptLap>>>(
             stm::Mode::EagerAll, o, opt);
       }},
  };
}

class ChaosPQueueTest : public ::testing::TestWithParam<PQConfig> {};

}  // namespace

TEST_P(ChaosPQueueTest, ConservationUnderInjection) {
  const std::uint64_t seed = base_seed() + 31;
  SCOPED_TRACE("chaos seed " + std::to_string(seed) + " (config " +
               GetParam().name + ")");

  stm::ChaosPolicy policy(stm::ChaosConfig::standard(seed));
  policy.install_lock_hook();
  stm::StmOptions opts;
  opts.chaos = &policy;
  opts.lap_timeout = std::chrono::milliseconds(1);
  auto pq = GetParam().make_with(opts);

  constexpr int kThreads = 4, kPerThread = 150;
  std::mutex removed_mu;
  std::vector<long> removed;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      proust::Xoshiro256 rng(seed + t * 977 + 5);
      for (int i = 0; i < kPerThread; ++i) {
        pq->insert1(static_cast<long>(t) * kPerThread + i);
        if (rng.uniform() < 0.5) {
          if (auto v = pq->remove_min1()) {
            std::lock_guard<std::mutex> g(removed_mu);
            removed.push_back(*v);
          }
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  policy.remove_lock_hook();

  // Drain what is left; removed ∪ drained must be exactly the inserted set
  // (each element once — a leaked insert or resurrected tombstone breaks it).
  while (auto v = pq->remove_min1()) removed.push_back(*v);
  EXPECT_EQ(pq->size(), 0);
  ASSERT_EQ(removed.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::sort(removed.begin(), removed.end());
  for (long i = 0; i < static_cast<long>(removed.size()); ++i) {
    ASSERT_EQ(removed[static_cast<std::size_t>(i)], i) << "element " << i;
  }
  EXPECT_EQ(policy.leaks(), 0u);
  EXPECT_GT(policy.injected_total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ChaosPQueueTest,
                         ::testing::ValuesIn(pqueue_configs()),
                         [](const auto& info) { return info.param.name; });
