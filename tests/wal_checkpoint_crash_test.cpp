// Extended crash matrix for the checkpoint/compaction layer (ctest label
// "durability"): every checkpoint chaos gate (CkptBegin / CkptWrite /
// CkptFsync / CkptRename / CkptRetire) x injected storage error (none, EIO,
// ENOSPC, short writes — fed through the common::Fs seam at the syscall
// gate) x ack mode (Relaxed / Strict). A forked child runs a deterministic
// stream of registered-var commits with a live background checkpointer that
// retires subsumed segments; the chaos policy _exit()s the child at the
// drawn gate, and the errno injections can additionally fail-stop the log
// mid-run (the child exits 7 after catching WalUnavailable — an accepted
// outcome: fail-stop IS the contract for a dying disk).
//
// The parent recovers whatever directory state the child left — any mix of
// checkpoints (durable, torn .tmp, or renamed-but-unretired overlap) and
// segments (live, sealed, or half-retired) — and asserts:
//
//   1. The recovered fold (checkpoint state + tail replay) equals the
//      deterministic oracle folded over exactly the first K = last_epoch
//      committed operations: a prefix, nothing lost inside it, nothing
//      double-applied across the checkpoint/segment overlap.
//   2. Strict mode: no acked operation lies beyond K.
//   3. Across the matrix at least one cell recovered through a real
//      checkpoint (checkpoint_epoch > 0) — the anchored path cannot
//      silently go untested.
//
// On a contract failure the test prints a `scripts/wal_inspect.py` command
// for the kept directory so the on-disk epoch ranges can be examined.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/chaos_fs.hpp"
#include "stm/chaos.hpp"
#include "stm/checkpoint.hpp"
#include "stm/stm.hpp"
#include "stm/wal.hpp"

namespace stm = proust::stm;
namespace common = proust::common;
namespace fs = std::filesystem;

namespace {

constexpr int kOps = 700;
constexpr int kVars = 8;
constexpr std::uint64_t kCkptEvery = 48;
constexpr int kWalFailedExitCode = 7;  // child caught WalUnavailable

std::uint64_t base_seed() {
  if (const char* env = std::getenv("PROUST_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC45EEDu;
}

enum class Fault { None, Eio, Enospc, Short };

constexpr const char* to_string(Fault f) noexcept {
  switch (f) {
    case Fault::None: return "none";
    case Fault::Eio: return "eio";
    case Fault::Enospc: return "enospc";
    case Fault::Short: return "short";
  }
  return "?";
}

void journal_line(int fd, int j) {
  char buf[16];
  const int n = std::snprintf(buf, sizeof buf, "%d\n", j);
  (void)!::write(fd, buf, static_cast<std::size_t>(n));
}

std::vector<int> read_journal(const std::string& path) {
  std::vector<int> out;
  std::ifstream f(path);
  int j;
  while (f >> j) out.push_back(j);
  return out;
}

/// The deterministic program: op j (1-based, == its epoch in the
/// single-threaded child) writes value j to var (j % kVars). The oracle
/// after K epochs is therefore computable by the parent alone.
std::vector<long> oracle_after(std::uint64_t k) {
  std::vector<long> state(kVars, 0);
  for (std::uint64_t j = 1; j <= k; ++j) {
    state[j % kVars] = static_cast<long>(j);
  }
  return state;
}

/// Child body: never returns. 0 = completed, kWalCrashExitCode = chaos
/// crash at a gate, kWalFailedExitCode = injected storage error fail-
/// stopped the log.
[[noreturn]] void run_child(const std::string& dir, stm::ChaosPoint gate,
                            double crash_prob, Fault fault,
                            stm::WalDurability mode, std::uint64_t seed) {
  const int acked_fd =
      ::open((dir + "/acked.log").c_str(),
             O_CREAT | O_TRUNC | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (acked_fd < 0) ::_exit(3);

  stm::ChaosConfig ccfg;
  ccfg.seed = seed;
  ccfg.at(gate).crash = crash_prob;
  stm::ChaosPolicy chaos(ccfg);

  common::ChaosFsConfig fcfg;
  fcfg.seed = seed + 1;
  switch (fault) {
    case Fault::None:
      break;
    case Fault::Eio:
      fcfg.err_prob[static_cast<std::size_t>(common::FsOp::Write)] = 0.002;
      fcfg.err[static_cast<std::size_t>(common::FsOp::Write)] = EIO;
      break;
    case Fault::Enospc:
      fcfg.err_prob[static_cast<std::size_t>(common::FsOp::Write)] = 0.002;
      fcfg.err[static_cast<std::size_t>(common::FsOp::Write)] = ENOSPC;
      break;
    case Fault::Short:
      fcfg.short_write_prob = 0.25;  // healed by the write loops, not fatal
      break;
  }
  common::ChaosFs cfs(fcfg);

  try {
    std::vector<stm::Var<long>> vars(kVars);
    stm::WalOptions wopts;
    wopts.dir = dir + "/wal";
    wopts.segment_bytes = 4096;  // rotations + retirement happen often
    wopts.fsync_every_n = 8;
    wopts.fsync_interval_us = std::chrono::microseconds(100);
    wopts.durability = mode;
    wopts.chaos = &chaos;
    wopts.fs = &cfs;
    wopts.on_error = [](const stm::WalError&) {};  // quiet: injected
    stm::Wal wal(wopts);
    for (int i = 0; i < kVars; ++i) {
      wal.register_var(static_cast<std::uint64_t>(i), vars[i]);
    }

    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);

    stm::CheckpointOptions copts;
    copts.every_records = kCkptEvery;
    copts.chaos = &chaos;  // Ckpt* gates drawn on the checkpointer thread
    copts.on_error = [](const stm::WalError&) {};
    stm::Checkpointer ckpt(wal, copts);  // dies before the Wal

    for (int j = 1; j <= kOps; ++j) {
      s.atomically([&](stm::Txn& tx) {
        vars[j % kVars].write(tx, static_cast<long>(j));
      });
      // The ack point: relaxed = publish returned, strict = fsync covered.
      journal_line(acked_fd, j);
    }
    wal.flush();
    // One deterministic cut on this thread after the run: a child that
    // outraces the background poll (relaxed acks finish in under one 5ms
    // tick) still exercises its checkpoint gate before exiting.
    (void)ckpt.checkpoint_now();
  } catch (const stm::WalUnavailable&) {
    ::_exit(kWalFailedExitCode);
  }
  ::_exit(0);
}

struct CellResult {
  int exit_code = -1;
  std::vector<int> acked;
  stm::WalRecoveryInfo info;
  std::vector<long> recovered;  // per-var fold of the recovered stream
  bool bad_record = false;
};

CellResult run_cell(const std::string& dir, stm::ChaosPoint gate,
                    double crash_prob, Fault fault, stm::WalDurability mode,
                    std::uint64_t seed) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  const pid_t pid = ::fork();
  if (pid == 0) {
    run_child(dir, gate, crash_prob, fault, mode, seed);  // never returns
  }
  CellResult r;
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child must _exit, not be signalled";
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;

  r.acked = read_journal(dir + "/acked.log");
  r.recovered.assign(kVars, 0);
  std::uint64_t prev_epoch = 0;
  r.info = stm::Wal::recover(dir + "/wal", [&](const stm::WalRecordView& v) {
    std::uint64_t id;
    const std::uint8_t* value;
    std::uint32_t size;
    if (!stm::Wal::decode_var_record(v, id, value, size) ||
        size != sizeof(long) || id >= kVars || v.epoch < prev_epoch) {
      r.bad_record = true;
      return;
    }
    prev_epoch = v.epoch;
    long x;
    std::memcpy(&x, value, sizeof x);
    // Both record shapes fold the same way here: a checkpoint record is
    // the var's absolute state at the covering epoch, a tail record the
    // absolute value that epoch's write left behind.
    r.recovered[id] = x;
  });
  return r;
}

void check_cell(const CellResult& r, stm::WalDurability mode,
                const std::string& dir) {
  const std::string hint =
      "  inspect: python3 scripts/wal_inspect.py " + dir + "/wal";
  ASSERT_TRUE(r.exit_code == 0 || r.exit_code == stm::kWalCrashExitCode ||
              r.exit_code == kWalFailedExitCode)
      << "unexpected child exit code " << r.exit_code << "\n" << hint;
  ASSERT_FALSE(r.bad_record) << "malformed/regressing recovered record\n"
                             << hint;

  // (1) The fold over the recovered stream equals the oracle folded over
  // exactly the first K committed ops — prefix semantics across any
  // checkpoint/segment overlap the crash left behind.
  const std::uint64_t k = r.info.last_epoch;
  ASSERT_LE(k, static_cast<std::uint64_t>(kOps)) << hint;
  const std::vector<long> want = oracle_after(k);
  for (int i = 0; i < kVars; ++i) {
    ASSERT_EQ(r.recovered[i], want[i])
        << "var " << i << " diverged from the epoch-" << k << " oracle\n"
        << hint;
  }

  // (2) Strict: an acked op is durable, so it must lie within the prefix.
  if (mode == stm::WalDurability::Strict && !r.acked.empty()) {
    ASSERT_LE(static_cast<std::uint64_t>(r.acked.back()), k)
        << "a strict-acked commit was lost\n" << hint;
  }

  // A clean, fault-free completion must have drained everything.
  if (r.exit_code == 0) {
    ASSERT_GE(k, static_cast<std::uint64_t>(
                     r.acked.empty() ? 0 : r.acked.back()))
        << hint;
  }
}

}  // namespace

TEST(WalCheckpointCrashMatrixTest, PrefixRecoveryAtEveryGateErrorAckCell) {
  const stm::ChaosPoint gates[] = {
      stm::ChaosPoint::CkptBegin,  stm::ChaosPoint::CkptWrite,
      stm::ChaosPoint::CkptFsync,  stm::ChaosPoint::CkptRename,
      stm::ChaosPoint::CkptRetire,
  };
  const Fault faults[] = {Fault::None, Fault::Eio, Fault::Enospc,
                          Fault::Short};
  const std::uint64_t seed = base_seed();
  std::fprintf(
      stderr,
      "[ckpt-crash] base seed %llu (override: PROUST_CHAOS_SEED)\n",
      static_cast<unsigned long long>(seed));

  const std::string root = "ckpt_crash_" + std::to_string(
      static_cast<unsigned long long>(::getpid()));
  int crashes = 0, failstops = 0, anchored = 0;
  std::uint64_t cell = 0;
  for (const stm::ChaosPoint gate : gates) {
    for (const Fault fault : faults) {
      for (const stm::WalDurability mode :
           {stm::WalDurability::Relaxed, stm::WalDurability::Strict}) {
        ++cell;
        const std::string name = std::string(stm::to_string(gate)) + "_" +
                                 to_string(fault) + "_" +
                                 stm::to_string(mode);
        SCOPED_TRACE(name + " seed=" + std::to_string(seed + cell));
        const std::string dir = root + "/" + name;
        // A checkpoint gate fires once per attempt (~kOps/kCkptEvery of
        // them), so the per-draw probability is high to make the kill
        // near-certain while still letting checkpoints land first.
        const CellResult r =
            run_cell(dir, gate, 0.35, fault, mode, seed + cell);
        check_cell(r, mode, dir);
        if (r.exit_code == stm::kWalCrashExitCode) ++crashes;
        if (r.exit_code == kWalFailedExitCode) ++failstops;
        if (r.info.checkpoint_epoch > 0) ++anchored;
        if (HasFatalFailure()) return;  // keep the failing cell's dir
      }
    }
  }
  // The matrix must actually exercise its three regimes: injected crashes,
  // injected fail-stops, and (3) checkpoint-anchored recoveries.
  EXPECT_GE(crashes, 1) << "no chaos crash was ever drawn — gates dead?";
  EXPECT_GE(failstops, 1) << "no injected errno ever fail-stopped the log";
  EXPECT_GE(anchored, 1) << "no cell recovered through a checkpoint";
  std::fprintf(stderr,
               "[ckpt-crash] %llu cells: %d crashed, %d fail-stopped, "
               "%d checkpoint-anchored\n",
               static_cast<unsigned long long>(cell), crashes, failstops,
               anchored);
  std::error_code ec;
  fs::remove_all(root, ec);
}

// Torn-checkpoint coverage: crash certain at the very first CkptWrite gate
// leaves a half-written .tmp; recovery must discard it (never renamed) and
// replay the intact segment history as if no checkpoint was ever tried.
TEST(WalCheckpointCrashMatrixTest, TornTmpCheckpointIsDiscarded) {
  const std::string dir =
      "ckpt_crash_tear_" +
      std::to_string(static_cast<unsigned long long>(::getpid()));
  const CellResult r =
      run_cell(dir, stm::ChaosPoint::CkptWrite, 1.0, Fault::None,
               stm::WalDurability::Relaxed, base_seed() + 99);
  EXPECT_EQ(r.exit_code, stm::kWalCrashExitCode);
  EXPECT_EQ(r.info.checkpoint_epoch, 0u)
      << "a torn .tmp checkpoint must never be loaded";
  EXPECT_GE(r.info.skipped_tmp, 1u);
  check_cell(r, stm::WalDurability::Relaxed, dir);
  std::error_code ec;
  fs::remove_all(dir, ec);
}
