// Tests for the copy-on-write heap (the paper's new snapshot-able priority
// queue base) and the PriorityBlockingQueue stand-in.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "containers/blocking_pqueue.hpp"
#include "containers/cow_heap.hpp"

using proust::containers::BlockingPriorityQueue;
using proust::containers::CowHeap;

TEST(CowHeap, RemovesInSortedOrder) {
  CowHeap<int> h;
  proust::Xoshiro256 rng(3);
  std::vector<int> values;
  for (int i = 0; i < 500; ++i) {
    const int v = static_cast<int>(rng.below(1000));
    values.push_back(v);
    h.insert(v);
  }
  std::sort(values.begin(), values.end());
  for (int expected : values) {
    auto got = h.remove_min();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_EQ(h.remove_min(), std::nullopt);
  EXPECT_TRUE(h.empty());
}

TEST(CowHeap, PeekDoesNotRemove) {
  CowHeap<int> h;
  h.insert(5);
  h.insert(3);
  EXPECT_EQ(h.peek_min(), 3);
  EXPECT_EQ(h.peek_min(), 3);
  EXPECT_EQ(h.size(), 2u);
}

TEST(CowHeap, EmptyBehaviour) {
  CowHeap<int> h;
  EXPECT_EQ(h.peek_min(), std::nullopt);
  EXPECT_EQ(h.remove_min(), std::nullopt);
  EXPECT_FALSE(h.contains(1));
  EXPECT_EQ(h.size(), 0u);
}

TEST(CowHeap, ContainsFindsPresentValuesOnly) {
  CowHeap<int> h;
  for (int v : {8, 1, 9, 4}) h.insert(v);
  EXPECT_TRUE(h.contains(8));
  EXPECT_TRUE(h.contains(1));
  EXPECT_FALSE(h.contains(5));
  h.remove_min();  // removes 1
  EXPECT_FALSE(h.contains(1));
}

TEST(CowHeap, DuplicatesSupported) {
  CowHeap<int> h;
  h.insert(2);
  h.insert(2);
  h.insert(2);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.remove_min(), 2);
  EXPECT_EQ(h.remove_min(), 2);
  EXPECT_TRUE(h.contains(2));
}

TEST(CowHeap, SnapshotIsolation) {
  CowHeap<int> h;
  h.insert(10);
  h.insert(20);
  auto snap = h.snapshot();
  h.insert(1);
  h.remove_min();  // removes 1 from base
  EXPECT_EQ(snap.peek_min(), 10);
  snap.insert(5);
  EXPECT_EQ(snap.remove_min(), 5);
  EXPECT_EQ(snap.remove_min(), 10);
  EXPECT_EQ(snap.size(), 1u);
  // Base unaffected by snapshot mutation.
  EXPECT_EQ(h.peek_min(), 10);
  EXPECT_EQ(h.size(), 2u);
}

TEST(CowHeap, SnapshotForEachCountsElements) {
  CowHeap<int> h;
  for (int i = 0; i < 100; ++i) h.insert(i);
  auto snap = h.snapshot();
  int count = 0;
  snap.for_each([&](int) { ++count; });
  EXPECT_EQ(count, 100);
}

TEST(CowHeap, LargeLeftSpineTraversalDoesNotOverflow) {
  CowHeap<long> h;
  for (long i = 200000; i > 0; --i) h.insert(i);  // adversarial order
  EXPECT_TRUE(h.contains(1));
  EXPECT_FALSE(h.contains(0));
  long count = 0;
  h.for_each([&](long) { ++count; });
  EXPECT_EQ(count, 200000);
}

TEST(CowHeap, ConcurrentInsertersAllLand) {
  CowHeap<long> h;
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (long i = 0; i < kPerThread; ++i) h.insert(t * kPerThread + i);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(h.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.peek_min(), 0);
}

TEST(CowHeap, ConcurrentMixedDrainIsExact) {
  CowHeap<long> h;
  constexpr int kThreads = 4, kPerThread = 1500;
  std::atomic<long> removed_count{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (long i = 0; i < kPerThread; ++i) {
        h.insert(t * kPerThread + i);
        if (i % 2 == 1) {
          if (h.remove_min()) removed_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(h.size() + static_cast<std::size_t>(removed_count.load()),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(BlockingPriorityQueue, PollsInSortedOrder) {
  BlockingPriorityQueue<int> q;
  for (int v : {5, 1, 4, 2, 3}) q.add(v);
  for (int expected : {1, 2, 3, 4, 5}) EXPECT_EQ(q.poll(), expected);
  EXPECT_EQ(q.poll(), std::nullopt);
}

TEST(BlockingPriorityQueue, PeekMatchesPoll) {
  BlockingPriorityQueue<int> q;
  q.add(7);
  q.add(3);
  EXPECT_EQ(q.peek(), 3);
  EXPECT_EQ(q.poll(), 3);
  EXPECT_EQ(q.peek(), 7);
}

TEST(BlockingPriorityQueue, RemoveOneRemovesExactlyOne) {
  BlockingPriorityQueue<int> q;
  q.add(2);
  q.add(2);
  q.add(5);
  EXPECT_TRUE(q.remove_one(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.contains(2));
  EXPECT_TRUE(q.remove_one(2));
  EXPECT_FALSE(q.contains(2));
  EXPECT_FALSE(q.remove_one(2));
}

TEST(BlockingPriorityQueue, HeapInvariantSurvivesRemoveOne) {
  BlockingPriorityQueue<int> q;
  proust::Xoshiro256 rng(11);
  std::multiset<int> reference;
  for (int i = 0; i < 300; ++i) {
    const int v = static_cast<int>(rng.below(50));
    q.add(v);
    reference.insert(v);
  }
  for (int i = 0; i < 100; ++i) {
    const int v = static_cast<int>(rng.below(50));
    const bool removed = q.remove_one(v);
    const auto it = reference.find(v);
    EXPECT_EQ(removed, it != reference.end());
    if (it != reference.end()) reference.erase(it);
  }
  while (!reference.empty()) {
    auto got = q.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, *reference.begin());
    reference.erase(reference.begin());
  }
}

TEST(BlockingPriorityQueue, ConcurrentAddPollConserves) {
  BlockingPriorityQueue<long> q;
  constexpr int kThreads = 4, kPerThread = 3000;
  std::atomic<long> polled{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (long i = 0; i < kPerThread; ++i) {
        q.add(t * kPerThread + i);
        if (i % 3 == 2 && q.poll()) polled.fetch_add(1);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(q.size() + static_cast<std::size_t>(polled.load()),
            static_cast<std::size_t>(kThreads) * kPerThread);
}
