// Tests for the Proustian double-ended queue (Front/Back abstract state).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <deque>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/txn_deque.hpp"
#include "stm/stm.hpp"

using namespace proust;
using core::DequeState;
using core::DequeStateHasher;
using OptLap = core::OptimisticLap<DequeState, DequeStateHasher>;

namespace {
struct Fixture {
  stm::Stm stm{stm::Mode::EagerAll};
  OptLap lap{stm, 2};
  core::TxnDeque<long, OptLap> dq{lap};

  void pf(long v) { stm.atomically([&](stm::Txn& tx) { dq.push_front(tx, v); }); }
  void pb(long v) { stm.atomically([&](stm::Txn& tx) { dq.push_back(tx, v); }); }
  std::optional<long> popf() {
    return stm.atomically([&](stm::Txn& tx) { return dq.pop_front(tx); });
  }
  std::optional<long> popb() {
    return stm.atomically([&](stm::Txn& tx) { return dq.pop_back(tx); });
  }
};
}  // namespace

TEST(TxnDeque, BothEndsBehave) {
  Fixture f;
  f.pb(2);
  f.pb(3);
  f.pf(1);
  EXPECT_EQ(f.dq.size(), 3);
  EXPECT_EQ(f.popf(), 1);
  EXPECT_EQ(f.popb(), 3);
  EXPECT_EQ(f.popf(), 2);
  EXPECT_EQ(f.popf(), std::nullopt);
  EXPECT_EQ(f.popb(), std::nullopt);
}

TEST(TxnDeque, AbortRollsBackBothEnds) {
  Fixture f;
  f.pb(10);
  EXPECT_THROW(f.stm.atomically([&](stm::Txn& tx) {
                 f.dq.push_front(tx, 1);
                 f.dq.push_back(tx, 2);
                 EXPECT_EQ(f.dq.pop_front(tx), 1);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(f.dq.size(), 1);
  EXPECT_EQ(f.popf(), 10);
}

TEST(TxnDeque, PopRestoredAtCorrectEnd) {
  Fixture f;
  f.pb(1);
  f.pb(2);
  f.pb(3);
  EXPECT_THROW(f.stm.atomically([&](stm::Txn& tx) {
                 EXPECT_EQ(f.dq.pop_back(tx), 3);
                 EXPECT_EQ(f.dq.pop_front(tx), 1);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  // Order must be exactly restored: 1,2,3.
  EXPECT_EQ(f.popf(), 1);
  EXPECT_EQ(f.popf(), 2);
  EXPECT_EQ(f.popf(), 3);
}

TEST(TxnDeque, WorkStealingPatternConserves) {
  // Owner pushes/pops at the back; thieves steal from the front.
  Fixture f;
  constexpr int kOwnerOps = 3000;
  std::atomic<long> stolen{0}, owner_popped{0}, pushed{0};
  std::barrier sync(3);
  std::thread owner([&] {
    sync.arrive_and_wait();
    Xoshiro256 rng(1);
    for (int i = 0; i < kOwnerOps; ++i) {
      if (rng.uniform() < 0.6) {
        f.pb(i);
        pushed.fetch_add(1);
      } else if (f.popb()) {
        owner_popped.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> thieves;
  for (int t = 0; t < 2; ++t) {
    thieves.emplace_back([&] {
      sync.arrive_and_wait();
      for (int i = 0; i < kOwnerOps / 2; ++i) {
        if (f.popf()) stolen.fetch_add(1);
      }
    });
  }
  owner.join();
  for (auto& th : thieves) th.join();
  EXPECT_EQ(f.dq.size() + stolen.load() + owner_popped.load(), pushed.load());
}

TEST(TxnDeque, SequentialDifferentialAgainstStdDeque) {
  Fixture f;
  std::deque<long> model;
  Xoshiro256 rng(99);
  for (int i = 0; i < 4000; ++i) {
    switch (rng.below(4)) {
      case 0: {
        const long v = static_cast<long>(rng.below(1000));
        f.pf(v);
        model.push_front(v);
        break;
      }
      case 1: {
        const long v = static_cast<long>(rng.below(1000));
        f.pb(v);
        model.push_back(v);
        break;
      }
      case 2: {
        const auto got = f.popf();
        if (model.empty()) {
          ASSERT_EQ(got, std::nullopt) << "op " << i;
        } else {
          ASSERT_EQ(got, model.front()) << "op " << i;
          model.pop_front();
        }
        break;
      }
      default: {
        const auto got = f.popb();
        if (model.empty()) {
          ASSERT_EQ(got, std::nullopt) << "op " << i;
        } else {
          ASSERT_EQ(got, model.back()) << "op " << i;
          model.pop_back();
        }
        break;
      }
    }
    ASSERT_EQ(f.dq.size(), static_cast<long>(model.size()));
  }
}

TEST(TxnDeque, OppositeEndsDoNotConflictWhenLong) {
  // The commutativity the Front/Back decomposition buys: with a long deque,
  // front-poppers and back-pushers never conflict.
  Fixture f;
  for (long i = 0; i < 5000; ++i) f.dq.unsafe_push_back(i);
  f.stm.stats().reset();
  std::barrier sync(2);
  std::thread front([&] {
    sync.arrive_and_wait();
    for (int i = 0; i < 1000; ++i) f.popf();
  });
  std::thread back([&] {
    sync.arrive_and_wait();
    for (int i = 0; i < 1000; ++i) f.pb(i);
  });
  front.join();
  back.join();
  EXPECT_EQ(f.stm.stats().snapshot().total_aborts(), 0u);
  EXPECT_EQ(f.dq.size(), 5000);
}
