// STM-level differential property tests: random single-threaded programs
// of transactional reads/writes over a var array, mirrored against a plain
// array; every read's value and the final state must agree, including
// across injected aborts. Parameterized over (mode × seed).
#include <gtest/gtest.h>

#include <array>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "stm/stm.hpp"

using namespace proust::stm;

namespace {

struct InjectedAbort {};

using Param = std::tuple<Mode, std::uint64_t>;

class StmDifferentialTest : public ::testing::TestWithParam<Param> {
 protected:
  static constexpr int kVars = 24;
  Stm stm{std::get<0>(GetParam())};
  std::vector<Var<long>> vars{kVars};
  std::array<long, kVars> model{};
};

}  // namespace

TEST_P(StmDifferentialTest, RandomProgramsMatchModel) {
  proust::Xoshiro256 rng(std::get<1>(GetParam()) * 31 + 7);

  for (int t = 0; t < 600; ++t) {
    const int ops = 1 + static_cast<int>(rng.below(12));
    const bool abort = rng.uniform() < 0.3;
    const int abort_after =
        abort ? static_cast<int>(rng.below(static_cast<std::uint64_t>(ops)))
              : ops;
    struct Planned {
      bool is_write;
      int idx;
      long val;
    };
    std::vector<Planned> plan;
    for (int i = 0; i < ops; ++i) {
      plan.push_back({rng.uniform() < 0.5, static_cast<int>(rng.below(kVars)),
                      static_cast<long>(rng.below(100000))});
    }

    std::array<long, kVars> shadow = model;  // txn-local view of the model
    try {
      stm.atomically([&](Txn& tx) {
        shadow = model;  // reset per attempt
        for (int i = 0; i < ops; ++i) {
          if (i == abort_after) throw InjectedAbort{};
          const Planned& p = plan[i];
          if (p.is_write) {
            tx.write(vars[static_cast<std::size_t>(p.idx)], p.val);
            shadow[static_cast<std::size_t>(p.idx)] = p.val;
          } else {
            const long got = tx.read(vars[static_cast<std::size_t>(p.idx)]);
            ASSERT_EQ(got, shadow[static_cast<std::size_t>(p.idx)])
                << "txn " << t << " op " << i;
          }
        }
        if (abort && abort_after == ops) throw InjectedAbort{};
      });
      ASSERT_FALSE(abort);
      model = shadow;  // committed
    } catch (const InjectedAbort&) {
      ASSERT_TRUE(abort);
    }

    if (t % 40 == 0) {
      for (int i = 0; i < kVars; ++i) {
        ASSERT_EQ(vars[static_cast<std::size_t>(i)].unsafe_ref(),
                  model[static_cast<std::size_t>(i)])
            << "after txn " << t;
      }
    }
  }

  for (int i = 0; i < kVars; ++i) {
    EXPECT_EQ(vars[static_cast<std::size_t>(i)].unsafe_ref(),
              model[static_cast<std::size_t>(i)]);
  }
}

TEST_P(StmDifferentialTest, ReadValidateNeverChangesSemantics) {
  // Interleave read_validate calls (which log but return nothing) with
  // normal operations — they must not perturb values or commits.
  proust::Xoshiro256 rng(std::get<1>(GetParam()) ^ 0xBEEF);
  for (int t = 0; t < 200; ++t) {
    stm.atomically([&](Txn& tx) {
      for (int i = 0; i < 6; ++i) {
        const auto idx = static_cast<std::size_t>(rng.below(kVars));
        switch (rng.below(3)) {
          case 0: tx.write(vars[idx], static_cast<long>(t)); model[idx] = t; break;
          case 1: tx.read(vars[idx]); break;
          default: tx.read_validate(vars[idx]); break;
        }
      }
    });
  }
  for (int i = 0; i < kVars; ++i) {
    EXPECT_EQ(vars[static_cast<std::size_t>(i)].unsafe_ref(),
              model[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StmDifferentialTest,
    ::testing::Combine(::testing::Values(Mode::Lazy, Mode::EagerWrite,
                                         Mode::EagerAll),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });
