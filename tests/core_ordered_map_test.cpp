// Tests for the Proustian ordered map with the interval conflict
// abstraction (§1's non-intersecting-range commutativity, realized).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/txn_ordered_map.hpp"
#include "stm/stm.hpp"

using namespace proust;
using OptLap = core::OptimisticLap<std::size_t, core::StripeHasher>;
using PessLap = core::PessimisticLap<std::size_t, core::StripeHasher>;

namespace {
struct Fixture {
  static constexpr long kMin = 0, kMax = 1023;
  static constexpr std::size_t kStripes = 64;
  stm::Stm stm{stm::Mode::EagerAll};
  OptLap lap{stm, kStripes};
  core::TxnOrderedMap<long, OptLap> map{lap, kMin, kMax, kStripes};
};
}  // namespace

TEST(TxnOrderedMap, PointOpsRoundTrip) {
  Fixture f;
  f.stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(f.map.put(tx, 10, 100), std::nullopt);
    EXPECT_EQ(f.map.get(tx, 10), 100);
    EXPECT_EQ(f.map.put(tx, 10, 101), 100);
    EXPECT_EQ(f.map.remove(tx, 10), 101);
    EXPECT_FALSE(f.map.contains(tx, 10));
  });
}

TEST(TxnOrderedMap, RangeSumAndCount) {
  Fixture f;
  for (long k = 0; k < 100; ++k) f.map.unsafe_put(k, 1);
  f.stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(f.map.range_sum(tx, 0, 99), 100);
    EXPECT_EQ(f.map.range_sum(tx, 10, 19), 10);
    EXPECT_EQ(f.map.range_count(tx, 50, 54), 5);
    EXPECT_EQ(f.map.range_sum(tx, 200, 300), 0);
  });
}

TEST(TxnOrderedMap, RangeSeesOwnTxnUpdates) {
  // Eager updates: the base is mutated immediately, so a later range scan
  // within the same transaction observes the earlier puts.
  Fixture f;
  f.stm.atomically([&](stm::Txn& tx) {
    f.map.put(tx, 5, 50);
    f.map.put(tx, 6, 60);
    EXPECT_EQ(f.map.range_sum(tx, 0, 10), 110);
  });
}

TEST(TxnOrderedMap, CeilingKey) {
  Fixture f;
  f.map.unsafe_put(100, 1);
  f.map.unsafe_put(200, 2);
  f.stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(f.map.ceiling_key(tx, 50), 100);
    EXPECT_EQ(f.map.ceiling_key(tx, 150), 200);
    EXPECT_EQ(f.map.ceiling_key(tx, 201), std::nullopt);
  });
}

TEST(TxnOrderedMap, AbortRollsBackPointUpdates) {
  Fixture f;
  f.map.unsafe_put(7, 70);
  EXPECT_THROW(f.stm.atomically([&](stm::Txn& tx) {
                 f.map.put(tx, 7, -1);
                 f.map.put(tx, 8, -1);
                 f.map.remove(tx, 7);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  f.stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(f.map.get(tx, 7), 70);
    EXPECT_FALSE(f.map.contains(tx, 8));
    EXPECT_EQ(f.map.range_sum(tx, 0, 100), 70);
  });
  EXPECT_EQ(f.map.size(), 1);
}

TEST(TxnOrderedMap, DisjointRangesDoNotConflict) {
  // The §1 claim, observable through abort statistics: writers in one key
  // range and range queries over a disjoint range never conflict.
  Fixture f;
  for (long k = 0; k < 1024; ++k) f.map.unsafe_put(k, 1);
  f.stm.stats().reset();
  std::barrier sync(2);
  std::thread writer([&] {
    sync.arrive_and_wait();
    for (int i = 0; i < 2000; ++i) {
      // Writes confined to [0, 127] — stripes 0..7 of 64.
      f.stm.atomically(
          [&](stm::Txn& tx) { f.map.put(tx, i % 128, i); });
    }
  });
  std::thread scanner([&] {
    sync.arrive_and_wait();
    for (int i = 0; i < 300; ++i) {
      // Scans confined to [512, 1023] — stripes 32..63.
      f.stm.atomically(
          [&](stm::Txn& tx) { (void)f.map.range_sum(tx, 512, 1023); });
    }
  });
  writer.join();
  scanner.join();
  EXPECT_EQ(f.stm.stats().snapshot().total_aborts(), 0u)
      << "disjoint ranges must commute (no conflicts)";
}

TEST(TxnOrderedMap, OverlappingRangeAndWriteConflictIsDetected) {
  // Orchestrated on the Lazy STM (on EagerAll the writer would simply yield
  // to the scanner's reader bits): a scanner whose range was invalidated by
  // a conflicting committed write must retry — it never observes a torn
  // range.
  stm::Stm stm(stm::Mode::Lazy);
  OptLap lap(stm, Fixture::kStripes);
  core::TxnOrderedMap<long, OptLap> map(lap, Fixture::kMin, Fixture::kMax,
                                        Fixture::kStripes);
  for (long k = 0; k < 10; ++k) map.unsafe_put(k, 10);
  std::atomic<int> stage{0};
  long sum1 = -1, sum2 = -1;
  int attempts = 0;
  std::thread scanner([&] {
    stm.atomically([&](stm::Txn& tx) {
      ++attempts;
      sum1 = map.range_sum(tx, 0, 9);
      if (attempts == 1) {
        stage.store(1);
        while (stage.load() < 2) std::this_thread::yield();
      }
      sum2 = map.range_sum(tx, 0, 9);
    });
  });
  while (stage.load() < 1) std::this_thread::yield();
  stm.atomically([&](stm::Txn& tx) { map.put(tx, 5, 1000); });
  stage.store(2);
  scanner.join();
  EXPECT_EQ(sum1, sum2) << "a transaction must not observe a torn range";
  EXPECT_EQ(attempts, 2) << "the invalidated first attempt must retry";
  EXPECT_EQ(sum1, 9 * 10 + 1000) << "the retry sees the committed write";
}

TEST(TxnOrderedMap, ConcurrentTransfersPreserveRangeSum) {
  Fixture f;
  constexpr long kKeys = 256, kInitial = 10;
  for (long k = 0; k < kKeys; ++k) f.map.unsafe_put(k, kInitial);
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  std::atomic<long> bad_sums{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 71 + 9);
      for (int i = 0; i < 400; ++i) {
        const long a = static_cast<long>(rng.below(kKeys));
        const long b = static_cast<long>(rng.below(kKeys));
        if (a == b) continue;
        f.stm.atomically([&](stm::Txn& tx) {
          const long va = f.map.get(tx, a).value();
          if (va > 0) {
            f.map.put(tx, a, va - 1);
            f.map.put(tx, b, f.map.get(tx, b).value() + 1);
          }
        });
        if (i % 50 == 0) {
          const long total = f.stm.atomically(
              [&](stm::Txn& tx) { return f.map.range_sum(tx, 0, kKeys - 1); });
          if (total != kKeys * kInitial) bad_sums.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bad_sums.load(), 0);
  const long total = f.stm.atomically(
      [&](stm::Txn& tx) { return f.map.range_sum(tx, 0, kKeys - 1); });
  EXPECT_EQ(total, kKeys * kInitial);
}

TEST(TxnOrderedMap, PopFirstDrainsInKeyOrder) {
  Fixture f;
  for (long k : {30L, 10L, 20L}) f.map.unsafe_put(k, k * 10);
  f.stm.atomically([&](stm::Txn& tx) {
    auto a = f.map.pop_first(tx, 0);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->first, 10);
    EXPECT_EQ(a->second, 100);
    auto b = f.map.pop_first(tx, 0);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->first, 20);
  });
  EXPECT_EQ(f.map.size(), 1);
}

TEST(TxnOrderedMap, PopFirstRespectsLowerBound) {
  Fixture f;
  f.map.unsafe_put(5, 50);
  f.map.unsafe_put(15, 150);
  f.stm.atomically([&](stm::Txn& tx) {
    auto got = f.map.pop_first(tx, 10);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->first, 15);
    EXPECT_EQ(f.map.pop_first(tx, 10), std::nullopt);
    EXPECT_TRUE(f.map.contains(tx, 5));
  });
}

TEST(TxnOrderedMap, ConcurrentPopFirstsClaimDistinctKeys) {
  Fixture f;
  constexpr long kN = 200;
  for (long k = 0; k < kN; ++k) f.map.unsafe_put(k, k);
  std::vector<std::vector<long>> claimed(4);
  std::barrier sync(4);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < kN / 4; ++i) {
        const auto got = f.stm.atomically(
            [&](stm::Txn& tx) { return f.map.pop_first(tx, 0); });
        if (got) claimed[t].push_back(got->first);
      }
    });
  }
  for (auto& th : ts) th.join();
  std::set<long> all;
  std::size_t count = 0;
  for (auto& v : claimed) {
    for (long k : v) {
      all.insert(k);
      ++count;
    }
  }
  EXPECT_EQ(all.size(), count) << "a key was claimed twice";
  EXPECT_EQ(static_cast<long>(count) + f.map.size(), kN);
}

TEST(TxnOrderedMap, PessimisticLapVariantWorks) {
  stm::Stm stm(stm::Mode::Lazy);
  PessLap lap(stm, 64);
  core::TxnOrderedMap<long, PessLap> map(lap, 0, 1023, 64);
  for (long k = 0; k < 64; ++k) map.unsafe_put(k, 1);
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 3);
      for (int i = 0; i < 300; ++i) {
        const long a = static_cast<long>(rng.below(64));
        const long b = static_cast<long>(rng.below(64));
        if (a == b) continue;
        stm.atomically([&](stm::Txn& tx) {
          const long va = map.get(tx, a).value();
          if (va > 0) {
            map.put(tx, a, va - 1);
            map.put(tx, b, map.get(tx, b).value() + 1);
          }
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  const long total =
      stm.atomically([&](stm::Txn& tx) { return map.range_sum(tx, 0, 63); });
  EXPECT_EQ(total, 64);
}
