// The steady-state zero-allocation invariant (DESIGN.md "Transaction memory
// layout & hot path"): after a short warm-up, a transaction attempt — reads,
// writes (both index tiers), hooks, locals, commit or retry — performs zero
// heap allocations. Verified with a counting global operator new.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/lap.hpp"
#include "core/lazy_hash_map.hpp"
#include "core/txn_hash_map.hpp"
#include "stm/stm.hpp"

namespace {
std::atomic<std::size_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace proust::stm;

namespace {

/// Run `body` `warmup` times, then `measured` times, and return the number
/// of operator-new calls made during the measured phase.
template <class Body>
std::size_t allocations_in_steady_state(Body&& body, int warmup = 128,
                                        int measured = 1024) {
  for (int i = 0; i < warmup; ++i) body(i);
  const std::size_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < measured; ++i) body(i);
  return g_news.load(std::memory_order_relaxed) - before;
}

class ZeroAllocTest : public ::testing::TestWithParam<Mode> {};

TEST_P(ZeroAllocTest, SmallWriteSetAttemptsAllocateNothing) {
  Stm stm(GetParam());
  std::vector<Var<long>> vars(4);
  const std::size_t n = allocations_in_steady_state([&](int i) {
    stm.atomically([&](Txn& tx) {
      for (auto& v : vars) tx.write(v, tx.read(v) + i);
    });
  });
  EXPECT_EQ(n, 0u);
}

TEST_P(ZeroAllocTest, LargeWriteSetAttemptsAllocateNothing) {
  // 100 vars: flat-table tier, pool-chunk growth, table rehash — all during
  // warm-up; steady state reuses every structure.
  Stm stm(GetParam());
  std::vector<Var<long>> vars(100);
  const std::size_t n = allocations_in_steady_state([&](int i) {
    stm.atomically([&](Txn& tx) {
      for (auto& v : vars) tx.write(v, long{i});
    });
  });
  EXPECT_EQ(n, 0u);
}

TEST_P(ZeroAllocTest, OversizedValuesReuseRetainedBuffers) {
  // 64-byte values exceed ValBuf's 32-byte inline storage; the heap buffers
  // are allocated on first use and retained by the pool afterwards.
  struct Big {
    long a[8];
  };
  Stm stm(GetParam());
  std::vector<Var<Big>> vars(12);
  const std::size_t n = allocations_in_steady_state([&](int i) {
    stm.atomically([&](Txn& tx) {
      for (auto& v : vars) tx.write(v, Big{{long{i}}});
    });
  });
  EXPECT_EQ(n, 0u);
}

TEST_P(ZeroAllocTest, ReadOnlyAttemptsAllocateNothing) {
  Stm stm(GetParam());
  std::vector<Var<long>> vars(16);
  long sink = 0;
  const std::size_t n = allocations_in_steady_state([&](int) {
    sink += stm.atomically([&](Txn& tx) {
      long s = 0;
      for (auto& v : vars) s += tx.read(v);
      return s;
    });
  });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(sink, 0);
}

TEST_P(ZeroAllocTest, HooksAndLocalsAllocateNothing) {
  Stm stm(GetParam());
  Var<long> v;
  int key = 0;
  long observed = 0;
  const std::size_t n = allocations_in_steady_state([&](int i) {
    stm.atomically([&](Txn& tx) {
      long& acc = tx.local<long>(&key, [] { return 0L; });
      acc += i;
      tx.write(v, acc);
      tx.on_commit([&observed, &acc] { observed = acc; });
      tx.on_finish([](Outcome) {});
    });
  });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(observed, v.unsafe_ref());
}

TEST_P(ZeroAllocTest, RetriesAfterAbortAllocateNothing) {
  // A retry re-runs the attempt against the same arena; the abort/rollback
  // path (undo, lock release, reset) must not allocate either. The throw
  // itself uses the runtime's exception allocator, not operator new.
  Stm stm(GetParam(), StmOptions{.cm_policy = CmPolicy::None});
  std::vector<Var<long>> vars(10);
  const std::size_t n = allocations_in_steady_state([&](int i) {
    stm.atomically([&](Txn& tx) {
      for (auto& v : vars) tx.write(v, long{i});
      if (tx.attempt() % 2 == 1) tx.retry();  // every txn aborts once
    });
  });
  EXPECT_EQ(n, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ZeroAllocTest,
                         ::testing::Values(Mode::Lazy, Mode::EagerWrite,
                                           Mode::EagerAll),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// --- MVCC mode --------------------------------------------------------------
// Version-chain nodes come from the per-slot VersionPool and recycle through
// EBR limbo back into it: after warm-up (which sizes the pool to cover the
// chain + limbo in flight), writer commits, truncation, reclamation and
// snapshot reads must all be heap-free.

TEST(ZeroAllocMvcc, WriterCommitsRecycleChainNodes) {
  Stm stm(Mode::Lazy, StmOptions{.mvcc = true});
  std::vector<Var<long>> vars(4);
  const std::size_t n = allocations_in_steady_state(
      [&](int i) {
        stm.atomically([&](Txn& tx) {
          for (auto& v : vars) tx.write(v, tx.read(v) + i);
        });
      },
      /*warmup=*/512);
  EXPECT_EQ(n, 0u);
  EXPECT_GT(stm.stats().snapshot().mvcc_reclaimed, 0u)
      << "steady state never recycled a chain node";
}

TEST(ZeroAllocMvcc, SnapshotReadersAllocateNothing) {
  Stm stm(Mode::Lazy, StmOptions{.mvcc = true});
  std::vector<Var<long>> vars(16);
  for (auto& v : vars) {
    stm.atomically([&](Txn& tx) { tx.write(v, 1L); });
  }
  long sink = 0;
  const std::size_t n = allocations_in_steady_state([&](int) {
    sink += stm.atomically_ro([&](Txn& tx) {
      long s = 0;
      for (auto& v : vars) s += tx.read(v);
      return s;
    });
  });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(sink % 16, 0);
}

TEST(ZeroAllocMvcc, MixedWriterAndReaderSteadyStateAllocatesNothing) {
  // Interleaved writer transactions (chain push + truncate + EBR retire)
  // and declared read-only snapshots (pin, chain walk, unpin) on one thread.
  Stm stm(Mode::Lazy, StmOptions{.mvcc = true});
  std::vector<Var<long>> vars(8);
  long sink = 0;
  const std::size_t n = allocations_in_steady_state(
      [&](int i) {
        stm.atomically([&](Txn& tx) {
          for (auto& v : vars) tx.write(v, long{i});
        });
        sink += stm.atomically_ro([&](Txn& tx) {
          long s = 0;
          for (auto& v : vars) s += tx.read(v);
          return s;
        });
      },
      /*warmup=*/512);
  EXPECT_EQ(n, 0u);
  EXPECT_GT(sink, 0);
}

// --- The Proust layer on top of the STM ------------------------------------
// The abstract-lock fast path and the arena-backed replay logs must preserve
// the zero-allocation invariant end to end. The loops put/get fixed existing
// keys: replacing a present key in StripedHashMap is allocation-free, so any
// count here comes from the Proust machinery itself.

TEST(ZeroAllocProust, BoostedMapSteadyStateAllocatesNothing) {
  // Eager map over pessimistic abstract locks (the Boosting quadrant):
  // lock acquire/release, hold records, inverse hooks, committed size.
  Stm stm(Mode::Lazy);
  proust::core::PessimisticLap<long> lap(stm, 64);
  proust::core::TxnHashMap<long, long, proust::core::PessimisticLap<long>>
      map(lap);
  for (long k = 0; k < 4; ++k) {
    stm.atomically([&](Txn& tx) { map.put(tx, k, k); });
  }
  const std::size_t n = allocations_in_steady_state([&](int i) {
    stm.atomically([&](Txn& tx) {
      for (long k = 0; k < 4; ++k) {
        map.put(tx, k, long{i});
        map.get(tx, k);
      }
    });
  });
  EXPECT_EQ(n, 0u);
}

TEST(ZeroAllocProust, LazyMapSteadyStateAllocatesNothing) {
  // Lazy memoizing map over the optimistic LAP: replay-log construction,
  // memo-table inserts and growth, op-log appends, commit-time replay.
  Stm stm(Mode::Lazy);
  proust::core::OptimisticLap<long> lap(stm, 64);
  proust::core::LazyHashMap<long, long, proust::core::OptimisticLap<long>>
      map(lap, /*combine=*/false);
  for (long k = 0; k < 4; ++k) map.unsafe_put(k, k);
  const std::size_t n = allocations_in_steady_state([&](int i) {
    stm.atomically([&](Txn& tx) {
      for (long k = 0; k < 4; ++k) {
        map.put(tx, k, long{i});
        map.get(tx, k);
      }
    });
  });
  EXPECT_EQ(n, 0u);
}

TEST(ZeroAllocProust, ZeroAllocReadPath) {
  // The optimistic read fast path with heap-heavy keys. The old
  // initializer-list admission built a LockFor<K> per call — for string
  // keys beyond SSO that was one heap allocation per get/contains; the
  // by-ref overloads plus the unlocked fast path must be allocation-free
  // end to end, and the reads must actually take the fast path.
  Stm stm(Mode::Lazy, StmOptions{.optimistic_reads = true});
  proust::core::PessimisticLap<std::string> lap(stm, 64);
  proust::core::TxnHashMap<std::string, long,
                           proust::core::PessimisticLap<std::string>>
      map(lap);
  std::vector<std::string> keys;
  for (int k = 0; k < 4; ++k) {
    keys.push_back("a key long enough to defeat small-string storage #" +
                   std::to_string(k));
  }
  for (const auto& k : keys) {
    stm.atomically([&](Txn& tx) { map.put(tx, k, 1); });
  }
  long sink = 0;
  const std::size_t n = allocations_in_steady_state([&](int) {
    stm.atomically([&](Txn& tx) {
      for (const auto& k : keys) {
        sink += map.get(tx, k).value_or(0);
        if (map.contains(tx, k)) ++sink;
      }
    });
  });
  EXPECT_EQ(n, 0u);
  EXPECT_GT(sink, 0);
  EXPECT_GT(stm.stats().snapshot().fastpath_hits, 0u)
      << "reads never took the unlocked fast path";
}

TEST(ZeroAllocProust, LazyPessimisticCombiningAllocatesNothing) {
  // The sound lazy/pessimistic cell with log combining: abstract locks plus
  // the dirty-tracking memo table in one loop.
  Stm stm(Mode::Lazy);
  proust::core::PessimisticLap<long> lap(stm, 64);
  proust::core::LazyHashMap<long, long, proust::core::PessimisticLap<long>>
      map(lap, /*combine=*/true);
  for (long k = 0; k < 4; ++k) map.unsafe_put(k, k);
  const std::size_t n = allocations_in_steady_state([&](int i) {
    stm.atomically([&](Txn& tx) {
      for (long k = 0; k < 4; ++k) {
        map.put(tx, k, long{i});
        map.get(tx, k);
      }
    });
  });
  EXPECT_EQ(n, 0u);
}

}  // namespace
