// Semantic tests run against EVERY transactional map configuration in the
// design space (see map_configs.hpp): the same abstract-map contract must
// hold regardless of LAP, update strategy, shadow-copy flavour or STM mode.
#include <gtest/gtest.h>

#include <stdexcept>

#include "map_configs.hpp"

using namespace proust::testing;

class CoreMapTest : public ::testing::TestWithParam<MapConfig> {
 protected:
  void SetUp() override { map_ = GetParam().make(); }
  std::unique_ptr<MapUnderTest> map_;
};

TEST_P(CoreMapTest, PutGetRoundTrip) {
  EXPECT_EQ(map_->put1(1, 10), std::nullopt);
  EXPECT_EQ(map_->get1(1), 10);
  EXPECT_EQ(map_->put1(1, 11), 10);
  EXPECT_EQ(map_->get1(1), 11);
}

TEST_P(CoreMapTest, GetAbsent) {
  EXPECT_EQ(map_->get1(404), std::nullopt);
  EXPECT_FALSE(map_->contains1(404));
}

TEST_P(CoreMapTest, RemoveSemantics) {
  map_->put1(2, 20);
  EXPECT_EQ(map_->remove1(2), 20);
  EXPECT_EQ(map_->remove1(2), std::nullopt);
  EXPECT_EQ(map_->get1(2), std::nullopt);
}

TEST_P(CoreMapTest, ContainsReflectsState) {
  EXPECT_FALSE(map_->contains1(3));
  map_->put1(3, 30);
  EXPECT_TRUE(map_->contains1(3));
  map_->remove1(3);
  EXPECT_FALSE(map_->contains1(3));
}

TEST_P(CoreMapTest, CommittedSizeTracksNetInserts) {
  if (map_->committed_size() < 0) GTEST_SKIP() << "size unsupported";
  EXPECT_EQ(map_->committed_size(), 0);
  map_->put1(1, 1);
  map_->put1(2, 2);
  map_->put1(2, 22);  // overwrite: no size change
  EXPECT_EQ(map_->committed_size(), 2);
  map_->remove1(1);
  map_->remove1(99);  // absent: no size change
  EXPECT_EQ(map_->committed_size(), 1);
}

TEST_P(CoreMapTest, ReadYourOwnWritesWithinTxn) {
  map_->atomically([](MapView& m) {
    EXPECT_EQ(m.put(5, 50), std::nullopt);
    EXPECT_EQ(m.get(5), 50);
    EXPECT_EQ(m.put(5, 51), 50);
    EXPECT_EQ(m.get(5), 51);
  });
  EXPECT_EQ(map_->get1(5), 51);
}

TEST_P(CoreMapTest, RemoveThenPutWithinTxn) {
  map_->put1(6, 60);
  map_->atomically([](MapView& m) {
    EXPECT_EQ(m.remove(6), 60);
    EXPECT_EQ(m.get(6), std::nullopt);
    EXPECT_EQ(m.put(6, 61), std::nullopt);
    EXPECT_EQ(m.get(6), 61);
  });
  EXPECT_EQ(map_->get1(6), 61);
}

TEST_P(CoreMapTest, GetAfterRemoveInTxnIsAbsent) {
  map_->put1(7, 70);
  map_->atomically([](MapView& m) {
    m.remove(7);
    EXPECT_FALSE(m.contains(7));
    EXPECT_EQ(m.remove(7), std::nullopt);  // idempotent within txn
  });
  EXPECT_FALSE(map_->contains1(7));
}

TEST_P(CoreMapTest, MultiKeyTxnCommitsAtomically) {
  map_->atomically([](MapView& m) {
    m.put(10, 100);
    m.put(11, 110);
    m.put(12, 120);
  });
  map_->atomically([](MapView& m) {
    EXPECT_EQ(m.get(10), 100);
    EXPECT_EQ(m.get(11), 110);
    EXPECT_EQ(m.get(12), 120);
  });
}

TEST_P(CoreMapTest, UserExceptionRollsBackAllUpdates) {
  map_->put1(20, 200);
  map_->put1(21, 210);
  EXPECT_THROW(map_->atomically([](MapView& m) {
                 m.put(20, -1);
                 m.remove(21);
                 m.put(22, -1);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(map_->get1(20), 200);
  EXPECT_EQ(map_->get1(21), 210);
  EXPECT_EQ(map_->get1(22), std::nullopt);
}

TEST_P(CoreMapTest, AbortedTxnDoesNotChangeSize) {
  if (map_->committed_size() < 0) GTEST_SKIP() << "size unsupported";
  map_->put1(30, 300);
  EXPECT_THROW(map_->atomically([](MapView& m) {
                 m.put(31, 310);
                 m.remove(30);
                 throw std::logic_error("abort");
               }),
               std::logic_error);
  EXPECT_EQ(map_->committed_size(), 1);
}

TEST_P(CoreMapTest, AbortThenRetrySucceeds) {
  int attempts = 0;
  map_->atomically([&](MapView& m) {
    ++attempts;
    m.put(40, attempts);
    if (attempts == 1) {
      throw proust::stm::ConflictAbort{proust::stm::AbortReason::Explicit};
    }
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(map_->get1(40), 2);
}

TEST_P(CoreMapTest, OverwriteChainReturnsPriorValues) {
  EXPECT_EQ(map_->put1(50, 1), std::nullopt);
  EXPECT_EQ(map_->put1(50, 2), 1);
  EXPECT_EQ(map_->put1(50, 3), 2);
  EXPECT_EQ(map_->remove1(50), 3);
}

TEST_P(CoreMapTest, ManyKeysSingleTxn) {
  map_->atomically([](MapView& m) {
    for (long k = 0; k < 200; ++k) m.put(k, k * 7);
  });
  map_->atomically([](MapView& m) {
    for (long k = 0; k < 200; ++k) EXPECT_EQ(m.get(k), k * 7);
  });
  if (map_->committed_size() >= 0) {
    EXPECT_EQ(map_->committed_size(), 200);
  }
}

TEST_P(CoreMapTest, InterleavedTxnsSeeCommittedStateOnly) {
  map_->put1(60, 600);
  map_->atomically([](MapView& m) {
    m.put(60, 601);
    // A second (flat-nested) read sees the transaction's own view.
    EXPECT_EQ(m.get(60), 601);
  });
  EXPECT_EQ(map_->get1(60), 601);
}

TEST_P(CoreMapTest, PutRemovePingPongKeepsConsistency) {
  for (int round = 0; round < 50; ++round) {
    map_->atomically([&](MapView& m) {
      m.put(70, round);
      m.remove(70);
      m.put(70, round + 1000);
    });
    EXPECT_EQ(map_->get1(70), round + 1000);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CoreMapTest, ::testing::ValuesIn(all_map_configs()),
    [](const auto& info) { return info.param.name; });
