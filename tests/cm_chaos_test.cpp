// Chaos-differential matrix over contention-management policy × global-clock
// scheme (ctest label "cm"). Every CM decision is a pure function of
// published priorities — the CM consumes nothing from the chaos decision
// streams — so fault-injected runs stay reproducible under every policy, and
// a single-threaded run must replay bit-exactly regardless of which CM is
// active. The multi-threaded sweep drives the full arbitration surface
// (dooming, bounded waits, elder recovery, the fallback gate, admission
// throttling) under injected aborts/delays/timeouts and checks the committed
// state against a mutex-guarded reference.
//
// Reproduce a failure with PROUST_CHAOS_SEED=<printed seed>, as in
// tests/chaos_test.cpp.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "map_configs.hpp"
#include "stm/chaos.hpp"
#include "stm/contention.hpp"

using namespace proust::testing;
namespace stm = proust::stm;

namespace {

std::uint64_t base_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = 0xCA71057u;
    if (const char* env = std::getenv("PROUST_CHAOS_SEED")) {
      s = std::strtoull(env, nullptr, 0);
    }
    std::fprintf(stderr,
                 "[cm-chaos] base seed %llu (override: PROUST_CHAOS_SEED)\n",
                 static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

struct Planned {
  int kind;
  long k, v;
};

/// Same differential harness as tests/chaos_test.cpp: randomized planned
/// transactions with the reference folded in via on_commit_locked.
std::map<long, long> run_differential(MapUnderTest& map, std::uint64_t seed,
                                      int threads, int txns_per_thread,
                                      long keys) {
  std::mutex ref_mu;
  std::map<long, long> reference;
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      proust::Xoshiro256 rng(seed * 6364136223846793005ULL + t * 1442695041ULL +
                             1);
      for (int i = 0; i < txns_per_thread; ++i) {
        const int ops = 1 + static_cast<int>(rng.below(5));
        std::vector<Planned> plan;
        for (int j = 0; j < ops; ++j) {
          plan.push_back({static_cast<int>(rng.below(3)),
                          static_cast<long>(
                              rng.below(static_cast<std::uint64_t>(keys))),
                          static_cast<long>(rng.below(1000))});
        }
        std::vector<char> removed(plan.size(), 0);
        map.atomically_tx([&](MapView& m, stm::Txn& tx) {
          tx.on_commit_locked([&] {
            std::lock_guard<std::mutex> g(ref_mu);
            for (std::size_t j = 0; j < plan.size(); ++j) {
              const Planned& p = plan[j];
              if (p.kind == 0) {
                reference[p.k] = p.v;
              } else if (p.kind == 1 && removed[j]) {
                // See chaos_test.cpp: a no-op remove's hook is unordered
                // against concurrent writers of the same key; skipping it
                // keeps the fold exact in either serialization order.
                reference.erase(p.k);
              }
            }
          });
          for (std::size_t j = 0; j < plan.size(); ++j) {
            const Planned& p = plan[j];
            switch (p.kind) {
              case 0: m.put(p.k, p.v); break;
              case 1: removed[j] = m.remove(p.k).has_value(); break;
              default: m.get(p.k); break;
            }
          }
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  return reference;
}

void expect_map_equals(MapUnderTest& map, const std::map<long, long>& reference,
                       long keys) {
  for (long k = 0; k < keys; ++k) {
    auto it = reference.find(k);
    std::optional<long> expected =
        it == reference.end() ? std::nullopt : std::make_optional(it->second);
    ASSERT_EQ(map.get1(k), expected) << "key " << k;
  }
  if (map.committed_size() >= 0) {
    EXPECT_EQ(map.committed_size(), static_cast<long>(reference.size()));
  }
}

MapConfig config_named(const std::string& name) {
  for (auto& c : all_map_configs()) {
    if (c.name == name) return c;
  }
  ADD_FAILURE() << "unknown map config " << name;
  return {};
}

using Param = std::tuple<stm::CmPolicy, stm::ClockScheme>;

class CmChaosMatrixTest : public ::testing::TestWithParam<Param> {};

}  // namespace

TEST_P(CmChaosMatrixTest, DifferentialUnderInjection) {
  const auto [policy, scheme] = GetParam();
  const std::uint64_t seed = base_seed() +
                             static_cast<std::uint64_t>(policy) * 31 +
                             static_cast<std::uint64_t>(scheme) * 7;
  SCOPED_TRACE("chaos seed " + std::to_string(seed));

  stm::StmOptions opts;
  opts.cm_policy = policy;
  opts.clock_scheme = scheme;
  // Small threshold so the gate × CM × elder interplay is exercised too
  // (injected ChaosInjected aborts stay exempt from it).
  opts.fallback_after = 6;
  opts.cm_elder_after = 4;
  opts.lap_timeout = std::chrono::milliseconds(1);

  // Two quadrants with different conflict machinery: pure-STM conflicts
  // (lazy memo table) and Boosting-style abstract locks (whose park loops
  // consult the CM's lock arbiter).
  for (const char* cfg_name : {"lazy_memo_lazystm", "eager_pess"}) {
    SCOPED_TRACE(cfg_name);
    stm::ChaosPolicy chaos(stm::ChaosConfig::standard(seed));
    chaos.install_lock_hook();
    opts.chaos = &chaos;
    auto map = config_named(cfg_name).make_with(opts);
    map->stm().cm().install_lock_arbiter();

    const long kKeys = 16;
    const auto reference = run_differential(*map, seed, 4, 100, kKeys);

    map->stm().cm().remove_lock_arbiter();
    chaos.remove_lock_hook();
    expect_map_equals(*map, reference, kKeys);
    EXPECT_EQ(chaos.leaks(), 0u);
    EXPECT_GT(chaos.injected_total(), 0u);
    opts.chaos = nullptr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CmChaosMatrixTest,
    ::testing::Combine(::testing::Values(stm::CmPolicy::ExponentialBackoff,
                                         stm::CmPolicy::Karma,
                                         stm::CmPolicy::TimestampAging),
                       ::testing::Values(stm::ClockScheme::IncOnCommit,
                                         stm::ClockScheme::PassOnFailure,
                                         stm::ClockScheme::LazyBump)),
    [](const auto& info) {
      return std::string(stm::to_string(std::get<0>(info.param))) + "_" +
             stm::to_string(std::get<1>(info.param));
    });

TEST(CmChaosAdmissionTest, ThrottledSweepStaysExact) {
  // Admission control sheds parallelism under the injected abort storm; the
  // committed state must stay exact and the throttle counters must show the
  // controller actually engaged (it adapts, so only the wait *counters* are
  // asserted, not a specific limit).
  const std::uint64_t seed = base_seed() + 271;
  SCOPED_TRACE("chaos seed " + std::to_string(seed));

  stm::ChaosPolicy chaos(stm::ChaosConfig::aggressive(seed));
  chaos.install_lock_hook();
  stm::StmOptions opts;
  opts.chaos = &chaos;
  opts.cm_policy = stm::CmPolicy::TimestampAging;
  opts.clock_scheme = stm::ClockScheme::LazyBump;
  opts.admission_control = true;
  opts.admission_window = 64;
  opts.admission_min_tokens = 1;
  opts.admission_max_tokens = 2;  // 4 threads over 2 tokens: must throttle
  opts.lap_timeout = std::chrono::milliseconds(1);
  auto map = config_named("lazy_memo_lazystm").make_with(opts);
  map->stm().cm().install_lock_arbiter();

  const long kKeys = 16;
  const auto reference = run_differential(*map, seed, 4, 80, kKeys);

  map->stm().cm().remove_lock_arbiter();
  chaos.remove_lock_hook();
  expect_map_equals(*map, reference, kKeys);
  EXPECT_EQ(chaos.leaks(), 0u);
  const stm::StatsSnapshot s = map->stats();
  EXPECT_GE(s.throttle_waits, 1u);
  EXPECT_GT(s.throttle_ns, 0u);
}

TEST(CmChaosDeterminismTest, CmPolicyLeavesDecisionStreamsUntouched) {
  // The determinism contract: switching the contention manager must not
  // shift the chaos decision streams, so a single-threaded fault-injected
  // run replays bit-exactly under ANY policy — same committed state, same
  // attempt counts, same per-point injection totals.
  const std::uint64_t seed = base_seed() + 99;
  auto run = [&](stm::CmPolicy policy, std::map<long, long>& out_state,
                 stm::StatsSnapshot& out_stats,
                 std::array<std::uint64_t, stm::kNumChaosPoints>& out_inj) {
    stm::ChaosPolicy chaos(stm::ChaosConfig::aggressive(seed));
    stm::StmOptions opts;
    opts.chaos = &chaos;
    opts.cm_policy = policy;
    opts.clock_scheme = stm::ClockScheme::PassOnFailure;
    auto map = config_named("lazy_memo_lazystm").make_with(opts);
    proust::Xoshiro256 rng(seed);
    for (int i = 0; i < 300; ++i) {
      const long k = static_cast<long>(rng.below(16));
      const long v = static_cast<long>(rng.below(1000));
      switch (rng.below(3)) {
        case 0: map->put1(k, v); break;
        case 1: map->remove1(k); break;
        default: map->get1(k); break;
      }
    }
    for (long k = 0; k < 16; ++k) {
      if (auto v = map->get1(k)) out_state[k] = *v;
    }
    out_stats = map->stats();
    out_inj = chaos.injected_totals();
    EXPECT_EQ(chaos.leaks(), 0u);
  };

  std::map<long, long> s_none, s_aging, s_karma;
  stm::StatsSnapshot st_none, st_aging, st_karma;
  std::array<std::uint64_t, stm::kNumChaosPoints> inj_none{}, inj_aging{},
      inj_karma{};
  run(stm::CmPolicy::None, s_none, st_none, inj_none);
  run(stm::CmPolicy::TimestampAging, s_aging, st_aging, inj_aging);
  run(stm::CmPolicy::Karma, s_karma, st_karma, inj_karma);

  EXPECT_EQ(s_none, s_aging);
  EXPECT_EQ(s_none, s_karma);
  EXPECT_EQ(st_none.starts, st_aging.starts);
  EXPECT_EQ(st_none.starts, st_karma.starts);
  EXPECT_EQ(st_none.commits, st_aging.commits);
  EXPECT_EQ(st_none.total_aborts(), st_aging.total_aborts());
  EXPECT_EQ(inj_none, inj_aging);
  EXPECT_EQ(inj_none, inj_karma);
  EXPECT_GT(st_none.total_injected(), 0u);
}
