// Tests for the conflict-abstraction checker (§3 "Correctness", Appendix E):
// published CAs verify, broken CAs are refuted with counterexamples, and the
// checker's own commutativity judgments are validated.
#include <gtest/gtest.h>

#include "verify/checker.hpp"

using namespace proust::verify;

TEST(Commutes, CounterBasics) {
  const ModelSpec m = make_counter_model(6);
  const MethodSpec& incr = m.methods[0];
  const MethodSpec& decr = m.methods[1];
  // incr/incr commute everywhere (below the clamp).
  EXPECT_TRUE(commutes(m, 0, incr, {}, incr, {}));
  EXPECT_TRUE(commutes(m, 3, incr, {}, incr, {}));
  // incr/decr at 0: decr's error depends on order.
  EXPECT_FALSE(commutes(m, 0, incr, {}, decr, {}));
  // incr/decr at 1: both orders leave 1 and decr succeeds in both.
  EXPECT_TRUE(commutes(m, 1, incr, {}, decr, {}));
  // decr/decr at 1: one succeeds, one errors — order-dependent.
  EXPECT_FALSE(commutes(m, 1, decr, {}, decr, {}));
  // decr/decr at 2: both succeed in both orders.
  EXPECT_TRUE(commutes(m, 2, decr, {}, decr, {}));
  // decr/decr at 0: both error in both orders.
  EXPECT_TRUE(commutes(m, 0, decr, {}, decr, {}));
}

TEST(Commutes, MapBasics) {
  const ModelSpec m = make_map_model(2, 2);
  const MethodSpec& get = m.methods[0];
  const MethodSpec& put = m.methods[2];
  const MethodSpec& rem = m.methods[3];
  // Distinct keys always commute.
  EXPECT_TRUE(commutes(m, 0, put, {0, 1}, put, {1, 2}));
  EXPECT_TRUE(commutes(m, 0, get, {0}, put, {1, 1}));
  // Same key: put/put with different values don't commute.
  EXPECT_FALSE(commutes(m, 0, put, {0, 1}, put, {0, 2}));
  // get/put on the same key don't commute when the value changes.
  EXPECT_FALSE(commutes(m, 0, get, {0}, put, {0, 1}));
  // get/get always commute.
  EXPECT_TRUE(commutes(m, 0, get, {0}, get, {0}));
  // remove/remove on the same key: second returns absent either way only if
  // state had no mapping.
  EXPECT_TRUE(commutes(m, 0, rem, {0}, rem, {0}));  // both absent
}

TEST(CheckCA, CounterPaperCAIsCorrect) {
  const auto cex =
      check_conflict_abstraction(make_counter_model(6), counter_ca_paper());
  EXPECT_FALSE(cex.has_value()) << cex->detail;
}

TEST(CheckCA, CounterThreshold1IsRefuted) {
  const auto cex = check_conflict_abstraction(make_counter_model(6),
                                              counter_ca_threshold1());
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->state, 1);
  EXPECT_EQ(cex->m.method, "decr");
  EXPECT_EQ(cex->n.method, "decr");
}

TEST(CheckCA, StripedMapCAIsCorrectForAllM) {
  const ModelSpec m = make_map_model(3, 2);
  for (int M : {1, 2, 3, 4, 8}) {
    const auto cex = check_conflict_abstraction(m, map_ca_striped(M));
    EXPECT_FALSE(cex.has_value()) << "M=" << M << ": " << cex->detail;
  }
}

TEST(CheckCA, ReadlessMapCAIsRefuted) {
  const auto cex =
      check_conflict_abstraction(make_map_model(2, 2), map_ca_readless());
  ASSERT_TRUE(cex.has_value());
  // The missed conflict must involve a reader (get/contains) vs an update.
  const bool reader_involved = cex->m.method == "get" ||
                               cex->m.method == "contains" ||
                               cex->n.method == "get" ||
                               cex->n.method == "contains";
  EXPECT_TRUE(reader_involved) << cex->detail;
}

TEST(CheckCA, PQueueOurCAIsCorrect) {
  const auto cex = check_conflict_abstraction(make_pqueue_model(3, 4),
                                              pqueue_ca_ours(3, 4));
  EXPECT_FALSE(cex.has_value()) << cex->detail;
}

TEST(CheckCA, PQueueFigure3LiteralIsRefutedOnEmptyQueue) {
  // The empty-queue insert that only Reads PQueueMin misses its conflict
  // with min()/removeMin() — the deviation documented in txn_pqueue.hpp.
  const auto cex = check_conflict_abstraction(make_pqueue_model(3, 4),
                                              pqueue_ca_figure3_literal(3, 4));
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->m.method, "insert");
  // The partner is one of the min-observing operations.
  EXPECT_TRUE(cex->n.method == "min" || cex->n.method == "removeMin")
      << cex->detail;
}

TEST(CheckCA, QueueHeadTailCAIsCorrect) {
  // Validates core::TxnQueue's conflict abstraction analytically.
  const auto cex = check_conflict_abstraction(make_queue_model(2, 4),
                                              queue_ca_ours(2, 4));
  EXPECT_FALSE(cex.has_value()) << cex->detail;
}

TEST(CheckCA, QueueWithoutEmptyReadIsRefuted) {
  const auto cex = check_conflict_abstraction(make_queue_model(2, 4),
                                              queue_ca_no_empty_read(2, 4));
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->state, 0) << "the miss is deq-on-empty vs enq";
  const bool enq_deq = (cex->m.method == "enq" && cex->n.method == "deq") ||
                       (cex->m.method == "deq" && cex->n.method == "enq");
  EXPECT_TRUE(enq_deq) << cex->detail;
}

TEST(CheckCA, DequeGuardedCAIsCorrect) {
  const auto cex = check_conflict_abstraction(make_deque_model(2, 5),
                                              deque_ca_ours(2, 5));
  EXPECT_FALSE(cex.has_value()) << cex->detail;
}

TEST(CheckCA, DequeUnguardedCAIsRefutedOnEmpty) {
  const auto cex = check_conflict_abstraction(make_deque_model(2, 5),
                                              deque_ca_unguarded(2, 5));
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->state, 0) << "the miss involves the empty deque";
}

TEST(CheckCA, OrderedMapIntervalCAIsCorrect) {
  const ModelSpec m = make_ordered_map_model(4, 2);
  for (int M : {1, 2, 4}) {
    const auto cex = check_conflict_abstraction(m, ordered_map_ca_interval(M));
    EXPECT_FALSE(cex.has_value()) << "M=" << M << ": " << cex->detail;
  }
}

TEST(CheckCA, OrderedMapLowerOnlyCAIsRefuted) {
  // A put strictly inside a queried range is the missed conflict.
  const auto cex = check_conflict_abstraction(make_ordered_map_model(4, 2),
                                              ordered_map_ca_lower_only(4));
  ASSERT_TRUE(cex.has_value());
  const bool range_involved =
      cex->m.method == "range_sum" || cex->n.method == "range_sum";
  EXPECT_TRUE(range_involved) << cex->detail;
}

TEST(FalseConflicts, OrderedMapIntervalStripingIsMonotone) {
  const ModelSpec m = make_ordered_map_model(4, 2);
  std::size_t prev = count_false_conflicts(m, ordered_map_ca_interval(1));
  for (int M : {2, 4}) {
    const std::size_t cur = count_false_conflicts(m, ordered_map_ca_interval(M));
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(FalseConflicts, StripingTradeoffIsMonotone) {
  // Definition 3.1 permits false conflicts; striping M trades memory for
  // them. More locations can never create new false conflicts.
  const ModelSpec m = make_map_model(4, 2);
  std::size_t prev = count_false_conflicts(m, map_ca_striped(1));
  EXPECT_GT(prev, 0u) << "M=1 must over-serialize";
  for (int M : {2, 4}) {
    const std::size_t cur = count_false_conflicts(m, map_ca_striped(M));
    EXPECT_LE(cur, prev) << "false conflicts must not grow with M";
    prev = cur;
  }
  // Once every key has its own location (M >= num_keys) the count
  // saturates: what remains are intrinsic same-key false conflicts (e.g.
  // two identical puts commute but both write their key's location).
  const std::size_t saturated = count_false_conflicts(m, map_ca_striped(4));
  EXPECT_EQ(count_false_conflicts(m, map_ca_striped(8)), saturated);
  EXPECT_LT(saturated, count_false_conflicts(m, map_ca_striped(1)));
}

TEST(FalseConflicts, PaperCounterCAHasOnlyBoundaryFalseConflicts) {
  const ModelSpec m = make_counter_model(6);
  // The only commuting-but-conflicting pairs are around 0/1 (incr-vs-decr at
  // 1, decr-vs-decr at 0); beyond the threshold no location is touched.
  const std::size_t fc = count_false_conflicts(m, counter_ca_paper());
  EXPECT_GT(fc, 0u);
  EXPECT_LE(fc, 4u);
}

TEST(AccessConflicts, DetectAllThreeKinds) {
  EXPECT_TRUE(accesses_conflict({{}, {0}}, {{}, {0}}));  // w/w
  EXPECT_TRUE(accesses_conflict({{0}, {}}, {{}, {0}}));  // r/w
  EXPECT_TRUE(accesses_conflict({{}, {0}}, {{0}, {}}));  // w/r
  EXPECT_FALSE(accesses_conflict({{0}, {}}, {{0}, {}}));  // r/r
  EXPECT_FALSE(accesses_conflict({{0}, {1}}, {{2}, {3}}));  // disjoint
  EXPECT_FALSE(accesses_conflict({{}, {}}, {{}, {0}}));  // empty vs write
}

TEST(CheckCA, PairCountMatchesEnumeration) {
  const ModelSpec m = make_map_model(2, 1);  // 4 states
  // invocations: get×2 + contains×2 + put×2 + remove×2 = 8; pairs = 8*9/2.
  EXPECT_EQ(count_pairs(m), 4u * 36u);
}

// --- Read-only soundness for the optimistic fast path (DESIGN.md §12) ---
// The fast path admits exactly the operations the wrappers route through
// try_read_unlocked; these tests pin down the model-level justification:
// those methods are state-preserving in every reachable state, and any two
// of them commute everywhere (so unlocked readers cannot conflict with each
// other — only the reader-vs-mutator case remains, which the sequence-word
// validation covers).

namespace {
const MethodSpec& method_named(const ModelSpec& m, const std::string& name) {
  for (const MethodSpec& ms : m.methods) {
    if (ms.name == name) return ms;
  }
  ADD_FAILURE() << "model " << m.name << " has no method " << name;
  return m.methods.front();
}
}  // namespace

TEST(ReadOnly, MapReadersAreReadOnlyAndMutatorsAreNot) {
  const ModelSpec m = make_map_model(2, 2);
  EXPECT_TRUE(is_read_only(m, method_named(m, "get")));
  EXPECT_TRUE(is_read_only(m, method_named(m, "contains")));
  EXPECT_FALSE(is_read_only(m, method_named(m, "put")));
  EXPECT_FALSE(is_read_only(m, method_named(m, "remove")));
}

TEST(ReadOnly, PQueueMinIsReadOnlyRemoveMinIsNot) {
  const ModelSpec m = make_pqueue_model(3, 4);
  EXPECT_TRUE(is_read_only(m, method_named(m, "min")));
  EXPECT_FALSE(is_read_only(m, method_named(m, "insert")));
  EXPECT_FALSE(is_read_only(m, method_named(m, "removeMin")));
}

TEST(ReadOnly, AllModelsAreFastPathSound) {
  for (const ModelSpec& m :
       {make_counter_model(6), make_map_model(3, 2), make_pqueue_model(3, 4),
        make_queue_model(2, 4), make_deque_model(2, 4),
        make_ordered_map_model(4, 2)}) {
    const auto cex = check_read_only_commutativity(m);
    EXPECT_FALSE(cex.has_value()) << m.name << ": " << cex->detail;
  }
}

TEST(ReadOnly, OrderSensitiveReadIsRefuted) {
  // A "read" whose result depends on how many times it has run — the model
  // analogue of a fast-path read observing replay order. It preserves the
  // state, so is_read_only admits it; the commutativity check must be the
  // one to refute it.
  auto calls = std::make_shared<int>(0);
  ModelSpec m;
  m.name = "order-sensitive-read";
  m.num_states = 1;
  m.methods.push_back(MethodSpec{
      "stale_get", {{}}, [calls](int state, const Args&) {
        return OpOutcome{state, ++*calls};
      }});
  EXPECT_TRUE(is_read_only(m, m.methods[0]));
  const auto cex = check_read_only_commutativity(m);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->m.method, "stale_get");
}
