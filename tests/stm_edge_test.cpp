// Edge cases and API-surface details of the STM engine.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "stm/stm.hpp"

using namespace proust::stm;

TEST(StmEdge, CurrentIsNullOutsideAndSetInside) {
  EXPECT_EQ(Txn::current(), nullptr);
  Stm stm(Mode::Lazy);
  stm.atomically([&](Txn& tx) {
    EXPECT_EQ(Txn::current(), &tx);
    stm.atomically([&](Txn& inner) { EXPECT_EQ(&inner, Txn::current()); });
  });
  EXPECT_EQ(Txn::current(), nullptr);
}

TEST(StmEdge, CurrentClearedAfterUserException) {
  Stm stm(Mode::Lazy);
  try {
    stm.atomically([&](Txn&) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(Txn::current(), nullptr);
  // And the STM is usable again.
  Var<long> v(1);
  EXPECT_EQ(stm.atomically([&](Txn& tx) { return tx.read(v); }), 1);
}

TEST(StmEdge, NestedAtomicallyOnDifferentStmThrows) {
  Stm a(Mode::Lazy), b(Mode::Lazy);
  EXPECT_THROW(a.atomically([&](Txn&) {
                 b.atomically([&](Txn&) {});
               }),
               std::logic_error);
}

TEST(StmEdge, StampsAreMonotoneAcrossTransactions) {
  Stm stm(Mode::Lazy);
  std::uint64_t first = 0, second = 0;
  stm.atomically([&](Txn& tx) { first = tx.fresh_stamp(); });
  stm.atomically([&](Txn& tx) { second = tx.fresh_stamp(); });
  EXPECT_LT(first, second);
}

TEST(StmEdge, IndependentStmInstancesHaveIndependentClocks) {
  Stm a(Mode::Lazy), b(Mode::Lazy);
  Var<long> va(0);
  for (int i = 0; i < 5; ++i) {
    a.atomically([&](Txn& tx) { tx.write(va, static_cast<long>(i)); });
  }
  EXPECT_GT(a.clock_now(), b.clock_now());
}

TEST(StmEdge, SingleByteAndBoolVars) {
  Stm stm(Mode::Lazy);
  Var<bool> flag(false);
  Var<char> c('a');
  stm.atomically([&](Txn& tx) {
    tx.write(flag, true);
    tx.write(c, 'z');
  });
  stm.atomically([&](Txn& tx) {
    EXPECT_TRUE(tx.read(flag));
    EXPECT_EQ(tx.read(c), 'z');
  });
}

TEST(StmEdge, WriteThenReadThenWriteSequencesInOneTxn) {
  Stm stm(Mode::EagerWrite);
  Var<long> v(0);
  stm.atomically([&](Txn& tx) {
    for (long i = 1; i <= 50; ++i) {
      tx.write(v, tx.read(v) + i);
    }
  });
  EXPECT_EQ(v.unsafe_ref(), 50 * 51 / 2);
}

TEST(StmEdge, EmptyTransactionCommits) {
  Stm stm(Mode::Lazy);
  stm.stats().reset();
  stm.atomically([](Txn&) {});
  const auto s = stm.stats().snapshot();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.total_aborts(), 0u);
}

TEST(StmEdge, ManyShortLivedThreadsRecycleSlots) {
  Stm stm(Mode::EagerAll);  // the mode with the 64-slot reader limit
  Var<long> v(0);
  // Far more threads than visible-reader slots — sequential, so recycling
  // must keep every one under the limit.
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::thread> ts;
    for (int t = 0; t < 16; ++t) {
      ts.emplace_back([&] {
        stm.atomically([&](Txn& tx) { tx.write(v, tx.read(v) + 1); });
      });
    }
    for (auto& th : ts) th.join();
  }
  EXPECT_EQ(v.unsafe_ref(), 160);
}

TEST(StmEdge, ReadOnlyFastPathStillRunsFinishHooks) {
  Stm stm(Mode::Lazy);
  Var<long> v(3);
  int finishes = 0;
  stm.atomically([&](Txn& tx) {
    tx.read(v);
    tx.on_finish([&](Outcome o) {
      ++finishes;
      EXPECT_EQ(o, Outcome::Committed);
    });
  });
  EXPECT_EQ(finishes, 1);
}

TEST(StmEdge, FreezeSnapshotBlocksExtension) {
  // In EagerWrite mode a frozen transaction must abort (not extend) when it
  // reads a var committed after its read version.
  Stm stm(Mode::EagerWrite);
  Var<long> a(0), b(0);
  int attempts = 0;
  stm.atomically([&](Txn& tx) {
    ++attempts;
    tx.read(a);
    if (attempts == 1) {
      tx.freeze_snapshot();
      // Bump b's version from a helper thread (commits while we run).
      std::thread bump([&] {
        stm.atomically([&](Txn& tx2) { tx2.write(b, 9L); });
      });
      bump.join();
      // Frozen: this read must trigger a retry rather than extend.
      tx.read(b);
      ADD_FAILURE() << "read of a newer version must not succeed while frozen";
    } else {
      tx.read(b);
    }
  });
  EXPECT_EQ(attempts, 2);
}
