// Tests for the global-clock scheme axis (StmOptions::clock_scheme) and the
// block-allocating stamp source:
//  - snapshot consistency and per-thread monotonicity under every
//    scheme × mode combination (the validation-skip fast path is only taken
//    under IncOnCommit; PassOnFailure's shared-wv adoption and LazyBump's
//    non-ticking clock both force full revalidation, and these stresses are
//    what would catch a wrongly-kept skip);
//  - LazyBump progress: readers that meet a version ahead of the clock must
//    catch the clock up instead of livelocking;
//  - stamp blocks: globally unique, strictly increasing per thread, and
//    never colliding or repeating across thread exit and slot reuse.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "stm/stm.hpp"

using namespace proust::stm;

namespace {

template <class Body>
void run_threads(int n, Body&& body) {
  std::barrier sync(n);
  std::vector<std::thread> ts;
  for (int t = 0; t < n; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      body(t);
    });
  }
  for (auto& th : ts) th.join();
}

struct SchemeMode {
  ClockScheme scheme;
  Mode mode;
};

std::string scheme_mode_name(
    const ::testing::TestParamInfo<SchemeMode>& info) {
  return std::string(to_string(info.param.scheme)) +
         to_string(info.param.mode);
}

}  // namespace

class ClockSchemeTest : public ::testing::TestWithParam<SchemeMode> {
 protected:
  StmOptions opts() const {
    StmOptions o;
    o.clock_scheme = GetParam().scheme;
    return o;
  }
};

// Writers keep all K vars equal (read var0, write value+1 everywhere);
// readers assert that a committed snapshot is never torn and that values
// observed by successive transactions of one thread never regress (real-time
// order: the transactions do not overlap). A broken validation skip or a
// regressed orec version shows up here as a torn or backwards snapshot.
TEST_P(ClockSchemeTest, SnapshotsStayConsistentAndMonotone) {
  constexpr int kVars = 4;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kTxnsPerThread = 3000;

  Stm stm(GetParam().mode, opts());
  std::vector<Var<long>> vars(kVars);
  std::atomic<bool> torn{false}, regressed{false};

  run_threads(kWriters + kReaders, [&](int t) {
    if (t < kWriters) {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        stm.atomically([&](Txn& tx) {
          const long next = tx.read(vars[0]) + 1;
          for (auto& v : vars) tx.write(v, next);
        });
      }
    } else {
      long last = 0;
      for (int i = 0; i < kTxnsPerThread; ++i) {
        long snap[kVars];
        stm.atomically([&](Txn& tx) {
          for (int k = 0; k < kVars; ++k) snap[k] = tx.read(vars[k]);
        });
        for (int k = 1; k < kVars; ++k) {
          if (snap[k] != snap[0]) torn.store(true);
        }
        if (snap[0] < last) regressed.store(true);
        last = snap[0];
      }
    }
  });

  EXPECT_FALSE(torn.load()) << "a committed snapshot saw mixed versions";
  EXPECT_FALSE(regressed.load()) << "commit order regressed in real time";
  EXPECT_EQ(vars[0].unsafe_ref(), long{kWriters} * kTxnsPerThread);
  for (int k = 1; k < kVars; ++k) {
    EXPECT_EQ(vars[k].unsafe_ref(), vars[0].unsafe_ref());
  }
}

TEST_P(ClockSchemeTest, ContendedCounterStaysExact) {
  Stm stm(GetParam().mode, opts());
  Var<long> counter(0);
  constexpr int kThreads = 4;
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < 2000; ++i) {
      stm.atomically([&](Txn& tx) { tx.write(counter, tx.read(counter) + 1); });
    }
  });
  EXPECT_EQ(counter.unsafe_ref(), long{kThreads} * 2000);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndModes, ClockSchemeTest,
    ::testing::Values(
        SchemeMode{ClockScheme::IncOnCommit, Mode::Lazy},
        SchemeMode{ClockScheme::IncOnCommit, Mode::EagerWrite},
        SchemeMode{ClockScheme::IncOnCommit, Mode::EagerAll},
        SchemeMode{ClockScheme::PassOnFailure, Mode::Lazy},
        SchemeMode{ClockScheme::PassOnFailure, Mode::EagerWrite},
        SchemeMode{ClockScheme::PassOnFailure, Mode::EagerAll},
        SchemeMode{ClockScheme::LazyBump, Mode::Lazy},
        SchemeMode{ClockScheme::LazyBump, Mode::EagerWrite},
        SchemeMode{ClockScheme::LazyBump, Mode::EagerAll}),
    scheme_mode_name);

// LazyBump never ticks the clock on commit, so a reader that meets the
// committed version `clock + 1` must raise the clock itself; otherwise every
// retry would re-begin at the same stale rv and spin forever. Single-var
// read-modify-write across threads is the worst case.
TEST(LazyBump, ReadersCatchTheClockUpAndMakeProgress) {
  StmOptions o;
  o.clock_scheme = ClockScheme::LazyBump;
  Stm stm(Mode::Lazy, o);
  Var<long> v(0);
  run_threads(2, [&](int) {
    for (int i = 0; i < 2000; ++i) {
      stm.atomically([&](Txn& tx) { tx.write(v, tx.read(v) + 1); });
    }
  });
  EXPECT_EQ(v.unsafe_ref(), 4000);
  // The clock moved (readers bumped it) but ticked far fewer times than the
  // 4000 commits a per-commit scheme would have cost.
  EXPECT_GT(stm.clock_now(), 0u);
}

// LazyBump never writes the clock on commit, so `clock + 1` alone would let
// back-to-back commits to one var release at the *same* version — two
// different committed states an exact-version validation compare could not
// tell apart (the enabler of a torn snapshot on the extension path).
// generate_wv floors the write version above every displaced lock version:
// per-orec versions must strictly increase even while the clock never moves.
TEST(LazyBump, OrecVersionsNeverRepeatWhileClockIsStill) {
  StmOptions o;
  o.clock_scheme = ClockScheme::LazyBump;
  for (Mode mode : {Mode::Lazy, Mode::EagerWrite, Mode::EagerAll}) {
    Stm stm(mode, o);
    Var<long> v(0);
    Version last = v.unsafe_version();
    for (int i = 0; i < 64; ++i) {
      stm.atomically([&](Txn& tx) { tx.write(v, static_cast<long>(i)); });
      const Version now = v.unsafe_version();
      EXPECT_GT(now, last) << "commit " << i << " reused an orec version";
      last = now;
    }
    EXPECT_EQ(stm.clock_now(), 0u) << "write-only commits must not tick GV5";
  }
}

// Regression stress for the torn-snapshot scenario on the eager extension
// path: a read that meets a too-new version extends its snapshot and must
// then *re-read* the var — the pre-extension copy is stale evidence, and
// under a version-reusing clock an equal-version re-check would accept a
// value from a different commit. One hot var recommitted at maximum
// frequency (so versions would collide constantly without the wv floor)
// plus a paired var lets a reader detect any tear as a mismatched pair.
TEST(LazyBump, EagerExtensionRereadsInsteadOfTrustingStaleCopy) {
  StmOptions o;
  o.clock_scheme = ClockScheme::LazyBump;
  Stm stm(Mode::EagerWrite, o);
  Var<long> a(0), b(0);
  std::atomic<bool> torn{false};
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr int kTxnsPerThread = 4000;

  run_threads(kWriters + kReaders, [&](int t) {
    if (t < kWriters) {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        stm.atomically([&](Txn& tx) {
          const long next = tx.read(a) + 1;
          tx.write(a, next);
          tx.write(b, next);
        });
      }
    } else {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        long sa = 0, sb = 0;
        stm.atomically([&](Txn& tx) {
          sa = tx.read(a);  // extension-heavy: writers outpace our rv
          sb = tx.read(b);
        });
        if (sa != sb) torn.store(true);
      }
    }
  });

  EXPECT_FALSE(torn.load()) << "a committed snapshot mixed two commits";
  EXPECT_EQ(a.unsafe_ref(), long{kWriters} * kTxnsPerThread);
  EXPECT_EQ(b.unsafe_ref(), a.unsafe_ref());
}

TEST(LazyBump, SingleThreadWriteOnlyLeavesClockUntouched) {
  StmOptions o;
  o.clock_scheme = ClockScheme::LazyBump;
  Stm stm(Mode::Lazy, o);
  Var<long> a(0), b(0);
  for (int i = 0; i < 100; ++i) {
    stm.atomically([&](Txn& tx) {
      tx.write(a, static_cast<long>(i));
      tx.write(b, static_cast<long>(i));
    });
  }
  EXPECT_EQ(stm.clock_now(), 0u) << "write-only commits must not tick GV5";
  EXPECT_EQ(a.unsafe_ref(), 99);
}

TEST(PassOnFailure, ClockTicksAtMostOncePerCommit) {
  StmOptions o;
  o.clock_scheme = ClockScheme::PassOnFailure;
  Stm stm(Mode::Lazy, o);
  Var<long> v(0);
  for (int i = 0; i < 50; ++i) {
    stm.atomically([&](Txn& tx) { tx.write(v, tx.read(v) + 1); });
  }
  EXPECT_LE(stm.clock_now(), 50u);
  EXPECT_GT(stm.clock_now(), 0u);
}

// --- Stamp blocks -----------------------------------------------------------

// Stamps must stay globally unique and strictly increasing per thread while
// threads draw more than a block's worth (forcing refills) concurrently.
TEST(StampBlocks, UniqueAndPerThreadMonotoneUnderConcurrency) {
  Stm stm(Mode::Lazy);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;  // > one 1024-stamp block each
  std::vector<std::vector<std::uint64_t>> got(kThreads);

  run_threads(kThreads, [&](int t) {
    got[t].reserve(kPerThread);
    for (int i = 0; i < kPerThread; ++i) {
      stm.atomically([&](Txn& tx) { got[t].push_back(tx.fresh_stamp()); });
    }
  });

  std::vector<std::uint64_t> all;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(std::adjacent_find(got[t].begin(), got[t].end(),
                                 std::greater_equal<std::uint64_t>()),
              got[t].end())
        << "thread " << t << " stamps not strictly increasing";
    all.insert(all.end(), got[t].begin(), got[t].end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate stamp across threads";
  EXPECT_EQ(all.size(), std::size_t{kThreads} * kPerThread);
}

// Thread exit recycles registry slots; a new thread on a recycled slot must
// resume the slot's partially-used block without reissuing any value. Waves
// of short-lived threads are exactly that pattern.
TEST(StampBlocks, NoCollisionsAcrossThreadExitAndSlotReuse) {
  Stm stm(Mode::Lazy);
  constexpr int kWaves = 6;
  constexpr int kThreadsPerWave = 4;
  constexpr int kPerThread = 700;  // straddles block boundaries across waves
  std::vector<std::uint64_t> all;

  for (int w = 0; w < kWaves; ++w) {
    std::vector<std::vector<std::uint64_t>> wave(kThreadsPerWave);
    run_threads(kThreadsPerWave, [&](int t) {
      wave[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        stm.atomically([&](Txn& tx) { wave[t].push_back(tx.fresh_stamp()); });
      }
    });  // all wave threads exit here; their slots are recycled
    for (auto& v : wave) {
      EXPECT_EQ(std::adjacent_find(v.begin(), v.end(),
                                   std::greater_equal<std::uint64_t>()),
                v.end());
      all.insert(all.end(), v.begin(), v.end());
    }
  }

  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "a recycled slot reissued a stamp";
  EXPECT_EQ(all.size(),
            std::size_t{kWaves} * kThreadsPerWave * kPerThread);
}

// Stamp sources of independent Stm instances are independent (each has its
// own block counter), mirroring the independent-clocks guarantee.
TEST(StampBlocks, IndependentStmInstancesDoNotInterfere) {
  Stm a(Mode::Lazy), b(Mode::Lazy);
  std::uint64_t sa = 0, sb = 0;
  a.atomically([&](Txn& tx) { sa = tx.fresh_stamp(); });
  b.atomically([&](Txn& tx) { sb = tx.fresh_stamp(); });
  EXPECT_EQ(sa, sb) << "fresh instances start from the same first block";
}
