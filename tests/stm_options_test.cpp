// Tests for the STM policy knobs: contention-management policies and the
// irrevocable fallback gate.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "stm/stm.hpp"

using namespace proust::stm;

namespace {
constexpr int kThreads = 4;

template <class Body>
void run_threads(int n, Body&& body) {
  std::barrier sync(n);
  std::vector<std::thread> ts;
  for (int t = 0; t < n; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      body(t);
    });
  }
  for (auto& th : ts) th.join();
}
}  // namespace

class CmPolicyTest : public ::testing::TestWithParam<CmPolicy> {};

TEST_P(CmPolicyTest, ContendedCountersStayExact) {
  StmOptions opts;
  opts.cm_policy = GetParam();
  Stm stm(Mode::Lazy, opts);
  Var<long> counter(0);
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < 2000; ++i) {
      stm.atomically([&](Txn& tx) { tx.write(counter, tx.read(counter) + 1); });
    }
  });
  EXPECT_EQ(counter.unsafe_ref(), long{kThreads} * 2000);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CmPolicyTest,
                         ::testing::Values(CmPolicy::ExponentialBackoff,
                                           CmPolicy::Yield, CmPolicy::None),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(FallbackGate, DisabledByDefaultCostsNothing) {
  Stm stm(Mode::Lazy);
  EXPECT_FALSE(stm.gate_enabled());
  Var<long> v(0);
  stm.atomically([&](Txn& tx) { tx.write(v, 1); });
  EXPECT_EQ(v.unsafe_ref(), 1);
}

TEST(FallbackGate, FallbackAttemptCommits) {
  StmOptions opts;
  opts.fallback_after = 2;
  Stm stm(Mode::Lazy, opts);
  Var<long> v(0);
  int attempts = 0;
  stm.atomically([&](Txn& tx) {
    ++attempts;
    tx.write(v, attempts);
    if (attempts < 4) tx.retry();  // attempts 3+ run under the gate
  });
  EXPECT_EQ(attempts, 4);
  EXPECT_EQ(v.unsafe_ref(), 4);
}

TEST(FallbackGate, OrdinaryCommitsResumeAfterFallback) {
  StmOptions opts;
  opts.fallback_after = 1;
  Stm stm(Mode::Lazy, opts);
  Var<long> v(0);
  // Force one fallback...
  int attempts = 0;
  stm.atomically([&](Txn& tx) {
    ++attempts;
    tx.write(v, 10);
    if (attempts == 1) tx.retry();
  });
  // ...then ordinary transactions proceed normally.
  stm.atomically([&](Txn& tx) { tx.write(v, tx.read(v) + 1); });
  EXPECT_EQ(v.unsafe_ref(), 11);
}

TEST(FallbackGate, CorrectUnderConcurrencyWithAggressiveFallback) {
  StmOptions opts;
  opts.fallback_after = 1;  // second attempt of anything goes irrevocable
  opts.cm_policy = CmPolicy::None;  // maximize contention
  Stm stm(Mode::EagerWrite, opts);
  Var<long> counter(0);
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < 1500; ++i) {
      stm.atomically([&](Txn& tx) { tx.write(counter, tx.read(counter) + 1); });
    }
  });
  EXPECT_EQ(counter.unsafe_ref(), long{kThreads} * 1500);
}

TEST(FallbackGate, GateBusyAbortsAreCounted) {
  // Deterministic: hold the gate exclusively from one transaction (via its
  // fallback attempt blocking on a stage), and watch an ordinary commit
  // yield with a FallbackGate abort.
  StmOptions opts;
  opts.fallback_after = 1;
  Stm stm(Mode::Lazy, opts);
  Var<long> a(0), b(0);
  std::atomic<int> stage{0};

  std::thread fallback_thread([&] {
    int attempts = 0;
    stm.atomically([&](Txn& tx) {
      ++attempts;
      if (attempts == 1) tx.retry();  // go irrevocable on attempt 2
      stage.store(1);
      while (stage.load() < 2) std::this_thread::yield();
      tx.write(a, 1);
    });
  });

  while (stage.load() < 1) std::this_thread::yield();
  // An ordinary transaction must abort at the gate at least once, then
  // succeed after the fallback finishes.
  std::thread ordinary([&] {
    stm.atomically([&](Txn& tx) { tx.write(b, 1); });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stage.store(2);
  fallback_thread.join();
  ordinary.join();

  EXPECT_EQ(a.unsafe_ref(), 1);
  EXPECT_EQ(b.unsafe_ref(), 1);
  EXPECT_GE(stm.stats().snapshot().aborts[static_cast<std::size_t>(
                AbortReason::FallbackGate)],
            1u);
}
