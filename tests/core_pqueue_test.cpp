// Tests for the Proustian priority queues: the eager lazy-deletion wrapper
// (Figure 3) and the lazy snapshot wrapper over the COW heap, under both
// LAPs and under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <functional>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/lazy_pqueue.hpp"
#include "core/txn_pqueue.hpp"
#include "stm/stm.hpp"

using namespace proust;
using core::PQueueState;
using core::PQueueStateHasher;

namespace {

class PQView {
 public:
  virtual void insert(long v) = 0;
  virtual std::optional<long> min() = 0;
  virtual std::optional<long> remove_min() = 0;
  virtual bool contains(long v) = 0;

 protected:
  ~PQView() = default;
};

class PQueueUnderTest {
 public:
  virtual ~PQueueUnderTest() = default;
  virtual void atomically(const std::function<void(PQView&)>& body) = 0;
  virtual long size() const = 0;

  void insert1(long v) {
    atomically([&](PQView& q) { q.insert(v); });
  }
  std::optional<long> min1() {
    std::optional<long> r;
    atomically([&](PQView& q) { r = q.min(); });
    return r;
  }
  std::optional<long> remove_min1() {
    std::optional<long> r;
    atomically([&](PQView& q) { r = q.remove_min(); });
    return r;
  }
  bool contains1(long v) {
    bool r = false;
    atomically([&](PQView& q) { r = q.contains(v); });
    return r;
  }
};

template <class PQ>
class ViewImpl final : public PQView {
 public:
  ViewImpl(PQ& q, stm::Txn& tx) : q_(q), tx_(tx) {}
  void insert(long v) override { q_.insert(tx_, v); }
  std::optional<long> min() override { return q_.min(tx_); }
  std::optional<long> remove_min() override { return q_.remove_min(tx_); }
  bool contains(long v) override { return q_.contains(tx_, v); }

 private:
  PQ& q_;
  stm::Txn& tx_;
};

template <class Lap, class PQ>
class Handle final : public PQueueUnderTest {
 public:
  template <class MakeLap>
  Handle(stm::Mode mode, MakeLap&& make_lap)
      : stm_(mode), lap_(make_lap(stm_)), pq_(*lap_) {}

  void atomically(const std::function<void(PQView&)>& body) override {
    stm_.atomically([&](stm::Txn& tx) {
      ViewImpl<PQ> v(pq_, tx);
      body(v);
    });
  }
  long size() const override { return pq_.size(); }

 private:
  stm::Stm stm_;
  std::unique_ptr<Lap> lap_;
  PQ pq_;
};

struct PQConfig {
  std::string name;
  std::function<std::unique_ptr<PQueueUnderTest>()> make;
};

std::vector<PQConfig> pqueue_configs() {
  using OptLap = core::OptimisticLap<PQueueState, PQueueStateHasher>;
  using PessLap = core::PessimisticLap<PQueueState, PQueueStateHasher>;
  const auto opt = [](stm::Stm& s) { return std::make_unique<OptLap>(s, 2); };
  const auto pess = [](stm::Stm& s) {
    return std::make_unique<PessLap>(s, 2, core::pqueue_lock_kind,
                                     std::chrono::milliseconds(5));
  };
  return {
      {"eager_opt_eagerall",
       [opt] {
         return std::make_unique<
             Handle<OptLap, core::TxnPriorityQueue<long, OptLap>>>(
             stm::Mode::EagerAll, opt);
       }},
      {"eager_pess",
       [pess] {
         return std::make_unique<
             Handle<PessLap, core::TxnPriorityQueue<long, PessLap>>>(
             stm::Mode::Lazy, pess);
       }},
      {"lazy_opt_lazystm",
       [opt] {
         return std::make_unique<
             Handle<OptLap, core::LazyPriorityQueue<long, OptLap>>>(
             stm::Mode::Lazy, opt);
       }},
      {"lazy_opt_eagerall",
       [opt] {
         return std::make_unique<
             Handle<OptLap, core::LazyPriorityQueue<long, OptLap>>>(
             stm::Mode::EagerAll, opt);
       }},
  };
}

class CorePQueueTest : public ::testing::TestWithParam<PQConfig> {
 protected:
  void SetUp() override { pq_ = GetParam().make(); }
  std::unique_ptr<PQueueUnderTest> pq_;
};

}  // namespace

TEST_P(CorePQueueTest, EmptyQueueBehaviour) {
  EXPECT_EQ(pq_->min1(), std::nullopt);
  EXPECT_EQ(pq_->remove_min1(), std::nullopt);
  EXPECT_FALSE(pq_->contains1(1));
  EXPECT_EQ(pq_->size(), 0);
}

TEST_P(CorePQueueTest, InsertThenMin) {
  pq_->insert1(5);
  pq_->insert1(3);
  pq_->insert1(8);
  EXPECT_EQ(pq_->min1(), 3);
  EXPECT_EQ(pq_->size(), 3);
}

TEST_P(CorePQueueTest, RemoveMinDrainsInOrder) {
  for (long v : {9L, 2L, 7L, 2L, 5L}) pq_->insert1(v);
  EXPECT_EQ(pq_->remove_min1(), 2);
  EXPECT_EQ(pq_->remove_min1(), 2);
  EXPECT_EQ(pq_->remove_min1(), 5);
  EXPECT_EQ(pq_->remove_min1(), 7);
  EXPECT_EQ(pq_->remove_min1(), 9);
  EXPECT_EQ(pq_->remove_min1(), std::nullopt);
  EXPECT_EQ(pq_->size(), 0);
}

TEST_P(CorePQueueTest, ContainsTracksMultiset) {
  pq_->insert1(4);
  EXPECT_TRUE(pq_->contains1(4));
  EXPECT_FALSE(pq_->contains1(5));
  pq_->remove_min1();
  EXPECT_FALSE(pq_->contains1(4));
}

TEST_P(CorePQueueTest, MultiOpTxnIsAtomic) {
  pq_->atomically([](PQView& q) {
    q.insert(10);
    q.insert(1);
    EXPECT_EQ(q.min(), 1);
    EXPECT_EQ(q.remove_min(), 1);
    EXPECT_EQ(q.min(), 10);
  });
  EXPECT_EQ(pq_->size(), 1);
  EXPECT_EQ(pq_->min1(), 10);
}

TEST_P(CorePQueueTest, AbortRollsBackInserts) {
  pq_->insert1(50);
  EXPECT_THROW(pq_->atomically([](PQView& q) {
                 q.insert(1);
                 q.insert(2);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(pq_->min1(), 50);
  EXPECT_EQ(pq_->size(), 1);
  EXPECT_FALSE(pq_->contains1(1));
}

TEST_P(CorePQueueTest, AbortRollsBackRemoveMin) {
  pq_->insert1(3);
  pq_->insert1(7);
  EXPECT_THROW(pq_->atomically([](PQView& q) {
                 EXPECT_EQ(q.remove_min(), 3);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(pq_->min1(), 3);
  EXPECT_EQ(pq_->size(), 2);
}

TEST_P(CorePQueueTest, AbortedInsertDoesNotResurrectViaMin) {
  // A tombstoned (aborted) insert at the top must be invisible to min().
  pq_->insert1(100);
  EXPECT_THROW(pq_->atomically([](PQView& q) {
                 q.insert(1);  // would become the min
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(pq_->min1(), 100);
  EXPECT_EQ(pq_->remove_min1(), 100);
  EXPECT_EQ(pq_->remove_min1(), std::nullopt);
}

TEST_P(CorePQueueTest, InsertRemoveInterleavedTxn) {
  pq_->atomically([](PQView& q) {
    q.insert(6);
    q.insert(4);
    EXPECT_EQ(q.remove_min(), 4);
    q.insert(2);
    EXPECT_EQ(q.remove_min(), 2);
  });
  EXPECT_EQ(pq_->size(), 1);
  EXPECT_EQ(pq_->min1(), 6);
}

TEST_P(CorePQueueTest, ConcurrentInsertsAllVisible) {
  constexpr int kThreads = 4, kPerThread = 300;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i) {
        pq_->insert1(t * kPerThread + i);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(pq_->size(), long{kThreads} * kPerThread);
  EXPECT_EQ(pq_->min1(), 0);
}

TEST_P(CorePQueueTest, ConcurrentMixedConservesElements) {
  constexpr int kThreads = 4, kPerThread = 250;
  std::atomic<long> removed{0};
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      proust::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (long i = 0; i < kPerThread; ++i) {
        pq_->insert1(static_cast<long>(rng.below(1000)));
        if (i % 2 == 1) {
          if (pq_->remove_min1()) removed.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(pq_->size() + removed.load(), long{kThreads} * kPerThread);
}

TEST_P(CorePQueueTest, ConcurrentRemoveMinsAreDistinctElements) {
  // Insert 0..N-1 (distinct), then concurrently removeMin: every removed
  // value must be unique and the union with leftovers must equal the input.
  constexpr long kN = 400;
  for (long i = 0; i < kN; ++i) pq_->insert1(i);
  std::vector<std::vector<long>> removed(4);
  std::barrier sync(4);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < kN / 4; ++i) {
        auto v = pq_->remove_min1();
        if (v) removed[t].push_back(*v);
      }
    });
  }
  for (auto& th : ts) th.join();
  std::set<long> all;
  std::size_t count = 0;
  for (auto& vec : removed) {
    for (long v : vec) {
      all.insert(v);
      ++count;
    }
  }
  EXPECT_EQ(all.size(), count) << "a value was removed twice";
  EXPECT_EQ(static_cast<long>(count) + pq_->size(), kN);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, CorePQueueTest,
                         ::testing::ValuesIn(pqueue_configs()),
                         [](const auto& info) { return info.param.name; });
