// Direct tests for the replay-log / shadow-copy machinery (§4): memoizing
// logs with and without combining, snapshot logs, and the readOnly
// optimization (log created only on first update).
#include <gtest/gtest.h>

#include "common/bump_arena.hpp"
#include "containers/snapshot_hamt.hpp"
#include "containers/striped_hash_map.hpp"
#include "core/lap.hpp"
#include "core/lazy_hash_map.hpp"
#include "core/lazy_trie_map.hpp"
#include "core/replay_log.hpp"
#include "stm/stm.hpp"

using namespace proust;
using Base = containers::StripedHashMap<long, long>;

TEST(MemoReplayLog, GetReadsThroughToBase) {
  Base base;
  base.put(1, 10);
  BumpArena arena;
  stm::CommitFence fence;
  core::MemoReplayLog<Base, long, long> log(base, fence, false, arena);
  EXPECT_EQ(log.get(1), 10);
  EXPECT_EQ(log.get(2), std::nullopt);
}

TEST(MemoReplayLog, PendingUpdatesShadowBase) {
  Base base;
  base.put(1, 10);
  BumpArena arena;
  stm::CommitFence fence;
  core::MemoReplayLog<Base, long, long> log(base, fence, false, arena);
  EXPECT_EQ(log.put(1, 11), 10);
  EXPECT_EQ(log.get(1), 11);
  EXPECT_EQ(base.get(1), 10) << "base untouched before replay";
  EXPECT_EQ(log.remove(1), 11);
  EXPECT_EQ(log.get(1), std::nullopt);
  EXPECT_EQ(base.get(1), 10);
}

TEST(MemoReplayLog, ReplayAppliesOpsInOrder) {
  Base base;
  BumpArena arena;
  stm::CommitFence fence;
  core::MemoReplayLog<Base, long, long> log(base, fence, false, arena);
  log.put(1, 1);
  log.put(1, 2);
  log.remove(1);
  log.put(1, 3);
  log.put(2, 9);
  EXPECT_EQ(log.pending(), 5u);
  log.replay();
  EXPECT_EQ(base.get(1), 3);
  EXPECT_EQ(base.get(2), 9);
}

TEST(MemoReplayLog, CombiningReplaysOnlyFinalStates) {
  Base base;
  base.put(5, 50);
  BumpArena arena;
  stm::CommitFence fence;
  core::MemoReplayLog<Base, long, long> log(base, fence, true, arena);
  log.put(1, 1);
  log.put(1, 2);
  log.put(1, 3);
  log.remove(5);
  log.get(7);  // read-only key: must NOT be replayed
  EXPECT_EQ(log.pending(), 2u) << "one synthetic update per dirty key";
  log.replay();
  EXPECT_EQ(base.get(1), 3);
  EXPECT_EQ(base.get(5), std::nullopt);
  EXPECT_FALSE(base.contains(7));
}

TEST(MemoReplayLog, CombiningAndSequentialAgree) {
  Base base1, base2;
  for (long k = 0; k < 8; ++k) {
    base1.put(k, k);
    base2.put(k, k);
  }
  BumpArena arena;
  stm::CommitFence fence1, fence2;
  core::MemoReplayLog<Base, long, long> seq(base1, fence1, false, arena);
  core::MemoReplayLog<Base, long, long> comb(base2, fence2, true, arena);
  for (int i = 0; i < 100; ++i) {
    const long k = (i * 7) % 8;
    if (i % 3 == 0) {
      EXPECT_EQ(seq.put(k, i), comb.put(k, i));
    } else if (i % 3 == 1) {
      EXPECT_EQ(seq.remove(k), comb.remove(k));
    } else {
      EXPECT_EQ(seq.get(k), comb.get(k));
    }
  }
  seq.replay();
  comb.replay();
  for (long k = 0; k < 8; ++k) EXPECT_EQ(base1.get(k), base2.get(k));
}

TEST(SnapshotReplayLog, ShadowSeesSpeculativeState) {
  containers::SnapshotHamt<long, long> base;
  base.put(1, 10);
  BumpArena arena;
  stm::CommitFence fence;
  core::SnapshotReplayLog<containers::SnapshotHamt<long, long>> log(
      base, fence, arena);
  auto old = log.execute([](auto& t) { return t.put(1, 11); });
  EXPECT_EQ(old, 10);
  EXPECT_EQ(log.shadow().get(1), 11);
  EXPECT_EQ(base.get(1), 10);
  log.replay();
  EXPECT_EQ(base.get(1), 11);
}

TEST(SnapshotReplayLog, ReplayOrderPreserved) {
  containers::SnapshotHamt<long, long> base;
  BumpArena arena;
  stm::CommitFence fence;
  core::SnapshotReplayLog<containers::SnapshotHamt<long, long>> log(
      base, fence, arena);
  log.execute([](auto& t) { return t.put(1, 1); });
  log.execute([](auto& t) { return t.remove(1); });
  log.execute([](auto& t) { return t.put(1, 2); });
  EXPECT_EQ(log.pending(), 3u);
  log.replay();
  EXPECT_EQ(base.get(1), 2);
}

TEST(LazyHashMap, ReadOnlyTxnCreatesNoLog) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 64);
  core::LazyHashMap<long, long, core::OptimisticLap<long>> map(lap);
  map.unsafe_put(1, 10);
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.get(tx, 1), 10);
    EXPECT_FALSE(tx.has_local(nullptr));  // trivially true; real check below
  });
  // The readOnly path is observable through stats: a read-only lazy-map txn
  // performs only the CA read, no CA write.
  stm.stats().reset();
  stm.atomically([&](stm::Txn& tx) { map.get(tx, 1); });
  const auto s = stm.stats().snapshot();
  EXPECT_EQ(s.writes, 0u);
  EXPECT_GE(s.reads, 1u);
}

TEST(LazyTrieMap, SnapshotTakenLazilyOnFirstUpdate) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 64);
  core::LazyTrieMap<long, long, core::OptimisticLap<long>> map(lap);
  map.unsafe_put(1, 10);
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.get(tx, 1), 10);  // read-only: no snapshot yet
    map.put(tx, 2, 20);             // first update: snapshot now
    EXPECT_EQ(map.get(tx, 2), 20);  // served from the shadow
    EXPECT_EQ(map.get(tx, 1), 10);
  });
  EXPECT_EQ(stm.atomically([&](stm::Txn& tx) { return map.get(tx, 2); }), 20);
}

TEST(LazyHashMap, CombiningProducesSameResultsAsSequential) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 64);
  core::LazyHashMap<long, long, core::OptimisticLap<long>> seq(lap, false);
  core::LazyHashMap<long, long, core::OptimisticLap<long>> comb(lap, true);
  stm.atomically([&](stm::Txn& tx) {
    for (int i = 0; i < 60; ++i) {
      const long k = i % 6;
      auto a = seq.put(tx, k, i);
      auto b = comb.put(tx, k, i);
      EXPECT_EQ(a, b);
      if (i % 4 == 3) {
        EXPECT_EQ(seq.remove(tx, k), comb.remove(tx, k));
      }
    }
  });
  for (long k = 0; k < 6; ++k) {
    const auto a =
        stm.atomically([&](stm::Txn& tx) { return seq.get(tx, k); });
    const auto b =
        stm.atomically([&](stm::Txn& tx) { return comb.get(tx, k); });
    EXPECT_EQ(a, b);
  }
}
