// Crash-point matrix for the durability subsystem (ctest label
// "durability"): for every WAL chaos gate (WalAppend / WalSeal / WalFsync /
// WalRotate) and both ack modes (Relaxed / Strict), a forked child runs a
// deterministic single-threaded stream of logged map transactions against a
// chaos policy that kills the process (`_exit`, so the page cache — and
// with it every completed write(2) — survives) at the injected point. The
// parent then recovers the child's log directory and asserts the durability
// contract:
//
//   1. Recovery yields *exactly a prefix* of the committed history, in
//      epoch order, with epochs dense from 1 (torn tails truncated).
//   2. No transaction the child journaled as strict-acked is missing from
//      the recovered prefix (acks only follow fsync coverage).
//   3. No aborted transaction's records are resurrected (aborted attempts
//      stage a poison opcode that must never be recovered).
//   4. At most one committed-in-memory transaction can outrun its journal
//      line (single-threaded: the window between WAL publish and the
//      commit hook), bounding recovered-vs-journal divergence.
//   5. Replaying the recovered records into a freshly constructed
//      TxnHashMap reproduces the oracle (std::map) folded over the same
//      prefix.
//
// The child journals through plain appending write(2) calls with no fsync:
// `_exit` does not discard the page cache, so the journals are complete at
// the moment of death — they are the committed/acked oracle, not durable
// state under test.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/lap.hpp"
#include "core/txn_hash_map.hpp"
#include "stm/chaos.hpp"
#include "stm/stm.hpp"
#include "stm/wal.hpp"

namespace stm = proust::stm;
namespace fs = std::filesystem;

namespace {

constexpr int kOps = 1200;
constexpr long kKeys = 64;
constexpr std::uint8_t kOpPut = 0;
constexpr std::uint8_t kOpRemove = 1;
constexpr std::uint8_t kOpPoison = 2;  // staged only by aborting attempts
constexpr std::uint32_t kMapStream = 1;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("PROUST_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC45EEDu;
}

struct Op {
  std::uint8_t kind;
  std::int64_t key;
  std::int64_t val;
};

/// The deterministic program: step j is an aborted attempt when
/// `j % 7 == 3`, otherwise the committed op below. Parent and child both
/// derive the schedule from this, so the parent needs nothing from the
/// child beyond its journals.
bool aborts_at(int j) { return j % 7 == 3; }

Op op_at(int j) {
  Op o;
  o.key = j % kKeys;
  if (j % 5 == 4) {
    o.kind = kOpRemove;
    o.val = 0;
  } else {
    o.kind = kOpPut;
    o.val = j;
  }
  return o;
}

void encode_op(const Op& o, std::uint8_t out[17]) {
  out[0] = o.kind;
  std::memcpy(out + 1, &o.key, 8);
  std::memcpy(out + 9, &o.val, 8);
}

Op decode_op(const std::uint8_t* p, std::uint32_t size) {
  Op o{0xFF, 0, 0};
  if (size != 17) return o;
  o.kind = p[0];
  std::memcpy(&o.key, p + 1, 8);
  std::memcpy(&o.val, p + 9, 8);
  return o;
}

void journal_line(int fd, int j) {
  char buf[16];
  const int n = std::snprintf(buf, sizeof buf, "%d\n", j);
  (void)!::write(fd, buf, static_cast<std::size_t>(n));
}

std::vector<int> read_journal(const std::string& path) {
  std::vector<int> out;
  std::ifstream f(path);
  int j;
  while (f >> j) out.push_back(j);
  return out;
}

struct ChildAbort {};

/// The child body: never returns. Exits 0 on completion; a chaos crash
/// draw _exits with stm::kWalCrashExitCode from inside the WAL gate.
[[noreturn]] void run_child(const std::string& dir, stm::ChaosPoint point,
                            double crash_prob, stm::WalDurability mode,
                            std::uint64_t seed) {
  const int committed_fd =
      ::open((dir + "/committed.log").c_str(),
             O_CREAT | O_TRUNC | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  const int acked_fd =
      ::open((dir + "/acked.log").c_str(),
             O_CREAT | O_TRUNC | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (committed_fd < 0 || acked_fd < 0) ::_exit(3);

  stm::ChaosConfig ccfg;
  ccfg.seed = seed;
  ccfg.at(point).crash = crash_prob;
  stm::ChaosPolicy chaos(ccfg);

  {
    stm::WalOptions wopts;
    wopts.dir = dir + "/wal";
    wopts.segment_bytes = 4096;  // small: rotations happen often
    wopts.fsync_every_n = 8;
    wopts.fsync_interval_us = std::chrono::microseconds(100);
    wopts.durability = mode;
    wopts.chaos = &chaos;
    stm::Wal wal(wopts);

    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    proust::core::OptimisticLap<long> lap(s, 256);
    proust::core::TxnHashMap<long, long, proust::core::OptimisticLap<long>>
        map(lap);

    for (int j = 0; j < kOps; ++j) {
      if (aborts_at(j)) {
        try {
          s.atomically([&](stm::Txn& tx) {
            // Stage a poison record, then abort: if recovery ever sees
            // kOpPoison, an aborted attempt leaked into the log.
            std::uint8_t buf[17];
            encode_op(Op{kOpPoison, j, j}, buf);
            tx.wal_log(kMapStream, buf, sizeof buf);
            map.put(tx, j % kKeys, -1);
            throw ChildAbort{};
          });
        } catch (const ChildAbort&) {
        }
        continue;
      }
      const Op o = op_at(j);
      s.atomically([&](stm::Txn& tx) {
        if (o.kind == kOpPut) {
          map.put(tx, o.key, o.val);
        } else {
          map.remove(tx, o.key);
        }
        std::uint8_t buf[17];
        encode_op(o, buf);
        tx.wal_log(kMapStream, buf, sizeof buf);
        // Runs on this thread after the WAL publish assigned the epoch:
        // the committed journal can lag the log by at most this one txn.
        tx.on_commit([&, j] { journal_line(committed_fd, j); });
      });
      // The ack point: relaxed = publish returned, strict = fsync covered.
      journal_line(acked_fd, j);
    }
  }  // Wal dtor drains + fsyncs: a completed child has everything durable.
  ::_exit(0);
}

struct ChildResult {
  bool crashed = false;
  std::vector<int> committed;
  std::vector<int> acked;
  std::vector<Op> recovered;        // in epoch order
  stm::WalRecoveryInfo info;
};

ChildResult run_matrix_point(const std::string& dir, stm::ChaosPoint point,
                             double crash_prob, stm::WalDurability mode,
                             std::uint64_t seed) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  const pid_t pid = ::fork();
  if (pid == 0) {
    run_child(dir, point, crash_prob, mode, seed);  // never returns
  }
  ChildResult r;
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child must _exit, not be signalled";
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  EXPECT_TRUE(code == 0 || code == stm::kWalCrashExitCode)
      << "unexpected child exit code " << code;
  r.crashed = code == stm::kWalCrashExitCode;

  r.committed = read_journal(dir + "/committed.log");
  r.acked = read_journal(dir + "/acked.log");
  bool bad = false;
  r.info = stm::Wal::recover(dir + "/wal", [&](const stm::WalRecordView& v) {
    if (v.stream != kMapStream || v.size != 17) bad = true;
    r.recovered.push_back(decode_op(v.data, v.size));
  });
  EXPECT_FALSE(bad) << "malformed record in recovered stream";
  return r;
}

/// The committed schedule: j values of every non-aborting step, in order.
std::vector<int> expected_committed_js() {
  std::vector<int> out;
  for (int j = 0; j < kOps; ++j) {
    if (!aborts_at(j)) out.push_back(j);
  }
  return out;
}

void check_contract(const ChildResult& r, stm::WalDurability mode) {
  const std::vector<int> expected = expected_committed_js();

  // Journals are prefixes of the schedule, and acked lags committed.
  ASSERT_LE(r.committed.size(), expected.size());
  for (std::size_t i = 0; i < r.committed.size(); ++i) {
    ASSERT_EQ(r.committed[i], expected[i]) << "committed journal diverged";
  }
  ASSERT_LE(r.acked.size(), r.committed.size())
      << "an op was acked before its commit hook ran";
  for (std::size_t i = 0; i < r.acked.size(); ++i) {
    ASSERT_EQ(r.acked[i], expected[i]) << "acked journal diverged";
  }

  // (1) Exactly a prefix, in epoch order. recover() already enforced epoch
  // density; here every payload must match the schedule position.
  ASSERT_LE(r.recovered.size(), expected.size());
  for (std::size_t i = 0; i < r.recovered.size(); ++i) {
    const Op want = op_at(expected[i]);
    const Op& got = r.recovered[i];
    ASSERT_NE(got.kind, kOpPoison)
        << "aborted transaction resurrected at epoch " << i + 1;
    ASSERT_EQ(got.kind, want.kind) << "epoch " << i + 1;
    ASSERT_EQ(got.key, want.key) << "epoch " << i + 1;
    ASSERT_EQ(got.val, want.val) << "epoch " << i + 1;
  }

  // (2) Strict: every acked commit is in the durable prefix.
  if (mode == stm::WalDurability::Strict) {
    ASSERT_GE(r.recovered.size(), r.acked.size())
        << "a strict-acked commit was lost";
  }

  // (4) The log can outrun the committed journal by at most the one txn
  // between publish and its commit hook.
  ASSERT_LE(r.recovered.size(), r.committed.size() + 1);

  // A clean exit means the dtor drained everything: nothing may be lost.
  if (!r.crashed) {
    ASSERT_EQ(r.recovered.size(), expected.size());
    ASSERT_EQ(r.committed.size(), expected.size());
  }

  // (5) Replay into a fresh wrapped structure == oracle over the prefix.
  std::map<long, long> oracle;
  for (const Op& o : r.recovered) {
    if (o.kind == kOpPut) {
      oracle[o.key] = o.val;
    } else {
      oracle.erase(o.key);
    }
  }
  stm::Stm s(stm::Mode::Lazy, {});
  proust::core::OptimisticLap<long> lap(s, 256);
  proust::core::TxnHashMap<long, long, proust::core::OptimisticLap<long>> map(
      lap);
  for (const Op& o : r.recovered) {
    s.atomically([&](stm::Txn& tx) {
      if (o.kind == kOpPut) {
        map.put(tx, o.key, o.val);
      } else {
        map.remove(tx, o.key);
      }
    });
  }
  for (long k = 0; k < kKeys; ++k) {
    const auto it = oracle.find(k);
    const std::optional<long> want =
        it == oracle.end() ? std::nullopt : std::make_optional(it->second);
    const std::optional<long> got = s.atomically(
        [&](stm::Txn& tx) -> std::optional<long> { return map.get(tx, k); });
    ASSERT_EQ(got, want) << "replayed map diverged from oracle at key " << k;
  }
}

}  // namespace

TEST(WalCrashMatrixTest, RecoveryYieldsPrefixAtEveryCrashPoint) {
  struct Point {
    stm::ChaosPoint p;
    double prob;
    const char* name;
  };
  // Rotation gates fire far less often than per-batch gates; a higher
  // probability keeps the crash near-certain while still letting a few
  // segments accumulate first.
  const Point points[] = {
      {stm::ChaosPoint::WalAppend, 0.05, "append"},
      {stm::ChaosPoint::WalSeal, 0.05, "seal"},
      {stm::ChaosPoint::WalFsync, 0.05, "fsync"},
      {stm::ChaosPoint::WalRotate, 0.35, "rotate"},
  };
  const std::uint64_t seed = base_seed();
  std::fprintf(stderr,
               "[wal-crash] base seed %llu (override: PROUST_CHAOS_SEED)\n",
               static_cast<unsigned long long>(seed));

  const std::string root =
      "wal_crash_" + std::to_string(static_cast<unsigned long long>(::getpid()));
  int crashes = 0;
  for (const Point& pt : points) {
    for (const stm::WalDurability mode :
         {stm::WalDurability::Relaxed, stm::WalDurability::Strict}) {
      SCOPED_TRACE(std::string(pt.name) + "/" + stm::to_string(mode) +
                   " seed=" + std::to_string(seed));
      const std::string dir =
          root + "/" + pt.name + "_" + stm::to_string(mode);
      const ChildResult r = run_matrix_point(dir, pt.p, pt.prob, mode, seed);
      check_contract(r, mode);
      if (r.crashed) {
        ++crashes;
        // A crash mid-stream should leave real history behind for most
        // gates; at minimum the recovered prefix obeys the contract above.
        EXPECT_LT(r.recovered.size(), expected_committed_js().size())
            << "a killed child cannot have drained everything";
      }
      if (HasFatalFailure()) return;  // keep the first failing combo's dir
    }
  }
  // With these probabilities a crash is drawn with overwhelming likelihood
  // in every combo; require at least one so the matrix cannot silently
  // degrade into testing only clean shutdowns.
  EXPECT_GE(crashes, 1) << "no crash was ever injected — gates dead?";
  std::fprintf(stderr, "[wal-crash] %d/8 matrix points crashed\n", crashes);
  std::error_code ec;
  fs::remove_all(root, ec);
}

// Torn-append coverage: with crash certain at the very first WalAppend
// gate, the file holds the batch header plus half its payload — recovery
// must truncate the tear back to the segment header and report an empty
// (but healthy) log.
TEST(WalCrashMatrixTest, FirstAppendTearTruncatesToEmptyLog) {
  const std::string dir = "wal_crash_tear_" +
                          std::to_string(static_cast<unsigned long long>(::getpid()));
  const ChildResult r = run_matrix_point(
      dir, stm::ChaosPoint::WalAppend, 1.0, stm::WalDurability::Relaxed,
      base_seed() + 17);
  EXPECT_TRUE(r.crashed);
  EXPECT_EQ(r.recovered.size(), 0u);
  EXPECT_TRUE(r.info.torn_tail) << "the half-written batch must be detected";
  EXPECT_GT(r.info.truncated_bytes, 0u);
  EXPECT_EQ(r.acked.size() == 0 || r.committed.size() >= r.acked.size(), true);
  std::error_code ec;
  fs::remove_all(dir, ec);
}
