// Direct tests for AbstractLock and the two lock-allocator policies — the
// framework pieces underneath every wrapper — plus the TxnSet adapter.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/abstract_lock.hpp"
#include "core/lap.hpp"
#include "core/txn_set.hpp"
#include "stm/stm.hpp"

using namespace proust;
using namespace std::chrono_literals;

TEST(OptimisticLap, WriteAcquireWritesUniqueStampToCaSlot) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 16);
  stm.stats().reset();
  stm.atomically([&](stm::Txn& tx) {
    lap.acquire(tx, 3, /*write=*/true);
    lap.acquire(tx, 3, /*write=*/true);  // second write, new stamp
  });
  const auto s = stm.stats().snapshot();
  EXPECT_EQ(s.writes, 2u);
  EXPECT_EQ(s.reads, 2u) << "write acquires validate the stripe first";
}

TEST(OptimisticLap, ReadAcquireIsValidatedRead) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 16);
  stm.stats().reset();
  stm.atomically([&](stm::Txn& tx) { lap.acquire(tx, 5, /*write=*/false); });
  const auto s = stm.stats().snapshot();
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.writes, 0u);
}

TEST(OptimisticLap, StripingMapsKeysModuloRegion) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 8);
  EXPECT_EQ(lap.region_size(), 8u);
  // Two txns writing keys that collide modulo the region must conflict:
  // demonstrate via the Lazy STM — a committed conflicting CA write
  // invalidates the reader.
  stm::Stm stm2(stm::Mode::Lazy);
  core::OptimisticLap<long> small(stm2, 1);  // everything collides
  std::atomic<int> stage{0};
  int attempts = 0;
  std::thread reader([&] {
    stm2.atomically([&](stm::Txn& tx) {
      ++attempts;
      small.acquire(tx, 100, /*write=*/false);
      if (attempts == 1) {
        stage.store(1);
        while (stage.load() < 2) std::this_thread::yield();
      }
      small.acquire(tx, 100, /*write=*/false);
    });
  });
  while (stage.load() < 1) std::this_thread::yield();
  stm2.atomically([&](stm::Txn& tx) {
    small.acquire(tx, 999, /*write=*/true);  // different key, same slot
  });
  stage.store(2);
  reader.join();
  EXPECT_EQ(attempts, 2) << "false conflict via striping must abort reader";
}

TEST(PessimisticLap, LocksReleasedOnCommitAndAbort) {
  stm::Stm stm(stm::Mode::Lazy);
  core::PessimisticLap<long> lap(stm, 16, std::chrono::milliseconds(5));
  // Commit path.
  stm.atomically([&](stm::Txn& tx) { lap.acquire(tx, 1, true); });
  // If the lock leaked, this second acquisition from a different txn object
  // would time out.
  stm.atomically([&](stm::Txn& tx) { lap.acquire(tx, 1, true); });
  // Abort path.
  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 lap.acquire(tx, 2, true);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  stm.atomically([&](stm::Txn& tx) { lap.acquire(tx, 2, true); });
}

TEST(PessimisticLap, TimeoutAbortsAndRetries) {
  stm::Stm stm(stm::Mode::Lazy);
  core::PessimisticLap<long> lap(stm, 16, std::chrono::milliseconds(2));
  std::atomic<int> stage{0};
  std::thread holder([&] {
    stm.atomically([&](stm::Txn& tx) {
      lap.acquire(tx, 7, /*write=*/true);
      stage.store(1);
      while (stage.load() < 2) std::this_thread::yield();
    });
  });
  while (stage.load() < 1) std::this_thread::yield();
  std::atomic<bool> done{false};
  std::thread contender([&] {
    stm.atomically([&](stm::Txn& tx) { lap.acquire(tx, 7, true); });
    done.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(done.load());
  stage.store(2);
  holder.join();
  contender.join();
  EXPECT_TRUE(done.load());
  EXPECT_GE(stm.stats().snapshot().aborts[static_cast<std::size_t>(
                stm::AbortReason::AbstractLockTimeout)],
            1u);
}

TEST(PessimisticLap, ReleaseWalksEachHeldStripeExactlyOnce) {
  // Regression for the old remember_for_release: its back()-only dedup
  // missed re-acquires of any *earlier* stripe, so alternating acquisitions
  // grew the release list without bound and released stripes repeatedly.
  // The hold records keep exactly one entry per distinct stripe.
  stm::Stm stm(stm::Mode::Lazy);
  core::PessimisticLap<long> lap(stm, 16, std::chrono::milliseconds(5));
  std::size_t after_first_round = 0, after_many_rounds = 0;
  stm.atomically([&](stm::Txn& tx) {
    for (long k = 0; k < 4; ++k) lap.acquire(tx, k, /*write=*/true);
    after_first_round = tx.lock_holds().size();
    for (int rep = 0; rep < 50; ++rep) {
      for (long k = 0; k < 4; ++k) lap.acquire(tx, k, rep % 2 == 0);
    }
    after_many_rounds = tx.lock_holds().size();
  });
  EXPECT_EQ(after_many_rounds, after_first_round)
      << "re-acquiring earlier stripes must not add release entries";
  EXPECT_LE(after_first_round, 4u);
  // And the walk really released everything: a fresh transaction can take
  // every stripe in write mode immediately.
  stm.atomically([&](stm::Txn& tx) {
    for (long k = 0; k < 4; ++k) lap.acquire(tx, k, /*write=*/true);
  });
}

TEST(PessimisticLap, TwoLapsReleaseOnlyTheirOwnHolds) {
  // Hold records from different LAPs share the transaction's flat array;
  // each LAP's finish hook must release exactly its own group.
  stm::Stm stm(stm::Mode::Lazy);
  core::PessimisticLap<long> lap_a(stm, 8, std::chrono::milliseconds(5));
  core::PessimisticLap<long> lap_b(stm, 8, std::chrono::milliseconds(5));
  stm.atomically([&](stm::Txn& tx) {
    lap_a.acquire(tx, 1, true);
    lap_b.acquire(tx, 1, true);
    lap_a.acquire(tx, 2, false);
    EXPECT_GE(tx.lock_holds().size(), 2u);
  });
  // Both laps fully released on commit.
  stm.atomically([&](stm::Txn& tx) {
    lap_a.acquire(tx, 1, true);
    lap_a.acquire(tx, 2, true);
    lap_b.acquire(tx, 1, true);
  });
}

TEST(AbstractLock, EagerInverseReceivesOpResult) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 16);
  core::AbstractLock<long, core::OptimisticLap<long>> lock(
      lap, core::UpdateStrategy::Eager);
  long inverse_saw = -1;
  try {
    stm.atomically([&](stm::Txn& tx) {
      const long r = lock.apply(
          tx, {core::Write(1L)}, [] { return 42L; },
          [&](long result) { inverse_saw = result; });
      EXPECT_EQ(r, 42);
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(inverse_saw, 42);
}

TEST(AbstractLock, VoidOpWithInverse) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 16);
  core::AbstractLock<long, core::OptimisticLap<long>> lock(
      lap, core::UpdateStrategy::Eager);
  int op_runs = 0, inverse_runs = 0;
  try {
    stm.atomically([&](stm::Txn& tx) {
      lock.apply(tx, {core::Write(1L)}, [&] { ++op_runs; },
                 [&] { ++inverse_runs; });
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(op_runs, 1);
  EXPECT_EQ(inverse_runs, 1);
}

TEST(AbstractLock, LazyWriteLocksReadAfterOp) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 16);
  core::AbstractLock<long, core::OptimisticLap<long>> lock(
      lap, core::UpdateStrategy::Lazy);
  stm.stats().reset();
  stm.atomically([&](stm::Txn& tx) {
    lock.apply(tx, {core::Write(1L)}, [] { return 0; });
  });
  const auto s = stm.stats().snapshot();
  EXPECT_EQ(s.writes, 1u) << "CA write before the op";
  EXPECT_EQ(s.reads, 2u)
      << "validated read before the op + Theorem 5.3 read-after";
}

TEST(AbstractLock, EagerDoesNotReadAfterOp) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 16);
  core::AbstractLock<long, core::OptimisticLap<long>> lock(
      lap, core::UpdateStrategy::Eager);
  stm.stats().reset();
  stm.atomically([&](stm::Txn& tx) {
    lock.apply(tx, {core::Write(1L)}, [] { return 0; }, [](int) {});
  });
  const auto s = stm.stats().snapshot();
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.reads, 1u) << "read-before only; no read-after for eager";
}

TEST(TxnSet, AddRemoveContains) {
  stm::Stm stm(stm::Mode::EagerAll);
  core::OptimisticLap<long> lap(stm, 64);
  core::TxnSet<long, core::OptimisticLap<long>> set(lap);
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_TRUE(set.add(tx, 5));
    EXPECT_FALSE(set.add(tx, 5));  // already present
    EXPECT_TRUE(set.contains(tx, 5));
    EXPECT_TRUE(set.remove(tx, 5));
    EXPECT_FALSE(set.remove(tx, 5));
    EXPECT_FALSE(set.contains(tx, 5));
  });
}

TEST(TxnSet, SizeAndAbort) {
  stm::Stm stm(stm::Mode::EagerAll);
  core::OptimisticLap<long> lap(stm, 64);
  core::TxnSet<long, core::OptimisticLap<long>> set(lap);
  stm.atomically([&](stm::Txn& tx) {
    set.add(tx, 1);
    set.add(tx, 2);
  });
  EXPECT_EQ(set.size(), 2);
  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 set.add(tx, 3);
                 set.remove(tx, 1);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(set.size(), 2);
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_TRUE(set.contains(tx, 1));
    EXPECT_FALSE(set.contains(tx, 3));
  });
}

TEST(TxnSet, ConcurrentDisjointAddsDoNotConflict) {
  stm::Stm stm(stm::Mode::EagerAll);
  core::OptimisticLap<long> lap(stm, 1024);
  core::TxnSet<long, core::OptimisticLap<long>> set(lap);
  stm.stats().reset();
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      for (long i = 0; i < 500; ++i) {
        stm.atomically([&](stm::Txn& tx) { set.add(tx, t * 1000 + i); });
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(set.size(), 2000);
}
