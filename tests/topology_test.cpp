// Topology detection, pin plans, and the NUMA-aware placement plumbing
// (DESIGN.md §13). Detection is tested against synthetic sysfs fixture
// trees so the assertions are exact regardless of the host: a two-node SMT
// machine, a single-CPU machine, and assorted malformed/missing-file trees
// that must degrade to the flat fallback. The Stm-level pinning test runs
// against the real host and skips when the kernel refuses affinity calls
// (restricted cpusets, exotic sandboxes).
#include <gtest/gtest.h>
#include <sched.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/csv.hpp"
#include "common/topology.hpp"
#include "core/read_seq.hpp"
#include "stm/stm.hpp"

namespace fs = std::filesystem;
using namespace proust;

namespace {

/// A throwaway sysfs-shaped directory tree under the system temp dir.
class SysfsFixture {
 public:
  SysfsFixture() {
    root_ = fs::temp_directory_path() /
            ("proust_topo_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + std::to_string(counter_++));
    fs::create_directories(root_);
    root_str_ = root_.string();
  }
  SysfsFixture(const SysfsFixture&) = delete;
  SysfsFixture& operator=(const SysfsFixture&) = delete;
  ~SysfsFixture() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  const std::string& root() const { return root_str_; }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream f(p);
    f << content;
  }

  void cpu(int id, int package, int core) {
    const std::string base =
        "devices/system/cpu/cpu" + std::to_string(id) + "/topology/";
    write(base + "physical_package_id", std::to_string(package) + "\n");
    write(base + "core_id", std::to_string(core) + "\n");
  }

  void node(int id, const std::string& cpulist) {
    write("devices/system/node/node" + std::to_string(id) + "/cpulist",
          cpulist + "\n");
  }

 private:
  static inline int counter_ = 0;
  fs::path root_;
  std::string root_str_;
};

/// Two nodes, two packages, SMT pairs, with node membership *interleaved*
/// by CPU id (even ids node 0, odd ids node 1) so plan ordering is not the
/// identity and the sort keys are actually exercised:
///   cpu: 0  1  2  3  4  5  6  7
///   pkg: 0  1  0  1  0  1  0  1
///  core: 0  0  1  1  0  0  1  1   (cpu4 is cpu0's SMT sibling, etc.)
///  node: 0  1  0  1  0  1  0  1
void populate_two_node_smt(SysfsFixture& fx) {
  fx.write("devices/system/cpu/online", "0-7\n");
  for (int c = 0; c < 8; ++c) fx.cpu(c, c % 2, (c / 2) % 2);
  fx.node(0, "0,2,4,6");
  fx.node(1, "1,3,5,7");
}

}  // namespace

TEST(TopologyDetect, TwoNodeSmtParses) {
  SysfsFixture fx;
  populate_two_node_smt(fx);
  const topo::Topology t = topo::Topology::detect(fx.root());
  ASSERT_EQ(t.cpu_count(), 8u);
  EXPECT_EQ(t.node_count, 2u);
  EXPECT_TRUE(t.smt);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(5), 1);
  EXPECT_EQ(t.node_of(999), 0);  // unknown CPU defaults to node 0
  for (const topo::CpuInfo& c : t.cpus) {
    EXPECT_EQ(c.node, c.cpu % 2);
    EXPECT_EQ(c.package, c.cpu % 2);
    EXPECT_EQ(c.core, (c.cpu / 2) % 2);
  }
}

TEST(TopologyDetect, CpulistRangesAndSingles) {
  SysfsFixture fx;
  fx.write("devices/system/cpu/online", "0-2,5\n");
  for (int c : {0, 1, 2, 5}) fx.cpu(c, 0, c);
  fx.node(0, "0-2,5");
  const topo::Topology t = topo::Topology::detect(fx.root());
  ASSERT_EQ(t.cpu_count(), 4u);
  EXPECT_EQ(t.cpus[3].cpu, 5);
  EXPECT_FALSE(t.smt);
  EXPECT_EQ(t.node_count, 1u);
}

TEST(TopologyDetect, SingleCpu) {
  SysfsFixture fx;
  fx.write("devices/system/cpu/online", "0\n");
  fx.cpu(0, 0, 0);
  fx.node(0, "0");
  const topo::Topology t = topo::Topology::detect(fx.root());
  ASSERT_EQ(t.cpu_count(), 1u);
  EXPECT_EQ(t.node_count, 1u);
  EXPECT_FALSE(t.smt);
  EXPECT_EQ(t.pin_plan(topo::PinPolicy::Compact), std::vector<int>{0});
  EXPECT_EQ(t.pin_plan(topo::PinPolicy::Scatter), std::vector<int>{0});
}

TEST(TopologyDetect, MissingRootFallsBack) {
  const topo::Topology t =
      topo::Topology::detect("/nonexistent/proust/sysfs/root");
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  ASSERT_EQ(t.cpu_count(), hw);
  EXPECT_EQ(t.node_count, 1u);
  EXPECT_FALSE(t.smt);
  for (const topo::CpuInfo& c : t.cpus) {
    EXPECT_EQ(c.node, 0);
    EXPECT_EQ(c.package, 0);
  }
}

TEST(TopologyDetect, MalformedOnlineFallsBack) {
  SysfsFixture fx;
  fx.write("devices/system/cpu/online", "banana\n");
  const topo::Topology t = topo::Topology::detect(fx.root());
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  EXPECT_EQ(t.cpu_count(), hw);
  EXPECT_EQ(t.node_count, 1u);
}

TEST(TopologyDetect, MissingPerCpuFilesDegradeGracefully) {
  // online parses but no topology/ or node/ entries exist: core defaults to
  // the CPU id (distinct cores, so no false SMT) and everything lands on
  // one node.
  SysfsFixture fx;
  fx.write("devices/system/cpu/online", "0-1\n");
  const topo::Topology t = topo::Topology::detect(fx.root());
  ASSERT_EQ(t.cpu_count(), 2u);
  EXPECT_FALSE(t.smt);
  EXPECT_EQ(t.node_count, 1u);
  EXPECT_EQ(t.cpus[0].core, 0);
  EXPECT_EQ(t.cpus[1].core, 1);
}

TEST(PinPlan, CompactFillsNodeThenSiblings) {
  SysfsFixture fx;
  populate_two_node_smt(fx);
  const topo::Topology t = topo::Topology::detect(fx.root());
  // Node 0 first; within it core 0's two hardware threads (0, 4) before
  // core 1's (2, 6); then node 1 the same way.
  EXPECT_EQ(t.pin_plan(topo::PinPolicy::Compact),
            (std::vector<int>{0, 4, 2, 6, 1, 5, 3, 7}));
}

TEST(PinPlan, ScatterAlternatesNodesCoresFirst) {
  SysfsFixture fx;
  populate_two_node_smt(fx);
  const topo::Topology t = topo::Topology::detect(fx.root());
  const std::vector<int> plan = t.pin_plan(topo::PinPolicy::Scatter);
  ASSERT_EQ(plan.size(), 8u);
  // First half: one hardware thread per physical core, alternating nodes.
  // Second half: the SMT siblings, same order.
  EXPECT_EQ(plan, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.node_of(plan[i]), static_cast<int>(i % 2));
  }
}

TEST(PinPlan, NoneAndExplicit) {
  SysfsFixture fx;
  populate_two_node_smt(fx);
  const topo::Topology t = topo::Topology::detect(fx.root());
  EXPECT_TRUE(t.pin_plan(topo::PinPolicy::None).empty());
  EXPECT_TRUE(t.pin_plan(topo::PinPolicy::Explicit, {}).empty());
  EXPECT_EQ(t.pin_plan(topo::PinPolicy::Explicit, {6, 1, 6}),
            (std::vector<int>{6, 1, 6}));
}

TEST(PinPlan, PolicyAndPlacementStrings) {
  EXPECT_STREQ(topo::to_string(topo::PinPolicy::Compact), "compact");
  EXPECT_STREQ(topo::to_string(topo::NumaPlacement::Replicate), "replicate");
  topo::PinPolicy p{};
  EXPECT_TRUE(topo::parse_pin_policy("scatter", p));
  EXPECT_EQ(p, topo::PinPolicy::Scatter);
  EXPECT_FALSE(topo::parse_pin_policy("sideways", p));
  topo::NumaPlacement n{};
  EXPECT_TRUE(topo::parse_numa_placement("interleave", n));
  EXPECT_EQ(n, topo::NumaPlacement::Interleave);
  EXPECT_FALSE(topo::parse_numa_placement("everywhere", n));
}

TEST(StmPinning, CompactPolicyBindsTransactionThread) {
  const topo::Topology& host = topo::Topology::system();
  const std::vector<int> plan = host.pin_plan(topo::PinPolicy::Compact);
  ASSERT_FALSE(plan.empty());

  cpu_set_t original;
  CPU_ZERO(&original);
  if (sched_getaffinity(0, sizeof(original), &original) != 0) {
    GTEST_SKIP() << "sched_getaffinity unavailable";
  }
  // Probe whether this environment lets us pin at all (restricted cpusets
  // make pin_self_to advisory-fail, which the runtime tolerates silently).
  if (!topo::pin_self_to(plan[0])) {
    sched_setaffinity(0, sizeof(original), &original);
    GTEST_SKIP() << "affinity calls refused; pinning is advisory here";
  }
  sched_setaffinity(0, sizeof(original), &original);

  stm::StmOptions opts;
  opts.pinning = topo::PinPolicy::Compact;
  stm::Stm stm(stm::Mode::Lazy, opts);
  unsigned slot = 0;
  stm.atomically([&](stm::Txn& tx) { slot = tx.slot(); });

  cpu_set_t after;
  CPU_ZERO(&after);
  ASSERT_EQ(sched_getaffinity(0, sizeof(after), &after), 0);
  EXPECT_EQ(CPU_COUNT(&after), 1);
  EXPECT_TRUE(CPU_ISSET(plan[slot % plan.size()], &after));

  sched_setaffinity(0, sizeof(original), &original);
}

TEST(StmPinning, ExplicitListUsedVerbatim) {
  cpu_set_t original;
  CPU_ZERO(&original);
  if (sched_getaffinity(0, sizeof(original), &original) != 0 ||
      !topo::pin_self_to(0)) {
    GTEST_SKIP() << "affinity calls refused";
  }
  sched_setaffinity(0, sizeof(original), &original);

  stm::StmOptions opts;
  opts.pinning = topo::PinPolicy::Explicit;
  opts.pin_cpus = {0};
  stm::Stm stm(stm::Mode::Lazy, opts);
  stm.atomically([](stm::Txn&) {});

  cpu_set_t after;
  CPU_ZERO(&after);
  ASSERT_EQ(sched_getaffinity(0, sizeof(after), &after), 0);
  EXPECT_TRUE(CPU_ISSET(0, &after));
  EXPECT_EQ(CPU_COUNT(&after), 1);
  sched_setaffinity(0, sizeof(original), &original);
}

TEST(ReadSeqReplicate, ForcedBanksPinAndReleaseTogether) {
  // forced_banks=2 exercises the replicated layout on a single-node host:
  // a mutator's pin must make the stripe unstable in every bank, and the
  // finish hook must bump every held word back even.
  core::ReadSeqTable table(8, topo::NumaPlacement::Replicate,
                           /*forced_banks=*/2);
  EXPECT_EQ(table.banks(), 2u);
  EXPECT_EQ(table.stripes(), 8u);
  EXPECT_EQ(table.word(3), table.word(11));  // stripe index is masked

  stm::Stm stm(stm::Mode::Lazy);
  stm.atomically([&](stm::Txn& tx) {
    table.writer_pin(tx, 3);
    table.writer_pin(tx, 3);  // idempotent per attempt
    EXPECT_FALSE(core::ReadSeqTable::stable(table.load(3)));
    EXPECT_EQ(table.load(3), 1u);  // pinned once, not twice
    EXPECT_TRUE(core::ReadSeqTable::stable(table.load(4)));
  });
  // Released in every bank: each word went 0 -> 1 -> 2.
  EXPECT_TRUE(core::ReadSeqTable::stable(table.load(3)));
  EXPECT_EQ(table.load(3), 2u);
  EXPECT_EQ(table.load(4), 0u);
}

TEST(ReadSeqReplicate, AbortReleasesEveryBank) {
  core::ReadSeqTable table(4, topo::NumaPlacement::Replicate,
                           /*forced_banks=*/2);
  stm::Stm stm(stm::Mode::Lazy);
  struct Bail {};
  try {
    stm.atomically([&](stm::Txn& tx) {
      table.writer_pin(tx, 1);
      throw Bail{};
    });
  } catch (const Bail&) {
  }
  EXPECT_TRUE(core::ReadSeqTable::stable(table.load(1)));
  EXPECT_EQ(table.load(1), 2u);
}

TEST(NumaArray, ConstructsAndDestroysElements) {
  topo::NumaArray<std::vector<int>> arr(3, /*interleave=*/true);
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].empty());
  arr[2].push_back(7);
  EXPECT_EQ(arr[2][0], 7);
  topo::NumaArray<std::vector<int>> moved = std::move(arr);
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(arr.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(Csv, RowCountMismatchThrows) {
  bench::CsvWriter csv({"a", "b"});
  csv.row({"1", "2"});
  EXPECT_THROW(csv.row({"1"}), std::invalid_argument);
  EXPECT_THROW(csv.row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_EQ(csv.row_count(), 1u);
}

TEST(Csv, Rfc4180Escaping) {
  EXPECT_EQ(bench::CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(bench::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(bench::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(bench::CsvWriter::escape("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(bench::CsvWriter::fmt(1.25, 1), "1.2");
  EXPECT_EQ(bench::CsvWriter::fmt(3.14159, 3), "3.142");
}

TEST(Csv, WritesHeaderAndHostFields) {
  std::vector<std::string> cols{"x"};
  for (const std::string& c : bench::CsvWriter::host_columns()) {
    cols.push_back(c);
  }
  bench::CsvWriter csv(cols);
  std::vector<std::string> row{"1"};
  for (const std::string& f : bench::CsvWriter::host_fields()) {
    row.push_back(f);
  }
  csv.row(row);

  const fs::path path =
      fs::temp_directory_path() / "proust_csv_test_out.csv";
  ASSERT_TRUE(csv.write(path.string()));
  std::ifstream in(path);
  std::string header, data;
  std::getline(in, header);
  std::getline(in, data);
  EXPECT_EQ(header, "x,host_cpus,host_nodes,host_smt");
  EXPECT_EQ(data.substr(0, 2), "1,");
  std::error_code ec;
  fs::remove(path, ec);
}
