// Storage-fault injection at the syscall gate (common/chaos_fs.hpp, ctest
// label "durability"): scripted and probabilistic faults through the Fs
// seam, the WAL's per-errno policies (bounded retry on transients,
// immediate fail-stop on EIO/ENOSPC, fsync-always-fatal), short-write
// healing, and the StmOptions::wal_fail_mode degradation split
// (read-only-durability vs fail-stop).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/chaos_fs.hpp"
#include "stm/stm.hpp"
#include "stm/wal.hpp"

namespace stm = proust::stm;
namespace common = proust::common;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const char* tag) {
    path = std::string("chaos_fs_test_") + tag + "_" +
           std::to_string(static_cast<unsigned long long>(::getpid()));
    fs::remove_all(path);
    fs::create_directory(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::uint64_t recover_count(const std::string& dir) {
  std::uint64_t n = 0;
  stm::Wal::recover(dir, [&](const stm::WalRecordView&) { ++n; });
  return n;
}

}  // namespace

TEST(ChaosFsTest, ScriptedFaultsFireOnceInFifoOrderPerOp) {
  TempDir dir("script");
  common::ChaosFs cfs;
  cfs.inject_once({common::FsOp::Write, EIO, false});
  cfs.inject_once({common::FsOp::Write, ENOSPC, false});
  cfs.inject_once({common::FsOp::Fsync, EIO, false});

  const std::string p = dir.path + "/probe";
  const int fd = cfs.open(p.c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(fd, 0) << "no open fault scripted";

  errno = 0;
  EXPECT_EQ(cfs.write(fd, "x", 1), -1);
  EXPECT_EQ(errno, EIO);
  errno = 0;
  EXPECT_EQ(cfs.write(fd, "x", 1), -1);
  EXPECT_EQ(errno, ENOSPC) << "scripted faults must drain FIFO";
  EXPECT_EQ(cfs.write(fd, "x", 1), 1) << "script exhausted: real call";

  errno = 0;
  EXPECT_EQ(cfs.fsync(fd), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(cfs.fsync(fd), 0);
  EXPECT_EQ(cfs.close(fd), 0);

  const common::ChaosFs::Counters c = cfs.counters();
  EXPECT_EQ(c.calls[static_cast<std::size_t>(common::FsOp::Write)], 3u);
  EXPECT_EQ(c.injected[static_cast<std::size_t>(common::FsOp::Write)], 2u);
  EXPECT_EQ(c.injected[static_cast<std::size_t>(common::FsOp::Fsync)], 1u);
}

TEST(ChaosFsTest, ShortWritesDeliverARealPrefixTheCallerHeals) {
  TempDir dir("short");
  common::ChaosFsConfig cfg;
  cfg.seed = 42;
  cfg.short_write_prob = 0.5;  // every other write, roughly
  common::ChaosFs cfs(cfg);

  stm::WalOptions wopts;
  wopts.dir = dir.path;
  wopts.fs = &cfs;
  wopts.fsync_every_n = 4;
  {
    stm::Wal wal(wopts);
    stm::StmOptions opts;
    opts.durability = &wal;
    stm::Stm s(stm::Mode::Lazy, opts);
    std::uint8_t blob[48] = {};
    for (std::uint32_t i = 0; i < 100; ++i) {
      std::memcpy(blob, &i, sizeof i);
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, blob, sizeof blob); });
    }
    wal.flush();
    EXPECT_FALSE(wal.failed());
  }
  EXPECT_GT(cfs.counters().short_writes, 0u) << "injection never fired";
  EXPECT_EQ(recover_count(dir.path), 100u)
      << "write_all must absorb short writes without corrupting the log";
}

TEST(ChaosFsTest, TransientErrorsRetryWithBackoffAndSucceed) {
  TempDir dir("retry");
  common::ChaosFs cfs;
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  wopts.fs = &cfs;
  wopts.fsync_every_n = 1;
  wopts.durability = stm::WalDurability::Strict;
  wopts.retry_backoff = std::chrono::microseconds(1);
  stm::Wal wal(wopts);
  stm::StmOptions opts;
  opts.durability = &wal;
  stm::Stm s(stm::Mode::Lazy, opts);

  // Two transient failures back to back: under retry_limit (4), so the
  // batch still lands and the strict ack comes back.
  cfs.inject_once({common::FsOp::Write, EAGAIN, false});
  cfs.inject_once({common::FsOp::Write, EAGAIN, false});
  const std::uint32_t x = 7;
  s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &x, sizeof x); });
  EXPECT_FALSE(wal.failed());
  EXPECT_GE(wal.stats().retries, 2u);
  EXPECT_EQ(wal.stats().errors, 0u) << "a healed transient is not an error";
}

TEST(ChaosFsTest, ExhaustedRetriesFailTheLog) {
  TempDir dir("exhaust");
  common::ChaosFs cfs;
  stm::WalError seen{};
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  wopts.fs = &cfs;
  wopts.fsync_every_n = 1;
  wopts.durability = stm::WalDurability::Strict;
  wopts.retry_limit = 2;
  wopts.retry_backoff = std::chrono::microseconds(1);
  wopts.on_error = [&](const stm::WalError& e) { seen = e; };
  stm::Wal wal(wopts);
  stm::StmOptions opts;
  opts.durability = &wal;
  stm::Stm s(stm::Mode::Lazy, opts);

  // retry_limit=2 allows two retries; a third consecutive transient on the
  // same write exhausts the budget.
  for (int i = 0; i < 8; ++i) {
    cfs.inject_once({common::FsOp::Write, EAGAIN, false});
  }
  const std::uint32_t x = 9;
  EXPECT_THROW(
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &x, sizeof x); }),
      stm::WalUnavailable);
  EXPECT_TRUE(wal.failed());
  EXPECT_EQ(seen.err, EAGAIN);
}

TEST(ChaosFsTest, HardErrorsFailStopWithoutRetry) {
  TempDir dir("enospc");
  common::ChaosFs cfs;
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  wopts.fs = &cfs;
  wopts.fsync_every_n = 1;
  wopts.durability = stm::WalDurability::Strict;
  stm::Wal wal(wopts);
  stm::StmOptions opts;
  opts.durability = &wal;
  stm::Stm s(stm::Mode::Lazy, opts);

  cfs.inject_once({common::FsOp::Write, ENOSPC, false});
  const std::uint32_t x = 1;
  EXPECT_THROW(
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &x, sizeof x); }),
      stm::WalUnavailable);
  EXPECT_TRUE(wal.failed());
  EXPECT_EQ(wal.stats().retries, 0u) << "ENOSPC is fatal, never retried";
}

TEST(ChaosFsTest, FsyncFailureIsFatalWhateverThePolicySays) {
  TempDir dir("fsyncgate");
  common::ChaosFs cfs;
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  wopts.fs = &cfs;
  wopts.fsync_every_n = 1;
  wopts.durability = stm::WalDurability::Strict;
  // A policy that calls *everything* transient: the write path would retry
  // forever-ish, but fsync must ignore it (fsyncgate — after a failed fsync
  // the kernel may have dropped the dirty pages, so a retried fsync can ack
  // data that never hit the disk).
  wopts.error_policy = [](int) { return stm::WalErrorPolicy::Retry; };
  stm::Wal wal(wopts);
  stm::StmOptions opts;
  opts.durability = &wal;
  stm::Stm s(stm::Mode::Lazy, opts);

  cfs.inject_once({common::FsOp::Fsync, EIO, false});
  const std::uint32_t x = 3;
  EXPECT_THROW(
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &x, sizeof x); }),
      stm::WalUnavailable);
  EXPECT_TRUE(wal.failed());
  EXPECT_EQ(wal.stats().retries, 0u);
}

TEST(ChaosFsTest, FailStopModeRefusesEveryMutatingCommit) {
  TempDir dir("failmode");
  common::ChaosFs cfs;
  stm::WalOptions wopts;
  wopts.dir = dir.path;
  wopts.fs = &cfs;
  wopts.fsync_every_n = 1;
  wopts.durability = stm::WalDurability::Strict;
  stm::Wal wal(wopts);
  stm::StmOptions opts;
  opts.durability = &wal;
  opts.wal_fail_mode = stm::WalFailMode::FailStop;
  stm::Stm s(stm::Mode::Lazy, opts);
  stm::Var<long> v(11);

  cfs.inject_once({common::FsOp::Write, EIO, false});
  const std::uint32_t x = 1;
  EXPECT_THROW(
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &x, sizeof x); }),
      stm::WalUnavailable);
  ASSERT_TRUE(wal.failed());

  // A would-be logging commit on the failed log is refused up front (this
  // path is common to both fail modes and counts wal_refused; the original
  // in-flight failure above surfaced from the append itself, not the gate).
  EXPECT_THROW(
      s.atomically([&](stm::Txn& tx) { tx.wal_log(1, &x, sizeof x); }),
      stm::WalUnavailable);

  // FailStop: even a commit that would not have logged (plain Var write,
  // no registered vars) is refused — in-memory state freezes at the
  // failure point...
  EXPECT_THROW(s.atomically([&](stm::Txn& tx) { v.write(tx, 99); }),
               stm::WalUnavailable);
  // ...while read-only transactions still commit.
  EXPECT_EQ(s.atomically([&](stm::Txn& tx) { return v.read(tx); }), 11);
  const stm::StatsSnapshot st = s.stats().snapshot();
  EXPECT_GE(st.wal_refused, 2u);

  // Default mode on the same failed log: the plain write goes through.
  stm::StmOptions ro = opts;
  ro.wal_fail_mode = stm::WalFailMode::ReadOnlyDurability;
  stm::Stm s2(stm::Mode::Lazy, ro);
  s2.atomically([&](stm::Txn& tx) { v.write(tx, 99); });
  EXPECT_EQ(s2.atomically([&](stm::Txn& tx) { return v.read(tx); }), 99);
}
