// Tests for the striped concurrent hash map (the ConcurrentHashMap
// stand-in wrapped by the Proustian maps).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>

#include "containers/striped_hash_map.hpp"

using proust::containers::StripedHashMap;

TEST(StripedHashMap, PutGetRoundTrip) {
  StripedHashMap<long, std::string> m;
  EXPECT_EQ(m.put(1, "one"), std::nullopt);
  EXPECT_EQ(m.get(1), "one");
  EXPECT_EQ(m.put(1, "uno"), "one");
  EXPECT_EQ(m.get(1), "uno");
}

TEST(StripedHashMap, GetAbsentReturnsNullopt) {
  StripedHashMap<long, long> m;
  EXPECT_EQ(m.get(42), std::nullopt);
  EXPECT_FALSE(m.contains(42));
}

TEST(StripedHashMap, RemoveReturnsOldValue) {
  StripedHashMap<long, long> m;
  m.put(3, 30);
  EXPECT_EQ(m.remove(3), 30);
  EXPECT_EQ(m.remove(3), std::nullopt);
  EXPECT_FALSE(m.contains(3));
}

TEST(StripedHashMap, PutIfAbsentOnlyInsertsOnce) {
  StripedHashMap<long, long> m;
  EXPECT_EQ(m.put_if_absent(5, 50), std::nullopt);
  EXPECT_EQ(m.put_if_absent(5, 99), 50);
  EXPECT_EQ(m.get(5), 50);
}

TEST(StripedHashMap, SizeTracksContents) {
  StripedHashMap<long, long> m;
  for (long i = 0; i < 100; ++i) m.put(i, i);
  EXPECT_EQ(m.size(), 100u);
  for (long i = 0; i < 50; ++i) m.remove(i);
  EXPECT_EQ(m.size(), 50u);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(StripedHashMap, GetOrCreateCreatesOnce) {
  StripedHashMap<long, long> m;
  int creations = 0;
  EXPECT_EQ(m.get_or_create(7, [&] { ++creations; return 70L; }), 70);
  EXPECT_EQ(m.get_or_create(7, [&] { ++creations; return 80L; }), 70);
  EXPECT_EQ(creations, 1);
}

TEST(StripedHashMap, ForEachVisitsAllEntries) {
  StripedHashMap<long, long> m;
  for (long i = 0; i < 64; ++i) m.put(i, i * 2);
  std::set<long> seen;
  long sum = 0;
  m.for_each([&](long k, long v) {
    seen.insert(k);
    sum += v;
  });
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(sum, 63 * 64);  // 2 * (0+..+63)
}

TEST(StripedHashMap, SingleStripeStillWorks) {
  StripedHashMap<long, long> m(1);
  for (long i = 0; i < 100; ++i) m.put(i, i);
  for (long i = 0; i < 100; ++i) EXPECT_EQ(m.get(i), i);
}

TEST(StripedHashMap, ConcurrentDisjointWritersDontInterfere) {
  StripedHashMap<long, long> m;
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (long i = 0; i < kPerThread; ++i) {
        m.put(t * kPerThread + i, i);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(StripedHashMap, ConcurrentSameKeyLastWriterWins) {
  StripedHashMap<long, long> m;
  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) m.put(0, t);
    });
  }
  for (auto& th : ts) th.join();
  const auto v = m.get(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_GE(*v, 0);
  EXPECT_LT(*v, kThreads);
  EXPECT_EQ(m.size(), 1u);
}

TEST(StripedHashMap, ConcurrentPutRemoveConverges) {
  StripedHashMap<long, long> m;
  std::atomic<long> net{0};  // net inserts observed via return values
  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 4000; ++i) {
        const long k = (t + i) % 32;
        if (i % 2 == 0) {
          if (!m.put(k, i)) net.fetch_add(1);
        } else {
          if (m.remove(k)) net.fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(m.size(), static_cast<std::size_t>(net.load()));
}
