// Type-erased handles over every transactional map configuration in the
// Proust design space, so the semantic test suites can run identically
// against all of them:
//   eager/optimistic, eager/pessimistic (Boosting), lazy-memo (±combining),
//   lazy-snapshot, each on the applicable STM modes, plus the two baselines.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/predication_map.hpp"
#include "baselines/pure_stm_map.hpp"
#include "core/lap.hpp"
#include "core/lazy_hash_map.hpp"
#include "core/lazy_trie_map.hpp"
#include "core/txn_hash_map.hpp"
#include "stm/stm.hpp"

namespace proust::testing {

class MapView {
 public:
  virtual std::optional<long> put(long k, long v) = 0;
  virtual std::optional<long> get(long k) = 0;
  virtual std::optional<long> remove(long k) = 0;
  virtual bool contains(long k) = 0;

 protected:
  ~MapView() = default;
};

class MapUnderTest {
 public:
  virtual ~MapUnderTest() = default;
  virtual void atomically(const std::function<void(MapView&)>& body) = 0;
  /// Like atomically, but the body also sees the transaction — for tests
  /// that register hooks (differential reference application, injected
  /// aborts) alongside map operations.
  virtual void atomically_tx(
      const std::function<void(MapView&, stm::Txn&)>& body) = 0;
  virtual long committed_size() const = 0;  // -1 if unsupported
  virtual stm::StatsSnapshot stats() = 0;
  virtual stm::Stm& stm() = 0;

  // Single-op conveniences (each its own transaction).
  std::optional<long> put1(long k, long v) {
    std::optional<long> r;
    atomically([&](MapView& m) { r = m.put(k, v); });
    return r;
  }
  std::optional<long> get1(long k) {
    std::optional<long> r;
    atomically([&](MapView& m) { r = m.get(k); });
    return r;
  }
  std::optional<long> remove1(long k) {
    std::optional<long> r;
    atomically([&](MapView& m) { r = m.remove(k); });
    return r;
  }
  bool contains1(long k) {
    bool r = false;
    atomically([&](MapView& m) { r = m.contains(k); });
    return r;
  }
};

namespace detail {

template <class Map>
class ViewImpl final : public MapView {
 public:
  ViewImpl(Map& m, stm::Txn& tx) : m_(m), tx_(tx) {}
  std::optional<long> put(long k, long v) override { return m_.put(tx_, k, v); }
  std::optional<long> get(long k) override { return m_.get(tx_, k); }
  std::optional<long> remove(long k) override { return m_.remove(tx_, k); }
  bool contains(long k) override { return m_.contains(tx_, k); }

 private:
  Map& m_;
  stm::Txn& tx_;
};

template <class Lap, class Map>
class ProustMapHandle final : public MapUnderTest {
 public:
  template <class MakeLap, class MakeMap>
  ProustMapHandle(stm::Mode mode, const stm::StmOptions& opts,
                  MakeLap&& make_lap, MakeMap&& make_map)
      : stm_(mode, opts), lap_(make_lap(stm_)), map_(make_map(*lap_)) {}

  void atomically(const std::function<void(MapView&)>& body) override {
    stm_.atomically([&](stm::Txn& tx) {
      ViewImpl<Map> v(*map_, tx);
      body(v);
    });
  }
  void atomically_tx(
      const std::function<void(MapView&, stm::Txn&)>& body) override {
    stm_.atomically([&](stm::Txn& tx) {
      ViewImpl<Map> v(*map_, tx);
      body(v, tx);
    });
  }
  long committed_size() const override { return map_->size(); }
  stm::StatsSnapshot stats() override { return stm_.stats().snapshot(); }
  stm::Stm& stm() override { return stm_; }

 private:
  stm::Stm stm_;
  std::unique_ptr<Lap> lap_;
  std::unique_ptr<Map> map_;
};

template <class Map>
class BaselineMapHandle final : public MapUnderTest {
 public:
  template <class MakeMap>
  BaselineMapHandle(stm::Mode mode, const stm::StmOptions& opts,
                    MakeMap&& make_map)
      : stm_(mode, opts), map_(make_map(stm_)) {}

  void atomically(const std::function<void(MapView&)>& body) override {
    stm_.atomically([&](stm::Txn& tx) {
      ViewImpl<Map> v(*map_, tx);
      body(v);
    });
  }
  void atomically_tx(
      const std::function<void(MapView&, stm::Txn&)>& body) override {
    stm_.atomically([&](stm::Txn& tx) {
      ViewImpl<Map> v(*map_, tx);
      body(v, tx);
    });
  }
  long committed_size() const override { return -1; }
  stm::StatsSnapshot stats() override { return stm_.stats().snapshot(); }
  stm::Stm& stm() override { return stm_; }

 private:
  stm::Stm stm_;
  std::unique_ptr<Map> map_;
};

}  // namespace detail

struct MapConfig {
  std::string name;
  /// Build the configuration on an Stm constructed with the given options
  /// (chaos policy, LAP timeouts, clock scheme, fallback threshold...).
  std::function<std::unique_ptr<MapUnderTest>(const stm::StmOptions&)>
      make_with;
  /// False for the eager/optimistic quadrant on STMs that detect some
  /// conflicts lazily: per Figure 1 (and footnote 3), that combination does
  /// not satisfy opacity — concurrent invariant tests would legitimately
  /// fail, exactly as the paper warns. tests/opacity_test.cpp demonstrates
  /// the mechanism deliberately.
  bool opaque = true;

  std::unique_ptr<MapUnderTest> make() const { return make_with({}); }
};

inline std::vector<MapConfig> all_map_configs() {
  using OptLap = core::OptimisticLap<long>;
  using PessLap = core::PessimisticLap<long>;
  std::vector<MapConfig> configs;

  const auto opt_lap = [](stm::Stm& s) {
    return std::make_unique<OptLap>(s, 256);
  };
  const auto pess_lap = [](stm::Stm& s) {
    return std::make_unique<PessLap>(s, 256);
  };

  const auto add_eager = [&](const std::string& tag, stm::Mode mode,
                             bool opaque) {
    using Map = core::TxnHashMap<long, long, OptLap>;
    configs.push_back(
        {"eager_opt_" + tag,
         [mode, opt_lap](const stm::StmOptions& o) {
           return std::make_unique<detail::ProustMapHandle<OptLap, Map>>(
               mode, o, opt_lap,
               [](OptLap& l) { return std::make_unique<Map>(l); });
         },
         opaque});
  };
  // Theorem 5.2: eager/optimistic is opaque only when the STM detects all
  // conflicts eagerly (EagerAll).
  add_eager("lazystm", stm::Mode::Lazy, /*opaque=*/false);
  add_eager("eagerwrite", stm::Mode::EagerWrite, /*opaque=*/false);
  add_eager("eagerall", stm::Mode::EagerAll, /*opaque=*/true);

  {
    using Map = core::TxnHashMap<long, long, PessLap>;
    configs.push_back(
        {"eager_pess", [pess_lap](const stm::StmOptions& o) {
           return std::make_unique<detail::ProustMapHandle<PessLap, Map>>(
               stm::Mode::Lazy, o, pess_lap,
               [](PessLap& l) { return std::make_unique<Map>(l); });
         }});
  }

  const auto add_memo = [&](const std::string& tag, stm::Mode mode,
                            bool combine) {
    using Map = core::LazyHashMap<long, long, OptLap>;
    configs.push_back(
        {"lazy_memo_" + tag,
         [mode, combine, opt_lap](const stm::StmOptions& o) {
           return std::make_unique<detail::ProustMapHandle<OptLap, Map>>(
               mode, o, opt_lap, [combine](OptLap& l) {
                 return std::make_unique<Map>(l, combine);
               });
         }});
  };
  add_memo("lazystm", stm::Mode::Lazy, false);
  add_memo("combining", stm::Mode::Lazy, true);
  add_memo("eagerall", stm::Mode::EagerAll, false);

  const auto add_snap = [&](const std::string& tag, stm::Mode mode,
                            bool combine) {
    using Map = core::LazyTrieMap<long, long, OptLap>;
    configs.push_back(
        {"lazy_snap_" + tag,
         [mode, combine, opt_lap](const stm::StmOptions& o) {
           return std::make_unique<detail::ProustMapHandle<OptLap, Map>>(
               mode, o, opt_lap, [combine](OptLap& l) {
                 return std::make_unique<Map>(l, combine);
               });
         }});
  };
  add_snap("lazystm", stm::Mode::Lazy, false);
  add_snap("eagerall", stm::Mode::EagerAll, false);
  // The Sec. 9 log-combining extension to snapshot replays.
  add_snap("combining", stm::Mode::Lazy, true);

  // The Sec. 9 log-combining extension to undo logs (eager wrapper).
  {
    using Map = core::TxnHashMap<long, long, OptLap>;
    configs.push_back(
        {"eager_undo_combining", [opt_lap](const stm::StmOptions& o) {
           return std::make_unique<detail::ProustMapHandle<OptLap, Map>>(
               stm::Mode::EagerAll, o, opt_lap, [](OptLap& l) {
                 return std::make_unique<Map>(l, 64, /*combine_undo=*/true);
               });
         }});
  }

  // The "empty quarter" of Figure 1: snapshot shadow copies under
  // pessimistic locks. Sequentially fine, but NOT serializable under
  // concurrency: the snapshot covers the whole map while 2PL only protects
  // the keys actually locked, and without the Theorem 5.3 CA read-after
  // there is nothing to invalidate a stale snapshot. Our concurrent suite
  // reproduces the lost-update, which is why the paper calls this cell
  // impractical ("not all combinations make sense").
  {
    using Map = core::LazyTrieMap<long, long, PessLap>;
    configs.push_back(
        {"lazy_snap_pess",
         [pess_lap](const stm::StmOptions& o) {
           return std::make_unique<detail::ProustMapHandle<PessLap, Map>>(
               stm::Mode::Lazy, o, pess_lap,
               [](PessLap& l) { return std::make_unique<Map>(l); });
         },
         /*opaque=*/false});
  }

  // Memoizing shadow copies under pessimistic locks ARE sound: the memo
  // table reads the base per key at access time, under that key's abstract
  // lock, so every observed value is the current committed one.
  {
    using Map = core::LazyHashMap<long, long, PessLap>;
    configs.push_back(
        {"lazy_memo_pess", [pess_lap](const stm::StmOptions& o) {
           return std::make_unique<detail::ProustMapHandle<PessLap, Map>>(
               stm::Mode::Lazy, o, pess_lap, [](PessLap& l) {
                 return std::make_unique<Map>(l, /*combine=*/false);
               });
         }});
  }

  configs.push_back({"baseline_pure_stm", [](const stm::StmOptions& o) {
                       using Map = baselines::PureStmMap<long, long>;
                       return std::make_unique<detail::BaselineMapHandle<Map>>(
                           stm::Mode::Lazy, o, [](stm::Stm& s) {
                             return std::make_unique<Map>(s, 4096);
                           });
                     }});
  configs.push_back({"baseline_predication", [](const stm::StmOptions& o) {
                       using Map = baselines::PredicationMap<long, long>;
                       return std::make_unique<detail::BaselineMapHandle<Map>>(
                           stm::Mode::Lazy, o, [](stm::Stm& s) {
                             return std::make_unique<Map>(s);
                           });
                     }});
  return configs;
}

/// Configurations whose concurrent histories are serializable/opaque — the
/// ones the concurrent invariant suites run against.
inline std::vector<MapConfig> opaque_map_configs() {
  std::vector<MapConfig> out;
  for (auto& c : all_map_configs()) {
    if (c.opaque) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace proust::testing
