// Targeted coverage for the two-tier write-set index (Bloom-gated linear
// scan → flat open-addressing table), the recycled write-entry pool, and the
// attempt-scoped lifetime of Txn::local under arena reuse.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "stm/stm.hpp"

using namespace proust::stm;

namespace {

class WriteSetIndexTest : public ::testing::TestWithParam<Mode> {};

// Read-after-write through both index tiers: the first writes sit in the
// linear-scan window, everything past kSmallWriteSet (8) goes through the
// flat table, and >64 vars forces pool-chunk growth (chunk size 32).
TEST_P(WriteSetIndexTest, ReadAfterWriteLargeWriteSet) {
  Stm stm(GetParam());
  constexpr int kVars = 100;
  std::vector<Var<long>> vars(kVars);

  stm.atomically([&](Txn& tx) {
    for (int i = 0; i < kVars; ++i) tx.write(vars[i], long{i} * 3);
    // Every var must resolve to this transaction's own write, in both the
    // small-set tier (first writes) and the table tier.
    for (int i = 0; i < kVars; ++i) EXPECT_EQ(tx.read(vars[i]), long{i} * 3);
    // Overwrites must find the existing entry, not create a duplicate.
    for (int i = 0; i < kVars; i += 7) tx.write(vars[i], long{i} * 5);
    for (int i = 0; i < kVars; ++i) {
      EXPECT_EQ(tx.read(vars[i]), i % 7 == 0 ? long{i} * 5 : long{i} * 3);
    }
  });

  for (int i = 0; i < kVars; ++i) {
    EXPECT_EQ(vars[i].unsafe_ref(), i % 7 == 0 ? long{i} * 5 : long{i} * 3)
        << "var " << i;
  }
}

// A second transaction on the same thread reuses the arena's pool chunks and
// flat table; stale entries from the first transaction must be invisible.
TEST_P(WriteSetIndexTest, PoolReuseAcrossTransactions) {
  Stm stm(GetParam());
  std::vector<Var<long>> first(80), second(80);

  stm.atomically([&](Txn& tx) {
    for (auto& v : first) tx.write(v, 11);
  });
  stm.atomically([&](Txn& tx) {
    // Vars written by the previous transaction are NOT in this write set.
    for (auto& v : first) EXPECT_EQ(tx.read(v), 11);
    for (auto& v : second) tx.write(v, 22);
    for (auto& v : second) EXPECT_EQ(tx.read(v), 22);
  });
  for (auto& v : second) EXPECT_EQ(v.unsafe_ref(), 22);
}

// Commit ordering with a table-tier write set: commit-locked hooks run at
// the commit point (before the transaction's own post-commit hooks), lazy
// write-back publishes every buffered value, and commit hooks observe them.
TEST_P(WriteSetIndexTest, HookOrderingWithLargeWriteSet) {
  Stm stm(GetParam());
  constexpr int kVars = 72;
  std::vector<Var<long>> vars(kVars);
  std::vector<std::string> order;

  stm.atomically([&](Txn& tx) {
    for (int i = 0; i < kVars; ++i) tx.write(vars[i], 9);
    tx.on_commit_locked([&] { order.push_back("locked"); });
    tx.on_commit([&] {
      order.push_back("commit");
      // Post-commit: every write must already be published.
      for (int i = 0; i < kVars; ++i) EXPECT_EQ(vars[i].unsafe_ref(), 9);
    });
    tx.on_finish([&](Outcome o) {
      EXPECT_EQ(o, Outcome::Committed);
      order.push_back("finish");
    });
  });

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "locked");
  EXPECT_EQ(order[1], "commit");
  EXPECT_EQ(order[2], "finish");
}

// Abort with a large write set: all writes are rolled back (eager modes
// restore undo values entry by entry) and inverse hooks run in reverse.
TEST_P(WriteSetIndexTest, AbortRollsBackLargeWriteSet) {
  Stm stm(GetParam());
  constexpr int kVars = 96;
  std::vector<Var<long>> vars(kVars);
  for (int i = 0; i < kVars; ++i) vars[i].unsafe_store(long{i});
  std::vector<int> inverse_order;

  struct Bail {};
  EXPECT_THROW(stm.atomically([&](Txn& tx) {
    tx.on_abort([&] { inverse_order.push_back(1); });
    for (int i = 0; i < kVars; ++i) tx.write(vars[i], -1);
    tx.on_abort([&] { inverse_order.push_back(2); });
    throw Bail{};
  }),
               Bail);

  for (int i = 0; i < kVars; ++i) EXPECT_EQ(vars[i].unsafe_ref(), long{i});
  ASSERT_EQ(inverse_order.size(), 2u);
  EXPECT_EQ(inverse_order[0], 2);  // reverse registration order
  EXPECT_EQ(inverse_order[1], 1);
}

INSTANTIATE_TEST_SUITE_P(AllModes, WriteSetIndexTest,
                         ::testing::Values(Mode::Lazy, Mode::EagerWrite,
                                           Mode::EagerAll),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// Txn::local values must be discarded between attempts: arena reuse may keep
// the memory, but each attempt must see a freshly constructed object, and
// the previous attempt's object must have been destroyed.
TEST(TxnLocalLifetimeTest, LocalsDiscardedBetweenAttempts) {
  Stm stm(Mode::Lazy);
  int key = 0;
  int factory_calls = 0;
  auto tracker = std::make_shared<int>(7);  // use_count tracks live copies

  const long got = stm.atomically([&](Txn& tx) {
    auto& value = tx.local<std::pair<std::shared_ptr<int>, long>>(
        &key, [&] {
          ++factory_calls;
          return std::make_pair(tracker, 0L);
        });
    EXPECT_EQ(value.second, 0L) << "stale local leaked across attempts";
    value.second = 42;
    // The only live copies: `tracker` itself + this attempt's local.
    EXPECT_EQ(tracker.use_count(), 2);
    if (tx.attempt() == 1) tx.retry();  // force a second attempt
    return value.second;
  });

  EXPECT_EQ(got, 42);
  EXPECT_EQ(factory_calls, 2);  // one construction per attempt
  EXPECT_EQ(tracker.use_count(), 1);  // both attempt-locals were destroyed
}

// Multiple distinct local keys in one attempt, destroyed on commit too.
TEST(TxnLocalLifetimeTest, LocalsDestroyedOnCommit) {
  Stm stm(Mode::Lazy);
  int k1 = 0, k2 = 0;
  auto tracker = std::make_shared<int>(1);

  stm.atomically([&](Txn& tx) {
    tx.local<std::shared_ptr<int>>(&k1, [&] { return tracker; });
    tx.local<std::shared_ptr<int>>(&k2, [&] { return tracker; });
    EXPECT_TRUE(tx.has_local(&k1));
    EXPECT_TRUE(tx.has_local(&k2));
    EXPECT_EQ(tracker.use_count(), 3);
  });
  EXPECT_EQ(tracker.use_count(), 1);
}

}  // namespace
