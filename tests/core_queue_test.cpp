// Tests for the Proustian FIFO queue extension (Head/Tail abstract state).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/lap.hpp"
#include "core/txn_queue.hpp"
#include "stm/stm.hpp"

using namespace proust;
using core::QueueState;
using core::QueueStateHasher;
using OptLap = core::OptimisticLap<QueueState, QueueStateHasher>;

namespace {
struct Fixture {
  stm::Stm stm{stm::Mode::EagerAll};
  OptLap lap{stm, 2};
  core::TxnQueue<long, OptLap> q{lap};

  void enq1(long v) {
    stm.atomically([&](stm::Txn& tx) { q.enq(tx, v); });
  }
  std::optional<long> deq1() {
    return stm.atomically([&](stm::Txn& tx) { return q.deq(tx); });
  }
};
}  // namespace

TEST(TxnQueue, FifoOrder) {
  Fixture f;
  for (long v : {1L, 2L, 3L}) f.enq1(v);
  EXPECT_EQ(f.deq1(), 1);
  EXPECT_EQ(f.deq1(), 2);
  EXPECT_EQ(f.deq1(), 3);
  EXPECT_EQ(f.deq1(), std::nullopt);
}

TEST(TxnQueue, DeqEmptyReturnsNullopt) {
  Fixture f;
  EXPECT_EQ(f.deq1(), std::nullopt);
  EXPECT_EQ(f.q.size(), 0);
}

TEST(TxnQueue, SizeTracksCommitted) {
  Fixture f;
  f.enq1(1);
  f.enq1(2);
  EXPECT_EQ(f.q.size(), 2);
  f.deq1();
  EXPECT_EQ(f.q.size(), 1);
}

TEST(TxnQueue, AbortRollsBackEnq) {
  Fixture f;
  f.enq1(10);
  EXPECT_THROW(f.stm.atomically([&](stm::Txn& tx) {
                 f.q.enq(tx, 11);
                 f.q.enq(tx, 12);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(f.q.size(), 1);
  EXPECT_EQ(f.deq1(), 10);
  EXPECT_EQ(f.deq1(), std::nullopt);
}

TEST(TxnQueue, AbortRestoresDeqAtFront) {
  Fixture f;
  f.enq1(1);
  f.enq1(2);
  EXPECT_THROW(f.stm.atomically([&](stm::Txn& tx) {
                 EXPECT_EQ(f.q.deq(tx), 1);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  // The aborted deq's inverse must restore 1 at the FRONT.
  EXPECT_EQ(f.deq1(), 1);
  EXPECT_EQ(f.deq1(), 2);
}

TEST(TxnQueue, EnqDeqWithinOneTxn) {
  Fixture f;
  f.stm.atomically([&](stm::Txn& tx) {
    f.q.enq(tx, 5);
    EXPECT_EQ(f.q.deq(tx), 5);
    EXPECT_EQ(f.q.deq(tx), std::nullopt);
  });
  EXPECT_EQ(f.q.size(), 0);
}

TEST(TxnQueue, ConcurrentEnqDeqConservesElements) {
  Fixture f;
  constexpr int kThreads = 4, kPerThread = 600;
  std::atomic<long> deqd{0};
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i) {
        f.enq1(t * kPerThread + i);
        if (i % 2 == 1 && f.deq1()) deqd.fetch_add(1);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(f.q.size() + deqd.load(), long{kThreads} * kPerThread);
}

TEST(TxnQueue, ConcurrentDeqsAreDistinct) {
  Fixture f;
  constexpr long kN = 800;
  for (long i = 0; i < kN; ++i) f.enq1(i);
  std::vector<std::vector<long>> got(4);
  std::barrier sync(4);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (long i = 0; i < kN / 4; ++i) {
        if (auto v = f.deq1()) got[t].push_back(*v);
      }
    });
  }
  for (auto& th : ts) th.join();
  std::set<long> all;
  std::size_t count = 0;
  for (auto& vec : got) {
    // Per-thread FIFO: each thread's dequeues must be increasing.
    for (std::size_t i = 1; i < vec.size(); ++i) {
      EXPECT_LT(vec[i - 1], vec[i]);
    }
    for (long v : vec) {
      all.insert(v);
      ++count;
    }
  }
  EXPECT_EQ(all.size(), count);
  EXPECT_EQ(static_cast<long>(count), kN);
}
