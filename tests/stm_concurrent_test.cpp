// Multi-threaded STM tests: atomicity, isolation and opacity-style
// invariants under contention, across all three conflict-detection modes.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <deque>
#include <thread>
#include <vector>

#include "stm/stm.hpp"

using namespace proust::stm;

namespace {
constexpr int kThreads = 4;
constexpr int kItersPerThread = 3000;

class StmConcurrentTest : public ::testing::TestWithParam<Mode> {
 protected:
  Stm stm{GetParam()};

  template <class Body>
  void run_threads(int n, Body&& body) {
    std::barrier sync(n);
    std::vector<std::thread> ts;
    for (int t = 0; t < n; ++t) {
      ts.emplace_back([&, t] {
        sync.arrive_and_wait();
        body(t);
      });
    }
    for (auto& th : ts) th.join();
  }
};
}  // namespace

TEST_P(StmConcurrentTest, CounterIncrementsAreNotLost) {
  Var<long> counter(0);
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < kItersPerThread; ++i) {
      stm.atomically([&](Txn& tx) { tx.write(counter, tx.read(counter) + 1); });
    }
  });
  EXPECT_EQ(counter.unsafe_ref(), long{kThreads} * kItersPerThread);
}

TEST_P(StmConcurrentTest, TransfersPreserveTotal) {
  constexpr int kAccounts = 16;
  constexpr long kInitial = 1000;
  std::deque<Var<long>> accounts;  // deque: Vars are pinned (no moves)
  for (int i = 0; i < kAccounts; ++i) accounts.emplace_back(kInitial);

  run_threads(kThreads, [&](int t) {
    proust::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 7);
    for (int i = 0; i < kItersPerThread; ++i) {
      const int from = static_cast<int>(rng.below(kAccounts));
      const int to = static_cast<int>(rng.below(kAccounts));
      if (from == to) continue;
      stm.atomically([&](Txn& tx) {
        const long f = tx.read(accounts[from]);
        const long amount = f > 0 ? 1 : 0;
        tx.write(accounts[from], f - amount);
        tx.write(accounts[to], tx.read(accounts[to]) + amount);
      });
    }
  });

  long total = 0;
  for (auto& a : accounts) total += a.unsafe_ref();
  EXPECT_EQ(total, long{kAccounts} * kInitial);
}

TEST_P(StmConcurrentTest, SnapshotsAreConsistent) {
  // Writers keep a==b; readers must never observe a!=b inside a transaction
  // (opacity: even doomed transactions see consistent states — a violation
  // here would fire before the reader's commit).
  Var<long> a(0), b(0);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  std::thread writer([&] {
    for (int i = 1; i <= 20000; ++i) {
      stm.atomically([&](Txn& tx) {
        tx.write(a, static_cast<long>(i));
        tx.write(b, static_cast<long>(i));
      });
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        stm.atomically([&](Txn& tx) {
          const long x = tx.read(a);
          const long y = tx.read(b);
          if (x != y) violations.fetch_add(1);
        });
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(StmConcurrentTest, AbortHooksRunExactlyOncePerAbort) {
  Var<long> v(0);
  std::atomic<long> hook_runs{0};
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < 500; ++i) {
      stm.atomically([&](Txn& tx) {
        // Register first: every abort of this attempt — wherever it fires —
        // must run the hook exactly once.
        tx.on_abort([&] { hook_runs.fetch_add(1); });
        tx.write(v, tx.read(v) + 1);
      });
    }
  });
  const StatsSnapshot s = stm.stats().snapshot();
  // Every aborted attempt ran its (single) abort hook; committed attempts
  // ran none.
  EXPECT_EQ(hook_runs.load(), static_cast<long>(s.total_aborts()));
  EXPECT_EQ(v.unsafe_ref(), long{kThreads} * 500);
}

TEST_P(StmConcurrentTest, DisjointVarsDoNotConflict) {
  // Threads write thread-private vars: no aborts should occur in any mode
  // (var-based STM: no false sharing through an orec table).
  std::vector<Var<long>> vars(kThreads);
  stm.stats().reset();
  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kItersPerThread; ++i) {
      stm.atomically([&](Txn& tx) { tx.write(vars[t], tx.read(vars[t]) + 1); });
    }
  });
  EXPECT_EQ(stm.stats().snapshot().total_aborts(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(vars[t].unsafe_ref(), kItersPerThread);
  }
}

TEST_P(StmConcurrentTest, WriteSkewIsPrevented) {
  // Classic write-skew: each txn reads both vars and writes one, maintaining
  // x + y <= 1. Serializable STMs must keep the invariant.
  Var<long> x(0), y(0);
  run_threads(2, [&](int t) {
    for (int i = 0; i < 2000; ++i) {
      stm.atomically([&](Txn& tx) {
        const long sum = tx.read(x) + tx.read(y);
        if (sum == 0) {
          if (t == 0) {
            tx.write(x, long{1});
          } else {
            tx.write(y, long{1});
          }
        }
      });
      stm.atomically([&](Txn& tx) {  // reset
        if (t == 0) {
          tx.write(x, long{0});
        } else {
          tx.write(y, long{0});
        }
      });
      const long total = stm.atomically(
          [&](Txn& tx) { return tx.read(x) + tx.read(y); });
      EXPECT_LE(total, 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllModes, StmConcurrentTest,
                         ::testing::Values(Mode::Lazy, Mode::EagerWrite,
                                           Mode::EagerAll),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });
