// Contention-management subsystem tests (ctest label "cm"): the policy
// factory and priority algebra, the elder starvation-recovery protocol, the
// adaptive admission controller, the per-call attempt histogram, and the
// progress watchdog — plus the starvation regression the subsystem exists
// for: a long read-mostly transaction racing a swarm of small writers
// completes within a bounded number of attempts under TimestampAging with
// the irrevocable fallback gate DISABLED, while the trivial policies are
// allowed to need the gate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "stm/contention.hpp"
#include "stm/stats.hpp"
#include "stm/stm.hpp"
#include "stm/watchdog.hpp"

using namespace proust::stm;

// --- Attempt histogram -------------------------------------------------------

TEST(AttemptHistogramTest, BucketMappingIsExactThenLogarithmic) {
  // 1..16 attempts map to exact buckets 0..15.
  for (std::uint64_t n = 1; n <= 16; ++n) {
    EXPECT_EQ(attempt_bucket(n), n - 1) << n;
    EXPECT_EQ(attempt_bucket_bound(attempt_bucket(n)), n) << n;
  }
  // Then power-of-two ranges: 17..32 share a bucket bounded by 32, etc.
  EXPECT_EQ(attempt_bucket(17), attempt_bucket(32));
  EXPECT_EQ(attempt_bucket_bound(attempt_bucket(17)), 32u);
  EXPECT_NE(attempt_bucket(32), attempt_bucket(33));
  EXPECT_EQ(attempt_bucket_bound(attempt_bucket(33)), 64u);
  EXPECT_EQ(attempt_bucket_bound(attempt_bucket(64)), 64u);
  // Zero is clamped to one attempt; huge counts land in the tail bucket.
  EXPECT_EQ(attempt_bucket(0), 0u);
  EXPECT_EQ(attempt_bucket(~std::uint64_t{0}), kAttemptBuckets - 1);
  // Bucket bounds are monotone, so percentile walks are well ordered.
  for (std::size_t b = 1; b < kAttemptBuckets; ++b) {
    EXPECT_GT(attempt_bucket_bound(b), attempt_bucket_bound(b - 1));
  }
}

TEST(AttemptHistogramTest, PercentilesWalkTheBuckets) {
  StatsSnapshot s;
  EXPECT_EQ(s.attempts_percentile(0.50), 0u);  // no calls recorded

  // 90 one-attempt calls, 10 four-attempt calls.
  s.attempts_hist[attempt_bucket(1)] = 90;
  s.attempts_hist[attempt_bucket(4)] = 10;
  s.max_attempts = 4;
  EXPECT_EQ(s.total_calls(), 100u);
  EXPECT_EQ(s.attempts_percentile(0.50), 1u);
  EXPECT_EQ(s.attempts_percentile(0.99), 4u);
  EXPECT_EQ(s.attempts_percentile(1.0), 4u);
}

TEST(AttemptHistogramTest, TopBucketClampsToObservedMax) {
  // One call in the 17..32 range: the bucket bound (32) must not overstate
  // the observed worst case.
  StatsSnapshot s;
  s.attempts_hist[attempt_bucket(20)] = 1;
  s.max_attempts = 20;
  EXPECT_EQ(s.attempts_percentile(1.0), 20u);
}

TEST(AttemptHistogramTest, SingleThreadedCallsLandInTheHistogram) {
  Stm stm(Mode::Lazy);
  Var<long> v(0);
  // Three clean calls, then one call that needs three attempts.
  for (int i = 0; i < 3; ++i) {
    stm.atomically([&](Txn& tx) { tx.write(v, i); });
  }
  stm.atomically([&](Txn& tx) {
    tx.write(v, 99);
    if (tx.attempt() < 3) tx.retry(AbortReason::Explicit);
  });
  const StatsSnapshot s = stm.stats().snapshot();
  EXPECT_EQ(s.total_calls(), 4u);
  EXPECT_EQ(s.attempts_hist[attempt_bucket(1)], 3u);
  EXPECT_EQ(s.attempts_hist[attempt_bucket(3)], 1u);
  EXPECT_EQ(s.max_attempts, 3u);
  EXPECT_EQ(s.attempts_percentile(0.50), 1u);
  EXPECT_EQ(s.attempts_percentile(1.0), 3u);
  // The retried call paused between attempts; the backoff time is recorded.
  EXPECT_GT(s.backoff_ns, 0u);
}

// --- Policy factory and priority algebra -------------------------------------

TEST(ContentionPolicyTest, FactoryNamesAndTrackingFlags) {
  CmState st;
  const struct {
    CmPolicy policy;
    const char* name;
    bool tracking;
  } cases[] = {
      {CmPolicy::ExponentialBackoff, "backoff", false},
      {CmPolicy::Yield, "yield", false},
      {CmPolicy::None, "none", false},
      {CmPolicy::Karma, "karma", true},
      {CmPolicy::TimestampAging, "aging", true},
  };
  for (const auto& c : cases) {
    StmOptions o;
    o.cm_policy = c.policy;
    auto cm = make_contention_manager(o, st);
    ASSERT_NE(cm, nullptr);
    EXPECT_STREQ(cm->name(), c.name);
    EXPECT_EQ(cm->tracking(), c.tracking) << c.name;
  }
  // The watchdog can ask even trivial policies to publish slot state.
  StmOptions o;
  o.cm_policy = CmPolicy::ExponentialBackoff;
  o.cm_progress_tracking = true;
  EXPECT_TRUE(make_contention_manager(o, st)->tracking());
}

TEST(ContentionPolicyTest, KarmaPriorityStrengthensWithWork) {
  CmState st;
  StmOptions o;
  o.cm_policy = CmPolicy::Karma;
  auto cm = make_contention_manager(o, st);
  const std::uint64_t fresh = cm->priority(/*birth=*/7, /*karma=*/0);
  const std::uint64_t worked = cm->priority(7, 1000);
  EXPECT_LT(worked, fresh);  // lower = stronger
  // An active transaction is always at least marginally stronger than an
  // idle slot, and saturated karma never wraps past the strongest key.
  EXPECT_LT(fresh, kCmIdlePriority);
  EXPECT_EQ(cm->priority(7, ~std::uint64_t{0}), 0u);
}

TEST(ContentionPolicyTest, AgingPriorityIsBirthStamp) {
  CmState st;
  StmOptions o;
  o.cm_policy = CmPolicy::TimestampAging;
  auto cm = make_contention_manager(o, st);
  EXPECT_EQ(cm->priority(3, 0), 3u);
  EXPECT_EQ(cm->priority(3, 999), 3u);  // karma is irrelevant to age
  EXPECT_LT(cm->priority(3, 0), cm->priority(4, 0));  // older = stronger
}

TEST(ContentionPolicyTest, ArbitrationFavorsTheStrongerKey) {
  CmState st;
  for (CmPolicy p : {CmPolicy::Karma, CmPolicy::TimestampAging}) {
    StmOptions o;
    o.cm_policy = p;
    auto cm = make_contention_manager(o, st);
    EXPECT_EQ(cm->arbitrate(/*self=*/5, /*opp=*/10), CmDecision::kAbortOther);
    EXPECT_EQ(cm->arbitrate(10, 5), CmDecision::kAbortSelf);
    EXPECT_EQ(cm->arbitrate(5, 5), CmDecision::kWait);
  }
  // Trivial policies keep the pre-CM requester-aborts behavior.
  StmOptions o;
  o.cm_policy = CmPolicy::ExponentialBackoff;
  EXPECT_EQ(make_contention_manager(o, st)->arbitrate(5, 10),
            CmDecision::kAbortSelf);
}

// --- Elder protocol ----------------------------------------------------------

TEST(ElderProtocolTest, StrongerChallengerDisplacesIncumbent) {
  CmState st;
  st.slot(3).priority.store(100);
  st.slot(5).priority.store(50);
  EXPECT_EQ(st.elder(), 0u);
  st.publish_elder(3);
  EXPECT_EQ(st.elder(), 4u);
  st.publish_elder(5);  // strictly stronger: takes the crown
  EXPECT_EQ(st.elder(), 6u);
  st.publish_elder(3);  // weaker challenger: incumbent keeps it
  EXPECT_EQ(st.elder(), 6u);
  st.clear_elder(3);  // only the holder may clear
  EXPECT_EQ(st.elder(), 6u);
  st.clear_elder(5);
  EXPECT_EQ(st.elder(), 0u);
  st.force_elder(3);  // watchdog escalation is unconditional
  EXPECT_EQ(st.elder(), 4u);
  st.clear_elder(3);
}

TEST(ElderProtocolTest, LockWaitersShedForAForeignElder) {
  CmState st;
  StmOptions o;
  o.cm_policy = CmPolicy::TimestampAging;
  auto cm = make_contention_manager(o, st);
  int dummy = 0;
  const unsigned self = ThreadRegistry::slot();
  const unsigned other = self + 1 < ThreadRegistry::kMaxSlots ? self + 1 : 0;

  // No elder: park normally, forever.
  EXPECT_EQ(cm->on_contended_park(&dummy, true, 0),
            proust::sync::CmWaitVerdict::kKeepWaiting);
  EXPECT_EQ(cm->on_contended_park(&dummy, true, 7),
            proust::sync::CmWaitVerdict::kKeepWaiting);

  // A foreign elder is published: first round may still park (the elder may
  // release imminently), after that the waiter sheds so the elder's
  // abstract locks drain.
  st.force_elder(other);
  EXPECT_EQ(cm->on_contended_park(&dummy, true, 0),
            proust::sync::CmWaitVerdict::kKeepWaiting);
  EXPECT_EQ(cm->on_contended_park(&dummy, true, 1),
            proust::sync::CmWaitVerdict::kGiveUp);

  // The elder itself never sheds.
  st.force_elder(self);
  EXPECT_EQ(cm->on_contended_park(&dummy, true, 9),
            proust::sync::CmWaitVerdict::kKeepWaiting);
  st.clear_elder(self);
}

// --- Admission control -------------------------------------------------------

TEST(AdmissionControlTest, AimdHalvesOnAbortStormAndCreepsBack) {
  StmOptions o;
  o.admission_control = true;
  o.admission_window = 8;
  o.admission_high = 0.5;
  o.admission_low = 0.25;
  o.admission_min_tokens = 1;
  o.admission_max_tokens = 8;
  AdmissionController ac;
  ac.configure(o);
  EXPECT_TRUE(ac.enabled());
  EXPECT_EQ(ac.limit(), 8u);

  auto feed_window = [&](int commits, int aborts) {
    for (int i = 0; i < commits; ++i) ac.note_outcome(true);
    for (int i = 0; i < aborts; ++i) ac.note_outcome(false);
  };
  feed_window(0, 8);  // 100% aborts: halve
  EXPECT_EQ(ac.limit(), 4u);
  feed_window(0, 8);
  EXPECT_EQ(ac.limit(), 2u);
  feed_window(0, 8);
  EXPECT_EQ(ac.limit(), 1u);
  feed_window(0, 8);  // floor: never below min_tokens
  EXPECT_EQ(ac.limit(), 1u);
  feed_window(8, 0);  // calm window: additive recovery
  EXPECT_EQ(ac.limit(), 2u);
  feed_window(8, 0);
  EXPECT_EQ(ac.limit(), 3u);
  // A mid-band ratio (between low and high) holds the limit steady.
  feed_window(5, 3);
  EXPECT_EQ(ac.limit(), 3u);
}

TEST(AdmissionControlTest, ThrottledAdmitBlocksUntilRelease) {
  StmOptions o;
  o.admission_control = true;
  o.admission_min_tokens = 1;
  o.admission_max_tokens = 1;  // single token: the second caller must wait
  AdmissionController ac;
  ac.configure(o);

  EXPECT_EQ(ac.admit(), 0u);  // fast path
  EXPECT_EQ(ac.active(), 1u);

  std::atomic<bool> admitted{false};
  std::uint64_t waited = 0;
  std::thread t([&] {
    waited = ac.admit();
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(admitted.load());  // still throttled
  ac.release();
  t.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_GT(waited, 0u);
  ac.release();
  EXPECT_EQ(ac.active(), 0u);
}

TEST(AdmissionControlTest, ThrottleTimeSurfacesInStmStats) {
  StmOptions o;
  o.admission_control = true;
  o.admission_min_tokens = 1;
  o.admission_max_tokens = 1;
  Stm stm(Mode::Lazy, o);
  Var<long> v(0);

  std::atomic<bool> holder_in_body{false};
  std::thread holder([&] {
    stm.atomically([&](Txn& tx) {
      tx.write(v, 1);
      holder_in_body.store(true);
      // Hold the admission token long enough for the other thread to hit
      // the throttled path deterministically.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
  });
  while (!holder_in_body.load()) std::this_thread::yield();
  stm.atomically([&](Txn& tx) { tx.write(v, 2); });
  holder.join();

  const StatsSnapshot s = stm.stats().snapshot();
  EXPECT_GE(s.throttle_waits, 1u);
  EXPECT_GT(s.throttle_ns, 0u);
  EXPECT_EQ(s.commits, 2u);
}

// --- Fallback eligibility and gate budget ------------------------------------

TEST(FallbackEligibilityTest, ChaosInjectedAbortsDoNotArmTheGate) {
  // fallback_after counts *eligible* attempts; injected chaos aborts are
  // exempt, so a fault-heavy run is not spuriously serialized.
  StmOptions o;
  o.fallback_after = 1;
  Stm stm(Mode::Lazy, o);
  Var<long> v(0);
  unsigned eligible_seen = ~0u;
  stm.atomically([&](Txn& tx) {
    tx.write(v, 1);
    if (tx.attempt() <= 4) tx.retry(AbortReason::ChaosInjected);
    eligible_seen = tx.eligible_attempts();
  });
  EXPECT_EQ(eligible_seen, 0u);  // none of the four aborts counted
  EXPECT_EQ(stm.stats().snapshot().gate_holds, 0u);
}

TEST(FallbackEligibilityTest, EligibleAbortsArmTheGateAndRecordHoldTime) {
  StmOptions o;
  o.fallback_after = 1;
  Stm stm(Mode::Lazy, o);
  Var<long> v(0);
  stm.atomically([&](Txn& tx) {
    tx.write(v, 1);
    if (tx.attempt() == 1) tx.retry(AbortReason::Explicit);
    EXPECT_EQ(tx.eligible_attempts(), 1u);
  });
  const StatsSnapshot s = stm.stats().snapshot();
  EXPECT_EQ(s.gate_holds, 1u);
  EXPECT_GT(s.gate_ns, 0u);
  EXPECT_GE(s.gate_max_ns, s.gate_ns / (s.gate_holds ? s.gate_holds : 1));
}

// --- Watchdog ----------------------------------------------------------------

namespace {

struct ReportSink {
  std::mutex mu;
  std::vector<StallReport> reports;
  void push(const StallReport& r) {
    std::lock_guard<std::mutex> g(mu);
    reports.push_back(r);
  }
  bool any_of(StallReport::Kind k) {
    std::lock_guard<std::mutex> g(mu);
    for (const auto& r : reports) {
      if (r.kind == k) return true;
    }
    return false;
  }
};

}  // namespace

TEST(WatchdogTest, DetectsStalledEpochAndEscalatesTheOldestCall) {
  ReportSink sink;
  StmOptions o;
  o.cm_policy = CmPolicy::TimestampAging;  // tracking: slots are visible
  o.on_stall = [&sink](const StallReport& r) { sink.push(r); };
  Stm stm(Mode::Lazy, o);
  Var<long> v(0);

  Watchdog::Config cfg;
  cfg.poll = std::chrono::milliseconds(1);
  cfg.stall_after = std::chrono::milliseconds(10);
  cfg.escalate = true;
  Watchdog dog(stm, cfg);

  stm.atomically([&](Txn& tx) {
    tx.write(v, 1);
    // Sit inside the body long past stall_after: commits stay flat while
    // this slot's CM cell shows an active call — the stall signature.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  });
  dog.stop();

  EXPECT_GE(dog.stalls(), 1u);
  EXPECT_GE(dog.escalations(), 1u);
  ASSERT_TRUE(sink.any_of(StallReport::Kind::StalledEpoch));
  std::lock_guard<std::mutex> g(sink.mu);
  bool saw_active_slot = false;
  for (const auto& r : sink.reports) {
    if (r.kind != StallReport::Kind::StalledEpoch) continue;
    EXPECT_FALSE(r.to_string().empty());
    if (!r.active.empty()) {
      saw_active_slot = true;
      EXPECT_NE(r.boosted_slot, ~0u);  // escalation crowned someone
    }
  }
  EXPECT_TRUE(saw_active_slot);
  // The boosted call cleared its own elder claim on commit. (A last-instant
  // watchdog poll racing the commit may re-crown the already-finished slot;
  // that is benign — the next committer clears it — so it is tolerated.)
  const unsigned elder = stm.cm_state().elder();
  EXPECT_TRUE(elder == 0u || elder == ThreadRegistry::slot() + 1) << elder;
}

TEST(WatchdogTest, ReportsGateBudgetOverrunWhileInFlight) {
  ReportSink sink;
  StmOptions o;
  o.fallback_after = 1;
  o.fallback_budget = std::chrono::milliseconds(2);
  o.on_stall = [&sink](const StallReport& r) { sink.push(r); };
  Stm stm(Mode::Lazy, o);
  Var<long> v(0);

  Watchdog::Config cfg;
  cfg.poll = std::chrono::milliseconds(1);
  cfg.stall_after = std::chrono::seconds(10);  // only the budget path fires
  Watchdog dog(stm, cfg);

  stm.atomically([&](Txn& tx) {
    tx.write(v, 1);
    if (tx.attempt() == 1) tx.retry(AbortReason::Explicit);
    // Gated (irrevocable) attempt: overstay the 2ms budget.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  dog.stop();

  EXPECT_GE(dog.budget_overruns(), 1u);
  ASSERT_TRUE(sink.any_of(StallReport::Kind::GateBudgetOverrun));
  std::lock_guard<std::mutex> g(sink.mu);
  for (const auto& r : sink.reports) {
    if (r.kind != StallReport::Kind::GateBudgetOverrun) continue;
    EXPECT_NE(r.gate_holder, ~0u);
    EXPECT_GT(r.stalled_ns,
              static_cast<std::uint64_t>(o.fallback_budget.count()));
  }
  const StatsSnapshot s = stm.stats().snapshot();
  EXPECT_EQ(s.gate_holds, 1u);
  EXPECT_GT(s.gate_max_ns, static_cast<std::uint64_t>(
                               std::chrono::nanoseconds(
                                   std::chrono::milliseconds(2))
                                   .count()));
}

TEST(WatchdogTest, LifecycleRestartsCleanlyAndStaysSilentAfterStop) {
  // The sentinel's lifecycle contract: construction starts it, stop() joins
  // it and is idempotent, and once stop() returns no report is delivered —
  // across repeated start/stop cycles and across Stm instances.
  std::atomic<int> reports{0};
  std::atomic<bool> after_stop{false};
  std::atomic<int> late_reports{0};
  StmOptions o;
  o.cm_policy = CmPolicy::TimestampAging;  // tracking: slots are visible
  o.on_stall = [&](const StallReport&) {
    reports.fetch_add(1);
    if (after_stop.load()) late_reports.fetch_add(1);
  };

  for (int gen = 0; gen < 3; ++gen) {
    Stm stm(Mode::Lazy, o);
    Var<long> v(0);
    Watchdog::Config cfg;
    cfg.poll = std::chrono::milliseconds(1);
    cfg.stall_after = std::chrono::milliseconds(5);
    for (int cycle = 0; cycle < 2; ++cycle) {
      after_stop.store(false);
      Watchdog dog(stm, cfg);
      const int before = reports.load();
      stm.atomically([&](Txn& tx) {
        tx.write(v, gen * 10 + cycle);
        // Long enough past stall_after that this generation must observe
        // its own stall — proving the restarted sentinel actually runs.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      });
      dog.stop();
      after_stop.store(true);
      dog.stop();  // idempotent: a second stop is a harmless no-op
      EXPECT_GT(reports.load(), before)
          << "restarted watchdog missed its stall (gen " << gen << " cycle "
          << cycle << ")";
      // A stall-length body with the sentinel joined must stay silent.
      stm.atomically([&](Txn& tx) {
        tx.write(v, -1);
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      });
    }
  }
  EXPECT_EQ(late_reports.load(), 0)
      << "stall report delivered after stop() returned";
}

// --- The starvation regression -----------------------------------------------

namespace {

/// One long read-mostly transaction (scans all vars, then writes one) racing
/// `writers` threads of tiny write transactions. Returns the attempt count
/// the long transaction needed.
unsigned run_starvation_duel(Stm& stm, int writers, int scan_yields) {
  constexpr int kVars = 32;
  std::vector<Var<long>> vars(kVars);
  std::atomic<bool> done{false};
  std::atomic<unsigned> reader_attempts{0};

  std::vector<std::thread> ws;
  for (int w = 0; w < writers; ++w) {
    ws.emplace_back([&, w] {
      long x = 0;
      while (!done.load(std::memory_order_acquire)) {
        stm.atomically([&](Txn& tx) {
          tx.write(vars[(w * 7 + static_cast<int>(x)) % kVars], x);
        });
        ++x;
      }
    });
  }

  long sum = 0;
  stm.atomically([&](Txn& tx) {
    reader_attempts.store(tx.attempt());  // attempt() is 1-based in-body
    sum = 0;
    for (int i = 0; i < kVars; ++i) {
      sum += tx.read(vars[i]);
      // Widen the window: give the writers room to invalidate us.
      if (i % (kVars / scan_yields) == 0) std::this_thread::yield();
    }
    tx.write(vars[0], sum);
  });
  done.store(true, std::memory_order_release);
  for (auto& t : ws) t.join();
  return reader_attempts.load();
}

}  // namespace

TEST(StarvationTest, AgingBoundsTheLongReaderWithoutTheGate) {
  StmOptions o;
  o.cm_policy = CmPolicy::TimestampAging;
  o.fallback_after = 0;  // the gate is OFF: only the CM can save the reader
  o.cm_elder_after = 8;
  o.cm_elder_yield = std::chrono::milliseconds(5);
  Stm stm(Mode::Lazy, o);

  const unsigned attempts = run_starvation_duel(stm, /*writers=*/2,
                                                /*scan_yields=*/4);
  // Structural bound: within cm_elder_after eligible aborts the reader is
  // the elder (it has the oldest birth, so nothing outranks it), after
  // which committers defer for cm_elder_yield each — the quiet window in
  // which a 32-read scan finishes. The slack above cm_elder_after absorbs
  // scheduler noise on small machines.
  EXPECT_LE(attempts, 96u);
  EXPECT_GE(attempts, 1u);
  const StatsSnapshot s = stm.stats().snapshot();
  EXPECT_EQ(s.gate_holds, 0u);  // the bound came from the CM, not the gate
  EXPECT_EQ(stm.cm_state().elder(), 0u);  // recovery window released
}

TEST(StarvationTest, TrivialPolicyMayNeedTheGateButStillCompletes) {
  // Under CmPolicy::None nothing bounds the reader's attempts; the run is
  // only guaranteed to terminate because the irrevocable fallback gate is
  // armed. This is the contrast the priority policies exist to remove.
  StmOptions o;
  o.cm_policy = CmPolicy::None;
  o.fallback_after = 64;
  Stm stm(Mode::Lazy, o);

  const unsigned attempts = run_starvation_duel(stm, /*writers=*/2,
                                                /*scan_yields=*/4);
  EXPECT_GE(attempts, 1u);  // no upper bound asserted — by design
  EXPECT_LE(attempts, 64u + 1u);  // ...except the gate's own hard stop
}

TEST(StarvationTest, KarmaReaderAccumulatesStrengthFromItsScan) {
  // Karma's work-weighted priority also protects the scan: each aborted
  // 32-read attempt deposits karma, so the reader outranks fresh writers
  // well before the elder threshold.
  StmOptions o;
  o.cm_policy = CmPolicy::Karma;
  o.fallback_after = 0;
  o.cm_elder_after = 8;
  o.cm_elder_yield = std::chrono::milliseconds(5);
  Stm stm(Mode::Lazy, o);

  const unsigned attempts = run_starvation_duel(stm, /*writers=*/2,
                                                /*scan_yields=*/4);
  EXPECT_LE(attempts, 96u);
  EXPECT_EQ(stm.stats().snapshot().gate_holds, 0u);
}
