// Property-based differential tests: long random operation sequences are
// driven through every transactional map configuration and through an
// in-memory reference model; every return value and the final state must
// agree. Parameterized over (configuration × seed), giving a broad sweep of
// distinct random programs.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.hpp"
#include "map_configs.hpp"

using namespace proust::testing;

namespace {

using Param = std::tuple<MapConfig, std::uint64_t>;

class MapDifferentialTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override { map_ = std::get<0>(GetParam()).make(); }
  std::unique_ptr<MapUnderTest> map_;
};

std::vector<MapConfig> configs_for_property() { return all_map_configs(); }

}  // namespace

TEST_P(MapDifferentialTest, RandomSingleOpTxnsMatchReference) {
  proust::Xoshiro256 rng(std::get<1>(GetParam()));
  std::map<long, long> reference;
  for (int i = 0; i < 2500; ++i) {
    const long k = static_cast<long>(rng.below(32));
    const double r = rng.uniform();
    if (r < 0.4) {
      const long v = static_cast<long>(rng.below(1000));
      auto it = reference.find(k);
      std::optional<long> expected =
          it == reference.end() ? std::nullopt : std::make_optional(it->second);
      reference[k] = v;
      ASSERT_EQ(map_->put1(k, v), expected) << "op " << i;
    } else if (r < 0.6) {
      auto it = reference.find(k);
      std::optional<long> expected =
          it == reference.end() ? std::nullopt : std::make_optional(it->second);
      if (it != reference.end()) reference.erase(it);
      ASSERT_EQ(map_->remove1(k), expected) << "op " << i;
    } else if (r < 0.9) {
      auto it = reference.find(k);
      std::optional<long> expected =
          it == reference.end() ? std::nullopt : std::make_optional(it->second);
      ASSERT_EQ(map_->get1(k), expected) << "op " << i;
    } else {
      ASSERT_EQ(map_->contains1(k), reference.count(k) != 0) << "op " << i;
    }
  }
  // Final state agreement.
  for (long k = 0; k < 32; ++k) {
    auto it = reference.find(k);
    std::optional<long> expected =
        it == reference.end() ? std::nullopt : std::make_optional(it->second);
    ASSERT_EQ(map_->get1(k), expected);
  }
  if (map_->committed_size() >= 0) {
    ASSERT_EQ(map_->committed_size(), static_cast<long>(reference.size()));
  }
}

TEST_P(MapDifferentialTest, RandomMultiOpTxnsMatchReference) {
  proust::Xoshiro256 rng(std::get<1>(GetParam()) ^ 0xABCDEF);
  std::map<long, long> reference;
  for (int t = 0; t < 250; ++t) {
    const int ops = 1 + static_cast<int>(rng.below(12));
    // Pre-draw the transaction body so aborted attempts replay identically.
    struct Planned {
      int kind;
      long k, v;
    };
    std::vector<Planned> plan;
    for (int i = 0; i < ops; ++i) {
      plan.push_back({static_cast<int>(rng.below(3)),
                      static_cast<long>(rng.below(24)),
                      static_cast<long>(rng.below(1000))});
    }
    std::vector<std::optional<long>> got;
    map_->atomically([&](MapView& m) {
      got.clear();
      for (const Planned& p : plan) {
        switch (p.kind) {
          case 0: got.push_back(m.put(p.k, p.v)); break;
          case 1: got.push_back(m.remove(p.k)); break;
          default: got.push_back(m.get(p.k)); break;
        }
      }
    });
    // Apply the same body to the reference and compare returns.
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const Planned& p = plan[i];
      auto it = reference.find(p.k);
      std::optional<long> expected =
          it == reference.end() ? std::nullopt : std::make_optional(it->second);
      ASSERT_EQ(got[i], expected) << "txn " << t << " op " << i;
      if (p.kind == 0) {
        reference[p.k] = p.v;
      } else if (p.kind == 1 && it != reference.end()) {
        reference.erase(it);
      }
    }
  }
  for (long k = 0; k < 24; ++k) {
    auto it = reference.find(k);
    std::optional<long> expected =
        it == reference.end() ? std::nullopt : std::make_optional(it->second);
    ASSERT_EQ(map_->get1(k), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapDifferentialTest,
    ::testing::Combine(::testing::ValuesIn(configs_for_property()),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::get<0>(info.param).name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });
