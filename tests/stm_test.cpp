// Single-threaded semantic tests for the STM engine, parameterized over the
// three conflict-detection modes (the Figure 1 right-hand table).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "stm/stm.hpp"

using namespace proust::stm;

class StmModeTest : public ::testing::TestWithParam<Mode> {
 protected:
  Stm stm{GetParam()};
};

TEST_P(StmModeTest, ReadInitialValue) {
  Var<long> v(41);
  const long got = stm.atomically([&](Txn& tx) { return tx.read(v); });
  EXPECT_EQ(got, 41);
}

TEST_P(StmModeTest, WriteThenReadBack) {
  Var<long> v(0);
  stm.atomically([&](Txn& tx) {
    tx.write(v, 7);
    EXPECT_EQ(tx.read(v), 7);  // read-own-write
    tx.write(v, 8);
    EXPECT_EQ(tx.read(v), 8);
  });
  EXPECT_EQ(v.unsafe_ref(), 8);
}

TEST_P(StmModeTest, CommittedValueVisibleToNextTxn) {
  Var<long> v(1);
  stm.atomically([&](Txn& tx) { tx.write(v, 2); });
  EXPECT_EQ(stm.atomically([&](Txn& tx) { return tx.read(v); }), 2);
}

TEST_P(StmModeTest, MultipleVarsCommitAtomically) {
  Var<long> a(0), b(0), c(0);
  stm.atomically([&](Txn& tx) {
    tx.write(a, 1);
    tx.write(b, 2);
    tx.write(c, 3);
  });
  stm.atomically([&](Txn& tx) {
    EXPECT_EQ(tx.read(a), 1);
    EXPECT_EQ(tx.read(b), 2);
    EXPECT_EQ(tx.read(c), 3);
  });
}

TEST_P(StmModeTest, UserExceptionAbortsAndPropagates) {
  Var<long> v(10);
  EXPECT_THROW(stm.atomically([&](Txn& tx) {
                 tx.write(v, 99);
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The write must have been rolled back.
  EXPECT_EQ(stm.atomically([&](Txn& tx) { return tx.read(v); }), 10);
}

TEST_P(StmModeTest, AbortRunsAbortHooksInReverseOrder) {
  Var<long> v(0);
  std::vector<int> order;
  try {
    stm.atomically([&](Txn& tx) {
      tx.write(v, 1);
      tx.on_abort([&] { order.push_back(1); });
      tx.on_abort([&] { order.push_back(2); });
      tx.on_abort([&] { order.push_back(3); });
      throw std::logic_error("force abort");
    });
  } catch (const std::logic_error&) {
  }
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST_P(StmModeTest, CommitHooksRunOnCommitOnly) {
  Var<long> v(0);
  int commits = 0, commit_locked = 0, finishes = 0;
  Outcome finish_outcome = Outcome::Aborted;
  stm.atomically([&](Txn& tx) {
    tx.write(v, 5);
    tx.on_commit([&] { ++commits; });
    tx.on_commit_locked([&] { ++commit_locked; });
    tx.on_finish([&](Outcome o) {
      ++finishes;
      finish_outcome = o;
    });
  });
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(commit_locked, 1);
  EXPECT_EQ(finishes, 1);
  EXPECT_EQ(finish_outcome, Outcome::Committed);
}

TEST_P(StmModeTest, FinishHookRunsOnAbortToo) {
  int finishes = 0;
  Outcome last = Outcome::Committed;
  try {
    stm.atomically([&](Txn& tx) {
      tx.on_finish([&](Outcome o) {
        ++finishes;
        last = o;
      });
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(finishes, 1);
  EXPECT_EQ(last, Outcome::Aborted);
}

TEST_P(StmModeTest, CommitLockedHookRunsBeforeCommitHook) {
  Var<long> v(0);
  std::vector<std::string> order;
  stm.atomically([&](Txn& tx) {
    tx.write(v, 1);
    tx.on_commit([&] { order.push_back("commit"); });
    tx.on_commit_locked([&] { order.push_back("locked"); });
    tx.on_finish([&](Outcome) { order.push_back("finish"); });
  });
  EXPECT_EQ(order, (std::vector<std::string>{"locked", "commit", "finish"}));
}

TEST_P(StmModeTest, NestedAtomicallyIsFlat) {
  Var<long> v(0);
  stm.atomically([&](Txn& tx) {
    tx.write(v, 1);
    stm.atomically([&](Txn& inner) {
      EXPECT_EQ(&inner, &tx);  // same transaction
      EXPECT_EQ(inner.read(v), 1);
      inner.write(v, 2);
    });
    EXPECT_EQ(tx.read(v), 2);
  });
  EXPECT_EQ(v.unsafe_ref(), 2);
}

TEST_P(StmModeTest, NestedAbortUnwindsWholeFlatTxn) {
  Var<long> v(7);
  EXPECT_THROW(stm.atomically([&](Txn& tx) {
                 tx.write(v, 8);
                 stm.atomically(
                     [&](Txn&) { throw std::runtime_error("inner"); });
               }),
               std::runtime_error);
  EXPECT_EQ(v.unsafe_ref(), 7);
}

TEST_P(StmModeTest, ReturnValuePropagates) {
  Var<long> v(5);
  const std::string s = stm.atomically(
      [&](Txn& tx) { return std::to_string(tx.read(v) * 2); });
  EXPECT_EQ(s, "10");
}

TEST_P(StmModeTest, FreshStampsAreUnique) {
  std::vector<std::uint64_t> stamps;
  stm.atomically([&](Txn& tx) {
    for (int i = 0; i < 100; ++i) stamps.push_back(tx.fresh_stamp());
  });
  std::sort(stamps.begin(), stamps.end());
  EXPECT_EQ(std::unique(stamps.begin(), stamps.end()), stamps.end());
}

TEST_P(StmModeTest, StatsCountCommitsAndReadsWrites) {
  stm.stats().reset();
  Var<long> v(0);
  stm.atomically([&](Txn& tx) {
    tx.read(v);
    tx.write(v, 1);
  });
  const StatsSnapshot s = stm.stats().snapshot();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.starts, 1u);
  EXPECT_GE(s.reads, 1u);
  EXPECT_GE(s.writes, 1u);
  EXPECT_EQ(s.total_aborts(), 0u);
}

TEST_P(StmModeTest, ExplicitRetryReRunsBody) {
  Var<long> v(0);
  int attempts = 0;
  stm.atomically([&](Txn& tx) {
    ++attempts;
    if (attempts < 3) tx.retry();
    tx.write(v, attempts);
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(v.unsafe_ref(), 3);
}

TEST_P(StmModeTest, RetryRollsBackPriorWritesOfAttempt) {
  Var<long> v(100);
  int attempts = 0;
  stm.atomically([&](Txn& tx) {
    ++attempts;
    tx.write(v, tx.read(v) + 1);  // would double-apply if not rolled back
    if (attempts == 1) tx.retry();
  });
  EXPECT_EQ(v.unsafe_ref(), 101);
}

TEST_P(StmModeTest, ReadValidateDoesNotReturnOwnWrite) {
  // read_validate observes the *committed* version even after a buffered
  // write; here we just check it doesn't throw and commits fine.
  Var<std::uint64_t> v(0);
  stm.atomically([&](Txn& tx) {
    tx.write(v, std::uint64_t{9});
    tx.read_validate(v);
  });
  EXPECT_EQ(v.unsafe_ref(), 9u);
}

TEST_P(StmModeTest, TxnLocalStorageIsPerAttempt) {
  Var<long> v(0);
  int attempts = 0;
  int key = 0;
  stm.atomically([&](Txn& tx) {
    ++attempts;
    long& counter = tx.local<long>(&key, [] { return 0L; });
    EXPECT_EQ(counter, 0) << "locals must reset between attempts";
    counter = 42;
    if (attempts == 1) tx.retry();
    tx.write(v, counter);
  });
  EXPECT_EQ(v.unsafe_ref(), 42);
}

TEST_P(StmModeTest, WideValueVarRoundTrips) {
  struct Wide {
    long a[6];
  };
  Var<Wide> v(Wide{{1, 2, 3, 4, 5, 6}});
  stm.atomically([&](Txn& tx) {
    Wide w = tx.read(v);
    w.a[5] = 60;
    tx.write(v, w);
  });
  EXPECT_EQ(v.unsafe_ref().a[5], 60);
  EXPECT_EQ(v.unsafe_ref().a[0], 1);
}

TEST_P(StmModeTest, ManyVarsInOneTxn) {
  std::vector<Var<long>> vars(512);
  stm.atomically([&](Txn& tx) {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      tx.write(vars[i], static_cast<long>(i));
    }
  });
  stm.atomically([&](Txn& tx) {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      EXPECT_EQ(tx.read(vars[i]), static_cast<long>(i));
    }
  });
}

TEST_P(StmModeTest, ReadOnlyTxnDoesNotAdvanceClock) {
  Var<long> v(3);
  stm.atomically([&](Txn& tx) { tx.write(v, 4); });
  const Version before = stm.clock_now();
  stm.atomically([&](Txn& tx) { tx.read(v); });
  EXPECT_EQ(stm.clock_now(), before);
}

INSTANTIATE_TEST_SUITE_P(AllModes, StmModeTest,
                         ::testing::Values(Mode::Lazy, Mode::EagerWrite,
                                           Mode::EagerAll),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });
