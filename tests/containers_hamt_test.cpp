// Tests for the snapshottable HAMT (the concurrent-TrieMap stand-in),
// including its O(1) snapshot isolation — the property LazyTrieMap's shadow
// copies rely on.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>

#include "containers/snapshot_hamt.hpp"

using proust::containers::SnapshotHamt;

TEST(SnapshotHamt, PutGetRoundTrip) {
  SnapshotHamt<long, std::string> m;
  EXPECT_EQ(m.put(1, "one"), std::nullopt);
  EXPECT_EQ(m.get(1), "one");
  EXPECT_EQ(m.put(1, "uno"), "one");
  EXPECT_EQ(m.get(1), "uno");
  EXPECT_EQ(m.size(), 1u);
}

TEST(SnapshotHamt, RemoveReturnsOldAndShrinks) {
  SnapshotHamt<long, long> m;
  m.put(9, 90);
  EXPECT_EQ(m.remove(9), 90);
  EXPECT_EQ(m.remove(9), std::nullopt);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(SnapshotHamt, ManyKeysRoundTrip) {
  SnapshotHamt<long, long> m;
  constexpr long kN = 5000;
  for (long i = 0; i < kN; ++i) EXPECT_EQ(m.put(i, i * 3), std::nullopt);
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kN));
  for (long i = 0; i < kN; ++i) EXPECT_EQ(m.get(i), i * 3);
  for (long i = 0; i < kN; i += 2) EXPECT_EQ(m.remove(i), i * 3);
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kN / 2));
  for (long i = 1; i < kN; i += 2) EXPECT_EQ(m.get(i), i * 3);
}

namespace {
// Forces every key into the same trie path to exercise the overflow buckets
// at maximum depth and hash-collision splitting.
struct ColliderHash {
  std::size_t operator()(long) const noexcept { return 0x123456; }
};
}  // namespace

TEST(SnapshotHamt, HashCollisionsHandled) {
  SnapshotHamt<long, long, ColliderHash> m;
  for (long i = 0; i < 64; ++i) EXPECT_EQ(m.put(i, i), std::nullopt);
  EXPECT_EQ(m.size(), 64u);
  for (long i = 0; i < 64; ++i) EXPECT_EQ(m.get(i), i);
  for (long i = 0; i < 64; i += 2) EXPECT_EQ(m.remove(i), i);
  for (long i = 1; i < 64; i += 2) EXPECT_EQ(m.get(i), i);
  EXPECT_EQ(m.get(0), std::nullopt);
}

TEST(SnapshotHamt, ForEachVisitsEverything) {
  SnapshotHamt<long, long> m;
  for (long i = 0; i < 300; ++i) m.put(i, i);
  std::set<long> seen;
  m.for_each([&](long k, long) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 300u);
}

TEST(SnapshotHamt, SnapshotIsImmuneToLaterBaseUpdates) {
  SnapshotHamt<long, long> m;
  m.put(1, 10);
  m.put(2, 20);
  auto snap = m.snapshot();
  m.put(1, 99);
  m.remove(2);
  m.put(3, 30);
  EXPECT_EQ(snap.get(1), 10);
  EXPECT_EQ(snap.get(2), 20);
  EXPECT_EQ(snap.get(3), std::nullopt);
  // Base sees its own updates.
  EXPECT_EQ(m.get(1), 99);
  EXPECT_EQ(m.get(2), std::nullopt);
}

TEST(SnapshotHamt, SnapshotLocalMutationInvisibleToBase) {
  SnapshotHamt<long, long> m;
  m.put(1, 10);
  auto snap = m.snapshot();
  EXPECT_EQ(snap.put(1, 11), 10);
  EXPECT_EQ(snap.put(2, 22), std::nullopt);
  EXPECT_EQ(snap.remove(1), 11);
  EXPECT_EQ(snap.size(), 1u);
  EXPECT_EQ(m.get(1), 10);
  EXPECT_EQ(m.get(2), std::nullopt);
  EXPECT_EQ(m.size(), 1u);
}

TEST(SnapshotHamt, IndependentSnapshotsDiverge) {
  SnapshotHamt<long, long> m;
  m.put(0, 0);
  auto s1 = m.snapshot();
  auto s2 = m.snapshot();
  s1.put(0, 1);
  s2.put(0, 2);
  EXPECT_EQ(s1.get(0), 1);
  EXPECT_EQ(s2.get(0), 2);
  EXPECT_EQ(m.get(0), 0);
}

TEST(SnapshotHamt, ConcurrentWritersAllLand) {
  SnapshotHamt<long, long> m;
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (long i = 0; i < kPerThread; ++i) m.put(t * kPerThread + i, i);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (long i = 0; i < kPerThread; i += 97) {
      EXPECT_EQ(m.get(t * kPerThread + i), i);
    }
  }
}

TEST(SnapshotHamt, ConcurrentSnapshotsSeeConsistentStates) {
  // Writer maintains the invariant "key k present iff k+1000 present".
  SnapshotHamt<long, long> m;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (long round = 0; round < 3000; ++round) {
      const long k = round % 16;
      if (m.contains(k)) {
        // Removal order: mirror first, then primary — a snapshot between
        // the two steps sees primary-without-mirror, never the reverse.
        m.remove(k + 1000);
        m.remove(k);
      } else {
        m.put(k, round);
        m.put(k + 1000, round);
      }
    }
    stop.store(true);
  });
  std::thread checker([&] {
    while (!stop.load()) {
      auto snap = m.snapshot();
      for (long k = 0; k < 16; ++k) {
        if (snap.contains(k + 1000)) {
          EXPECT_TRUE(snap.contains(k))
              << "snapshot saw mirror " << k + 1000 << " without primary";
        }
      }
    }
  });
  writer.join();
  checker.join();
}
