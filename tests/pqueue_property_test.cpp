// Property-based differential tests for the priority queues and the FIFO
// queue: long random operation sequences against reference models,
// parameterized by seed.
#include <gtest/gtest.h>

#include <deque>
#include <queue>
#include <set>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/lazy_pqueue.hpp"
#include "core/txn_pqueue.hpp"
#include "core/txn_queue.hpp"
#include "stm/stm.hpp"

using namespace proust;
using core::PQueueState;
using core::PQueueStateHasher;

namespace {
using OptPQLap = core::OptimisticLap<PQueueState, PQueueStateHasher>;
}

class PQueueDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PQueueDifferentialTest, EagerMatchesMultisetModel) {
  stm::Stm stm(stm::Mode::EagerAll);
  OptPQLap lap(stm, 2);
  core::TxnPriorityQueue<long, OptPQLap> pq(lap);
  std::multiset<long> model;
  Xoshiro256 rng(GetParam());

  for (int i = 0; i < 3000; ++i) {
    const double r = rng.uniform();
    const long v = static_cast<long>(rng.below(200));
    if (r < 0.45) {
      stm.atomically([&](stm::Txn& tx) { pq.insert(tx, v); });
      model.insert(v);
    } else if (r < 0.75) {
      const auto got =
          stm.atomically([&](stm::Txn& tx) { return pq.remove_min(tx); });
      if (model.empty()) {
        ASSERT_EQ(got, std::nullopt) << "op " << i;
      } else {
        ASSERT_EQ(got, *model.begin()) << "op " << i;
        model.erase(model.begin());
      }
    } else if (r < 0.9) {
      const auto got =
          stm.atomically([&](stm::Txn& tx) { return pq.min(tx); });
      if (model.empty()) {
        ASSERT_EQ(got, std::nullopt) << "op " << i;
      } else {
        ASSERT_EQ(got, *model.begin()) << "op " << i;
      }
    } else {
      const bool got =
          stm.atomically([&](stm::Txn& tx) { return pq.contains(tx, v); });
      ASSERT_EQ(got, model.count(v) != 0) << "op " << i;
    }
    ASSERT_EQ(pq.size(), static_cast<long>(model.size())) << "op " << i;
  }
}

TEST_P(PQueueDifferentialTest, LazyMatchesMultisetModel) {
  stm::Stm stm(stm::Mode::Lazy);
  OptPQLap lap(stm, 2);
  core::LazyPriorityQueue<long, OptPQLap> pq(lap);
  std::multiset<long> model;
  Xoshiro256 rng(GetParam() ^ 0xFACE);

  for (int i = 0; i < 3000; ++i) {
    const double r = rng.uniform();
    const long v = static_cast<long>(rng.below(200));
    if (r < 0.45) {
      stm.atomically([&](stm::Txn& tx) { pq.insert(tx, v); });
      model.insert(v);
    } else if (r < 0.75) {
      const auto got =
          stm.atomically([&](stm::Txn& tx) { return pq.remove_min(tx); });
      if (model.empty()) {
        ASSERT_EQ(got, std::nullopt) << "op " << i;
      } else {
        ASSERT_EQ(got, *model.begin()) << "op " << i;
        model.erase(model.begin());
      }
    } else if (r < 0.9) {
      const auto got =
          stm.atomically([&](stm::Txn& tx) { return pq.min(tx); });
      ASSERT_EQ(got, model.empty()
                         ? std::optional<long>{}
                         : std::optional<long>{*model.begin()})
          << "op " << i;
    } else {
      const bool got =
          stm.atomically([&](stm::Txn& tx) { return pq.contains(tx, v); });
      ASSERT_EQ(got, model.count(v) != 0) << "op " << i;
    }
  }
  ASSERT_EQ(pq.size(), static_cast<long>(model.size()));
}

TEST_P(PQueueDifferentialTest, MultiOpTxnsMatchModel) {
  // Transactions of several pqueue ops applied atomically; the model applies
  // them in the same order only once the transaction commits.
  stm::Stm stm(stm::Mode::EagerAll);
  OptPQLap lap(stm, 2);
  core::TxnPriorityQueue<long, OptPQLap> pq(lap);
  std::multiset<long> model;
  Xoshiro256 rng(GetParam() * 31 + 1);

  for (int t = 0; t < 300; ++t) {
    const int ops = 1 + static_cast<int>(rng.below(6));
    struct Planned {
      int kind;
      long v;
    };
    std::vector<Planned> plan;
    for (int i = 0; i < ops; ++i) {
      plan.push_back({static_cast<int>(rng.below(2)),
                      static_cast<long>(rng.below(100))});
    }
    std::vector<std::optional<long>> got;
    stm.atomically([&](stm::Txn& tx) {
      got.clear();
      for (const Planned& p : plan) {
        if (p.kind == 0) {
          pq.insert(tx, p.v);
          got.push_back(std::nullopt);
        } else {
          got.push_back(pq.remove_min(tx));
        }
      }
    });
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].kind == 0) {
        model.insert(plan[i].v);
      } else if (model.empty()) {
        ASSERT_EQ(got[i], std::nullopt);
      } else {
        ASSERT_EQ(got[i], *model.begin()) << "txn " << t << " op " << i;
        model.erase(model.begin());
      }
    }
  }
}

TEST_P(PQueueDifferentialTest, FifoQueueMatchesDequeModel) {
  stm::Stm stm(stm::Mode::EagerAll);
  core::OptimisticLap<core::QueueState, core::QueueStateHasher> lap(stm, 2);
  core::TxnQueue<long, decltype(lap)> q(lap);
  std::deque<long> model;
  Xoshiro256 rng(GetParam() + 1000);

  for (int i = 0; i < 4000; ++i) {
    if (rng.uniform() < 0.55) {
      const long v = static_cast<long>(rng.below(100000));
      stm.atomically([&](stm::Txn& tx) { q.enq(tx, v); });
      model.push_back(v);
    } else {
      const auto got = stm.atomically([&](stm::Txn& tx) { return q.deq(tx); });
      if (model.empty()) {
        ASSERT_EQ(got, std::nullopt) << "op " << i;
      } else {
        ASSERT_EQ(got, model.front()) << "op " << i;
        model.pop_front();
      }
    }
  }
  ASSERT_EQ(q.size(), static_cast<long>(model.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PQueueDifferentialTest,
                         ::testing::Values(11u, 22u, 33u, 44u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });
