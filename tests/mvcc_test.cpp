// MVCC snapshot reads (StmOptions::mvcc, DESIGN.md §11): read-only
// transactions pin a start timestamp and read version chains — no read set,
// no validation, no conflict aborts — while writers keep full TL2 semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <deque>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "stm/stm.hpp"

using namespace proust::stm;

namespace {

StmOptions mvcc_options() {
  StmOptions o;
  o.mvcc = true;
  return o;
}

}  // namespace

TEST(MvccTest, SnapshotSumInvariantUnderConcurrentWriters) {
  // Writers move value between accounts keeping the total fixed; snapshot
  // readers must always see the invariant total, and each read-only call
  // must run its body exactly once (a second run would mean an abort).
  Stm stm(Mode::Lazy, mvcc_options());
  constexpr int kAccounts = 16;
  constexpr long kInitial = 1000;
  std::deque<Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.emplace_back(kInitial);

  std::atomic<bool> stop{false};
  std::atomic<long> bad_sums{0};
  std::atomic<long> reruns{0};
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;

  std::vector<std::thread> ts;
  for (int t = 0; t < kWriters; ++t) {
    ts.emplace_back([&, t] {
      proust::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 11);
      while (!stop.load(std::memory_order_acquire)) {
        const int from = static_cast<int>(rng.below(kAccounts));
        const int to = static_cast<int>(rng.below(kAccounts));
        if (from == to) continue;
        stm.atomically([&](Txn& tx) {
          const long f = tx.read(accounts[from]);
          tx.write(accounts[from], f - 1);
          tx.write(accounts[to], tx.read(accounts[to]) + 1);
        });
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        int runs = 0;
        long sum = 0;
        stm.atomically_ro([&](Txn& tx) {
          ++runs;
          sum = 0;
          for (auto& a : accounts) sum += tx.read(a);
          EXPECT_TRUE(tx.is_snapshot_reader());
        });
        if (sum != long{kAccounts} * kInitial) bad_sums.fetch_add(1);
        if (runs != 1) reruns.fetch_add(1);
      }
    });
  }
  // Let writers run until the readers are done.
  for (std::size_t i = kWriters; i < ts.size(); ++i) ts[i].join();
  stop.store(true, std::memory_order_release);
  for (int t = 0; t < kWriters; ++t) ts[t].join();

  EXPECT_EQ(bad_sums.load(), 0) << "snapshot saw a torn total";
  EXPECT_EQ(reruns.load(), 0) << "a declared read-only call re-ran its body";

  const auto s = stm.stats().snapshot();
  EXPECT_EQ(s.ro_commits, std::uint64_t{kReaders} * 4000);
  EXPECT_GT(s.mvcc_pushed, 0u) << "writers never pushed a version";

  long total = 0;
  for (auto& a : accounts) total += a.unsafe_ref();
  EXPECT_EQ(total, long{kAccounts} * kInitial) << "writer-path opacity broken";
}

TEST(MvccTest, DeclaredReadOnlyWriteThrows) {
  Stm stm(Mode::Lazy, mvcc_options());
  Var<long> v(1);
  EXPECT_THROW(
      stm.atomically_ro([&](Txn& tx) { tx.write(v, 2); }),
      std::logic_error);
  EXPECT_EQ(v.unsafe_ref(), 1);
  // The Stm stays usable after the contract violation.
  stm.atomically([&](Txn& tx) { tx.write(v, 3); });
  EXPECT_EQ(v.unsafe_ref(), 3);
}

TEST(MvccTest, AtomicallyRoWithoutMvccBehavesLikeAtomically) {
  // Without StmOptions::mvcc the declared-read-only entry point is a plain
  // atomically: writes are allowed and no snapshot machinery engages.
  Stm stm(Mode::Lazy);
  Var<long> v(0);
  stm.atomically_ro([&](Txn& tx) {
    EXPECT_FALSE(tx.is_snapshot_reader());
    tx.write(v, 42);
  });
  EXPECT_EQ(v.unsafe_ref(), 42);
}

TEST(MvccTest, NestedReadOnlyJoinsEnclosingTransaction) {
  Stm stm(Mode::Lazy, mvcc_options());
  Var<long> v(7);
  stm.atomically([&](Txn& outer) {
    outer.write(v, 8);
    long seen = 0;
    stm.atomically_ro([&](Txn& inner) {
      EXPECT_EQ(&inner, &outer);  // flat nesting: same transaction
      seen = inner.read(v);
    });
    EXPECT_EQ(seen, 8);  // sees the enclosing writer's own write
  });
  EXPECT_EQ(v.unsafe_ref(), 8);
}

TEST(MvccTest, HistoricalReadsStayOnSnapshot) {
  // A reader that pins a snapshot, then lets writers commit, must keep
  // reading the pinned version — the second read walks the version chain.
  Stm stm(Mode::Lazy, mvcc_options());
  Var<long> v(100);

  std::atomic<int> phase{0};  // 0: reader not pinned, 1: pinned, 2: written
  long first = -1, second = -1;

  std::thread reader([&] {
    stm.atomically_ro([&](Txn& tx) {
      first = tx.read(v);
      phase.store(1, std::memory_order_release);
      while (phase.load(std::memory_order_acquire) < 2) {
        std::this_thread::yield();
      }
      second = tx.read(v);
    });
  });

  while (phase.load(std::memory_order_acquire) < 1) {
    std::this_thread::yield();
  }
  for (long i = 1; i <= 5; ++i) {
    stm.atomically([&](Txn& tx) { tx.write(v, 100 + i); });
  }
  phase.store(2, std::memory_order_release);
  reader.join();

  EXPECT_EQ(first, 100);
  EXPECT_EQ(second, 100) << "snapshot read drifted to a newer version";
  EXPECT_EQ(v.unsafe_ref(), 105);
}

TEST(MvccTest, TruncationBoundsChainsOnceReadersRelease) {
  Stm stm(Mode::Lazy, mvcc_options());
  Var<long> v(0);

  std::atomic<int> phase{0};
  std::thread reader([&] {
    stm.atomically_ro([&](Txn& tx) {
      (void)tx.read(v);
      phase.store(1, std::memory_order_release);
      while (phase.load(std::memory_order_acquire) < 2) {
        std::this_thread::yield();
      }
    });
  });
  while (phase.load(std::memory_order_acquire) < 1) {
    std::this_thread::yield();
  }

  // While the reader's snapshot is pinned, the truncation horizon is stuck
  // at it: the chain must retain (almost) every displaced version.
  constexpr long kWrites = 100;
  for (long i = 1; i <= kWrites; ++i) {
    stm.atomically([&](Txn& tx) { tx.write(v, i); });
  }
  EXPECT_GE(v.unsafe_chain_length(), static_cast<std::size_t>(kWrites / 2))
      << "chain truncated past a live snapshot's horizon";

  phase.store(2, std::memory_order_release);
  reader.join();

  // With no reader announced, the very next commits truncate down to the
  // single entry at the horizon.
  for (long i = 0; i < 4; ++i) {
    stm.atomically([&](Txn& tx) { tx.write(v, kWrites + 1 + i); });
  }
  EXPECT_LE(v.unsafe_chain_length(), std::size_t{4});
  const auto s = stm.stats().snapshot();
  EXPECT_GT(s.mvcc_reclaimed, 0u);
  EXPECT_GT(s.mvcc_chain_max, 0u);
}

TEST(MvccTest, AutoDetectionRetriesCleanAbortsAsSnapshots) {
  // A read-only body that aborts (conflict with a writer) retries as a
  // snapshot reader and then cannot abort again. Detection is per call, so
  // we look for a call whose retry observed is_snapshot_reader().
  Stm stm(Mode::Lazy, mvcc_options());
  Var<long> a(0), b(0);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    long i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ++i;
      stm.atomically([&](Txn& tx) {
        tx.write(a, i);
        tx.write(b, -i);
      });
    }
  });

  bool promoted = false;
  for (int i = 0; i < 200000 && !promoted; ++i) {
    stm.atomically([&](Txn& tx) {
      const long x = tx.read(a);
      // Widen the window between the two reads so the writer can slip in.
      for (int spin = 0; spin < 64; ++spin) proust::Backoff::cpu_relax();
      const long y = tx.read(b);
      EXPECT_EQ(x + y, 0) << "inconsistent snapshot";
      promoted |= tx.is_snapshot_reader();
    });
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_TRUE(promoted)
      << "no clean abort was ever retried in snapshot mode";
  EXPECT_GT(stm.stats().snapshot().ro_commits, 0u);
}

TEST(MvccTest, AutoDetectionCanBeDisabled) {
  StmOptions o = mvcc_options();
  o.mvcc_auto_readonly = false;
  Stm stm(Mode::Lazy, o);
  Var<long> v(0);
  for (int i = 0; i < 100; ++i) {
    stm.atomically([&](Txn& tx) {
      (void)tx.read(v);
      EXPECT_FALSE(tx.is_snapshot_reader());
    });
  }
  // Declared read-only still works when auto-detection is off.
  stm.atomically_ro([&](Txn& tx) {
    EXPECT_TRUE(tx.is_snapshot_reader());
    EXPECT_EQ(tx.read(v), 0);
  });
}

TEST(MvccTest, WritersStillConflictAndRetryCorrectly) {
  // The counter-increment loop from the concurrent suite, under mvcc: the
  // writer path keeps TL2 semantics (no lost updates).
  Stm stm(Mode::Lazy, mvcc_options());
  Var<long> counter(0);
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;

  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      sync.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        stm.atomically(
            [&](Txn& tx) { tx.write(counter, tx.read(counter) + 1); });
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(counter.unsafe_ref(), long{kThreads} * kIters);
}

TEST(MvccTest, MvccWorksAcrossModesAndClockSchemes) {
  for (const Mode mode : {Mode::Lazy, Mode::EagerWrite, Mode::EagerAll}) {
    for (const ClockScheme cs : {ClockScheme::IncOnCommit,
                                 ClockScheme::PassOnFailure,
                                 ClockScheme::LazyBump}) {
      StmOptions o = mvcc_options();
      o.clock_scheme = cs;
      Stm stm(mode, o);
      Var<long> x(1), y(2);

      for (long i = 0; i < 50; ++i) {
        stm.atomically([&](Txn& tx) {
          tx.write(x, tx.read(x) + 1);
          tx.write(y, tx.read(y) + 1);
        });
      }
      long sx = 0, sy = 0;
      stm.atomically_ro([&](Txn& tx) {
        sx = tx.read(x);
        sy = tx.read(y);
      });
      EXPECT_EQ(sx, 51);
      EXPECT_EQ(sy, 52);
      EXPECT_GT(stm.stats().snapshot().ro_commits, 0u);
    }
  }
}
