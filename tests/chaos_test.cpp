// The chaos differential suite (ctest label "chaos"): multi-threaded
// randomized map transactions under deterministic runtime fault injection
// (stm/chaos.hpp), checked against a mutex-guarded reference applied only on
// commit. Every injected abort, delay, forced LAP timeout and RW-lock
// slow-path failure must be absorbed by the retry machinery without leaking
// partial effects, orecs, abstract-lock stripes or reader marks.
//
// Reproducing a failure: every assertion carries the seed via SCOPED_TRACE,
// and the base seed is printed at suite start. Re-run with
//   PROUST_CHAOS_SEED=<seed> ./chaos_test --gtest_filter=<failing test>
// to replay the same per-thread decision streams (see the determinism
// contract in stm/chaos.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "map_configs.hpp"
#include "stm/chaos.hpp"

using namespace proust::testing;
namespace stm = proust::stm;

namespace {

std::uint64_t base_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = 0xC45EEDu;
    if (const char* env = std::getenv("PROUST_CHAOS_SEED")) {
      s = std::strtoull(env, nullptr, 0);
    }
    std::fprintf(stderr,
                 "[chaos] base seed %llu (override: PROUST_CHAOS_SEED)\n",
                 static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

struct Planned {
  int kind;
  long k, v;
};

/// N threads of randomized planned transactions against `map`, with the
/// reference folded in via on_commit_locked (runs behind the STM's locks, so
/// conflicting transactions apply in serialization order; aborted attempts
/// drop the hook with their arena). Returns the reference's final state.
std::map<long, long> run_differential(MapUnderTest& map, std::uint64_t seed,
                                      int threads, int txns_per_thread,
                                      long keys) {
  std::mutex ref_mu;
  std::map<long, long> reference;
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      proust::Xoshiro256 rng(seed * 6364136223846793005ULL + t * 1442695041ULL +
                             1);
      for (int i = 0; i < txns_per_thread; ++i) {
        const int ops = 1 + static_cast<int>(rng.below(6));
        std::vector<Planned> plan;
        for (int j = 0; j < ops; ++j) {
          plan.push_back({static_cast<int>(rng.below(3)),
                          static_cast<long>(rng.below(
                              static_cast<std::uint64_t>(keys))),
                          static_cast<long>(rng.below(1000))});
        }
        std::vector<char> removed(plan.size(), 0);
        map.atomically_tx([&](MapView& m, stm::Txn& tx) {
          tx.on_commit_locked([&] {
            std::lock_guard<std::mutex> g(ref_mu);
            for (std::size_t j = 0; j < plan.size(); ++j) {
              const Planned& p = plan[j];
              if (p.kind == 0) {
                reference[p.k] = p.v;
              } else if (p.kind == 1 && removed[j]) {
                // Apply removes only when the map reported a removal. Hooks
                // of *writing* commits run in serialization order (the writer
                // holds the conflicting stripe for its whole commit window),
                // but a remove of an absent key may be read-only at the CA
                // level (predication reads the predicate without writing), so
                // its hook is NOT ordered against a concurrent writer of the
                // same key — an unconditional erase here could revert that
                // writer's put even though the STM serialized the remove
                // first. A no-op remove folds to a no-op on the reference in
                // either order, so skipping it keeps the fold exact.
                reference.erase(p.k);
              }
            }
          });
          for (std::size_t j = 0; j < plan.size(); ++j) {
            const Planned& p = plan[j];
            switch (p.kind) {
              case 0: m.put(p.k, p.v); break;
              case 1: removed[j] = m.remove(p.k).has_value(); break;
              default: m.get(p.k); break;
            }
          }
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  return reference;
}

void expect_map_equals(MapUnderTest& map, const std::map<long, long>& reference,
                       long keys) {
  for (long k = 0; k < keys; ++k) {
    auto it = reference.find(k);
    std::optional<long> expected =
        it == reference.end() ? std::nullopt : std::make_optional(it->second);
    ASSERT_EQ(map.get1(k), expected) << "key " << k;
  }
  if (map.committed_size() >= 0) {
    EXPECT_EQ(map.committed_size(), static_cast<long>(reference.size()));
  }
}

using Param = std::tuple<MapConfig, std::uint64_t>;

class ChaosMapTest : public ::testing::TestWithParam<Param> {};

}  // namespace

TEST_P(ChaosMapTest, DifferentialUnderInjection) {
  const MapConfig& cfg = std::get<0>(GetParam());
  const std::uint64_t seed = base_seed() + std::get<1>(GetParam());
  SCOPED_TRACE("chaos seed " + std::to_string(seed) + " (config " + cfg.name +
               ")");

  stm::ChaosPolicy policy(stm::ChaosConfig::standard(seed));
  policy.install_lock_hook();
  stm::StmOptions opts;
  opts.chaos = &policy;
  auto map = cfg.make_with(opts);

  const long kKeys = 32;
  const auto reference = run_differential(*map, seed, 4, 250, kKeys);

  policy.remove_lock_hook();  // quiesce before reading policy counters
  expect_map_equals(*map, reference, kKeys);
  EXPECT_EQ(policy.leaks(), 0u);
  // The workload is large enough that a zero injection count means the
  // harness is wired up wrong, not that the dice were unlucky.
  EXPECT_GT(policy.injected_total(), 0u);
  // Txn-level injections also surface in the STM's stats (the bench JSON
  // uses this); the sync-layer LockTransition cell is policy-only.
  EXPECT_GT(map->stats().total_injected(), 0u);
}

TEST_P(ChaosMapTest, AggressiveInjectionStillConverges) {
  const MapConfig& cfg = std::get<0>(GetParam());
  const std::uint64_t seed = base_seed() + 71 + std::get<1>(GetParam());
  SCOPED_TRACE("chaos seed " + std::to_string(seed) + " (config " + cfg.name +
               ")");

  stm::ChaosPolicy policy(stm::ChaosConfig::aggressive(seed));
  policy.install_lock_hook();
  stm::StmOptions opts;
  opts.chaos = &policy;
  // Shorter LAP timeouts recover faster from injected slow-path failures.
  opts.lap_timeout = std::chrono::milliseconds(1);
  auto map = cfg.make_with(opts);

  const long kKeys = 24;
  const auto reference = run_differential(*map, seed, 4, 120, kKeys);

  policy.remove_lock_hook();
  expect_map_equals(*map, reference, kKeys);
  EXPECT_EQ(policy.leaks(), 0u);
  EXPECT_GT(policy.injected_total(), 0u);
}

TEST_P(ChaosMapTest, InjectionComposesWithFallbackGate) {
  // The irrevocable fallback (StmOptions::fallback_after) re-runs a starving
  // transaction under the STM's exclusive commit gate. Chaos can still abort
  // that gated attempt; the retry loop must release and re-take the gate
  // without wedging or leaking.
  const MapConfig& cfg = std::get<0>(GetParam());
  const std::uint64_t seed = base_seed() + 143 + std::get<1>(GetParam());
  SCOPED_TRACE("chaos seed " + std::to_string(seed) + " (config " + cfg.name +
               ")");

  stm::ChaosPolicy policy(stm::ChaosConfig::aggressive(seed));
  policy.install_lock_hook();
  stm::StmOptions opts;
  opts.chaos = &policy;
  opts.fallback_after = 3;
  auto map = cfg.make_with(opts);

  const long kKeys = 16;
  const auto reference = run_differential(*map, seed, 4, 80, kKeys);

  policy.remove_lock_hook();
  expect_map_equals(*map, reference, kKeys);
  EXPECT_EQ(policy.leaks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChaosMapTest,
    ::testing::Combine(::testing::ValuesIn(opaque_map_configs()),
                       ::testing::Values(0u)),
    [](const auto& info) {
      return std::get<0>(info.param).name + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// --- MVCC column ------------------------------------------------------------

// Same differential harness with StmOptions::mvcc on: writers push version
// chains, clean aborted attempts auto-retry as snapshot readers, and chaos
// still injects everywhere (snapshot readers keep their injection points, so
// "read-only never aborts" is asserted only absent injection — see
// mvcc_test.cpp). The final state must still match the sequential reference.
class MvccChaosMapTest : public ::testing::TestWithParam<Param> {};

TEST_P(MvccChaosMapTest, DifferentialUnderInjection) {
  const MapConfig& cfg = std::get<0>(GetParam());
  const std::uint64_t seed = base_seed() + 977 + std::get<1>(GetParam());
  SCOPED_TRACE("chaos seed " + std::to_string(seed) + " (config " + cfg.name +
               ", mvcc)");

  stm::ChaosPolicy policy(stm::ChaosConfig::standard(seed));
  policy.install_lock_hook();
  stm::StmOptions opts;
  opts.chaos = &policy;
  opts.mvcc = true;
  auto map = cfg.make_with(opts);

  const long kKeys = 32;
  const auto reference = run_differential(*map, seed, 4, 250, kKeys);

  policy.remove_lock_hook();
  expect_map_equals(*map, reference, kKeys);
  EXPECT_EQ(policy.leaks(), 0u);
  EXPECT_GT(policy.injected_total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MvccChaosMapTest,
    ::testing::Combine(::testing::ValuesIn(opaque_map_configs()),
                       ::testing::Values(0u)),
    [](const auto& info) {
      return std::get<0>(info.param).name + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// --- Determinism contract ---------------------------------------------------

TEST(ChaosDeterminismTest, SameSeedSameDecisionStream) {
  const std::uint64_t seed = base_seed();
  stm::ChaosPolicy a(stm::ChaosConfig::standard(seed));
  stm::ChaosPolicy b(stm::ChaosConfig::standard(seed));
  stm::ChaosPolicy c(stm::ChaosConfig::standard(seed + 1));
  bool differs = false;
  for (int i = 0; i < 10000; ++i) {
    const auto p = static_cast<stm::ChaosPoint>(i % stm::kNumChaosPoints);
    const stm::ChaosAction va = a.decide(p);
    const stm::ChaosAction vb = b.decide(p);
    ASSERT_EQ(va, vb) << "decision " << i << " diverged for equal seeds";
    if (va != c.decide(p)) differs = true;
  }
  EXPECT_TRUE(differs) << "distinct seeds produced identical streams";
  EXPECT_EQ(a.injected_total(), b.injected_total());
}

TEST(ChaosDeterminismTest, SingleThreadedWorkloadReplaysBitExact) {
  // One thread, same seed, two runs: the decision sequence each transaction
  // meets is identical, so the whole execution — injected aborts, retries,
  // final state, injection counters — replays exactly.
  const std::uint64_t seed = base_seed() + 9;
  auto run = [&](std::map<long, long>& out_state, stm::StatsSnapshot& out_stats,
                 std::array<std::uint64_t, stm::kNumChaosPoints>& out_injected) {
    stm::ChaosPolicy policy(stm::ChaosConfig::aggressive(seed));
    stm::StmOptions opts;
    opts.chaos = &policy;
    MapConfig cfg;
    for (auto& c : all_map_configs()) {
      if (c.name == "lazy_memo_lazystm") cfg = c;
    }
    ASSERT_FALSE(cfg.name.empty());
    auto map = cfg.make_with(opts);
    proust::Xoshiro256 rng(seed);
    for (int i = 0; i < 400; ++i) {
      const long k = static_cast<long>(rng.below(16));
      const long v = static_cast<long>(rng.below(1000));
      switch (rng.below(3)) {
        case 0: map->put1(k, v); break;
        case 1: map->remove1(k); break;
        default: map->get1(k); break;
      }
    }
    for (long k = 0; k < 16; ++k) {
      if (auto v = map->get1(k)) out_state[k] = *v;
    }
    out_stats = map->stats();
    out_injected = policy.injected_totals();
    EXPECT_EQ(policy.leaks(), 0u);
  };

  std::map<long, long> s1, s2;
  stm::StatsSnapshot st1, st2;
  std::array<std::uint64_t, stm::kNumChaosPoints> inj1{}, inj2{};
  run(s1, st1, inj1);
  run(s2, st2, inj2);

  EXPECT_EQ(s1, s2);
  EXPECT_EQ(st1.starts, st2.starts);
  EXPECT_EQ(st1.commits, st2.commits);
  EXPECT_EQ(st1.total_aborts(), st2.total_aborts());
  EXPECT_EQ(inj1, inj2);
  EXPECT_GT(st1.total_injected(), 0u);
}

TEST(ChaosDeterminismTest, FullMatrixReplaysInjectionsAndAbortReasons) {
  // The replay contract across the whole design-space matrix: two runs with
  // the same seed must produce, for every map config, identical per-point
  // injection counters AND an identical per-call abort-reason stream (the
  // delta of the per-reason abort counters after each operation) — the two
  // artifacts a PROUST_CHAOS_SEED replay of a failure report relies on.
  const std::uint64_t seed = base_seed() + 17;
  constexpr std::size_t kReasons =
      static_cast<std::size_t>(stm::AbortReason::kCount);
  using AbortArray = std::array<std::uint64_t, kReasons>;
  struct RunTrace {
    std::array<std::uint64_t, stm::kNumChaosPoints> injected{};
    std::vector<AbortArray> abort_stream;
    std::map<long, long> state;
  };
  auto run = [&](const MapConfig& cfg, RunTrace& out) {
    stm::ChaosPolicy policy(stm::ChaosConfig::aggressive(seed));
    stm::StmOptions opts;
    opts.chaos = &policy;
    auto map = cfg.make_with(opts);
    proust::Xoshiro256 rng(seed ^ 0x9E3779B97F4A7C15ULL);
    AbortArray prev{};
    for (int i = 0; i < 160; ++i) {
      const long k = static_cast<long>(rng.below(16));
      const long v = static_cast<long>(rng.below(1000));
      switch (rng.below(3)) {
        case 0: map->put1(k, v); break;
        case 1: map->remove1(k); break;
        default: map->get1(k); break;
      }
      const stm::StatsSnapshot s = map->stats();
      AbortArray delta{};
      for (std::size_t r = 0; r < kReasons; ++r) delta[r] = s.aborts[r] - prev[r];
      prev = s.aborts;
      out.abort_stream.push_back(delta);
    }
    for (long k = 0; k < 16; ++k) {
      if (auto val = map->get1(k)) out.state[k] = *val;
    }
    out.injected = policy.injected_totals();
    EXPECT_EQ(policy.leaks(), 0u);
  };

  for (const MapConfig& cfg : all_map_configs()) {
    SCOPED_TRACE(cfg.name);
    RunTrace a, b;
    run(cfg, a);
    run(cfg, b);
    EXPECT_EQ(a.injected, b.injected) << "injection counters diverged";
    EXPECT_EQ(a.abort_stream, b.abort_stream) << "abort-reason stream diverged";
    EXPECT_EQ(a.state, b.state);
  }
}
