// Tests for the lazy concurrent skip list (the ordered-map base).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "containers/concurrent_skip_list.hpp"

using proust::containers::ConcurrentSkipList;

TEST(ConcurrentSkipList, PutGetRoundTrip) {
  ConcurrentSkipList<long, long> m;
  EXPECT_EQ(m.put(5, 50), std::nullopt);
  EXPECT_EQ(m.get(5), 50);
  EXPECT_EQ(m.put(5, 51), 50);
  EXPECT_EQ(m.get(5), 51);
  EXPECT_EQ(m.size(), 1u);
}

TEST(ConcurrentSkipList, RemoveSemantics) {
  ConcurrentSkipList<long, long> m;
  m.put(1, 10);
  EXPECT_EQ(m.remove(1), 10);
  EXPECT_EQ(m.remove(1), std::nullopt);
  EXPECT_EQ(m.get(1), std::nullopt);
  EXPECT_TRUE(m.empty());
}

TEST(ConcurrentSkipList, ManyKeysSortedTraversal) {
  ConcurrentSkipList<long, long> m;
  proust::Xoshiro256 rng(5);
  std::map<long, long> reference;
  for (int i = 0; i < 3000; ++i) {
    const long k = static_cast<long>(rng.below(10000));
    reference[k] = i;
    m.put(k, i);
  }
  std::vector<long> keys;
  m.range_for_each(0, 9999, [&](long k, long v) {
    keys.push_back(k);
    EXPECT_EQ(reference.at(k), v);
  });
  EXPECT_EQ(keys.size(), reference.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(ConcurrentSkipList, RangeForEachRespectsBounds) {
  ConcurrentSkipList<long, long> m;
  for (long k = 0; k < 100; ++k) m.put(k, k);
  long count = 0, sum = 0;
  m.range_for_each(10, 19, [&](long k, long v) {
    EXPECT_GE(k, 10);
    EXPECT_LE(k, 19);
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sum, 145);
}

TEST(ConcurrentSkipList, RangeForEachEmptyRange) {
  ConcurrentSkipList<long, long> m;
  m.put(5, 5);
  long count = 0;
  m.range_for_each(10, 20, [&](long, long) { ++count; });
  EXPECT_EQ(count, 0);
  m.range_for_each(6, 4, [&](long, long) { ++count; });  // inverted bounds
  EXPECT_EQ(count, 0);
}

TEST(ConcurrentSkipList, CeilingKey) {
  ConcurrentSkipList<long, long> m;
  for (long k : {10L, 20L, 30L}) m.put(k, k);
  EXPECT_EQ(m.ceiling_key(5), 10);
  EXPECT_EQ(m.ceiling_key(10), 10);
  EXPECT_EQ(m.ceiling_key(11), 20);
  EXPECT_EQ(m.ceiling_key(31), std::nullopt);
}

TEST(ConcurrentSkipList, ReinsertAfterRemove) {
  ConcurrentSkipList<long, long> m;
  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(m.put(7, round), std::nullopt);
    EXPECT_EQ(m.remove(7), round);
  }
  EXPECT_TRUE(m.empty());
}

TEST(ConcurrentSkipList, ConcurrentDisjointInserts) {
  ConcurrentSkipList<long, long> m;
  constexpr int kThreads = 4, kPerThread = 3000;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i) {
        m.put(t + i * kThreads, i);  // interleaved key spaces
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  long count = 0;
  long prev = -1;
  bool sorted = true;
  m.range_for_each(0, kThreads * kPerThread, [&](long k, long) {
    sorted = sorted && k > prev;
    prev = k;
    ++count;
  });
  EXPECT_TRUE(sorted);
  EXPECT_EQ(count, long{kThreads} * kPerThread);
}

TEST(ConcurrentSkipList, ConcurrentPutRemoveSameKeysConverge) {
  ConcurrentSkipList<long, long> m;
  constexpr int kThreads = 4;
  std::atomic<long> net{0};
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      proust::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 41);
      for (int i = 0; i < 4000; ++i) {
        const long k = static_cast<long>(rng.below(64));
        if (rng.uniform() < 0.5) {
          if (!m.put(k, i)) net.fetch_add(1);
        } else {
          if (m.remove(k)) net.fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(m.size(), static_cast<std::size_t>(net.load()));
  long count = 0;
  m.range_for_each(0, 63, [&](long, long) { ++count; });
  EXPECT_EQ(count, net.load());
}

TEST(ConcurrentSkipList, ConcurrentReadersDuringUpdates) {
  ConcurrentSkipList<long, long> m;
  for (long k = 0; k < 128; k += 2) m.put(k, k);
  std::atomic<bool> stop{false};
  std::atomic<long> anomalies{0};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      const long k = (i * 2 + 1) % 128;  // odd keys churn
      if (i % 2 == 0) {
        m.put(k, k);
      } else {
        m.remove(k);
      }
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      // Even keys are stable: they must always be found with their value.
      for (long k = 0; k < 128; k += 2) {
        const auto v = m.get(k);
        if (!v || *v != k) anomalies.fetch_add(1);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(anomalies.load(), 0);
}
