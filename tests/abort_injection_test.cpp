// Abort-injection differential tests: random multi-operation transactions
// where a fraction abort midway (user exception after a prefix of the ops).
// The reference model applies only committed transactions; any divergence
// means a rollback path (inverses, undo combining, replay-log dropping,
// committed-size deltas) leaked partial effects. Runs against every map
// configuration in the design space.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "common/rng.hpp"
#include "map_configs.hpp"

using namespace proust::testing;

namespace {

struct InjectedAbort {};

using Param = std::tuple<MapConfig, std::uint64_t>;

class AbortInjectionTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override { map_ = std::get<0>(GetParam()).make(); }
  std::unique_ptr<MapUnderTest> map_;
};

}  // namespace

TEST_P(AbortInjectionTest, AbortedTxnsLeaveNoTrace) {
  proust::Xoshiro256 rng(std::get<1>(GetParam()) * 977 + 3);
  std::map<long, long> reference;

  for (int t = 0; t < 400; ++t) {
    const int ops = 1 + static_cast<int>(rng.below(10));
    const bool abort = rng.uniform() < 0.4;
    const int abort_after =
        abort ? static_cast<int>(rng.below(static_cast<std::uint64_t>(ops)))
              : ops;
    struct Planned {
      int kind;
      long k, v;
    };
    std::vector<Planned> plan;
    for (int i = 0; i < ops; ++i) {
      plan.push_back({static_cast<int>(rng.below(3)),
                      static_cast<long>(rng.below(16)),
                      static_cast<long>(rng.below(1000))});
    }

    try {
      map_->atomically([&](MapView& m) {
        for (int i = 0; i < ops; ++i) {
          if (i == abort_after) throw InjectedAbort{};
          const Planned& p = plan[i];
          switch (p.kind) {
            case 0: m.put(p.k, p.v); break;
            case 1: m.remove(p.k); break;
            default: m.get(p.k); break;
          }
        }
        if (abort_after == ops && abort) throw InjectedAbort{};
      });
      // Committed: fold the plan into the reference.
      for (const Planned& p : plan) {
        if (p.kind == 0) {
          reference[p.k] = p.v;
        } else if (p.kind == 1) {
          reference.erase(p.k);
        }
      }
      ASSERT_FALSE(abort) << "txn " << t << " should have aborted";
    } catch (const InjectedAbort&) {
      ASSERT_TRUE(abort);
      // Aborted: the reference is untouched.
    }

    // Spot-check state every few transactions (full check at the end).
    if (t % 25 == 0) {
      for (long k = 0; k < 16; ++k) {
        auto it = reference.find(k);
        std::optional<long> expected = it == reference.end()
                                           ? std::nullopt
                                           : std::make_optional(it->second);
        ASSERT_EQ(map_->get1(k), expected) << "txn " << t << " key " << k;
      }
      if (map_->committed_size() >= 0) {
        ASSERT_EQ(map_->committed_size(),
                  static_cast<long>(reference.size()))
            << "txn " << t;
      }
    }
  }

  for (long k = 0; k < 16; ++k) {
    auto it = reference.find(k);
    std::optional<long> expected =
        it == reference.end() ? std::nullopt : std::make_optional(it->second);
    ASSERT_EQ(map_->get1(k), expected);
  }
}

TEST_P(AbortInjectionTest, ConcurrentAbortsPreserveInvariants) {
  // Two threads transfer between accounts; a third of their transactions
  // abort after partially applying. Conservation must survive.
  constexpr long kAccounts = 8, kInitial = 50;
  for (long k = 0; k < kAccounts; ++k) map_->put1(k, kInitial);

  std::vector<std::thread> ts;
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&, t] {
      proust::Xoshiro256 rng(std::get<1>(GetParam()) + t * 131);
      for (int i = 0; i < 500; ++i) {
        const long a = static_cast<long>(rng.below(kAccounts));
        const long b = static_cast<long>(rng.below(kAccounts));
        if (a == b) continue;
        const bool abort = rng.uniform() < 0.33;
        try {
          map_->atomically([&](MapView& m) {
            const long va = m.get(a).value();
            if (va <= 0) return;
            m.put(a, va - 1);
            if (abort) throw InjectedAbort{};  // after the debit!
            m.put(b, m.get(b).value() + 1);
          });
        } catch (const InjectedAbort&) {
        }
      }
    });
  }
  for (auto& th : ts) th.join();

  long total = 0;
  for (long k = 0; k < kAccounts; ++k) total += map_->get1(k).value();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST_P(AbortInjectionTest, MultiThreadedAbortedTxnsLeaveNoTrace) {
  // Four threads of randomized planned transactions, ~30% aborting midway.
  // Each transaction registers an on_commit_locked hook that folds its plan
  // into a mutex-guarded reference map: the hook runs behind the STM's own
  // locks, so conflicting transactions apply to the reference in the same
  // order they serialize against the map, and an aborted attempt's hook is
  // discarded with its arena. Divergence means a rollback path leaked.
  constexpr int kThreads = 4, kTxns = 250;
  constexpr long kKeys = 16;
  std::mutex ref_mu;
  std::map<long, long> reference;

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      proust::Xoshiro256 rng(std::get<1>(GetParam()) * 7919 + t * 131 + 1);
      for (int i = 0; i < kTxns; ++i) {
        const int ops = 1 + static_cast<int>(rng.below(6));
        const bool abort = rng.uniform() < 0.3;
        const int abort_after =
            abort
                ? static_cast<int>(rng.below(static_cast<std::uint64_t>(ops)))
                : ops;
        struct Planned {
          int kind;
          long k, v;
        };
        std::vector<Planned> plan;
        for (int j = 0; j < ops; ++j) {
          plan.push_back({static_cast<int>(rng.below(3)),
                          static_cast<long>(rng.below(kKeys)),
                          static_cast<long>(rng.below(1000))});
        }
        std::vector<char> removed(plan.size(), 0);
        try {
          map_->atomically_tx([&](MapView& m, proust::stm::Txn& tx) {
            tx.on_commit_locked([&] {
              std::lock_guard<std::mutex> g(ref_mu);
              for (std::size_t j = 0; j < plan.size(); ++j) {
                const Planned& p = plan[j];
                if (p.kind == 0) {
                  reference[p.k] = p.v;
                } else if (p.kind == 1 && removed[j]) {
                  // No-op removes may be read-only at the CA level, so their
                  // hook is unordered against concurrent writers of the same
                  // key; skip them (see chaos_test.cpp for the full story).
                  reference.erase(p.k);
                }
              }
            });
            for (int j = 0; j < ops; ++j) {
              if (j == abort_after) throw InjectedAbort{};
              const Planned& p = plan[j];
              switch (p.kind) {
                case 0: m.put(p.k, p.v); break;
                case 1:
                  removed[static_cast<std::size_t>(j)] =
                      m.remove(p.k).has_value();
                  break;
                default: m.get(p.k); break;
              }
            }
            if (abort && abort_after == ops) throw InjectedAbort{};
          });
        } catch (const InjectedAbort&) {
        }
      }
    });
  }
  for (auto& th : ts) th.join();

  for (long k = 0; k < kKeys; ++k) {
    auto it = reference.find(k);
    std::optional<long> expected =
        it == reference.end() ? std::nullopt : std::make_optional(it->second);
    ASSERT_EQ(map_->get1(k), expected) << "key " << k;
  }
  if (map_->committed_size() >= 0) {
    EXPECT_EQ(map_->committed_size(), static_cast<long>(reference.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AbortInjectionTest,
    ::testing::Combine(::testing::ValuesIn(opaque_map_configs()),
                       ::testing::Values(5u, 6u)),
    [](const auto& info) {
      return std::get<0>(info.param).name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });
