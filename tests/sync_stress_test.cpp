// Group-lock stress: heavier concurrency loads for the atomic-word
// ReentrantRwLock, designed to run under ThreadSanitizer (ctest label
// `stress`, see .github/workflows/ci.yml). The lock's memory-order claims
// are machine-checked here: plain (non-atomic) data is guarded by lock
// holds, so any missing happens-before edge in the acquire/release protocol
// is a TSan report, not a flaky assertion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/lap.hpp"
#include "stm/stm.hpp"
#include "sync/reentrant_rw_lock.hpp"

using namespace proust;
using namespace std::chrono_literals;
using Hold = sync::ReentrantRwLock::Hold;

namespace {
constexpr auto kLong = 10s;
}  // namespace

// Classic RW discipline: writers mutate a plain counter exclusively; readers
// observe it under a read hold. TSan validates the release→acquire edge in
// both directions (writer→writer, writer→reader).
TEST(SyncStress, ReaderWriterProtectsPlainData) {
  sync::ReentrantRwLock l;
  long counter = 0;
  std::atomic<bool> torn{false};
  constexpr int kThreads = 4, kIters = 3000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Hold me;
      for (int i = 0; i < kIters; ++i) {
        const bool write = (i + t) % 3 != 0;
        ASSERT_TRUE(l.try_acquire(me, write, kLong));
        if (write) {
          ++counter;
        } else if (counter < 0) {
          torn.store(true);
        }
        l.release_all(me);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(counter, long{kThreads} * kIters / 3 * 2);
}

// Group discipline: concurrent writers commute by each mutating a private
// slot of a plain array (they genuinely overlap inside the write group);
// readers sum the whole array under a read hold, which excludes all
// writers. The reader's sum is race-free if and only if every writer's
// release happens-before the reader's acquire — exactly the edge the state
// word must provide.
TEST(SyncStress, GroupWritersCommuteReadersObserveQuiescence) {
  sync::ReentrantRwLock l(sync::LockKind::kGroup);
  constexpr int kThreads = 4, kIters = 3000;
  long slots[kThreads] = {0};
  std::atomic<bool> bad_sum{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Hold me;
      for (int i = 0; i < kIters; ++i) {
        if (i % 5 == 4) {
          ASSERT_TRUE(l.try_acquire(me, false, kLong));
          long sum = 0;
          for (long s : slots) sum += s;
          if (sum < 0) bad_sum.store(true);
          l.release_all(me);
        } else {
          ASSERT_TRUE(l.try_acquire(me, true, kLong));
          ++slots[t];
          l.release_all(me);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(bad_sum.load());
  long total = 0;
  for (long s : slots) total += s;
  EXPECT_EQ(total, long{kThreads} * kIters / 5 * 4);
}

// Upgrade churn: readers race to upgrade with short timeouts (mutual
// deadlock by design, broken by the timeout), while the winner mutates
// plain data exclusively. Exercises the waiter-registration / wake protocol
// hard — most acquisitions park at least briefly.
TEST(SyncStress, UpgradeChurnUnderParking) {
  sync::ReentrantRwLock l;
  long guarded = 0;
  constexpr int kThreads = 4, kIters = 800;
  std::atomic<long> upgrades{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      Hold me;
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(l.try_acquire(me, false, kLong));
        if (l.try_acquire(me, true, 500us)) {
          ++guarded;
          upgrades.fetch_add(1);
        }
        l.release_all(me);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(guarded, upgrades.load());
  EXPECT_GT(upgrades.load(), 0);
}

// Full-stack stress: transactions over a pessimistic LAP with a per-stripe
// mix of group disciplines, maximal stripe contention (4 stripes), and the
// timeout/retry path live. The plain per-stripe payloads are guarded by the
// stripes' write locks.
TEST(SyncStress, PessimisticLapFullStack) {
  stm::Stm stm(stm::Mode::Lazy);
  core::PessimisticLap<long> lap(
      stm, 4,
      [](std::size_t i) {
        return i % 2 == 0 ? sync::LockKind::kReaderWriter
                          : sync::LockKind::kGroup;
      },
      2ms);
  std::atomic<long> commits{0};
  constexpr int kThreads = 4, kIters = 1500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        stm.atomically([&](stm::Txn& tx) {
          const long k1 = (i + t) % 8;
          const long k2 = (i * 3 + t) % 8;
          lap.acquire(tx, k1, /*write=*/i % 2 == 0);
          lap.acquire(tx, k2, /*write=*/true);
          lap.acquire(tx, k1, /*write=*/true);  // upgrade or re-acquire
        });
        commits.fetch_add(1);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(commits.load(), long{kThreads} * kIters);
}
