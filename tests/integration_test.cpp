// Cross-structure integration tests: one transaction spanning multiple
// Proustian objects (map + priority queue + queue + counter) over one STM —
// the composability that motivates integrating wrappers with the STM rather
// than leaving them stand-alone like classic Boosting.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/lap.hpp"
#include "core/lazy_pqueue.hpp"
#include "core/lazy_trie_map.hpp"
#include "core/txn_counter.hpp"
#include "core/txn_hash_map.hpp"
#include "core/txn_queue.hpp"
#include "stm/stm.hpp"

using namespace proust;

namespace {
struct World {
  stm::Stm stm{stm::Mode::EagerAll};
  core::OptimisticLap<long> map_lap{stm, 256};
  core::OptimisticLap<core::PQueueState, core::PQueueStateHasher> pq_lap{stm, 2};
  core::OptimisticLap<core::QueueState, core::QueueStateHasher> q_lap{stm, 2};
  core::OptimisticLap<core::CounterState, core::CounterStateHasher> c_lap{stm, 1};

  core::TxnHashMap<long, long, core::OptimisticLap<long>> accounts{map_lap};
  core::LazyTrieMap<long, long, core::OptimisticLap<long>> audit{map_lap};
  core::LazyPriorityQueue<long, decltype(pq_lap)> work{pq_lap};
  core::TxnQueue<long, decltype(q_lap)> events{q_lap};
  core::TxnCounter<decltype(c_lap)> in_flight{c_lap};
};
}  // namespace

TEST(Integration, MultiStructureTxnCommitsAtomically) {
  World w;
  w.stm.atomically([&](stm::Txn& tx) {
    w.accounts.put(tx, 1, 100);
    w.audit.put(tx, 1, 1);
    w.work.insert(tx, 5);
    w.events.enq(tx, 42);
    w.in_flight.incr(tx);
  });
  w.stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(w.accounts.get(tx, 1), 100);
    EXPECT_EQ(w.audit.get(tx, 1), 1);
    EXPECT_EQ(w.work.min(tx), 5);
    EXPECT_EQ(w.events.deq(tx), 42);
  });
  EXPECT_EQ(w.in_flight.value(), 1);
}

TEST(Integration, MultiStructureTxnAbortsAtomically) {
  World w;
  EXPECT_THROW(w.stm.atomically([&](stm::Txn& tx) {
                 w.accounts.put(tx, 1, 100);
                 w.audit.put(tx, 1, 1);
                 w.work.insert(tx, 5);
                 w.events.enq(tx, 42);
                 w.in_flight.incr(tx);
                 throw std::runtime_error("abort all");
               }),
               std::runtime_error);
  w.stm.atomically([&](stm::Txn& tx) {
    EXPECT_FALSE(w.accounts.contains(tx, 1));
    EXPECT_FALSE(w.audit.contains(tx, 1));
    EXPECT_EQ(w.work.min(tx), std::nullopt);
    EXPECT_EQ(w.events.deq(tx), std::nullopt);
  });
  EXPECT_EQ(w.in_flight.value(), 0);
  EXPECT_EQ(w.accounts.size(), 0);
  EXPECT_EQ(w.work.size(), 0);
}

TEST(Integration, WorkQueuePipelineConservesJobs) {
  // Producers enqueue jobs into the priority queue and mark them in the
  // audit map; consumers move jobs from the pqueue into the event queue.
  // Invariant: every job is in exactly one place; counts reconcile.
  World w;
  constexpr int kProducers = 2, kConsumers = 2, kJobsPerProducer = 300;
  std::atomic<long> consumed{0};
  std::barrier sync(kProducers + kConsumers);
  std::vector<std::thread> ts;
  for (int p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      sync.arrive_and_wait();
      for (long j = 0; j < kJobsPerProducer; ++j) {
        const long job = p * kJobsPerProducer + j;
        w.stm.atomically([&](stm::Txn& tx) {
          w.work.insert(tx, job);
          w.audit.put(tx, job, 0);
          w.in_flight.incr(tx);
        });
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&] {
      sync.arrive_and_wait();
      for (int i = 0; i < kProducers * kJobsPerProducer; ++i) {
        const bool got = w.stm.atomically([&](stm::Txn& tx) {
          auto job = w.work.remove_min(tx);
          if (!job) return false;
          w.events.enq(tx, *job);
          w.audit.put(tx, *job, 1);
          w.in_flight.decr(tx);
          return true;
        });
        if (got) consumed.fetch_add(1);
      }
    });
  }
  for (auto& th : ts) th.join();

  const long produced = long{kProducers} * kJobsPerProducer;
  EXPECT_EQ(w.work.size() + consumed.load(), produced);
  EXPECT_EQ(w.events.size(), consumed.load());
  EXPECT_EQ(w.in_flight.value(), produced - consumed.load());
  EXPECT_EQ(w.audit.size(), produced);
}

TEST(Integration, BankTransfersAcrossMapAndAuditLog) {
  World w;
  constexpr long kAccounts = 10, kInitial = 100;
  for (long a = 0; a < kAccounts; ++a) {
    w.stm.atomically([&](stm::Txn& tx) { w.accounts.put(tx, a, kInitial); });
  }
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 13 + 3);
      for (int i = 0; i < 400; ++i) {
        const long from = static_cast<long>(rng.below(kAccounts));
        const long to = static_cast<long>(rng.below(kAccounts));
        if (from == to) continue;
        w.stm.atomically([&](stm::Txn& tx) {
          const long bal = w.accounts.get(tx, from).value();
          if (bal <= 0) return;
          w.accounts.put(tx, from, bal - 1);
          w.accounts.put(tx, to, w.accounts.get(tx, to).value() + 1);
          w.events.enq(tx, from * 1000 + to);
        });
      }
    });
  }
  for (auto& th : ts) th.join();

  long total = 0;
  for (long a = 0; a < kAccounts; ++a) {
    total += w.stm
                 .atomically([&](stm::Txn& tx) { return w.accounts.get(tx, a); })
                 .value();
  }
  EXPECT_EQ(total, kAccounts * kInitial);
  // Every committed transfer logged exactly one event.
  long transfers = 0;
  while (w.stm.atomically([&](stm::Txn& tx) { return w.events.deq(tx); })) {
    ++transfers;
  }
  EXPECT_EQ(w.events.size(), 0);
  EXPECT_GT(transfers, 0);
}
