// Concurrency tests run against every transactional map configuration:
// serializability-style invariants under real contention.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "map_configs.hpp"

using namespace proust::testing;

namespace {
constexpr int kThreads = 4;

class CoreMapConcurrentTest : public ::testing::TestWithParam<MapConfig> {
 protected:
  void SetUp() override { map_ = GetParam().make(); }

  template <class Body>
  void run_threads(int n, Body&& body) {
    std::barrier sync(n);
    std::vector<std::thread> ts;
    for (int t = 0; t < n; ++t) {
      ts.emplace_back([&, t] {
        sync.arrive_and_wait();
        body(t);
      });
    }
    for (auto& th : ts) th.join();
  }

  std::unique_ptr<MapUnderTest> map_;
};
}  // namespace

TEST_P(CoreMapConcurrentTest, TransfersPreserveTotal) {
  constexpr long kAccounts = 12;
  constexpr long kInitial = 100;
  for (long k = 0; k < kAccounts; ++k) map_->put1(k, kInitial);

  run_threads(kThreads, [&](int t) {
    proust::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 31 + 5);
    for (int i = 0; i < 800; ++i) {
      const long from = static_cast<long>(rng.below(kAccounts));
      const long to = static_cast<long>(rng.below(kAccounts));
      if (from == to) continue;
      map_->atomically([&](MapView& m) {
        const long f = m.get(from).value();
        if (f > 0) {
          m.put(from, f - 1);
          m.put(to, m.get(to).value() + 1);
        }
      });
    }
  });

  long total = 0;
  for (long k = 0; k < kAccounts; ++k) total += map_->get1(k).value();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST_P(CoreMapConcurrentTest, BlindCountersSumCorrectly) {
  constexpr long kKey = 0;
  map_->put1(kKey, 0);
  constexpr int kIncrementsPerThread = 600;
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < kIncrementsPerThread; ++i) {
      map_->atomically(
          [&](MapView& m) { m.put(kKey, m.get(kKey).value() + 1); });
    }
  });
  EXPECT_EQ(map_->get1(kKey), long{kThreads} * kIncrementsPerThread);
}

TEST_P(CoreMapConcurrentTest, DisjointKeysScaleWithoutInterference) {
  run_threads(kThreads, [&](int t) {
    for (long i = 0; i < 800; ++i) {
      map_->atomically([&](MapView& m) { m.put(t * 1000 + i, i); });
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    for (long i = 0; i < 800; i += 101) {
      EXPECT_EQ(map_->get1(t * 1000 + i), i);
    }
  }
}

TEST_P(CoreMapConcurrentTest, SizeMatchesNetCommittedInserts) {
  if (map_->committed_size() < 0) GTEST_SKIP() << "size unsupported";
  std::atomic<long> net{0};
  run_threads(kThreads, [&](int t) {
    proust::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
    for (int i = 0; i < 700; ++i) {
      const long k = static_cast<long>(rng.below(48));
      if (rng.uniform() < 0.5) {
        bool inserted = false;
        map_->atomically(
            [&](MapView& m) { inserted = !m.put(k, i).has_value(); });
        if (inserted) net.fetch_add(1);
      } else {
        bool removed = false;
        map_->atomically(
            [&](MapView& m) { removed = m.remove(k).has_value(); });
        if (removed) net.fetch_sub(1);
      }
    }
  });
  EXPECT_EQ(map_->committed_size(), net.load());
}

TEST_P(CoreMapConcurrentTest, AtomicSwapsNeverTearPairs) {
  // Each txn swaps the values of two keys; the multiset of values is
  // invariant under swaps.
  map_->put1(0, 111);
  map_->put1(1, 222);
  run_threads(2, [&](int) {
    for (int i = 0; i < 1500; ++i) {
      map_->atomically([&](MapView& m) {
        const long a = m.get(0).value();
        const long b = m.get(1).value();
        m.put(0, b);
        m.put(1, a);
      });
    }
  });
  const long a = map_->get1(0).value();
  const long b = map_->get1(1).value();
  EXPECT_TRUE((a == 111 && b == 222) || (a == 222 && b == 111))
      << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    OpaqueConfigs, CoreMapConcurrentTest,
    ::testing::ValuesIn(opaque_map_configs()),
    [](const auto& info) { return info.param.name; });
