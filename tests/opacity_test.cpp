// Orchestrated cross-thread interleavings validating Section 5's opacity
// claims — and deliberately exhibiting the violation the paper's footnote 3
// warns about (eager/optimistic on an STM with lazy conflict detection).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/lap.hpp"
#include "core/lazy_hash_map.hpp"
#include "core/txn_hash_map.hpp"
#include "stm/stm.hpp"

using namespace proust;
using namespace std::chrono_literals;

namespace {
void await(const std::atomic<int>& stage, int value) {
  while (stage.load(std::memory_order_acquire) < value) {
    std::this_thread::yield();
  }
}
void advance(std::atomic<int>& stage, int value) {
  stage.store(value, std::memory_order_release);
}
}  // namespace

// Theorem 5.3 mechanism: a lazy/optimistic transaction whose conflict
// abstraction was invalidated by a concurrent committed conflicting
// operation must abort and retry — it can never commit against the stale
// shadow copy.
TEST(Opacity, LazyOptimisticRetriesAfterConflictingCommit) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 64);
  core::LazyHashMap<long, long, core::OptimisticLap<long>> map(lap);
  map.unsafe_put(1, 10);

  std::atomic<int> stage{0};
  int attempts = 0;

  std::thread a([&] {
    stm.atomically([&](stm::Txn& tx) {
      ++attempts;
      map.put(tx, 1, 20);  // CA write + replay log against a shadow copy
      if (attempts == 1) {
        advance(stage, 1);
        await(stage, 2);  // let the conflicting transaction commit
      }
    });
  });

  await(stage, 1);
  stm.atomically([&](stm::Txn& tx) { map.put(tx, 1, 30); });  // conflicts
  advance(stage, 2);
  a.join();

  EXPECT_EQ(attempts, 2) << "first attempt had to abort on validation";
  const long final_value =
      stm.atomically([&](stm::Txn& tx) { return map.get(tx, 1).value(); });
  EXPECT_EQ(final_value, 20) << "retried attempt must still win";
}

// Theorem 5.2 mechanism on an eager-everything STM: a writer that would
// invalidate an active reader's snapshot yields (aborts itself), so the
// reader observes a stable value throughout its transaction.
TEST(Opacity, EagerAllWriterYieldsToVisibleReader) {
  stm::Stm stm(stm::Mode::EagerAll);
  core::OptimisticLap<long> lap(stm, 64);
  core::TxnHashMap<long, long, core::OptimisticLap<long>> map(lap);
  map.unsafe_put(1, 10);

  std::atomic<int> stage{0};
  long first_read = -1, second_read = -1;

  std::thread reader([&] {
    bool done_once = false;
    stm.atomically([&](stm::Txn& tx) {
      first_read = map.get(tx, 1).value();
      if (!done_once) {
        done_once = true;
        advance(stage, 1);
        await(stage, 2);  // writer is now retrying against our reader bit
      }
      second_read = map.get(tx, 1).value();
    });
  });

  await(stage, 1);
  std::thread writer([&] {
    stm.atomically([&](stm::Txn& tx) { map.put(tx, 1, 99); });
  });
  std::this_thread::sleep_for(30ms);  // give the writer time to (fail to) run
  advance(stage, 2);
  reader.join();
  writer.join();

  // Within any single attempt the reader's snapshot is stable: the writer
  // either yields to the reader bit or forces the whole attempt to retry.
  // (The reader may legitimately retry and land after the writer's commit,
  // so the stable value is 10 or 99 — never a mix.)
  EXPECT_EQ(first_read, second_read) << "reader's snapshot stayed stable";
  EXPECT_EQ(stm.atomically([&](stm::Txn& tx) { return map.get(tx, 1); }), 99);
  EXPECT_GE(stm.stats().snapshot().aborts[static_cast<std::size_t>(
                stm::AbortReason::VisibleReader)],
            1u)
      << "the writer must have yielded at least once";
}

// Footnote 3 / Figure 1's incompatible cell, demonstrated: eager updates
// with optimistic conflict abstraction on an STM that detects conflicts
// lazily let a concurrent transaction observe uncommitted (later rolled
// back) base-structure state. This is exactly why Theorem 5.2 requires
// eager conflict detection — and why ScalaProust's eager/optimistic objects
// were not opaque on CCSTM.
TEST(Opacity, EagerOptimisticOnLazyStmExhibitsDirtyRead) {
  stm::Stm stm(stm::Mode::Lazy);
  core::OptimisticLap<long> lap(stm, 64);
  core::TxnHashMap<long, long, core::OptimisticLap<long>> map(lap);
  map.unsafe_put(1, 10);

  std::atomic<int> stage{0};

  std::thread doomed([&] {
    try {
      stm.atomically([&](stm::Txn& tx) {
        map.put(tx, 1, 99);  // applied to the shared base immediately
        advance(stage, 1);
        await(stage, 2);
        throw std::runtime_error("force abort");  // inverse restores 10
      });
    } catch (const std::runtime_error&) {
    }
  });

  await(stage, 1);
  const long dirty =
      stm.atomically([&](stm::Txn& tx) { return map.get(tx, 1).value(); });
  advance(stage, 2);
  doomed.join();

  EXPECT_EQ(dirty, 99) << "observed uncommitted state (the expected "
                          "violation on a lazily-detecting STM)";
  EXPECT_EQ(stm.atomically([&](stm::Txn& tx) { return map.get(tx, 1); }), 10)
      << "inverse restored the committed value";
}

// Theorem 5.1: pessimistic Proust holds abstract locks to transaction end,
// so concurrent readers see multi-key updates all-or-nothing.
TEST(Opacity, PessimisticReadersNeverSeePartialUpdates) {
  stm::Stm stm(stm::Mode::Lazy);
  core::PessimisticLap<long> lap(stm, 64, std::chrono::milliseconds(50));
  core::TxnHashMap<long, long, core::PessimisticLap<long>> map(lap);
  map.unsafe_put(1, 0);
  map.unsafe_put(2, 0);

  std::atomic<int> stage{0};

  std::thread writer([&] {
    stm.atomically([&](stm::Txn& tx) {
      map.put(tx, 1, 50);
      advance(stage, 1);
      await(stage, 2);  // hold the abstract locks while the reader tries
      map.put(tx, 2, 50);
    });
  });

  await(stage, 1);
  std::atomic<bool> reader_done{false};
  long r1 = -1, r2 = -1;
  std::thread reader([&] {
    stm.atomically([&](stm::Txn& tx) {
      r1 = map.get(tx, 1).value();
      r2 = map.get(tx, 2).value();
    });
    reader_done.store(true);
  });
  std::this_thread::sleep_for(30ms);
  EXPECT_FALSE(reader_done.load()) << "reader must block on the abstract lock";
  advance(stage, 2);
  writer.join();
  reader.join();

  EXPECT_TRUE((r1 == 0 && r2 == 0) || (r1 == 50 && r2 == 50))
      << "r1=" << r1 << " r2=" << r2;
  EXPECT_EQ(r1, 50) << "reader blocked until the writer committed";
}
