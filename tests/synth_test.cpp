// Tests for CEGIS-based conflict-abstraction synthesis (§9 future work,
// implemented): the synthesizer must find correct CAs, exploit
// counterexample pruning, and — because candidates are visited in cost
// order — can find *tighter* abstractions than the hand-written ones.
#include <gtest/gtest.h>

#include "verify/synth.hpp"

using namespace proust::verify;

TEST(Synthesis, CounterCAIsSynthesized) {
  const ModelSpec counter = make_counter_model(6);
  const SynthesisProblem problem = make_counter_synthesis_problem(counter);
  const SynthesisResult r = synthesize(problem);
  ASSERT_TRUE(r.found) << "the menu space contains the paper's CA";
  // The synthesized CA verifies (re-check independently).
  EXPECT_FALSE(check_conflict_abstraction(counter, r.ca).has_value())
      << r.summary;
  // CEGIS actually learned from counterexamples (cheap pruning happened).
  EXPECT_GT(r.counterexamples.size(), 0u);
  EXPECT_GT(r.candidates_pruned, 0u);
}

TEST(Synthesis, SynthesizedCounterCAIsNoLooserThanPaper) {
  const ModelSpec counter = make_counter_model(6);
  const SynthesisResult r = synthesize(make_counter_synthesis_problem(counter));
  ASSERT_TRUE(r.found);
  const std::size_t synth_fc = count_false_conflicts(counter, r.ca);
  const std::size_t paper_fc =
      count_false_conflicts(counter, counter_ca_paper());
  // Cost-ordered search found a CA at least as tight as the published one
  // (in fact tighter: incr only needs to read ℓ0 at value 0, not below 2).
  EXPECT_LE(synth_fc, paper_fc) << r.summary;
}

TEST(Synthesis, QueueCAIsSynthesized) {
  const ModelSpec queue = make_queue_model(2, 4);
  const SynthesisResult r = synthesize(make_queue_synthesis_problem(queue));
  ASSERT_TRUE(r.found) << "menu contains the Head/Tail CA";
  EXPECT_FALSE(check_conflict_abstraction(queue, r.ca).has_value());
  // The solution must make enq conflict with enq (FIFO order) — i.e. the
  // chosen enq rule is the Tail *write*, and deq must carry the
  // emptiness-guarded Tail read.
  const Access enq_access = r.ca("enq", {1}, 0);
  EXPECT_FALSE(enq_access.writes.empty()) << r.summary;
  const Access deq_empty = r.ca("deq", {}, 0);  // state 0 = empty queue
  EXPECT_FALSE(deq_empty.reads.empty() && deq_empty.writes.size() < 2)
      << "deq on empty must touch Tail: " << r.summary;
}

TEST(Synthesis, ReportsFailureWhenMenuIsInsufficient) {
  // Strip the menus down to read-only rules: no correct CA exists (decr/decr
  // at 1 needs a write/write conflict).
  const ModelSpec counter = make_counter_model(6);
  SynthesisProblem p;
  p.model = &counter;
  RuleOption none{"none", [](const Args&, int) { return Access{}; }, 0};
  RuleOption read_always{"read l0",
                         [](const Args&, int) {
                           Access a;
                           a.reads = {0};
                           return a;
                         },
                         1};
  p.menus = {{none, read_always}, {none, read_always}};
  const SynthesisResult r = synthesize(p);
  EXPECT_FALSE(r.found);
  EXPECT_GT(r.counterexamples.size(), 0u);
}

TEST(Synthesis, CostOrderPrefersCheaperCorrectCandidate) {
  // Two correct options for decr (threshold 2 vs unconditional write):
  // the cheaper guarded one must be chosen.
  const ModelSpec counter = make_counter_model(6);
  SynthesisProblem p;
  p.model = &counter;
  RuleOption incr_read{"read l0 when < 2",
                       [](const Args&, int s) {
                         Access a;
                         if (s < 2) a.reads = {0};
                         return a;
                       },
                       2};
  RuleOption decr_guarded{"write l0 when < 2",
                          [](const Args&, int s) {
                            Access a;
                            if (s < 2) a.writes = {0};
                            return a;
                          },
                          4};
  RuleOption decr_always{"write l0 always",
                         [](const Args&, int) {
                           Access a;
                           a.writes = {0};
                           return a;
                         },
                         10};
  p.menus = {{incr_read}, {decr_always, decr_guarded}};
  const SynthesisResult r = synthesize(p);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.chosen[1], 1u) << "guarded (cheaper) write must win";
}

TEST(Synthesis, StripedMapCAIsRediscovered) {
  // From a menu of {none, read(key), write(key)} per method, the
  // synthesizer must re-derive §3's striped map CA: readers read, updaters
  // write, nothing is left unprotected.
  const ModelSpec map = make_map_model(3, 2);
  const SynthesisResult r = synthesize(make_map_synthesis_problem(map, 3));
  ASSERT_TRUE(r.found) << "keyed menu contains the striped CA";
  EXPECT_FALSE(check_conflict_abstraction(map, r.ca).has_value());
  // get must end up reading, put writing (method order: get, contains,
  // put, remove — see make_map_model).
  const Access get_access = r.ca("get", {0}, 0);
  const Access put_access = r.ca("put", {0, 1}, 0);
  EXPECT_FALSE(get_access.reads.empty()) << r.summary;
  EXPECT_FALSE(put_access.writes.empty()) << r.summary;
}
