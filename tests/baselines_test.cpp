// Tests for the §7 comparison baselines: the pure-STM map and the
// predication map.
#include <gtest/gtest.h>

#include <barrier>
#include <stdexcept>
#include <thread>
#include <vector>

#include "baselines/predication_map.hpp"
#include "baselines/pure_stm_map.hpp"
#include "stm/stm.hpp"

using namespace proust;

class PureStmMapTest : public ::testing::TestWithParam<stm::Mode> {
 protected:
  stm::Stm stm{GetParam()};
  baselines::PureStmMap<long, long> map{stm, 1024};
};

TEST_P(PureStmMapTest, PutGetRemoveRoundTrip) {
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.put(tx, 1, 10), std::nullopt);
    EXPECT_EQ(map.get(tx, 1), 10);
    EXPECT_EQ(map.put(tx, 1, 11), 10);
    EXPECT_EQ(map.remove(tx, 1), 11);
    EXPECT_EQ(map.get(tx, 1), std::nullopt);
  });
}

TEST_P(PureStmMapTest, TombstoneSlotReused) {
  stm.atomically([&](stm::Txn& tx) {
    map.put(tx, 5, 50);
    map.remove(tx, 5);
    EXPECT_EQ(map.put(tx, 5, 51), std::nullopt);
    EXPECT_EQ(map.get(tx, 5), 51);
  });
}

TEST_P(PureStmMapTest, CollidingKeysProbeCorrectly) {
  // Fill enough keys that probe chains form (capacity 1024, 600 keys).
  stm.atomically([&](stm::Txn& tx) {
    for (long k = 0; k < 600; ++k) map.put(tx, k, k * 2);
  });
  stm.atomically([&](stm::Txn& tx) {
    for (long k = 0; k < 600; ++k) EXPECT_EQ(map.get(tx, k), k * 2);
  });
}

TEST_P(PureStmMapTest, AbortRollsBackTableSlots) {
  stm.atomically([&](stm::Txn& tx) { map.put(tx, 7, 70); });
  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 map.put(tx, 7, -1);
                 map.put(tx, 8, -1);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.get(tx, 7), 70);
    EXPECT_EQ(map.get(tx, 8), std::nullopt);
  });
}

TEST_P(PureStmMapTest, ConcurrentTransfersPreserveTotal) {
  constexpr long kAccounts = 8;
  for (long k = 0; k < kAccounts; ++k) map.unsafe_put(k, 100);
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 17);
      for (int i = 0; i < 600; ++i) {
        const long a = static_cast<long>(rng.below(kAccounts));
        const long b = static_cast<long>(rng.below(kAccounts));
        if (a == b) continue;
        stm.atomically([&](stm::Txn& tx) {
          const long va = map.get(tx, a).value();
          if (va > 0) {
            map.put(tx, a, va - 1);
            map.put(tx, b, map.get(tx, b).value() + 1);
          }
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  long total = 0;
  stm.atomically([&](stm::Txn& tx) {
    for (long k = 0; k < kAccounts; ++k) total += map.get(tx, k).value();
  });
  EXPECT_EQ(total, kAccounts * 100);
}

INSTANTIATE_TEST_SUITE_P(AllModes, PureStmMapTest,
                         ::testing::Values(stm::Mode::Lazy,
                                           stm::Mode::EagerWrite,
                                           stm::Mode::EagerAll),
                         [](const auto& info) {
                           return std::string(stm::to_string(info.param));
                         });

class PredicationMapTest : public ::testing::TestWithParam<stm::Mode> {
 protected:
  stm::Stm stm{GetParam()};
  baselines::PredicationMap<long, long> map{stm};
};

TEST_P(PredicationMapTest, PutGetRemoveRoundTrip) {
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.put(tx, 1, 10), std::nullopt);
    EXPECT_EQ(map.get(tx, 1), 10);
    EXPECT_TRUE(map.contains(tx, 1));
    EXPECT_EQ(map.remove(tx, 1), 10);
    EXPECT_FALSE(map.contains(tx, 1));
  });
}

TEST_P(PredicationMapTest, PredicateReusedAcrossReinsertion) {
  stm.atomically([&](stm::Txn& tx) { map.put(tx, 3, 30); });
  stm.atomically([&](stm::Txn& tx) { map.remove(tx, 3); });
  stm.atomically([&](stm::Txn& tx) { map.put(tx, 3, 31); });
  EXPECT_EQ(stm.atomically([&](stm::Txn& tx) { return map.get(tx, 3); }), 31);
}

TEST_P(PredicationMapTest, AbortRollsBackPredicates) {
  stm.atomically([&](stm::Txn& tx) { map.put(tx, 4, 40); });
  EXPECT_THROW(stm.atomically([&](stm::Txn& tx) {
                 map.remove(tx, 4);
                 map.put(tx, 5, 50);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  stm.atomically([&](stm::Txn& tx) {
    EXPECT_EQ(map.get(tx, 4), 40);
    EXPECT_FALSE(map.contains(tx, 5));
  });
}

TEST_P(PredicationMapTest, DistinctKeysDoNotConflict) {
  // Per-key predicates: disjoint-key transactions never abort.
  stm.stats().reset();
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < 1000; ++i) {
        stm.atomically(
            [&](stm::Txn& tx) { map.put(tx, t, i); });  // key == thread id
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(stm.stats().snapshot().total_aborts(), 0u);
}

TEST_P(PredicationMapTest, ConcurrentTransfersPreserveTotal) {
  constexpr long kAccounts = 8;
  for (long k = 0; k < kAccounts; ++k) map.unsafe_put(k, 100);
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 23);
      for (int i = 0; i < 600; ++i) {
        const long a = static_cast<long>(rng.below(kAccounts));
        const long b = static_cast<long>(rng.below(kAccounts));
        if (a == b) continue;
        stm.atomically([&](stm::Txn& tx) {
          const long va = map.get(tx, a).value();
          if (va > 0) {
            map.put(tx, a, va - 1);
            map.put(tx, b, map.get(tx, b).value() + 1);
          }
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  long total = 0;
  stm.atomically([&](stm::Txn& tx) {
    for (long k = 0; k < kAccounts; ++k) total += map.get(tx, k).value();
  });
  EXPECT_EQ(total, kAccounts * 100);
}

INSTANTIATE_TEST_SUITE_P(AllModes, PredicationMapTest,
                         ::testing::Values(stm::Mode::Lazy,
                                           stm::Mode::EagerWrite,
                                           stm::Mode::EagerAll),
                         [](const auto& info) {
                           return std::string(stm::to_string(info.param));
                         });
