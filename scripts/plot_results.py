#!/usr/bin/env python3
"""Post-process the scenario-matrix CSV (bench_scenario_matrix --csv=...).

With matplotlib installed, emits one throughput-vs-threads PNG per workload
family plus a pinning-policy comparison chart. Without it (the common case
in minimal containers), degrades to text summaries on stdout and a
<out>/summary.txt file — same aggregation, no pictures — and still exits 0,
so CI can consume the CSV end-to-end either way.
"""
import argparse
import csv
import os
import sys
from collections import defaultdict

NUMERIC = {
    "threads", "ops_per_txn", "u", "key_range", "zipf", "scan_frac",
    "scan_width", "total_ops", "mean_ms", "sd_ms", "min_ms", "ops_per_sec",
    "abort_ratio", "host_cpus", "host_nodes", "host_smt",
}


# Columns the aggregations below index unconditionally; a row that lacks a
# parseable value for any of them cannot be summarized and is skipped.
REQUIRED = {"family", "impl", "pin", "threads", "ops_per_sec"}


def load(path):
    """Parse the CSV, skipping malformed rows with a warning.

    A crash-interrupted sweep leaves a truncated final line (short row), and
    concurrent appends can interleave fragments (long row); both are data
    loss already — the job of the post-processor is to summarize what
    survived, not to raise halfway through.
    """
    rows = []
    skipped = 0
    try:
        f = open(path, newline="")
    except OSError as e:
        print("warning: cannot read %s: %s" % (path, e), file=sys.stderr)
        return []
    with f:
        reader = csv.DictReader(f)
        if not reader.fieldnames:
            print("warning: %s is empty (no header row)" % path,
                  file=sys.stderr)
            return []
        missing = REQUIRED - set(reader.fieldnames)
        if missing:
            print("warning: %s lacks required columns: %s" %
                  (path, ", ".join(sorted(missing))), file=sys.stderr)
            return []
        for lineno, raw in enumerate(reader, start=2):
            row = {}
            bad = "extra fields" if None in raw else None
            for k, v in raw.items():
                if bad:
                    break
                if k is None:
                    continue
                if v is None:
                    bad = "truncated row"
                elif k in NUMERIC:
                    try:
                        row[k] = float(v)
                    except ValueError:
                        if k in REQUIRED:
                            bad = "unparseable %s=%r" % (k, v)
                        else:
                            row[k] = 0.0
                else:
                    row[k] = v
            if bad:
                skipped += 1
                print("warning: %s line %d skipped (%s)" % (path, lineno, bad),
                      file=sys.stderr)
                continue
            rows.append(row)
    if skipped:
        print("warning: skipped %d malformed row(s) in %s" % (skipped, path),
              file=sys.stderr)
    return rows


def median(xs):
    xs = sorted(xs)
    n = len(xs)
    if n == 0:
        return 0.0
    return xs[n // 2] if n % 2 else (xs[n // 2 - 1] + xs[n // 2]) / 2


def fmt_ops(v):
    if v >= 1e6:
        return "%.2fM" % (v / 1e6)
    if v >= 1e3:
        return "%.0fK" % (v / 1e3)
    return "%.0f" % v


def pivot(rows, row_key, col_key, value="ops_per_sec"):
    """Median of `value` for each (row_key, col_key) bucket."""
    cells = defaultdict(list)
    for r in rows:
        cells[(r[row_key], r[col_key])].append(r[value])
    row_labels = sorted({k[0] for k in cells})
    col_labels = sorted({k[1] for k in cells})
    table = {
        rl: {cl: median(cells.get((rl, cl), [])) for cl in col_labels}
        for rl in row_labels
    }
    return row_labels, col_labels, table


def text_pivot(out, title, rows, row_key, col_key):
    row_labels, col_labels, table = pivot(rows, row_key, col_key)
    if not row_labels:
        return
    out.write("\n## %s (median ops/s; %s x %s)\n" % (title, row_key, col_key))
    col_heads = [
        "%g" % c if isinstance(c, float) else str(c) for c in col_labels
    ]
    width = max([len(str(r)) for r in row_labels] + [len(row_key)]) + 2
    out.write("%-*s" % (width, row_key))
    for h in col_heads:
        out.write("%12s" % h)
    out.write("\n")
    for rl in row_labels:
        out.write("%-*s" % (width, rl))
        for cl in col_labels:
            out.write("%12s" % fmt_ops(table[rl][cl]))
        out.write("\n")


def pin_comparison(out, rows):
    """Throughput ratio of each pin policy vs `none`, per family x threads."""
    buckets = defaultdict(list)
    for r in rows:
        buckets[(r["family"], r["threads"], r["pin"])].append(r["ops_per_sec"])
    combos = sorted({(f, t) for (f, t, _) in buckets})
    pins = sorted({p for (_, _, p) in buckets})
    if "none" not in pins or len(pins) < 2:
        return
    out.write("\n## pinning vs none (median throughput ratio)\n")
    out.write("%-12s%8s" % ("family", "threads"))
    for p in pins:
        out.write("%12s" % p)
    out.write("\n")
    for f, t in combos:
        base = median(buckets.get((f, t, "none"), []))
        if base <= 0:
            continue
        out.write("%-12s%8g" % (f, t))
        for p in pins:
            v = median(buckets.get((f, t, p), []))
            out.write("%12s" % ("%.2fx" % (v / base) if v else "-"))
        out.write("\n")


def write_text(rows, out_dir):
    path = os.path.join(out_dir, "summary.txt")
    host = rows[0]
    with open(path, "w") as f:
        for out in (sys.stdout, f):
            out.write(
                "# scenario matrix: %d rows | host cpus=%d nodes=%d smt=%d\n"
                % (len(rows), int(host.get("host_cpus", 0)),
                   int(host.get("host_nodes", 0)),
                   int(host.get("host_smt", 0))))
            for family in sorted({r["family"] for r in rows}):
                sub = [r for r in rows if r["family"] == family]
                text_pivot(out, "family=%s" % family, sub, "impl", "threads")
            pin_comparison(out, rows)
    print("wrote %s" % path)


def write_plots(plt, rows, out_dir):
    for family in sorted({r["family"] for r in rows}):
        sub = [r for r in rows if r["family"] == family]
        impls, threads, table = pivot(sub, "impl", "threads")
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for impl in impls:
            ys = [table[impl][t] for t in threads]
            ax.plot(threads, ys, marker="o", label=impl)
        ax.set_xlabel("threads")
        ax.set_ylabel("ops/s (median over cells)")
        ax.set_title("scenario matrix: %s" % family)
        ax.set_xscale("log", base=2)
        ax.set_yscale("log")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
        path = os.path.join(out_dir, "matrix_%s.png" % family)
        fig.tight_layout()
        fig.savefig(path, dpi=120)
        plt.close(fig)
        print("wrote %s" % path)

    pins, threads, table = pivot(rows, "pin", "threads")
    if len(pins) > 1:
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for pin in pins:
            ax.plot(threads, [table[pin][t] for t in threads], marker="s",
                    label="pin=%s" % pin)
        ax.set_xlabel("threads")
        ax.set_ylabel("ops/s (median over cells)")
        ax.set_title("pinning policy comparison")
        ax.grid(True, alpha=0.3)
        ax.legend()
        path = os.path.join(out_dir, "matrix_pinning.png")
        fig.tight_layout()
        fig.savefig(path, dpi=120)
        plt.close(fig)
        print("wrote %s" % path)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv", help="scenario_matrix.csv from the bench driver")
    ap.add_argument("--out", default="results", help="output directory")
    args = ap.parse_args()

    rows = load(args.csv)
    if not rows:
        # A crash-interrupted sweep can leave nothing usable; that is the
        # sweep's failure, not the post-processor's — exit cleanly so CI
        # pipelines that tolerate partial sweeps keep their own verdict.
        print("warning: no usable data rows in %s" % args.csv,
              file=sys.stderr)
        return 0
    os.makedirs(args.out, exist_ok=True)

    write_text(rows, args.out)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary only")
        return 0
    write_plots(plt, rows, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
