#!/usr/bin/env python3
"""Dump WAL segment and checkpoint headers with their epoch ranges.

Mirrors the on-disk layout in src/stm/wal_format.hpp (host byte order,
little-endian assumed — these are crash artifacts of one machine). The
crash-matrix tests print an invocation of this script when a recovery
contract fails, so a broken directory can be read without gdb:

    python3 scripts/wal_inspect.py <wal-dir> [--verbose]

Exit code 0 even for corrupt files: corruption is the *expected* input
here; every anomaly is printed, never thrown. `--selftest` builds a tiny
valid segment + checkpoint in a temp dir, inspects them, and checks the
summary — the CI smoke for format drift between C++ and this mirror.
"""

import argparse
import binascii
import os
import re
import struct
import sys

SEG_MAGIC = 0x50524F5553575331  # "PROUSWS1"
BATCH_MAGIC = 0x50424154        # "PBAT"
CKPT_MAGIC = 0x50524F5553434B31  # "PROUSCK1"
SEG_HEADER = 20
BATCH_HEADER = 40
REC_HEADER = 20
CKPT_HEADER = 48

SEG_RE = re.compile(r"^seg-(\d{6})\.wal$")
CKPT_RE = re.compile(r"^ckpt-([0-9a-f]{16})\.ckpt$")


def crc32(data):
    return binascii.crc32(data) & 0xFFFFFFFF


def inspect_segment(path, verbose):
    """Returns (first_epoch, last_epoch, n_records, anomalies)."""
    with open(path, "rb") as f:
        buf = f.read()
    name = os.path.basename(path)
    anomalies = []
    if len(buf) < SEG_HEADER:
        print(f"{name}: {len(buf)} bytes — no segment header")
        return (0, 0, 0, ["short-header"])
    magic, version, index, crc = struct.unpack_from("<QIII", buf, 0)
    ok_crc = crc == crc32(buf[:16])
    print(f"{name}: index={index} version={version} "
          f"magic={'ok' if magic == SEG_MAGIC else hex(magic)} "
          f"header_crc={'ok' if ok_crc else 'BAD'} size={len(buf)}")
    if magic != SEG_MAGIC or not ok_crc:
        return (0, 0, 0, ["bad-seg-header"])

    pos = SEG_HEADER
    first, last, nrecs, nbatch = 0, 0, 0, 0
    while pos < len(buf):
        if len(buf) - pos < BATCH_HEADER:
            anomalies.append(f"torn@{pos}:short-batch-header")
            break
        (bmagic, n_records, payload_len, b_first, b_last,
         payload_crc, header_crc) = struct.unpack_from("<IIQQQII", buf, pos)
        if bmagic != BATCH_MAGIC or header_crc != crc32(buf[pos:pos + 36]):
            anomalies.append(f"torn@{pos}:bad-batch-header")
            break
        body = buf[pos + BATCH_HEADER:pos + BATCH_HEADER + payload_len]
        if len(body) < payload_len:
            anomalies.append(f"torn@{pos}:body-truncated-mid-frame "
                             f"(promised {payload_len}, have {len(body)})")
            break
        crc_state = "ok" if payload_crc == crc32(body) else "BAD"
        if verbose:
            print(f"  batch@{pos}: records={n_records} "
                  f"epochs=[{b_first},{b_last}] payload={payload_len} "
                  f"payload_crc={crc_state}")
        if crc_state == "BAD":
            anomalies.append(f"torn@{pos}:payload-crc")
            break
        if verbose:
            rp = 0
            while rp + REC_HEADER <= len(body):
                epoch, stream, rlen, rcrc = struct.unpack_from(
                    "<QIII", body, rp)
                rec_ok = rcrc == crc32(body[rp + REC_HEADER:
                                            rp + REC_HEADER + rlen])
                print(f"    rec epoch={epoch} stream={stream} len={rlen} "
                      f"crc={'ok' if rec_ok else 'BAD'}")
                rp += REC_HEADER + rlen
        if first == 0:
            first = b_first
        last = b_last
        nrecs += n_records
        nbatch += 1
        pos += BATCH_HEADER + payload_len
    print(f"  -> batches={nbatch} records={nrecs} epochs=[{first},{last}]"
          + (f" anomalies={anomalies}" if anomalies else ""))
    return (first, last, nrecs, anomalies)


def inspect_checkpoint(path, verbose):
    """Returns (covering_epoch, n_records, anomalies)."""
    with open(path, "rb") as f:
        buf = f.read()
    name = os.path.basename(path)
    if len(buf) < CKPT_HEADER:
        print(f"{name}: {len(buf)} bytes — no checkpoint header")
        return (0, 0, ["short-header"])
    (magic, version, _reserved, epoch, n_records, payload_len,
     payload_crc, header_crc) = struct.unpack_from("<QIIQQQII", buf, 0)
    anomalies = []
    if magic != CKPT_MAGIC:
        anomalies.append("bad-magic")
    if header_crc != crc32(buf[:44]):
        anomalies.append("bad-header-crc")
    payload = buf[CKPT_HEADER:]
    if len(payload) != payload_len:
        anomalies.append(f"payload-size (promised {payload_len}, "
                         f"have {len(payload)})")
    elif payload_crc != crc32(payload):
        anomalies.append("bad-payload-crc")
    print(f"{name}: covering_epoch={epoch} version={version} "
          f"records={n_records} payload={payload_len} "
          + ("ok" if not anomalies else f"anomalies={anomalies}"))
    if verbose and not anomalies:
        pos = 0
        while pos + 8 <= len(payload):
            stream, rlen = struct.unpack_from("<II", payload, pos)
            print(f"    rec stream={stream} len={rlen}")
            pos += 8 + rlen
    return (epoch, n_records, anomalies)


def inspect_dir(wal_dir, verbose):
    segs, ckpts, tmps = [], [], []
    try:
        names = sorted(os.listdir(wal_dir))
    except OSError as e:
        print(f"{wal_dir}: {e}")
        return 0
    for n in names:
        if SEG_RE.match(n):
            segs.append(n)
        elif CKPT_RE.match(n):
            ckpts.append(n)
        elif n.endswith(".tmp"):
            tmps.append(n)
    print(f"== {wal_dir}: {len(segs)} segment(s), {len(ckpts)} "
          f"checkpoint(s), {len(tmps)} orphan .tmp ==")
    for n in tmps:
        size = os.path.getsize(os.path.join(wal_dir, n))
        print(f"{n}: {size} bytes (never renamed — recovery discards it)")
    newest_ckpt = 0
    for n in ckpts:
        epoch, _, anomalies = inspect_checkpoint(
            os.path.join(wal_dir, n), verbose)
        if not anomalies:
            newest_ckpt = max(newest_ckpt, epoch)
    total = 0
    for n in segs:
        first, last, nrecs, _ = inspect_segment(
            os.path.join(wal_dir, n), verbose)
        total += nrecs
        if last and newest_ckpt and last <= newest_ckpt:
            print(f"  (fully subsumed by checkpoint epoch {newest_ckpt} — "
                  f"retirement candidate)")
    print(f"== total segment records={total}, newest valid checkpoint "
          f"epoch={newest_ckpt} ==")
    return total


def selftest():
    import tempfile
    with tempfile.TemporaryDirectory() as d:
        # One segment: header + two single-record batches (epochs 1, 2).
        seg = struct.pack("<QII", SEG_MAGIC, 1, 0)
        seg += struct.pack("<I", crc32(seg))
        for epoch in (1, 2):
            payload = struct.pack("<QIII", epoch, 1, 4,
                                  crc32(struct.pack("<I", epoch)))
            payload += struct.pack("<I", epoch)
            hdr = struct.pack("<IIQQQ", BATCH_MAGIC, 1, len(payload),
                              epoch, epoch)
            hdr += struct.pack("<I", crc32(payload))
            hdr += struct.pack("<I", crc32(hdr))
            seg += hdr + payload
        with open(os.path.join(d, "seg-000000.wal"), "wb") as f:
            f.write(seg)
        # One checkpoint covering epoch 2, a single staged record.
        payload = struct.pack("<II", 1, 4) + struct.pack("<I", 7)
        hdr = struct.pack("<QIIQQQ", CKPT_MAGIC, 1, 0, 2, 1, len(payload))
        hdr += struct.pack("<I", crc32(payload))
        hdr += struct.pack("<I", crc32(hdr))
        with open(os.path.join(d, "ckpt-%016x.ckpt" % 2), "wb") as f:
            f.write(hdr + payload)
        total = inspect_dir(d, verbose=True)
        assert total == 2, f"selftest: expected 2 segment records, {total}"
        print("selftest ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("dir", nargs="?", help="WAL directory to inspect")
    ap.add_argument("--verbose", "-v", action="store_true",
                    help="dump per-batch and per-record detail")
    ap.add_argument("--selftest", action="store_true",
                    help="round-trip a synthetic segment + checkpoint")
    args = ap.parse_args()
    if args.selftest:
        return selftest()
    if not args.dir:
        ap.error("a WAL directory is required (or --selftest)")
    inspect_dir(args.dir, args.verbose)
    return 0


if __name__ == "__main__":
    sys.exit(main())
