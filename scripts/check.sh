#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrent STM
# and wrapper-map suites. Usage: scripts/check.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"

echo "== tier-1: ctest =="
ctest --preset default

echo "== chaos: deterministic fault-injection suites =="
# Runs the seeded chaos differential suites (also part of tier-1; repeated
# here with -L chaos so their seeds land in this section of the log). A
# failure prints the reproducing seed; replay with
#   PROUST_CHAOS_SEED=<seed> ./build/tests/chaos_test --gtest_filter=...
ctest --test-dir build --output-on-failure -L chaos

echo "== cm: contention-management suites =="
# Policy algebra, elder starvation recovery, admission control, watchdog,
# and the CM x clock-scheme chaos matrix (same seed-replay contract).
ctest --test-dir build --output-on-failure -L cm

echo "== mvcc: snapshot reads + epoch reclamation =="
# MVCC snapshot semantics (never-abort readers, truncation horizons,
# auto-detection) and the EBR grace-period protocol + skip-list churn.
ctest --test-dir build --output-on-failure -L mvcc

echo "== fastpath: lock-free optimistic read fast path =="
# Differential races of sequence-validated unlocked readers against mutators
# across the map-config matrix, plus the chaos column that forces every
# admission to fall back to the locked path (DESIGN.md §12).
ctest --test-dir build --output-on-failure -L fastpath

echo "== topology: detection, pin plans, placement plumbing =="
# Sysfs-fixture detection, pin-plan orderings, Stm-level pinning (skips in
# sandboxes that refuse affinity syscalls), replicated ReadSeqTable banks.
ctest --test-dir build --output-on-failure -L topology

echo "== durability: WAL + checkpoint crash/fault recovery matrices =="
# Live-process WAL paths (epoch-ordered roundtrip, segment rotation,
# torn-tail truncation, strict/relaxed acks, fail-stop on injected I/O
# errors), the common::Fs storage-fault seam (scripted/probabilistic
# EIO/ENOSPC/short writes, retry policies, fsync-always-fatal, fail
# modes), the checkpoint/compaction layer (consistent cuts, bounded
# recovery cost, corrupt-checkpoint fallback, fail-degrade), and the two
# fork-based crash matrices: a child is killed at every WAL *and*
# checkpoint chaos gate under injected storage errors, and recovery must
# replay exactly a prefix of the committed-oracle history. Failures print
# the seed (replay with PROUST_CHAOS_SEED=<seed>) and a
# scripts/wal_inspect.py invocation for the kept directory. The CI
# crash-matrix job additionally re-runs this label under ASan+UBSan.
python3 scripts/wal_inspect.py --selftest > /dev/null \
  && echo "wal_inspect selftest ok"
ctest --test-dir build --output-on-failure -L durability

echo "== matrix: scenario-matrix smoke + CSV post-process =="
# Tiny grid over every family x pinning cell, CSV consumed end-to-end by
# plot_results.py (text fallback without matplotlib) — catches schema drift
# between the bench driver and the post-processor.
scripts/run_experiments.sh --smoke --out build/smoke-results

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "== tsan: skipped =="
  exit 0
fi

echo "== tsan: build concurrent suites =="
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" \
  --target stm_concurrent_test core_map_concurrent_test \
  sync_test core_lock_test sync_stress_test chaos_test \
  cm_test cm_chaos_test mvcc_test ebr_test read_fast_path_test

echo "== tsan: run =="
# tsan.supp masks only the STM's validated-racy core (see the file header);
# races anywhere above the STM still fail the run. The lock suites guard
# plain data with abstract-lock holds, so the atomic-word acquire/release
# protocol's happens-before edges are machine-checked here.
TSAN="suppressions=$PWD/tsan.supp halt_on_error=1"
TSAN_OPTIONS="$TSAN" ./build-tsan/tests/stm_concurrent_test
TSAN_OPTIONS="$TSAN" ./build-tsan/tests/core_map_concurrent_test
TSAN_OPTIONS="$TSAN" ./build-tsan/tests/sync_test
TSAN_OPTIONS="$TSAN" ./build-tsan/tests/core_lock_test
TSAN_OPTIONS="$TSAN" ./build-tsan/tests/sync_stress_test
# Chaos under TSan: injected delays/aborts/timeouts shuffle the interleavings
# the sanitizer observes. A subset keeps the run inside the time budget.
TSAN_OPTIONS="$TSAN" ./build-tsan/tests/chaos_test \
  --gtest_filter='*eager_pess*:*lazy_memo_lazystm*:ChaosDeterminismTest.*'
# Contention management under TSan: the doom/priority/elder protocol and the
# admission controller are lock-free cross-thread state; the cm label runs
# the whole surface (unit + chaos matrix) with the race detector watching.
TSAN_OPTIONS="$TSAN" ctest --test-dir build-tsan --output-on-failure -L cm
# MVCC + EBR under TSan: snapshot readers traverse version chains that
# writers concurrently push and truncate, and the EBR epoch protocol's
# release sequences are exactly the sort of ordering TSan verifies.
TSAN_OPTIONS="$TSAN" ctest --test-dir build-tsan --output-on-failure -L mvcc
# Fast path under TSan: unlocked readers traverse bases that mutators change
# in place; the seqlock acquire fences and the per-stripe sequence words are
# the only thing standing between that and a data race, so this is the suite
# TSan earns its keep on.
TSAN_OPTIONS="$TSAN" ctest --test-dir build-tsan --output-on-failure -L fastpath

echo "== all checks passed =="
