#!/usr/bin/env bash
# Drive the unified scenario matrix end-to-end: build the bench, sweep the
# workload x topology grid, and post-process the CSV into plots (or text
# summaries when matplotlib is absent).
#
# Usage: scripts/run_experiments.sh [--smoke] [--out DIR] [-- EXTRA_ARGS...]
#   --smoke       tiny grid (~seconds); the CI matrix-smoke job runs this
#   --out DIR     results directory (default: results/)
#   EXTRA_ARGS    forwarded verbatim to bench_scenario_matrix after `--`
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
OUT=results
EXTRA=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    --) shift; EXTRA=("$@"); break ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ ! -x build/bench/bench_scenario_matrix ]]; then
  echo "== build bench_scenario_matrix =="
  cmake --preset default
  cmake --build --preset default -j"$(nproc)" --target bench_scenario_matrix
fi

mkdir -p "$OUT"
CSV="$OUT/scenario_matrix.csv"
JSON="$OUT/scenario_matrix.json"

ARGS=(--csv="$CSV" --json="$JSON" --label=pr8-topology)
if [[ "$SMOKE" == 1 ]]; then
  ARGS+=(--smoke)
fi

echo "== run scenario matrix =="
./build/bench/bench_scenario_matrix "${ARGS[@]}" "${EXTRA[@]+"${EXTRA[@]}"}"

echo "== post-process =="
python3 scripts/plot_results.py "$CSV" --out "$OUT"

if [[ "$SMOKE" == 1 ]]; then
  echo "== post-process hardening: malformed CSV inputs =="
  # A crash-interrupted sweep leaves a truncated tail (or nothing at all);
  # the post-processor must skip such rows with a warning and still exit 0.
  MANGLED="$OUT/scenario_matrix.mangled.csv"
  head -c "$(($(wc -c < "$CSV") - 17))" "$CSV" > "$MANGLED"
  printf 'map,torn-impl,lazy,not-a-number\n' >> "$MANGLED"
  python3 scripts/plot_results.py "$MANGLED" --out "$OUT/mangled"
  : > "$OUT/empty.csv"
  python3 scripts/plot_results.py "$OUT/empty.csv" --out "$OUT/mangled"
  rm -rf "$MANGLED" "$OUT/empty.csv" "$OUT/mangled"
fi

echo "== done: $CSV =="
