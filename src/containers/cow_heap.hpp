// A concurrent copy-on-write min-priority-queue with O(1) snapshots — the
// "new base copy-on-write data structure" the paper built for its
// LazyPriorityQueue (§4, footnote 4: no publicly available concurrent heap
// supported efficient snapshots, so one was designed).
//
// Representation: a persistent leftist heap (path-copying merge, O(log n)
// amortized per update), published — like SnapshotHamt — through a raw
// pointer to an EBR-retired RootBox and updated with a CAS loop. The box
// holds the owning shared_ptr; readers pin the epoch domain instead of
// bumping a contended refcount (or taking libstdc++'s atomic<shared_ptr>
// lock) on every peek, which matters because the optimistic read fast path
// (DESIGN.md §12) funnels every transactional min() through peek_min.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/ebr.hpp"
#include "stm/thread_registry.hpp"

namespace proust::containers {

template <class T, class Compare = std::less<T>>
class CowHeap {
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  struct Node {
    T value;
    int rank;
    NodePtr left;
    NodePtr right;
  };

 public:
  CowHeap()
      : ebr_(stm::ThreadRegistry::kMaxSlots),
        root_(new RootBox{{}, nullptr}), size_(0) {}
  CowHeap(const CowHeap&) = delete;
  CowHeap& operator=(const CowHeap&) = delete;

  ~CowHeap() { delete root_.load(std::memory_order_relaxed); }

  void insert(T value) {
    NodePtr single = std::make_shared<const Node>(
        Node{std::move(value), 1, nullptr, nullptr});
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    for (;;) {
      RootBox* old_box = root_.load(std::memory_order_acquire);
      RootBox* box = new RootBox{{}, merge(old_box->root, single)};
      if (root_.compare_exchange_weak(old_box, box,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        retire_box(slot, old_box);
        size_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      delete box;  // lost the race; re-merge against the new root
    }
  }

  std::optional<T> peek_min() const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    const RootBox* box = root_.load(std::memory_order_acquire);
    if (!box->root) return std::nullopt;
    return box->root->value;
  }

  std::optional<T> remove_min() {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    for (;;) {
      RootBox* old_box = root_.load(std::memory_order_acquire);
      if (!old_box->root) return std::nullopt;
      RootBox* box =
          new RootBox{{}, merge(old_box->root->left, old_box->root->right)};
      if (root_.compare_exchange_weak(old_box, box,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        std::optional<T> ret = old_box->root->value;
        retire_box(slot, old_box);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return ret;
      }
      delete box;
    }
  }

  /// Linear membership scan (priority queues are not search structures; the
  /// paper's contains() on a PQueue is likewise O(n) over the multiset).
  bool contains(const T& value) const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    return find(root_.load(std::memory_order_acquire)->root, value);
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    return root_.load(std::memory_order_acquire)->root == nullptr;
  }

  /// O(1) consistent snapshot with local (single-owner) mutation — the
  /// shadow-copy interface for LazyPriorityQueue.
  class Snapshot {
   public:
    void insert(T value) {
      root_ = merge(root_, std::make_shared<const Node>(Node{
                               std::move(value), 1, nullptr, nullptr}));
      ++size_;
    }
    std::optional<T> peek_min() const {
      if (!root_) return std::nullopt;
      return root_->value;
    }
    std::optional<T> remove_min() {
      if (!root_) return std::nullopt;
      T v = root_->value;
      root_ = merge(root_->left, root_->right);
      --size_;
      return v;
    }
    bool contains(const T& value) const { return find(root_, value); }
    std::size_t size() const { return size_; }
    bool empty() const { return root_ == nullptr; }

    template <class F>
    void for_each(F&& f) const {
      walk(root_, f);
    }

   private:
    friend class CowHeap;
    Snapshot(NodePtr root, std::size_t size)
        : root_(std::move(root)), size_(size) {}
    NodePtr root_;
    std::size_t size_;
  };

  Snapshot snapshot() const {
    // The NodePtr copy — the read side's only refcount bump — happens under
    // the pin, so the box cannot be reclaimed mid-copy.
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    const RootBox* box = root_.load(std::memory_order_acquire);
    return Snapshot(box->root, size_.load(std::memory_order_acquire));
  }

  template <class F>
  void for_each(F&& f) const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    const RootBox* box = root_.load(std::memory_order_acquire);
    walk(box->root, f);
  }

 private:
  /// The published root: EBR hook first (retire/reclaim recover the box from
  /// the hook pointer), then the owning reference to the heap.
  struct RootBox {
    ebr::Retired hook;
    NodePtr root;
  };

  void retire_box(unsigned slot, RootBox* box) {
    ebr_.retire(
        slot, &box->hook,
        [](ebr::Retired* r, void*) { delete reinterpret_cast<RootBox*>(r); },
        nullptr);
  }

  static int rank_of(const NodePtr& n) noexcept { return n ? n->rank : 0; }

  static NodePtr merge(const NodePtr& a, const NodePtr& b) {
    if (!a) return b;
    if (!b) return a;
    Compare less{};
    const NodePtr& top = less(b->value, a->value) ? b : a;
    const NodePtr& other = less(b->value, a->value) ? a : b;
    NodePtr merged_right = merge(top->right, other);
    NodePtr l = top->left;
    NodePtr r = std::move(merged_right);
    if (rank_of(l) < rank_of(r)) std::swap(l, r);
    return std::make_shared<const Node>(
        Node{top->value, rank_of(r) + 1, std::move(l), std::move(r)});
  }

  // Explicit-stack traversals: a leftist heap's *left* spine can be O(n)
  // deep, so recursion would overflow the stack on large heaps.
  static bool find(const NodePtr& root, const T& value) {
    Compare less{};
    std::vector<const Node*> stack;
    if (root) stack.push_back(root.get());
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (less(value, n->value)) continue;  // min-heap property prune
      if (!less(n->value, value)) return true;  // equivalent under Compare
      if (n->left) stack.push_back(n->left.get());
      if (n->right) stack.push_back(n->right.get());
    }
    return false;
  }

  template <class F>
  static void walk(const NodePtr& root, F& f) {
    std::vector<const Node*> stack;
    if (root) stack.push_back(root.get());
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      f(n->value);
      if (n->left) stack.push_back(n->left.get());
      if (n->right) stack.push_back(n->right.get());
    }
  }

  mutable ebr::EbrDomain ebr_;  // reclaims displaced RootBoxes
  std::atomic<RootBox*> root_;
  std::atomic<std::size_t> size_;
};

}  // namespace proust::containers
