// A concurrent copy-on-write min-priority-queue with O(1) snapshots — the
// "new base copy-on-write data structure" the paper built for its
// LazyPriorityQueue (§4, footnote 4: no publicly available concurrent heap
// supported efficient snapshots, so one was designed).
//
// Representation: a persistent leftist heap (path-copying merge, O(log n)
// amortized per update) published as a raw `std::atomic<const Node*>` and
// updated with a CAS loop. Reclamation is pure EBR — nodes carry an
// intrusive ebr::Retired hook and there are NO per-node reference counts:
// readers pin the epoch domain, traverse raw pointers, and unpin; a
// successful CAS retires exactly the nodes the new version displaced
// (the copied merge path), whose subtrees remain shared by pointer.
// Compared to the earlier shared_ptr representation this removes an atomic
// count round-trip per node on every path copy and every snapshot drop —
// traffic that serialized concurrent updaters on hot heaps.
//
// Ownership ledger (the whole correctness argument):
//  - A mutating op records every node it allocates (`created`) and every
//    published node its new version no longer references (`displaced`).
//  - CAS success: displaced ∧ created → delete now (never published, no
//    reader can hold it); displaced ∧ published → retire to EBR (a pinned
//    reader may still traverse it); created ∧ ¬displaced → published,
//    forget.
//  - CAS failure: every created node is garbage (never published) → delete,
//    clear, rebuild against the new root. Displaced nodes were not touched.
//  - Snapshots pin the domain for their whole lifetime (counted pins, so
//    they nest with Guards and attempt-long wrapper pins) and own every
//    node their local mutations create, deleting them wholesale on
//    destruction; shared nodes they reference stay alive because the pin
//    holds the grace period open. Snapshots are move-only and must be
//    destroyed on the thread (registry slot) that took them — exactly the
//    transaction-shadow-copy lifecycle of SnapshotReplayLog.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/ebr.hpp"
#include "stm/thread_registry.hpp"

namespace proust::containers {

template <class T, class Compare = std::less<T>>
class CowHeap {
  struct Node {
    mutable ebr::Retired hook;  // first: retire/reclaim recover the node
    T value;
    int rank;
    const Node* left;
    const Node* right;
  };

  /// Per-op allocation ledger (see file comment). Thread-local and reused,
  /// so steady-state ops allocate nothing beyond the nodes themselves.
  struct OpTrace {
    std::vector<const Node*> created;
    std::vector<const Node*> displaced;
    void clear() noexcept {
      created.clear();
      displaced.clear();
    }
  };

 public:
  CowHeap() : ebr_(stm::ThreadRegistry::kMaxSlots), root_(nullptr), size_(0) {}
  CowHeap(const CowHeap&) = delete;
  CowHeap& operator=(const CowHeap&) = delete;

  ~CowHeap() {
    // Destruction implies quiescence: delete the live tree; limbo nodes
    // drain (and delete themselves) with the domain.
    delete_tree(root_.load(std::memory_order_relaxed));
  }

  void insert(T value) {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    OpTrace& tr = trace();
    tr.clear();
    for (;;) {
      const Node* old_root = root_.load(std::memory_order_acquire);
      const Node* single = make(tr, value, 1, nullptr, nullptr);
      const Node* new_root = merge(tr, old_root, single);
      if (root_.compare_exchange_weak(old_root,
                                      new_root,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        settle(slot, tr);
        size_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      discard(tr);  // lost the race; re-merge against the new root
    }
  }

  std::optional<T> peek_min() const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    const Node* root = root_.load(std::memory_order_acquire);
    if (root == nullptr) return std::nullopt;
    return root->value;
  }

  std::optional<T> remove_min() {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    OpTrace& tr = trace();
    tr.clear();
    for (;;) {
      const Node* old_root = root_.load(std::memory_order_acquire);
      if (old_root == nullptr) return std::nullopt;
      const Node* new_root = merge(tr, old_root->left, old_root->right);
      if (root_.compare_exchange_weak(old_root,
                                      new_root,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        std::optional<T> ret = old_root->value;
        tr.displaced.push_back(old_root);
        settle(slot, tr);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return ret;
      }
      discard(tr);
    }
  }

  /// Linear membership scan (priority queues are not search structures; the
  /// paper's contains() on a PQueue is likewise O(n) over the multiset).
  bool contains(const T& value) const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    return find(root_.load(std::memory_order_acquire), value);
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const {
    return root_.load(std::memory_order_acquire) == nullptr;
  }

  /// O(1) consistent snapshot with local (single-owner) mutation — the
  /// shadow-copy interface for LazyPriorityQueue. Holds an epoch pin for
  /// its lifetime (that pin is what keeps the frozen version's nodes from
  /// being reclaimed under it) and owns the nodes its own mutations create.
  /// Move-only; destroy on the thread that took it.
  class Snapshot {
   public:
    Snapshot(Snapshot&& o) noexcept
        : ebr_(o.ebr_), slot_(o.slot_), root_(o.root_), size_(o.size_),
          created_(std::move(o.created_)) {
      o.ebr_ = nullptr;
      o.created_.clear();
    }
    Snapshot& operator=(Snapshot&& o) noexcept {
      if (this != &o) {
        release();
        ebr_ = o.ebr_;
        slot_ = o.slot_;
        root_ = o.root_;
        size_ = o.size_;
        created_ = std::move(o.created_);
        o.ebr_ = nullptr;
        o.created_.clear();
      }
      return *this;
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    ~Snapshot() { release(); }

    void insert(T value) {
      OpTrace tr;  // displaced nodes are ignored: shared ones belong to the
                   // heap, local ones are swept by created_ at destruction
      const Node* single = make(tr, std::move(value), 1, nullptr, nullptr);
      root_ = merge(tr, root_, single);
      own(tr);
      ++size_;
    }
    std::optional<T> peek_min() const {
      if (root_ == nullptr) return std::nullopt;
      return root_->value;
    }
    std::optional<T> remove_min() {
      if (root_ == nullptr) return std::nullopt;
      T v = root_->value;
      OpTrace tr;
      root_ = merge(tr, root_->left, root_->right);
      own(tr);
      --size_;
      return v;
    }
    bool contains(const T& value) const { return find(root_, value); }
    std::size_t size() const { return size_; }
    bool empty() const { return root_ == nullptr; }

    template <class F>
    void for_each(F&& f) const {
      walk(root_, f);
    }

   private:
    friend class CowHeap;
    Snapshot(ebr::EbrDomain& ebr, unsigned slot, const Node* root,
             std::size_t size)
        : ebr_(&ebr), slot_(slot), root_(root), size_(size) {
      ebr_->enter(slot_);
    }

    void own(OpTrace& tr) {
      for (const Node* n : tr.created) created_.push_back(n);
    }
    void release() noexcept {
      if (ebr_ == nullptr) return;
      for (const Node* n : created_) delete n;
      created_.clear();
      ebr_->exit(slot_);
      ebr_ = nullptr;
    }

    ebr::EbrDomain* ebr_;
    unsigned slot_;
    const Node* root_;
    std::size_t size_;
    std::vector<const Node*> created_;  // local mutations' nodes, owned
  };

  Snapshot snapshot() const {
    // The root load happens after the snapshot's own pin (taken in its
    // constructor), so the frozen version cannot be reclaimed out from
    // under it; the pin then rides along for the snapshot's lifetime.
    const unsigned slot = stm::ThreadRegistry::slot();
    Snapshot s(ebr_, slot, nullptr, 0);
    s.root_ = root_.load(std::memory_order_acquire);
    s.size_ = size_.load(std::memory_order_acquire);
    return s;
  }

  template <class F>
  void for_each(F&& f) const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    walk(root_.load(std::memory_order_acquire), f);
  }

  /// Reclamation observability (tests): nodes retired/pending in the domain.
  std::uint64_t reclaim_pending() const noexcept { return ebr_.pending(); }
  std::size_t quiesce() noexcept { return ebr_.quiesce(); }

 private:
  static OpTrace& trace() {
    static thread_local OpTrace tr;
    return tr;
  }

  static const Node* make(OpTrace& tr, T value, int rank, const Node* l,
                          const Node* r) {
    const Node* n = new Node{{}, std::move(value), rank, l, r};
    tr.created.push_back(n);
    return n;
  }

  /// Publish-success bookkeeping: delete never-published intermediates,
  /// retire displaced published nodes past the grace period.
  void settle(unsigned slot, OpTrace& tr) {
    for (const Node* d : tr.displaced) {
      bool was_created = false;
      for (const Node* c : tr.created) {
        if (c == d) {
          was_created = true;
          break;
        }
      }
      if (was_created) {
        delete d;
      } else {
        ebr_.retire(
            slot, &d->hook,
            [](ebr::Retired* r, void*) {
              delete reinterpret_cast<const Node*>(r);
            },
            nullptr);
      }
    }
    tr.clear();
  }

  /// CAS-failure bookkeeping: nothing was published, so every created node
  /// is garbage and every displaced node still belongs to the live version.
  static void discard(OpTrace& tr) {
    for (const Node* c : tr.created) delete c;
    tr.clear();
  }

  static void delete_tree(const Node* root) {
    std::vector<const Node*> stack;
    if (root != nullptr) stack.push_back(root);
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (n->left != nullptr) stack.push_back(n->left);
      if (n->right != nullptr) stack.push_back(n->right);
      delete n;
    }
  }

  static int rank_of(const Node* n) noexcept { return n ? n->rank : 0; }

  /// Path-copying merge. Every node whose copy lands in the new version is
  /// recorded displaced; every copy is recorded created. Subtrees off the
  /// merge path are shared by pointer — that sharing is what EBR (instead
  /// of per-node counts) makes safe.
  static const Node* merge(OpTrace& tr, const Node* a, const Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    Compare less{};
    const Node* top = less(b->value, a->value) ? b : a;
    const Node* other = less(b->value, a->value) ? a : b;
    const Node* merged_right = merge(tr, top->right, other);
    const Node* l = top->left;
    const Node* r = merged_right;
    if (rank_of(l) < rank_of(r)) std::swap(l, r);
    tr.displaced.push_back(top);
    return make(tr, top->value, rank_of(r) + 1, l, r);
  }

  // Explicit-stack traversals: a leftist heap's *left* spine can be O(n)
  // deep, so recursion would overflow the stack on large heaps.
  static bool find(const Node* root, const T& value) {
    Compare less{};
    std::vector<const Node*> stack;
    if (root != nullptr) stack.push_back(root);
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (less(value, n->value)) continue;  // min-heap property prune
      if (!less(n->value, value)) return true;  // equivalent under Compare
      if (n->left != nullptr) stack.push_back(n->left);
      if (n->right != nullptr) stack.push_back(n->right);
    }
    return false;
  }

  template <class F>
  static void walk(const Node* root, F& f) {
    std::vector<const Node*> stack;
    if (root != nullptr) stack.push_back(root);
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      f(n->value);
      if (n->left != nullptr) stack.push_back(n->left);
      if (n->right != nullptr) stack.push_back(n->right);
    }
  }

  mutable ebr::EbrDomain ebr_;  // reclaims displaced nodes
  std::atomic<const Node*> root_;
  std::atomic<std::size_t> size_;
};

}  // namespace proust::containers
