// A concurrent hash-array-mapped trie with O(1) snapshots — the stand-in for
// Scala's concurrent TrieMap (Prokopec et al.), which the paper's
// LazyTrieMap wraps for its snapshot-based shadow copies (§4).
//
// Design: all trie nodes are immutable and shared (persistent, path-copying
// updates); the published root is a `std::atomic<std::shared_ptr<>>` updated
// with a CAS loop. A snapshot is therefore a single atomic load, and the
// snapshot supports further *local* (single-owner) mutation for free — which
// is exactly the shadow-copy contract the replay log needs.
//
// Concurrency: gets are wait-free on a consistent root; updates are
// lock-free in the obstruction-free sense (CAS-retry). Interior nodes are
// reclaimed by shared_ptr reference counting (traversals pass them by
// reference, so no per-node count traffic), but the *published root* is a
// raw pointer to an EBR-retired RootBox: `std::atomic<shared_ptr>` loads
// take a library-internal lock plus a contended count bump on every read,
// which the optimistic read fast path (DESIGN.md §12) would serialize on.
// Readers pin the domain, load the box, and traverse; writers CAS the box
// pointer and retire the old box, whose owning NodePtr keeps the displaced
// tree alive until the grace period ends. Snapshots copy the NodePtr out
// under the pin — one count bump per snapshot, not per read.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "common/ebr.hpp"
#include "common/hashing.hpp"
#include "stm/thread_registry.hpp"

namespace proust::containers {

template <class K, class V, class Hasher = proust::Hash<K>>
class SnapshotHamt {
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  struct KV {
    K key;
    V value;
  };
  using Slot = std::variant<KV, NodePtr>;

  static constexpr unsigned kBits = 6;        // 64-way branching
  static constexpr unsigned kMaxDepth = 10;   // 60 bits of hash, then buckets

  struct Node {
    std::uint64_t bitmap = 0;       // branch nodes: occupied positions
    std::vector<Slot> slots;        // compressed, popcount-indexed
    std::vector<KV> overflow;       // only at kMaxDepth (hash exhausted)
  };

 public:
  SnapshotHamt()
      : ebr_(stm::ThreadRegistry::kMaxSlots),
        root_(new RootBox{{}, std::make_shared<const Node>()}), size_(0) {}
  SnapshotHamt(const SnapshotHamt&) = delete;
  SnapshotHamt& operator=(const SnapshotHamt&) = delete;

  ~SnapshotHamt() {
    // Destruction implies quiescence; retired boxes drain with the domain.
    delete root_.load(std::memory_order_relaxed);
  }

  std::optional<V> get(const K& key) const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    const RootBox* box = root_.load(std::memory_order_acquire);
    return find(box->root, Hasher{}(key), 0, key);
  }

  bool contains(const K& key) const { return get(key).has_value(); }

  /// Insert or replace; returns the previous mapping if any. Lock-free CAS
  /// loop on the root box.
  std::optional<V> put(const K& key, V value) {
    const std::size_t h = Hasher{}(key);
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    for (;;) {
      RootBox* old_box = root_.load(std::memory_order_acquire);
      auto [new_root, old] = insert(old_box->root, h, 0, key, value);
      RootBox* box = new RootBox{{}, std::move(new_root)};
      if (root_.compare_exchange_weak(old_box, box,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        retire_box(slot, old_box);
        if (!old) size_.fetch_add(1, std::memory_order_relaxed);
        return old;
      }
      delete box;  // lost the race; rebuild against the new root
    }
  }

  /// Remove; returns the removed mapping if any.
  std::optional<V> remove(const K& key) {
    const std::size_t h = Hasher{}(key);
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    for (;;) {
      RootBox* old_box = root_.load(std::memory_order_acquire);
      auto [new_root, old] = erase(old_box->root, h, 0, key);
      if (!old) return std::nullopt;  // absent: nothing to CAS
      RootBox* box = new RootBox{{}, std::move(new_root)};
      if (root_.compare_exchange_weak(old_box, box,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        retire_box(slot, old_box);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return old;
      }
      delete box;
    }
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  template <class F>
  void for_each(F&& f) const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    const RootBox* box = root_.load(std::memory_order_acquire);
    walk(box->root, f);
  }

  /// An O(1), fully consistent snapshot supporting local mutation. Not
  /// thread-safe itself (single owner — a transaction's shadow copy).
  class Snapshot {
   public:
    std::optional<V> get(const K& key) const {
      return SnapshotHamt::find(root_, Hasher{}(key), 0, key);
    }
    bool contains(const K& key) const { return get(key).has_value(); }

    std::optional<V> put(const K& key, V value) {
      auto [new_root, old] =
          SnapshotHamt::insert(root_, Hasher{}(key), 0, key, value);
      root_ = std::move(new_root);
      if (!old) ++size_;
      return old;
    }

    std::optional<V> remove(const K& key) {
      auto [new_root, old] = SnapshotHamt::erase(root_, Hasher{}(key), 0, key);
      if (old) {
        root_ = std::move(new_root);
        --size_;
      }
      return old;
    }

    std::size_t size() const { return size_; }

    template <class F>
    void for_each(F&& f) const {
      SnapshotHamt::walk(root_, f);
    }

   private:
    friend class SnapshotHamt;
    Snapshot(NodePtr root, std::size_t size)
        : root_(std::move(root)), size_(size) {}
    NodePtr root_;
    std::size_t size_;
  };

  Snapshot snapshot() const {
    // size_ is read after root_: the count may be momentarily off relative
    // to the frozen root under concurrent updates; callers that need an
    // exact count use Snapshot::for_each. (The Proustian wrappers reify
    // size separately, so this does not affect them.) The NodePtr copy —
    // the only refcount bump on the read side — happens under the pin, so
    // the box cannot be reclaimed out from under it.
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    const RootBox* box = root_.load(std::memory_order_acquire);
    return Snapshot(box->root, size_.load(std::memory_order_acquire));
  }

 private:
  /// The published root: EBR hook first (retire/reclaim recover the box
  /// from the hook pointer), then the owning reference to the tree.
  struct RootBox {
    ebr::Retired hook;
    NodePtr root;
  };

  void retire_box(unsigned slot, RootBox* box) {
    ebr_.retire(
        slot, &box->hook,
        [](ebr::Retired* r, void*) { delete reinterpret_cast<RootBox*>(r); },
        nullptr);
  }
  static unsigned index_at(std::size_t hash, unsigned depth) noexcept {
    return static_cast<unsigned>((hash >> (kBits * depth)) & 63u);
  }
  static unsigned position(std::uint64_t bitmap, unsigned idx) noexcept {
    const std::uint64_t below = bitmap & ((std::uint64_t{1} << idx) - 1);
    return static_cast<unsigned>(__builtin_popcountll(below));
  }

  static std::optional<V> find(const NodePtr& node, std::size_t hash,
                               unsigned depth, const K& key) {
    const Node* n = node.get();
    if (depth >= kMaxDepth) {
      for (const KV& kv : n->overflow) {
        if (kv.key == key) return kv.value;
      }
      return std::nullopt;
    }
    const unsigned idx = index_at(hash, depth);
    const std::uint64_t bit = std::uint64_t{1} << idx;
    if (!(n->bitmap & bit)) return std::nullopt;
    const Slot& slot = n->slots[position(n->bitmap, idx)];
    if (const KV* kv = std::get_if<KV>(&slot)) {
      if (kv->key == key) return kv->value;
      return std::nullopt;
    }
    return find(std::get<NodePtr>(slot), hash, depth + 1, key);
  }

  static std::pair<NodePtr, std::optional<V>> insert(const NodePtr& node,
                                                     std::size_t hash,
                                                     unsigned depth,
                                                     const K& key,
                                                     const V& value) {
    auto copy = std::make_shared<Node>(*node);
    if (depth >= kMaxDepth) {
      for (KV& kv : copy->overflow) {
        if (kv.key == key) {
          std::optional<V> old = std::move(kv.value);
          kv.value = value;
          return {std::move(copy), std::move(old)};
        }
      }
      copy->overflow.push_back(KV{key, value});
      return {std::move(copy), std::nullopt};
    }
    const unsigned idx = index_at(hash, depth);
    const std::uint64_t bit = std::uint64_t{1} << idx;
    const unsigned pos = position(copy->bitmap, idx);
    if (!(copy->bitmap & bit)) {
      copy->bitmap |= bit;
      copy->slots.insert(copy->slots.begin() + pos, Slot(KV{key, value}));
      return {std::move(copy), std::nullopt};
    }
    Slot& slot = copy->slots[pos];
    if (KV* kv = std::get_if<KV>(&slot)) {
      if (kv->key == key) {
        std::optional<V> old = std::move(kv->value);
        kv->value = value;
        return {std::move(copy), std::move(old)};
      }
      // Split: push the resident pair one level down, then insert.
      NodePtr child = singleton(Hasher{}(kv->key), depth + 1, *kv);
      auto [new_child, old] = insert(child, hash, depth + 1, key, value);
      slot = Slot(std::move(new_child));
      return {std::move(copy), std::move(old)};
    }
    auto [new_child, old] =
        insert(std::get<NodePtr>(slot), hash, depth + 1, key, value);
    slot = Slot(std::move(new_child));
    return {std::move(copy), std::move(old)};
  }

  static NodePtr singleton(std::size_t hash, unsigned depth, KV kv) {
    auto n = std::make_shared<Node>();
    if (depth >= kMaxDepth) {
      n->overflow.push_back(std::move(kv));
    } else {
      const unsigned idx = index_at(hash, depth);
      n->bitmap = std::uint64_t{1} << idx;
      n->slots.push_back(Slot(std::move(kv)));
    }
    return n;
  }

  static std::pair<NodePtr, std::optional<V>> erase(const NodePtr& node,
                                                    std::size_t hash,
                                                    unsigned depth,
                                                    const K& key) {
    const Node* n = node.get();
    if (depth >= kMaxDepth) {
      for (std::size_t i = 0; i < n->overflow.size(); ++i) {
        if (n->overflow[i].key == key) {
          auto copy = std::make_shared<Node>(*n);
          std::optional<V> old = std::move(copy->overflow[i].value);
          copy->overflow.erase(copy->overflow.begin() + i);
          return {std::move(copy), std::move(old)};
        }
      }
      return {node, std::nullopt};
    }
    const unsigned idx = index_at(hash, depth);
    const std::uint64_t bit = std::uint64_t{1} << idx;
    if (!(n->bitmap & bit)) return {node, std::nullopt};
    const unsigned pos = position(n->bitmap, idx);
    const Slot& slot = n->slots[pos];
    if (const KV* kv = std::get_if<KV>(&slot)) {
      if (kv->key != key) return {node, std::nullopt};
      auto copy = std::make_shared<Node>(*n);
      std::optional<V> old = std::get<KV>(copy->slots[pos]).value;
      copy->bitmap &= ~bit;
      copy->slots.erase(copy->slots.begin() + pos);
      return {std::move(copy), std::move(old)};
    }
    auto [new_child, old] = erase(std::get<NodePtr>(slot), hash, depth + 1, key);
    if (!old) return {node, std::nullopt};
    auto copy = std::make_shared<Node>(*n);
    // Contract empty children so deleted subtrees don't accumulate.
    if (new_child->bitmap == 0 && new_child->overflow.empty()) {
      copy->bitmap &= ~bit;
      copy->slots.erase(copy->slots.begin() + pos);
    } else {
      copy->slots[pos] = Slot(std::move(new_child));
    }
    return {std::move(copy), std::move(old)};
  }

  template <class F>
  static void walk(const NodePtr& node, F& f) {
    for (const KV& kv : node->overflow) f(kv.key, kv.value);
    for (const Slot& slot : node->slots) {
      if (const KV* kv = std::get_if<KV>(&slot)) {
        f(kv->key, kv->value);
      } else {
        walk(std::get<NodePtr>(slot), f);
      }
    }
  }

  mutable ebr::EbrDomain ebr_;  // reclaims displaced RootBoxes
  std::atomic<RootBox*> root_;
  std::atomic<std::size_t> size_;
};

}  // namespace proust::containers
