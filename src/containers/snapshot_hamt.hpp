// A concurrent hash-array-mapped trie with O(1) snapshots — the stand-in for
// Scala's concurrent TrieMap (Prokopec et al.), which the paper's
// LazyTrieMap wraps for its snapshot-based shadow copies (§4).
//
// Design: all trie nodes are immutable and shared (persistent, path-copying
// updates); the published root is a raw `std::atomic<const Node*>` updated
// with a CAS loop, so a snapshot is a single pointer load under an epoch
// pin.
//
// Reclamation is pure EBR — nodes carry an intrusive ebr::Retired hook and
// there are NO per-node reference counts. Gets pin the domain, traverse raw
// pointers, and unpin; a successful update CAS retires exactly the nodes
// its path copy displaced, whose off-path subtrees remain shared by
// pointer. The earlier shared_ptr representation paid an atomic count
// round-trip per path node on every update (and libstdc++'s
// atomic<shared_ptr> lock on every root load before the RootBox
// indirection); both are gone.
//
// Ownership ledger (shared with CowHeap — see cow_heap.hpp for the full
// argument):
//  - ops record allocated nodes (`created`) and published nodes their new
//    version drops (`displaced`);
//  - CAS success: displaced ∧ created → delete, displaced only → retire,
//    created only → published;
//  - CAS failure: delete created, retry;
//  - Snapshots hold a counted epoch pin for their lifetime and own their
//    local mutations' nodes (deleted wholesale at destruction). Move-only;
//    destroy on the thread (registry slot) that took them.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "common/ebr.hpp"
#include "common/hashing.hpp"
#include "stm/thread_registry.hpp"

namespace proust::containers {

template <class K, class V, class Hasher = proust::Hash<K>>
class SnapshotHamt {
  struct Node;

  struct KV {
    K key;
    V value;
  };
  using Slot = std::variant<KV, const Node*>;

  static constexpr unsigned kBits = 6;        // 64-way branching
  static constexpr unsigned kMaxDepth = 10;   // 60 bits of hash, then buckets

  struct Node {
    mutable ebr::Retired hook;      // first: retire/reclaim recover the node
    std::uint64_t bitmap = 0;       // branch nodes: occupied positions
    std::vector<Slot> slots;        // compressed, popcount-indexed
    std::vector<KV> overflow;       // only at kMaxDepth (hash exhausted)
  };

  /// Per-op allocation ledger (see file comment).
  struct OpTrace {
    std::vector<const Node*> created;
    std::vector<const Node*> displaced;
    void clear() noexcept {
      created.clear();
      displaced.clear();
    }
  };

 public:
  SnapshotHamt()
      : ebr_(stm::ThreadRegistry::kMaxSlots), root_(new Node{}), size_(0) {}
  SnapshotHamt(const SnapshotHamt&) = delete;
  SnapshotHamt& operator=(const SnapshotHamt&) = delete;

  ~SnapshotHamt() {
    // Destruction implies quiescence: delete the live tree; limbo nodes
    // drain (and delete themselves) with the domain.
    delete_tree(root_.load(std::memory_order_relaxed));
  }

  std::optional<V> get(const K& key) const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    return find(root_.load(std::memory_order_acquire), Hasher{}(key), 0, key);
  }

  bool contains(const K& key) const { return get(key).has_value(); }

  /// Insert or replace; returns the previous mapping if any. Lock-free CAS
  /// loop on the root.
  std::optional<V> put(const K& key, V value) {
    const std::size_t h = Hasher{}(key);
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    OpTrace& tr = trace();
    tr.clear();
    for (;;) {
      const Node* old_root = root_.load(std::memory_order_acquire);
      auto [new_root, old] = insert(tr, old_root, h, 0, key, value);
      if (root_.compare_exchange_weak(old_root, new_root,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        settle(slot, tr);
        if (!old) size_.fetch_add(1, std::memory_order_relaxed);
        return old;
      }
      discard(tr);  // lost the race; rebuild against the new root
    }
  }

  /// Remove; returns the removed mapping if any.
  std::optional<V> remove(const K& key) {
    const std::size_t h = Hasher{}(key);
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    OpTrace& tr = trace();
    tr.clear();
    for (;;) {
      const Node* old_root = root_.load(std::memory_order_acquire);
      auto [new_root, old] = erase(tr, old_root, h, 0, key);
      if (!old) {
        discard(tr);  // absent: nothing to CAS (no copies were made)
        return std::nullopt;
      }
      if (root_.compare_exchange_weak(old_root, new_root,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        settle(slot, tr);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return old;
      }
      discard(tr);
    }
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  template <class F>
  void for_each(F&& f) const {
    const unsigned slot = stm::ThreadRegistry::slot();
    ebr::EbrDomain::Guard g(ebr_, slot);
    walk(root_.load(std::memory_order_acquire), f);
  }

  /// An O(1), fully consistent snapshot supporting local mutation. Not
  /// thread-safe itself (single owner — a transaction's shadow copy). Holds
  /// a counted epoch pin for its lifetime; owns its local mutations' nodes.
  class Snapshot {
   public:
    Snapshot(Snapshot&& o) noexcept
        : ebr_(o.ebr_), slot_(o.slot_), root_(o.root_), size_(o.size_),
          created_(std::move(o.created_)) {
      o.ebr_ = nullptr;
      o.created_.clear();
    }
    Snapshot& operator=(Snapshot&& o) noexcept {
      if (this != &o) {
        release();
        ebr_ = o.ebr_;
        slot_ = o.slot_;
        root_ = o.root_;
        size_ = o.size_;
        created_ = std::move(o.created_);
        o.ebr_ = nullptr;
        o.created_.clear();
      }
      return *this;
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    ~Snapshot() { release(); }

    std::optional<V> get(const K& key) const {
      return SnapshotHamt::find(root_, Hasher{}(key), 0, key);
    }
    bool contains(const K& key) const { return get(key).has_value(); }

    std::optional<V> put(const K& key, V value) {
      OpTrace tr;  // displaced ignored: shared nodes belong to the map,
                   // local ones are swept via created_ at destruction
      auto [new_root, old] =
          SnapshotHamt::insert(tr, root_, Hasher{}(key), 0, key, value);
      root_ = new_root;
      own(tr);
      if (!old) ++size_;
      return old;
    }

    std::optional<V> remove(const K& key) {
      OpTrace tr;
      auto [new_root, old] =
          SnapshotHamt::erase(tr, root_, Hasher{}(key), 0, key);
      own(tr);
      if (old) {
        root_ = new_root;
        --size_;
      }
      return old;
    }

    std::size_t size() const { return size_; }

    template <class F>
    void for_each(F&& f) const {
      SnapshotHamt::walk(root_, f);
    }

   private:
    friend class SnapshotHamt;
    Snapshot(ebr::EbrDomain& ebr, unsigned slot, const Node* root,
             std::size_t size)
        : ebr_(&ebr), slot_(slot), root_(root), size_(size) {
      ebr_->enter(slot_);
    }

    void own(OpTrace& tr) {
      for (const Node* n : tr.created) created_.push_back(n);
    }
    void release() noexcept {
      if (ebr_ == nullptr) return;
      for (const Node* n : created_) delete n;
      created_.clear();
      ebr_->exit(slot_);
      ebr_ = nullptr;
    }

    ebr::EbrDomain* ebr_;
    unsigned slot_;
    const Node* root_;
    std::size_t size_;
    std::vector<const Node*> created_;  // local mutations' nodes, owned
  };

  Snapshot snapshot() const {
    // size_ is read after root_: the count may be momentarily off relative
    // to the frozen root under concurrent updates; callers that need an
    // exact count use Snapshot::for_each. (The Proustian wrappers reify
    // size separately, so this does not affect them.) The root load happens
    // under the snapshot's own pin — taken in its constructor — so the
    // frozen version cannot be reclaimed out from under it.
    const unsigned slot = stm::ThreadRegistry::slot();
    Snapshot s(ebr_, slot, nullptr, 0);
    s.root_ = root_.load(std::memory_order_acquire);
    s.size_ = size_.load(std::memory_order_acquire);
    return s;
  }

  /// Reclamation observability (tests): nodes retired/pending in the domain.
  std::uint64_t reclaim_pending() const noexcept { return ebr_.pending(); }
  std::size_t quiesce() noexcept { return ebr_.quiesce(); }

 private:
  static OpTrace& trace() {
    static thread_local OpTrace tr;
    return tr;
  }

  /// Copy `n` into a fresh created node (the path-copying step); the
  /// original is recorded displaced.
  static Node* clone(OpTrace& tr, const Node* n) {
    Node* copy = new Node{{}, n->bitmap, n->slots, n->overflow};
    tr.created.push_back(copy);
    tr.displaced.push_back(n);
    return copy;
  }

  static Node* fresh(OpTrace& tr) {
    Node* n = new Node{};
    tr.created.push_back(n);
    return n;
  }

  void settle(unsigned slot, OpTrace& tr) {
    for (const Node* d : tr.displaced) {
      bool was_created = false;
      for (const Node* c : tr.created) {
        if (c == d) {
          was_created = true;
          break;
        }
      }
      if (was_created) {
        delete d;
      } else {
        ebr_.retire(
            slot, &d->hook,
            [](ebr::Retired* r, void*) {
              delete reinterpret_cast<const Node*>(r);
            },
            nullptr);
      }
    }
    tr.clear();
  }

  static void discard(OpTrace& tr) {
    for (const Node* c : tr.created) delete c;
    tr.clear();
  }

  static void delete_tree(const Node* root) {
    std::vector<const Node*> stack;
    if (root != nullptr) stack.push_back(root);
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      for (const Slot& s : n->slots) {
        if (const Node* const* child = std::get_if<const Node*>(&s)) {
          stack.push_back(*child);
        }
      }
      delete n;
    }
  }

  static unsigned index_at(std::size_t hash, unsigned depth) noexcept {
    return static_cast<unsigned>((hash >> (kBits * depth)) & 63u);
  }
  static unsigned position(std::uint64_t bitmap, unsigned idx) noexcept {
    const std::uint64_t below = bitmap & ((std::uint64_t{1} << idx) - 1);
    return static_cast<unsigned>(__builtin_popcountll(below));
  }

  static std::optional<V> find(const Node* n, std::size_t hash,
                               unsigned depth, const K& key) {
    if (depth >= kMaxDepth) {
      for (const KV& kv : n->overflow) {
        if (kv.key == key) return kv.value;
      }
      return std::nullopt;
    }
    const unsigned idx = index_at(hash, depth);
    const std::uint64_t bit = std::uint64_t{1} << idx;
    if (!(n->bitmap & bit)) return std::nullopt;
    const Slot& slot = n->slots[position(n->bitmap, idx)];
    if (const KV* kv = std::get_if<KV>(&slot)) {
      if (kv->key == key) return kv->value;
      return std::nullopt;
    }
    return find(std::get<const Node*>(slot), hash, depth + 1, key);
  }

  static std::pair<const Node*, std::optional<V>> insert(
      OpTrace& tr, const Node* node, std::size_t hash, unsigned depth,
      const K& key, const V& value) {
    Node* copy = clone(tr, node);
    if (depth >= kMaxDepth) {
      for (KV& kv : copy->overflow) {
        if (kv.key == key) {
          std::optional<V> old = std::move(kv.value);
          kv.value = value;
          return {copy, std::move(old)};
        }
      }
      copy->overflow.push_back(KV{key, value});
      return {copy, std::nullopt};
    }
    const unsigned idx = index_at(hash, depth);
    const std::uint64_t bit = std::uint64_t{1} << idx;
    const unsigned pos = position(copy->bitmap, idx);
    if (!(copy->bitmap & bit)) {
      copy->bitmap |= bit;
      copy->slots.insert(copy->slots.begin() + pos, Slot(KV{key, value}));
      return {copy, std::nullopt};
    }
    Slot& slot = copy->slots[pos];
    if (KV* kv = std::get_if<KV>(&slot)) {
      if (kv->key == key) {
        std::optional<V> old = std::move(kv->value);
        kv->value = value;
        return {copy, std::move(old)};
      }
      // Split: push the resident pair one level down, then insert. The
      // intermediate singleton is created-then-displaced within this op, so
      // settle/own handle it without reaching the published tree.
      const Node* child = singleton(tr, Hasher{}(kv->key), depth + 1, *kv);
      auto [new_child, old] = insert(tr, child, hash, depth + 1, key, value);
      slot = Slot(new_child);
      return {copy, std::move(old)};
    }
    auto [new_child, old] =
        insert(tr, std::get<const Node*>(slot), hash, depth + 1, key, value);
    slot = Slot(new_child);
    return {copy, std::move(old)};
  }

  static const Node* singleton(OpTrace& tr, std::size_t hash, unsigned depth,
                               KV kv) {
    Node* n = fresh(tr);
    if (depth >= kMaxDepth) {
      n->overflow.push_back(std::move(kv));
    } else {
      const unsigned idx = index_at(hash, depth);
      n->bitmap = std::uint64_t{1} << idx;
      n->slots.push_back(Slot(std::move(kv)));
    }
    return n;
  }

  static std::pair<const Node*, std::optional<V>> erase(OpTrace& tr,
                                                        const Node* n,
                                                        std::size_t hash,
                                                        unsigned depth,
                                                        const K& key) {
    if (depth >= kMaxDepth) {
      for (std::size_t i = 0; i < n->overflow.size(); ++i) {
        if (n->overflow[i].key == key) {
          Node* copy = clone(tr, n);
          std::optional<V> old = std::move(copy->overflow[i].value);
          copy->overflow.erase(copy->overflow.begin() + i);
          return {copy, std::move(old)};
        }
      }
      return {n, std::nullopt};
    }
    const unsigned idx = index_at(hash, depth);
    const std::uint64_t bit = std::uint64_t{1} << idx;
    if (!(n->bitmap & bit)) return {n, std::nullopt};
    const unsigned pos = position(n->bitmap, idx);
    const Slot& slot = n->slots[pos];
    if (const KV* kv = std::get_if<KV>(&slot)) {
      if (kv->key != key) return {n, std::nullopt};
      Node* copy = clone(tr, n);
      std::optional<V> old = std::get<KV>(copy->slots[pos]).value;
      copy->bitmap &= ~bit;
      copy->slots.erase(copy->slots.begin() + pos);
      return {copy, std::move(old)};
    }
    auto [new_child, old] =
        erase(tr, std::get<const Node*>(slot), hash, depth + 1, key);
    if (!old) return {n, std::nullopt};
    Node* copy = clone(tr, n);
    // Contract empty children so deleted subtrees don't accumulate. The
    // contracted child was created by the recursive call, so it falls under
    // the created ∧ displaced → delete rule.
    if (new_child->bitmap == 0 && new_child->overflow.empty()) {
      tr.displaced.push_back(new_child);
      copy->bitmap &= ~bit;
      copy->slots.erase(copy->slots.begin() + pos);
    } else {
      copy->slots[pos] = Slot(new_child);
    }
    return {copy, std::move(old)};
  }

  template <class F>
  static void walk(const Node* node, F& f) {
    for (const KV& kv : node->overflow) f(kv.key, kv.value);
    for (const Slot& slot : node->slots) {
      if (const KV* kv = std::get_if<KV>(&slot)) {
        f(kv->key, kv->value);
      } else {
        walk(std::get<const Node*>(slot), f);
      }
    }
  }

  mutable ebr::EbrDomain ebr_;  // reclaims displaced nodes
  std::atomic<const Node*> root_;
  std::atomic<std::size_t> size_;
};

}  // namespace proust::containers
