// A lock-striped concurrent hash map, the stand-in for Java's
// ConcurrentHashMap in the paper's LazyHashMap / eager TxnHashMap wrappers.
// Linearizable per-key operations; `size()` is a sum of per-stripe counts
// (sequentially consistent only when quiescent, as with CHM — the Proustian
// wrappers reify size out of the abstract state precisely because of this,
// see Listing 2).
//
// Writers serialize per stripe on a mutex; readers are LOCK-FREE. Each
// stripe is a fixed set of bucket chains of immutable nodes linked through
// atomic pointers: a get pins the map's EBR domain, loads the bucket head
// (acquire) and walks the chain without ever blocking. Mutators publish
// with release stores and EBR-retire unlinked nodes, so a concurrent
// reader either sees a node's fully-constructed contents or does not see
// the node at all, and never touches freed memory (DESIGN.md §12 — this is
// what makes the wrappers' unlocked read fast path a real win rather than
// "skip one lock, take another").
//
// The bucket arrays never rehash: chains simply grow past the intended
// load factor. This keeps node addresses stable for the lifetime of an
// entry (get_or_create_ref relies on it) and keeps readers coherent
// without a table-pointer indirection; size the stripe count for the
// expected key range.
//
// Values small enough for a lock-free std::atomic<V> are updated in place
// (replace allocates nothing — the steady-state zero-alloc invariant the
// stm_alloc suite pins); larger values are published by swapping in a
// fresh node and retiring the old one.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/ebr.hpp"
#include "common/hashing.hpp"
#include "stm/thread_registry.hpp"

namespace proust::containers {

template <class K, class V, class Hasher = proust::Hash<K>>
class StripedHashMap {
 public:
  explicit StripedHashMap(std::size_t stripes = 64)
      : ebr_(stm::ThreadRegistry::kMaxSlots), stripes_(next_pow2(stripes)),
        stripe_bits_(static_cast<unsigned>(std::countr_zero(stripes_))),
        shards_(stripes_) {}

  StripedHashMap(const StripedHashMap&) = delete;
  StripedHashMap& operator=(const StripedHashMap&) = delete;

  ~StripedHashMap() {
    // No concurrent access by contract; the EBR domain's destructor drains
    // whatever retire() deferred.
    for (Shard& s : shards_) {
      for (std::atomic<Node*>& b : s.buckets) {
        Node* n = b.load(std::memory_order_relaxed);
        while (n != nullptr) {
          Node* next = n->next.load(std::memory_order_relaxed);
          delete n;
          n = next;
        }
      }
    }
  }

  /// Insert or replace; returns the previous mapping if any. A replace
  /// publishes a fresh node before unlinking the old one, so concurrent
  /// readers always find the key present (old value or new, never absent).
  std::optional<V> put(const K& key, V value) {
    const std::size_t h = Hasher{}(key);
    Shard& s = shards_[h & (stripes_ - 1)];
    const unsigned slot = stm::ThreadRegistry::slot();
    const ebr::EbrDomain::Guard guard(ebr_, slot);
    std::lock_guard<std::mutex> g(s.mu);
    std::atomic<Node*>& head = s.buckets[bucket_of(h)];
    Node* prev = nullptr;
    Node* n = head.load(std::memory_order_relaxed);
    while (n != nullptr && !(n->key == key)) {
      prev = n;
      n = n->next.load(std::memory_order_relaxed);
    }
    if (n == nullptr) {
      head.store(new Node(key, std::move(value),
                          head.load(std::memory_order_relaxed)),
                 std::memory_order_release);
      ++s.count;
      return std::nullopt;
    }
    if constexpr (kAtomicValues) {
      std::optional<V> old = n->value.load(std::memory_order_relaxed);
      n->value.store(std::move(value), std::memory_order_release);
      return old;
    } else {
      std::optional<V> old = n->value;
      // The fresh head skips n when n *is* the head; otherwise it keeps the
      // whole old chain and n is unlinked in place afterwards.
      Node* fresh =
          new Node(key, std::move(value),
                   prev == nullptr ? n->next.load(std::memory_order_relaxed)
                                   : head.load(std::memory_order_relaxed));
      head.store(fresh, std::memory_order_release);
      if (prev != nullptr) {
        prev->next.store(n->next.load(std::memory_order_relaxed),
                         std::memory_order_release);
      }
      retire(slot, n);
      return old;
    }
  }

  /// Insert only if absent; returns the existing mapping if present.
  std::optional<V> put_if_absent(const K& key, V value) {
    const std::size_t h = Hasher{}(key);
    Shard& s = shards_[h & (stripes_ - 1)];
    std::lock_guard<std::mutex> g(s.mu);
    std::atomic<Node*>& head = s.buckets[bucket_of(h)];
    for (Node* n = head.load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key == key) return read_value(n);
    }
    head.store(new Node(key, std::move(value),
                        head.load(std::memory_order_relaxed)),
               std::memory_order_release);
    ++s.count;
    return std::nullopt;
  }

  std::optional<V> get(const K& key) const {
    return get_hashed(Hasher{}(key), key);
  }

  bool contains(const K& key) const {
    return contains_hashed(Hasher{}(key), key);
  }

  /// Attempt-long reader pin (DESIGN.md §12): a transactional wrapper pins
  /// its thread's slot once on the first fast-path read of an attempt and
  /// unpins at finish, so the per-read Guards inside get/contains become
  /// nested no-ops — one announce fence per attempt instead of one per
  /// lookup. Returns false if the slot was already pinned (the slot is
  /// owner-thread-only, so an observed pin is the caller's own).
  bool reader_pin(unsigned slot) const {
    if (ebr_.pinned(slot)) return false;
    ebr_.enter(slot);
    return true;
  }
  void reader_unpin(unsigned slot) const { ebr_.exit(slot); }

  /// Hash once, use everywhere: wrappers on the optimistic read fast path
  /// compute `hash_of` a single time per operation and feed it to both the
  /// sequence-word stripe and the lookup itself.
  std::size_t hash_of(const K& key) const noexcept { return Hasher{}(key); }

  /// Start the bucket head's cache line toward this core. A transactional
  /// wrapper knows the hash several branches before it issues the chain
  /// walk (eligibility checks, sequence-word load); prefetching here
  /// overlaps that work with the line fill, which matters on the unlocked
  /// fast path where no lock RMW hides the memory latency.
  void prefetch_bucket(std::size_t h) const noexcept {
    __builtin_prefetch(&shards_[h & (stripes_ - 1)].buckets[bucket_of(h)]);
  }
  std::size_t stripe_of_hash(std::size_t h) const noexcept {
    return h & (stripes_ - 1);
  }

  std::optional<V> get_hashed(std::size_t h, const K& key) const {
    const Shard& s = shards_[h & (stripes_ - 1)];
    const ebr::EbrDomain::Guard guard(ebr_, stm::ThreadRegistry::slot());
    for (const Node* n =
             s.buckets[bucket_of(h)].load(std::memory_order_acquire);
         n != nullptr; n = n->next.load(std::memory_order_acquire)) {
      if (n->key == key) return read_value(n);
    }
    return std::nullopt;
  }

  bool contains_hashed(std::size_t h, const K& key) const {
    const Shard& s = shards_[h & (stripes_ - 1)];
    const ebr::EbrDomain::Guard guard(ebr_, stm::ThreadRegistry::slot());
    for (const Node* n =
             s.buckets[bucket_of(h)].load(std::memory_order_acquire);
         n != nullptr; n = n->next.load(std::memory_order_acquire)) {
      if (n->key == key) return true;
    }
    return false;
  }

  /// Remove; returns the removed mapping if any.
  std::optional<V> remove(const K& key) {
    const std::size_t h = Hasher{}(key);
    Shard& s = shards_[h & (stripes_ - 1)];
    const unsigned slot = stm::ThreadRegistry::slot();
    const ebr::EbrDomain::Guard guard(ebr_, slot);
    std::lock_guard<std::mutex> g(s.mu);
    std::atomic<Node*>& head = s.buckets[bucket_of(h)];
    Node* prev = nullptr;
    Node* n = head.load(std::memory_order_relaxed);
    while (n != nullptr && !(n->key == key)) {
      prev = n;
      n = n->next.load(std::memory_order_relaxed);
    }
    if (n == nullptr) return std::nullopt;
    std::optional<V> old = read_value(n);
    Node* next = n->next.load(std::memory_order_relaxed);
    if (prev != nullptr) {
      prev->next.store(next, std::memory_order_release);
    } else {
      head.store(next, std::memory_order_release);
    }
    --s.count;
    retire(slot, n);
    return old;
  }

  /// Apply under the key's stripe lock; creates the entry from `make()` if
  /// absent. Used by the predication baseline to allocate per-key
  /// predicates exactly once.
  template <class Make>
  V get_or_create(const K& key, Make&& make) {
    const std::size_t h = Hasher{}(key);
    Shard& s = shards_[h & (stripes_ - 1)];
    std::lock_guard<std::mutex> g(s.mu);
    std::atomic<Node*>& head = s.buckets[bucket_of(h)];
    for (Node* n = head.load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key == key) return read_value(n);
    }
    Node* fresh = new Node(key, make(), head.load(std::memory_order_relaxed));
    head.store(fresh, std::memory_order_release);
    ++s.count;
    return read_value(fresh);
  }

  /// Like get_or_create but returns a reference to the mapped value. Node
  /// addresses are stable (no rehashing), so the reference stays valid as
  /// long as the entry is never removed or replaced — which is exactly the
  /// predication use (predicates are allocated once and never collected,
  /// matching the paper's §7 methodology note). Mutating through the
  /// reference is the caller's synchronization problem; the lock-free read
  /// path must not be used for entries mutated this way.
  template <class Make>
  V& get_or_create_ref(const K& key, Make&& make) {
    static_assert(!kAtomicValues,
                  "in-place atomic values have no stable V&; use "
                  "get_or_create for small trivially-copyable V");
    const std::size_t h = Hasher{}(key);
    Shard& s = shards_[h & (stripes_ - 1)];
    std::lock_guard<std::mutex> g(s.mu);
    std::atomic<Node*>& head = s.buckets[bucket_of(h)];
    for (Node* n = head.load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key == key) return n->value;
    }
    Node* fresh =
        new Node(key, make(), head.load(std::memory_order_relaxed));
    head.store(fresh, std::memory_order_release);
    ++s.count;
    return fresh->value;
  }

  /// Stripe index of `key`, exposed so a wrapper's ReadSeqTable (optimistic
  /// read fast path) can bracket exactly this key's shard.
  std::size_t stripe_index(const K& key) const noexcept {
    return Hasher{}(key) & (stripes_ - 1);
  }
  std::size_t stripe_count() const noexcept { return stripes_; }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> g(s.mu);
      n += s.count;
    }
    return n;
  }

  bool empty() const { return size() == 0; }

  void clear() {
    const unsigned slot = stm::ThreadRegistry::slot();
    const ebr::EbrDomain::Guard guard(ebr_, slot);
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> g(s.mu);
      for (std::atomic<Node*>& b : s.buckets) {
        Node* n = b.load(std::memory_order_relaxed);
        b.store(nullptr, std::memory_order_release);
        while (n != nullptr) {
          Node* next = n->next.load(std::memory_order_relaxed);
          retire(slot, n);
          n = next;
        }
      }
      s.count = 0;
    }
  }

  /// Iterate a weakly-consistent view: each stripe is visited under its own
  /// lock, but the stripes are not frozen relative to one another.
  template <class F>
  void for_each(F&& f) const {
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> g(s.mu);
      for (const std::atomic<Node*>& b : s.buckets) {
        for (const Node* n = b.load(std::memory_order_relaxed); n != nullptr;
             n = n->next.load(std::memory_order_relaxed)) {
          const V v = read_value(n);
          f(n->key, v);
        }
      }
    }
  }

 private:
  // Chains per stripe; with the intended load the chain a reader walks is
  // one or two nodes. Past it, lookups degrade to linear scans of longer
  // chains — still correct, just slower.
  static constexpr std::size_t kBucketsPerShard = 16;

  // Small trivially-copyable values live in a lock-free atomic and are
  // replaced in place; everything else is immutable once published and a
  // replace swaps whole nodes.
  static constexpr bool kAtomicValues =
      std::is_trivially_copyable_v<V> && sizeof(V) <= sizeof(void*) &&
      alignof(V) <= alignof(void*);
  using ValueSlot = std::conditional_t<kAtomicValues, std::atomic<V>, V>;

  struct Node {
    // `hook` first, so a Retired* retires back into `delete (Node*)`.
    ebr::Retired hook;
    const K key;
    ValueSlot value;
    std::atomic<Node*> next;
    Node(const K& k, V v, Node* nx)
        : hook{}, key(k), value(std::move(v)), next(nx) {}
  };

  static V read_value(const Node* n) {
    if constexpr (kAtomicValues) {
      return n->value.load(std::memory_order_acquire);
    } else {
      return n->value;
    }
  }

  struct Shard {
    mutable std::mutex mu;  // writers only; readers never take it
    std::array<std::atomic<Node*>, kBucketsPerShard> buckets{};
    std::size_t count = 0;  // guarded by mu
  };

  // Stripe selection eats the low hash bits; bucket selection uses the
  // next ones so co-striped keys still spread across chains.
  std::size_t bucket_of(std::size_t h) const noexcept {
    return (h >> stripe_bits_) & (kBucketsPerShard - 1);
  }

  void retire(unsigned slot, Node* n) {
    ebr_.retire(
        slot, &n->hook,
        [](ebr::Retired* r, void*) { delete reinterpret_cast<Node*>(r); },
        nullptr);
  }

  mutable ebr::EbrDomain ebr_;
  std::size_t stripes_;
  unsigned stripe_bits_;
  mutable std::vector<Shard> shards_;
};

}  // namespace proust::containers
