// A lock-striped concurrent hash map, the stand-in for Java's
// ConcurrentHashMap in the paper's LazyHashMap / eager TxnHashMap wrappers.
// Linearizable per-key operations; `size()` is a sum of per-stripe counts
// (sequentially consistent only when quiescent, as with CHM — the Proustian
// wrappers reify size out of the abstract state precisely because of this,
// see Listing 2).
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hashing.hpp"

namespace proust::containers {

template <class K, class V, class Hasher = proust::Hash<K>>
class StripedHashMap {
 public:
  explicit StripedHashMap(std::size_t stripes = 64)
      : stripes_(next_pow2(stripes)), shards_(stripes_) {}

  StripedHashMap(const StripedHashMap&) = delete;
  StripedHashMap& operator=(const StripedHashMap&) = delete;

  /// Insert or replace; returns the previous mapping if any.
  std::optional<V> put(const K& key, V value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    auto [it, inserted] = s.map.try_emplace(key, std::move(value));
    if (inserted) return std::nullopt;
    std::optional<V> old = std::move(it->second);
    it->second = std::move(value);
    return old;
  }

  /// Insert only if absent; returns the existing mapping if present.
  std::optional<V> put_if_absent(const K& key, V value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    auto [it, inserted] = s.map.try_emplace(key, std::move(value));
    if (inserted) return std::nullopt;
    return it->second;
  }

  std::optional<V> get(const K& key) const {
    const Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const K& key) const {
    const Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    return s.map.count(key) != 0;
  }

  /// Remove; returns the removed mapping if any.
  std::optional<V> remove(const K& key) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    std::optional<V> old = std::move(it->second);
    s.map.erase(it);
    return old;
  }

  /// Apply f(key, value) under the key's stripe lock; creates the entry from
  /// `make()` if absent. Used by the predication baseline to allocate
  /// per-key predicates exactly once.
  template <class Make>
  V get_or_create(const K& key, Make&& make) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) it = s.map.emplace(key, make()).first;
    return it->second;
  }

  /// Like get_or_create but returns a reference to the mapped value.
  /// std::unordered_map references are stable across inserts, so this is
  /// safe as long as the entry is never removed — which is exactly the
  /// predication use (predicates are allocated once and never collected,
  /// matching the paper's §7 methodology note).
  template <class Make>
  V& get_or_create_ref(const K& key, Make&& make) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) it = s.map.emplace(key, make()).first;
    return it->second;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> g(s.mu);
      n += s.map.size();
    }
    return n;
  }

  bool empty() const { return size() == 0; }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> g(s.mu);
      s.map.clear();
    }
  }

  /// Iterate a weakly-consistent view: each stripe is visited under its own
  /// lock, but the stripes are not frozen relative to one another.
  template <class F>
  void for_each(F&& f) const {
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> g(s.mu);
      for (const auto& [k, v] : s.map) f(k, v);
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<K, V, Hasher> map;
  };

  Shard& shard(const K& key) {
    return shards_[Hasher{}(key) & (stripes_ - 1)];
  }
  const Shard& shard(const K& key) const {
    return shards_[Hasher{}(key) & (stripes_ - 1)];
  }

  std::size_t stripes_;
  mutable std::vector<Shard> shards_;
};

}  // namespace proust::containers
