// A mutex-protected priority queue, the stand-in for Java's
// PriorityBlockingQueue which backs the paper's eager Proustian
// PriorityQueue (Figure 3). All operations are linearizable. remove_one()
// is O(n), exactly like PriorityBlockingQueue#remove(Object) — which is why
// the eager wrapper prefers the lazy-deletion trick instead.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace proust::containers {

template <class T, class Compare = std::less<T>>
class BlockingPriorityQueue {
 public:
  BlockingPriorityQueue() = default;
  BlockingPriorityQueue(const BlockingPriorityQueue&) = delete;
  BlockingPriorityQueue& operator=(const BlockingPriorityQueue&) = delete;

  void add(T value) {
    std::lock_guard<std::mutex> g(mu_);
    heap_.push_back(std::move(value));
    std::push_heap(heap_.begin(), heap_.end(), inverted());
  }

  /// Remove and return the minimum (by Compare), or nullopt if empty.
  std::optional<T> poll() {
    std::lock_guard<std::mutex> g(mu_);
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), inverted());
    T v = std::move(heap_.back());
    heap_.pop_back();
    return v;
  }

  std::optional<T> peek() const {
    std::lock_guard<std::mutex> g(mu_);
    if (heap_.empty()) return std::nullopt;
    return heap_.front();
  }

  /// Remove one element comparing equivalent to `value`. O(n), like
  /// PriorityBlockingQueue#remove.
  bool remove_one(const T& value) {
    std::lock_guard<std::mutex> g(mu_);
    Compare less{};
    auto it = std::find_if(heap_.begin(), heap_.end(), [&](const T& x) {
      return !less(x, value) && !less(value, x);
    });
    if (it == heap_.end()) return false;
    *it = std::move(heap_.back());
    heap_.pop_back();
    std::make_heap(heap_.begin(), heap_.end(), inverted());
    return true;
  }

  bool contains(const T& value) const {
    std::lock_guard<std::mutex> g(mu_);
    Compare less{};
    return std::any_of(heap_.begin(), heap_.end(), [&](const T& x) {
      return !less(x, value) && !less(value, x);
    });
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return heap_.size();
  }

  bool empty() const { return size() == 0; }

  template <class F>
  void for_each(F&& f) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const T& v : heap_) f(v);
  }

 private:
  // std::push_heap et al. build a max-heap; invert the comparator for a
  // min-queue matching removeMin() semantics.
  static auto inverted() {
    return [](const T& a, const T& b) { return Compare{}(b, a); };
  }

  mutable std::mutex mu_;
  std::vector<T> heap_;
};

}  // namespace proust::containers
