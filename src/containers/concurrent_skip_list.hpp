// A concurrent ordered map: a lazy-synchronization skip list in the style
// of Herlihy & Shavit (The Art of Multiprocessor Programming, cited by the
// paper as [23]). Per-node locks, logical deletion marks, optimistic
// traversal with validation. This is the "well-engineered thread-safe
// library" base under the Proustian ordered map with its range conflict
// abstraction (§1: "queries and updates to non-intersecting key ranges
// commute").
//
// Operations: put/get/remove/contains, plus weakly-consistent ordered
// traversal (range_for_each) in the manner of ConcurrentHashMap iterators —
// the Proustian wrapper's conflict abstraction supplies the transactional
// consistency on top.
//
// Memory reclamation: epoch-based (common/ebr.hpp). Every operation pins the
// list's EBR domain for its duration; remove() unlinks while pinned and
// retires the victim, which is deleted after three grace periods — so memory
// is bounded by churn-in-flight rather than by total removals (the previous
// scheme leaked every removed node until list destruction).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/ebr.hpp"
#include "common/rng.hpp"
#include "stm/thread_registry.hpp"

namespace proust::containers {

template <class K, class V, class Compare = std::less<K>>
class ConcurrentSkipList {
  static constexpr int kMaxLevel = 20;

  struct Node {
    Node(const K& k, const V& v, int height)
        : key(k), value(v), top_level(height - 1) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }
    // Head-node constructor (no key).
    explicit Node(int height) : key{}, value{}, top_level(height - 1) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }

    ebr::Retired hook;  // first member: Retired* == Node* for reclaim
    K key;
    V value;  // guarded by mu
    const int top_level;
    std::atomic<Node*> next[kMaxLevel];
    std::mutex mu;
    std::atomic<bool> marked{false};       // logically deleted
    std::atomic<bool> fully_linked{false}; // insert has completed
    bool is_head = false;
  };

 public:
  ConcurrentSkipList() : head_(new Node(kMaxLevel)), rng_seed_(0x5EED) {
    head_->is_head = true;
    head_->fully_linked.store(true, std::memory_order_release);
  }

  ~ConcurrentSkipList() {
    Node* n = head_;
    while (n) {
      Node* next = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
    // Retired-but-unreclaimed nodes are drained (and deleted) by ebr_'s
    // destructor; they were unlinked, so the walk above never saw them.
  }

  ConcurrentSkipList(const ConcurrentSkipList&) = delete;
  ConcurrentSkipList& operator=(const ConcurrentSkipList&) = delete;

  /// Attempt-long reader pin (DESIGN.md §12): mirrors
  /// StripedHashMap::reader_pin — pin once per transaction attempt so the
  /// per-operation Guards below become nested no-ops. Returns false if the
  /// slot was already pinned (the slot is owner-thread-only, so an observed
  /// pin is the caller's own).
  bool reader_pin(unsigned slot) const {
    if (ebr_.pinned(slot)) return false;
    ebr_.enter(slot);
    return true;
  }
  void reader_unpin(unsigned slot) const { ebr_.exit(slot); }

  /// Insert or update; returns the previous value if the key was present.
  std::optional<V> put(const K& key, const V& value) {
    const ebr::EbrDomain::Guard guard(ebr_, stm::ThreadRegistry::slot());
    const int top = random_level();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    for (;;) {
      const int found = find(key, preds, succs);
      if (found != -1) {
        Node* node = succs[found];
        if (!node->marked.load(std::memory_order_acquire)) {
          // Present (or still linking): update the value in place.
          while (!node->fully_linked.load(std::memory_order_acquire)) {
          }
          std::lock_guard<std::mutex> g(node->mu);
          if (node->marked.load(std::memory_order_acquire)) continue;
          std::optional<V> old = node->value;
          node->value = value;
          return old;
        }
        continue;  // marked: a concurrent remove is in flight; retry
      }
      // Absent: link a new node, locking predecessors bottom-up.
      std::unique_lock<std::mutex> pred_locks[kMaxLevel];
      bool valid = true;
      Node* last_locked = nullptr;
      for (int level = 0; valid && level < top; ++level) {
        Node* pred = preds[level];
        Node* succ = succs[level];
        if (pred != last_locked) {
          pred_locks[level] = std::unique_lock<std::mutex>(pred->mu);
          last_locked = pred;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[level].load(std::memory_order_acquire) == succ;
      }
      if (!valid) continue;

      Node* node = new Node(key, value, top);
      for (int level = 0; level < top; ++level) {
        node->next[level].store(succs[level], std::memory_order_relaxed);
      }
      for (int level = 0; level < top; ++level) {
        preds[level]->next[level].store(node, std::memory_order_release);
      }
      node->fully_linked.store(true, std::memory_order_release);
      size_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
  }

  std::optional<V> get(const K& key) const {
    const ebr::EbrDomain::Guard guard(ebr_, stm::ThreadRegistry::slot());
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    const int found =
        const_cast<ConcurrentSkipList*>(this)->find(key, preds, succs);
    if (found == -1) return std::nullopt;
    Node* node = succs[found];
    if (!node->fully_linked.load(std::memory_order_acquire) ||
        node->marked.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    std::lock_guard<std::mutex> g(node->mu);
    if (node->marked.load(std::memory_order_acquire)) return std::nullopt;
    return node->value;
  }

  bool contains(const K& key) const { return get(key).has_value(); }

  /// Remove; returns the removed value if present.
  std::optional<V> remove(const K& key) {
    // The guard both protects our own traversal and satisfies the EBR
    // contract that the physical unlink below is performed while pinned.
    const ebr::EbrDomain::Guard guard(ebr_, stm::ThreadRegistry::slot());
    Node* victim = nullptr;
    bool is_marked = false;
    int top_level = -1;
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    std::unique_lock<std::mutex> victim_lock;
    for (;;) {
      const int found = find(key, preds, succs);
      if (!is_marked) {
        if (found == -1) return std::nullopt;
        victim = succs[found];
        if (!victim->fully_linked.load(std::memory_order_acquire) ||
            victim->top_level != found ||
            victim->marked.load(std::memory_order_acquire)) {
          if (victim->marked.load(std::memory_order_acquire)) {
            return std::nullopt;
          }
          continue;
        }
        top_level = victim->top_level;
        victim_lock = std::unique_lock<std::mutex>(victim->mu);
        if (victim->marked.load(std::memory_order_acquire)) {
          return std::nullopt;  // lost the race to another remover
        }
        victim->marked.store(true, std::memory_order_release);
        is_marked = true;
      }
      // Lock predecessors and validate, then physically unlink.
      std::unique_lock<std::mutex> pred_locks[kMaxLevel];
      bool valid = true;
      Node* last_locked = nullptr;
      for (int level = 0; valid && level <= top_level; ++level) {
        Node* pred = preds[level];
        if (pred != last_locked) {
          pred_locks[level] = std::unique_lock<std::mutex>(pred->mu);
          last_locked = pred;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[level].load(std::memory_order_acquire) == victim;
      }
      if (!valid) continue;

      for (int level = top_level; level >= 0; --level) {
        preds[level]->next[level].store(
            victim->next[level].load(std::memory_order_acquire),
            std::memory_order_release);
      }
      std::optional<V> old = victim->value;
      victim_lock.unlock();
      retire(victim);
      size_.fetch_sub(1, std::memory_order_relaxed);
      return old;
    }
  }

  /// Weakly-consistent ordered traversal of [lo, hi] (inclusive): visits
  /// each present key at most once, in order; concurrent updates may or may
  /// not be observed (like CHM iteration). Transactional consistency is the
  /// wrapper's job.
  template <class F>
  void range_for_each(const K& lo, const K& hi, F&& f) const {
    const ebr::EbrDomain::Guard guard(ebr_, stm::ThreadRegistry::slot());
    Compare less{};
    const Node* node = head_->next[0].load(std::memory_order_acquire);
    while (node) {
      if (less(hi, node->key)) break;
      if (!less(node->key, lo) &&
          node->fully_linked.load(std::memory_order_acquire) &&
          !node->marked.load(std::memory_order_acquire)) {
        // Value reads race with in-place updates only for non-atomic V;
        // lock briefly for a torn-free copy.
        Node* mut = const_cast<Node*>(node);
        std::lock_guard<std::mutex> g(mut->mu);
        if (!node->marked.load(std::memory_order_acquire)) {
          f(node->key, mut->value);
        }
      }
      node = node->next[0].load(std::memory_order_acquire);
    }
  }

  /// Smallest key >= lo, if any (weakly consistent).
  std::optional<K> ceiling_key(const K& lo) const {
    const ebr::EbrDomain::Guard guard(ebr_, stm::ThreadRegistry::slot());
    Compare less{};
    const Node* node = head_->next[0].load(std::memory_order_acquire);
    while (node) {
      if (!less(node->key, lo) &&
          node->fully_linked.load(std::memory_order_acquire) &&
          !node->marked.load(std::memory_order_acquire)) {
        return node->key;
      }
      node = node->next[0].load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  /// Reclamation observability (tests/monitoring): nodes retired by
  /// remove(), nodes already freed, and the difference still in limbo.
  std::uint64_t reclaim_retired() const noexcept {
    return ebr_.retired_count();
  }
  std::uint64_t reclaim_freed() const noexcept {
    return ebr_.reclaimed_count();
  }
  std::uint64_t reclaim_pending() const noexcept { return ebr_.pending(); }

  /// Drain all deferred frees. Caller promises no concurrent operations
  /// (a quiescent point). Returns the number of nodes freed.
  std::size_t quiesce() noexcept { return ebr_.quiesce(); }

 private:
  /// Standard lazy-skip-list find: fills preds/succs at every level and
  /// returns the highest level at which the key was found, or -1.
  int find(const K& key, Node** preds, Node** succs) {
    Compare less{};
    int found = -1;
    Node* pred = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      Node* curr = pred->next[level].load(std::memory_order_acquire);
      while (curr && less(curr->key, key)) {
        pred = curr;
        curr = pred->next[level].load(std::memory_order_acquire);
      }
      if (found == -1 && curr && !less(key, curr->key) &&
          !less(curr->key, key)) {
        found = level;
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    return found;
  }

  int random_level() {
    thread_local Xoshiro256 rng(rng_seed_ ^
                                std::hash<std::thread::id>{}(
                                    std::this_thread::get_id()));
    // Cap below kMaxLevel for determinism with the pre-EBR layout (the top
    // slot used to carry the retired-stack link; keeping the cap preserves
    // tower-height distributions across seeds).
    int level = 1;
    while (level < kMaxLevel - 1 && (rng() & 3) == 0) ++level;  // p = 1/4
    return level;
  }

  /// Defer the victim's free by three grace periods. Caller holds the
  /// operation guard (the unlink above happened under that pin).
  void retire(Node* node) {
    ebr_.retire(stm::ThreadRegistry::slot(), &node->hook,
                &ConcurrentSkipList::reclaim_node, nullptr);
  }

  static void reclaim_node(ebr::Retired* r, void* /*ctx*/) {
    delete reinterpret_cast<Node*>(r);  // hook is Node's first member
  }

  Node* head_;
  std::atomic<std::size_t> size_{0};
  // mutable: read-only operations pin the domain too (const interface).
  mutable ebr::EbrDomain ebr_{stm::ThreadRegistry::kMaxSlots};
  std::uint64_t rng_seed_;
};

}  // namespace proust::containers
