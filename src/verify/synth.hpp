// Conflict-abstraction synthesis by counterexample-guided inductive search
// (CEGIS) — the future-work direction of §9/Appendix E: "using SAT/SMT
// counterexamples as the basis for constructing f_1^{m,rd}, ...".
//
// The synthesizer is template-based: for every method of a bounded model
// the caller supplies a menu of candidate access rules (RuleOption), each a
// small conflict-abstraction fragment with a heuristic cost. The CEGIS loop
//   1. proposes the cheapest untried combination consistent with every
//      counterexample collected so far (consistency is a cheap evaluation,
//      no model checking),
//   2. verifies it with the exhaustive checker,
//   3. on failure stores the counterexample and goes to 1.
// Because candidates are visited in nondecreasing cost order, the first
// verified combination is a minimum-cost correct CA for the given menu —
// with costs that track access aggressiveness, this also approximately
// minimizes false conflicts (the quantity Proust cares about).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "verify/checker.hpp"
#include "verify/model.hpp"

namespace proust::verify {

/// One candidate access rule for one method.
struct RuleOption {
  std::string description;
  std::function<Access(const Args& args, int state)> access;
  double cost = 0;  // heuristic: stronger/wider accesses cost more
};

struct SynthesisProblem {
  const ModelSpec* model = nullptr;
  /// One menu per method, in the model's method order.
  std::vector<std::vector<RuleOption>> menus;
};

struct SynthesisResult {
  bool found = false;
  std::vector<std::size_t> chosen;  // option index per method
  std::size_t candidates_proposed = 0;  // full verifications attempted
  std::size_t candidates_pruned = 0;    // rejected by stored counterexamples
  std::vector<Counterexample> counterexamples;
  ConflictAbstractionFn ca;  // the synthesized abstraction (if found)
  std::string summary;       // human-readable description of the choice
};

/// Run the CEGIS loop. Complexity: product of menu sizes in the worst case,
/// but counterexample pruning typically eliminates most combinations
/// without a model-checking pass.
SynthesisResult synthesize(const SynthesisProblem& problem);

// ---------------------------------------------------------------------------
// Menu builders for the bundled models.

/// Threshold-guarded rules over a single location: {none} ∪
/// {read,write} × {guard state-measure < τ : τ in 1..max_threshold} ∪
/// unconditional read/write. `measure` maps a model state to the guarded
/// quantity (e.g. the counter's value).
std::vector<RuleOption> threshold_menu(
    int location, int max_threshold,
    std::function<int(int state)> measure);

/// The §3 counter synthesis instance: both methods draw from a threshold
/// menu over ℓ0 guarded by the counter value. The expected synthesis result
/// is the paper's CA (incr reads, decr writes, threshold 2).
SynthesisProblem make_counter_synthesis_problem(const ModelSpec& counter);

/// The FIFO queue instance: enq picks among {Write(Tail)} variants, deq
/// among {Write(Head)} plus an optional emptiness-guarded Read(Tail).
SynthesisProblem make_queue_synthesis_problem(const ModelSpec& queue);

/// Keyed rules for map-like methods whose first argument is the key:
/// {none, read(key mod M), write(key mod M)}. Reads cost 1, writes 2.
std::vector<RuleOption> keyed_menu(int num_locations);

/// The striped-map instance: every method draws from keyed_menu; synthesis
/// must discover that gets/contains read and puts/removes write their key's
/// stripe (i.e. re-derive map_ca_striped automatically).
SynthesisProblem make_map_synthesis_problem(const ModelSpec& map,
                                            int num_locations);

}  // namespace proust::verify
