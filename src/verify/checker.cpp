#include "verify/checker.hpp"

#include <algorithm>
#include <sstream>

namespace proust::verify {

bool commutes(const ModelSpec& model, int state, const MethodSpec& m,
              const Args& ma, const MethodSpec& n, const Args& na) {
  (void)model;
  // Order m;n
  const OpOutcome m1 = m.apply(state, ma);
  const OpOutcome n1 = n.apply(m1.next_state, na);
  // Order n;m
  const OpOutcome n2 = n.apply(state, na);
  const OpOutcome m2 = m.apply(n2.next_state, ma);
  return n1.next_state == m2.next_state &&  // same final state
         m1.ret == m2.ret &&                // m's return agrees in both orders
         n1.ret == n2.ret;                  // n's return agrees in both orders
}

namespace {
bool intersects(const std::vector<int>& a, const std::vector<int>& b) {
  for (int x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

std::string describe_args(const Args& args) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) os << ",";
    os << args[i];
  }
  os << ")";
  return os.str();
}

std::string describe_access(const Access& a) {
  std::ostringstream os;
  os << "reads{";
  for (std::size_t i = 0; i < a.reads.size(); ++i) {
    if (i) os << ",";
    os << a.reads[i];
  }
  os << "} writes{";
  for (std::size_t i = 0; i < a.writes.size(); ++i) {
    if (i) os << ",";
    os << a.writes[i];
  }
  os << "}";
  return os.str();
}
}  // namespace

bool accesses_conflict(const Access& a, const Access& b) {
  return intersects(a.writes, b.writes) ||  // w/w
         intersects(a.writes, b.reads) ||   // w/r
         intersects(a.reads, b.writes);     // r/w
}

std::optional<Counterexample> check_conflict_abstraction(
    const ModelSpec& model, const ConflictAbstractionFn& ca) {
  for (int state = 0; state < model.num_states; ++state) {
    if (model.state_filter && !model.state_filter(state)) continue;
    for (std::size_t mi = 0; mi < model.methods.size(); ++mi) {
      const MethodSpec& m = model.methods[mi];
      for (const Args& ma : m.arg_tuples) {
        // Pairs are symmetric (commutes and accesses_conflict both are), so
        // only scan the upper triangle.
        for (std::size_t ni = mi; ni < model.methods.size(); ++ni) {
          const MethodSpec& n = model.methods[ni];
          for (const Args& na : n.arg_tuples) {
            if (commutes(model, state, m, ma, n, na)) continue;
            const Access am = ca(m.name, ma, state);
            const Access an = ca(n.name, na, state);
            if (accesses_conflict(am, an)) continue;
            Counterexample cex;
            cex.state = state;
            cex.m = Invocation{m.name, ma};
            cex.n = Invocation{n.name, na};
            std::ostringstream os;
            os << "state "
               << (model.describe_state ? model.describe_state(state)
                                        : std::to_string(state))
               << ": " << m.name << describe_args(ma) << " and " << n.name
               << describe_args(na)
               << " do not commute, but their conflict abstractions ["
               << describe_access(am) << "] vs [" << describe_access(an)
               << "] perform no conflicting STM access";
            cex.detail = os.str();
            return cex;
          }
        }
      }
    }
  }
  return std::nullopt;
}

std::size_t count_false_conflicts(const ModelSpec& model,
                                  const ConflictAbstractionFn& ca) {
  std::size_t count = 0;
  for (int state = 0; state < model.num_states; ++state) {
    if (model.state_filter && !model.state_filter(state)) continue;
    for (std::size_t mi = 0; mi < model.methods.size(); ++mi) {
      const MethodSpec& m = model.methods[mi];
      for (const Args& ma : m.arg_tuples) {
        for (std::size_t ni = mi; ni < model.methods.size(); ++ni) {
          const MethodSpec& n = model.methods[ni];
          for (const Args& na : n.arg_tuples) {
            if (!commutes(model, state, m, ma, n, na)) continue;
            if (accesses_conflict(ca(m.name, ma, state), ca(n.name, na, state))) {
              ++count;
            }
          }
        }
      }
    }
  }
  return count;
}

std::size_t count_pairs(const ModelSpec& model) {
  std::size_t invocations = 0;
  for (const MethodSpec& m : model.methods) invocations += m.arg_tuples.size();
  // Upper triangle including the diagonal, per state.
  return static_cast<std::size_t>(model.num_states) * invocations *
         (invocations + 1) / 2;
}

bool is_read_only(const ModelSpec& model, const MethodSpec& method) {
  for (int state = 0; state < model.num_states; ++state) {
    if (model.state_filter && !model.state_filter(state)) continue;
    for (const Args& args : method.arg_tuples) {
      if (method.apply(state, args).next_state != state) return false;
    }
  }
  return true;
}

std::optional<Counterexample> check_read_only_commutativity(
    const ModelSpec& model) {
  // Collect the read-only methods once; the pair scan is over those only.
  std::vector<const MethodSpec*> ro;
  for (const MethodSpec& m : model.methods) {
    if (is_read_only(model, m)) ro.push_back(&m);
  }
  for (int state = 0; state < model.num_states; ++state) {
    if (model.state_filter && !model.state_filter(state)) continue;
    for (std::size_t mi = 0; mi < ro.size(); ++mi) {
      const MethodSpec& m = *ro[mi];
      for (const Args& ma : m.arg_tuples) {
        for (std::size_t ni = mi; ni < ro.size(); ++ni) {
          const MethodSpec& n = *ro[ni];
          for (const Args& na : n.arg_tuples) {
            if (commutes(model, state, m, ma, n, na)) continue;
            Counterexample cex;
            cex.state = state;
            cex.m = Invocation{m.name, ma};
            cex.n = Invocation{n.name, na};
            std::ostringstream os;
            os << "state "
               << (model.describe_state ? model.describe_state(state)
                                        : std::to_string(state))
               << ": read-only invocations " << m.name << describe_args(ma)
               << " and " << n.name << describe_args(na)
               << " do not commute — the model's reads are order-sensitive, "
                  "so admitting them on the unlocked fast path is unsound";
            cex.detail = os.str();
            return cex;
          }
        }
      }
    }
  }
  return std::nullopt;
}

std::string to_string(const Counterexample& cex) { return cex.detail; }

}  // namespace proust::verify
