// Bounded ADT models for conflict-abstraction verification (§3
// "Correctness" and Appendix E).
//
// The paper reduces CA correctness to satisfiability and discharges it with
// SAT/SMT. No solver ships in this environment, so we implement the same
// decision procedure by bounded exhaustive enumeration: for the finite
// models below, enumerating every (state, invocation pair) decides exactly
// the satisfiability query of Appendix E — a counterexample here corresponds
// one-to-one to a satisfying assignment there. As the paper notes, "it is
// sufficient to work with a model (or sequential implementation) of the
// abstract data type"; no concurrent implementation is involved.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace proust::verify {

using Args = std::vector<std::int64_t>;

/// Result of applying a method to a model state: successor state plus an
/// encoded return value (error flags included — two invocations only
/// commute if their return values, errors and all, agree in both orders).
struct OpOutcome {
  int next_state;
  std::int64_t ret;
};

struct MethodSpec {
  std::string name;
  /// Enumerated argument tuples (empty tuple for nullary methods).
  std::vector<Args> arg_tuples;
  std::function<OpOutcome(int state, const Args& args)> apply;
};

struct ModelSpec {
  std::string name;
  int num_states = 0;
  std::vector<MethodSpec> methods;
  /// Pretty-printer for counterexample reporting.
  std::function<std::string(int state)> describe_state;
  /// Optional: restrict which states the checker uses as *starting* states.
  /// Bounded models of unbounded types clamp at the boundary (an incr at the
  /// counter's cap stays put), which manufactures non-commutation that the
  /// real type does not have; the filter keeps starting states two
  /// operations away from any clamp so every checked pair is exact.
  std::function<bool(int state)> state_filter;
};

/// The STM locations an invocation's conflict abstraction reads/writes in a
/// given state — the f_i^{m,rd} / f_i^{m,wr} functions of §3, with the
/// Boolean vector flattened to index lists.
struct Access {
  std::vector<int> reads;
  std::vector<int> writes;
};

using ConflictAbstractionFn =
    std::function<Access(const std::string& method, const Args& args, int state)>;

// ---------------------------------------------------------------------------
// Ready-made models + reference conflict abstractions (see models/*.cpp).
// Each "broken" variant drops a required access and must be refuted by the
// checker; each "paper" variant is the CA as published.

/// §3's non-negative counter with values in [0, max_value] (incr clamps at
/// the bound with an error return, keeping the bounded model total).
ModelSpec make_counter_model(int max_value);
ConflictAbstractionFn counter_ca_paper();       // threshold 2, correct
ConflictAbstractionFn counter_ca_threshold1();  // broken: misses decr/decr@1

/// A map over keys {0..num_keys-1} and values {1..num_vals}; state encodes
/// each key's (absent | value) assignment.
ModelSpec make_map_model(int num_keys, int num_vals);
ConflictAbstractionFn map_ca_striped(int num_locations);  // k mod M, correct
ConflictAbstractionFn map_ca_readless();  // broken: gets perform no access

/// A priority queue holding multisets over values {1..num_vals} up to
/// max_size (inserts at capacity error out, keeping the model total).
ModelSpec make_pqueue_model(int num_vals, int max_size);
/// Our implementation's CA (location 0 = PQueueMin, 1 = PQueueMultiSet);
/// insert into an *empty* queue writes Min.
ConflictAbstractionFn pqueue_ca_ours(int num_vals, int max_size);
/// Figure 3 taken literally: insert into an empty queue only *reads*
/// PQueueMin. The checker exhibits the missed insert-vs-min conflict.
ConflictAbstractionFn pqueue_ca_figure3_literal(int num_vals, int max_size);

/// A FIFO queue with the Head/Tail abstract-state decomposition used by
/// core::TxnQueue; states are sequences over {1..num_vals} up to max_len.
ModelSpec make_queue_model(int num_vals, int max_len);
ConflictAbstractionFn queue_ca_ours(int num_vals, int max_len);
/// Broken: deq-on-empty does not Read(Tail), missing its conflict with enq.
ConflictAbstractionFn queue_ca_no_empty_read(int num_vals, int max_len);

/// A double-ended queue with the Front/Back decomposition of
/// core::TxnDeque; the guarded CA reads the opposite end when the deque
/// holds at most one element.
ModelSpec make_deque_model(int num_vals, int max_len);
ConflictAbstractionFn deque_ca_ours(int num_vals, int max_len);
/// Broken: no near-emptiness guard at all (ends never observe each other).
ConflictAbstractionFn deque_ca_unguarded(int num_vals, int max_len);

/// An ordered map over keys {0..num_keys-1} with range queries
/// (range_sum(lo,hi)); the interval conflict abstraction assigns one
/// location per key stripe and range operations read every stripe their
/// interval covers (§1: "queries and updates to non-intersecting key ranges
/// commute").
ModelSpec make_ordered_map_model(int num_keys, int num_vals);
ConflictAbstractionFn ordered_map_ca_interval(int num_locations);
/// Broken: range queries only read the stripe of their lower bound.
ConflictAbstractionFn ordered_map_ca_lower_only(int num_locations);

}  // namespace proust::verify
