#include "verify/synth.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace proust::verify {

namespace {

/// A concrete combination of menu choices, exposed as a CA function.
ConflictAbstractionFn make_ca(const SynthesisProblem& problem,
                              const std::vector<std::size_t>& chosen) {
  // Capture the options by value so the CA outlives the synthesis call.
  std::vector<RuleOption> rules;
  rules.reserve(chosen.size());
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    rules.push_back(problem.menus[i][chosen[i]]);
  }
  std::vector<std::string> names;
  for (const MethodSpec& m : problem.model->methods) names.push_back(m.name);
  return [rules, names](const std::string& method, const Args& args,
                        int state) -> Access {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == method) return rules[i].access(args, state);
    }
    return {};
  };
}

double total_cost(const SynthesisProblem& problem,
                  const std::vector<std::size_t>& chosen) {
  double c = 0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    c += problem.menus[i][chosen[i]].cost;
  }
  return c;
}

/// Does a candidate produce a conflict for a stored counterexample's
/// invocation pair? (The cheap CEGIS consistency test.)
bool resolves(const SynthesisProblem& problem,
              const std::vector<std::size_t>& chosen,
              const Counterexample& cex) {
  const auto ca = make_ca(problem, chosen);
  return accesses_conflict(ca(cex.m.method, cex.m.args, cex.state),
                           ca(cex.n.method, cex.n.args, cex.state));
}

}  // namespace

SynthesisResult synthesize(const SynthesisProblem& problem) {
  SynthesisResult result;
  const std::size_t n = problem.menus.size();

  // Enumerate all combinations, then visit in nondecreasing cost order.
  std::vector<std::vector<std::size_t>> combos;
  std::vector<std::size_t> cur(n, 0);
  for (;;) {
    combos.push_back(cur);
    std::size_t i = 0;
    while (i < n && ++cur[i] == problem.menus[i].size()) {
      cur[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  std::stable_sort(combos.begin(), combos.end(),
                   [&](const auto& a, const auto& b) {
                     return total_cost(problem, a) < total_cost(problem, b);
                   });

  for (const auto& combo : combos) {
    bool consistent = true;
    for (const Counterexample& cex : result.counterexamples) {
      if (!resolves(problem, combo, cex)) {
        consistent = false;
        break;
      }
    }
    if (!consistent) {
      ++result.candidates_pruned;
      continue;
    }
    ++result.candidates_proposed;
    const auto ca = make_ca(problem, combo);
    if (auto cex = check_conflict_abstraction(*problem.model, ca)) {
      result.counterexamples.push_back(*cex);
      continue;
    }
    result.found = true;
    result.chosen = combo;
    result.ca = ca;
    std::ostringstream os;
    for (std::size_t i = 0; i < n; ++i) {
      if (i) os << "; ";
      os << problem.model->methods[i].name << ": "
         << problem.menus[i][combo[i]].description;
    }
    result.summary = os.str();
    return result;
  }
  return result;  // found == false: menu space has no correct CA
}

std::vector<RuleOption> threshold_menu(
    int location, int max_threshold,
    std::function<int(int state)> measure) {
  std::vector<RuleOption> menu;
  menu.push_back({"no access", [](const Args&, int) { return Access{}; }, 0});
  for (int write = 0; write <= 1; ++write) {
    const double kind_cost = write ? 2.0 : 1.0;
    // Unconditional access.
    menu.push_back(
        {std::string(write ? "write" : "read") + "(l" +
             std::to_string(location) + ") always",
         [location, write](const Args&, int) {
           Access a;
           (write ? a.writes : a.reads).push_back(location);
           return a;
         },
         kind_cost * (max_threshold + 1)});
    for (int tau = 1; tau <= max_threshold; ++tau) {
      menu.push_back(
          {std::string(write ? "write" : "read") + "(l" +
               std::to_string(location) + ") when measure < " +
               std::to_string(tau),
           [location, write, tau, measure](const Args&, int state) {
             Access a;
             if (measure(state) < tau) {
               (write ? a.writes : a.reads).push_back(location);
             }
             return a;
           },
           kind_cost * tau});
    }
  }
  return menu;
}

SynthesisProblem make_counter_synthesis_problem(const ModelSpec& counter) {
  SynthesisProblem p;
  p.model = &counter;
  const auto identity = [](int state) { return state; };  // state == value
  p.menus.assign(counter.methods.size(),
                 threshold_menu(/*location=*/0, /*max_threshold=*/4, identity));
  return p;
}

SynthesisProblem make_queue_synthesis_problem(const ModelSpec& queue) {
  SynthesisProblem p;
  p.model = &queue;
  p.menus.resize(queue.methods.size());
  for (std::size_t i = 0; i < queue.methods.size(); ++i) {
    const std::string& name = queue.methods[i].name;
    std::vector<RuleOption> menu;
    menu.push_back({"no access", [](const Args&, int) { return Access{}; }, 0});
    if (name == "enq") {
      menu.push_back({"write(Tail)",
                      [](const Args&, int) {
                        Access a;
                        a.writes = {1};
                        return a;
                      },
                      2});
      menu.push_back({"read(Tail)",
                      [](const Args&, int) {
                        Access a;
                        a.reads = {1};
                        return a;
                      },
                      1});
    } else {  // deq
      // Write(Head) with an optional emptiness-guarded Read(Tail).
      // State index 0 is the empty queue in the model's enumeration order.
      for (int with_tail = 0; with_tail <= 1; ++with_tail) {
        menu.push_back(
            {with_tail ? "write(Head) + read(Tail) when empty"
                       : "write(Head)",
             [with_tail](const Args&, int state) {
               Access a;
               a.writes = {0};
               if (with_tail && state == 0) a.reads.push_back(1);
               return a;
             },
             2.0 + with_tail * 0.5});
      }
      menu.push_back({"write(Head) + read(Tail) always",
                      [](const Args&, int) {
                        Access a;
                        a.writes = {0};
                        a.reads = {1};
                        return a;
                      },
                      4});
    }
    p.menus[i] = std::move(menu);
  }
  return p;
}

std::vector<RuleOption> keyed_menu(int num_locations) {
  std::vector<RuleOption> menu;
  menu.push_back({"no access", [](const Args&, int) { return Access{}; }, 0});
  for (int write = 0; write <= 1; ++write) {
    menu.push_back(
        {std::string(write ? "write" : "read") + "(key mod " +
             std::to_string(num_locations) + ")",
         [num_locations, write](const Args& args, int) {
           Access a;
           const int loc = static_cast<int>(args[0]) % num_locations;
           (write ? a.writes : a.reads).push_back(loc);
           return a;
         },
         write ? 2.0 : 1.0});
  }
  return menu;
}

SynthesisProblem make_map_synthesis_problem(const ModelSpec& map,
                                            int num_locations) {
  SynthesisProblem p;
  p.model = &map;
  p.menus.assign(map.methods.size(), keyed_menu(num_locations));
  return p;
}

}  // namespace proust::verify
