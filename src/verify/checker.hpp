// The conflict-abstraction checker: decides Definition 3.1 over a bounded
// model by exhaustive enumeration (the offline stand-in for the paper's
// SAT/SMT reduction — see model.hpp).
#pragma once

#include <optional>
#include <string>

#include "verify/model.hpp"

namespace proust::verify {

struct Invocation {
  std::string method;
  Args args;
};

struct Counterexample {
  int state = 0;
  Invocation m, n;
  std::string detail;  // human-readable explanation (the "SAT model")
};

/// Two invocations commute in `state` iff applying them in either order
/// yields the same final state and the same per-invocation return values
/// (the §3 definition).
bool commutes(const ModelSpec& model, int state, const MethodSpec& m,
              const Args& ma, const MethodSpec& n, const Args& na);

/// Whether two access sets constitute an STM-level conflict: some location
/// is write/write, read/write or write/read shared (Definition 3.1's three
/// cases).
bool accesses_conflict(const Access& a, const Access& b);

/// Definition 3.1: for every state and every pair of invocations that do
/// not commute there, the CA must force conflicting STM accesses. Returns
/// the first violation found, or nullopt if the CA is correct for the
/// model. Exhaustive over num_states × (Σ|args|)² — complete for bounded
/// models.
std::optional<Counterexample> check_conflict_abstraction(
    const ModelSpec& model, const ConflictAbstractionFn& ca);

/// Diagnostic: count false conflicts — commuting pairs whose CA accesses
/// nevertheless conflict. Not an error (Definition 3.1 is an implication,
/// not an equivalence) but the quantity Proust tries to minimize; the
/// striping ablation uses this to show the M/false-conflict trade-off.
std::size_t count_false_conflicts(const ModelSpec& model,
                                  const ConflictAbstractionFn& ca);

/// Total number of (state, invocation-pair) combinations examined, for
/// reporting ratios alongside count_false_conflicts.
std::size_t count_pairs(const ModelSpec& model);

/// A method is read-only iff no invocation of it changes the model state
/// from any (filtered) starting state. This is the property the optimistic
/// read fast path (DESIGN.md §12) assumes of the operations it admits
/// without the abstract lock: if a wrapper routed a secretly-mutating
/// method down the fast path, its base-structure write would bypass both
/// the sequence-counter pin and the abstract lock.
bool is_read_only(const ModelSpec& model, const MethodSpec& method);

/// The fast path's soundness side condition: every pair of read-only
/// invocations commutes in every state (so unlocked readers can never
/// conflict with *each other*; reader-vs-mutator interleavings are what the
/// sequence-word validation handles). Returns the first read-only pair that
/// fails to commute — which would indicate a model whose "reads" observe
/// order — or nullopt if the model is fast-path sound.
std::optional<Counterexample> check_read_only_commutativity(
    const ModelSpec& model);

std::string to_string(const Counterexample& cex);

}  // namespace proust::verify
