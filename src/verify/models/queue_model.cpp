// Bounded model of a FIFO queue with the Head/Tail abstract-state
// decomposition used by core::TxnQueue. Validates that CA analytically:
//   enq(v): Write(Tail);  deq(): Write(Head) + Read(Tail) when empty.
// Also provides the broken variant without the empty-queue Read(Tail),
// which the checker refutes (deq-on-empty does not commute with enq).
#include "verify/model.hpp"

#include <memory>
#include <sstream>
#include <vector>

namespace proust::verify {

namespace {
constexpr std::int64_t kEmptyRet = -1;
constexpr std::int64_t kFullRet = -2;
constexpr int kHeadLoc = 0;
constexpr int kTailLoc = 1;

// States are sequences over {1..num_vals} of length <= max_len, enumerated
// lexicographically.
struct QStateSpace {
  std::vector<std::vector<int>> states;

  QStateSpace(int num_vals, int max_len) {
    std::vector<int> cur;
    build(cur, num_vals, max_len);
  }

  void build(std::vector<int>& cur, int num_vals, int max_len) {
    states.push_back(cur);
    if (static_cast<int>(cur.size()) == max_len) return;
    for (int v = 1; v <= num_vals; ++v) {
      cur.push_back(v);
      build(cur, num_vals, max_len);
      cur.pop_back();
    }
  }

  int index_of(const std::vector<int>& s) const {
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i] == s) return static_cast<int>(i);
    }
    return -1;
  }
};
}  // namespace

ModelSpec make_queue_model(int num_vals, int max_len) {
  auto sp = std::make_shared<const QStateSpace>(num_vals, max_len);

  ModelSpec m;
  m.name = "queue";
  m.num_states = static_cast<int>(sp->states.size());

  MethodSpec enq;
  enq.name = "enq";
  for (int v = 1; v <= num_vals; ++v) enq.arg_tuples.push_back({v});
  enq.apply = [sp, max_len](int state, const Args& args) -> OpOutcome {
    std::vector<int> s = sp->states[static_cast<std::size_t>(state)];
    if (static_cast<int>(s.size()) >= max_len) return {state, kFullRet};
    s.push_back(static_cast<int>(args[0]));
    return {sp->index_of(s), 0};
  };

  MethodSpec deq;
  deq.name = "deq";
  deq.arg_tuples = {{}};
  deq.apply = [sp](int state, const Args&) -> OpOutcome {
    std::vector<int> s = sp->states[static_cast<std::size_t>(state)];
    if (s.empty()) return {state, kEmptyRet};
    const int front = s.front();
    s.erase(s.begin());
    return {sp->index_of(s), front};
  };

  m.methods = {enq, deq};
  m.describe_state = [sp](int s) {
    std::ostringstream os;
    os << "[";
    const auto& st = sp->states[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < st.size(); ++i) {
      if (i) os << ",";
      os << st[i];
    }
    os << "]";
    return os.str();
  };
  // Keep clear of the capacity clamp (two enqs from a checked state).
  m.state_filter = [sp, max_len](int s) {
    return static_cast<int>(sp->states[static_cast<std::size_t>(s)].size()) <=
           max_len - 2;
  };
  return m;
}

namespace {
ConflictAbstractionFn queue_ca(int num_vals, int max_len,
                               bool empty_deq_reads_tail) {
  auto sp = std::make_shared<const QStateSpace>(num_vals, max_len);
  return [sp, empty_deq_reads_tail](const std::string& method, const Args&,
                                    int state) -> Access {
    Access a;
    if (method == "enq") {
      a.writes = {kTailLoc};
    } else if (method == "deq") {
      a.writes = {kHeadLoc};
      if (empty_deq_reads_tail &&
          sp->states[static_cast<std::size_t>(state)].empty()) {
        a.reads.push_back(kTailLoc);
      }
    }
    return a;
  };
}
}  // namespace

ConflictAbstractionFn queue_ca_ours(int num_vals, int max_len) {
  return queue_ca(num_vals, max_len, /*empty_deq_reads_tail=*/true);
}

ConflictAbstractionFn queue_ca_no_empty_read(int num_vals, int max_len) {
  return queue_ca(num_vals, max_len, /*empty_deq_reads_tail=*/false);
}

}  // namespace proust::verify
