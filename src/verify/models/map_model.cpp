// Bounded model of a map over small key/value domains, with the §3 striped
// conflict abstraction (one location per key modulo M) and a broken variant
// whose reads perform no CA access.
//
// State encoding: mixed radix — each key holds one of (num_vals + 1)
// assignments, 0 meaning absent and v in 1..num_vals meaning "mapped to v".
#include "verify/model.hpp"

#include <sstream>

namespace proust::verify {

namespace {
int digit(int state, int key, int radix) {
  for (int i = 0; i < key; ++i) state /= radix;
  return state % radix;
}

int with_digit(int state, int key, int radix, int value) {
  int scale = 1;
  for (int i = 0; i < key; ++i) scale *= radix;
  const int old = digit(state, key, radix);
  return state + (value - old) * scale;
}
}  // namespace

ModelSpec make_map_model(int num_keys, int num_vals) {
  const int radix = num_vals + 1;
  int states = 1;
  for (int i = 0; i < num_keys; ++i) states *= radix;

  ModelSpec m;
  m.name = "map";
  m.num_states = states;

  MethodSpec get;
  get.name = "get";
  for (int k = 0; k < num_keys; ++k) get.arg_tuples.push_back({k});
  get.apply = [radix](int state, const Args& args) -> OpOutcome {
    return {state, digit(state, static_cast<int>(args[0]), radix)};
  };

  MethodSpec contains;
  contains.name = "contains";
  for (int k = 0; k < num_keys; ++k) contains.arg_tuples.push_back({k});
  contains.apply = [radix](int state, const Args& args) -> OpOutcome {
    return {state, digit(state, static_cast<int>(args[0]), radix) != 0};
  };

  MethodSpec put;
  put.name = "put";
  for (int k = 0; k < num_keys; ++k) {
    for (int v = 1; v <= num_vals; ++v) put.arg_tuples.push_back({k, v});
  }
  put.apply = [radix](int state, const Args& args) -> OpOutcome {
    const int k = static_cast<int>(args[0]);
    const int v = static_cast<int>(args[1]);
    const int old = digit(state, k, radix);
    return {with_digit(state, k, radix, v), old};
  };

  MethodSpec remove;
  remove.name = "remove";
  for (int k = 0; k < num_keys; ++k) remove.arg_tuples.push_back({k});
  remove.apply = [radix](int state, const Args& args) -> OpOutcome {
    const int k = static_cast<int>(args[0]);
    const int old = digit(state, k, radix);
    return {with_digit(state, k, radix, 0), old};
  };

  m.methods = {get, contains, put, remove};
  m.describe_state = [num_keys, radix](int s) {
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (int k = 0; k < num_keys; ++k) {
      const int d = digit(s, k, radix);
      if (d == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << k << "->" << d;
    }
    os << "}";
    return os.str();
  };
  return m;
}

ConflictAbstractionFn map_ca_striped(int num_locations) {
  return [num_locations](const std::string& method, const Args& args,
                         int) -> Access {
    Access a;
    const int loc = static_cast<int>(args[0]) % num_locations;
    if (method == "get" || method == "contains") {
      a.reads = {loc};
    } else {
      a.writes = {loc};
    }
    return a;
  };
}

ConflictAbstractionFn map_ca_readless() {
  return [](const std::string& method, const Args& args, int) -> Access {
    Access a;
    if (method == "put" || method == "remove") {
      a.writes = {static_cast<int>(args[0])};
    }
    // broken: get/contains perform no CA access, so a concurrent put to the
    // same key is never detected.
    return a;
  };
}

}  // namespace proust::verify
