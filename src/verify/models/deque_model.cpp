// Bounded model of a double-ended queue with the Front/Back abstract-state
// decomposition of core::TxnDeque. The checker validates the near-emptiness
// guard (ops at one end read the other end's element when the deque holds
// at most one element) and refutes the unguarded variant.
#include "verify/model.hpp"

#include <memory>
#include <sstream>
#include <vector>

namespace proust::verify {

namespace {
constexpr std::int64_t kEmptyRet = -1;
constexpr std::int64_t kFullRet = -2;
constexpr int kFrontLoc = 0;
constexpr int kBackLoc = 1;

struct DQStateSpace {
  std::vector<std::vector<int>> states;

  DQStateSpace(int num_vals, int max_len) {
    std::vector<int> cur;
    build(cur, num_vals, max_len);
  }
  void build(std::vector<int>& cur, int num_vals, int max_len) {
    states.push_back(cur);
    if (static_cast<int>(cur.size()) == max_len) return;
    for (int v = 1; v <= num_vals; ++v) {
      cur.push_back(v);
      build(cur, num_vals, max_len);
      cur.pop_back();
    }
  }
  int index_of(const std::vector<int>& s) const {
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i] == s) return static_cast<int>(i);
    }
    return -1;
  }
};
}  // namespace

ModelSpec make_deque_model(int num_vals, int max_len) {
  auto sp = std::make_shared<const DQStateSpace>(num_vals, max_len);

  ModelSpec m;
  m.name = "deque";
  m.num_states = static_cast<int>(sp->states.size());

  const auto make_push = [sp, max_len](bool front) {
    MethodSpec push;
    push.name = front ? "push_front" : "push_back";
    for (int v = 1; v <= 2; ++v) push.arg_tuples.push_back({v});
    push.apply = [sp, max_len, front](int state, const Args& args) -> OpOutcome {
      std::vector<int> s = sp->states[static_cast<std::size_t>(state)];
      if (static_cast<int>(s.size()) >= max_len) return {state, kFullRet};
      if (front) {
        s.insert(s.begin(), static_cast<int>(args[0]));
      } else {
        s.push_back(static_cast<int>(args[0]));
      }
      return {sp->index_of(s), 0};
    };
    return push;
  };

  const auto make_pop = [sp](bool front) {
    MethodSpec pop;
    pop.name = front ? "pop_front" : "pop_back";
    pop.arg_tuples = {{}};
    pop.apply = [sp, front](int state, const Args&) -> OpOutcome {
      std::vector<int> s = sp->states[static_cast<std::size_t>(state)];
      if (s.empty()) return {state, kEmptyRet};
      int v;
      if (front) {
        v = s.front();
        s.erase(s.begin());
      } else {
        v = s.back();
        s.pop_back();
      }
      return {sp->index_of(s), v};
    };
    return pop;
  };

  m.methods = {make_push(true), make_push(false), make_pop(true),
               make_pop(false)};
  m.describe_state = [sp](int s) {
    std::ostringstream os;
    os << "[";
    const auto& st = sp->states[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < st.size(); ++i) {
      if (i) os << ",";
      os << st[i];
    }
    os << "]";
    return os.str();
  };
  m.state_filter = [sp, max_len](int s) {
    return static_cast<int>(sp->states[static_cast<std::size_t>(s)].size()) <=
           max_len - 2;
  };
  return m;
}

namespace {
ConflictAbstractionFn deque_ca(int num_vals, int max_len, int guard_size) {
  auto sp = std::make_shared<const DQStateSpace>(num_vals, max_len);
  return [sp, guard_size](const std::string& method, const Args&,
                          int state) -> Access {
    Access a;
    const int size =
        static_cast<int>(sp->states[static_cast<std::size_t>(state)].size());
    const bool near_empty = size <= guard_size;
    const bool front_end =
        method == "push_front" || method == "pop_front";
    const int mine = front_end ? kFrontLoc : kBackLoc;
    const int other = front_end ? kBackLoc : kFrontLoc;
    a.writes = {mine};
    if (near_empty) a.reads.push_back(other);
    return a;
  };
}
}  // namespace

ConflictAbstractionFn deque_ca_ours(int num_vals, int max_len) {
  return deque_ca(num_vals, max_len, /*guard_size=*/1);
}

ConflictAbstractionFn deque_ca_unguarded(int num_vals, int max_len) {
  return deque_ca(num_vals, max_len, /*guard_size=*/-1);
}

}  // namespace proust::verify
