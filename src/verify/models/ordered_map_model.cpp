// Bounded model of an ordered map with range queries, validating the
// interval conflict abstraction of core::TxnOrderedMap: a range operation
// reads every stripe its interval covers; a point update writes its key's
// stripe. The broken variant reads only the lower bound's stripe and is
// refuted by a put strictly inside the queried range.
#include "verify/model.hpp"

#include <sstream>

namespace proust::verify {

namespace {
int digit(int state, int key, int radix) {
  for (int i = 0; i < key; ++i) state /= radix;
  return state % radix;
}
int with_digit(int state, int key, int radix, int value) {
  int scale = 1;
  for (int i = 0; i < key; ++i) scale *= radix;
  return state + (value - digit(state, key, radix)) * scale;
}
}  // namespace

ModelSpec make_ordered_map_model(int num_keys, int num_vals) {
  const int radix = num_vals + 1;  // 0 = absent
  int states = 1;
  for (int i = 0; i < num_keys; ++i) states *= radix;

  ModelSpec m;
  m.name = "ordered-map";
  m.num_states = states;

  MethodSpec get;
  get.name = "get";
  for (int k = 0; k < num_keys; ++k) get.arg_tuples.push_back({k});
  get.apply = [radix](int state, const Args& args) -> OpOutcome {
    return {state, digit(state, static_cast<int>(args[0]), radix)};
  };

  MethodSpec put;
  put.name = "put";
  for (int k = 0; k < num_keys; ++k) {
    for (int v = 1; v <= num_vals; ++v) put.arg_tuples.push_back({k, v});
  }
  put.apply = [radix](int state, const Args& args) -> OpOutcome {
    const int k = static_cast<int>(args[0]);
    const int old = digit(state, k, radix);
    return {with_digit(state, k, radix, static_cast<int>(args[1])), old};
  };

  MethodSpec remove;
  remove.name = "remove";
  for (int k = 0; k < num_keys; ++k) remove.arg_tuples.push_back({k});
  remove.apply = [radix](int state, const Args& args) -> OpOutcome {
    const int k = static_cast<int>(args[0]);
    const int old = digit(state, k, radix);
    return {with_digit(state, k, radix, 0), old};
  };

  // range_sum(lo, hi): encodes "queries over key ranges".
  MethodSpec range_sum;
  range_sum.name = "range_sum";
  for (int lo = 0; lo < num_keys; ++lo) {
    for (int hi = lo; hi < num_keys; ++hi) {
      range_sum.arg_tuples.push_back({lo, hi});
    }
  }
  range_sum.apply = [radix](int state, const Args& args) -> OpOutcome {
    std::int64_t sum = 0;
    for (int k = static_cast<int>(args[0]); k <= static_cast<int>(args[1]);
         ++k) {
      sum = sum * 16 + digit(state, k, radix);  // positional: order-sensitive
    }
    return {state, sum};
  };

  m.methods = {get, put, remove, range_sum};
  m.describe_state = [num_keys, radix](int s) {
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (int k = 0; k < num_keys; ++k) {
      const int d = digit(s, k, radix);
      if (d == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << k << "->" << d;
    }
    os << "}";
    return os.str();
  };
  return m;
}

namespace {
ConflictAbstractionFn ordered_map_ca(int num_locations, bool cover_range) {
  return [num_locations, cover_range](const std::string& method,
                                      const Args& args, int) -> Access {
    Access a;
    const auto stripe = [num_locations](int k) {
      return k % num_locations;  // contiguous small domain: identity mod M
    };
    if (method == "get") {
      a.reads = {stripe(static_cast<int>(args[0]))};
    } else if (method == "put" || method == "remove") {
      a.writes = {stripe(static_cast<int>(args[0]))};
    } else if (method == "range_sum") {
      const int lo = static_cast<int>(args[0]);
      const int hi = static_cast<int>(args[1]);
      if (cover_range) {
        for (int k = lo; k <= hi; ++k) {
          const int s = stripe(k);
          bool seen = false;
          for (int r : a.reads) seen = seen || r == s;
          if (!seen) a.reads.push_back(s);
        }
      } else {
        a.reads = {stripe(lo)};  // broken: ignores the rest of the interval
      }
    }
    return a;
  };
}
}  // namespace

ConflictAbstractionFn ordered_map_ca_interval(int num_locations) {
  return ordered_map_ca(num_locations, /*cover_range=*/true);
}

ConflictAbstractionFn ordered_map_ca_lower_only(int num_locations) {
  return ordered_map_ca(num_locations, /*cover_range=*/false);
}

}  // namespace proust::verify
