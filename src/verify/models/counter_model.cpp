// Bounded model of §3's non-negative counter, plus the paper's conflict
// abstraction (one location ℓ0, threshold 2) and a deliberately broken
// variant used to demonstrate counterexample generation.
#include "verify/model.hpp"

namespace proust::verify {

namespace {
constexpr std::int64_t kOk = 0;
constexpr std::int64_t kErr = -1;
}  // namespace

ModelSpec make_counter_model(int max_value) {
  ModelSpec m;
  m.name = "counter";
  m.num_states = max_value + 1;  // state index == counter value

  MethodSpec incr;
  incr.name = "incr";
  incr.arg_tuples = {{}};
  incr.apply = [max_value](int state, const Args&) -> OpOutcome {
    if (state >= max_value) return {state, kOk};  // clamp (filtered out below)
    return {state + 1, kOk};
  };

  MethodSpec decr;
  decr.name = "decr";
  decr.arg_tuples = {{}};
  decr.apply = [](int state, const Args&) -> OpOutcome {
    if (state == 0) return {state, kErr};  // the §3 error flag
    return {state - 1, kOk};
  };

  m.methods = {incr, decr};
  m.describe_state = [](int s) { return "counter=" + std::to_string(s); };
  // Keep starting states two operations clear of the clamp so every checked
  // pair behaves exactly like the unbounded counter.
  m.state_filter = [max_value](int s) { return s <= max_value - 2; };
  return m;
}

ConflictAbstractionFn counter_ca_paper() {
  return [](const std::string& method, const Args&, int state) -> Access {
    Access a;
    if (state < 2) {
      if (method == "incr") a.reads = {0};
      if (method == "decr") a.writes = {0};
    }
    return a;
  };
}

ConflictAbstractionFn counter_ca_threshold1() {
  return [](const std::string& method, const Args&, int state) -> Access {
    Access a;
    if (state < 1) {  // broken: misses the two-decrements-at-one case
      if (method == "incr") a.reads = {0};
      if (method == "decr") a.writes = {0};
    }
    return a;
  };
}

}  // namespace proust::verify
