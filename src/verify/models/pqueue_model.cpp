// Bounded model of a priority queue (multiset semantics) with the
// two-element abstract state of Listing 3 (location 0 = PQueueMin,
// location 1 = PQueueMultiSet). Includes our implementation's CA and the
// literal Figure 3 CA whose empty-queue insert only *reads* PQueueMin — the
// checker produces the missed insert-vs-min conflict for the latter.
#include "verify/model.hpp"

#include <map>
#include <memory>
#include <sstream>
#include <vector>

namespace proust::verify {

namespace {
constexpr std::int64_t kEmptyRet = -1;
constexpr std::int64_t kFullRet = -2;
constexpr int kMinLoc = 0;
constexpr int kMultiSetLoc = 1;

struct PQStateSpace {
  std::vector<std::vector<int>> states;       // counts per value (1-indexed by value-1)
  std::map<std::vector<int>, int> index;

  PQStateSpace(int num_vals, int max_size) {
    std::vector<int> counts(num_vals, 0);
    enumerate(counts, 0, max_size);
  }

  void enumerate(std::vector<int>& counts, std::size_t pos, int max_size) {
    if (pos == counts.size()) {
      index.emplace(counts, static_cast<int>(states.size()));
      states.push_back(counts);
      return;
    }
    for (int c = 0; c <= max_size; ++c) {
      counts[pos] = c;
      int total = 0;
      for (std::size_t i = 0; i <= pos; ++i) total += counts[i];
      if (total > max_size) break;
      enumerate(counts, pos + 1, max_size);
    }
    counts[pos] = 0;
  }

  int total(int s) const {
    int t = 0;
    for (int c : states[s]) t += c;
    return t;
  }

  /// Smallest present value (1-based), or 0 if empty.
  int min_value(int s) const {
    for (std::size_t i = 0; i < states[s].size(); ++i) {
      if (states[s][i] > 0) return static_cast<int>(i) + 1;
    }
    return 0;
  }
};

std::shared_ptr<const PQStateSpace> space(int num_vals, int max_size) {
  return std::make_shared<const PQStateSpace>(num_vals, max_size);
}
}  // namespace

ModelSpec make_pqueue_model(int num_vals, int max_size) {
  auto sp = space(num_vals, max_size);

  ModelSpec m;
  m.name = "pqueue";
  m.num_states = static_cast<int>(sp->states.size());

  MethodSpec insert;
  insert.name = "insert";
  for (int v = 1; v <= num_vals; ++v) insert.arg_tuples.push_back({v});
  insert.apply = [sp, max_size](int state, const Args& args) -> OpOutcome {
    if (sp->total(state) >= max_size) return {state, kFullRet};
    std::vector<int> counts = sp->states[state];
    counts[static_cast<std::size_t>(args[0] - 1)] += 1;
    return {sp->index.at(counts), 0};
  };

  MethodSpec min;
  min.name = "min";
  min.arg_tuples = {{}};
  min.apply = [sp](int state, const Args&) -> OpOutcome {
    const int v = sp->min_value(state);
    return {state, v == 0 ? kEmptyRet : v};
  };

  MethodSpec remove_min;
  remove_min.name = "removeMin";
  remove_min.arg_tuples = {{}};
  remove_min.apply = [sp](int state, const Args&) -> OpOutcome {
    const int v = sp->min_value(state);
    if (v == 0) return {state, kEmptyRet};
    std::vector<int> counts = sp->states[state];
    counts[static_cast<std::size_t>(v - 1)] -= 1;
    return {sp->index.at(counts), v};
  };

  MethodSpec contains;
  contains.name = "contains";
  for (int v = 1; v <= num_vals; ++v) contains.arg_tuples.push_back({v});
  contains.apply = [sp](int state, const Args& args) -> OpOutcome {
    return {state, sp->states[state][static_cast<std::size_t>(args[0] - 1)] > 0};
  };

  m.methods = {insert, min, remove_min, contains};
  m.describe_state = [sp](int s) {
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (std::size_t i = 0; i < sp->states[s].size(); ++i) {
      for (int c = 0; c < sp->states[s][i]; ++c) {
        if (!first) os << ",";
        first = false;
        os << (i + 1);
      }
    }
    os << "}";
    return os.str();
  };
  // Keep two inserts away from the capacity clamp.
  m.state_filter = [sp, max_size](int s) {
    return sp->total(s) <= max_size - 2;
  };
  return m;
}

namespace {
ConflictAbstractionFn pqueue_ca(int num_vals, int max_size,
                                bool empty_insert_writes_min) {
  auto sp = space(num_vals, max_size);
  return [sp, empty_insert_writes_min](const std::string& method,
                                       const Args& args, int state) -> Access {
    Access a;
    const int cur_min = sp->min_value(state);
    if (method == "insert") {
      a.writes = {kMultiSetLoc};
      const bool lowers = cur_min == 0 || args[0] < cur_min;
      if (cur_min == 0 && !empty_insert_writes_min) {
        a.reads.push_back(kMinLoc);  // Figure 3's getOrElse{Read(PQueueMin)}
      } else if (lowers) {
        a.writes.push_back(kMinLoc);
      } else {
        a.reads.push_back(kMinLoc);
      }
    } else if (method == "min") {
      a.reads = {kMinLoc};
    } else if (method == "removeMin") {
      a.writes = {kMinLoc, kMultiSetLoc};
    } else if (method == "contains") {
      a.reads = {kMultiSetLoc};
    }
    return a;
  };
}
}  // namespace

ConflictAbstractionFn pqueue_ca_ours(int num_vals, int max_size) {
  return pqueue_ca(num_vals, max_size, /*empty_insert_writes_min=*/true);
}

ConflictAbstractionFn pqueue_ca_figure3_literal(int num_vals, int max_size) {
  return pqueue_ca(num_vals, max_size, /*empty_insert_writes_min=*/false);
}

}  // namespace proust::verify
