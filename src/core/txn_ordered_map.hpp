// The Proustian ordered map with an *interval* conflict abstraction — the
// §1 motivating example no prior wrapper system expressed: "in a map,
// queries and updates to non-intersecting key ranges commute."
//
// Keys are striped CONTIGUOUSLY (not hashed): stripe(k) is monotone in k,
// so a range operation's conflict abstraction is the contiguous set of
// stripes its interval covers. A point update Write()s its key's stripe; a
// range query Read()s every covered stripe. Two range queries always
// commute (r/r); a range query conflicts with a point update iff the
// update's stripe is covered — i.e. (up to stripe granularity) iff the key
// ranges intersect. Tightening M trades memory for false conflicts exactly
// as §3's lock-striping discussion describes.
//
// Update strategy: eager with inverses, over the lazy concurrent skip list.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "containers/concurrent_skip_list.hpp"
#include "core/abstract_lock.hpp"
#include "core/committed_size.hpp"
#include "core/read_seq.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"
#include "stm/thread_registry.hpp"

namespace proust::core {

/// Stripe indices are the abstract-lock key domain; identity hash keeps
/// them contiguous in the LAP's region.
struct StripeHasher {
  std::size_t operator()(std::size_t s) const noexcept { return s; }
};

template <class V, LockAllocatorPolicy<std::size_t> Lap>
class TxnOrderedMap {
  using K = long;

 public:
  /// `key_min`/`key_max` bound the expected key space; `stripes` is the
  /// interval-CA granularity M. Keys outside the bounds clamp to the edge
  /// stripes (correct, just coarser there).
  TxnOrderedMap(Lap& lap, K key_min, K key_max, std::size_t stripes)
      : lock_(lap, UpdateStrategy::Eager),
        seqs_(stripes, lap.stm().options().numa_placement),
        key_min_(key_min), key_max_(key_max), stripes_(stripes) {}

  std::optional<V> put(stm::Txn& tx, K key, const V& value) {
    const std::size_t s = stripe_of(key);
    return lock_.apply(
        tx, s, /*write=*/true,
        [&] {
          seqs_.writer_pin(tx, s);
          std::optional<V> ret = map_.put(key, value);
          if (!ret) size_.bump(tx, +1);
          return ret;
        },
        [this, key](const std::optional<V>& old) {
          if (old) {
            map_.put(key, *old);
          } else {
            map_.remove(key);
          }
        });
  }

  std::optional<V> get(stm::Txn& tx, K key) {
    // Optimistic fast path (DESIGN.md §12): the skip list's point lookup is
    // internally safe against concurrent mutators, so the interval stripe's
    // sequence word alone brackets the read.
    const std::size_t s = stripe_of(key);
    if (auto fast = lock_.try_read_unlocked(tx, seqs_.word(s), [&] {
          pin_for_attempt(tx);
          return map_.get(key);
        })) {
      return *fast;
    }
    return lock_.apply(tx, s, /*write=*/false, [&] { return map_.get(key); });
  }

  bool contains(stm::Txn& tx, K key) {
    const std::size_t s = stripe_of(key);
    if (auto fast = lock_.try_read_unlocked(tx, seqs_.word(s), [&] {
          pin_for_attempt(tx);
          return map_.contains(key);
        })) {
      return *fast;
    }
    return lock_.apply(tx, s, /*write=*/false,
                       [&] { return map_.contains(key); });
  }

  std::optional<V> remove(stm::Txn& tx, K key) {
    const std::size_t s = stripe_of(key);
    return lock_.apply(
        tx, s, /*write=*/true,
        [&] {
          seqs_.writer_pin(tx, s);
          std::optional<V> ret = map_.remove(key);
          if (ret) size_.bump(tx, -1);
          return ret;
        },
        [this, key](const std::optional<V>& old) {
          if (old) map_.put(key, *old);
        });
  }

  /// Visit every (key, value) with lo <= key <= hi, transactionally
  /// consistent: the CA reads every stripe the interval covers, so any
  /// committed conflicting update forces this transaction to retry, and
  /// under the pessimistic LAP writers to the range are excluded.
  template <class F>
  void range_for_each(stm::Txn& tx, K lo, K hi, F&& f) {
    acquire_range(tx, lo, hi);
    map_.range_for_each(lo, hi, std::forward<F>(f));
  }

  /// Sum of values in [lo, hi] (requires V to be summable).
  V range_sum(stm::Txn& tx, K lo, K hi) {
    V total{};
    range_for_each(tx, lo, hi, [&](K, const V& v) { total += v; });
    return total;
  }

  /// Number of keys in [lo, hi].
  long range_count(stm::Txn& tx, K lo, K hi) {
    long n = 0;
    range_for_each(tx, lo, hi, [&](K, const V&) { ++n; });
    return n;
  }

  /// Smallest key >= lo (transactionally consistent via the covering-stripe
  /// reads from lo's stripe upward; conservative — reads to key_max_).
  std::optional<K> ceiling_key(stm::Txn& tx, K lo) {
    acquire_range(tx, lo, key_max_);
    return map_.ceiling_key(lo);
  }

  /// Remove and return the entry with the smallest key >= lo (a scheduler's
  /// "claim next job" step). Composed of ceiling_key + remove, so it
  /// inherits their conflict abstraction: reads the stripes from lo upward
  /// (conservative) and writes the claimed key's stripe — two concurrent
  /// pop_firsts over overlapping windows conflict, as they must (they race
  /// for the same minimum), while point updates below lo commute.
  std::optional<std::pair<K, V>> pop_first(stm::Txn& tx, K lo) {
    const std::optional<K> k = ceiling_key(tx, lo);
    if (!k) return std::nullopt;
    std::optional<V> v = remove(tx, *k);
    if (!v) return std::nullopt;  // raced within this txn's own view only
    return std::make_pair(*k, *v);
  }

  long size() const noexcept { return size_.load(); }

  void unsafe_put(K key, const V& value) {
    if (!map_.put(key, value)) size_.unsafe_add(1);
  }

  std::size_t stripes() const noexcept { return stripes_; }

 private:
  /// Amortize the EBR announce fence across the attempt (see
  /// TxnHashMap::pin_for_attempt — same contract: unpin at finish, after
  /// the abort hooks, so rollback inverses retire under this pin).
  void pin_for_attempt(stm::Txn& tx) {
    const unsigned slot = stm::ThreadRegistry::slot();
    if (!map_.reader_pin(slot)) return;  // already ours for this attempt
    tx.on_finish(
        [this, slot](stm::Outcome) { map_.reader_unpin(slot); });
  }

  std::size_t stripe_of(K key) const noexcept {
    const K clamped = std::clamp(key, key_min_, key_max_);
    const unsigned __int128 span =
        static_cast<unsigned __int128>(key_max_ - key_min_) + 1;
    return static_cast<std::size_t>(
        static_cast<unsigned __int128>(clamped - key_min_) * stripes_ / span);
  }

  void acquire_range(stm::Txn& tx, K lo, K hi) {
    if (hi < lo) return;
    const std::size_t first = stripe_of(lo);
    const std::size_t last = stripe_of(hi);
    for (std::size_t s = first; s <= last; ++s) {
      lock_.apply(tx, {Read(s)}, [] {});
    }
  }

  AbstractLock<std::size_t, Lap> lock_;
  containers::ConcurrentSkipList<K, V> map_;
  ReadSeqTable seqs_;  // one word per interval stripe (fast read path)
  CommittedSize size_;
  K key_min_;
  K key_max_;
  std::size_t stripes_;
};

}  // namespace proust::core
