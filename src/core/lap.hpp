// Lock allocator policies (§2): the pluggable concurrency-control half of
// the Proust design space. A LAP maps abstract-lock invocations on keys to
// concrete synchronization:
//
//   OptimisticLap  — a conflict abstraction (§3): an M-slot region of
//                    STM-managed locations; Read(k) becomes a validated STM
//                    read of mem[h(k) mod M], Write(k) becomes an STM write
//                    of a fresh unique stamp. Non-commuting operations are
//                    thereby guaranteed to perform conflicting STM accesses
//                    (Definition 3.1), and the underlying STM detects and
//                    resolves them with its native machinery.
//
//   PessimisticLap — Boosting-style abstract locks: a striped table of
//                    re-entrant reader-writer locks held in two-phase style
//                    and released when the transaction finishes (either
//                    outcome). Acquisition is bounded; a timeout aborts the
//                    transaction, which is how deadlocks among abstract
//                    locks (invisible to the STM's contention manager — the
//                    "weak coupling" §7 laments) are broken.
//
// A LAP satisfies:
//   void acquire(stm::Txn&, const Key&, bool write);   // before the base op
//   void post_op(stm::Txn&, const Key&, bool write);   // after it (lazy CA read-back)
#pragma once

#include <chrono>
#include <concepts>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hashing.hpp"
#include "stm/stm.hpp"
#include "sync/reentrant_rw_lock.hpp"

namespace proust::core {

template <class P, class Key>
concept LockAllocatorPolicy = requires(P p, stm::Txn& tx, const Key& k) {
  { p.acquire(tx, k, true) } -> std::same_as<void>;
  { p.post_op(tx, k, true) } -> std::same_as<void>;
  { p.stm() } -> std::same_as<stm::Stm&>;
};

/// The optimistic LAP: conflict abstraction over an STM-managed region.
/// `M` (the region size) trades memory for false conflicts exactly like
/// lock striping (§3); the striping ablation bench sweeps it.
template <class Key, class Hasher = proust::Hash<Key>>
class OptimisticLap {
 public:
  OptimisticLap(stm::Stm& stm, std::size_t m)
      : stm_(&stm), mem_(next_pow2(m)) {}

  OptimisticLap(const OptimisticLap&) = delete;
  OptimisticLap& operator=(const OptimisticLap&) = delete;

  void acquire(stm::Txn& tx, const Key& key, bool write) {
    stm::Var<std::uint64_t>& loc = slot(key);
    if (write) {
      tx.write(loc, tx.fresh_stamp());
    } else {
      tx.read_validate(loc);
    }
  }

  /// Theorem 5.3's read-after-operation: re-validate that no conflicting
  /// transaction committed between this transaction's shadow-copy snapshot
  /// and now. Called by AbstractLock for write-mode locks under the lazy
  /// update strategy.
  void post_op(stm::Txn& tx, const Key& key, bool /*write*/) {
    tx.read_validate(slot(key));
  }

  stm::Stm& stm() noexcept { return *stm_; }
  std::size_t region_size() const noexcept { return mem_.size(); }

 private:
  stm::Var<std::uint64_t>& slot(const Key& key) {
    return mem_[Hasher{}(key) & (mem_.size() - 1)];
  }

  stm::Stm* stm_;
  std::vector<stm::Var<std::uint64_t>> mem_;
};

/// The pessimistic LAP: striped re-entrant RW abstract locks, two-phase,
/// released on transaction finish. `kind_of(key)` lets a wrapper choose the
/// group discipline per abstract-state element (the PQueueMultiSet trick).
template <class Key, class Hasher = proust::Hash<Key>>
class PessimisticLap {
 public:
  using Clock = std::chrono::steady_clock;

  PessimisticLap(stm::Stm& stm, std::size_t stripes,
                 std::chrono::nanoseconds timeout = std::chrono::milliseconds(2))
      : stm_(&stm), timeout_(timeout) {
    locks_.reserve(next_pow2(stripes));
    for (std::size_t i = 0; i < next_pow2(stripes); ++i) {
      locks_.push_back(std::make_unique<sync::ReentrantRwLock>(
          sync::LockKind::kReaderWriter));
    }
  }

  /// Construct with a per-stripe lock discipline chooser (index → kind).
  template <class KindFn>
  PessimisticLap(stm::Stm& stm, std::size_t stripes, KindFn&& kind_of,
                 std::chrono::nanoseconds timeout)
      : stm_(&stm), timeout_(timeout) {
    const std::size_t n = next_pow2(stripes);
    locks_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      locks_.push_back(std::make_unique<sync::ReentrantRwLock>(kind_of(i)));
    }
  }

  PessimisticLap(const PessimisticLap&) = delete;
  PessimisticLap& operator=(const PessimisticLap&) = delete;

  void acquire(stm::Txn& tx, const Key& key, bool write) {
    sync::ReentrantRwLock& lock = *locks_[stripe(key)];
    remember_for_release(tx, &lock);
    if (!lock.try_acquire(&tx, write, timeout_)) {
      // Deadlock/timeout recovery: abort, drop all abstract locks (via the
      // finish hook), back off, retry.
      tx.retry(stm::AbortReason::AbstractLockTimeout);
    }
  }

  void post_op(stm::Txn&, const Key&, bool) {}  // locks are held to finish

  stm::Stm& stm() noexcept { return *stm_; }

 private:
  std::size_t stripe(const Key& key) const {
    return Hasher{}(key) & (locks_.size() - 1);
  }

  /// Track the stripes this transaction touched; hook their release (both
  /// outcomes) exactly once per transaction.
  void remember_for_release(stm::Txn& tx, sync::ReentrantRwLock* lock) {
    using Touched = std::vector<sync::ReentrantRwLock*>;
    const bool fresh = !tx.has_local(this);
    Touched& touched = tx.local<Touched>(
        static_cast<const void*>(this), [] { return Touched{}; });
    if (fresh) {
      tx.on_finish(
          [&touched, owner = static_cast<const void*>(&tx)](stm::Outcome) {
            for (sync::ReentrantRwLock* l : touched) l->release_all(owner);
          });
    }
    // release_all is idempotent, so occasional duplicates are harmless;
    // still skip the common same-stripe-again case cheaply.
    if (touched.empty() || touched.back() != lock) touched.push_back(lock);
  }

  stm::Stm* stm_;
  std::chrono::nanoseconds timeout_;
  std::vector<std::unique_ptr<sync::ReentrantRwLock>> locks_;
};

}  // namespace proust::core
