// Lock allocator policies (§2): the pluggable concurrency-control half of
// the Proust design space. A LAP maps abstract-lock invocations on keys to
// concrete synchronization:
//
//   OptimisticLap  — a conflict abstraction (§3): an M-slot region of
//                    STM-managed locations; Read(k) becomes a validated STM
//                    read of mem[h(k) mod M], Write(k) becomes an STM write
//                    of a fresh unique stamp. Non-commuting operations are
//                    thereby guaranteed to perform conflicting STM accesses
//                    (Definition 3.1), and the underlying STM detects and
//                    resolves them with its native machinery.
//
//   PessimisticLap — Boosting-style abstract locks: a striped table of
//                    re-entrant reader-writer locks held in two-phase style
//                    and released when the transaction finishes (either
//                    outcome). Acquisition is bounded; a timeout aborts the
//                    transaction, which is how deadlocks among abstract
//                    locks (invisible to the STM's contention manager — the
//                    "weak coupling" §7 laments) are broken.
//
// A LAP satisfies:
//   void acquire(stm::Txn&, const Key&, bool write);   // before the base op
//   void post_op(stm::Txn&, const Key&, bool write);   // after it (lazy CA read-back)
#pragma once

#include <chrono>
#include <concepts>
#include <cstdint>
#include <new>
#include <vector>

#include "common/hashing.hpp"
#include "common/topology.hpp"
#include "stm/stm.hpp"
#include "sync/reentrant_rw_lock.hpp"

namespace proust::core {

template <class P, class Key>
concept LockAllocatorPolicy = requires(P p, stm::Txn& tx, const Key& k) {
  { p.acquire(tx, k, true) } -> std::same_as<void>;
  { p.post_op(tx, k, true) } -> std::same_as<void>;
  { p.stm() } -> std::same_as<stm::Stm&>;
};

/// The optimistic LAP: conflict abstraction over an STM-managed region.
/// `M` (the region size) trades memory for false conflicts exactly like
/// lock striping (§3); the striping ablation bench sweeps it.
template <class Key, class Hasher = proust::Hash<Key>>
class OptimisticLap {
 public:
  OptimisticLap(stm::Stm& stm, std::size_t m)
      : stm_(&stm),
        mem_(next_pow2(m), stm.options().numa_placement ==
                               topo::NumaPlacement::Interleave) {}

  OptimisticLap(const OptimisticLap&) = delete;
  OptimisticLap& operator=(const OptimisticLap&) = delete;

  void acquire(stm::Txn& tx, const Key& key, bool write) {
    stm::Var<std::uint64_t>& loc = slot(key);
    if (write) {
      // Validated read BEFORE the blind stamp write: the wrapped operation
      // is about to observe base state for this abstract region (a memo
      // line's first-touch read, an eager mutation's old value), so any
      // commit already serialized before this transaction — wv <= rv —
      // must have finished applying. The validation enforces exactly that:
      // a committer still inside its commit window holds this stripe's
      // lock (ReadLocked -> abort), and one that released it has replayed.
      // Without this, an injected delay between a peer's wv generation and
      // its replay lets the operation read pre-commit state that the
      // post_op read-after cannot distinguish (wv <= rv validates clean).
      tx.read_validate(loc);
      tx.write(loc, tx.fresh_stamp());
    } else {
      tx.read_validate(loc);
    }
  }

  /// Theorem 5.3's read-after-operation: re-validate that no conflicting
  /// transaction committed between this transaction's shadow-copy snapshot
  /// and now. Called by AbstractLock for write-mode locks under the lazy
  /// update strategy.
  void post_op(stm::Txn& tx, const Key& key, bool /*write*/) {
    tx.read_validate(slot(key));
  }

  stm::Stm& stm() noexcept { return *stm_; }
  std::size_t region_size() const noexcept { return mem_.size(); }

 private:
  stm::Var<std::uint64_t>& slot(const Key& key) {
    return mem_[Hasher{}(key) & (mem_.size() - 1)];
  }

  stm::Stm* stm_;
  // NUMA-aware backing for the conflict-abstraction region: identical to a
  // heap array under placement Off, page-interleaved across nodes under
  // Interleave (the region is read/written by every thread, so striping it
  // spreads the orec traffic instead of loading one node's controller).
  topo::NumaArray<stm::Var<std::uint64_t>> mem_;
};

/// The pessimistic LAP: striped re-entrant RW abstract locks, two-phase,
/// released on transaction finish. `kind_of(key)` lets a wrapper choose the
/// group discipline per abstract-state element (the PQueueMultiSet trick).
///
/// Per-transaction hold state (re-entrancy counters, the set of stripes to
/// release at finish) lives in the transaction's arena as LockHold records —
/// one per distinct stripe touched — so an acquire is: one reverse scan of a
/// tiny flat array, then either a thread-local counter bump (mode already
/// held) or the lock's single-CAS group join. Release walks the records and
/// drops each held stripe exactly once.
template <class Key, class Hasher = proust::Hash<Key>>
class PessimisticLap {
 public:
  using Clock = std::chrono::steady_clock;

  /// Passing `kDefaultTimeout` (the default) takes the acquisition timeout
  /// from `stm.options().lap_timeout`, with optional per-thread jitter
  /// (options().lap_timeout_jitter). An explicit timeout is used verbatim —
  /// no jitter — so tests can pin exact timing through this path.
  static constexpr std::chrono::nanoseconds kDefaultTimeout{-1};

  PessimisticLap(stm::Stm& stm, std::size_t stripes,
                 std::chrono::nanoseconds timeout = kDefaultTimeout)
      : stm_(&stm),
        locks_(next_pow2(stripes),
               [](std::size_t) { return sync::LockKind::kReaderWriter; },
               stm.options().numa_placement ==
                   topo::NumaPlacement::Interleave) {
    resolve_timeout(timeout);
  }

  /// Construct with a per-stripe lock discipline chooser (index → kind).
  template <class KindFn>
    requires std::invocable<KindFn&, std::size_t>
  PessimisticLap(stm::Stm& stm, std::size_t stripes, KindFn&& kind_of,
                 std::chrono::nanoseconds timeout = kDefaultTimeout)
      : stm_(&stm),
        locks_(next_pow2(stripes), kind_of,
               stm.options().numa_placement ==
                   topo::NumaPlacement::Interleave) {
    resolve_timeout(timeout);
  }

  PessimisticLap(const PessimisticLap&) = delete;
  PessimisticLap& operator=(const PessimisticLap&) = delete;

  void acquire(stm::Txn& tx, const Key& key, bool write) {
    // Honor a pending contention-manager abort request before joining a
    // stripe's wait queue — dying here (holding nothing new) is cheaper
    // than dying after a futex wait, and it is how a doomed transaction
    // stuck behind abstract locks stays responsive to the CM.
    tx.cm_poll();
    // Forced-timeout injection exercises the recovery path below without
    // waiting out a real timeout.
    if (tx.chaos_timeout_point(stm::ChaosPoint::LapAcquire)) {
      tx.retry(stm::AbortReason::AbstractLockTimeout);
    }
    sync::ReentrantRwLock& lock = locks_[stripe(key)];
    stm::TxnArena::LockHold& h = hold_for(tx, &lock);
    if (!lock.try_acquire(h.readers, h.writers, write, acquire_timeout())) {
      // Deadlock/timeout recovery: abort, drop all abstract locks (via the
      // finish hook), back off, retry. The contention manager's lock
      // arbiter (sync/cm_hook.hpp) can force this same path early while a
      // starving elder is published.
      tx.retry(stm::AbortReason::AbstractLockTimeout);
    }
    // Watchdog diagnostics: how many distinct stripes this attempt holds.
    tx.cm_note_stripes(static_cast<std::uint32_t>(tx.lock_holds().size()));
  }

  void post_op(stm::Txn&, const Key&, bool) {}  // locks are held to finish

  stm::Stm& stm() noexcept { return *stm_; }

 private:
  /// Contiguous cache-line-aligned stripe array. ReentrantRwLock is neither
  /// copyable nor movable, so the table placement-constructs into raw
  /// storage instead of using std::vector.
  class StripeTable {
   public:
    template <class KindFn>
    StripeTable(std::size_t n, KindFn&& kind_of, bool interleave = false)
        : n_(n),
          align_(interleave ? std::size_t{4096}
                            : alignof(sync::ReentrantRwLock)) {
      raw_ = ::operator new(n * sizeof(sync::ReentrantRwLock),
                            std::align_val_t{align_});
      locks_ = static_cast<sync::ReentrantRwLock*>(raw_);
      if (interleave) {
        // Apply the policy before the constructing first touch so the lock
        // words land where mbind says, spreading abstract-lock traffic
        // across memory controllers.
        topo::interleave_pages(raw_, n * sizeof(sync::ReentrantRwLock),
                               topo::Topology::system().node_count);
      }
      for (std::size_t i = 0; i < n; ++i) {
        ::new (static_cast<void*>(locks_ + i)) sync::ReentrantRwLock(kind_of(i));
      }
    }
    ~StripeTable() {
      for (std::size_t i = n_; i-- > 0;) locks_[i].~ReentrantRwLock();
      ::operator delete(raw_, std::align_val_t{align_});
    }
    StripeTable(const StripeTable&) = delete;
    StripeTable& operator=(const StripeTable&) = delete;

    sync::ReentrantRwLock& operator[](std::size_t i) noexcept {
      return locks_[i];
    }
    std::size_t size() const noexcept { return n_; }

   private:
    void* raw_;
    sync::ReentrantRwLock* locks_;
    std::size_t n_;
    std::size_t align_;
  };

  std::size_t stripe(const Key& key) const {
    return Hasher{}(key) & (locks_.size() - 1);
  }

  void resolve_timeout(std::chrono::nanoseconds timeout) {
    if (timeout == kDefaultTimeout) {
      timeout_ = stm_->options().lap_timeout;
      jitter_ = stm_->options().lap_timeout_jitter;
    } else {
      timeout_ = timeout;
      jitter_ = false;
    }
  }

  /// The calling thread's effective acquisition timeout. With jitter on,
  /// each registry slot gets a fixed point in [t − t/4, t + t/4]: symmetric
  /// abstract-lock deadlocks are broken by both parties timing out, and
  /// identical timeouts make them abort in lockstep and re-collide on the
  /// retry, while jittered ones let one party win the second race.
  std::chrono::nanoseconds acquire_timeout() const {
    if (!jitter_) return timeout_;
    std::uint64_t x = stm::ThreadRegistry::slot() + 1;
    x *= 0x9E3779B97F4A7C15ULL;
    x ^= x >> 32;
    const std::int64_t t = timeout_.count();
    const std::int64_t span = t / 2;  // jitter window width: [−t/4, +t/4]
    if (span <= 0) return timeout_;
    const auto off = static_cast<std::int64_t>(x % (span + 1)) - t / 4;
    return std::chrono::nanoseconds{t + off};
  }

  /// The transaction's hold record for `lock`, created (with a one-time
  /// finish hook for this LAP) on first touch of any of its stripes.
  stm::TxnArena::LockHold& hold_for(stm::Txn& tx, void* lock) {
    std::vector<stm::TxnArena::LockHold>& holds = tx.lock_holds();
    bool lap_seen = false;
    // Newest-first: the stripe just touched is overwhelmingly the next one
    // touched again, and transactions hold few distinct stripes.
    for (std::size_t i = holds.size(); i-- > 0;) {
      if (holds[i].lock == lock) return holds[i];
      lap_seen = lap_seen || holds[i].group == this;
    }
    if (!lap_seen) {
      // First stripe of this LAP this attempt: hook the two-phase release
      // (both outcomes). One record per distinct stripe makes the walk
      // release each held stripe exactly once.
      tx.on_finish([this, &tx](stm::Outcome) {
        for (stm::TxnArena::LockHold& h : tx.lock_holds()) {
          if (h.group == this) {
            static_cast<sync::ReentrantRwLock*>(h.lock)->release_all(
                h.readers, h.writers);
          }
        }
      });
    }
    holds.push_back({this, lock, 0, 0});
    return holds.back();
  }

  stm::Stm* stm_;
  std::chrono::nanoseconds timeout_{};
  bool jitter_ = false;
  StripeTable locks_;
};

}  // namespace proust::core
