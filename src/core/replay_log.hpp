// Replay wrappers and shadow copies (§4): the machinery behind the lazy
// update strategy. Pending ADT operations are queued in a per-transaction
// log; the transaction observes their results through a *shadow copy*; at
// commit the log is applied to the shared base structure behind the STM's
// native locks (our Txn::on_commit_locked hook). On abort the log simply
// dies with the transaction attempt.
//
// Two shadow-copy implementations, as in the paper:
//   SnapshotReplayLog — for bases with fast-snapshot semantics (SnapshotHamt,
//                       CowHeap): speculative operations run on an O(1)
//                       snapshot; the logged operations are replayed onto the
//                       shared copy at commit.
//   MemoReplayLog     — for key-value bases whose operation results are
//                       computable from the initial state plus pending
//                       operations: a transaction-local memo table per key.
//                       Optionally *log-combining*: replay one synthetic
//                       update carrying only the final state of each touched
//                       key (the optimization at the bottom of Figure 4).
//
// All log state — op entries, memo tables, dirty sets — is carved from the
// transaction's scratch arena (Txn::scratch()), whose blocks are retained
// across attempts and transactions: in steady state the lazy path performs
// zero heap allocations (tests/stm_alloc_test.cpp pins this). Logs are
// transaction-locals, so their destructors run before the arena rewinds.
//
// Snapshot logs coordinate with concurrent commits through the owning
// wrapper's CommitFence: a snapshot must not observe a base that is missing
// a logically-committed, not-yet-replayed commit, nor half of a replay in
// flight (see stm/commit_fence.hpp for the hazard).
#pragma once

#include <optional>
#include <type_traits>
#include <utility>

#include "common/arena_containers.hpp"
#include "stm/commit_fence.hpp"
#include "stm/stm.hpp"

namespace proust::core {

template <class Base>
class SnapshotReplayLog {
 public:
  using Snapshot = typename Base::Snapshot;

  SnapshotReplayLog(Base& base, stm::CommitFence& fence, BumpArena& scratch)
      : base_(&base), fence_(&fence),
        snap_(fence.consistent([&base] { return base.snapshot(); })),
        scratch_(&scratch), log_(scratch) {}

  ~SnapshotReplayLog() {
    log_.for_each([](Entry& e) {
      if (e.destroy != nullptr) e.destroy(e.obj);
    });
  }

  Snapshot& shadow() noexcept { return snap_; }
  const Snapshot& shadow() const noexcept { return snap_; }

  /// Run `op` against the shadow copy now (producing the value the
  /// transaction observes) and queue it for replay against the base at
  /// commit. `op` must be a generic callable valid on both Snapshot& and
  /// Base& — the wrappers' operations are, by construction. The op object
  /// is copied into the scratch arena as a tagged (apply, destroy, state)
  /// entry; no type-erased allocation happens.
  template <class Op>
  auto execute(Op op) {
    void* mem = scratch_->allocate(sizeof(Op), alignof(Op));
    Op* stored = ::new (mem) Op(op);
    void (*destroy)(void*) = nullptr;
    if constexpr (!std::is_trivially_destructible_v<Op>) {
      destroy = [](void* p) { static_cast<Op*>(p)->~Op(); };
    }
    log_.emplace_back(
        Entry{[](void* p, Base& b) { (void)(*static_cast<Op*>(p))(b); },
              destroy, stored});
    if constexpr (std::is_void_v<decltype(op(snap_))>) {
      op(snap_);
    } else {
      return op(snap_);
    }
  }

  stm::CommitFence& fence() noexcept { return *fence_; }

  /// Apply the queued operations to the shared base. Called from
  /// Txn::on_commit_locked; must not throw.
  void replay() noexcept {
    // Self-bracketed for direct (non-transactional) use; inside a commit
    // the STM's own fence bracket already encloses this (entries nest).
    stm::CommitFence::Guard guard(*fence_);
    Base& base = *base_;
    log_.for_each([&base](Entry& e) { e.apply(e.obj, base); });
  }

  std::size_t pending() const noexcept { return log_.size(); }

 private:
  struct Entry {
    void (*apply)(void*, Base&);
    void (*destroy)(void*);  // null for trivially destructible ops
    void* obj;
  };

  Base* base_;
  stm::CommitFence* fence_;
  Snapshot snap_;
  BumpArena* scratch_;
  ArenaChunkList<Entry> log_;
};

/// Snapshot shadow copy specialized for map-like bases, with optional log
/// combining — §9's future-work extension "from memoized replays to
/// snapshot replays", implemented. Without combining it replays the
/// operation sequence (like SnapshotReplayLog); with combining it replays
/// one synthetic update per dirty key, reading the key's final value out of
/// the snapshot.
template <class Base, class K, class V>
class SnapshotMapReplayLog {
 public:
  using Snapshot = typename Base::Snapshot;

  SnapshotMapReplayLog(Base& base, stm::CommitFence& fence, bool combine,
                       BumpArena& scratch)
      : base_(&base), fence_(&fence),
        snap_(fence.consistent([&base] { return base.snapshot(); })),
        combine_(combine), dirty_(scratch), ops_(scratch) {}

  Snapshot& shadow() noexcept { return snap_; }
  const Snapshot& shadow() const noexcept { return snap_; }

  std::optional<V> get(const K& key) const { return snap_.get(key); }
  bool contains(const K& key) const { return snap_.contains(key); }

  std::optional<V> put(const K& key, const V& value) {
    mark_dirty(key);
    if (!combine_) ops_.emplace_back(Op{key, value});
    return snap_.put(key, value);
  }

  std::optional<V> remove(const K& key) {
    mark_dirty(key);
    if (!combine_) ops_.emplace_back(Op{key, std::nullopt});
    return snap_.remove(key);
  }

  stm::CommitFence& fence() noexcept { return *fence_; }

  void replay() noexcept {
    stm::CommitFence::Guard guard(*fence_);
    if (combine_) {
      dirty_.for_each([this](const K& key, const Empty&) {
        if (std::optional<V> v = snap_.get(key)) {
          base_->put(key, *v);
        } else {
          base_->remove(key);
        }
      });
    } else {
      ops_.for_each([this](const Op& op) {
        if (op.value) {
          base_->put(op.key, *op.value);
        } else {
          base_->remove(op.key);
        }
      });
    }
  }

  std::size_t pending() const noexcept {
    return combine_ ? dirty_.size() : ops_.size();
  }

 private:
  struct Empty {};
  struct Op {
    K key;
    std::optional<V> value;
  };

  void mark_dirty(const K& key) {
    if (!combine_) return;
    bool inserted = false;
    dirty_.get_or_emplace(key, inserted);
  }

  Base* base_;
  stm::CommitFence* fence_;
  Snapshot snap_;
  bool combine_;
  ArenaFlatMap<K, Empty> dirty_;
  ArenaChunkList<Op> ops_;
};

/// Memoizing shadow copy for map-like bases (get/put/remove on K→V).
template <class Base, class K, class V>
class MemoReplayLog {
 public:
  MemoReplayLog(Base& base, stm::CommitFence& fence, bool combine,
                BumpArena& scratch)
      : base_(&base), fence_(&fence), combine_(combine), cache_(scratch),
        ops_(scratch) {}

  std::optional<V> get(const K& key) { return line_for(key).value; }

  bool contains(const K& key) { return get(key).has_value(); }

  std::optional<V> put(const K& key, const V& value) {
    Line& line = line_for(key);
    std::optional<V> old = line.value;
    line.value = value;
    mark_dirty(line);
    if (!combine_) ops_.emplace_back(Op{key, value});
    return old;
  }

  std::optional<V> remove(const K& key) {
    Line& line = line_for(key);
    std::optional<V> old = line.value;
    line.value = std::nullopt;
    mark_dirty(line);
    if (!combine_) ops_.emplace_back(Op{key, std::nullopt});
    return old;
  }

  stm::CommitFence& fence() noexcept { return *fence_; }

  /// Commit-time application. With combining, one synthetic update per dirty
  /// key (final state only); without, the full operation sequence — the cost
  /// difference is what the Figure 4 bottom block measures.
  void replay() noexcept {
    // Bracketed like the snapshot logs': memo replays also land after the
    // logical commit, and the optimistic read fast path (DESIGN.md §12)
    // detects in-flight or completed replays through this fence word.
    stm::CommitFence::Guard guard(*fence_);
    if (combine_) {
      cache_.for_each([this](const K& key, Line& line) {
        if (!line.dirty) return;
        if (line.value) {
          base_->put(key, *line.value);
        } else {
          base_->remove(key);
        }
      });
    } else {
      ops_.for_each([this](const Op& op) {
        if (op.value) {
          base_->put(op.key, *op.value);
        } else {
          base_->remove(op.key);
        }
      });
    }
  }

  std::size_t pending() const noexcept {
    return combine_ ? dirty_count_ : ops_.size();
  }

 private:
  struct Line {
    std::optional<V> value;  // nullopt = absent / (pending) removed
    bool dirty = false;
  };
  struct Op {
    K key;
    std::optional<V> value;  // nullopt = remove
  };

  /// The memo line for `key`, reading the base exactly once on first touch.
  Line& line_for(const K& key) {
    bool inserted = false;
    Line& line = cache_.get_or_emplace(key, inserted);
    if (inserted) line.value = base_->get(key);
    return line;
  }

  void mark_dirty(Line& line) noexcept {
    if (!line.dirty) {
      line.dirty = true;
      ++dirty_count_;
    }
  }

  Base* base_;
  stm::CommitFence* fence_;
  bool combine_;
  ArenaFlatMap<K, Line> cache_;
  ArenaChunkList<Op> ops_;
  std::size_t dirty_count_ = 0;
};

/// Per-wrapper handle managing the transaction-local lifecycle of a replay
/// log: lazily constructed on the first update (ReplayLog.construct's
/// TxnLocal in Figure 2b), with commit-time replay registered exactly once.
template <class Log>
class TxnLogHandle {
 public:
  /// Get or create this wrapper's log within `tx`. `make` builds the log on
  /// first use.
  template <class Make>
  Log& log(stm::Txn& tx, Make&& make) {
    const bool fresh = !tx.has_local(this);
    if (fresh) {
      // Pin the transaction's snapshot BEFORE taking the shadow copy: the
      // Theorem 5.3 read-after checks must detect any conflicting commit
      // that postdates it, so the read version may no longer slide forward
      // (see Txn::freeze_snapshot).
      tx.freeze_snapshot();
    }
    Log& l = tx.local<Log>(this, std::forward<Make>(make));
    if (fresh) {
      if constexpr (requires { l.fence(); }) {
        // Snapshot logs: the commit path must hold the wrapper's fence from
        // wv generation until the replay lands (commit_fence.hpp).
        tx.on_commit_locked([&l] { l.replay(); }, l.fence());
      } else {
        tx.on_commit_locked([&l] { l.replay(); });
      }
    }
    return l;
  }

  /// The readOnly optimization of Figure 2b: if this transaction has not
  /// touched the wrapper yet, run `f` directly against `base` (no log, no
  /// snapshot); otherwise run it against the established shadow.
  template <class Base, class Make, class F>
  auto read_only(stm::Txn& tx, Base& base, Make&& make, F&& f) {
    if (!tx.has_local(this)) return f(base);
    return f(log(tx, std::forward<Make>(make)).shadow());
  }

  bool engaged(const stm::Txn& tx) const { return tx.has_local(this); }
};

}  // namespace proust::core
