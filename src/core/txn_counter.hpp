// The §3 running example: a non-negative counter with a one-location
// conflict abstraction.
//
//   incr(): read(ℓ0)  whenever the counter is below 2;
//   decr(): write(ℓ0) whenever the counter is below 2.
//
// Rationale (from the paper): at values ≥ 2 all operation pairs commute and
// no STM location is touched at all; at 0/1 a decr may fail or change
// another decr's outcome, so decrs write (w/w conflict) and incrs read
// (r/w conflict against a decr). The conflict-abstraction checker in
// src/verify/ proves this CA correct over a bounded state space and refutes
// the obvious "threshold 1" variant.
#pragma once

#include <atomic>

#include "core/abstract_lock.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"

namespace proust::core {

/// Abstract-state key domain: the single element ℓ0.
enum class CounterState : std::size_t { L0 = 0 };

struct CounterStateHasher {
  std::size_t operator()(CounterState) const noexcept { return 0; }
};

template <LockAllocatorPolicy<CounterState> Lap>
class TxnCounter {
 public:
  /// The CA guard from §3 ("whenever the counter is below 2").
  static constexpr long kThreshold = 2;

  explicit TxnCounter(Lap& lap, long initial = 0)
      : lock_(lap, UpdateStrategy::Eager), value_(initial) {}

  void incr(stm::Txn& tx) {
    auto op = [&] { value_.fetch_add(1, std::memory_order_acq_rel); };
    auto inv = [this] { value_.fetch_sub(1, std::memory_order_acq_rel); };
    if (value_.load(std::memory_order_acquire) < kThreshold) {
      lock_.apply(tx, {Read(CounterState::L0)}, op, inv);
    } else {
      lock_.apply(tx, {}, op, inv);
    }
  }

  /// Returns false if the decrement would take the counter below zero (the
  /// paper's error flag); the counter is left unchanged in that case.
  bool decr(stm::Txn& tx) {
    auto op = [&] {
      long cur = value_.load(std::memory_order_acquire);
      while (cur > 0) {
        if (value_.compare_exchange_weak(cur, cur - 1,
                                         std::memory_order_acq_rel)) {
          return true;
        }
      }
      return false;
    };
    auto inv = [this](bool decremented) {
      if (decremented) value_.fetch_add(1, std::memory_order_acq_rel);
    };
    if (value_.load(std::memory_order_acquire) < kThreshold) {
      return lock_.apply(tx, {Write(CounterState::L0)}, op, inv);
    }
    return lock_.apply(tx, {}, op, inv);
  }

  long value() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  AbstractLock<CounterState, Lap> lock_;
  std::atomic<long> value_;
};

}  // namespace proust::core
