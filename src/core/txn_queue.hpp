// A Proustian FIFO queue (an extension beyond the paper's worked examples,
// in the spirit of §9's "wrap arbitrary data structures"). Abstract state is
// decomposed like the priority queue's: a Head element and a Tail element.
//
// Conflict abstraction:
//   enq(v) : Write(Tail)                         — enqueues at the tail;
//   deq()  : Write(Head), plus Read(Tail) when the queue is empty at
//            invocation — deq on an empty queue does not commute with enq
//            (the enq decides whether deq returns a value).
// Two enqs at the tail target Tail; under the pessimistic LAP the Tail
// stripe uses the group discipline so enqs don't serialize... except that
// FIFO enq/enq do NOT commute (they decide relative order), so here Tail is
// a plain writer-exclusive stripe. The contrast with the priority queue's
// MultiSet is deliberate: the abstract-state decomposition makes such
// distinctions explicit per element.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "core/abstract_lock.hpp"
#include "core/committed_size.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"

namespace proust::core {

enum class QueueState : std::size_t { Head = 0, Tail = 1 };

struct QueueStateHasher {
  std::size_t operator()(QueueState s) const noexcept {
    return static_cast<std::size_t>(s);
  }
};

template <class T, LockAllocatorPolicy<QueueState> Lap>
class TxnQueue {
  /// The thread-safe base: a mutex-protected deque with identity-tagged
  /// entries so enq's inverse can excise exactly its own element.
  class Base {
   public:
    std::uint64_t push_back(const T& v) {
      std::lock_guard<std::mutex> g(mu_);
      const std::uint64_t id = next_id_++;
      q_.push_back(Entry{v, id});
      return id;
    }
    void push_front(const T& v, std::uint64_t id) {
      std::lock_guard<std::mutex> g(mu_);
      q_.push_front(Entry{v, id});
    }
    std::optional<std::pair<T, std::uint64_t>> pop_front() {
      std::lock_guard<std::mutex> g(mu_);
      if (q_.empty()) return std::nullopt;
      Entry e = q_.front();
      q_.pop_front();
      return std::make_pair(e.value, e.id);
    }
    bool erase_by_id(std::uint64_t id) {
      std::lock_guard<std::mutex> g(mu_);
      for (auto it = q_.rbegin(); it != q_.rend(); ++it) {
        if (it->id == id) {
          q_.erase(std::next(it).base());
          return true;
        }
      }
      return false;
    }
    std::size_t size() const {
      std::lock_guard<std::mutex> g(mu_);
      return q_.size();
    }

   private:
    struct Entry {
      T value;
      std::uint64_t id;
    };
    mutable std::mutex mu_;
    std::deque<Entry> q_;
    std::uint64_t next_id_ = 1;
  };

 public:
  explicit TxnQueue(Lap& lap) : lock_(lap, UpdateStrategy::Eager) {}

  void enq(stm::Txn& tx, const T& value) {
    lock_.apply(
        tx, {Write(QueueState::Tail)},
        [&] {
          const std::uint64_t id = q_.push_back(value);
          size_.bump(tx, +1);
          return id;
        },
        [this](std::uint64_t id) { q_.erase_by_id(id); });
  }

  std::optional<T> deq(stm::Txn& tx) {
    // Emptiness guard evaluated at invocation: a deq that observes an empty
    // queue does not commute with enq, so it must Read(Tail). The guard is
    // racy (the queue may drain between the check and the pop), so if the
    // pop unexpectedly finds the queue empty we *grow* the lock set with
    // Read(Tail) — still two-phase — and pop once more under it.
    const bool maybe_empty = q_.size() == 0;
    auto op = [&]() -> std::optional<std::pair<T, std::uint64_t>> {
      auto front = q_.pop_front();
      if (front) size_.bump(tx, -1);
      return front;
    };
    auto inv = [this](const std::optional<std::pair<T, std::uint64_t>>& e) {
      if (e) q_.push_front(e->first, e->second);
    };
    std::optional<std::pair<T, std::uint64_t>> r;
    if (maybe_empty) {
      r = lock_.apply(tx, {Write(QueueState::Head), Read(QueueState::Tail)},
                      op, inv);
    } else {
      r = lock_.apply(tx, {Write(QueueState::Head)}, op, inv);
      if (!r) {
        r = lock_.apply(tx, {Read(QueueState::Tail)}, op, inv);
      }
    }
    if (!r) return std::nullopt;
    return r->first;
  }

  long size() const noexcept { return size_.load(); }

  void unsafe_enq(const T& value) {
    q_.push_back(value);
    size_.unsafe_add(1);
  }

 private:
  AbstractLock<QueueState, Lap> lock_;
  Base q_;
  CommittedSize size_;
};

}  // namespace proust::core
