// The two axes of the Proust design space (§2, Figure 1 left table):
//   * concurrency control — chosen by the LockAllocatorPolicy (lap.hpp):
//     optimistic (conflict abstraction over STM locations) or pessimistic
//     (abstract re-entrant RW locks);
//   * update strategy — chosen per wrapped data structure: eager (mutate the
//     base immediately, registering inverses as rollback handlers) or lazy
//     (queue updates in a replay log against a shadow copy, apply at commit).
// Prior systems fixed one point each (Boosting = pessimistic/eager,
// Predication ≈ optimistic/eager-through-STM, OTB = optimistic); Proust lets
// them be mixed and matched.
#pragma once

#include <cstdint>

namespace proust::core {

enum class UpdateStrategy : std::uint8_t { Eager, Lazy };

constexpr const char* to_string(UpdateStrategy s) noexcept {
  return s == UpdateStrategy::Eager ? "Eager" : "Lazy";
}

/// One abstract-lock request: a key of the wrapper's abstract-state domain
/// plus the access mode (Listing 1's LockFor / Read / Write).
template <class Key>
struct LockFor {
  Key key;
  bool write;
};

template <class Key>
constexpr LockFor<Key> Read(Key key) noexcept {
  return {key, false};
}

template <class Key>
constexpr LockFor<Key> Write(Key key) noexcept {
  return {key, true};
}

}  // namespace proust::core
