// A Proustian double-ended queue. Abstract state decomposes into Front and
// Back elements (plus the implicit middle): push/pop at opposite ends
// commute whenever the deque is long enough that they cannot observe each
// other — the same near-emptiness analysis as the FIFO queue's Head/Tail,
// applied symmetrically.
//
// Conflict abstraction:
//   push_front / pop_front : Write(Front), plus Read(Back) when the deque
//                            holds at most one element at invocation (the
//                            two ends can interact);
//   push_back / pop_back   : symmetric.
// The emptiness guard is racy, so pops that unexpectedly find the deque
// empty grow their lock set with the opposite end's Read and retry once —
// the same two-phase growth trick as TxnQueue::deq.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "core/abstract_lock.hpp"
#include "core/committed_size.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"

namespace proust::core {

enum class DequeState : std::size_t { Front = 0, Back = 1 };

struct DequeStateHasher {
  std::size_t operator()(DequeState s) const noexcept {
    return static_cast<std::size_t>(s);
  }
};

template <class T, LockAllocatorPolicy<DequeState> Lap>
class TxnDeque {
  /// Thread-safe base: a mutex-protected deque with identity-tagged entries
  /// for exact inverse removal.
  class Base {
   public:
    std::uint64_t push(bool front, const T& v) {
      std::lock_guard<std::mutex> g(mu_);
      const std::uint64_t id = next_id_++;
      if (front) {
        q_.push_front(Entry{v, id});
      } else {
        q_.push_back(Entry{v, id});
      }
      return id;
    }
    void push_with_id(bool front, const T& v, std::uint64_t id) {
      std::lock_guard<std::mutex> g(mu_);
      if (front) {
        q_.push_front(Entry{v, id});
      } else {
        q_.push_back(Entry{v, id});
      }
    }
    std::optional<std::pair<T, std::uint64_t>> pop(bool front) {
      std::lock_guard<std::mutex> g(mu_);
      if (q_.empty()) return std::nullopt;
      Entry e = front ? q_.front() : q_.back();
      if (front) {
        q_.pop_front();
      } else {
        q_.pop_back();
      }
      return std::make_pair(e.value, e.id);
    }
    bool erase_by_id(std::uint64_t id) {
      std::lock_guard<std::mutex> g(mu_);
      for (auto it = q_.begin(); it != q_.end(); ++it) {
        if (it->id == id) {
          q_.erase(it);
          return true;
        }
      }
      return false;
    }
    std::size_t size() const {
      std::lock_guard<std::mutex> g(mu_);
      return q_.size();
    }

   private:
    struct Entry {
      T value;
      std::uint64_t id;
    };
    mutable std::mutex mu_;
    std::deque<Entry> q_;
    std::uint64_t next_id_ = 1;
  };

 public:
  explicit TxnDeque(Lap& lap) : lock_(lap, UpdateStrategy::Eager) {}

  void push_front(stm::Txn& tx, const T& v) { push(tx, /*front=*/true, v); }
  void push_back(stm::Txn& tx, const T& v) { push(tx, /*front=*/false, v); }

  std::optional<T> pop_front(stm::Txn& tx) { return pop(tx, /*front=*/true); }
  std::optional<T> pop_back(stm::Txn& tx) { return pop(tx, /*front=*/false); }

  long size() const noexcept { return size_.load(); }

  void unsafe_push_back(const T& v) {
    q_.push(false, v);
    size_.unsafe_add(1);
  }

 private:
  static DequeState end_of(bool front) noexcept {
    return front ? DequeState::Front : DequeState::Back;
  }
  static DequeState other_end(bool front) noexcept {
    return front ? DequeState::Back : DequeState::Front;
  }

  void push(stm::Txn& tx, bool front, const T& v) {
    const bool near_empty = q_.size() <= 1;
    auto op = [&] {
      const std::uint64_t id = q_.push(front, v);
      size_.bump(tx, +1);
      return id;
    };
    auto inv = [this](std::uint64_t id) { q_.erase_by_id(id); };
    if (near_empty) {
      lock_.apply(tx, {Write(end_of(front)), Read(other_end(front))}, op, inv);
    } else {
      lock_.apply(tx, {Write(end_of(front))}, op, inv);
    }
  }

  std::optional<T> pop(stm::Txn& tx, bool front) {
    const bool near_empty = q_.size() <= 1;
    auto op = [&]() -> std::optional<std::pair<T, std::uint64_t>> {
      auto e = q_.pop(front);
      if (e) size_.bump(tx, -1);
      return e;
    };
    auto inv = [this, front](const std::optional<std::pair<T, std::uint64_t>>& e) {
      if (e) q_.push_with_id(front, e->first, e->second);
    };
    std::optional<std::pair<T, std::uint64_t>> r;
    if (near_empty) {
      r = lock_.apply(tx, {Write(end_of(front)), Read(other_end(front))}, op,
                      inv);
    } else {
      r = lock_.apply(tx, {Write(end_of(front))}, op, inv);
      if (!r) {
        // Raced to empty: grow the lock set with the other end and retry
        // once (the pop now conflicts with pushes at either end).
        r = lock_.apply(tx, {Read(other_end(front))}, op, inv);
      }
    }
    if (!r) return std::nullopt;
    return r->first;
  }

  AbstractLock<DequeState, Lap> lock_;
  Base q_;
  CommittedSize size_;
};

}  // namespace proust::core
