// A Proustian set, demonstrating that wrappers compose: it is a thin
// abstract-type adapter over the eager Proustian map (element → unit), so it
// inherits the map's conflict abstraction (per-element striping), update
// strategy, and optimistic read fast path (contains() rides the map's
// sequence-validated unlocked lookup — DESIGN.md §12) for free.
#pragma once

#include "core/txn_hash_map.hpp"

namespace proust::core {

template <class K, LockAllocatorPolicy<K> Lap>
class TxnSet {
 public:
  explicit TxnSet(Lap& lap, std::size_t stripes = 64) : map_(lap, stripes) {}

  /// Returns true if the element was newly added.
  bool add(stm::Txn& tx, const K& key) {
    return !map_.put(tx, key, char{1}).has_value();
  }

  /// Returns true if the element was present and removed.
  bool remove(stm::Txn& tx, const K& key) {
    return map_.remove(tx, key).has_value();
  }

  bool contains(stm::Txn& tx, const K& key) {
    return map_.contains(tx, key);
  }

  long size() const noexcept { return map_.size(); }

  void unsafe_add(const K& key) { map_.unsafe_put(key, char{1}); }

 private:
  TxnHashMap<K, char, Lap> map_;
};

}  // namespace proust::core
