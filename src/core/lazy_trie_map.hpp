// The lazy Proustian map with *snapshot* shadow copies (Figure 2b's
// LazyTrieMap): wraps the snapshottable HAMT (our stand-in for Scala's
// concurrent TrieMap). The first update in a transaction takes an O(1)
// snapshot; speculative operations run against it; the operation log is
// replayed onto the shared trie behind the STM's commit locks.
#pragma once

#include <optional>

#include "containers/snapshot_hamt.hpp"
#include "core/abstract_lock.hpp"
#include "core/committed_size.hpp"
#include "core/replay_log.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"

namespace proust::core {

template <class K, class V, LockAllocatorPolicy<K> Lap>
class LazyTrieMap {
  using Base = containers::SnapshotHamt<K, V>;
  using Log = SnapshotMapReplayLog<Base, K, V>;

 public:
  /// `combine_log` enables the snapshot-replay log-combining extension
  /// (§9 future work): replay one synthetic update per dirty key, with the
  /// final value read from the snapshot.
  explicit LazyTrieMap(Lap& lap, bool combine_log = false)
      : lock_(lap, UpdateStrategy::Lazy), combine_(combine_log) {}

  std::optional<V> put(stm::Txn& tx, const K& key, const V& value) {
    return lock_.apply(tx, key, /*write=*/true, [&] {
      std::optional<V> ret = log(tx).put(key, value);
      if (!ret) size_.bump(tx, +1);
      return ret;
    });
  }

  std::optional<V> get(stm::Txn& tx, const K& key) {
    // Optimistic fast path (DESIGN.md §12): the trie only changes inside
    // replay fence brackets, so with no log engaged a quiescent-and-unmoved
    // fence word brackets an unlocked point read of the shared trie.
    if (!handle_.engaged(tx)) {
      if (auto fast = lock_.try_read_unlocked(
              tx, fence_, [&] { return map_.get(key); })) {
        return *fast;
      }
    }
    return lock_.apply(tx, key, /*write=*/false, [&] {
      return read_only(tx, [&](const auto& t) { return t.get(key); });
    });
  }

  bool contains(stm::Txn& tx, const K& key) {
    if (!handle_.engaged(tx)) {
      if (auto fast = lock_.try_read_unlocked(
              tx, fence_, [&] { return map_.contains(key); })) {
        return *fast;
      }
    }
    return lock_.apply(tx, key, /*write=*/false, [&] {
      return read_only(tx, [&](const auto& t) { return t.contains(key); });
    });
  }

  std::optional<V> remove(stm::Txn& tx, const K& key) {
    return lock_.apply(tx, key, /*write=*/true, [&] {
      std::optional<V> ret = log(tx).remove(key);
      if (ret) size_.bump(tx, -1);
      return ret;
    });
  }

  long size() const noexcept { return size_.load(); }

  void unsafe_put(const K& key, const V& value) {
    if (!map_.put(key, value)) size_.unsafe_add(1);
  }

 private:
  Log& log(stm::Txn& tx) {
    return handle_.log(tx, [this, &tx] {
      return Log(map_, fence_, combine_, tx.scratch());
    });
  }

  /// Figure 2b's readOnly: avoid initializing the log (and snapshotting)
  /// until a replay is actually necessary.
  template <class F>
  auto read_only(stm::Txn& tx, F&& f) {
    if (!handle_.engaged(tx)) return f(map_);
    return f(log(tx).shadow());
  }

  AbstractLock<K, Lap> lock_;
  TxnLogHandle<Log> handle_;
  bool combine_;
  Base map_;
  stm::CommitFence fence_;  // snapshots vs concurrent commits (commit_fence.hpp)
  CommittedSize size_;
};

}  // namespace proust::core
