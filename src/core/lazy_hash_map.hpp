// The lazy Proustian map with a *memoizing* shadow copy (§4 "Memoization",
// the paper's LazyHashMap over ConcurrentHashMap). Updates are queued in a
// transaction-local memo log; results are computed from the memo table plus
// the unmodified backing map; the log is replayed behind the STM's commit
// locks. With `combine_log`, replay applies only the final state of each
// touched key — the optimization measured at the bottom of Figure 4.
#pragma once

#include <optional>

#include "containers/striped_hash_map.hpp"
#include "core/abstract_lock.hpp"
#include "core/committed_size.hpp"
#include "core/replay_log.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"

namespace proust::core {

template <class K, class V, LockAllocatorPolicy<K> Lap>
class LazyHashMap {
  using Base = containers::StripedHashMap<K, V>;
  using Log = MemoReplayLog<Base, K, V>;

 public:
  explicit LazyHashMap(Lap& lap, bool combine_log = false,
                       std::size_t stripes = 64)
      : lock_(lap, UpdateStrategy::Lazy), combine_(combine_log),
        map_(stripes) {}

  std::optional<V> put(stm::Txn& tx, const K& key, const V& value) {
    return lock_.apply(tx, key, /*write=*/true, [&] {
      std::optional<V> ret = log(tx).put(key, value);
      if (!ret) size_.bump(tx, +1);
      return ret;
    });
  }

  std::optional<V> get(stm::Txn& tx, const K& key) {
    // Optimistic fast path (DESIGN.md §12): with no log engaged, the base
    // only changes inside replay fence brackets, so a quiescent-and-unmoved
    // fence word brackets an unlocked read. An engaged log means pending
    // writes (read-your-writes must go through the shadow) — locked path.
    if (!handle_.engaged(tx)) {
      if (auto fast = lock_.try_read_unlocked(
              tx, fence_, [&] { return map_.get(key); })) {
        return *fast;
      }
    }
    return lock_.apply(tx, key, /*write=*/false, [&]() -> std::optional<V> {
      // readOnly optimization: no log yet means the backing map is still
      // this transaction's consistent view.
      if (!handle_.engaged(tx)) return map_.get(key);
      return log(tx).get(key);
    });
  }

  bool contains(stm::Txn& tx, const K& key) {
    if (!handle_.engaged(tx)) {
      if (auto fast = lock_.try_read_unlocked(
              tx, fence_, [&] { return map_.contains(key); })) {
        return *fast;
      }
    }
    return lock_.apply(tx, key, /*write=*/false, [&] {
      if (!handle_.engaged(tx)) return map_.contains(key);
      return log(tx).contains(key);
    });
  }

  std::optional<V> remove(stm::Txn& tx, const K& key) {
    return lock_.apply(tx, key, /*write=*/true, [&] {
      std::optional<V> ret = log(tx).remove(key);
      if (ret) size_.bump(tx, -1);
      return ret;
    });
  }

  long size() const noexcept { return size_.load(); }

  void unsafe_put(const K& key, const V& value) {
    if (!map_.put(key, value)) size_.unsafe_add(1);
  }

 private:
  Log& log(stm::Txn& tx) {
    return handle_.log(
        tx, [this, &tx] { return Log(map_, fence_, combine_, tx.scratch()); });
  }

  AbstractLock<K, Lap> lock_;
  TxnLogHandle<Log> handle_;
  bool combine_;
  Base map_;
  stm::CommitFence fence_;  // brackets replays; fast-path read validation
  CommittedSize size_;
};

}  // namespace proust::core
