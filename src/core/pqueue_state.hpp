// The priority queue's abstract state decomposition (Listing 3): every
// operation is characterized by its effect on PQueueMin (the minimum) and
// PQueueMultiSet (the bag of elements). Expressing commutativity over these
// two abstract-state elements takes a number of rules linear in the state
// space, instead of quadratic in the number of methods (§6).
#pragma once

#include <cstddef>

#include "sync/reentrant_rw_lock.hpp"

namespace proust::core {

enum class PQueueState : std::size_t { Min = 0, MultiSet = 1 };

/// Identity hasher so a 2-stripe LAP maps each abstract-state element to its
/// own lock/CA slot.
struct PQueueStateHasher {
  std::size_t operator()(PQueueState s) const noexcept {
    return static_cast<std::size_t>(s);
  }
};

/// Per-stripe lock discipline for the pessimistic LAP: PQueueMin is a
/// classic readers/writer lock; PQueueMultiSet admits multiple writers OR
/// multiple readers but not both — commuting inserts need not serialize.
inline sync::LockKind pqueue_lock_kind(std::size_t stripe) noexcept {
  return stripe == static_cast<std::size_t>(PQueueState::MultiSet)
             ? sync::LockKind::kGroup
             : sync::LockKind::kReaderWriter;
}

}  // namespace proust::core
