// Per-stripe sequence words backing the optimistic read fast path
// (DESIGN.md §12). A wrapper pairs a ReadSeqTable with its base structure:
// read-only operations traverse the base without the abstract lock, bracketed
// by loads of the stripe's word (stable = even), and mutators *pin* the word
// odd across their base mutation — including, for eager wrappers, the window
// in which an abort's inverse operations run, since a fast reader must not
// observe transient state that a later rollback will retract.
//
// The pin is transactional: the first pin of a stripe in an attempt bumps the
// word odd and records a SeqHold in the transaction arena; the table's finish
// hook (one per table per attempt, both outcomes — the PessimisticLap release
// pattern) bumps every held word back even *after* the abort hooks ran, so
// the odd interval covers mutation and rollback alike. Re-pinning a stripe
// the attempt already holds is a no-op, keeping parity correct for wrappers
// whose put() touches a stripe several times.
//
// Memory ordering: the pin is a seq_cst fetch_add so it is ordered before
// the mutator's base writes; the release bump is a release fetch_add so the
// writes are ordered before it. A reader loads the word (acquire), reads the
// base under the base's own synchronization (shard mutex, node locks, EBR —
// the fast path removes the *abstract* lock, never the base's internal one),
// and revalidates behind an acquire fence (Txn::admit_unlocked_read). Any
// overlap moves the word and the read is discarded or the attempt aborts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "common/topology.hpp"
#include "stm/stm.hpp"

namespace proust::core {

/// With `placement == NumaPlacement::Replicate` the table keeps one word
/// bank per NUMA node, each allocated on its node: readers bracket against
/// their local bank (no cross-node loads on the fast path) and mutators pin
/// the stripe's word in *every* bank, so any reader's bracketing word moves
/// whenever the stripe is mutated. With Interleave the single bank's pages
/// are spread across nodes; with Off (default) the layout and costs are
/// exactly the historical single-array ones. `forced_banks` overrides the
/// detected node count so replication is testable on single-node hosts.
class ReadSeqTable {
 public:
  explicit ReadSeqTable(
      std::size_t stripes,
      topo::NumaPlacement placement = topo::NumaPlacement::Off,
      unsigned forced_banks = 0)
      : mask_(next_pow2(stripes) - 1) {
    nbanks_ = 1;
    if (placement == topo::NumaPlacement::Replicate) {
      nbanks_ = forced_banks != 0 ? forced_banks
                                  : topo::Topology::system().node_count;
      if (nbanks_ == 0) nbanks_ = 1;
    }
    const std::size_t n = mask_ + 1;
    banks_ = new Word*[nbanks_];
    for (unsigned b = 0; b < nbanks_; ++b) {
      void* raw = topo::alloc_onnode(
          n * sizeof(Word), nbanks_ > 1 ? static_cast<int>(b) : -1);
      if (placement == topo::NumaPlacement::Interleave) {
        topo::interleave_pages(raw, n * sizeof(Word),
                               topo::Topology::system().node_count);
      }
      Word* w = static_cast<Word*>(raw);
      for (std::size_t i = 0; i < n; ++i) ::new (w + i) Word{};
      banks_[b] = w;
    }
  }

  ReadSeqTable(const ReadSeqTable&) = delete;
  ReadSeqTable& operator=(const ReadSeqTable&) = delete;
  ~ReadSeqTable() {
    for (unsigned b = 0; b < nbanks_; ++b) {
      topo::free_onnode(banks_[b], (mask_ + 1) * sizeof(Word));
    }
    delete[] banks_;
  }

  std::size_t stripes() const noexcept { return mask_ + 1; }
  unsigned banks() const noexcept { return nbanks_; }

  /// The stripe's word for fast-path bracketing — the calling thread's
  /// local bank under replication. Callers hash with the same function as
  /// the base structure so stripe == base shard (a coarser or finer mapping
  /// is still correct, just noisier). A stale node cache (an unpinned
  /// thread that migrated) selects a remote bank, which costs locality
  /// only: every bank observes every mutation of the stripe.
  const std::atomic<std::uint64_t>* word(std::size_t stripe) const noexcept {
    return &reader_bank()[stripe & mask_].v;
  }

  /// Reader-side entry load.
  std::uint64_t load(std::size_t stripe) const noexcept {
    return reader_bank()[stripe & mask_].v.load(std::memory_order_acquire);
  }

  static constexpr bool stable(std::uint64_t w) noexcept {
    return (w & 1) == 0;
  }

  /// Mutator-side: pin `stripe` odd for the rest of the attempt (released
  /// even by this table's finish hook, after any abort inverses ran). Call
  /// before the first base mutation of the stripe; idempotent per attempt.
  void writer_pin(stm::Txn& tx, std::size_t stripe) {
    std::atomic<std::uint64_t>* w0 = &banks_[0][stripe & mask_].v;
    std::vector<stm::TxnArena::SeqHold>& holds = tx.seq_holds();
    bool table_seen = false;
    // Newest-first: the stripe just pinned is overwhelmingly the next one
    // touched again, and attempts pin few distinct stripes. Bank-0's word
    // is the dedup canary — replica words are only ever pinned together
    // with it (bank 0 is pushed last, so the scan meets it first).
    for (std::size_t i = holds.size(); i-- > 0;) {
      if (holds[i].word == w0) return;  // already odd for this attempt
      table_seen = table_seen || holds[i].group == this;
    }
    if (!table_seen) {
      // First stripe of this table this attempt: hook the release (both
      // outcomes). Finish hooks run after abort hooks, so the odd interval
      // covers the inverse operations of an eager rollback.
      tx.on_finish([this, &tx](stm::Outcome) {
        for (stm::TxnArena::SeqHold& h : tx.seq_holds()) {
          if (h.group == this && h.word != nullptr) {
            h.word->fetch_add(1, std::memory_order_release);
            h.word = nullptr;  // released; reset_attempt asserts this
          }
        }
      });
    }
    // Pin every bank: whichever replica a reader brackets against, the
    // stripe's mutation makes it unstable.
    for (unsigned b = nbanks_; b-- > 0;) {
      std::atomic<std::uint64_t>* w = &banks_[b][stripe & mask_].v;
      w->fetch_add(1, std::memory_order_seq_cst);  // odd: mutation in flight
      holds.push_back({this, w});
    }
  }

 private:
  static std::size_t next_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  // One word per cache line: a mutator's pin must not false-share with
  // readers validating neighboring stripes.
  struct alignas(stm::kCacheLine) Word {
    std::atomic<std::uint64_t> v{0};
  };

  Word* reader_bank() const noexcept {
    return nbanks_ == 1
               ? banks_[0]
               : banks_[static_cast<unsigned>(topo::cached_node()) % nbanks_];
  }

  std::size_t mask_;
  Word** banks_ = nullptr;
  unsigned nbanks_ = 1;
};

}  // namespace proust::core
