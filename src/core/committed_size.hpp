// Reified committed size (Listing 2's committedSize). Size is deliberately
// *not* part of the conflict-abstracted abstract state — otherwise every
// size-changing operation would conflict with every other, serializing
// update-heavy workloads. Instead each transaction accumulates a local delta
// that is folded into an atomic counter after the commit point; aborted
// attempts drop their delta with the transaction locals.
#pragma once

#include <atomic>

#include "stm/stm.hpp"

namespace proust::core {

class CommittedSize {
 public:
  long load() const noexcept { return n_.load(std::memory_order_acquire); }

  /// Record a +1/-1 change that becomes visible iff `tx` commits.
  void bump(stm::Txn& tx, long d) {
    const bool fresh = !tx.has_local(this);
    long& delta = tx.local<long>(this, [] { return 0L; });
    if (fresh) {
      tx.on_commit([this, &delta] {
        n_.fetch_add(delta, std::memory_order_acq_rel);
      });
    }
    delta += d;
  }

  /// Non-transactional adjustment (quiescent setup only).
  void unsafe_add(long d) noexcept {
    n_.fetch_add(d, std::memory_order_acq_rel);
  }

 private:
  std::atomic<long> n_{0};
};

}  // namespace proust::core
