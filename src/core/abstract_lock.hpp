// AbstractLock (Listing 1): the single entry point through which a Proustian
// wrapper runs a base-structure operation. It
//   1. acquires the requested abstract locks via the LAP (for the optimistic
//      LAP this *is* the conflict-abstraction write/read of §3);
//   2. runs the operation;
//   3. under the eager strategy, registers the caller's inverse as a
//      rollback handler (run in reverse order on abort, while the
//      transaction's synchronization is still held);
//   4. under the lazy strategy, performs the Theorem 5.3 read-after-op on
//      each write-mode lock's CA location.
//
// The choice of optimistic vs pessimistic conflict resolution stays with the
// LockAllocatorPolicy passed at construction, exactly as in the paper.
#pragma once

#include <initializer_list>
#include <type_traits>
#include <utility>

#include "core/lap.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"

namespace proust::core {

struct NoInverse {};

template <class Key, LockAllocatorPolicy<Key> Lap>
class AbstractLock {
 public:
  AbstractLock(Lap& lap, UpdateStrategy strategy) noexcept
      : lap_(&lap), strategy_(strategy) {}

  UpdateStrategy strategy() const noexcept { return strategy_; }
  Lap& lap() noexcept { return *lap_; }

  /// apply(tx, {locks...})(op) — no inverse (reads, or lazy updates whose
  /// rollback is "drop the replay log").
  template <class F>
  auto apply(stm::Txn& tx, std::initializer_list<LockFor<Key>> locks, F&& op) {
    return apply(tx, locks, std::forward<F>(op), NoInverse{});
  }

  /// apply(tx, {locks...})(op)(inverse) — eager updates. `inverse` receives
  /// the operation's result (like Listing 1's invF: Z => Unit) and must
  /// restore the base structure's abstract state.
  template <class F, class Inv>
  auto apply(stm::Txn& tx, std::initializer_list<LockFor<Key>> locks, F&& op,
             Inv&& inverse) {
    for (const LockFor<Key>& l : locks) lap_->acquire(tx, l.key, l.write);

    using R = std::invoke_result_t<F&>;
    if constexpr (std::is_void_v<R>) {
      op();
      if constexpr (!std::is_same_v<std::decay_t<Inv>, NoInverse>) {
        tx.on_abort([inv = std::forward<Inv>(inverse)]() { inv(); });
      }
      read_after(tx, locks);
    } else {
      R result = op();
      if constexpr (!std::is_same_v<std::decay_t<Inv>, NoInverse>) {
        tx.on_abort(
            [inv = std::forward<Inv>(inverse), result]() { inv(result); });
      }
      read_after(tx, locks);
      return result;
    }
  }

 private:
  void read_after(stm::Txn& tx, std::initializer_list<LockFor<Key>> locks) {
    if (strategy_ != UpdateStrategy::Lazy) return;
    for (const LockFor<Key>& l : locks) {
      if (l.write) lap_->post_op(tx, l.key, l.write);
    }
  }

  Lap* lap_;
  UpdateStrategy strategy_;
};

}  // namespace proust::core
