// AbstractLock (Listing 1): the single entry point through which a Proustian
// wrapper runs a base-structure operation. It
//   1. acquires the requested abstract locks via the LAP (for the optimistic
//      LAP this *is* the conflict-abstraction write/read of §3);
//   2. runs the operation;
//   3. under the eager strategy, registers the caller's inverse as a
//      rollback handler (run in reverse order on abort, while the
//      transaction's synchronization is still held);
//   4. under the lazy strategy, performs the Theorem 5.3 read-after-op on
//      each write-mode lock's CA location.
//
// The choice of optimistic vs pessimistic conflict resolution stays with the
// LockAllocatorPolicy passed at construction, exactly as in the paper.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <type_traits>
#include <utility>

#include "core/lap.hpp"
#include "core/update_strategy.hpp"
#include "stm/commit_fence.hpp"
#include "stm/stm.hpp"

namespace proust::core {

struct NoInverse {};

template <class Key, LockAllocatorPolicy<Key> Lap>
class AbstractLock {
 public:
  AbstractLock(Lap& lap, UpdateStrategy strategy) noexcept
      : lap_(&lap), strategy_(strategy) {}

  UpdateStrategy strategy() const noexcept { return strategy_; }
  Lap& lap() noexcept { return *lap_; }

  /// apply(tx, {locks...})(op) — no inverse (reads, or lazy updates whose
  /// rollback is "drop the replay log").
  template <class F>
  auto apply(stm::Txn& tx, std::initializer_list<LockFor<Key>> locks, F&& op) {
    return apply(tx, locks, std::forward<F>(op), NoInverse{});
  }

  /// apply(tx, {locks...})(op)(inverse) — eager updates. `inverse` receives
  /// the operation's result (like Listing 1's invF: Z => Unit) and must
  /// restore the base structure's abstract state.
  template <class F, class Inv>
  auto apply(stm::Txn& tx, std::initializer_list<LockFor<Key>> locks, F&& op,
             Inv&& inverse) {
    for (const LockFor<Key>& l : locks) lap_->acquire(tx, l.key, l.write);

    using R = std::invoke_result_t<F&>;
    if constexpr (std::is_void_v<R>) {
      op();
      if constexpr (!std::is_same_v<std::decay_t<Inv>, NoInverse>) {
        tx.on_abort([inv = std::forward<Inv>(inverse)]() { inv(); });
      }
      read_after(tx, locks);
    } else {
      R result = op();
      if constexpr (!std::is_same_v<std::decay_t<Inv>, NoInverse>) {
        tx.on_abort(
            [inv = std::forward<Inv>(inverse), result]() { inv(result); });
      }
      read_after(tx, locks);
      return result;
    }
  }

  /// Single-lock apply, key by const reference. The initializer-list form
  /// copies the key into a LockFor<Key> per call, which heap-allocates for
  /// heavyweight keys (std::string past SSO); the wrappers' single-key hot
  /// paths use this overload instead.
  template <class F>
  auto apply(stm::Txn& tx, const Key& key, bool write, F&& op) {
    return apply(tx, key, write, std::forward<F>(op), NoInverse{});
  }

  template <class F, class Inv>
  auto apply(stm::Txn& tx, const Key& key, bool write, F&& op, Inv&& inverse) {
    lap_->acquire(tx, key, write);

    using R = std::invoke_result_t<F&>;
    if constexpr (std::is_void_v<R>) {
      op();
      if constexpr (!std::is_same_v<std::decay_t<Inv>, NoInverse>) {
        tx.on_abort([inv = std::forward<Inv>(inverse)]() { inv(); });
      }
      if (strategy_ == UpdateStrategy::Lazy && write) {
        lap_->post_op(tx, key, write);
      }
    } else {
      R result = op();
      if constexpr (!std::is_same_v<std::decay_t<Inv>, NoInverse>) {
        tx.on_abort(
            [inv = std::forward<Inv>(inverse), result]() { inv(result); });
      }
      if (strategy_ == UpdateStrategy::Lazy && write) {
        lap_->post_op(tx, key, write);
      }
      return result;
    }
  }

  // --- Optimistic read fast path (DESIGN.md §12) --------------------------
  // Run a read-only operation against the base with NO abstract lock: load
  // the bracketing word, require it stable, run `op` (which must rely only
  // on the base's internal synchronization), then hand the observed word to
  // the transaction for admission. Engaged optional = the result is as good
  // as a locked read (the admission recorded it for commit revalidation);
  // nullopt = discard the result and take the locked slow path. Aborts
  // propagate (a previously admitted read failed revalidation).

  /// Eager wrappers: bracketed by a ReadSeqTable stripe word that mutators
  /// pin odd across mutation + rollback.
  template <class F>
  auto try_read_unlocked(stm::Txn& tx,
                         const std::atomic<std::uint64_t>* word, F&& op)
      -> std::optional<std::invoke_result_t<F&>> {
    if (!tx.fast_read_eligible()) return std::nullopt;
    if (tx.chaos_fastpath_fallback()) [[unlikely]] {
      tx.note_fastpath_fallback();
      return std::nullopt;
    }
    const std::uint64_t s0 = word->load(std::memory_order_acquire);
    if ((s0 & 1) != 0) {  // a mutator is pinned on this stripe
      tx.note_fastpath_fallback();
      return std::nullopt;
    }
    auto result = op();
    if (!tx.admit_unlocked_read(word, s0)) {
      tx.note_fastpath_fallback();
      return std::nullopt;
    }
    return result;
  }

  /// Lazy wrappers: the base only changes inside commit-fence brackets
  /// (replay application), so a quiescent-and-unmoved fence word brackets
  /// the read. Callers must additionally hold no engaged replay log for
  /// this structure (read-your-writes goes through the log).
  template <class F>
  auto try_read_unlocked(stm::Txn& tx, const stm::CommitFence& fence, F&& op)
      -> std::optional<std::invoke_result_t<F&>> {
    if (!tx.fast_read_eligible()) return std::nullopt;
    if (tx.chaos_fastpath_fallback()) [[unlikely]] {
      tx.note_fastpath_fallback();
      return std::nullopt;
    }
    const std::uint64_t s0 = fence.word();
    if (!stm::CommitFence::quiescent(s0)) {
      tx.note_fastpath_fallback();
      return std::nullopt;
    }
    auto result = op();
    if (!tx.admit_unlocked_fence_read(&fence, s0)) {
      tx.note_fastpath_fallback();
      return std::nullopt;
    }
    return result;
  }

 private:
  void read_after(stm::Txn& tx, std::initializer_list<LockFor<Key>> locks) {
    if (strategy_ != UpdateStrategy::Lazy) return;
    for (const LockFor<Key>& l : locks) {
      if (l.write) lap_->post_op(tx, l.key, l.write);
    }
  }

  Lap* lap_;
  UpdateStrategy strategy_;
};

}  // namespace proust::core
