// The lazy Proustian priority queue (§4/§6): snapshot shadow copies over the
// copy-on-write heap. This is the configuration the paper highlights as out
// of reach for original Boosting — removeMin has no efficient inverse, so an
// eager strategy is awkward, but the lazy strategy only needs the COW base's
// O(1) snapshot.
#pragma once

#include <functional>
#include <optional>

#include "containers/cow_heap.hpp"
#include "core/abstract_lock.hpp"
#include "core/committed_size.hpp"
#include "core/pqueue_state.hpp"
#include "core/replay_log.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"

namespace proust::core {

template <class T, LockAllocatorPolicy<PQueueState> Lap,
          class Compare = std::less<T>>
class LazyPriorityQueue {
  using Base = containers::CowHeap<T, Compare>;
  using Log = SnapshotReplayLog<Base>;

 public:
  explicit LazyPriorityQueue(Lap& lap) : lock_(lap, UpdateStrategy::Lazy) {}

  void insert(stm::Txn& tx, const T& value) {
    const std::optional<T> cur = min(tx);
    const bool lowers_min = !cur || Compare{}(value, *cur);
    lock_.apply(
        tx,
        {Write(PQueueState::MultiSet),
         lowers_min ? Write(PQueueState::Min) : Read(PQueueState::Min)},
        [&] {
          log(tx).execute([value](auto& t) { t.insert(value); });
          size_.bump(tx, +1);
        });
  }

  std::optional<T> min(stm::Txn& tx) {
    // Optimistic fast path (DESIGN.md §12): the heap only changes inside
    // replay fence brackets, so with no log engaged a quiescent-and-unmoved
    // fence word brackets an unlocked peek of the shared heap.
    if (!handle_.engaged(tx)) {
      if (auto fast = lock_.try_read_unlocked(
              tx, fence_, [&] { return heap_.peek_min(); })) {
        return *fast;
      }
    }
    return lock_.apply(tx, {Read(PQueueState::Min)}, [&] {
      return read_only(tx, [](const auto& t) { return t.peek_min(); });
    });
  }

  std::optional<T> remove_min(stm::Txn& tx) {
    return lock_.apply(
        tx, {Write(PQueueState::Min), Write(PQueueState::MultiSet)}, [&] {
          std::optional<T> ret =
              log(tx).execute([](auto& t) { return t.remove_min(); });
          if (ret) size_.bump(tx, -1);
          return ret;
        });
  }

  bool contains(stm::Txn& tx, const T& value) {
    return lock_.apply(tx, {Read(PQueueState::MultiSet)}, [&] {
      return read_only(tx, [&value](const auto& t) { return t.contains(value); });
    });
  }

  long size() const noexcept { return size_.load(); }

  void unsafe_insert(const T& value) {
    heap_.insert(value);
    size_.unsafe_add(1);
  }

 private:
  Log& log(stm::Txn& tx) {
    return handle_.log(
        tx, [this, &tx] { return Log(heap_, fence_, tx.scratch()); });
  }

  template <class F>
  auto read_only(stm::Txn& tx, F&& f) {
    if (!handle_.engaged(tx)) return f(heap_);
    return f(log(tx).shadow());
  }

  AbstractLock<PQueueState, Lap> lock_;
  TxnLogHandle<Log> handle_;
  Base heap_;
  stm::CommitFence fence_;  // snapshots vs concurrent commits (commit_fence.hpp)
  CommittedSize size_;
};

}  // namespace proust::core
