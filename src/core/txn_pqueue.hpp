// The eager Proustian priority queue (Figure 3), backed by a
// BlockingPriorityQueue of lazily-deletable cells — the same lazy-deletion
// trick the Boosting paper uses, which gives insert() an O(1) inverse
// (tombstone the cell) where the base container only offers O(n) removal.
//
// Lock requests follow Listing 3/Figure 3: insert takes Write(PQueueMultiSet)
// plus Write(PQueueMin) if it lowers the minimum, else Read(PQueueMin).
// Deviation from Figure 3 (documented in DESIGN.md): inserting into an
// *empty* queue also takes Write(PQueueMin) — the figure's getOrElse falls
// back to Read, but insert into an empty queue does not commute with min()
// or removeMin(), and our conflict-abstraction checker exhibits the
// counterexample (see tests/verify_test.cpp).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>

#include "containers/blocking_pqueue.hpp"
#include "core/abstract_lock.hpp"
#include "core/committed_size.hpp"
#include "core/pqueue_state.hpp"
#include "core/read_seq.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"

namespace proust::core {

template <class T, LockAllocatorPolicy<PQueueState> Lap,
          class Compare = std::less<T>>
class TxnPriorityQueue {
  struct Cell {
    explicit Cell(const T& v) : value(v) {}
    T value;
    std::atomic<bool> deleted{false};
  };
  using CellPtr = std::shared_ptr<Cell>;

  /// Order by value, tie-broken by cell identity so that remove_one() on the
  /// base removes exactly the intended cell.
  struct CellCompare {
    bool operator()(const CellPtr& a, const CellPtr& b) const {
      Compare less{};
      if (less(a->value, b->value)) return true;
      if (less(b->value, a->value)) return false;
      return a.get() < b.get();
    }
  };

 public:
  explicit TxnPriorityQueue(Lap& lap)
      : lock_(lap, UpdateStrategy::Eager), seqs_(1) {}

  void insert(stm::Txn& tx, const T& value) {
    const std::optional<T> cur = min(tx);
    const bool lowers_min = !cur || Compare{}(value, *cur);
    lock_.apply(
        tx,
        {Write(PQueueState::MultiSet),
         lowers_min ? Write(PQueueState::Min) : Read(PQueueState::Min)},
        [&] {
          seqs_.writer_pin(tx, 0);
          CellPtr cell = std::make_shared<Cell>(value);
          pq_.add(cell);
          size_.bump(tx, +1);
          return cell;
        },
        [](const CellPtr& cell) {
          // Inverse: logical deletion (Figure 3's `_.delete`).
          cell->deleted.store(true, std::memory_order_release);
        });
  }

  std::optional<T> min(stm::Txn& tx) {
    // Optimistic fast path (DESIGN.md §12): a single sequence word brackets
    // the whole queue (its abstract state has one hot component — the
    // minimum). A tombstoned top cell forces the locked path, whose cleanup
    // mutates the base.
    bool dirty = false;
    if (auto fast = lock_.try_read_unlocked(
            tx, seqs_.word(0), [&]() -> std::optional<T> {
              std::optional<CellPtr> top = pq_.peek();
              if (!top) return std::nullopt;
              if ((*top)->deleted.load(std::memory_order_acquire)) {
                dirty = true;
                return std::nullopt;
              }
              return (*top)->value;
            });
        fast && !dirty) {
      return *fast;
    }
    return lock_.apply(tx, {Read(PQueueState::Min)},
                       [&]() -> std::optional<T> {
                         for (;;) {
                           std::optional<CellPtr> top = pq_.peek();
                           if (!top) return std::nullopt;
                           if (!(*top)->deleted.load(std::memory_order_acquire))
                             return (*top)->value;
                           pq_.remove_one(*top);  // physical cleanup
                         }
                       });
  }

  std::optional<T> remove_min(stm::Txn& tx) {
    return lock_.apply(
        tx, {Write(PQueueState::Min), Write(PQueueState::MultiSet)},
        [&]() -> std::optional<T> {
          seqs_.writer_pin(tx, 0);
          for (;;) {
            std::optional<CellPtr> top = pq_.poll();
            if (!top) return std::nullopt;
            // exchange: claim the cell; skip ones tombstoned by aborted
            // inserts (their physical removal here doubles as cleanup).
            if ((*top)->deleted.exchange(true, std::memory_order_acq_rel))
              continue;
            size_.bump(tx, -1);
            return (*top)->value;
          }
        },
        [this](const std::optional<T>& removed) {
          if (removed) pq_.add(std::make_shared<Cell>(*removed));
        });
  }

  bool contains(stm::Txn& tx, const T& value) {
    const auto scan = [&] {
      bool found = false;
      Compare less{};
      pq_.for_each([&](const CellPtr& c) {
        if (!found && !c->deleted.load(std::memory_order_acquire) &&
            !less(c->value, value) && !less(value, c->value)) {
          found = true;
        }
      });
      return found;
    };
    if (auto fast = lock_.try_read_unlocked(tx, seqs_.word(0), scan)) {
      return *fast;
    }
    return lock_.apply(tx, {Read(PQueueState::MultiSet)}, scan);
  }

  /// Committed size (reified, like the maps').
  long size() const noexcept { return size_.load(); }

  void unsafe_insert(const T& value) {
    pq_.add(std::make_shared<Cell>(value));
    size_.unsafe_add(1);
  }

 private:
  AbstractLock<PQueueState, Lap> lock_;
  containers::BlockingPriorityQueue<CellPtr, CellCompare> pq_;
  ReadSeqTable seqs_;  // single word: the whole queue (fast read path)
  CommittedSize size_;
};

}  // namespace proust::core
