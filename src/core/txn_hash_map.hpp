// The eager Proustian map (Figure 2a): wraps a thread-safe StripedHashMap,
// mutating it immediately inside the transaction and registering a declared
// inverse for each update as a rollback handler. The LAP passed at
// construction decides optimistic (conflict abstraction) vs pessimistic
// (abstract locks) conflict resolution.
#pragma once

#include <optional>
#include <unordered_map>

#include "containers/striped_hash_map.hpp"
#include "core/abstract_lock.hpp"
#include "stm/thread_registry.hpp"
#include "core/committed_size.hpp"
#include "core/read_seq.hpp"
#include "core/update_strategy.hpp"
#include "stm/stm.hpp"

namespace proust::core {

template <class K, class V, LockAllocatorPolicy<K> Lap>
class TxnHashMap {
 public:
  /// `combine_undo` enables undo-log combining — §9's future-work extension
  /// of the log-combining optimization "to undo logs": instead of one
  /// inverse per operation, record each key's *original* value on first
  /// touch and restore it once on abort (O(distinct keys), not O(ops)).
  explicit TxnHashMap(Lap& lap, std::size_t stripes = 64,
                      bool combine_undo = false)
      : lock_(lap, UpdateStrategy::Eager), map_(stripes),
        seqs_(map_.stripe_count(), lap.stm().options().numa_placement),
        combine_undo_(combine_undo) {}

  /// Insert or replace. Returns the previous mapping, as Figure 2a's put.
  std::optional<V> put(stm::Txn& tx, const K& key, const V& value) {
    if (combine_undo_) {
      return lock_.apply(tx, key, /*write=*/true, [&] {
        seqs_.writer_pin(tx, map_.stripe_index(key));
        std::optional<V> ret = map_.put(key, value);
        if (!ret) size_.bump(tx, +1);
        remember_original(tx, key, ret);
        return ret;
      });
    }
    return lock_.apply(
        tx, key, /*write=*/true,
        [&] {
          seqs_.writer_pin(tx, map_.stripe_index(key));
          std::optional<V> ret = map_.put(key, value);
          if (!ret) size_.bump(tx, +1);
          return ret;
        },
        [this, key](const std::optional<V>& old) {
          if (old) {
            map_.put(key, *old);
          } else {
            map_.remove(key);
          }
        });
  }

  std::optional<V> get(stm::Txn& tx, const K& key) {
    // Optimistic fast path (DESIGN.md §12): read the shard with no abstract
    // lock, bracketed by its sequence word; mutators (and their rollback
    // inverses) hold the word odd. Falls back to the locked read on any
    // overlap. Reading our own prior write is covered either way — an eager
    // write already landed in the base, and its stripe pin is ours.
    const std::size_t h = map_.hash_of(key);
    map_.prefetch_bucket(h);
    if (auto fast = lock_.try_read_unlocked(
            tx, seqs_.word(map_.stripe_of_hash(h)), [&] {
              pin_for_attempt(tx);
              return map_.get_hashed(h, key);
            })) {
      return *fast;
    }
    return lock_.apply(tx, key, /*write=*/false,
                       [&] { return map_.get_hashed(h, key); });
  }

  bool contains(stm::Txn& tx, const K& key) {
    const std::size_t h = map_.hash_of(key);
    map_.prefetch_bucket(h);
    if (auto fast = lock_.try_read_unlocked(
            tx, seqs_.word(map_.stripe_of_hash(h)), [&] {
              pin_for_attempt(tx);
              return map_.contains_hashed(h, key);
            })) {
      return *fast;
    }
    return lock_.apply(tx, key, /*write=*/false,
                       [&] { return map_.contains_hashed(h, key); });
  }

  std::optional<V> remove(stm::Txn& tx, const K& key) {
    if (combine_undo_) {
      return lock_.apply(tx, key, /*write=*/true, [&] {
        seqs_.writer_pin(tx, map_.stripe_index(key));
        std::optional<V> ret = map_.remove(key);
        if (ret) size_.bump(tx, -1);
        remember_original(tx, key, ret);
        return ret;
      });
    }
    return lock_.apply(
        tx, key, /*write=*/true,
        [&] {
          seqs_.writer_pin(tx, map_.stripe_index(key));
          std::optional<V> ret = map_.remove(key);
          if (ret) size_.bump(tx, -1);
          return ret;
        },
        [this, key](const std::optional<V>& old) {
          if (old) map_.put(key, *old);
        });
  }

  /// Committed size (reified out of the abstract state; see Listing 2).
  long size() const noexcept { return size_.load(); }

  /// Quiescent (non-transactional) population, for benchmark setup.
  void unsafe_put(const K& key, const V& value) {
    if (!map_.put(key, value)) size_.unsafe_add(1);
  }

 private:
  using Originals = std::unordered_map<K, std::optional<V>>;

  /// Amortize the EBR announce fence across the attempt: the first fast-path
  /// read pins this thread's reader slot in the map's domain and schedules
  /// the unpin at finish (after the abort hooks — their inverses retire
  /// nodes under this same pin). Later reads, and any writer Guards nested
  /// inside the attempt, find the slot pinned and skip the fence. The pin
  /// bounds reclamation stall by attempt length, which the watchdog already
  /// bounds.
  void pin_for_attempt(stm::Txn& tx) {
    const unsigned slot = stm::ThreadRegistry::slot();
    if (!map_.reader_pin(slot)) return;  // already ours for this attempt
    tx.on_finish(
        [this, slot](stm::Outcome) { map_.reader_unpin(slot); });
  }

  /// Record `old` as key's pre-transaction value unless one is already
  /// recorded; the single abort hook restores every touched key once.
  void remember_original(stm::Txn& tx, const K& key,
                         const std::optional<V>& old) {
    const bool fresh = !tx.has_local(this);
    Originals& originals =
        tx.local<Originals>(this, [] { return Originals{}; });
    if (fresh) {
      tx.on_abort([this, &originals] {
        for (const auto& [k, ov] : originals) {
          if (ov) {
            map_.put(k, *ov);
          } else {
            map_.remove(k);
          }
        }
      });
    }
    originals.try_emplace(key, old);
  }

  AbstractLock<K, Lap> lock_;
  containers::StripedHashMap<K, V> map_;
  ReadSeqTable seqs_;  // one word per base shard (fast read path)
  CommittedSize size_;
  bool combine_undo_ = false;
};

}  // namespace proust::core
