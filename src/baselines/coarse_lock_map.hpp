// A single-global-lock transactional map: the whole transaction body runs
// under one mutex, which is trivially serializable and abort-free. Useful as
// a floor/ceiling reference in the benchmarks (perfect at 1 thread and high
// contention, no scalability).
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/hashing.hpp"

namespace proust::baselines {

template <class K, class V, class Hasher = proust::Hash<K>>
class CoarseLockMap {
 public:
  /// Run `body(*this)` as one atomic transaction.
  template <class F>
  auto transaction(F&& body) {
    std::lock_guard<std::mutex> g(mu_);
    return body(*this);
  }

  // Operations below must only be called from inside transaction().
  std::optional<V> put(const K& key, const V& value) {
    auto [it, inserted] = map_.try_emplace(key, value);
    if (inserted) return std::nullopt;
    std::optional<V> old = it->second;
    it->second = value;
    return old;
  }
  std::optional<V> get(const K& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  bool contains(const K& key) const { return map_.count(key) != 0; }
  std::optional<V> remove(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    std::optional<V> old = it->second;
    map_.erase(it);
    return old;
  }
  std::size_t size() const { return map_.size(); }

  void unsafe_put(const K& key, const V& value) { map_[key] = value; }

 private:
  std::mutex mu_;
  std::unordered_map<K, V, Hasher> map_;
};

}  // namespace proust::baselines
