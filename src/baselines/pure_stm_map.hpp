// The "traditional STM implementation" baseline of §7: a hash map stored
// entirely in STM-managed memory, so conflict detection happens on the
// concrete representation (read/write sets over table slots). This is the
// configuration whose false conflicts motivate the paper: probe sequences
// make logically-independent keys share STM locations, and the STM cannot
// tell a semantic conflict from a representational one.
//
// Fixed-capacity open addressing (linear probing, tombstones); throws if
// the table fills — benchmarks size it above the key range, as the paper
// fixes the key range at 1024.
//
// With `track_size` (default on, as a traditional transactional map would),
// size() is an STM variable maintained by every insert/remove — the classic
// false-conflict generator that Listing 2's "size has been reified out of
// the abstract state as an optimization" comment alludes to. Probe-chain
// overlap supplies the remaining representational false conflicts (standing
// in for the structural nodes of an STM tree/trie).
#pragma once

#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "common/hashing.hpp"
#include "stm/stm.hpp"

namespace proust::baselines {

template <class K, class V, class Hasher = proust::Hash<K>>
  requires std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>
class PureStmMap {
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  struct Slot {
    std::uint8_t state;
    K key;
    V value;
  };

 public:
  PureStmMap(stm::Stm& stm, std::size_t capacity, bool track_size = true)
      : stm_(&stm), table_(next_pow2(capacity)), track_size_(track_size) {}

  std::optional<V> put(stm::Txn& tx, const K& key, const V& value) {
    std::size_t first_tomb = table_.size();
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = 0; i < table_.size(); ++i) {
      const std::size_t idx = (Hasher{}(key) + i) & mask;
      Slot s = tx.read(table_[idx]);
      if (s.state == kFull && s.key == key) {
        tx.write(table_[idx], Slot{kFull, key, value});
        return s.value;
      }
      if (s.state == kTombstone && first_tomb == table_.size()) {
        first_tomb = idx;
      }
      if (s.state == kEmpty) {
        const std::size_t target = first_tomb != table_.size() ? first_tomb : idx;
        tx.write(table_[target], Slot{kFull, key, value});
        bump_size(tx, +1);
        return std::nullopt;
      }
    }
    if (first_tomb != table_.size()) {
      tx.write(table_[first_tomb], Slot{kFull, key, value});
      bump_size(tx, +1);
      return std::nullopt;
    }
    throw std::runtime_error("PureStmMap: table full");
  }

  std::optional<V> get(stm::Txn& tx, const K& key) const {
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = 0; i < table_.size(); ++i) {
      const std::size_t idx = (Hasher{}(key) + i) & mask;
      Slot s = tx.read(table_[idx]);
      if (s.state == kFull && s.key == key) return s.value;
      if (s.state == kEmpty) return std::nullopt;
    }
    return std::nullopt;
  }

  bool contains(stm::Txn& tx, const K& key) const {
    return get(tx, key).has_value();
  }

  std::optional<V> remove(stm::Txn& tx, const K& key) {
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = 0; i < table_.size(); ++i) {
      const std::size_t idx = (Hasher{}(key) + i) & mask;
      Slot s = tx.read(table_[idx]);
      if (s.state == kFull && s.key == key) {
        tx.write(table_[idx], Slot{kTombstone, key, V{}});
        bump_size(tx, -1);
        return s.value;
      }
      if (s.state == kEmpty) return std::nullopt;
    }
    return std::nullopt;
  }

  /// Quiescent population for benchmark setup.
  void unsafe_put(const K& key, const V& value) {
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = 0; i < table_.size(); ++i) {
      const std::size_t idx = (Hasher{}(key) + i) & mask;
      Slot s = table_[idx].unsafe_ref();
      if (s.state == kFull && s.key == key) {
        table_[idx].unsafe_store(Slot{kFull, key, value});
        return;
      }
      if (s.state != kFull) {
        table_[idx].unsafe_store(Slot{kFull, key, value});
        size_.unsafe_store(size_.unsafe_ref() + 1);
        return;
      }
    }
    throw std::runtime_error("PureStmMap: table full");
  }

  /// Quiescent size by scan (a transactional size would serialize all
  /// updates on one location; see DESIGN.md).
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    for (const auto& var : table_) n += var.unsafe_ref().state == kFull;
    return n;
  }

  /// Transactional size (meaningful when track_size is on).
  long size(stm::Txn& tx) const { return tx.read(size_); }

  stm::Stm& stm() noexcept { return *stm_; }

 private:
  void bump_size(stm::Txn& tx, long d) {
    if (track_size_) tx.write(size_, tx.read(size_) + d);
  }

  stm::Stm* stm_;
  std::vector<stm::Var<Slot>> table_;
  mutable stm::Var<long> size_{0};
  bool track_size_;
};

}  // namespace proust::baselines
