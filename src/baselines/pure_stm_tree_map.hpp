// A second "traditional STM implementation" baseline: an ordered map (a
// treap) stored entirely in STM-managed memory. Every node access is a
// transactional read/write, so structural maintenance — rotations, the
// root pointer, the free list — creates exactly the representational false
// conflicts §1 describes: an insert that rotates near the root conflicts
// with every concurrent reader that traversed it, even when their key sets
// are disjoint. This is the ordered-map counterpart of PureStmMap and the
// natural pure-STM comparator for TxnOrderedMap's range queries.
//
// Nodes live in a fixed pool (indices, not pointers, so node records stay
// trivially copyable); the free list is threaded through the `left` field
// and is itself transactional — allocation rolls back with the transaction.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "common/hashing.hpp"
#include "stm/stm.hpp"

namespace proust::baselines {

template <class K, class V>
  requires std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>
class PureStmTreeMap {
  static constexpr std::int32_t kNil = -1;

  struct Node {
    K key;
    V value;
    std::uint32_t prio;
    std::int32_t left;
    std::int32_t right;
  };

 public:
  PureStmTreeMap(stm::Stm& stm, std::size_t capacity)
      : stm_(&stm), pool_(capacity), root_(kNil), free_head_(0) {
    // Thread the free list through `left`.
    for (std::size_t i = 0; i < capacity; ++i) {
      Node n{};
      n.left = i + 1 < capacity ? static_cast<std::int32_t>(i + 1) : kNil;
      n.right = kNil;
      pool_[i].unsafe_store(n);
    }
  }

  std::optional<V> put(stm::Txn& tx, const K& key, const V& value) {
    std::optional<V> old;
    const std::int32_t new_root = insert(tx, tx.read(root_), key, value, old);
    tx.write(root_, new_root);
    return old;
  }

  std::optional<V> get(stm::Txn& tx, const K& key) const {
    std::int32_t idx = tx.read(root_);
    while (idx != kNil) {
      const Node n = tx.read(pool_[static_cast<std::size_t>(idx)]);
      if (key < n.key) {
        idx = n.left;
      } else if (n.key < key) {
        idx = n.right;
      } else {
        return n.value;
      }
    }
    return std::nullopt;
  }

  bool contains(stm::Txn& tx, const K& key) const {
    return get(tx, key).has_value();
  }

  std::optional<V> remove(stm::Txn& tx, const K& key) {
    std::optional<V> old;
    const std::int32_t new_root = erase(tx, tx.read(root_), key, old);
    if (old) tx.write(root_, new_root);
    return old;
  }

  /// In-order traversal of [lo, hi] — the pure-STM range query. Reads every
  /// node on the search paths, so its read set embodies the structural
  /// false-conflict problem.
  template <class F>
  void range_for_each(stm::Txn& tx, const K& lo, const K& hi, F&& f) const {
    range_walk(tx, tx.read(root_), lo, hi, f);
  }

  V range_sum(stm::Txn& tx, const K& lo, const K& hi) const {
    V total{};
    range_for_each(tx, lo, hi, [&](const K&, const V& v) { total += v; });
    return total;
  }

  void unsafe_put(const K& key, const V& value) {
    stm_->atomically([&](stm::Txn& tx) { put(tx, key, value); });
  }

  stm::Stm& stm() noexcept { return *stm_; }

 private:
  stm::Var<Node>& at(std::int32_t idx) {
    return pool_[static_cast<std::size_t>(idx)];
  }
  const stm::Var<Node>& at(std::int32_t idx) const {
    return pool_[static_cast<std::size_t>(idx)];
  }

  std::int32_t alloc(stm::Txn& tx, const K& key, const V& value) {
    const std::int32_t idx = tx.read(free_head_);
    if (idx == kNil) throw std::runtime_error("PureStmTreeMap: pool exhausted");
    Node n = tx.read(at(idx));
    tx.write(free_head_, n.left);
    n.key = key;
    n.value = value;
    // Deterministic pseudo-random priority from the node slot and a txn
    // stamp: stable within the transaction, well-mixed across inserts.
    n.prio = static_cast<std::uint32_t>(
        mix64(static_cast<std::uint64_t>(idx) * 0x9E3779B97F4A7C15ULL ^
              tx.fresh_stamp()));
    n.left = kNil;
    n.right = kNil;
    tx.write(at(idx), n);
    return idx;
  }

  void release(stm::Txn& tx, std::int32_t idx) {
    Node n = tx.read(at(idx));
    n.left = tx.read(free_head_);
    n.right = kNil;
    tx.write(at(idx), n);
    tx.write(free_head_, idx);
  }

  std::int32_t insert(stm::Txn& tx, std::int32_t idx, const K& key,
                      const V& value, std::optional<V>& old) {
    if (idx == kNil) return alloc(tx, key, value);
    Node n = tx.read(at(idx));
    if (key < n.key) {
      n.left = insert(tx, n.left, key, value, old);
      tx.write(at(idx), n);
      if (tx.read(at(n.left)).prio < n.prio) return rotate_right(tx, idx);
      return idx;
    }
    if (n.key < key) {
      n.right = insert(tx, n.right, key, value, old);
      tx.write(at(idx), n);
      if (tx.read(at(n.right)).prio < n.prio) return rotate_left(tx, idx);
      return idx;
    }
    old = n.value;
    n.value = value;
    tx.write(at(idx), n);
    return idx;
  }

  std::int32_t erase(stm::Txn& tx, std::int32_t idx, const K& key,
                     std::optional<V>& old) {
    if (idx == kNil) return kNil;
    Node n = tx.read(at(idx));
    if (key < n.key) {
      n.left = erase(tx, n.left, key, old);
      if (old) tx.write(at(idx), n);
      return idx;
    }
    if (n.key < key) {
      n.right = erase(tx, n.right, key, old);
      if (old) tx.write(at(idx), n);
      return idx;
    }
    old = n.value;
    const std::int32_t merged = merge(tx, n.left, n.right);
    release(tx, idx);
    return merged;
  }

  /// Merge two treaps where every key in `a` precedes every key in `b`.
  std::int32_t merge(stm::Txn& tx, std::int32_t a, std::int32_t b) {
    if (a == kNil) return b;
    if (b == kNil) return a;
    Node na = tx.read(at(a));
    Node nb = tx.read(at(b));
    if (na.prio < nb.prio) {
      na.right = merge(tx, na.right, b);
      tx.write(at(a), na);
      return a;
    }
    nb.left = merge(tx, a, nb.left);
    tx.write(at(b), nb);
    return b;
  }

  std::int32_t rotate_right(stm::Txn& tx, std::int32_t idx) {
    Node n = tx.read(at(idx));
    const std::int32_t l = n.left;
    Node ln = tx.read(at(l));
    n.left = ln.right;
    ln.right = idx;
    tx.write(at(idx), n);
    tx.write(at(l), ln);
    return l;
  }

  std::int32_t rotate_left(stm::Txn& tx, std::int32_t idx) {
    Node n = tx.read(at(idx));
    const std::int32_t r = n.right;
    Node rn = tx.read(at(r));
    n.right = rn.left;
    rn.left = idx;
    tx.write(at(idx), n);
    tx.write(at(r), rn);
    return r;
  }

  template <class F>
  void range_walk(stm::Txn& tx, std::int32_t idx, const K& lo, const K& hi,
                  F& f) const {
    if (idx == kNil) return;
    const Node n = tx.read(at(idx));
    if (lo < n.key) range_walk(tx, n.left, lo, hi, f);
    if (!(n.key < lo) && !(hi < n.key)) f(n.key, n.value);
    if (n.key < hi) range_walk(tx, n.right, lo, hi, f);
  }

  stm::Stm* stm_;
  std::vector<stm::Var<Node>> pool_;
  stm::Var<std::int32_t> root_;
  stm::Var<std::int32_t> free_head_;
};

}  // namespace proust::baselines
