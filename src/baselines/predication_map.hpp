// Transactional Predication (Bronson et al., PODC'10), the specialized
// baseline the paper compares against: each key is bound — through a
// non-transactional thread-safe map — to a dedicated STM location (the
// "predicate") holding presence + value. Map operations become single STM
// reads/writes of the key's predicate, so the STM's own read/write conflict
// detection yields exactly per-key semantic conflicts.
//
// As in the paper's evaluation (§7), predicates are never garbage-collected:
// the key range is bounded (1024), matching the benchmark methodology note.
#pragma once

#include <memory>
#include <optional>
#include <type_traits>

#include "containers/striped_hash_map.hpp"
#include "stm/stm.hpp"

namespace proust::baselines {

template <class K, class V, class Hasher = proust::Hash<K>>
  requires std::is_trivially_copyable_v<V>
class PredicationMap {
  struct Pred {
    bool present;
    V value;
  };
  using PredVar = stm::Var<Pred>;

 public:
  explicit PredicationMap(stm::Stm& stm, std::size_t stripes = 64)
      : stm_(&stm), preds_(stripes) {}

  std::optional<V> put(stm::Txn& tx, const K& key, const V& value) {
    PredVar& p = pred(key);
    Pred old = tx.read(p);
    tx.write(p, Pred{true, value});
    if (old.present) return old.value;
    return std::nullopt;
  }

  std::optional<V> get(stm::Txn& tx, const K& key) {
    Pred cur = tx.read(pred(key));
    if (cur.present) return cur.value;
    return std::nullopt;
  }

  bool contains(stm::Txn& tx, const K& key) {
    return tx.read(pred(key)).present;
  }

  std::optional<V> remove(stm::Txn& tx, const K& key) {
    PredVar& p = pred(key);
    Pred old = tx.read(p);
    if (old.present) {
      tx.write(p, Pred{false, V{}});
      return old.value;
    }
    // Absent: reading the predicate (without writing) suffices — a
    // concurrent insert of this key is a r/w conflict, anything else
    // commutes.
    return std::nullopt;
  }

  void unsafe_put(const K& key, const V& value) {
    pred(key).unsafe_store(Pred{true, value});
  }

  stm::Stm& stm() noexcept { return *stm_; }

 private:
  PredVar& pred(const K& key) {
    std::unique_ptr<PredVar>& p = preds_.get_or_create_ref(
        key, [] { return std::make_unique<PredVar>(Pred{false, V{}}); });
    return *p;
  }

  stm::Stm* stm_;
  // Non-transactional key → predicate binding. Predicates are allocated on
  // first touch and never collected (the paper likewise defers predicate
  // GC, fixing the key range at 1024), so the unordered_map node references
  // returned by get_or_create_ref stay valid for the map's lifetime.
  containers::StripedHashMap<K, std::unique_ptr<PredVar>, Hasher> preds_;
};

}  // namespace proust::baselines
