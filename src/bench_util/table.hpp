// Fixed-width table printing for the benchmark drivers, so the output reads
// like the paper's figure series (one row per configuration).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace proust::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    print_row(headers_);
    std::string rule;
    for (const auto& h : headers_) {
      rule += std::string(width(h), '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
  }

  void row(const std::vector<std::string>& cells) { print_row(cells); }

  static std::string fmt(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }

 private:
  static std::size_t width(const std::string& h) {
    return h.size() < 12 ? 12 : h.size();
  }

  void print_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t w =
          i < headers_.size() ? width(headers_[i]) : std::size_t{12};
      std::printf("%-*s  ", static_cast<int>(w), cells[i].c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::vector<std::string> headers_;
};

}  // namespace proust::bench
