// Minimal flag parsing shared by the benchmark drivers:
//   --ops=N  --key-range=N  --warmup=N  --runs=N  --threads=1,2,4
//   --o=1,16  --u=0,0.5,1  --full  --mode=lazy|eagerwrite|eagerall
#pragma once

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/topology.hpp"
#include "stm/fwd.hpp"
#include "stm/options.hpp"

namespace proust::bench {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(const std::string& flag) const {
    for (const auto& a : args_) {
      if (a == "--" + flag) return true;
      if (a.rfind("--" + flag + "=", 0) == 0) return true;
    }
    return false;
  }

  std::string get(const std::string& flag, const std::string& def) const {
    const std::string prefix = "--" + flag + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return def;
  }

  long get_long(const std::string& flag, long def) const {
    const std::string v = get(flag, "");
    return v.empty() ? def : std::strtol(v.c_str(), nullptr, 10);
  }

  double get_double(const std::string& flag, double def) const {
    const std::string v = get(flag, "");
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  std::vector<long> get_longs(const std::string& flag,
                              std::vector<long> def) const {
    const std::string v = get(flag, "");
    if (v.empty()) return def;
    return split_longs(v);
  }

  std::vector<double> get_doubles(const std::string& flag,
                                  std::vector<double> def) const {
    const std::string v = get(flag, "");
    if (v.empty()) return def;
    std::vector<double> out;
    std::stringstream ss(v);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
    return out;
  }

  stm::Mode get_mode(const std::string& flag, stm::Mode def) const {
    const std::string v = get(flag, "");
    if (v == "lazy") return stm::Mode::Lazy;
    if (v == "eagerwrite") return stm::Mode::EagerWrite;
    if (v == "eagerall") return stm::Mode::EagerAll;
    return def;
  }

  /// --scheme=inc|pass|lazybump (global-clock scheme).
  stm::ClockScheme get_scheme(const std::string& flag,
                              stm::ClockScheme def) const {
    const std::string v = get(flag, "");
    if (v == "inc") return stm::ClockScheme::IncOnCommit;
    if (v == "pass") return stm::ClockScheme::PassOnFailure;
    if (v == "lazybump") return stm::ClockScheme::LazyBump;
    return def;
  }

  /// Comma-separated string list, e.g. --pin=none,compact,scatter.
  std::vector<std::string> get_strings(const std::string& flag,
                                       std::vector<std::string> def) const {
    const std::string v = get(flag, "");
    if (v.empty()) return def;
    std::vector<std::string> out;
    std::stringstream ss(v);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(item);
    return out;
  }

  /// Single pinning policy (--pin-policy=none|compact|scatter|explicit);
  /// unknown values fall back to `def`.
  topo::PinPolicy get_pin_policy(const std::string& flag,
                                 topo::PinPolicy def) const {
    topo::PinPolicy p = def;
    (void)topo::parse_pin_policy(get(flag, ""), p);
    return p;
  }

  /// --placement=off|interleave|replicate.
  topo::NumaPlacement get_placement(const std::string& flag,
                                    topo::NumaPlacement def) const {
    topo::NumaPlacement p = def;
    (void)topo::parse_numa_placement(get(flag, ""), p);
    return p;
  }

 private:
  static std::vector<long> split_longs(const std::string& v) {
    std::vector<long> out;
    std::stringstream ss(v);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(std::stol(item));
    return out;
  }

  std::vector<std::string> args_;
};

}  // namespace proust::bench
