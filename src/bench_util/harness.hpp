// The §7 measurement harness: perform `total_ops` randomly selected
// operations on a shared map, split across `threads` threads, `ops_per_txn`
// operations per transaction; warm up, then time several executions and
// report mean and standard deviation — the paper's methodology with the JVM
// warm-up replaced by harness warm-up runs.
#pragma once

#include <barrier>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "stm/stats.hpp"

namespace proust::bench {

struct RunConfig {
  int threads = 1;
  int ops_per_txn = 1;
  double write_fraction = 0.5;
  long key_range = 1024;
  long total_ops = 100000;
  int warmup_runs = 1;
  int timed_runs = 3;
  std::uint64_t seed = 42;
  double zipf_theta = 0.0;  // 0 = uniform (the paper's setup)
};

struct RunResult {
  double mean_ms = 0;
  double sd_ms = 0;
  std::uint64_t starts = 0;  // transaction attempts during timed runs
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  stm::StatsSnapshot stats;  // full breakdown (aborts by reason, extensions)

  /// Completed operations per second for one timed run of `total_ops`.
  double ops_per_sec(long total_ops) const noexcept {
    return mean_ms <= 0 ? 0.0
                        : static_cast<double>(total_ops) / (mean_ms / 1000.0);
  }
  /// Aborted attempts as a fraction of started attempts.
  double abort_ratio() const noexcept {
    return starts == 0 ? 0.0
                       : static_cast<double>(aborts) /
                             static_cast<double>(starts);
  }
};

namespace detail {
template <class Adapter>
double one_run(Adapter& adapter, const RunConfig& cfg, std::uint64_t seed) {
  const long total_txns =
      (cfg.total_ops + cfg.ops_per_txn - 1) / cfg.ops_per_txn;
  std::barrier sync(cfg.threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    const long my_txns =
        total_txns / cfg.threads + (t < total_txns % cfg.threads ? 1 : 0);
    workers.emplace_back([&, t, my_txns] {
      MapWorkload wl(cfg.write_fraction, cfg.key_range,
                     seed * 0x9E3779B97F4A7C15ULL + t, cfg.zipf_theta);
      sync.arrive_and_wait();
      for (long i = 0; i < my_txns; ++i) {
        adapter.txn([&](auto& view) {
          for (int op = 0; op < cfg.ops_per_txn; ++op) {
            const Op o = wl.next();
            switch (o.kind) {
              case OpKind::Get: view.get(o.key); break;
              case OpKind::Put: view.put(o.key, o.value); break;
              case OpKind::Remove: view.remove(o.key); break;
            }
          }
        });
      }
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  const auto stop = std::chrono::steady_clock::now();
  for (auto& w : workers) w.join();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}
}  // namespace detail

/// Prefill half the key range so gets hit ~50% (steady-state occupancy of
/// the put/remove balance).
template <class Adapter>
void prefill_half(Adapter& adapter, long key_range) {
  for (long k = 0; k < key_range; k += 2) adapter.prefill(k, k);
}

template <class Adapter>
RunResult run_map_throughput(Adapter& adapter, const RunConfig& cfg) {
  for (int i = 0; i < cfg.warmup_runs; ++i) {
    detail::one_run(adapter, cfg, cfg.seed + 1000 + i);
  }
  adapter.reset_stats();
  std::vector<double> times;
  times.reserve(cfg.timed_runs);
  for (int i = 0; i < cfg.timed_runs; ++i) {
    times.push_back(detail::one_run(adapter, cfg, cfg.seed + i));
  }
  RunResult r;
  double sum = 0;
  for (double t : times) sum += t;
  r.mean_ms = sum / times.size();
  double var = 0;
  for (double t : times) var += (t - r.mean_ms) * (t - r.mean_ms);
  r.sd_ms = times.size() > 1 ? std::sqrt(var / (times.size() - 1)) : 0.0;
  const stm::StatsSnapshot s = adapter.stats();
  r.starts = s.starts;
  r.commits = s.commits;
  r.aborts = s.total_aborts();
  r.stats = s;
  return r;
}

}  // namespace proust::bench
