// The §7 measurement harness: perform `total_ops` randomly selected
// operations on a shared map, split across `threads` threads, `ops_per_txn`
// operations per transaction; warm up, then time several executions and
// report mean and standard deviation — the paper's methodology with the JVM
// warm-up replaced by harness warm-up runs.
#pragma once

#include <barrier>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "common/rng.hpp"
#include "common/topology.hpp"
#include "stm/stats.hpp"

namespace proust::bench {

struct RunConfig {
  int threads = 1;
  int ops_per_txn = 1;
  double write_fraction = 0.5;
  long key_range = 1024;
  long total_ops = 100000;
  int warmup_runs = 1;
  int timed_runs = 3;
  std::uint64_t seed = 42;
  double zipf_theta = 0.0;  // 0 = uniform (the paper's setup)
  /// Harness-level worker pinning: worker t binds to pin_plan[t % size]
  /// before the start barrier. Empty (default) = no affinity calls. This
  /// complements StmOptions::pinning (which binds by registry slot) and
  /// also covers non-STM baselines like the global-lock map.
  std::vector<int> pin_plan;
};

struct RunResult {
  double mean_ms = 0;
  double sd_ms = 0;
  double min_ms = 0;  // fastest timed run — robust to CPU-steal noise
  std::uint64_t starts = 0;  // transaction attempts during timed runs
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  stm::StatsSnapshot stats;  // full breakdown (aborts by reason, extensions)

  /// Completed operations per second for one timed run of `total_ops`.
  double ops_per_sec(long total_ops) const noexcept {
    return mean_ms <= 0 ? 0.0
                        : static_cast<double>(total_ops) / (mean_ms / 1000.0);
  }
  /// Throughput of the fastest run. On a shared vCPU, steal time inflates
  /// some runs by multiples of the true cost; the minimum is the standard
  /// estimator under such one-sided noise (what the workload costs when the
  /// machine actually runs it).
  double ops_per_sec_min(long total_ops) const noexcept {
    return min_ms <= 0 ? 0.0
                       : static_cast<double>(total_ops) / (min_ms / 1000.0);
  }
  /// Aborted attempts as a fraction of started attempts.
  double abort_ratio() const noexcept {
    return starts == 0 ? 0.0
                       : static_cast<double>(aborts) /
                             static_cast<double>(starts);
  }
};

namespace detail {
template <class Adapter>
double one_run(Adapter& adapter, const RunConfig& cfg, std::uint64_t seed) {
  const long total_txns =
      (cfg.total_ops + cfg.ops_per_txn - 1) / cfg.ops_per_txn;
  std::barrier sync(cfg.threads + 1);
  // Each worker clocks its own span; the run is min(start) .. max(stop).
  // Timing from the coordinating thread undercounts badly on an
  // oversubscribed box: if it blocks on the start barrier and is scheduled
  // late, the workers can run to completion before it ever reads the
  // "start" clock.
  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> starts(cfg.threads), stops(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    const long my_txns =
        total_txns / cfg.threads + (t < total_txns % cfg.threads ? 1 : 0);
    workers.emplace_back([&, t, my_txns] {
      if (!cfg.pin_plan.empty()) {
        topo::pin_self_to(
            cfg.pin_plan[static_cast<std::size_t>(t) % cfg.pin_plan.size()]);
      }
      // Pre-generate the thread's whole operation stream outside the timed
      // region: the RNG draws (and the Zipf inversion) are harness cost,
      // not structure-under-test cost, and drawing inside the transaction
      // body would make a retried transaction replay *different* ops.
      MapWorkload wl(cfg.write_fraction, cfg.key_range,
                     seed * 0x9E3779B97F4A7C15ULL + t, cfg.zipf_theta);
      std::vector<Op> ops;
      ops.reserve(static_cast<std::size_t>(my_txns) * cfg.ops_per_txn);
      for (long i = 0; i < my_txns * cfg.ops_per_txn; ++i) {
        ops.push_back(wl.next());
      }
      sync.arrive_and_wait();
      starts[t] = Clock::now();
      std::size_t at = 0;
      for (long i = 0; i < my_txns; ++i) {
        adapter.txn([&](auto& view) {
          for (int op = 0; op < cfg.ops_per_txn; ++op) {
            const Op& o = ops[at + static_cast<std::size_t>(op)];
            switch (o.kind) {
              case OpKind::Get: view.get(o.key); break;
              case OpKind::Put: view.put(o.key, o.value); break;
              case OpKind::Remove: view.remove(o.key); break;
            }
          }
        });
        at += static_cast<std::size_t>(cfg.ops_per_txn);
      }
      stops[t] = Clock::now();
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  sync.arrive_and_wait();
  for (auto& w : workers) w.join();
  Clock::time_point first = starts[0];
  Clock::time_point last = stops[0];
  for (int t = 1; t < cfg.threads; ++t) {
    if (starts[t] < first) first = starts[t];
    if (stops[t] > last) last = stops[t];
  }
  return std::chrono::duration<double, std::milli>(last - first).count();
}
}  // namespace detail

/// Prefill half the key range so gets hit ~50% (steady-state occupancy of
/// the put/remove balance).
template <class Adapter>
void prefill_half(Adapter& adapter, long key_range) {
  for (long k = 0; k < key_range; k += 2) adapter.prefill(k, k);
}

namespace detail {
template <class Adapter>
RunResult reduce_runs(Adapter& adapter, const std::vector<double>& times) {
  RunResult r;
  double sum = 0;
  r.min_ms = times.front();
  for (double t : times) {
    sum += t;
    if (t < r.min_ms) r.min_ms = t;
  }
  r.mean_ms = sum / times.size();
  double var = 0;
  for (double t : times) var += (t - r.mean_ms) * (t - r.mean_ms);
  r.sd_ms = times.size() > 1 ? std::sqrt(var / (times.size() - 1)) : 0.0;
  const stm::StatsSnapshot s = adapter.stats();
  r.starts = s.starts;
  r.commits = s.commits;
  r.aborts = s.total_aborts();
  r.stats = s;
  return r;
}
}  // namespace detail

template <class Adapter>
RunResult run_map_throughput(Adapter& adapter, const RunConfig& cfg) {
  for (int i = 0; i < cfg.warmup_runs; ++i) {
    detail::one_run(adapter, cfg, cfg.seed + 1000 + i);
  }
  adapter.reset_stats();
  std::vector<double> times;
  times.reserve(cfg.timed_runs);
  for (int i = 0; i < cfg.timed_runs; ++i) {
    times.push_back(detail::one_run(adapter, cfg, cfg.seed + i));
  }
  return detail::reduce_runs(adapter, times);
}

/// Run durations only — for benches whose stats come from elsewhere (or
/// nowhere, like lock-based baselines).
struct TimedRuns {
  double mean_ms = 0;
  double sd_ms = 0;
  double min_ms = 0;

  double ops_per_sec(long total_ops, bool use_min) const noexcept {
    const double ms = use_min ? min_ms : mean_ms;
    return ms <= 0 ? 0.0 : static_cast<double>(total_ops) / (ms / 1000.0);
  }
};

namespace detail {
inline TimedRuns reduce_times(const std::vector<double>& times) {
  TimedRuns r;
  double sum = 0;
  r.min_ms = times.front();
  for (double t : times) {
    sum += t;
    if (t < r.min_ms) r.min_ms = t;
  }
  r.mean_ms = sum / static_cast<double>(times.size());
  double var = 0;
  for (double t : times) var += (t - r.mean_ms) * (t - r.mean_ms);
  r.sd_ms = times.size() > 1
                ? std::sqrt(var / static_cast<double>(times.size() - 1))
                : 0.0;
  return r;
}

/// Per-worker-clocked single run of an arbitrary operation stream: worker t
/// calls `op(t, rng)` `iters` times; the run spans min(start)..max(stop)
/// (see one_run for why coordinator clocks undercount). The generic runner
/// behind the pqueue / ordered-map scenario families.
template <class OpFn>
double one_ops_run(int threads, long iters, std::uint64_t seed,
                   const std::vector<int>& pin_plan, OpFn&& op) {
  std::barrier sync(threads + 1);
  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> starts(threads), stops(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      if (!pin_plan.empty()) {
        topo::pin_self_to(
            pin_plan[static_cast<std::size_t>(t) % pin_plan.size()]);
      }
      Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL +
                     static_cast<std::uint64_t>(t) * 1297 + 11);
      sync.arrive_and_wait();
      starts[t] = Clock::now();
      for (long i = 0; i < iters; ++i) op(t, rng);
      stops[t] = Clock::now();
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  sync.arrive_and_wait();
  for (auto& w : workers) w.join();
  Clock::time_point first = starts[0];
  Clock::time_point last = stops[0];
  for (int t = 1; t < threads; ++t) {
    if (starts[t] < first) first = starts[t];
    if (stops[t] > last) last = stops[t];
  }
  return std::chrono::duration<double, std::milli>(last - first).count();
}
}  // namespace detail

/// Warm up, then time `timed_runs` executions of `iters` ops on each of
/// `threads` workers (per-worker clocks). `op(t, rng)` performs one
/// operation; reseeded per run so repeats draw identical streams.
/// `after_warmup` (when non-null) runs between the warm-up and the timed
/// runs — the place to reset STM stats so abort ratios cover only what was
/// measured.
template <class OpFn, class AfterWarmup = void (*)()>
TimedRuns run_ops_timed(
    int threads, long iters, int warmup_runs, int timed_runs,
    std::uint64_t seed, const std::vector<int>& pin_plan, OpFn&& op,
    AfterWarmup after_warmup = [] {}) {
  for (int i = 0; i < warmup_runs; ++i) {
    detail::one_ops_run(threads, iters, seed + 1000 + i, pin_plan, op);
  }
  after_warmup();
  std::vector<double> times;
  times.reserve(timed_runs);
  for (int i = 0; i < timed_runs; ++i) {
    times.push_back(
        detail::one_ops_run(threads, iters, seed + i, pin_plan, op));
  }
  return detail::reduce_times(times);
}

/// A/B comparison: interleave the two adapters' timed runs so both sample
/// the same noise phases (CPU steal, frequency drift). Back-to-back blocks
/// — all of A's runs, then all of B's — can land in different phases and
/// skew the A:B ratio by more than the effect under test; adjacent paired
/// runs keep the ratio meaningful even when absolute times wander.
template <class A, class B>
std::pair<RunResult, RunResult> run_map_throughput_paired(A& a, B& b,
                                                          const RunConfig& cfg) {
  for (int i = 0; i < cfg.warmup_runs; ++i) {
    detail::one_run(a, cfg, cfg.seed + 1000 + i);
    detail::one_run(b, cfg, cfg.seed + 1000 + i);
  }
  a.reset_stats();
  b.reset_stats();
  std::vector<double> ta, tb;
  ta.reserve(cfg.timed_runs);
  tb.reserve(cfg.timed_runs);
  for (int i = 0; i < cfg.timed_runs; ++i) {
    ta.push_back(detail::one_run(a, cfg, cfg.seed + i));
    tb.push_back(detail::one_run(b, cfg, cfg.seed + i));
  }
  return {detail::reduce_runs(a, ta), detail::reduce_runs(b, tb)};
}

}  // namespace proust::bench
