// Shared CSV emission for the benchmark drivers — one flat schema for the
// whole scenario matrix so scripts/plot_results.py (and any spreadsheet)
// can consume every family's output without per-bench parsing. A CsvWriter
// is bound to a fixed column list at construction; every row must supply
// exactly that many fields, so drifting drivers fail loudly instead of
// emitting misaligned columns.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/topology.hpp"

namespace proust::bench {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const noexcept { return columns_; }

  /// Append one row; throws std::invalid_argument on column-count mismatch.
  void row(const std::vector<std::string>& fields) {
    if (fields.size() != columns_.size()) {
      throw std::invalid_argument("CsvWriter: row has " +
                                  std::to_string(fields.size()) +
                                  " fields, header has " +
                                  std::to_string(columns_.size()));
    }
    rows_.push_back(fields);
  }

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// RFC-4180 quoting: a field containing a comma, quote or newline is
  /// wrapped in quotes with embedded quotes doubled.
  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += "\"\"";
      else out.push_back(c);
    }
    out += "\"";
    return out;
  }

  static std::string fmt(double v, int decimals = 3) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    write_to(f);
    return std::fclose(f) == 0;
  }

  void write_to(std::FILE* f) const {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ",", escape(columns_[i]).c_str());
    }
    std::fprintf(f, "\n");
    for (const std::vector<std::string>& r : rows_) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        std::fprintf(f, "%s%s", i == 0 ? "" : ",", escape(r[i]).c_str());
      }
      std::fprintf(f, "\n");
    }
  }

  /// The host-topology column block every matrix row carries (satellite of
  /// the same PR as JsonWriter's per-record "host" object): appended by
  /// drivers so rows from different machines remain comparable.
  static std::vector<std::string> host_columns() {
    return {"host_cpus", "host_nodes", "host_smt"};
  }
  static std::vector<std::string> host_fields() {
    const topo::Topology& t = topo::Topology::system();
    return {std::to_string(t.cpu_count()), std::to_string(t.node_count),
            t.smt ? "1" : "0"};
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace proust::bench
