// The §7 benchmark workload: randomly selected map operations, a `u`
// fraction of which are writes (split evenly between put and remove), the
// rest gets; keys uniform over a fixed range (the paper fixes 1024).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace proust::bench {

enum class OpKind : std::uint8_t { Get, Put, Remove };

struct Op {
  OpKind kind;
  long key;
  long value;
};

/// Zipf(θ) sampler over [0, n) via inverse-CDF table lookup (binary search;
/// the table is built once per generator). θ = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(long n, double theta) : n_(n) {
    if (theta <= 0) return;  // uniform: no table
    cdf_.reserve(static_cast<std::size_t>(n));
    double sum = 0;
    for (long i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }

  long sample(Xoshiro256& rng) const {
    if (cdf_.empty()) return static_cast<long>(rng.below(n_));
    const double u = rng.uniform();
    // Binary search for the first CDF entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<long>(lo);
  }

  bool uniform() const noexcept { return cdf_.empty(); }

 private:
  long n_;
  std::vector<double> cdf_;  // empty means uniform
};

/// The §7 workload generator, optionally skewed: a `u` fraction of writes
/// (split evenly put/remove), the rest gets; keys drawn uniformly (the
/// paper's setup) or Zipf-distributed (hot-key extension for the ablations).
class MapWorkload {
 public:
  MapWorkload(double write_fraction, long key_range, std::uint64_t seed,
              double zipf_theta = 0.0)
      : rng_(seed), u_(write_fraction), key_range_(key_range),
        zipf_(key_range, zipf_theta) {}

  Op next() {
    const double r = rng_.uniform();
    const long key = zipf_.sample(rng_);
    if (r < u_ / 2) {
      return {OpKind::Put, key, static_cast<long>(rng_.below(1u << 20))};
    }
    if (r < u_) return {OpKind::Remove, key, 0};
    return {OpKind::Get, key, 0};
  }

 private:
  Xoshiro256 rng_;
  double u_;
  std::uint64_t key_range_;
  ZipfSampler zipf_;
};

}  // namespace proust::bench
