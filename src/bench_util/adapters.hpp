// Uniform adapters over every transactional map implementation compared in
// §7: each exposes
//    txn(body)   — run `body(view)` as one atomic transaction, where `view`
//                  has put/get/remove/contains;
//    prefill(k,v), stats(), reset_stats(), name().
// This is what lets one harness drive the pure-STM baseline, predication,
// and the four Proustian configurations over identical workloads.
#pragma once

#include <optional>
#include <string>

#include "baselines/coarse_lock_map.hpp"
#include "baselines/predication_map.hpp"
#include "baselines/pure_stm_map.hpp"
#include "core/lazy_hash_map.hpp"
#include "core/lazy_trie_map.hpp"
#include "core/txn_hash_map.hpp"
#include "stm/stm.hpp"

namespace proust::bench {

/// Binds a Proust-style map (whose operations take a Txn&) to a running
/// transaction, presenting the plain map interface the workload body uses.
template <class M>
struct TxView {
  M& m;
  stm::Txn& tx;
  std::optional<long> put(long k, long v) { return m.put(tx, k, v); }
  std::optional<long> get(long k) { return m.get(tx, k); }
  std::optional<long> remove(long k) { return m.remove(tx, k); }
  bool contains(long k) { return m.contains(tx, k); }
};

template <class Derived, class Map>
class StmAdapterBase {
 public:
  template <class Body>
  void txn(Body&& body) {
    stm_.atomically([&](stm::Txn& tx) {
      TxView<Map> view{static_cast<Derived*>(this)->map(), tx};
      body(view);
    });
  }
  stm::StatsSnapshot stats() { return stm_.stats().snapshot(); }
  void reset_stats() { stm_.stats().reset(); }
  stm::Stm& stm() noexcept { return stm_; }

 protected:
  explicit StmAdapterBase(stm::Mode mode, stm::StmOptions opts = {})
      : stm_(mode, opts) {}
  stm::Stm stm_;
};

class PureStmAdapter
    : public StmAdapterBase<PureStmAdapter, baselines::PureStmMap<long, long>> {
  using Map = baselines::PureStmMap<long, long>;

 public:
  PureStmAdapter(stm::Mode mode, long key_range, stm::StmOptions opts = {})
      : StmAdapterBase(mode, opts),
        map_(stm_, static_cast<std::size_t>(key_range) * 4) {}
  static std::string name() { return "pure-stm"; }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Map map_;
};

class PredicationAdapter
    : public StmAdapterBase<PredicationAdapter,
                            baselines::PredicationMap<long, long>> {
  using Map = baselines::PredicationMap<long, long>;

 public:
  explicit PredicationAdapter(stm::Mode mode, stm::StmOptions opts = {})
      : StmAdapterBase(mode, opts), map_(stm_) {}
  static std::string name() { return "predication"; }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Map map_;
};

/// Proust eager map over the optimistic LAP (eager/optimistic quadrant).
class EagerOptAdapter
    : public StmAdapterBase<
          EagerOptAdapter,
          core::TxnHashMap<long, long, core::OptimisticLap<long>>> {
  using Lap = core::OptimisticLap<long>;
  using Map = core::TxnHashMap<long, long, Lap>;

 public:
  EagerOptAdapter(stm::Mode mode, std::size_t ca_slots,
                  stm::StmOptions opts = {})
      : StmAdapterBase(mode, opts), lap_(stm_, ca_slots), map_(lap_) {}
  static std::string name() { return "proust-eager"; }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Lap lap_;
  Map map_;
};

/// Proust eager map over the pessimistic LAP (Boosting quadrant).
class PessimisticAdapter
    : public StmAdapterBase<
          PessimisticAdapter,
          core::TxnHashMap<long, long, core::PessimisticLap<long>>> {
  using Lap = core::PessimisticLap<long>;
  using Map = core::TxnHashMap<long, long, Lap>;

 public:
  PessimisticAdapter(stm::Mode mode, std::size_t stripes,
                     stm::StmOptions opts = {})
      // The map's shard count (= its sequence-word granularity) tracks the
      // LAP striping, so `--ca-slots` governs both conflict abstractions.
      : StmAdapterBase(mode, opts), lap_(stm_, stripes),
        map_(lap_, stripes) {}
  static std::string name() { return "proust-pess"; }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Lap lap_;
  Map map_;
};

/// Proust lazy-memoizing map over the pessimistic LAP — the sound
/// lazy/pessimistic cell of Figure 1 (the memo table reads the base per key
/// under that key's abstract lock, so observed values are committed ones).
class LazyMemoPessAdapter
    : public StmAdapterBase<
          LazyMemoPessAdapter,
          core::LazyHashMap<long, long, core::PessimisticLap<long>>> {
  using Lap = core::PessimisticLap<long>;
  using Map = core::LazyHashMap<long, long, Lap>;

 public:
  LazyMemoPessAdapter(stm::Mode mode, std::size_t stripes,
                      stm::StmOptions opts = {})
      : StmAdapterBase(mode, opts), lap_(stm_, stripes),
        map_(lap_, /*combine_log=*/false) {}
  static std::string name() { return "proust-pess-lazy"; }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Lap lap_;
  Map map_;
};

/// Proust lazy map with snapshot shadow copies (LazyTrieMap of Fig. 2b).
class LazySnapshotAdapter
    : public StmAdapterBase<
          LazySnapshotAdapter,
          core::LazyTrieMap<long, long, core::OptimisticLap<long>>> {
  using Lap = core::OptimisticLap<long>;
  using Map = core::LazyTrieMap<long, long, Lap>;

 public:
  LazySnapshotAdapter(stm::Mode mode, std::size_t ca_slots,
                      stm::StmOptions opts = {})
      : StmAdapterBase(mode, opts), lap_(stm_, ca_slots), map_(lap_) {}
  static std::string name() { return "proust-lazy-snap"; }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Lap lap_;
  Map map_;
};

/// Proust lazy map with memoizing shadow copies (§4's LazyHashMap); the
/// `combine` flag enables the log-combining optimization (Fig. 4 bottom).
class LazyMemoAdapter
    : public StmAdapterBase<
          LazyMemoAdapter,
          core::LazyHashMap<long, long, core::OptimisticLap<long>>> {
  using Lap = core::OptimisticLap<long>;
  using Map = core::LazyHashMap<long, long, Lap>;

 public:
  LazyMemoAdapter(stm::Mode mode, std::size_t ca_slots, bool combine,
                  stm::StmOptions opts = {})
      : StmAdapterBase(mode, opts), lap_(stm_, ca_slots), map_(lap_, combine),
        combine_(combine) {}
  std::string name() const {
    return combine_ ? "proust-lazy-memo+c" : "proust-lazy-memo";
  }
  Map& map() noexcept { return map_; }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }

 private:
  Lap lap_;
  Map map_;
  bool combine_;
};

/// Whole-transaction global lock (serializable floor/ceiling reference).
class GlobalLockAdapter {
  using Map = baselines::CoarseLockMap<long, long>;

 public:
  static std::string name() { return "global-lock"; }
  template <class Body>
  void txn(Body&& body) {
    map_.transaction([&](Map& m) { body(m); });
  }
  void prefill(long k, long v) { map_.unsafe_put(k, v); }
  stm::StatsSnapshot stats() { return {}; }
  void reset_stats() {}

 private:
  Map map_;
};

}  // namespace proust::bench
