// Machine-readable benchmark output. Drivers that print paper-style tables
// can also accumulate JsonRecords and dump them with `--json <path>`, so a
// perf trajectory can be tracked across PRs (see BENCH_STM.json at the repo
// top level). The schema is deliberately flat: one record per measured cell.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/topology.hpp"
#include "stm/stats.hpp"

namespace proust::bench {

struct JsonRecord {
  std::string bench;     // driver name, e.g. "micro_stm"
  std::string workload;  // cell name, e.g. "write_heavy" or an impl name
  std::string mode;      // STM mode, or "" when not applicable
  int threads = 1;
  int ops_per_txn = 1;
  double write_fraction = -1;  // < 0 = not applicable
  double ops_per_sec = 0;
  double abort_ratio = 0;
  std::string scheme;  // clock scheme, or "" when not applicable
  long extra = -1;     // auxiliary swept knob (e.g. striping size M); < 0 = none
  std::string pin;     // pinning policy of the cell, or "" when not swept

  /// Optional attempt-level breakdown (starts/commits/extensions and aborts
  /// by reason) so scheme/mode ablations are diagnosable from the JSON, not
  /// just a throughput number. Call with a StatsSnapshot to attach it.
  JsonRecord& with_stats(const stm::StatsSnapshot& s) {
    stats = s;
    has_stats = true;
    return *this;
  }
  stm::StatsSnapshot stats;
  bool has_stats = false;
};

class JsonWriter {
 public:
  explicit JsonWriter(std::string label) : label_(std::move(label)) {}

  void add(JsonRecord r) { records_.push_back(std::move(r)); }

  /// Write `{"label": ..., "records": [...]}` to `path`. Returns false on
  /// I/O failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"label\": \"%s\",\n  \"records\": [",
                 escape(label_).c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      std::fprintf(f,
                   "%s\n    {\"bench\": \"%s\", \"workload\": \"%s\", "
                   "\"mode\": \"%s\", \"threads\": %d, \"ops_per_txn\": %d, "
                   "\"write_fraction\": %.3f, \"ops_per_sec\": %.1f, "
                   "\"abort_ratio\": %.5f",
                   i == 0 ? "" : ",", escape(r.bench).c_str(),
                   escape(r.workload).c_str(), escape(r.mode).c_str(),
                   r.threads, r.ops_per_txn, r.write_fraction, r.ops_per_sec,
                   r.abort_ratio);
      if (!r.scheme.empty()) {
        std::fprintf(f, ", \"scheme\": \"%s\"", escape(r.scheme).c_str());
      }
      if (r.extra >= 0) {
        std::fprintf(f, ", \"extra\": %ld", r.extra);
      }
      if (!r.pin.empty()) {
        std::fprintf(f, ", \"pin\": \"%s\"", escape(r.pin).c_str());
      }
      // Host topology in every record: entries from different machines in
      // one BENCH_STM.json stay machine-comparable.
      {
        const topo::Topology& t = topo::Topology::system();
        std::fprintf(f,
                     ", \"host\": {\"cpus\": %u, \"nodes\": %u, "
                     "\"smt\": %s}",
                     t.cpu_count(), t.node_count, t.smt ? "true" : "false");
      }
      if (r.has_stats) {
        std::fprintf(f,
                     ", \"starts\": %llu, \"commits\": %llu, "
                     "\"extensions\": %llu, \"aborts\": {",
                     static_cast<unsigned long long>(r.stats.starts),
                     static_cast<unsigned long long>(r.stats.commits),
                     static_cast<unsigned long long>(r.stats.extensions));
        bool first = true;
        for (std::size_t j = 0; j < r.stats.aborts.size(); ++j) {
          if (r.stats.aborts[j] == 0) continue;
          std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ",
                       stm::to_string(static_cast<stm::AbortReason>(j)),
                       static_cast<unsigned long long>(r.stats.aborts[j]));
          first = false;
        }
        std::fprintf(f, "}");
        if (r.stats.total_calls() > 0) {
          std::fprintf(
              f, ", \"attempts\": {\"p50\": %llu, \"p99\": %llu, \"max\": %llu}",
              static_cast<unsigned long long>(r.stats.attempts_percentile(0.5)),
              static_cast<unsigned long long>(
                  r.stats.attempts_percentile(0.99)),
              static_cast<unsigned long long>(r.stats.max_attempts));
        }
        if (r.stats.backoff_ns + r.stats.cm_wait_ns + r.stats.throttle_ns >
            0) {
          std::fprintf(f,
                       ", \"wait_ns\": {\"backoff\": %llu, \"cm\": %llu, "
                       "\"throttle\": %llu}, \"throttle_waits\": %llu",
                       static_cast<unsigned long long>(r.stats.backoff_ns),
                       static_cast<unsigned long long>(r.stats.cm_wait_ns),
                       static_cast<unsigned long long>(r.stats.throttle_ns),
                       static_cast<unsigned long long>(r.stats.throttle_waits));
        }
        if (r.stats.gate_holds > 0) {
          std::fprintf(f,
                       ", \"gate\": {\"holds\": %llu, \"total_ns\": %llu, "
                       "\"max_ns\": %llu}",
                       static_cast<unsigned long long>(r.stats.gate_holds),
                       static_cast<unsigned long long>(r.stats.gate_ns),
                       static_cast<unsigned long long>(r.stats.gate_max_ns));
        }
        if (r.stats.ro_commits + r.stats.mvcc_pushed > 0) {
          std::fprintf(
              f,
              ", \"mvcc\": {\"ro_commits\": %llu, \"pushed\": %llu, "
              "\"reclaimed\": %llu, \"chain_max\": %llu}",
              static_cast<unsigned long long>(r.stats.ro_commits),
              static_cast<unsigned long long>(r.stats.mvcc_pushed),
              static_cast<unsigned long long>(r.stats.mvcc_reclaimed),
              static_cast<unsigned long long>(r.stats.mvcc_chain_max));
        }
        if (r.stats.total_injected() > 0) {
          std::fprintf(f, ", \"injected\": {");
          bool ifirst = true;
          for (std::size_t j = 0; j < r.stats.injected.size(); ++j) {
            if (r.stats.injected[j] == 0) continue;
            std::fprintf(f, "%s\"%s\": %llu", ifirst ? "" : ", ",
                         stm::to_string(static_cast<stm::ChaosPoint>(j)),
                         static_cast<unsigned long long>(r.stats.injected[j]));
            ifirst = false;
          }
          std::fprintf(f, "}");
        }
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    return ok;
  }

  const std::vector<JsonRecord>& records() const noexcept { return records_; }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string label_;
  std::vector<JsonRecord> records_;
};

}  // namespace proust::bench
