// Machine-readable benchmark output. Drivers that print paper-style tables
// can also accumulate JsonRecords and dump them with `--json <path>`, so a
// perf trajectory can be tracked across PRs (see BENCH_STM.json at the repo
// top level). The schema is deliberately flat: one record per measured cell.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace proust::bench {

struct JsonRecord {
  std::string bench;     // driver name, e.g. "micro_stm"
  std::string workload;  // cell name, e.g. "write_heavy" or an impl name
  std::string mode;      // STM mode, or "" when not applicable
  int threads = 1;
  int ops_per_txn = 1;
  double write_fraction = -1;  // < 0 = not applicable
  double ops_per_sec = 0;
  double abort_ratio = 0;
};

class JsonWriter {
 public:
  explicit JsonWriter(std::string label) : label_(std::move(label)) {}

  void add(JsonRecord r) { records_.push_back(std::move(r)); }

  /// Write `{"label": ..., "records": [...]}` to `path`. Returns false on
  /// I/O failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"label\": \"%s\",\n  \"records\": [",
                 escape(label_).c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      std::fprintf(f,
                   "%s\n    {\"bench\": \"%s\", \"workload\": \"%s\", "
                   "\"mode\": \"%s\", \"threads\": %d, \"ops_per_txn\": %d, "
                   "\"write_fraction\": %.3f, \"ops_per_sec\": %.1f, "
                   "\"abort_ratio\": %.5f}",
                   i == 0 ? "" : ",", escape(r.bench).c_str(),
                   escape(r.workload).c_str(), escape(r.mode).c_str(),
                   r.threads, r.ops_per_txn, r.write_fraction, r.ops_per_sec,
                   r.abort_ratio);
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    return ok;
  }

  const std::vector<JsonRecord>& records() const noexcept { return records_; }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string label_;
  std::vector<JsonRecord> records_;
};

}  // namespace proust::bench
