// Optional process-wide fault-injection hook for the sync layer. The
// reentrant RW lock calls into it at its three interesting transitions —
// the group-join CAS, slow-path entry (where a forced timeout can be
// injected) and futex parking — so a chaos policy living above this layer
// (stm/chaos.hpp implements the interface) can widen race windows and
// exercise the timeout-abort recovery path deterministically.
//
// The hook is a single global pointer checked with one relaxed load per
// first-acquire; when no hook is installed (the default) the cost is a
// never-taken predictable branch. Install/remove only while the locks are
// quiesced (no acquires in flight) — the chaos harness installs before
// spawning its worker threads and removes after joining them.
#pragma once

#include <atomic>
#include <cstdint>

namespace proust::sync {

enum class LockTransition : std::uint8_t {
  kJoinCas,       // about to attempt a first-acquire group-join CAS
  kSlowPath,      // entered the spin/park slow path; `true` forces a timeout
  kPark,          // about to park on the futex eventcount
};

class ChaosLockHook {
 public:
  /// Called at each transition. The return value is consulted only for
  /// kSlowPath: `true` makes the acquisition fail as if it had timed out
  /// (the caller then runs its normal deadlock-recovery path). The hook may
  /// delay/yield internally but must not throw or re-enter the lock.
  virtual bool on_lock_transition(LockTransition t) noexcept = 0;

 protected:
  ~ChaosLockHook() = default;
};

namespace detail {
inline std::atomic<ChaosLockHook*> g_lock_hook{nullptr};
}  // namespace detail

inline void set_chaos_lock_hook(ChaosLockHook* hook) noexcept {
  detail::g_lock_hook.store(hook, std::memory_order_release);
}

inline ChaosLockHook* chaos_lock_hook() noexcept {
  return detail::g_lock_hook.load(std::memory_order_relaxed);
}

}  // namespace proust::sync
