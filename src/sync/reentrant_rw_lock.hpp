// Re-entrant reader-writer locks used as *abstract locks* by the pessimistic
// lock-allocator policy (Boosting-style concurrency control, §2/§3).
//
// Two sharing disciplines are supported, because the paper's PQueue example
// (Listing 3 discussion) needs both:
//   kReaderWriter — readers share, at most one writer (classic RW lock);
//   kGroup        — readers share AND writers share, but the two groups
//                   exclude each other ("multiple writers or multiple
//                   readers, but not both simultaneously"). This is how
//                   commuting insert()s avoid serializing under the
//                   pessimistic LAP.
//
// Holds are owned by an opaque token (the transaction), are re-entrant per
// owner, and support read→write upgrade when no other owner blocks it.
// Acquisition is bounded by a timeout; timing out is how the Proust runtime
// recovers from (abstract-lock-level) deadlock: the transaction aborts,
// releases everything, backs off and retries — reproducing the weak
// contention-manager coupling §7 describes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace proust::sync {

enum class LockKind : std::uint8_t { kReaderWriter, kGroup };

class ReentrantRwLock {
 public:
  explicit ReentrantRwLock(LockKind kind = LockKind::kReaderWriter) noexcept
      : kind_(kind) {}
  ReentrantRwLock(const ReentrantRwLock&) = delete;
  ReentrantRwLock& operator=(const ReentrantRwLock&) = delete;

  /// Acquire a hold for `owner` (write=true for the write group). Returns
  /// false on timeout. Re-entrant: an owner may stack any number of holds in
  /// either mode; upgrades wait for other owners to drain.
  bool try_acquire(const void* owner, bool write,
                   std::chrono::nanoseconds timeout);

  /// Drop every hold owned by `owner`. No-op if it holds nothing.
  void release_all(const void* owner);

  /// True if `owner` currently holds the lock in a mode at least as strong
  /// as requested (diagnostics/assertions).
  bool holds(const void* owner, bool write) const;

  LockKind kind() const noexcept { return kind_; }

 private:
  struct Holds {
    int readers = 0;
    int writers = 0;
  };

  bool admissible(const void* owner, bool write) const;

  LockKind kind_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<const void*, Holds> holds_;
  int reading_owners_ = 0;  // owners with readers > 0
  int writing_owners_ = 0;  // owners with writers > 0
};

}  // namespace proust::sync
