// Re-entrant reader-writer locks used as *abstract locks* by the pessimistic
// lock-allocator policy (Boosting-style concurrency control, §2/§3).
//
// Two sharing disciplines are supported, because the paper's PQueue example
// (Listing 3 discussion) needs both:
//   kReaderWriter — readers share, at most one writer (classic RW lock);
//   kGroup        — readers share AND writers share, but the two groups
//                   exclude each other ("multiple writers or multiple
//                   readers, but not both simultaneously"). This is how
//                   commuting insert()s avoid serializing under the
//                   pessimistic LAP.
//
// The whole lock is one cache-line-aligned 64-bit state word counting the
// *distinct owners* currently in each group, plus a parked-waiter count:
//
//     bits  0..20   owners holding read   (kOwnerBits = 21)
//     bits 21..41   owners holding write
//     bits 42..62   threads parked or about to park
//     bit  63       unused
//
// Per-owner re-entrancy counts live in the owner's own Hold record (for
// transactions: a flat array in the txn arena — see DESIGN.md §8), not in
// any shared map, so a re-acquire of a mode already held is a thread-local
// increment that touches nothing shared, and a first acquire is a single
// CAS that adds this owner to the group. The slow path spins briefly, then
// parks on a futex-backed eventcount (sync/futex.hpp); releases that leave
// waiters behind bump the eventcount and wake everyone, because any release
// can unblock an upgrader or a whole group and filtering wakeups precisely
// is not worth the bookkeeping at this fan-out.
//
// Acquisition is bounded by a timeout; timing out is how the Proust runtime
// recovers from (abstract-lock-level) deadlock: the transaction aborts,
// releases everything, backs off and retries — reproducing the weak
// contention-manager coupling §7 describes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace proust::sync {

enum class LockKind : std::uint8_t { kReaderWriter, kGroup };

class alignas(64) ReentrantRwLock {
 public:
  /// One owner's membership in this lock: how many read / write holds it has
  /// stacked. The owner stores this (the lock holds no per-owner state); it
  /// must be zero-initialized before first use and passed to every call on
  /// this lock by the same owner. Standalone users can use this struct
  /// directly; transactions keep the two counters in their arena-resident
  /// hold records and use the two-reference overloads.
  struct Hold {
    std::uint32_t readers = 0;
    std::uint32_t writers = 0;
  };

  explicit ReentrantRwLock(LockKind kind = LockKind::kReaderWriter) noexcept
      : kind_(kind) {}
  ReentrantRwLock(const ReentrantRwLock&) = delete;
  ReentrantRwLock& operator=(const ReentrantRwLock&) = delete;

  /// Acquire one hold in the given mode (write=true for the write group) on
  /// behalf of the owner whose membership counters are `my_readers` /
  /// `my_writers`. Returns false on timeout, leaving the counters untouched.
  /// Re-entrant: an owner may stack any number of holds in either mode;
  /// upgrades wait for other owners to drain (and can time out — that is
  /// the deadlock-recovery path when two readers race to upgrade).
  bool try_acquire(std::uint32_t& my_readers, std::uint32_t& my_writers,
                   bool write, std::chrono::nanoseconds timeout);

  bool try_acquire(Hold& h, bool write, std::chrono::nanoseconds timeout) {
    return try_acquire(h.readers, h.writers, write, timeout);
  }

  /// Drop every hold recorded in the counters (both modes), zeroing them.
  /// No-op if the owner holds nothing.
  void release_all(std::uint32_t& my_readers, std::uint32_t& my_writers);

  void release_all(Hold& h) { release_all(h.readers, h.writers); }

  /// True if the hold record is at least as strong as the requested mode
  /// (diagnostics/assertions). Purely owner-local: hold state lives with
  /// the owner, so the lock itself is not consulted.
  static bool holds(const Hold& h, bool write) noexcept {
    return write ? h.writers > 0 : (h.readers > 0 || h.writers > 0);
  }

  LockKind kind() const noexcept { return kind_; }

  /// Owners currently in the read / write group (diagnostics; racy by
  /// nature, exact only when concurrent activity is externally quiesced).
  unsigned reader_owners() const noexcept {
    return unsigned(state_.load(std::memory_order_acquire) & kCountMask);
  }
  unsigned writer_owners() const noexcept {
    return unsigned((state_.load(std::memory_order_acquire) >> kWriterShift) &
                    kCountMask);
  }
  unsigned parked_waiters() const noexcept {
    return unsigned((state_.load(std::memory_order_acquire) >> kWaiterShift) &
                    kCountMask);
  }

 private:
  static constexpr unsigned kOwnerBits = 21;
  static constexpr std::uint64_t kCountMask = (std::uint64_t{1} << kOwnerBits) - 1;
  static constexpr unsigned kWriterShift = kOwnerBits;
  static constexpr unsigned kWaiterShift = 2 * kOwnerBits;
  static constexpr std::uint64_t kReaderOne = 1;
  static constexpr std::uint64_t kWriterOne = std::uint64_t{1} << kWriterShift;
  static constexpr std::uint64_t kWaiterOne = std::uint64_t{1} << kWaiterShift;

  /// Would joining `write ? write group : read group` be admissible for an
  /// owner whose current membership is (in_read, in_write), given state `s`?
  /// "Other" counts subtract the owner's own membership, which is what makes
  /// upgrades and mixed-mode re-entrancy work without a hold map.
  bool admissible(std::uint64_t s, bool in_read, bool in_write,
                  bool write) const noexcept {
    const std::uint64_t other_readers = (s & kCountMask) - (in_read ? 1 : 0);
    const std::uint64_t other_writers =
        ((s >> kWriterShift) & kCountMask) - (in_write ? 1 : 0);
    if (write) {
      if (other_readers != 0) return false;
      return kind_ == LockKind::kGroup || other_writers == 0;
    }
    return other_writers == 0;
  }

  /// One CAS attempt to join the requested group: fails fast if the current
  /// state is not admissible, retries the CAS while it is.
  bool try_join(bool in_read, bool in_write, bool write) noexcept;

  /// Spin-then-park slow path; returns false only on timeout.
  bool join_slow(bool in_read, bool in_write, bool write,
                 std::chrono::nanoseconds timeout) noexcept;

  LockKind kind_;
  std::atomic<std::uint64_t> state_{0};
  // Eventcount for parking: releasers that see waiters bump it and wake all.
  // A separate word from state_ so wakeups are not confounded with the
  // admissibility CAS traffic the futex value-check would otherwise race.
  std::atomic<std::uint32_t> wake_seq_{0};
};

}  // namespace proust::sync
