// Timed futex-style parking for the abstract-lock slow path. C++20's
// std::atomic::wait has no deadline, but abstract-lock acquisition must be
// bounded (timeouts are how the Proust runtime breaks abstract-lock
// deadlock, §7), so on Linux we call the futex syscall directly — the same
// primitive atomic::wait is built on — and elsewhere fall back to short
// deadline-checked naps. Callers always re-check their predicate in a loop:
// both paths may wake spuriously and neither conveys a value.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <climits>
#include <ctime>
#endif

namespace proust::sync {

/// Block while `word == expected`, until a futex_wake_all on `word`, the
/// deadline, or a spurious wakeup. If `word` already differs, returns at
/// once (the kernel re-checks the value under its internal lock, which is
/// what makes the publish-then-wait protocol lossless).
inline void futex_wait_until(std::atomic<std::uint32_t>& word,
                             std::uint32_t expected,
                             std::chrono::steady_clock::time_point deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) return;
#if defined(__linux__)
  static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t));
  const auto rel =
      std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now);
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(rel.count() / 1000000000LL);
  ts.tv_nsec = static_cast<long>(rel.count() % 1000000000LL);
  // FUTEX_WAIT interprets the timeout as relative CLOCK_MONOTONIC — the
  // clock steady_clock is specified to follow on Linux.
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
#else
  // Portable fallback: wake latency is bounded by the nap length instead of
  // being event-driven. Only the parked (already losing) path pays this.
  if (word.load(std::memory_order_acquire) != expected) return;
  const auto nap = std::chrono::microseconds(50);
  std::this_thread::sleep_for(deadline - now < nap ? deadline - now : nap);
#endif
}

/// Wake every thread parked in futex_wait_until on `word`.
inline void futex_wake_all(std::atomic<std::uint32_t>& word) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
#else
  (void)word;  // sleepers poll on their own schedule
#endif
}

}  // namespace proust::sync
