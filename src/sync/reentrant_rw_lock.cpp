#include "sync/reentrant_rw_lock.hpp"

#include "sync/chaos_hook.hpp"
#include "sync/cm_hook.hpp"
#include "sync/futex.hpp"

namespace proust::sync {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

// Bounded spin before parking. Abstract-lock critical sections are short
// (one base-object operation), so a brief spin usually rides out the owner;
// anything longer and the futex path takes over.
constexpr int kSpinBound = 64;

}  // namespace

bool ReentrantRwLock::try_join(bool in_read, bool in_write,
                               bool write) noexcept {
  std::uint64_t s = state_.load(std::memory_order_relaxed);
  while (admissible(s, in_read, in_write, write)) {
    const std::uint64_t next = s + (write ? kWriterOne : kReaderOne);
    if (state_.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

bool ReentrantRwLock::try_acquire(std::uint32_t& my_readers,
                                  std::uint32_t& my_writers, bool write,
                                  std::chrono::nanoseconds timeout) {
  std::uint32_t& mine = write ? my_writers : my_readers;
  if (mine > 0) {
    // Re-entrant re-acquire of a mode already held: group membership is
    // unchanged, so this is a pure owner-local increment. Always admissible:
    // holding the mode means the excluded groups are already drained, an
    // invariant no concurrent acquire can break while we are a member.
    ++mine;
    return true;
  }
  const bool in_read = my_readers > 0;
  const bool in_write = my_writers > 0;
  if (ChaosLockHook* hook = chaos_lock_hook(); hook != nullptr) [[unlikely]] {
    // Injected delay before the join CAS widens the window between the
    // admissibility check and the RMW, manufacturing CAS races on demand.
    hook->on_lock_transition(LockTransition::kJoinCas);
  }
  if (try_join(in_read, in_write, write) ||
      join_slow(in_read, in_write, write, timeout)) {
    mine = 1;
    return true;
  }
  return false;
}

bool ReentrantRwLock::join_slow(bool in_read, bool in_write, bool write,
                                std::chrono::nanoseconds timeout) noexcept {
  if (ChaosLockHook* hook = chaos_lock_hook(); hook != nullptr) [[unlikely]] {
    // A forced timeout here fails the contended acquisition immediately —
    // exactly the state a real deadlock would end in after the full wait —
    // so the caller's timeout-recovery path runs without burning wall time.
    if (hook->on_lock_transition(LockTransition::kSlowPath)) return false;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (int i = 0; i < kSpinBound; ++i) {
    cpu_relax();
    if (try_join(in_read, in_write, write)) return true;
  }
  // Park. Registering the waiter with an RMW *on the state word itself* is
  // what makes the sleep lossless: fetch_add returns the latest value in
  // modification order, so either it already reflects the release we are
  // waiting for (and we join below without sleeping), or any later release
  // is ordered after our registration, sees the waiter count, and bumps
  // wake_seq_ before waking (see release_all).
  std::uint64_t s =
      state_.fetch_add(kWaiterOne, std::memory_order_acq_rel) + kWaiterOne;
  bool joined = false;
  unsigned wait_round = 0;
  for (;;) {
    if (admissible(s, in_read, in_write, write)) {
      const std::uint64_t next = s + (write ? kWriterOne : kReaderOne);
      if (state_.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        joined = true;
        break;
      }
      continue;  // failed CAS reloaded s
    }
    const std::uint32_t seq = wake_seq_.load(std::memory_order_acquire);
    // Re-check after capturing the eventcount: a release between this load
    // and the futex call bumps wake_seq_, so the wait returns immediately.
    s = state_.load(std::memory_order_acquire);
    if (admissible(s, in_read, in_write, write)) continue;
    if (std::chrono::steady_clock::now() >= deadline) break;
    if (CmLockArbiter* arb = cm_lock_arbiter(); arb != nullptr) [[unlikely]] {
      // The contention manager can end the wait early — e.g. shed this
      // queue while a starving elder transaction needs the lock to drain.
      // Failing here is indistinguishable from a timeout to the caller,
      // which is exactly the recovery path we want it to run.
      if (arb->on_contended_park(this, write, wait_round++) ==
          CmWaitVerdict::kGiveUp) {
        break;
      }
    }
    if (ChaosLockHook* hook = chaos_lock_hook(); hook != nullptr) [[unlikely]] {
      hook->on_lock_transition(LockTransition::kPark);
    }
    futex_wait_until(wake_seq_, seq, deadline);
    s = state_.load(std::memory_order_acquire);
  }
  state_.fetch_sub(kWaiterOne, std::memory_order_relaxed);
  // Timed out while blocked: grant anyway if the lock became admissible at
  // the deadline (the condvar implementation behaved this way, and the
  // pessimistic LAP's tests pin it).
  if (!joined) joined = try_join(in_read, in_write, write);
  return joined;
}

void ReentrantRwLock::release_all(std::uint32_t& my_readers,
                                  std::uint32_t& my_writers) {
  std::uint64_t dec = 0;
  if (my_readers > 0) dec += kReaderOne;
  if (my_writers > 0) dec += kWriterOne;
  my_readers = 0;
  my_writers = 0;
  if (dec == 0) return;
  const std::uint64_t now = state_.fetch_sub(dec, std::memory_order_acq_rel) - dec;
  if (((now >> kWaiterShift) & kCountMask) != 0) {
    // Someone is parked or committing to park: publish the change on the
    // eventcount and wake everyone. Wake-all is deliberate — a release can
    // unblock the reader group, the writer group (kGroup), or a parked
    // upgrader, and filtering precisely is not worth extra shared state at
    // stripe-level fan-out.
    wake_seq_.fetch_add(1, std::memory_order_release);
    futex_wake_all(wake_seq_);
  }
}

}  // namespace proust::sync
