#include "sync/reentrant_rw_lock.hpp"

namespace proust::sync {

bool ReentrantRwLock::admissible(const void* owner, bool write) const {
  auto it = holds_.find(owner);
  const bool i_read = it != holds_.end() && it->second.readers > 0;
  const bool i_write = it != holds_.end() && it->second.writers > 0;
  const int other_readers = reading_owners_ - (i_read ? 1 : 0);
  const int other_writers = writing_owners_ - (i_write ? 1 : 0);
  if (write) {
    if (other_readers > 0) return false;
    if (kind_ == LockKind::kReaderWriter && other_writers > 0) return false;
    return true;
  }
  return other_writers == 0;
}

bool ReentrantRwLock::try_acquire(const void* owner, bool write,
                                  std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> g(mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!admissible(owner, write)) {
    if (cv_.wait_until(g, deadline) == std::cv_status::timeout) {
      if (admissible(owner, write)) break;
      return false;
    }
  }
  Holds& h = holds_[owner];
  if (write) {
    if (h.writers == 0) ++writing_owners_;
    ++h.writers;
  } else {
    if (h.readers == 0) ++reading_owners_;
    ++h.readers;
  }
  return true;
}

void ReentrantRwLock::release_all(const void* owner) {
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = holds_.find(owner);
    if (it == holds_.end()) return;
    if (it->second.readers > 0) --reading_owners_;
    if (it->second.writers > 0) --writing_owners_;
    holds_.erase(it);
  }
  cv_.notify_all();
}

bool ReentrantRwLock::holds(const void* owner, bool write) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = holds_.find(owner);
  if (it == holds_.end()) return false;
  return write ? it->second.writers > 0
               : (it->second.readers > 0 || it->second.writers > 0);
}

}  // namespace proust::sync
