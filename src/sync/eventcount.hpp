// A minimal eventcount over the futex primitive (sync/futex.hpp): waiters
// snapshot a generation word, re-check their predicate, and park until the
// word moves; notifiers bump the word and wake everyone. The
// prepare/recheck/park shape is what makes the protocol lossless — a notify
// that lands between the snapshot and the park changes the word, so the
// futex call returns immediately instead of sleeping through the event.
//
// The WAL's group committer parks on one of these between batches (with a
// deadline, so fsync_interval_us is honored even when no producer ever
// notifies), and strict-durability committers park on another until the
// durable epoch covers them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "sync/futex.hpp"

namespace proust::sync {

class EventCount {
 public:
  /// Snapshot the generation. Call BEFORE re-checking the predicate; pass
  /// the ticket to wait_until.
  std::uint32_t prepare() const noexcept {
    return gen_.load(std::memory_order_acquire);
  }

  /// Park until notified past `ticket`, the deadline, or a spurious wakeup.
  /// Callers loop on their predicate.
  void wait_until(std::uint32_t ticket,
                  std::chrono::steady_clock::time_point deadline) noexcept {
    futex_wait_until(gen_, ticket, deadline);
  }

  /// Publish an event: bump the generation and wake every parked waiter.
  void notify_all() noexcept {
    gen_.fetch_add(1, std::memory_order_acq_rel);
    futex_wake_all(gen_);
  }

 private:
  mutable std::atomic<std::uint32_t> gen_{0};
};

}  // namespace proust::sync
