// Optional process-wide contention-management hook for the sync layer —
// the same single-global-pointer idiom as sync/chaos_hook.hpp, but pointed
// the other way: where the chaos hook injects adversity, this one injects
// *policy*. The reentrant RW lock consults it from the contended slow path
// (each wait round, before parking) so a contention manager living above
// this layer (stm/contention.hpp implements the interface) can tell a
// waiter to give up early — e.g. while a starving "elder" transaction is
// published and the locks it needs must drain rather than grow new queues.
//
// Giving up surfaces to the caller as an acquisition timeout, which is the
// sync layer's one failure verb; above it, the pessimistic LAP already
// turns that into abort-release-backoff-retry, so no new unwinding path is
// needed. When no arbiter is installed (the default) the cost is one
// relaxed load and a never-taken branch per contended wait round — the
// uncontended fast path never gets here.
#pragma once

#include <atomic>
#include <cstdint>

namespace proust::sync {

enum class CmWaitVerdict : std::uint8_t {
  kKeepWaiting,  // park as usual
  kGiveUp,       // fail the acquisition now (reported as timeout)
};

class CmLockArbiter {
 public:
  /// Consulted once per slow-path wait round for `lock` (opaque identity),
  /// before parking. `round` counts wait rounds within this acquisition,
  /// starting at 0. Must not throw, block, or re-enter any lock.
  virtual CmWaitVerdict on_contended_park(const void* lock, bool write,
                                          unsigned round) noexcept = 0;

  virtual ~CmLockArbiter() = default;
};

namespace detail {
inline std::atomic<CmLockArbiter*> g_cm_arbiter{nullptr};
}  // namespace detail

/// Install/remove the process-wide arbiter. Like the chaos hook, swap only
/// while contended acquisitions are quiesced (install before spawning
/// workers, remove after joining them).
inline void set_cm_lock_arbiter(CmLockArbiter* a) noexcept {
  detail::g_cm_arbiter.store(a, std::memory_order_release);
}

inline CmLockArbiter* cm_lock_arbiter() noexcept {
  return detail::g_cm_arbiter.load(std::memory_order_relaxed);
}

}  // namespace proust::sync
