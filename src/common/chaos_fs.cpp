#include "common/chaos_fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

namespace proust::common {

namespace {

class RealFs final : public Fs {
 public:
  int open(const char* path, int flags, unsigned mode) noexcept override {
    return ::open(path, flags, static_cast<mode_t>(mode));
  }
  long write(int fd, const void* buf, std::size_t n) noexcept override {
    return static_cast<long>(::write(fd, buf, n));
  }
  int fsync(int fd) noexcept override { return ::fsync(fd); }
  int rename(const char* from, const char* to) noexcept override {
    return ::rename(from, to);
  }
  int close(int fd) noexcept override { return ::close(fd); }
  int unlink(const char* path) noexcept override { return ::unlink(path); }
};

std::uint64_t splitmix64(std::uint64_t& s) noexcept {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& s) noexcept {
  return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
}

}  // namespace

Fs& Fs::real() noexcept {
  static RealFs fs;
  return fs;
}

ChaosFs::ChaosFs(ChaosFsConfig cfg, Fs* inner)
    : cfg_(cfg), inner_(inner != nullptr ? inner : &Fs::real()), rng_(cfg.seed) {
  for (auto& e : cfg_.err) {
    if (e == 0) e = EIO;
  }
}

void ChaosFs::inject_once(FsFault f) {
  std::lock_guard<std::mutex> lk(mu_);
  script_.push_back(f);
}

ChaosFs::Counters ChaosFs::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::optional<FsFault> ChaosFs::draw(FsOp op) noexcept {
  const auto i = static_cast<std::size_t>(op);
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.calls[i];
  for (auto it = script_.begin(); it != script_.end(); ++it) {
    if (it->op != op) continue;
    const FsFault f = *it;
    script_.erase(it);
    if (f.short_write) {
      ++counters_.short_writes;
    } else {
      ++counters_.injected[i];
    }
    return f;
  }
  if (op == FsOp::Write && cfg_.short_write_prob > 0 &&
      uniform01(rng_) < cfg_.short_write_prob) {
    ++counters_.short_writes;
    return FsFault{op, 0, true};
  }
  if (cfg_.err_prob[i] > 0 && uniform01(rng_) < cfg_.err_prob[i]) {
    ++counters_.injected[i];
    return FsFault{op, cfg_.err[i], false};
  }
  return std::nullopt;
}

int ChaosFs::open(const char* path, int flags, unsigned mode) noexcept {
  if (const auto f = draw(FsOp::Open)) {
    errno = f->err;
    return -1;
  }
  return inner_->open(path, flags, mode);
}

long ChaosFs::write(int fd, const void* buf, std::size_t n) noexcept {
  if (const auto f = draw(FsOp::Write)) {
    if (f->short_write && n > 1) {
      // Deliver a strict prefix through the inner fs: the bytes are real,
      // only the count is short — exactly what a full disk stripe or a
      // signal-interrupted write produces.
      return inner_->write(fd, buf, n / 2);
    }
    if (!f->short_write) {
      errno = f->err;
      return -1;
    }
  }
  return inner_->write(fd, buf, n);
}

int ChaosFs::fsync(int fd) noexcept {
  if (const auto f = draw(FsOp::Fsync)) {
    errno = f->err;
    return -1;
  }
  return inner_->fsync(fd);
}

int ChaosFs::rename(const char* from, const char* to) noexcept {
  if (const auto f = draw(FsOp::Rename)) {
    errno = f->err;
    return -1;
  }
  return inner_->rename(from, to);
}

int ChaosFs::close(int fd) noexcept {
  if (const auto f = draw(FsOp::Close)) {
    // Still close the real descriptor — a reported-failed close(2) has
    // released the fd; leaking it would turn an injected error into a
    // descriptor exhaustion bug in long matrix runs.
    (void)inner_->close(fd);
    errno = f->err;
    return -1;
  }
  return inner_->close(fd);
}

int ChaosFs::unlink(const char* path) noexcept {
  if (const auto f = draw(FsOp::Unlink)) {
    errno = f->err;
    return -1;
  }
  return inner_->unlink(path);
}

}  // namespace proust::common
