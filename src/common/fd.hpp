// RAII POSIX file descriptor. The durability layer (stm/wal.cpp,
// stm/checkpoint.cpp) juggles segment, directory, and tmp-file descriptors
// across error paths that throw or early-return; UniqueFd makes every one of
// those paths leak-free by construction instead of by audit.
#pragma once

#include <unistd.h>

#include <utility>

namespace proust::common {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  UniqueFd(UniqueFd&& o) noexcept : fd_(o.release()) {}
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) reset(o.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  int get() const noexcept { return fd_; }
  bool ok() const noexcept { return fd_ >= 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// Give up ownership without closing.
  int release() noexcept { return std::exchange(fd_, -1); }

  /// Close the held descriptor (if any) and adopt `fd`. Close errors are
  /// ignored — callers that must observe them (fsyncgate) fsync first.
  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace proust::common
