// Bounded randomized exponential backoff, used by the STM contention manager
// and by the pessimistic lock-allocator policy when abstract-lock acquisition
// times out.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/rng.hpp"

namespace proust {

class Backoff {
 public:
  /// `yield_after` is the spin-vs-nap split: once the randomized window
  /// reaches it, every pause also surrenders the processor (spinning past
  /// that point starves the opponent on oversubscribed machines). The STM
  /// exposes all three parameters through StmOptions.
  explicit Backoff(std::uint64_t seed = 1, std::uint32_t min_spins = 32,
                   std::uint32_t max_spins = 1u << 16,
                   std::uint32_t yield_after = 4096) noexcept
      : rng_(seed), limit_(min_spins), min_spins_(min_spins),
        max_spins_(max_spins), yield_after_(yield_after) {}

  /// Spin (and eventually yield) for a randomized, exponentially growing
  /// duration. Caps at max_spins to avoid unbounded delay.
  void pause() noexcept {
    const std::uint64_t spins = rng_.below(limit_) + 1;
    for (std::uint64_t i = 0; i < spins; ++i) {
      cpu_relax();
    }
    if (limit_ >= yield_after_) {
      std::this_thread::yield();
    }
    if (limit_ < max_spins_) limit_ *= 2;
  }

  void reset() noexcept { limit_ = min_spins_; }

  std::uint32_t current_limit() const noexcept { return limit_; }

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
  }

 private:
  Xoshiro256 rng_;
  std::uint32_t limit_;
  std::uint32_t min_spins_;
  std::uint32_t max_spins_;
  std::uint32_t yield_after_;
};

}  // namespace proust
