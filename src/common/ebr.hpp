// Epoch-based reclamation (EBR). A minimal, self-contained domain that lets
// lock-free readers traverse linked structures while unlinked nodes are
// reclaimed after a grace period, instead of leaking them to a
// free-at-destruction pool (the skip list's old scheme) or paying per-node
// reference counts on every traversal.
//
// Protocol:
//  - A global epoch counter advances by one when every pinned thread has
//    announced the current epoch.
//  - Readers (and unlinkers — see the contract below) pin the domain for
//    the duration of a traversal (Guard): they announce the global epoch on
//    entry and go idle on exit. Announcing is two loads and a store on a
//    thread-private cache line.
//  - Writers unlink a node *while pinned*, then retire it into the retiring
//    slot's limbo bucket for the current epoch (buckets are slot-private,
//    so retire is free of shared-memory contention).
//  - A node retired in epoch E is freed once the global epoch reaches E+3.
//    Why three advances and not the folklore two: a reader pinned at E+1
//    may have pinned after the advance to E+1 yet before the unlink store
//    became visible to it (the unlinker's announcement — the only thing the
//    advancing scan read — predates the unlink), so it can still acquire a
//    reference to the node. Readers pinned at >= E+2 cannot: the advance to
//    E+2 required the unlinker's pin at E to have ended (its slot read idle
//    or re-announced), which orders the unlink before the E+2 CAS, and the
//    release sequence of epoch CASes carries that edge into every later
//    pin. Readers pinned at <= E+1 are all gone once the epoch reaches E+3
//    (each advance excludes pins more than one epoch old). With four
//    buckets indexed by epoch mod 4, bucket (N+1)%4 holds nodes from epochs
//    <= N-3 whenever the global epoch is N, and may be drained wholesale.
//  - Grace-period advance is driven from retire points (amortized: every
//    kAdvanceEvery retires per slot) and from explicit advance()/quiesce()
//    calls at commit/quiescent points; no background thread.
//
// Slots are the process-wide thread-registry slots (stm/thread_registry.hpp):
// callers pass ThreadRegistry::slot(), and the domain scans only up to the
// highest slot that ever touched it. Reclamation is intrusive — retired
// objects embed an `ebr::Retired` (a next link plus the reclaim callback),
// so retiring allocates nothing and recycling pools can reuse the nodes.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace proust::ebr {

/// Intrusive hook embedded in (or fronting) every retireable object. The
/// reclaim callback runs on whichever thread drains the limbo bucket — it
/// receives the hook pointer and the context registered at retire() time
/// (e.g. a pool to recycle into); implementations recover the full object
/// with a container-of cast.
struct Retired {
  Retired* next = nullptr;
  void (*reclaim)(Retired*, void* ctx) = nullptr;
  void* ctx = nullptr;
};

#ifndef NDEBUG
/// Debug-only census of live Guards on this thread, across every domain.
/// Transactions assert it is zero at attempt boundaries (stm/txn.cpp): an
/// optimistic fast-path read must never leak an epoch pin past the read
/// that took it — a leaked pin silently stalls reclamation for every
/// container the thread ever touches. Deliberately excludes raw
/// enter()/exit() pins, which legitimately outlive a single read: the MVCC
/// reader pin spans an attempt, and the wrappers' attempt-long reader pin
/// (reader_pin/reader_unpin) is released by a finish hook.
inline int& debug_guard_depth_ref() noexcept {
  thread_local int depth = 0;
  return depth;
}
inline int debug_guard_depth() noexcept { return debug_guard_depth_ref(); }
#else
constexpr int debug_guard_depth() noexcept { return 0; }
#endif

class EbrDomain {
  static constexpr std::size_t kCacheLine = 64;
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  static constexpr std::uint64_t kBuckets = 4;
  /// Retires between amortized advance attempts (per slot). Small enough
  /// that single-threaded churn reaches reclaim steady state inside a test
  /// warm-up; large enough that the all-slot scan stays off the hot path.
  static constexpr std::uint64_t kAdvanceEvery = 32;

 public:
  explicit EbrDomain(unsigned max_slots) : max_slots_(max_slots) {
    slots_ = new Slot[max_slots];
  }

  ~EbrDomain() {
    // Destruction implies quiescence: no pinned readers, no concurrent
    // retires. Drain every bucket regardless of epoch arithmetic.
    drain_all();
    delete[] slots_;
  }

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  /// Pin `slot` to the current epoch. COUNTED: enter/exit pairs nest — only
  /// the outermost enter announces and only the matching exit goes idle, so
  /// independent holders on one slot (an attempt-long wrapper pin, a
  /// container Guard, a live Snapshot) compose without coordinating. The
  /// depth counter is slot-private (owner-thread only), so nesting costs one
  /// non-atomic increment. The announce-then-revalidate loop closes the race
  /// where the epoch advances between the load and the announce: on return
  /// the announced value is one the global held *after* the announcement was
  /// visible, so an advancing scan can never have missed this pin and also
  /// advanced past it.
  void enter(unsigned slot) noexcept {
    assert(slot < max_slots_);
    note_slot(slot);
    Slot& s = slots_[slot];
    if (s.depth++ > 0) return;  // nested: the outer pin already announced
    for (;;) {
      const std::uint64_t e = global_.load(std::memory_order_seq_cst);
      s.epoch.store(e, std::memory_order_seq_cst);
      if (global_.load(std::memory_order_seq_cst) == e) return;
    }
  }

  void exit(unsigned slot) noexcept {
    Slot& s = slots_[slot];
    assert(s.depth > 0 && "exit() without matching enter()");
    if (--s.depth > 0) return;  // an enclosing pin is still live
    s.epoch.store(kIdle, std::memory_order_release);
  }

  bool pinned(unsigned slot) const noexcept {
    return slots_[slot].epoch.load(std::memory_order_relaxed) != kIdle;
  }

  /// RAII pin. enter/exit are counted, so a Guard built while its slot is
  /// already pinned (an attempt-long wrapper pin, an enclosing Guard, a live
  /// Snapshot) simply deepens that pin: only the outermost holder pays the
  /// announce fence, and the epoch stays pinned until the last holder on
  /// the slot releases.
  class Guard {
   public:
    Guard(EbrDomain& d, unsigned slot) noexcept : d_(d), slot_(slot) {
#ifndef NDEBUG
      ++debug_guard_depth_ref();
#endif
      d_.enter(slot_);
    }
    ~Guard() {
      d_.exit(slot_);
#ifndef NDEBUG
      --debug_guard_depth_ref();
#endif
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EbrDomain& d_;
    unsigned slot_;
  };

  /// Defer reclamation of `r` until three grace periods have passed. The
  /// caller must have performed the unlink *while pinned* and still be
  /// pinned here (that pin is what publishes the unlink to future epochs —
  /// see the file comment). Allocation-free: `r` lives inside the retired
  /// object. Every kAdvanceEvery retires the slot also tries to advance the
  /// epoch and drain its eligible bucket, so sustained churn reclaims
  /// continuously.
  void retire(unsigned slot, Retired* r, void (*reclaim)(Retired*, void*),
              void* ctx) noexcept {
    assert(slot < max_slots_);
    assert(pinned(slot) && "retire() requires the unlinking pin");
    Slot& s = slots_[slot];
    r->reclaim = reclaim;
    r->ctx = ctx;
    const std::uint64_t e = global_.load(std::memory_order_acquire);
    Bucket& b = s.limbo[e % kBuckets];
    r->next = b.head;
    b.head = r;
    ++b.count;
    s.retired.fetch_add(1, std::memory_order_relaxed);
    if (++s.since_advance >= kAdvanceEvery) {
      s.since_advance = 0;
      advance(slot);
    }
  }

  /// One grace-period step: advance the global epoch if every pinned slot
  /// has announced it, then drain this slot's eligible bucket. Safe to call
  /// at any commit/quiesce point, pinned or not; O(high-water slots).
  void advance(unsigned slot) noexcept {
    std::uint64_t e = global_.load(std::memory_order_seq_cst);
    if (all_announced(e)) {
      // CAS failure means someone else advanced past us; either way the
      // epoch we subsequently observe is safe to drain against.
      global_.compare_exchange_strong(e, e + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst);
    }
    const std::uint64_t now = global_.load(std::memory_order_seq_cst);
    drain_bucket(slots_[slot], (now + 1) % kBuckets);
  }

  /// Drain everything, stepping the epoch as needed. The caller promises no
  /// reader is pinned and no concurrent retire() is running (a quiescent
  /// point — tests, shutdown, maintenance windows). Returns the number of
  /// objects reclaimed.
  std::size_t quiesce() noexcept {
    for (std::uint64_t i = 0; i < kBuckets; ++i) {
      std::uint64_t e = global_.load(std::memory_order_seq_cst);
      if (all_announced(e)) {
        global_.compare_exchange_strong(e, e + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst);
      }
    }
    return drain_all();
  }

  /// Observability: totals across slots (relaxed; exact only at quiescence).
  std::uint64_t retired_count() const noexcept {
    return sum([](const Slot& s) {
      return s.retired.load(std::memory_order_relaxed);
    });
  }
  std::uint64_t reclaimed_count() const noexcept {
    return sum([](const Slot& s) {
      return s.reclaimed.load(std::memory_order_relaxed);
    });
  }
  /// Objects retired but not yet reclaimed.
  std::uint64_t pending() const noexcept {
    return retired_count() - reclaimed_count();
  }

  std::uint64_t epoch() const noexcept {
    return global_.load(std::memory_order_relaxed);
  }

 private:
  struct Bucket {
    Retired* head = nullptr;
    std::uint64_t count = 0;
  };

  /// Per-slot state, padded so neighbouring slots never share a line. The
  /// epoch word is read by advancing threads; the limbo buckets are touched
  /// only by the owning slot (outside quiesce/destruction).
  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
    int depth = 0;  // owner-thread-only pin count (counted enter/exit)
    Bucket limbo[kBuckets];
    std::uint64_t since_advance = 0;
    std::atomic<std::uint64_t> retired{0};
    std::atomic<std::uint64_t> reclaimed{0};
  };

  void note_slot(unsigned slot) noexcept {
    unsigned hw = high_water_.load(std::memory_order_relaxed);
    while (hw < slot + 1 &&
           !high_water_.compare_exchange_weak(hw, slot + 1,
                                              std::memory_order_acq_rel)) {
    }
  }

  bool all_announced(std::uint64_t e) const noexcept {
    const unsigned hw = high_water_.load(std::memory_order_acquire);
    for (unsigned i = 0; i < hw; ++i) {
      const std::uint64_t se = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (se != kIdle && se != e) return false;
    }
    return true;
  }

  std::size_t drain_bucket(Slot& s, std::uint64_t idx) noexcept {
    Bucket& b = s.limbo[idx];
    Retired* r = b.head;
    b.head = nullptr;
    const std::uint64_t n = b.count;
    b.count = 0;
    std::size_t freed = 0;
    while (r != nullptr) {
      Retired* next = r->next;
      r->reclaim(r, r->ctx);
      r = next;
      ++freed;
    }
    if (n != 0) s.reclaimed.fetch_add(n, std::memory_order_relaxed);
    return freed;
  }

  std::size_t drain_all() noexcept {
    std::size_t freed = 0;
    const unsigned hw = high_water_.load(std::memory_order_acquire);
    for (unsigned i = 0; i < hw; ++i) {
      for (std::uint64_t b = 0; b < kBuckets; ++b) {
        freed += drain_bucket(slots_[i], b);
      }
    }
    return freed;
  }

  template <class F>
  std::uint64_t sum(F&& f) const noexcept {
    std::uint64_t t = 0;
    const unsigned hw = high_water_.load(std::memory_order_acquire);
    for (unsigned i = 0; i < hw; ++i) t += f(slots_[i]);
    return t;
  }

  alignas(kCacheLine) std::atomic<std::uint64_t> global_{1};
  std::atomic<unsigned> high_water_{0};
  Slot* slots_;
  unsigned max_slots_;
};

}  // namespace proust::ebr
