// An open-addressing pointer-keyed hash table used as the write-set index
// fallback once a transaction outgrows the linear-scan fast path. Unlike
// std::unordered_map it does no per-node allocation: slots live in one flat
// power-of-two array that is cleared (memset) and reused across attempts and
// transactions, so a warmed-up table does steady-state lookups and inserts
// with zero allocation. No erase — the write set only grows within an
// attempt and is discarded wholesale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

namespace proust {

class FlatPtrMap {
 public:
  void* find(const void* key) const noexcept {
    if (count_ == 0) return nullptr;
    const std::size_t mask = cap_ - 1;
    std::size_t i = hash(key) & mask;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.key == key) return s.val;
      if (s.key == nullptr) return nullptr;
      i = (i + 1) & mask;
    }
  }

  /// Insert a key assumed absent (the write set checks find() first).
  void insert(const void* key, void* val) {
    if (cap_ == 0 || (count_ + 1) * 4 >= cap_ * 3) grow();
    place(key, val);
    ++count_;
  }

  std::size_t size() const noexcept { return count_; }

  /// Forget all entries but keep the slot array for reuse.
  void clear() noexcept {
    if (count_ != 0) {
      std::memset(slots_.get(), 0, cap_ * sizeof(Slot));
      count_ = 0;
    }
  }

 private:
  struct Slot {
    const void* key;
    void* val;
  };

  static std::size_t hash(const void* p) noexcept {
    // Fibonacci-style mix; vars are ≥8-byte aligned so drop the low bits.
    auto x = reinterpret_cast<std::uintptr_t>(p) >> 3;
    x *= 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(x ^ (x >> 29));
  }

  void place(const void* key, void* val) noexcept {
    const std::size_t mask = cap_ - 1;
    std::size_t i = hash(key) & mask;
    while (slots_[i].key != nullptr) i = (i + 1) & mask;
    slots_[i] = Slot{key, val};
  }

  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 64 : cap_ * 2;
    auto old = std::move(slots_);
    const std::size_t old_cap = cap_;
    slots_ = std::make_unique<Slot[]>(new_cap);  // value-initialized (zeroed)
    cap_ = new_cap;
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old[i].key != nullptr) place(old[i].key, old[i].val);
    }
  }

  std::unique_ptr<Slot[]> slots_;
  std::size_t cap_ = 0;
  std::size_t count_ = 0;
};

}  // namespace proust
