// Containers whose storage is carved from a BumpArena — the building blocks
// of the lazy strategy's allocation-free replay logs (core/replay_log.hpp).
// The arena only hands out memory (its reset rewinds without destroying), so
// these containers destroy their own elements in their destructors and must
// themselves be destroyed before the arena is reset; Txn's locals list
// guarantees exactly that ordering for transaction-local logs.
//
// Growth abandons the old storage to the arena rather than freeing it — the
// arena rewinds it all at attempt end, and the blocks themselves are retained
// across attempts (that retention is what makes the steady state heap-free).
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "common/bump_arena.hpp"
#include "common/hashing.hpp"

namespace proust {

/// Append-only sequence in arena-backed chunks: stable element addresses,
/// O(1) amortized append, forward iteration in insertion order.
template <class T, std::size_t ChunkLen = 8>
class ArenaChunkList {
 public:
  explicit ArenaChunkList(BumpArena& arena) noexcept : arena_(&arena) {}
  ArenaChunkList(const ArenaChunkList&) = delete;
  ArenaChunkList& operator=(const ArenaChunkList&) = delete;

  ~ArenaChunkList() {
    for (Chunk* c = head_; c != nullptr; c = c->next) {
      for (std::size_t i = c->count; i-- > 0;) c->slot(i)->~T();
    }
  }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (tail_ == nullptr || tail_->count == ChunkLen) {
      void* mem = arena_->allocate(sizeof(Chunk), alignof(Chunk));
      Chunk* c = ::new (mem) Chunk;
      if (tail_ == nullptr) {
        head_ = tail_ = c;
      } else {
        tail_->next = c;
        tail_ = c;
      }
    }
    T* obj = ::new (static_cast<void*>(tail_->slot(tail_->count)))
        T(std::forward<Args>(args)...);
    ++tail_->count;
    ++size_;
    return *obj;
  }

  template <class F>
  void for_each(F&& f) {
    for (Chunk* c = head_; c != nullptr; c = c->next) {
      for (std::size_t i = 0; i < c->count; ++i) f(*c->slot(i));
    }
  }
  template <class F>
  void for_each(F&& f) const {
    for (const Chunk* c = head_; c != nullptr; c = c->next) {
      for (std::size_t i = 0; i < c->count; ++i) f(*c->slot(i));
    }
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

 private:
  struct Chunk {
    Chunk* next = nullptr;
    std::size_t count = 0;
    alignas(T) unsigned char storage[ChunkLen * sizeof(T)];

    T* slot(std::size_t i) noexcept {
      return std::launder(reinterpret_cast<T*>(storage + i * sizeof(T)));
    }
    const T* slot(std::size_t i) const noexcept {
      return std::launder(
          reinterpret_cast<const T*>(storage + i * sizeof(T)));
    }
  };

  BumpArena* arena_;
  Chunk* head_ = nullptr;
  Chunk* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// Open-addressing (linear probe) hash map in arena-backed flat storage.
/// Insert and lookup only — the replay-log shadow tables never erase
/// (a removed key stays present, memoized as "pending removal"). Growth
/// rehashes into a fresh arena carving and abandons the old one.
template <class K, class V, class Hasher = proust::Hash<K>>
class ArenaFlatMap {
 public:
  explicit ArenaFlatMap(BumpArena& arena) noexcept : arena_(&arena) {}
  ArenaFlatMap(const ArenaFlatMap&) = delete;
  ArenaFlatMap& operator=(const ArenaFlatMap&) = delete;

  ~ArenaFlatMap() {
    if (slots_ == nullptr) return;
    for (std::size_t i = 0; i < cap_; ++i) {
      if (states_[i]) slots_[i].destroy();
    }
  }

  V* find(const K& key) noexcept {
    if (size_ == 0) return nullptr;
    const std::size_t mask = cap_ - 1;
    for (std::size_t i = Hasher{}(key) & mask;; i = (i + 1) & mask) {
      if (!states_[i]) return nullptr;
      if (slots_[i].key() == key) return &slots_[i].val();
    }
  }
  const V* find(const K& key) const noexcept {
    return const_cast<ArenaFlatMap*>(this)->find(key);
  }

  /// The value slot for `key`, inserting a default-constructed V (and
  /// setting `inserted`) if absent.
  V& get_or_emplace(const K& key, bool& inserted) {
    if (cap_ == 0 || (size_ + 1) * 4 > cap_ * 3) grow();
    const std::size_t mask = cap_ - 1;
    for (std::size_t i = Hasher{}(key) & mask;; i = (i + 1) & mask) {
      if (!states_[i]) {
        slots_[i].construct(key);
        states_[i] = 1;
        ++size_;
        inserted = true;
        return slots_[i].val();
      }
      if (slots_[i].key() == key) {
        inserted = false;
        return slots_[i].val();
      }
    }
  }

  template <class F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (states_[i]) f(slots_[i].key(), slots_[i].val());
    }
  }

  std::size_t size() const noexcept { return size_; }

 private:
  struct Slot {
    alignas(K) unsigned char kbuf[sizeof(K)];
    alignas(V) unsigned char vbuf[sizeof(V)];

    K& key() noexcept { return *std::launder(reinterpret_cast<K*>(kbuf)); }
    V& val() noexcept { return *std::launder(reinterpret_cast<V*>(vbuf)); }
    void construct(const K& k) {
      ::new (static_cast<void*>(kbuf)) K(k);
      ::new (static_cast<void*>(vbuf)) V();
    }
    void destroy() noexcept {
      key().~K();
      val().~V();
    }
  };

  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 16 : cap_ * 2;
    Slot* old_slots = slots_;
    unsigned char* old_states = states_;
    const std::size_t old_cap = cap_;

    slots_ = static_cast<Slot*>(
        arena_->allocate(new_cap * sizeof(Slot), alignof(Slot)));
    states_ = static_cast<unsigned char*>(arena_->allocate(new_cap, 1));
    for (std::size_t i = 0; i < new_cap; ++i) states_[i] = 0;
    cap_ = new_cap;

    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (!old_states[i]) continue;
      for (std::size_t j = Hasher{}(old_slots[i].key()) & mask;;
           j = (j + 1) & mask) {
        if (states_[j]) continue;
        ::new (static_cast<void*>(slots_[j].kbuf))
            K(std::move(old_slots[i].key()));
        ::new (static_cast<void*>(slots_[j].vbuf))
            V(std::move(old_slots[i].val()));
        states_[j] = 1;
        break;
      }
      old_slots[i].destroy();  // storage itself is reclaimed by arena reset
    }
  }

  BumpArena* arena_;
  Slot* slots_ = nullptr;
  unsigned char* states_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

}  // namespace proust
