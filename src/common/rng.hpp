// Small, fast, seedable PRNG used by benchmarks, workload generators and
// randomized tests. Not cryptographic. xoshiro256** by Blackman & Vigna
// (public domain), reimplemented here so the repository has no external
// dependencies beyond the toolchain.
#pragma once

#include <cstdint>
#include <limits>

namespace proust {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      s = x ^ (x >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free variant is overkill here; a
    // simple multiply-high keeps bias below 2^-64 * bound which is fine for
    // workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace proust
