// Software CRC32 (the IEEE 802.3 / zlib polynomial, reflected form). The
// write-ahead log checksums every record payload and every batch header with
// it; recovery uses a mismatch as the torn-tail signal. A 256-entry table is
// generated at compile time — no hardware-CRC intrinsics, so the same bytes
// checksum identically on every build the repo targets, and a segment file
// written by one binary is recoverable by any other.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace proust {

namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental form: pass the previous return value as `seed` to extend a
/// checksum over discontiguous buffers. The default seed is the standard
/// whole-message CRC32.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace proust
