// Hash utilities shared by the containers, the lock-allocator policies and
// the baselines. We deliberately avoid std::hash for integers (identity on
// libstdc++), which would make "k mod M" striping degenerate for sequential
// key ranges and distort the false-conflict measurements.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>

namespace proust {

/// Fibonacci/avalanche mix (the finalizer from MurmurHash3/splitmix64).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Default hasher: avalanche integral keys, fall back to std::hash otherwise.
template <class K>
struct Hash {
  std::size_t operator()(const K& k) const noexcept {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return static_cast<std::size_t>(
          mix64(static_cast<std::uint64_t>(static_cast<std::int64_t>(k))));
    } else {
      return std::hash<K>{}(k);
    }
  }
};

inline std::size_t hash_combine(std::size_t a, std::size_t b) noexcept {
  return mix64(a * 0x9E3779B97F4A7C15ULL + b);
}

/// Round v up to the next power of two (v >= 1).
constexpr std::size_t next_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace proust
