// A move-only callable with inline storage, used for the transaction hook
// lists. std::function heap-allocates captures above ~16 bytes on libstdc++,
// which puts an allocation on every wrapper operation that registers an
// inverse or a replay hook; SmallFunc keeps captures up to `Inline` bytes in
// place (and in a capacity-retaining vector, attempt N+1 reuses attempt N's
// slots with zero allocation). Oversized or throwing-move captures fall back
// to the heap so semantics never depend on the capture's size.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace proust {

template <class Sig, std::size_t Inline = 48>
class SmallFunc;

template <class R, class... Args, std::size_t Inline>
class SmallFunc<R(Args...), Inline> {
 public:
  SmallFunc() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFunc> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  SmallFunc(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    init(std::forward<F>(f));
  }

  SmallFunc(SmallFunc&& other) noexcept { move_from(other); }
  SmallFunc& operator=(SmallFunc&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }
  SmallFunc(const SmallFunc&) = delete;
  SmallFunc& operator=(const SmallFunc&) = delete;
  ~SmallFunc() { destroy(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { Destroy, Move };
  using InvokeFn = R (*)(void*, Args&&...);
  using ManageFn = void (*)(void* self, void* other, Op);

  template <class F>
  struct InlineModel {
    static R invoke(void* s, Args&&... a) {
      return (*static_cast<F*>(s))(std::forward<Args>(a)...);
    }
    static void manage(void* self, void* other, Op op) {
      if (op == Op::Destroy) {
        static_cast<F*>(self)->~F();
      } else {
        ::new (self) F(std::move(*static_cast<F*>(other)));
        static_cast<F*>(other)->~F();
      }
    }
  };

  template <class F>
  struct HeapModel {
    static R invoke(void* s, Args&&... a) {
      return (**static_cast<F**>(s))(std::forward<Args>(a)...);
    }
    static void manage(void* self, void* other, Op op) {
      if (op == Op::Destroy) {
        delete *static_cast<F**>(self);
      } else {
        *static_cast<F**>(self) = *static_cast<F**>(other);
        *static_cast<F**>(other) = nullptr;
      }
    }
  };

  template <class F>
  void init(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= Inline && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &InlineModel<D>::invoke;
      manage_ = &InlineModel<D>::manage;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) =
          new D(std::forward<F>(f));
      invoke_ = &HeapModel<D>::invoke;
      manage_ = &HeapModel<D>::manage;
    }
  }

  void move_from(SmallFunc& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(storage_, other.storage_, Op::Move);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void destroy() noexcept {
    if (manage_ != nullptr) {
      manage_(storage_, nullptr, Op::Destroy);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Inline];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace proust
