// A bump allocator whose blocks are retained across resets. Transaction-
// local objects (replay logs, shadow copies, memo tables) are carved out of
// one of these instead of individual make_shared allocations; when the
// attempt ends the arena rewinds and the same blocks serve the next attempt,
// so a retry loop reaches a steady state where `allocate` never touches the
// global heap. Objects placed here are not destroyed by the arena — callers
// track and run destructors themselves (see Txn's locals list).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace proust {

class BumpArena {
 public:
  void* allocate(std::size_t n, std::size_t align) {
    for (;;) {
      if (current_ < blocks_.size()) {
        Block& b = blocks_[current_];
        const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
        const std::uintptr_t p = (base + b.used + align - 1) & ~(align - 1);
        if (p + n <= base + b.size) {
          b.used = static_cast<std::size_t>(p + n - base);
          return reinterpret_cast<void*>(p);
        }
        ++current_;
        continue;
      }
      const std::size_t size = n + align > kBlockSize ? n + align : kBlockSize;
      blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, 0});
    }
  }

  /// Rewind all blocks to empty without freeing them.
  void reset() noexcept {
    for (Block& b : blocks_) b.used = 0;
    current_ = 0;
  }

  std::size_t block_count() const noexcept { return blocks_.size(); }

 private:
  static constexpr std::size_t kBlockSize = 4096;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
    std::size_t used;
  };

  std::vector<Block> blocks_;
  std::size_t current_ = 0;
};

}  // namespace proust
