#include "common/topology.hpp"

#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

// libnuma, if the process happens to link it. Weak declarations keep the
// build free of any libnuma dependency: unresolved weak symbols are null,
// and every call site checks libnuma_present() first.
extern "C" {
int numa_available(void) __attribute__((weak));
void* numa_alloc_onnode(std::size_t size, int node) __attribute__((weak));
void numa_free(void* start, std::size_t size) __attribute__((weak));
}

namespace proust::topo {
namespace {

/// Parse a sysfs cpulist ("0-3,5,8-9") into CPU ids. Returns false on any
/// token that is not a number or a range.
bool parse_cpulist(const std::string& text, std::vector<int>& out) {
  std::size_t i = 0;
  const auto num = [&](long& v) {
    if (i >= text.size() || std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      return false;
    }
    v = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      v = v * 10 + (text[i++] - '0');
    }
    return true;
  };
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  if (i >= text.size()) return false;
  for (;;) {
    long lo = 0;
    if (!num(lo)) return false;
    long hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      if (!num(hi) || hi < lo) return false;
    }
    for (long c = lo; c <= hi; ++c) out.push_back(static_cast<int>(c));
    if (i >= text.size() || text[i] == '\n' ||
        std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      return true;
    }
    if (text[i] != ',') return false;
    ++i;
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path);
  if (!f.is_open()) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

bool read_int(const std::string& path, int& out) {
  std::string text;
  if (!read_file(path, text)) return false;
  try {
    out = std::stoi(text);
  } catch (...) {
    return false;
  }
  return true;
}

Topology fallback_topology() {
  Topology t;
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  t.cpus.reserve(n);
  for (unsigned c = 0; c < n; ++c) {
    t.cpus.push_back(CpuInfo{static_cast<int>(c), 0, static_cast<int>(c), 0});
  }
  t.node_count = 1;
  t.smt = false;
  return t;
}

}  // namespace

Topology Topology::detect(const std::string& sysfs_root) {
  const std::string cpu_dir = sysfs_root + "/devices/system/cpu";
  std::string online;
  std::vector<int> cpu_ids;
  if (!read_file(cpu_dir + "/online", online) ||
      !parse_cpulist(online, cpu_ids) || cpu_ids.empty()) {
    return fallback_topology();
  }

  Topology t;
  t.cpus.reserve(cpu_ids.size());
  for (int c : cpu_ids) {
    CpuInfo info;
    info.cpu = c;
    const std::string base = cpu_dir + "/cpu" + std::to_string(c) + "/topology";
    if (!read_int(base + "/core_id", info.core)) info.core = c;
    if (!read_int(base + "/physical_package_id", info.package)) {
      info.package = 0;
    }
    t.cpus.push_back(info);
  }

  // Node ownership from node<N>/cpulist. Node ids are usually dense from 0;
  // scan a generous range and stop caring about gaps (a sparse id just
  // leaves unused bank indices downstream).
  const std::string node_dir = sysfs_root + "/devices/system/node";
  int max_node = -1;
  int misses = 0;
  for (int n = 0; misses < 8; ++n) {
    std::string list;
    if (!read_file(node_dir + "/node" + std::to_string(n) + "/cpulist",
                   list)) {
      ++misses;
      continue;
    }
    misses = 0;
    std::vector<int> owned;
    if (!parse_cpulist(list, owned)) continue;
    for (int c : owned) {
      for (CpuInfo& info : t.cpus) {
        if (info.cpu == c) info.node = n;
      }
    }
    if (n > max_node) max_node = n;
  }
  t.node_count = max_node >= 0 ? static_cast<unsigned>(max_node) + 1 : 1;

  // SMT: two online CPUs sharing a (package, core) pair.
  std::map<std::pair<int, int>, int> per_core;
  for (const CpuInfo& info : t.cpus) {
    if (++per_core[{info.package, info.core}] > 1) t.smt = true;
  }
  return t;
}

const Topology& Topology::system() {
  static const Topology t = detect("/sys");
  return t;
}

int Topology::node_of(int cpu) const noexcept {
  for (const CpuInfo& info : cpus) {
    if (info.cpu == cpu) return info.node;
  }
  return 0;
}

std::vector<int> Topology::pin_plan(
    PinPolicy policy, const std::vector<int>& explicit_cpus) const {
  switch (policy) {
    case PinPolicy::None: return {};
    case PinPolicy::Explicit: return explicit_cpus;
    case PinPolicy::Compact:
    case PinPolicy::Scatter: break;
  }
  // smt_rank: position among hardware threads of the same (package, core) —
  // 0 is the first thread of each physical core.
  struct Key {
    CpuInfo info;
    int smt_rank = 0;
  };
  std::vector<Key> keys;
  keys.reserve(cpus.size());
  std::map<std::pair<int, int>, int> seen;
  std::vector<CpuInfo> ordered = cpus;
  std::sort(ordered.begin(), ordered.end(),
            [](const CpuInfo& a, const CpuInfo& b) { return a.cpu < b.cpu; });
  for (const CpuInfo& info : ordered) {
    keys.push_back(Key{info, seen[{info.package, info.core}]++});
  }
  if (policy == PinPolicy::Compact) {
    // One node at a time, siblings of a core adjacent: consecutive slots
    // share caches, maximizing locality for communicating neighbours.
    std::stable_sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
      return std::tie(a.info.node, a.info.package, a.info.core, a.smt_rank) <
             std::tie(b.info.node, b.info.package, b.info.core, b.smt_rank);
    });
    std::vector<int> plan;
    plan.reserve(keys.size());
    for (const Key& k : keys) plan.push_back(k.info.cpu);
    return plan;
  }
  // Scatter: distinct physical cores everywhere before any SMT sibling,
  // alternating nodes — maximizes per-thread cache and memory bandwidth at
  // low thread counts.
  std::stable_sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    return std::tie(a.smt_rank, a.info.node, a.info.package, a.info.core) <
           std::tie(b.smt_rank, b.info.node, b.info.package, b.info.core);
  });
  std::vector<std::vector<int>> by_node;
  for (const Key& k : keys) {
    const auto n = static_cast<std::size_t>(k.info.node);
    if (by_node.size() <= n) by_node.resize(n + 1);
    by_node[n].push_back(k.info.cpu);
  }
  std::vector<int> plan;
  plan.reserve(keys.size());
  for (std::size_t round = 0; plan.size() < keys.size(); ++round) {
    for (const std::vector<int>& node_cpus : by_node) {
      if (round < node_cpus.size()) plan.push_back(node_cpus[round]);
    }
  }
  return plan;
}

namespace {
thread_local int tl_node = -1;
}  // namespace

bool pin_self_to(int cpu) noexcept {
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0) return false;
  tl_node = Topology::system().node_of(cpu);
  return true;
}

int current_cpu() noexcept {
#ifdef SYS_getcpu
  unsigned cpu = 0;
  if (syscall(SYS_getcpu, &cpu, nullptr, nullptr) == 0) {
    return static_cast<int>(cpu);
  }
#endif
  return -1;
}

int cached_node() noexcept {
  if (tl_node < 0) {
    const int cpu = current_cpu();
    tl_node = cpu >= 0 ? Topology::system().node_of(cpu) : 0;
  }
  return tl_node;
}

bool libnuma_present() noexcept {
  static const bool present = &numa_available != nullptr &&
                              &numa_alloc_onnode != nullptr &&
                              &numa_free != nullptr && numa_available() >= 0;
  return present;
}

void* alloc_onnode(std::size_t bytes, int node) {
  // Only route through libnuma on real multi-node hosts; free_onnode makes
  // the same decision, so a pointer is always released by the allocator
  // that produced it (which is why a null here is bad_alloc rather than a
  // fallback to the plain heap — the two allocators must never mix for one
  // pointer).
  if (node < 0) node = cached_node();
  if (Topology::system().node_count > 1 && libnuma_present()) {
    void* p = numa_alloc_onnode(bytes, node);
    if (p == nullptr) throw std::bad_alloc();
    return p;
  }
  return ::operator new(bytes, std::align_val_t(64));
}

void free_onnode(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (Topology::system().node_count > 1 && libnuma_present()) {
    numa_free(p, bytes);
    return;
  }
  ::operator delete(p, std::align_val_t(64));
}

bool interleave_pages(void* p, std::size_t bytes,
                      unsigned node_count) noexcept {
#ifdef SYS_mbind
  if (node_count < 2 || p == nullptr) return false;
  constexpr std::size_t kPage = 4096;
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t lo = (addr + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(kPage - 1);
  if (hi <= lo) return false;
  constexpr int kMpolInterleave = 3;  // MPOL_INTERLEAVE (numaif.h)
  unsigned long mask[4] = {0, 0, 0, 0};
  const unsigned n = node_count < 256 ? node_count : 256;
  for (unsigned i = 0; i < n; ++i) {
    mask[i / (8 * sizeof(unsigned long))] |=
        1UL << (i % (8 * sizeof(unsigned long)));
  }
  return syscall(SYS_mbind, reinterpret_cast<void*>(lo), hi - lo,
                 kMpolInterleave, mask, 8 * sizeof(mask) + 1, 0U) == 0;
#else
  (void)p;
  (void)bytes;
  (void)node_count;
  return false;
#endif
}

const char* to_string(PinPolicy p) noexcept {
  switch (p) {
    case PinPolicy::None: return "none";
    case PinPolicy::Compact: return "compact";
    case PinPolicy::Scatter: return "scatter";
    case PinPolicy::Explicit: return "explicit";
  }
  return "?";
}

const char* to_string(NumaPlacement p) noexcept {
  switch (p) {
    case NumaPlacement::Off: return "off";
    case NumaPlacement::Interleave: return "interleave";
    case NumaPlacement::Replicate: return "replicate";
  }
  return "?";
}

bool parse_pin_policy(std::string_view s, PinPolicy& out) noexcept {
  if (s == "none") out = PinPolicy::None;
  else if (s == "compact") out = PinPolicy::Compact;
  else if (s == "scatter") out = PinPolicy::Scatter;
  else if (s == "explicit") out = PinPolicy::Explicit;
  else return false;
  return true;
}

bool parse_numa_placement(std::string_view s, NumaPlacement& out) noexcept {
  if (s == "off") out = NumaPlacement::Off;
  else if (s == "interleave") out = NumaPlacement::Interleave;
  else if (s == "replicate") out = NumaPlacement::Replicate;
  else return false;
  return true;
}

}  // namespace proust::topo
