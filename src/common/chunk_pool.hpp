// A chunked object pool with stable addresses and cross-use reuse. Objects
// are default-constructed once per slot and then recycled: `reset()` rewinds
// the logical size without destroying anything, so members that own capacity
// (small-buffer values, retained heap blocks) keep it for the next use. The
// transaction write set lives in one of these — retries after an abort touch
// only memory allocated on earlier attempts.
//
// Addresses are stable across growth (chunks never move), which the STM
// needs because a locked orec points at the LockRecord inside its WriteEntry.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

namespace proust {

template <class T, std::size_t ChunkSize = 32>
class ChunkPool {
 public:
  /// Bump the logical size by one, constructing a fresh chunk only when all
  /// existing slots are in use. The returned object is in whatever state the
  /// previous use left it — callers must re-initialize the fields they read.
  T& acquire() {
    const std::size_t chunk = size_ / ChunkSize;
    if (chunk == chunks_.size()) chunks_.push_back(std::make_unique<Chunk>());
    return (*chunks_[chunk])[size_++ % ChunkSize];
  }

  T& operator[](std::size_t i) noexcept {
    return (*chunks_[i / ChunkSize])[i % ChunkSize];
  }
  const T& operator[](std::size_t i) const noexcept {
    return (*chunks_[i / ChunkSize])[i % ChunkSize];
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Rewind to empty, retaining every slot (and whatever its members own).
  void reset() noexcept { size_ = 0; }

 private:
  using Chunk = std::array<T, ChunkSize>;

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace proust
