// Injectable filesystem seam for the durability layer (DESIGN.md §15).
//
// `Fs` is the minimal syscall surface the WAL and checkpointer write
// through: open/write/fsync/rename/close/unlink. Production code uses
// `Fs::real()` (plain syscalls, zero indirection cost off the log path);
// tests interpose a `ChaosFs` between the storage code and the kernel to
// inject EIO, ENOSPC, short writes, and transient errors *at the syscall
// gate* — the same place a dying disk would — so the per-error policies in
// WalOptions (fail-stop, bounded retry, fsync-always-fatal) are exercised
// against exactly the failure shapes they were written for.
//
// Injection is deterministic two ways:
//   - probabilistic: a seeded splitmix64 stream draws per-op failures with
//     configured probabilities (reproducible given the seed), and
//   - scripted: `inject_once` queues one-shot faults consumed FIFO by the
//     next matching call (exact-site unit tests).
// Torn files (power-cut shapes) are not produced here — a short write plus
// a crash gate in the caller tears real bytes; see the crash-matrix tests.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace proust::common {

class Fs {
 public:
  virtual ~Fs() = default;
  /// open(2); returns fd or -1 with errno set.
  virtual int open(const char* path, int flags, unsigned mode) noexcept = 0;
  /// write(2); returns bytes written (possibly short) or -1 with errno set.
  virtual long write(int fd, const void* buf, std::size_t n) noexcept = 0;
  virtual int fsync(int fd) noexcept = 0;
  virtual int rename(const char* from, const char* to) noexcept = 0;
  virtual int close(int fd) noexcept = 0;
  virtual int unlink(const char* path) noexcept = 0;

  /// Process-wide pass-through instance (real syscalls).
  static Fs& real() noexcept;
};

enum class FsOp : std::uint8_t { Open, Write, Fsync, Rename, Close, Unlink };
inline constexpr std::size_t kNumFsOps = 6;

constexpr const char* to_string(FsOp op) noexcept {
  switch (op) {
    case FsOp::Open: return "open";
    case FsOp::Write: return "write";
    case FsOp::Fsync: return "fsync";
    case FsOp::Rename: return "rename";
    case FsOp::Close: return "close";
    case FsOp::Unlink: return "unlink";
  }
  return "?";
}

/// One scripted injection, consumed by the next call of the matching op.
struct FsFault {
  FsOp op;
  int err = 0;              // errno to inject; ignored for short writes
  bool short_write = false;  // Write only: deliver a strict prefix instead
};

struct ChaosFsConfig {
  std::uint64_t seed = 1;
  /// Per-op probability of failing with the matching `err` (indexed by
  /// FsOp). Drawn from the seeded stream, so a run replays exactly.
  std::array<double, kNumFsOps> err_prob{};
  /// errno injected when the draw hits; 0 entries default to EIO.
  std::array<int, kNumFsOps> err{};
  /// Probability a write delivers only a prefix (>=1 byte, < n). The
  /// caller's full-write loop must absorb these without corruption.
  double short_write_prob = 0;
};

class ChaosFs final : public Fs {
 public:
  /// Wraps `inner` (null = Fs::real()).
  explicit ChaosFs(ChaosFsConfig cfg = {}, Fs* inner = nullptr);

  /// Queue a one-shot fault, consumed FIFO by the next matching call.
  /// Scripted faults take precedence over probabilistic draws.
  void inject_once(FsFault f);

  struct Counters {
    std::array<std::uint64_t, kNumFsOps> calls{};
    std::array<std::uint64_t, kNumFsOps> injected{};  // errno injections
    std::uint64_t short_writes = 0;
  };
  Counters counters() const;

  int open(const char* path, int flags, unsigned mode) noexcept override;
  long write(int fd, const void* buf, std::size_t n) noexcept override;
  int fsync(int fd) noexcept override;
  int rename(const char* from, const char* to) noexcept override;
  int close(int fd) noexcept override;
  int unlink(const char* path) noexcept override;

 private:
  /// Draw the fault (if any) for one call of `op`. Thread-safe.
  std::optional<FsFault> draw(FsOp op) noexcept;

  ChaosFsConfig cfg_;
  Fs* inner_;
  mutable std::mutex mu_;  // guards rng state, script queue, counters
  std::uint64_t rng_;
  std::deque<FsFault> script_;
  Counters counters_;
};

}  // namespace proust::common
